// Package relsyn is a library for reliability-driven don't-care
// assignment in logic synthesis, reproducing Zukoski, Choudhury &
// Mohanram, "Reliability-driven don't care assignment for logic
// synthesis" (DATE 2011).
//
// Incompletely specified Boolean functions carry don't-care (DC)
// minterms that conventional synthesis spends purely on area. This
// package instead assigns selected DCs to maximize logical derating of
// single-bit input errors, then hands the remaining flexibility to a
// conventional flow:
//
//	spec, _ := relsyn.LoadBenchmark("ex1010")
//	res, _ := relsyn.RankingAssign(spec, 0.5)       // paper Fig. 3
//	impl, _ := relsyn.Synthesize(res.Func, relsyn.SynthOptions{})
//	fmt.Println(relsyn.ErrorRate(spec, impl.Impl))  // input-error rate
//	fmt.Println(impl.Metrics.Area)                   // mapped area
//
// The package is a facade over the internal packages: truth tables
// (internal/tt), .pla I/O (internal/pla), the assignment algorithms
// (internal/core), complexity-factor metrics (internal/complexity),
// exact reliability metrics (internal/reliability), analytical bounds
// (internal/estimate), an espresso-style minimizer, algebraic factoring,
// AIG optimization and technology mapping (internal/{espresso, factor,
// aig, mapper, celllib, synth}), synthetic benchmark generation
// (internal/synthetic, internal/benchmarks), and nodal decomposition
// with internal-DC reassignment (internal/network).
//
// The pipeline is also served over HTTP by cmd/relsynd — optionally
// crash-safe via a durable job store (internal/store) — and consumed
// with retries, backoff, and hedging through the relsyn/client
// package.
package relsyn

import (
	"context"
	"io"

	"relsyn/internal/aig"
	"relsyn/internal/benchmarks"
	"relsyn/internal/bitset"
	"relsyn/internal/blif"
	"relsyn/internal/cec"
	"relsyn/internal/complexity"
	"relsyn/internal/core"
	"relsyn/internal/estimate"
	"relsyn/internal/faultsim"
	"relsyn/internal/network"
	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
	"relsyn/internal/pla"
	"relsyn/internal/reliability"
	"relsyn/internal/sat"
	"relsyn/internal/synth"
	"relsyn/internal/synthetic"
	"relsyn/internal/tt"
)

// Function is an incompletely specified multi-output Boolean function
// held as dense truth tables (one on-set and one DC-set per output).
type Function = tt.Function

// Phase classifies a minterm for one output: Off, On, or DC.
type Phase = tt.Phase

// Minterm phases.
const (
	Off = tt.Off
	On  = tt.On
	DC  = tt.DC
)

// NewFunction returns an all-zero function with n inputs and m outputs.
func NewFunction(n, m int) *Function { return tt.New(n, m) }

// SetKernels flips the process-wide switch between the word-parallel
// bitset kernels (the default) and the scalar oracle implementations of
// the analysis scans. Both paths compute bit-identical results — the
// switch only trades speed — and it must be set at process start,
// before any concurrent work begins (it is a plain, unsynchronized
// bool). Per-call control is available through AssignOptions.Kernels
// and JobOptions.Kernels without touching the global.
func SetKernels(enabled bool) { bitset.UseKernels = enabled }

// KernelsEnabled reports the process-wide kernel switch.
func KernelsEnabled() bool { return bitset.UseKernels }

// ErrZeroOutputs is the typed sentinel wrapped by every per-output mean
// helper (ComplexityFactor, ExactBounds, SignalEstimate, ...) when given
// a function with no outputs: such a mean has no value, and historically
// these helpers silently divided by zero and returned NaN.
var ErrZeroOutputs = tt.ErrZeroOutputs

// ParsePLA reads an Espresso-format .pla description (types f, fd, fr,
// fdr) into a dense function.
func ParsePLA(r io.Reader) (*Function, error) {
	file, err := pla.Parse(r)
	if err != nil {
		return nil, err
	}
	return file.ToFunction()
}

// WritePLA serializes a function as a type-fd .pla file with one row per
// on-set or DC minterm.
func WritePLA(w io.Writer, f *Function) error {
	return pla.FromFunction(f, nil, nil).Write(w)
}

// BenchmarkSpec describes one benchmark of the evaluation suite (the
// stand-ins for paper Table 1; see internal/benchmarks).
type BenchmarkSpec = benchmarks.Spec

// Benchmarks lists the evaluation suite in paper order.
func Benchmarks() []BenchmarkSpec { return benchmarks.Specs() }

// LoadBenchmark deterministically generates the named suite benchmark.
func LoadBenchmark(name string) (*Function, error) { return benchmarks.Load(name) }

// AssignOptions tunes the assignment algorithms; see core.Options.
type AssignOptions = core.Options

// AssignResult reports an assignment pass; Func holds the partially
// bound function, ready for synthesis.
type AssignResult = core.Result

// RankingAssign runs the paper's Fig. 3 ranking-based algorithm, binding
// the top fraction ∈ [0,1] of each output's rankable DC minterms to the
// majority phase of their specified neighbors.
func RankingAssign(f *Function, fraction float64) (*AssignResult, error) {
	return core.Ranking(f, fraction, core.Options{})
}

// LCFAssign runs the paper's Fig. 7 complexity-factor-based algorithm:
// a DC minterm is bound iff its local complexity factor is below
// threshold (0.45–0.65 recommended).
func LCFAssign(f *Function, threshold float64) (*AssignResult, error) {
	return core.LCF(f, threshold, core.Options{})
}

// CompleteAssign binds every DC minterm for reliability (the paper's
// "Complete" column — maximal masking, typically large overhead).
func CompleteAssign(f *Function) *AssignResult { return core.Complete(f) }

// RankingAssignBDD is RankingAssign computed over BDD set
// representations (the paper's CUDD-based implementation); results are
// bit-identical to RankingAssign.
func RankingAssignBDD(f *Function, fraction float64) (*AssignResult, error) {
	return core.RankingBDD(f, fraction, core.Options{})
}

// LCFAssignBDD is LCFAssign computed over BDD set representations;
// results are bit-identical to LCFAssign.
func LCFAssignBDD(f *Function, threshold float64) (*AssignResult, error) {
	return core.LCFBDD(f, threshold, core.Options{})
}

// ComplexityFactor returns the mean normalized complexity factor C^f
// across outputs (paper §2.2). Zero-output functions are rejected with
// an error wrapping ErrZeroOutputs.
func ComplexityFactor(f *Function) (float64, error) { return complexity.FactorMean(f) }

// ExpectedComplexityFactor returns the mean E[C^f] = f0²+f1²+fDC².
// Zero-output functions are rejected with an error wrapping
// ErrZeroOutputs.
func ExpectedComplexityFactor(f *Function) (float64, error) { return complexity.ExpectedMean(f) }

// LocalComplexityFactor returns LC^f for one minterm of one output
// (paper §4).
func LocalComplexityFactor(f *Function, output, minterm int) float64 {
	return complexity.Local(f, output, minterm)
}

// ErrorRate returns the exact single-bit input error rate of impl
// measured against spec's care set, averaged over outputs and normalized
// by the n·2^n possible (minterm, bit) error events. Dimension mismatches
// between spec and impl are reported as errors.
func ErrorRate(spec, impl *Function) (float64, error) {
	return reliability.ErrorRateMean(spec, impl)
}

// ExactBounds returns the minimum and maximum error rates achievable by
// any DC assignment of f (paper §5 exact formulas), averaged over
// outputs. Zero-output functions are rejected with an error wrapping
// ErrZeroOutputs.
func ExactBounds(f *Function) (lo, hi float64, err error) { return reliability.BoundsMean(f) }

// ErrorRateMulti returns the exact k-bit input error rate of impl
// against spec (k = 1 reproduces ErrorRate), averaged over outputs.
// Dimension mismatches and k outside [1, n] are reported as errors; the
// C(n,k) enumeration polls ctx and aborts with ctx.Err() once it is
// done, so callers can bound adversarially large (n, k) requests.
func ErrorRateMulti(ctx context.Context, spec, impl *Function, k int) (float64, error) {
	return reliability.ErrorRateMultiMean(ctx, spec, impl, k)
}

// FaultReport summarizes exhaustive stuck-at fault simulation of a
// mapped netlist; see internal/faultsim.
type FaultReport = faultsim.Report

// AnalyzeFaults runs exhaustive single-stuck-at fault simulation over a
// synthesized implementation's netlist.
func AnalyzeFaults(res *SynthResult, numPI int) (*FaultReport, error) {
	return faultsim.Analyze(res.Netlist, numPI)
}

// EstimateBounds is an analytically estimated [Min, Max] error-rate
// interval.
type EstimateBounds = estimate.Bounds

// SignalEstimate returns the Gaussian signal-probability min-max
// estimate (paper §5), averaged over outputs. Zero-output functions are
// rejected with an error wrapping ErrZeroOutputs.
func SignalEstimate(f *Function) (EstimateBounds, error) { return estimate.SignalBasedMean(f) }

// BorderEstimate returns the Poisson border-count min-max estimate
// (paper §5), averaged over outputs. Zero-output functions are rejected
// with an error wrapping ErrZeroOutputs.
func BorderEstimate(f *Function) (EstimateBounds, error) { return estimate.BorderBasedMean(f) }

// SynthOptions configures the synthesis flow; see synth.Options.
type SynthOptions = synth.Options

// SynthResult bundles a synthesized implementation with its metrics.
type SynthResult = synth.Result

// Synthesis objectives and flows (re-exported from internal/synth).
const (
	OptimizeDelay = synth.OptimizeDelay
	OptimizePower = synth.OptimizePower
	OptimizeArea  = synth.OptimizeArea
	FlowSOP       = synth.FlowSOP
	FlowResyn     = synth.FlowResyn
)

// Synthesize runs espresso minimization (spending the remaining DCs),
// algebraic factoring, AIG optimization, and technology mapping onto the
// generic 70 nm-class library, returning the completely specified
// implementation and its area/delay/power metrics.
func Synthesize(f *Function, opt SynthOptions) (*SynthResult, error) {
	return synth.Synthesize(f, opt)
}

// SyntheticParams configures synthetic benchmark generation; see
// synthetic.Params.
type SyntheticParams = synthetic.Params

// GenerateSynthetic produces a function with a designated complexity
// factor and DC density by seeded local search (paper §2.2).
func GenerateSynthetic(p SyntheticParams) (*Function, error) { return synthetic.Generate(p) }

// Network is a multi-level SOP-node decomposition of a circuit.
type Network = network.Network

// Decompose clusters a synthesized circuit's AIG into k-feasible SOP
// nodes (paper §4 "nodal decomposition"; k ≤ 6). The returned network
// supports exact internal-DC extraction and LC^f reassignment.
func Decompose(g *aig.Graph, k int) (*Network, error) { return network.FromAIG(g, k) }

// WriteBLIF serializes a decomposed network in the combinational BLIF
// subset (ABC-compatible).
func WriteBLIF(w io.Writer, nw *Network, model string) error {
	return blif.WriteNetwork(w, nw, model)
}

// ParseBLIF reads a combinational BLIF model into a network.
func ParseBLIF(r io.Reader) (*Network, error) { return blif.Parse(r) }

// WindowOptions bounds the per-node TFI/TFO cone of windowed SAT
// don't-care extraction; see network.WindowOptions. Zero values use the
// engine defaults; negative depths mean full depth (the windowed
// extraction then equals the complete one).
type WindowOptions = network.WindowOptions

// SatDCOptions bounds a SAT-based don't-care extraction (window depths,
// per-node conflict budget, interrupt hook); see network.SatDCOptions.
type SatDCOptions = network.SatDCOptions

// WindowedReassignReport summarizes a windowed reassignment run; see
// network.WindowedReassignReport.
type WindowedReassignReport = network.WindowedReassignReport

// ErrSATBudget is the typed SAT conflict-budget sentinel wrapped by
// errors from SAT-backed computations (windowed DC extraction, CEC).
// Partial results accompanying it are sound — they just cover fewer
// cases — and a retry with a larger budget can succeed.
var ErrSATBudget = sat.ErrBudget

// NetworkJobResult is the serializable outcome of a network
// reassignment job — the same struct the relsynd /v1/resyn endpoint
// returns and `relsyn resyn -json` prints; see pipeline.NetworkJobResult.
type NetworkJobResult = pipeline.NetworkJobResult

// RunNetworkJob rewrites a decomposed network's nodes by extracting
// internal don't-cares (exhaustively or with windowed SAT, per
// JobOptions.DCMode) and binding them with the LC^f reassignment, under
// the pipeline's degradation ladder. Method must be "lcf".
func RunNetworkJob(ctx context.Context, nw *Network, o JobOptions) (*NetworkJobResult, error) {
	return pipeline.RunNetworkJob(ctx, nw, o)
}

// Counterexample is a distinguishing input found by CheckEquivalence.
type Counterexample = cec.Counterexample

// CheckEquivalence proves or refutes combinational equivalence of two
// synthesized circuits by SAT on a miter (scales beyond the exhaustive
// range). Pass the Graph fields of two SynthResults.
func CheckEquivalence(g1, g2 *aig.Graph) (bool, *Counterexample, error) {
	return cec.Check(g1, g2)
}

// PipelineOptions configures RunPipeline; see pipeline.Options.
type PipelineOptions = pipeline.Options

// PipelineResult is a (possibly degraded) pipeline run; see
// pipeline.Result.
type PipelineResult = pipeline.Result

// PipelineBudget bounds a pipeline run's resources (wall clock, BDD
// nodes, SAT conflicts, AIG nodes); see pipeline.Budget.
type PipelineBudget = pipeline.Budget

// PipelineAssign configures the pipeline's assignment stage.
type PipelineAssign = pipeline.AssignSpec

// StageError is the typed failure RunPipeline returns instead of
// panicking or hanging; see pipeline.StageError.
type StageError = pipeline.StageError

// Fallback records one degradation-ladder step a pipeline run took.
type Fallback = pipeline.Fallback

// Assignment-method selectors for PipelineAssign.Method.
const (
	MethodNone     = pipeline.MethodNone
	MethodRanking  = pipeline.MethodRanking
	MethodLCF      = pipeline.MethodLCF
	MethodComplete = pipeline.MethodComplete
)

// RunPipeline executes assignment, synthesis, and verification on f as a
// fault-tolerant staged job: panics become typed *StageError values,
// resource budgets bound the effort, and budget exhaustion degrades along
// an explicit ladder (BDD assignment → dense; resyn flow → sop; SAT CEC →
// exhaustive CEC) instead of failing. See internal/pipeline.
func RunPipeline(ctx context.Context, f *Function, opt PipelineOptions) (*PipelineResult, error) {
	return pipeline.Run(ctx, f, opt)
}

// JobOptions is the flat, JSON-serializable job configuration shared by
// the relsynd service, the relsyn CLI, and library callers; see
// pipeline.JobOptions. Its Normalize/Key methods define the
// content-addressed cache identity used by the server.
type JobOptions = pipeline.JobOptions

// JobResult is the serializable outcome of a pipeline job — the same
// struct the relsynd HTTP API returns and `relsyn synth -json` prints;
// see pipeline.JobResult.
type JobResult = pipeline.JobResult

// RunJob executes one pipeline job described by flat, serializable
// options and returns a serializable result. On failure the returned
// error carries the typed *StageError chain, and the JobResult (when
// non-nil) still describes the partial run.
func RunJob(ctx context.Context, f *Function, o JobOptions) (*JobResult, error) {
	return pipeline.RunJob(ctx, f, o)
}

// HashPLA returns the canonical content hash of a function: stable
// across cube order, redundant cubes, and .pla logic-type encodings.
// This is the spec half of the relsynd cache key.
func HashPLA(f *Function) string { return pla.HashFunction(f) }

// Span is one node of an execution trace recorded by the observability
// layer; see internal/obs. Pipeline runs under a traced context record
// one span per stage attempt, annotated with the degradation-ladder rung
// and failure class.
type Span = obs.Span

// WithTrace returns a context under which pipeline runs record a span
// tree rooted at the returned span. Call End on the root when the run
// finishes, then Render it (this powers `relsyn synth -trace`):
//
//	ctx, root := relsyn.WithTrace(ctx, "cli/synth")
//	res, err := relsyn.RunJob(ctx, f, opts)
//	root.End()
//	root.Render(os.Stderr)
//
// Without WithTrace, span recording is disabled and costs one nil check
// per stage.
func WithTrace(ctx context.Context, name string) (context.Context, *Span) {
	return obs.WithTrace(ctx, name)
}

// MetricsRegistry is the process-wide observability registry; see
// internal/obs. Every queue/cache/pipeline/HTTP series the relsynd
// /metrics endpoint exports lives here by default.
func MetricsRegistry() *obs.Registry { return obs.Default }
