package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: relsyn
cpu: Test CPU @ 2.10GHz
BenchmarkKernelErrorRate/n=12/kernel-8         	    1000	      1000 ns/op
BenchmarkKernelErrorRate/n=12/scalar-8         	     200	      5000 ns/op
BenchmarkKernelErrorRate/n=16/kernel-8         	     100	     25000 ns/op
BenchmarkKernelErrorRate/n=16/scalar-8         	     100	    100000 ns/op
BenchmarkKernelFactor/n=16/kernel-8            	     100	     10000 ns/op
BenchmarkKernelFactor/n=16/scalar-8            	     100	     80000 ns/op
BenchmarkUnrelated-8                           	     100	        10 ns/op
PASS
ok  	relsyn	1.000s
`

func TestParsePairsRows(t *testing.T) {
	f, err := parse(strings.NewReader(sampleBench), "kernel", "scalar", false, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" || f.CPU != "Test CPU @ 2.10GHz" {
		t.Fatalf("header not captured: %+v", f)
	}
	if f.Pair != "kernel,scalar" {
		t.Fatalf("pair not recorded: %q", f.Pair)
	}
	want := map[string]float64{
		"KernelErrorRate/n=12": 5,
		"KernelErrorRate/n=16": 4,
		"KernelFactor/n=16":    8,
	}
	if len(f.Benchmarks) != len(want) {
		t.Fatalf("got %d pairs, want %d: %+v", len(f.Benchmarks), len(want), f.Benchmarks)
	}
	for _, e := range f.Benchmarks {
		if w, ok := want[e.Name]; !ok || e.Speedup != w {
			t.Fatalf("entry %+v, want speedup %v", e, w)
		}
	}
	// Sorted by name.
	for i := 1; i < len(f.Benchmarks); i++ {
		if f.Benchmarks[i-1].Name >= f.Benchmarks[i].Name {
			t.Fatalf("not sorted: %+v", f.Benchmarks)
		}
	}
}

func TestParseKeepsMinOfRepeats(t *testing.T) {
	in := `BenchmarkKernelX/n=12/kernel-8 100 100 ns/op
BenchmarkKernelX/n=12/kernel-8 100 300 ns/op
BenchmarkKernelX/n=12/scalar-8 100 600 ns/op
BenchmarkKernelX/n=12/scalar-8 100 900 ns/op
`
	f, err := parse(strings.NewReader(in), "kernel", "scalar", false, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Speedup != 6 {
		t.Fatalf("min-of-repeats wrong: %+v", f.Benchmarks)
	}
}

func TestParseRejectsUnpairedAndEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkKernelX/n=12/kernel-8 1 5 ns/op\n"), "kernel", "scalar", false, io.Discard); err == nil {
		t.Fatal("kernel row without scalar row accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkKernelX/n=12/scalar-8 1 5 ns/op\n"), "kernel", "scalar", false, io.Discard); err == nil {
		t.Fatal("scalar row without kernel row accepted")
	}
	if _, err := parse(strings.NewReader("PASS\n"), "kernel", "scalar", false, io.Discard); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestParseAllowUnpaired covers the -allow-unpaired seam used by the
// SatDC baseline: the 120-input windowed group has no exhaustive
// partner, so it must be warned about and skipped — not fatal, and not
// silently folded into the baseline either.
func TestParseAllowUnpaired(t *testing.T) {
	in := `BenchmarkSatDC/t4/windowed-8 3 1000 ns/op
BenchmarkSatDC/t4/exhaustive-8 3 2500 ns/op
BenchmarkSatDC/n=120/windowed-8 3 9000 ns/op
`
	var warn bytes.Buffer
	f, err := parse(strings.NewReader(in), "windowed", "exhaustive", true, &warn)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "SatDC/t4" || f.Benchmarks[0].Speedup != 2.5 {
		t.Fatalf("paired group wrong: %+v", f.Benchmarks)
	}
	if !strings.Contains(warn.String(), "SatDC/n=120") {
		t.Fatalf("unpaired group not warned about: %q", warn.String())
	}
	// An input that is ALL unpaired still fails: no pairs at all.
	if _, err := parse(strings.NewReader("BenchmarkSatDC/n=120/windowed-8 3 9000 ns/op\n"),
		"windowed", "exhaustive", true, io.Discard); err == nil {
		t.Fatal("pair-free input accepted")
	}
}

// TestParseCustomPair exercises the -pair seam used by the store
// benchmarks: pair wal,base makes the gated "speedup" base/wal, which
// shrinks — and so fails the gate — when WAL overhead grows.
func TestParseCustomPair(t *testing.T) {
	in := `BenchmarkStoreThroughput/conc=64/base-8 100 1000 ns/op
BenchmarkStoreThroughput/conc=64/wal-8 100 2000 ns/op
`
	f, err := parse(strings.NewReader(in), "wal", "base", false, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if f.Pair != "wal,base" {
		t.Fatalf("pair = %q, want wal,base", f.Pair)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Speedup != 0.5 {
		t.Fatalf("custom pair not parsed: %+v", f.Benchmarks)
	}
	// Rows whose leaves don't match the pair are ignored, so an input
	// holding only kernel/scalar rows yields no wal/base pairs.
	if _, err := parse(strings.NewReader(sampleBench), "wal", "base", false, io.Discard); err == nil {
		t.Fatal("kernel/scalar rows accepted as wal/base pairs")
	}
}

func TestSideParsing(t *testing.T) {
	cases := []struct {
		in, group, leaf string
		ok              bool
	}{
		{"BenchmarkKernelErrorRate/n=16/kernel-8", "KernelErrorRate/n=16", "kernel", true},
		{"BenchmarkKernelErrorRate/n=16/scalar", "KernelErrorRate/n=16", "scalar", true},
		{"BenchmarkKernelRanking/n=12/kernel-16", "KernelRanking/n=12", "kernel", true},
		{"BenchmarkParBoundsMean/j=2-8", "", "", false},
		{"BenchmarkTable1-8", "", "", false},
	}
	for _, c := range cases {
		g, l, ok := side(c.in, "kernel", "scalar")
		if g != c.group || l != c.leaf || ok != c.ok {
			t.Fatalf("side(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.in, g, l, ok, c.group, c.leaf, c.ok)
		}
	}
}

func TestGateDetectsRegression(t *testing.T) {
	base := &File{Benchmarks: []Entry{
		{Name: "KernelErrorRate/n=16", Speedup: 4},
		{Name: "KernelFactor/n=16", Speedup: 8},
	}}
	okRun := &File{Benchmarks: []Entry{
		{Name: "KernelErrorRate/n=16", Speedup: 3.5}, // 4/3.5 = 1.14 < 1.25
		{Name: "KernelFactor/n=16", Speedup: 9},
		{Name: "KernelNew/n=16", Speedup: 2}, // new: reported, not fatal
	}}
	var out bytes.Buffer
	if err := gate(base, okRun, 1.25, &out); err != nil {
		t.Fatalf("within-tolerance run failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new, not in baseline") {
		t.Fatalf("new benchmark not reported:\n%s", out.String())
	}

	badRun := &File{Benchmarks: []Entry{
		{Name: "KernelErrorRate/n=16", Speedup: 3}, // 4/3 = 1.33 > 1.25
		{Name: "KernelFactor/n=16", Speedup: 9},
	}}
	out.Reset()
	err := gate(base, badRun, 1.25, &out)
	if err == nil || !strings.Contains(err.Error(), "KernelErrorRate/n=16") {
		t.Fatalf("regression not caught: %v", err)
	}

	missing := &File{Benchmarks: []Entry{
		{Name: "KernelFactor/n=16", Speedup: 9},
	}}
	if err := gate(base, missing, 1.25, &out); err == nil {
		t.Fatal("missing benchmark not caught")
	}
}

func TestRunRecordAndGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-record", "-o", path},
		strings.NewReader(sampleBench), &stdout, &stderr); code != 0 {
		t.Fatalf("record exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("recorded file is not valid JSON: %v\n%s", err, raw)
	}
	if len(f.Benchmarks) != 3 || f.Note == "" || f.Recorded == "" {
		t.Fatalf("recorded file incomplete: %+v", f)
	}

	// The same output gates cleanly against its own recording.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-gate", path},
		strings.NewReader(sampleBench), &stdout, &stderr); code != 0 {
		t.Fatalf("self-gate exited %d: %s", code, stderr.String())
	}

	// A slowed-down kernel fails the gate.
	slowed := strings.Replace(sampleBench,
		"BenchmarkKernelFactor/n=16/kernel-8            	     100	     10000 ns/op",
		"BenchmarkKernelFactor/n=16/kernel-8            	     100	     90000 ns/op", 1)
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-gate", path},
		strings.NewReader(slowed), &stdout, &stderr); code != 1 {
		t.Fatalf("regressed run exited %d, want 1\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}

	// Flag misuse: both or neither mode.
	if code := run([]string{}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Fatalf("no mode exited %d, want 2", code)
	}
	if code := run([]string{"-record", "-gate", path},
		strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Fatalf("both modes exited %d, want 2", code)
	}
	if code := run([]string{"-gate", path, "-max-regress", "0.5"},
		strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Fatalf("bad -max-regress exited %d, want 2", code)
	}
	for _, bad := range []string{"kernel", "kernel,", ",scalar", "x,x"} {
		if code := run([]string{"-record", "-o", "-", "-pair", bad},
			strings.NewReader(""), &stdout, &stderr); code != 2 {
			t.Fatalf("-pair %q exited %d, want 2", bad, code)
		}
	}
}

func TestRunCustomPairRecordAndGate(t *testing.T) {
	in := `BenchmarkStoreRecovery/jobs=512/base-8 10 2000000 ns/op
BenchmarkStoreRecovery/jobs=512/wal-8 10 4000000 ns/op
`
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-record", "-o", path, "-pair", "wal,base"},
		strings.NewReader(in), &stdout, &stderr); code != 0 {
		t.Fatalf("record exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if f.Pair != "wal,base" || len(f.Benchmarks) != 1 || f.Benchmarks[0].Speedup != 0.5 {
		t.Fatalf("recorded custom-pair file wrong: %+v", f)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-gate", path, "-pair", "wal,base", "-max-regress", "1.5"},
		strings.NewReader(in), &stdout, &stderr); code != 0 {
		t.Fatalf("self-gate exited %d: %s", code, stderr.String())
	}

	// WAL overhead doubling shrinks base/wal; the gate must catch it.
	worse := strings.Replace(in, "4000000", "8000000", 1)
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-gate", path, "-pair", "wal,base", "-max-regress", "1.5"},
		strings.NewReader(worse), &stdout, &stderr); code != 1 {
		t.Fatalf("grown WAL overhead exited %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
}
