// Command benchjson turns paired `go test -bench` output into a
// machine-readable speedup baseline, and gates CI against it.
//
// Benchmarks emit paired sub-benchmarks whose leaf names identify the
// fast and slow variant of the same workload:
//
//	BenchmarkKernelErrorRate/n=16/kernel-8    1000   25235 ns/op
//	BenchmarkKernelErrorRate/n=16/scalar-8     100  105370 ns/op
//
// benchjson pairs each <group>/<fast> row with its <group>/<slow> row
// and records the speedup ratio slow/fast. Ratios — not raw ns/op —
// are what the gate compares: they are stable across machine
// generations, while absolute nanoseconds are not. The leaf names
// default to kernel,scalar (the SIMD-kernel baselines) and are
// configurable with -pair. Order matters for gate direction: the gate
// fails when slow/fast shrinks, so put the side whose relative cost
// must not grow first — the durability benchmarks use -pair wal,base
// (speedup = base/wal), which fails when WAL overhead creeps up.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkKernel -benchtime 200x . \
//	    | go run ./cmd/benchjson -record -o BENCH_kernels.json
//
//	go test -run xxx -bench BenchmarkKernel -benchtime 200x . \
//	    | go run ./cmd/benchjson -gate BENCH_kernels.json [-max-regress 1.25]
//
// In -gate mode the exit status is 1 if any benchmark's current speedup
// has regressed by more than -max-regress relative to the committed
// baseline (baseline.speedup / current.speedup > max-regress), or if a
// baseline benchmark is missing from the current run. New benchmarks
// absent from the baseline are reported but do not fail the gate —
// refresh the baseline with -record to start tracking them.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry is one fast/slow benchmark pair.
type Entry struct {
	// Name is the shared group name, e.g. "KernelErrorRate/n=16".
	Name string `json:"name"`
	// FastNsOp / SlowNsOp are informational (machine-dependent).
	FastNsOp float64 `json:"fast_ns_op"`
	SlowNsOp float64 `json:"slow_ns_op"`
	// Speedup is SlowNsOp / FastNsOp — the gated quantity.
	Speedup float64 `json:"speedup"`
}

// File is the on-disk format of a benchjson baseline.
type File struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// Pair records the fast,slow leaf names the file was parsed with.
	Pair string `json:"pair,omitempty"`
	// GOOS/GOARCH/CPU echo the `go test -bench` header of the recording
	// run (informational).
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Recorded is the recording date (not re-read by the gate).
	Recorded string `json:"recorded,omitempty"`
	// Benchmarks is sorted by name.
	Benchmarks []Entry `json:"benchmarks"`
}

// benchLine matches one result row of `go test -bench` output:
// name, iteration count, ns/op (other -benchmem columns are ignored).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// side splits a full benchmark name into its group key and fast/slow
// side, e.g. "BenchmarkKernelErrorRate/n=16/kernel-8" with pair
// kernel,scalar -> ("KernelErrorRate/n=16", "kernel"). The trailing -N
// GOMAXPROCS suffix is stripped; names whose leaf is neither pair name
// return ok=false.
func side(name, fast, slow string) (group, leaf string, ok bool) {
	name = strings.TrimPrefix(name, "Benchmark")
	i := strings.LastIndex(name, "/")
	if i < 0 {
		return "", "", false
	}
	group, leaf = name[:i], name[i+1:]
	// Strip the -N parallelism suffix go test appends.
	if j := strings.LastIndex(leaf, "-"); j >= 0 {
		if _, err := strconv.Atoi(leaf[j+1:]); err == nil {
			leaf = leaf[:j]
		}
	}
	if leaf != fast && leaf != slow {
		return "", "", false
	}
	return group, leaf, true
}

// parse reads `go test -bench` output and pairs fast/slow rows.
// Repeated rows for the same name (from -count) keep the minimum ns/op:
// on shared/noisy CI machines the minimum is the standard low-variance
// estimator of the true cost (noise only ever adds time). An unpaired
// row is an error unless allowUnpaired: some suites have groups that
// exist only on one side (e.g. a windowed SAT run at input counts no
// exhaustive engine can reach) — those are reported to stderr and left
// out of the baseline rather than failing the parse.
func parse(r io.Reader, fast, slow string, allowUnpaired bool, warn io.Writer) (*File, error) {
	type acc struct {
		min float64
		n   int
	}
	fasts := map[string]*acc{}
	slows := map[string]*acc{}
	f := &File{Pair: fast + "," + slow}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil || ns <= 0 {
			return nil, fmt.Errorf("bad ns/op in %q", line)
		}
		group, leaf, ok := side(m[1], fast, slow)
		if !ok {
			continue
		}
		dst := fasts
		if leaf == slow {
			dst = slows
		}
		if dst[group] == nil {
			dst[group] = &acc{min: ns}
		} else if ns < dst[group].min {
			dst[group].min = ns
		}
		dst[group].n++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	unpaired := func(group, have, miss string) error {
		if !allowUnpaired {
			return fmt.Errorf("benchmark %s has a %s row but no %s row", group, have, miss)
		}
		fmt.Fprintf(warn, "benchjson: %s has a %s row but no %s row; skipping (unpaired allowed)\n",
			group, have, miss)
		return nil
	}
	for group, k := range fasts {
		s, ok := slows[group]
		if !ok {
			if err := unpaired(group, fast, slow); err != nil {
				return nil, err
			}
			continue
		}
		f.Benchmarks = append(f.Benchmarks, Entry{
			Name: group, FastNsOp: k.min, SlowNsOp: s.min, Speedup: s.min / k.min,
		})
	}
	for group := range slows {
		if _, ok := fasts[group]; !ok {
			if err := unpaired(group, slow, fast); err != nil {
				return nil, err
			}
		}
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("no %s/%s benchmark pairs found in input", fast, slow)
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool {
		return f.Benchmarks[i].Name < f.Benchmarks[j].Name
	})
	return f, nil
}

// gate compares current speedups against the baseline, writing one line
// per benchmark to w, and returns an error describing every regression.
func gate(baseline, current *File, maxRegress float64, w io.Writer) error {
	cur := map[string]Entry{}
	for _, e := range current.Benchmarks {
		cur[e.Name] = e
	}
	var failures []string
	for _, base := range baseline.Benchmarks {
		got, ok := cur[base.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from current run", base.Name))
			continue
		}
		ratio := base.Speedup / got.Speedup
		status := "ok"
		if ratio > maxRegress {
			status = "REGRESSED"
			failures = append(failures,
				fmt.Sprintf("%s: speedup %.2fx, baseline %.2fx (%.2fx regression > %.2fx allowed)",
					base.Name, got.Speedup, base.Speedup, ratio, maxRegress))
		}
		fmt.Fprintf(w, "%-40s speedup %6.2fx  baseline %6.2fx  %s\n",
			base.Name, got.Speedup, base.Speedup, status)
	}
	for _, e := range current.Benchmarks {
		found := false
		for _, base := range baseline.Benchmarks {
			if base.Name == e.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(w, "%-40s speedup %6.2fx  (new, not in baseline)\n", e.Name, e.Speedup)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("speedup regressions:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point. Exit codes: 0 success, 1 parse/gate
// failure, 2 flag errors.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		record        = fs.Bool("record", false, "parse bench output from stdin and write the baseline JSON")
		out           = fs.String("o", "BENCH_kernels.json", "output path for -record ('-' = stdout)")
		gateFile      = fs.String("gate", "", "baseline JSON to gate the stdin bench output against")
		maxRegress    = fs.Float64("max-regress", 1.25, "maximum allowed baseline/current speedup ratio")
		pair          = fs.String("pair", "kernel,scalar", "fast,slow leaf names identifying the two sides of each benchmark pair")
		allowUnpaired = fs.Bool("allow-unpaired", false, "skip (with a warning) groups present on only one side instead of failing")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if *record == (*gateFile != "") {
		fmt.Fprintln(stderr, "benchjson: exactly one of -record or -gate is required")
		fs.Usage()
		return 2
	}
	if *maxRegress < 1 {
		fmt.Fprintf(stderr, "benchjson: -max-regress must be >= 1, got %v\n", *maxRegress)
		return 2
	}
	fast, slow, ok := strings.Cut(*pair, ",")
	if !ok || fast == "" || slow == "" || fast == slow {
		fmt.Fprintf(stderr, "benchjson: -pair must be two distinct comma-separated names, got %q\n", *pair)
		return 2
	}
	current, err := parse(stdin, fast, slow, *allowUnpaired, stderr)
	if err != nil {
		return fail(err)
	}
	if *record {
		current.Note = fmt.Sprintf("%s-vs-%s speedup baseline; regenerate with: "+
			"go test -run xxx -bench <pattern> | go run ./cmd/benchjson -record -pair %s",
			fast, slow, *pair)
		current.Recorded = time.Now().UTC().Format("2006-01-02")
		b, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			return fail(err)
		}
		b = append(b, '\n')
		if *out == "-" {
			_, err = stdout.Write(b)
		} else {
			err = os.WriteFile(*out, b, 0o644)
		}
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "benchjson: recorded %d benchmark pairs\n", len(current.Benchmarks))
		return 0
	}
	raw, err := os.ReadFile(*gateFile)
	if err != nil {
		return fail(err)
	}
	var baseline File
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fail(fmt.Errorf("parsing baseline %s: %w", *gateFile, err))
	}
	if err := gate(&baseline, current, *maxRegress, stdout); err != nil {
		return fail(err)
	}
	return 0
}
