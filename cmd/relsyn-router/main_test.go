package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lockedBuffer lets the test poll output written by the daemon
// goroutine without racing.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on ([^\s,]+)`)

// startRouter runs the daemon on an ephemeral port and returns its base
// URL, signal channel, and a channel carrying the exit code.
func startRouter(t *testing.T, args []string, out *lockedBuffer, errOut io.Writer) (string, chan os.Signal, chan int) {
	t.Helper()
	sig := make(chan os.Signal, 2)
	code := make(chan int, 1)
	go func() { code <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), out, errOut, sig) }()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], sig, code
		}
		select {
		case c := <-code:
			t.Fatalf("daemon exited %d before listening; output: %q", c, out.String())
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never announced its address; output: %q", out.String())
	return "", nil, nil
}

func TestFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing peers", nil, "-peers is required"},
		{"duplicate peer", []string{"-peers", "a:1,b:2,a:1"}, "duplicate peer"},
		{"positional args", []string{"-peers", "a:1", "extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut lockedBuffer
			if code := run(tc.args, &out, &errOut, nil); code != 2 {
				t.Fatalf("exit code = %d, want 2", code)
			}
			if !strings.Contains(errOut.String(), tc.want) {
				t.Fatalf("stderr %q does not mention %q", errOut.String(), tc.want)
			}
		})
	}
}

func TestListenFailureExitsOne(t *testing.T) {
	// Occupy a port, then ask the daemon to bind it.
	ts := httptest.NewServer(http.NotFoundHandler())
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	var out, errOut lockedBuffer
	if code := run([]string{"-addr", addr, "-peers", "127.0.0.1:1"}, &out, &errOut, nil); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %q", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "listen") {
		t.Fatalf("stderr %q does not mention listen", errOut.String())
	}
}

// The daemon boots against an unreachable fleet (the router is
// stateless — shard liveness is a data-plane concern), serves its
// control endpoints, and drains cleanly on the first signal.
func TestGracefulShutdown(t *testing.T) {
	var out, errOut lockedBuffer
	url, sig, code := startRouter(t, []string{"-peers", "127.0.0.1:1,127.0.0.1:2"}, &out, &errOut)

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "relsyn_cluster_forwards_total") {
		t.Fatalf("/metrics missing relsyn_cluster_forwards_total:\n%s", body)
	}

	sig <- syscall.SIGTERM
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code = %d, want 0; stderr: %q", c, errOut.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("stdout %q missing drain message", out.String())
	}
}
