// Command relsyn-router is the stateless front door of a sharded
// relsynd fleet. It owns no compute and no cache: each submission is
// parsed just far enough to content-address it, mapped onto the
// consistent-hash ring (internal/cluster), and forwarded to the owning
// shard — hedging to the next ring replica when the owner is slow,
// failing over past dead shards behind per-peer circuit breakers, and
// refusing forwarded re-entry (508) so a misconfigured -peers list that
// includes the router itself cannot loop.
//
// Usage:
//
//	relsyn-router -peers host:port,... [-addr :8338] [-vnodes 64]
//	              [-hedge-after 100ms] [-forward-timeout 2m]
//	              [-max-attempts 2] [-breaker-threshold 3]
//	              [-breaker-cooldown 5s] [-drain-timeout 30s]
//
// -peers is the full shard fleet, in any order — the same list every
// relsynd was given, so router and shards agree on placement. -vnodes
// must match the shards' setting. -hedge-after 0 disables hedging.
//
// Endpoints mirror a shard's public surface (POST /v1/synth,
// POST /v1/synth/batch, GET /v1/jobs/{id}) plus router-side GET
// /healthz (200 while at least one shard is live; per-peer breaker
// state in the body), /statsz (ring + peer snapshot), and /metrics
// (relsyn_cluster_* series). See DESIGN §12.
//
// SIGINT/SIGTERM shuts down gracefully: in-flight forwards finish
// (bounded by -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relsyn/internal/cluster"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// routerConfig is the parsed flag set.
type routerConfig struct {
	addr         string
	drainTimeout time.Duration
	router       cluster.RouterConfig
}

func parseFlags(args []string, stderr io.Writer) (*routerConfig, error) {
	fs := flag.NewFlagSet("relsyn-router", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &routerConfig{}
	var peers string
	fs.StringVar(&cfg.addr, "addr", ":8338", "listen address")
	fs.StringVar(&peers, "peers", "", "comma-separated relsynd shard fleet (required)")
	fs.IntVar(&cfg.router.VNodes, "vnodes", 0, "virtual nodes per peer on the placement ring (default 64; must match the shards)")
	fs.DurationVar(&cfg.router.HedgeAfter, "hedge-after", 100*time.Millisecond, "race the next ring replica after this delay (0 = no hedging)")
	fs.DurationVar(&cfg.router.ForwardTimeout, "forward-timeout", 0, "budget for one forwarded exchange (default 2m)")
	fs.IntVar(&cfg.router.MaxAttempts, "max-attempts", 0, "per-shard retry budget before failing over (default 2)")
	fs.IntVar(&cfg.router.BreakerThreshold, "breaker-threshold", 0, "consecutive failures that open a peer's breaker (default 3)")
	fs.DurationVar(&cfg.router.BreakerCooldown, "breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (default 5s)")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "grace period for in-flight forwards on shutdown")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if peers == "" {
		fs.Usage()
		return nil, errors.New("-peers is required")
	}
	cfg.router.Peers = strings.Split(peers, ",")
	// Validate the ring now so flag errors exit 2 with a parse-time
	// message instead of a boot failure.
	if _, err := cluster.NewRing(cfg.router.Peers, cfg.router.VNodes); err != nil {
		fs.Usage()
		return nil, err
	}
	return cfg, nil
}

// run is the testable entry point. Exit codes: 0 clean shutdown, 1
// runtime failure, 2 flag errors.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintf(stderr, "relsyn-router: %v\n", err)
		return 2
	}
	rt, err := cluster.NewRouter(cfg.router)
	if err != nil {
		fmt.Fprintf(stderr, "relsyn-router: %v\n", err)
		return 1
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintf(stderr, "relsyn-router: listen: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(stdout, "relsyn-router: listening on %s, routing %d shards\n",
		ln.Addr(), len(rt.Ring().Peers()))

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "relsyn-router: serve: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stdout, "relsyn-router: %v received, draining (up to %s)\n", s, cfg.drainTimeout)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	go func() {
		select {
		case s := <-sig:
			fmt.Fprintf(stderr, "relsyn-router: second %v, forcing stop\n", s)
			cancel()
		case <-drainCtx.Done():
		}
	}()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "relsyn-router: shutdown: %v\n", err)
		httpSrv.Close()
		return 1
	}
	fmt.Fprintln(stdout, "relsyn-router: drained cleanly")
	return 0
}
