// Command relsyn-fleet is the load generator + verdict engine behind
// the "millions of users" claim: it drives a relsynd deployment with a
// deterministic, seeded traffic mix — hot-key Zipf skew over a pinned
// spec pool, batch bursts, async submit-then-poll waves, hostile
// oversized/invalid bodies, and a C^f/DC-fraction grid sweep from
// internal/synthetic — scrapes /metrics and /statsz before and after,
// and emits FLEET_report.json with pass/fail SLO verdicts. The heavy
// lifting lives in internal/fleet; this binary adds target wiring.
//
// Usage (attach to a live deployment):
//
//	relsyn-fleet -targets http://router:8338,http://shard1:8337,... \
//	    -duration 30s -rate 50 [-mix hot=0.5,grid=0.1,batch=0.15,async=0.2,hostile=0.05] \
//	    [-slo-p99 2s -slo-error-rate 0.01 -slo-hit-rate 0.2] [-report FLEET_report.json]
//
// The FIRST -targets entry is driven; every entry is scraped, so list
// the router first and then the shards to get fleet-wide cache and
// breaker counters into the verdicts.
//
// Usage (self-contained: spawn an in-process cluster):
//
//	relsyn-fleet -spawn 3 [-kill-after 8s] -duration 20s -rate 40 ...
//
// -spawn N boots N real relsynd shards over loopback TCP (plus a
// relsyn-router in front when N > 1) inside this process, drives them,
// and tears them down — the one-command soak used by CI. -kill-after D
// kills shard 0 mid-soak, reproducing the acceptance scenario: the
// report must still show zero lost accepted jobs.
//
// Exit codes: 0 = SLO verdict pass, 1 = verdict fail, 2 = usage error,
// 3 = runtime failure (could not build the pool, reach the target, or
// write the report).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relsyn/client"
	"relsyn/internal/cluster"
	"relsyn/internal/fleet"
	"relsyn/internal/obs"
	"relsyn/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

type fleetFlags struct {
	targets   string
	spawn     int
	killAfter time.Duration

	duration       time.Duration
	totalOps       int
	rate           float64
	maxOutstanding int
	mix            string
	batchSize      int
	zipfS          float64
	seed           int64
	reqTimeout     time.Duration
	drainGrace     time.Duration

	poolSize int
	inputs   int
	outputs  int

	sloP99        time.Duration
	sloErrorRate  float64
	sloHitRate    float64
	sloMaxLost    int64
	expectLoops   bool
	expectBreaker bool

	report string
	quiet  bool
}

func parseFlags(args []string, stderr io.Writer) (*fleetFlags, error) {
	fs := flag.NewFlagSet("relsyn-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	f := &fleetFlags{}
	fs.StringVar(&f.targets, "targets", "", "comma-separated base URLs; first is driven, all are scraped")
	fs.IntVar(&f.spawn, "spawn", 0, "boot N in-process shards (+router when N>1) instead of attaching")
	fs.DurationVar(&f.killAfter, "kill-after", 0, "with -spawn: kill shard 0 after this delay")
	fs.DurationVar(&f.duration, "duration", 30*time.Second, "soak length (wall clock)")
	fs.IntVar(&f.totalOps, "total-ops", 0, "generate exactly N arrivals instead of running -duration")
	fs.Float64Var(&f.rate, "rate", 50, "open-loop arrival rate per second (<=0: unpaced closed-loop)")
	fs.IntVar(&f.maxOutstanding, "max-outstanding", 128, "in-flight op cap (closed-loop fallback)")
	fs.StringVar(&f.mix, "mix", "", "traffic mix, e.g. hot=0.5,grid=0.1,batch=0.15,async=0.2,hostile=0.05")
	fs.IntVar(&f.batchSize, "batch-size", 8, "specs per batch op")
	fs.Float64Var(&f.zipfS, "zipf", 1.25, "hot-key Zipf exponent (>1)")
	fs.Int64Var(&f.seed, "seed", 1, "master seed for pool, mix schedule, and pacing")
	fs.DurationVar(&f.reqTimeout, "req-timeout", 30*time.Second, "per-op end-to-end budget")
	fs.DurationVar(&f.drainGrace, "drain-grace", 30*time.Second, "wait for in-flight ops after generation stops")
	fs.IntVar(&f.poolSize, "pool", 24, "pinned spec pool size (C^f × DC grid)")
	fs.IntVar(&f.inputs, "inputs", 8, "truth-table inputs per spec")
	fs.IntVar(&f.outputs, "outputs", 2, "outputs per spec")
	fs.DurationVar(&f.sloP99, "slo-p99", 2*time.Second, "p99 bound on sync latency (0 disables)")
	fs.Float64Var(&f.sloErrorRate, "slo-error-rate", 0.01, "error-rate ceiling (<0 disables)")
	fs.Float64Var(&f.sloHitRate, "slo-hit-rate", 0, "cache hit-rate floor (0 disables)")
	fs.Int64Var(&f.sloMaxLost, "slo-max-lost", 0, "lost accepted-jobs ceiling (production bar: 0)")
	fs.BoolVar(&f.expectLoops, "expect-no-loops", true, "assert zero forwarding-loop breaks")
	fs.BoolVar(&f.expectBreaker, "expect-no-breaker-trips", true, "assert zero store breaker trips")
	fs.StringVar(&f.report, "report", "FLEET_report.json", "report path ('-' for stdout)")
	fs.BoolVar(&f.quiet, "q", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if (f.targets == "") == (f.spawn == 0) {
		return nil, fmt.Errorf("exactly one of -targets or -spawn is required")
	}
	if f.spawn < 0 {
		return nil, fmt.Errorf("-spawn %d must be positive", f.spawn)
	}
	if f.killAfter > 0 && f.spawn == 0 {
		return nil, fmt.Errorf("-kill-after requires -spawn")
	}
	if f.killAfter > 0 && f.spawn < 2 {
		return nil, fmt.Errorf("-kill-after needs -spawn >= 2 (killing the only shard proves nothing)")
	}
	return f, nil
}

// spawned is an in-process shard set (plus router when n > 1).
type spawned struct {
	driverURL string
	scrape    []string
	shards    []*http.Server
	servers   []*server.Server
	listeners []net.Listener
	router    *http.Server
	routerLn  net.Listener
}

// killShard severs shard i the way a process death would: connections
// reset, port closed, workers stopped without drain.
func (sp *spawned) killShard(i int) {
	sp.listeners[i].Close()
	sp.shards[i].Close()
	sp.servers[i].Close()
}

func (sp *spawned) shutdown() {
	for i := range sp.shards {
		sp.listeners[i].Close()
		sp.shards[i].Close()
		sp.servers[i].Close()
	}
	if sp.router != nil {
		sp.routerLn.Close()
		sp.router.Close()
	}
}

// spawnCluster boots n real relsynd shards on loopback (claiming every
// listener first so the -peers membership is complete before traffic),
// and fronts them with a relsyn-router when n > 1.
func spawnCluster(n int) (*spawned, error) {
	sp := &spawned{}
	peers := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			sp.shutdown()
			return nil, err
		}
		sp.listeners = append(sp.listeners, ln)
		peers[i] = ln.Addr().String()
	}
	for i := 0; i < n; i++ {
		cfg := server.Config{Workers: 0, Metrics: obs.NewRegistry()}
		if n > 1 {
			cfg.Peers = peers
			cfg.SelfAddr = peers[i]
		}
		srv := server.New(cfg)
		hs := &http.Server{Handler: srv.Handler()}
		sp.servers = append(sp.servers, srv)
		sp.shards = append(sp.shards, hs)
		go hs.Serve(sp.listeners[i])
		sp.scrape = append(sp.scrape, "http://"+peers[i])
	}
	if n == 1 {
		sp.driverURL = sp.scrape[0]
		return sp, nil
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{Peers: peers, Metrics: obs.NewRegistry()})
	if err != nil {
		sp.shutdown()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sp.shutdown()
		return nil, err
	}
	sp.routerLn = ln
	sp.router = &http.Server{Handler: rt.Handler()}
	go sp.router.Serve(ln)
	sp.driverURL = "http://" + ln.Addr().String()
	sp.scrape = append([]string{sp.driverURL}, sp.scrape...)
	return sp, nil
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	f, err := parseFlags(args, stderr)
	if err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		fmt.Fprintf(stderr, "relsyn-fleet: %v\n", err)
		return 2
	}
	logf := func(format string, a ...any) {
		if !f.quiet {
			fmt.Fprintf(stderr, format+"\n", a...)
		}
	}

	mix := fleet.DefaultMix()
	if f.mix != "" {
		if mix, err = fleet.ParseMix(f.mix); err != nil {
			fmt.Fprintf(stderr, "relsyn-fleet: %v\n", err)
			return 2
		}
	}

	logf("relsyn-fleet: building %d-spec pool (n=%d, m=%d, seed=%d)", f.poolSize, f.inputs, f.outputs, f.seed)
	pool, err := fleet.BuildPool(fleet.PoolParams{
		Inputs: f.inputs, Outputs: f.outputs, Size: f.poolSize, Seed: f.seed,
	})
	if err != nil {
		fmt.Fprintf(stderr, "relsyn-fleet: %v\n", err)
		return 3
	}

	var driverURL string
	var scrape []string
	if f.spawn > 0 {
		sp, err := spawnCluster(f.spawn)
		if err != nil {
			fmt.Fprintf(stderr, "relsyn-fleet: spawn: %v\n", err)
			return 3
		}
		defer sp.shutdown()
		driverURL, scrape = sp.driverURL, sp.scrape
		logf("relsyn-fleet: spawned %d shard(s), driving %s", f.spawn, driverURL)
		if f.killAfter > 0 {
			victim := sp.scrape[len(sp.scrape)-f.spawn] // first shard entry
			go func() {
				select {
				case <-ctx.Done():
				case <-time.After(f.killAfter):
					logf("relsyn-fleet: killing shard 0 (%s) after %s", victim, f.killAfter)
					sp.killShard(0)
				}
			}()
		}
	} else {
		for _, t := range strings.Split(f.targets, ",") {
			t = strings.TrimSpace(t)
			if t == "" {
				continue
			}
			scrape = append(scrape, strings.TrimRight(t, "/"))
		}
		if len(scrape) == 0 {
			fmt.Fprintf(stderr, "relsyn-fleet: -targets has no URLs\n")
			return 2
		}
		driverURL = scrape[0]
	}

	driver, err := client.New(client.Config{BaseURL: driverURL, Metrics: obs.NewRegistry()})
	if err != nil {
		fmt.Fprintf(stderr, "relsyn-fleet: %v\n", err)
		return 3
	}

	slo := fleet.SLO{
		P99:                  f.sloP99,
		MaxErrorRate:         f.sloErrorRate,
		SkipErrorRate:        f.sloErrorRate < 0,
		MinCacheHitRate:      f.sloHitRate,
		MaxLostJobs:          f.sloMaxLost,
		ExpectNoLoopsBroken:  f.expectLoops,
		ExpectNoBreakerTrips: f.expectBreaker,
	}
	if slo.SkipErrorRate {
		slo.MaxErrorRate = 0
	}

	rep, err := fleet.Run(ctx, fleet.Config{
		Driver:         driver,
		ScrapeTargets:  scrape,
		Pool:           pool,
		Mix:            mix,
		Duration:       f.duration,
		TotalOps:       f.totalOps,
		Rate:           f.rate,
		MaxOutstanding: f.maxOutstanding,
		BatchSize:      f.batchSize,
		ZipfS:          f.zipfS,
		Seed:           f.seed,
		SLO:            slo,
		ReqTimeout:     f.reqTimeout,
		DrainGrace:     f.drainGrace,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(stderr, "relsyn-fleet: %v\n", err)
		return 3
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "relsyn-fleet: marshal report: %v\n", err)
		return 3
	}
	raw = append(raw, '\n')
	if f.report == "-" {
		if _, err := stdout.Write(raw); err != nil {
			fmt.Fprintf(stderr, "relsyn-fleet: write report: %v\n", err)
			return 3
		}
	} else {
		if err := os.WriteFile(f.report, raw, 0o644); err != nil {
			fmt.Fprintf(stderr, "relsyn-fleet: write report: %v\n", err)
			return 3
		}
		logf("relsyn-fleet: wrote %s", f.report)
	}

	for _, v := range rep.SLOs {
		state := "PASS"
		if v.Skipped {
			state = "SKIP"
		} else if !v.Pass {
			state = "FAIL"
		}
		fmt.Fprintf(stdout, "%-4s %-22s observed=%-12.6g threshold=%-12.6g %s\n",
			state, v.Name, v.Observed, v.Threshold, v.Detail)
	}
	fmt.Fprintf(stdout, "verdict: %s (accepted=%d resolved=%d lost=%d, %.1f ops/s)\n",
		rep.Verdict, rep.Accepted, rep.Resolved, rep.Lost, rep.AchievedRate)
	if rep.Verdict != "pass" {
		return 1
	}
	return 0
}
