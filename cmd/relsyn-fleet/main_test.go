package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relsyn/internal/fleet"
)

func TestParseFlagRejections(t *testing.T) {
	cases := [][]string{
		{},                                      // neither -targets nor -spawn
		{"-targets", "http://x", "-spawn", "1"}, // both
		{"-spawn", "1", "-kill-after", "2s"},    // kill needs >= 2 shards
		{"-targets", "http://x", "-kill-after", "2s"}, // kill needs spawn
		{"-targets", "http://x", "extra"},             // positional garbage
	}
	var sink bytes.Buffer
	for _, args := range cases {
		if _, err := parseFlags(args, &sink); err == nil {
			t.Fatalf("parseFlags(%v) = nil error, want error", args)
		}
	}
	if code := run(context.Background(), []string{"-spawn", "-1"}, &sink, &sink); code != 2 {
		t.Fatalf("usage error exit = %d, want 2", code)
	}
}

// TestRunSpawnSingleNode is the CLI end-to-end: spawn one real shard,
// drive a short mixed soak, and require a written report with a pass
// verdict and exit 0.
func TestRunSpawnSingleNode(t *testing.T) {
	report := filepath.Join(t.TempDir(), "FLEET_report.json")
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-spawn", "1",
		"-duration", "1200ms",
		"-rate", "120",
		"-inputs", "6",
		"-outputs", "1",
		"-pool", "8",
		"-slo-p99", "5s",
		"-slo-error-rate", "0",
		"-slo-hit-rate", "0.1",
		"-report", report,
		"-q",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep fleet.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != fleet.ReportSchema || rep.Verdict != "pass" || rep.Lost != 0 {
		t.Fatalf("report schema=%q verdict=%q lost=%d:\n%s", rep.Schema, rep.Verdict, rep.Lost, raw)
	}
	if !strings.Contains(out.String(), "verdict: pass") {
		t.Fatalf("stdout missing verdict line:\n%s", out.String())
	}
}

// TestRunSpawnKillMidSoak exercises the acceptance flags end to end:
// 3 spawned shards, shard 0 killed mid-run, report still pass with
// zero lost jobs.
func TestRunSpawnKillMidSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	report := filepath.Join(t.TempDir(), "FLEET_report.json")
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{
		"-spawn", "3",
		"-kill-after", "1s",
		"-duration", "3s",
		"-rate", "80",
		"-inputs", "6",
		"-outputs", "1",
		"-pool", "10",
		"-slo-p99", "8s",
		"-slo-error-rate", "0.02",
		"-expect-no-breaker-trips=false",
		"-report", report,
		"-q",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	var rep fleet.Report
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != "pass" || rep.Lost != 0 {
		t.Fatalf("verdict=%q lost=%d:\n%s", rep.Verdict, rep.Lost, raw)
	}
	if len(rep.LostTargets) != 1 {
		t.Fatalf("lost_targets = %v, want exactly the killed shard", rep.LostTargets)
	}
}
