// Command relsynd is the long-running synthesis service: an HTTP/JSON
// front end over a bounded job queue, a fixed worker pool running the
// reliability-driven synthesis pipeline, and a content-addressed result
// cache. See internal/server for the API surface.
//
// Usage:
//
//	relsynd [-addr :8337] [-workers N] [-queue-depth N] [-cache-size N]
//	        [-default-timeout 30s] [-max-timeout 5m] [-retry-after 1s]
//	        [-drain-timeout 30s] [-pprof-addr localhost:6060]
//	        [-max-bdd-nodes N] [-max-conflicts N] [-max-aig-nodes N] [-j N]
//	        [-dc-mode auto|exhaustive|windowed-sat] [-window-tfi N] [-window-tfo N]
//	        [-store-dir DIR] [-wal-sync always|interval|off]
//	        [-peers host:port,... -self host:port] [-vnodes 64]
//	        [-peer-fill-timeout 1s]
//
// Network jobs: POST /v1/resyn reassigns the internal don't-cares of a
// BLIF network (see internal/pipeline.RunNetworkJob). -dc-mode,
// -window-tfi, and -window-tfo set server-wide defaults for the
// DC-extraction engine applied to resyn jobs whose options carry none —
// like the budget flags they are applied in the backend, after request
// validation, so per-request options always win.
//
// Clustering: -peers (the full shard fleet, identical on every node and
// on the router) plus -self (this node's entry in that list) makes the
// shard cluster-aware: before computing a cache miss it asks the key's
// consistent-hash ring owner for the finished result via the internal
// GET /v1/cache/{key} endpoint, so keys that arrive here via router
// hedging or failover are fetched instead of recomputed. -vnodes must
// match the router's setting. See cmd/relsyn-router and DESIGN §12.
//
// Durability: -store-dir enables the crash-safe job store (internal/
// store) — every accepted job is WAL-logged, and on restart interrupted
// jobs are re-enqueued (deduplicated against recovered results) while
// finished jobs stay pollable under their old IDs. -wal-sync picks the
// fsync policy: "always" (default; no accepted record lost even to a
// machine crash), "interval" (bounded loss window, lower latency), or
// "off" (process-crash safe only). Without -store-dir the service is
// volatile, as before.
//
// Observability: GET /metrics serves the Prometheus text exposition of
// every queue/cache/pipeline/HTTP series, GET /statsz the JSON view.
// -pprof-addr (off by default) starts a second listener serving only
// net/http/pprof — kept off the public mux so profiling endpoints are
// never exposed on the service port.
//
// SIGINT/SIGTERM starts a graceful drain: the listener stops accepting,
// queued and in-flight jobs run to completion (bounded by
// -drain-timeout), then the process exits 0. A second signal forces an
// immediate stop with exit 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relsyn"
	"relsyn/internal/census"
	"relsyn/internal/cluster"
	"relsyn/internal/network"
	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
	"relsyn/internal/server"
	"relsyn/internal/store"
	"relsyn/internal/tt"
)

// pprofMux serves the standard net/http/pprof endpoints on an explicit
// mux (the package's init registers on http.DefaultServeMux, which we
// never serve).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// daemonConfig is the parsed flag set.
type daemonConfig struct {
	addr         string
	pprofAddr    string
	drainTimeout time.Duration
	kernels      bool
	censusMB     int
	storeDir     string
	walSync      string
	peers        string
	server       server.Config
	budget       budgetDefaults
}

// budgetDefaults are server-wide resource caps applied to jobs that do
// not carry their own.
type budgetDefaults struct {
	maxBDDNodes  int
	maxConflicts int64
	maxAIGNodes  int
	parallelism  int
	// Network-job (POST /v1/resyn) extraction defaults, applied to jobs
	// whose options carry none: DC engine plus window depths.
	dcMode    string
	windowTFI int
	windowTFO int
}

func parseFlags(args []string, stderr io.Writer) (*daemonConfig, error) {
	fs := flag.NewFlagSet("relsynd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &daemonConfig{}
	fs.StringVar(&cfg.addr, "addr", ":8337", "listen address")
	fs.IntVar(&cfg.server.Workers, "workers", 0, "worker pool size (default: GOMAXPROCS)")
	fs.IntVar(&cfg.server.QueueDepth, "queue-depth", 0, "job queue depth (default 256)")
	fs.IntVar(&cfg.server.CacheSize, "cache-size", 0, "result cache entries (default 512)")
	fs.BoolVar(&cfg.server.DisableCache, "no-cache", false, "disable the result cache")
	fs.DurationVar(&cfg.server.DefaultTimeout, "default-timeout", 0, "per-job budget when the request carries none (default 30s)")
	fs.DurationVar(&cfg.server.MaxTimeout, "max-timeout", 0, "cap on requested per-job timeouts (default 5m)")
	fs.DurationVar(&cfg.server.RetryAfter, "retry-after", 0, "Retry-After hint on 429 responses (default 1s)")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "grace period for finishing jobs on shutdown")
	fs.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	fs.IntVar(&cfg.budget.maxBDDNodes, "max-bdd-nodes", 0, "default BDD node budget for jobs that carry none (0 = unlimited)")
	fs.Int64Var(&cfg.budget.maxConflicts, "max-conflicts", 0, "default SAT conflict budget for jobs that carry none (0 = unlimited)")
	fs.IntVar(&cfg.budget.maxAIGNodes, "max-aig-nodes", 0, "default AIG node budget for jobs that carry none (0 = unlimited)")
	fs.IntVar(&cfg.budget.parallelism, "j", 0, "default per-job analysis parallelism for jobs that carry none (0 = GOMAXPROCS, 1 = sequential)")
	fs.StringVar(&cfg.budget.dcMode, "dc-mode", "", "default DC-extraction engine for network jobs that carry none: auto, exhaustive, or windowed-sat")
	fs.IntVar(&cfg.budget.windowTFI, "window-tfi", 0, "default window fanin depth for windowed-sat network jobs that carry none (0 = engine default, negative = full)")
	fs.IntVar(&cfg.budget.windowTFO, "window-tfo", 0, "default window fanout depth for windowed-sat network jobs that carry none (0 = engine default, negative = full)")
	fs.BoolVar(&cfg.kernels, "kernels", true, "use word-parallel bitset kernels process-wide (false = bit-identical scalar paths); per-job override via the \"kernels\" wire option")
	fs.IntVar(&cfg.censusMB, "census-cache-mb", 64, "byte budget (MiB) of the fused neighbor-census cache (0 disables census caching)")
	fs.StringVar(&cfg.storeDir, "store-dir", "", "directory for the durable job store (empty = volatile, no durability)")
	fs.StringVar(&cfg.walSync, "wal-sync", "always", "WAL fsync policy: always, interval, or off")
	fs.StringVar(&cfg.peers, "peers", "", "comma-separated shard fleet (including this node) for peer cache fill; empty = standalone")
	fs.StringVar(&cfg.server.SelfAddr, "self", "", "this node's entry in -peers (required with -peers)")
	fs.IntVar(&cfg.server.PeerVNodes, "vnodes", 0, "virtual nodes per peer on the placement ring (default 64; must match the router)")
	fs.DurationVar(&cfg.server.PeerFillTimeout, "peer-fill-timeout", 0, "budget for one peer cache-fill fetch (default 1s)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.budget.parallelism < 0 {
		fs.Usage()
		return nil, fmt.Errorf("-j must be >= 0, got %d", cfg.budget.parallelism)
	}
	switch cfg.budget.dcMode {
	case "", "auto", "exhaustive", "windowed-sat":
	default:
		fs.Usage()
		return nil, fmt.Errorf("-dc-mode must be auto, exhaustive, or windowed-sat, got %q", cfg.budget.dcMode)
	}
	if _, err := store.ParseSyncMode(cfg.walSync); err != nil {
		fs.Usage()
		return nil, err
	}
	if err := cfg.validateCluster(); err != nil {
		fs.Usage()
		return nil, err
	}
	return cfg, nil
}

// validateCluster checks the -peers/-self pair before server.New (which
// treats cluster misconfiguration as a boot-time panic): the list must
// build a valid ring and -self must be one of its members.
func (cfg *daemonConfig) validateCluster() error {
	if cfg.peers == "" {
		if cfg.server.SelfAddr != "" {
			return errors.New("-self requires -peers")
		}
		return nil
	}
	peers := strings.Split(cfg.peers, ",")
	ring, err := cluster.NewRing(peers, cfg.server.PeerVNodes)
	if err != nil {
		return err
	}
	self := strings.TrimSpace(cfg.server.SelfAddr)
	if self == "" {
		return errors.New("-peers requires -self (this node's entry in the list)")
	}
	for _, p := range ring.Peers() {
		if p == self {
			cfg.server.Peers = peers
			cfg.server.SelfAddr = self
			return nil
		}
	}
	return fmt.Errorf("-self %q is not in -peers %v", self, ring.Peers())
}

// backendWithDefaults wraps pipeline.RunJob, filling in server-wide
// resource budgets for jobs that do not set their own. Applied in the
// backend (after the cache key is derived) so the defaults do not
// fragment the cache when they change across restarts. Parallelism gets
// the same treatment: it is an execution knob, never part of the cache
// key (JobOptions.Key strips it), so the server-wide -j default is also
// applied post-key.
func (b budgetDefaults) backend() server.Backend {
	return func(ctx context.Context, f *tt.Function, jo pipeline.JobOptions) (*pipeline.JobResult, error) {
		if jo.MaxBDDNodes == 0 {
			jo.MaxBDDNodes = b.maxBDDNodes
		}
		if jo.MaxConflicts == 0 {
			jo.MaxConflicts = b.maxConflicts
		}
		if jo.MaxAIGNodes == 0 {
			jo.MaxAIGNodes = b.maxAIGNodes
		}
		if jo.Parallelism == 0 {
			jo.Parallelism = b.parallelism
		}
		return pipeline.RunJob(ctx, f, jo)
	}
}

// resynBackend wraps pipeline.RunNetworkJob for POST /v1/resyn, filling
// server-wide extraction and budget defaults for jobs that do not set
// their own. Network jobs have no cache tier, but the same post-
// validation placement keeps per-request options authoritative.
func (b budgetDefaults) resynBackend() server.ResynBackend {
	return func(ctx context.Context, nw *network.Network, jo pipeline.JobOptions) (*pipeline.NetworkJobResult, error) {
		if jo.MaxConflicts == 0 {
			jo.MaxConflicts = b.maxConflicts
		}
		if jo.DCMode == "" && b.dcMode != "" && b.dcMode != "auto" {
			jo.DCMode = b.dcMode
		}
		if jo.WindowTFI == 0 {
			jo.WindowTFI = b.windowTFI
		}
		if jo.WindowTFO == 0 {
			jo.WindowTFO = b.windowTFO
		}
		return pipeline.RunNetworkJob(ctx, nw, jo)
	}
}

// run is the testable entry point: flags in, exit code out, shutdown by
// signal channel. Exit codes: 0 clean (including graceful drain), 1
// runtime failure or forced stop, 2 flag errors.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintf(stderr, "relsynd: %v\n", err)
		return 2
	}
	// Process-wide kernel switch, set before the worker pool starts any
	// job (the scalar paths are bit-identical, only slower).
	relsyn.SetKernels(cfg.kernels)
	// Fused-census cache: sized (or disabled) before any worker touches
	// census.Default, and instrumented on the same registry the server
	// exports so /metrics carries relsyn_census_{hits,misses,bytes} from
	// the first scrape.
	if cfg.censusMB != 64 {
		if cfg.censusMB <= 0 {
			census.SetDefault(nil)
		} else {
			census.SetDefault(census.NewEngine(census.DefaultMaxEntries, int64(cfg.censusMB)<<20))
		}
	}
	if eng := census.Default; eng != nil {
		reg := cfg.server.Metrics
		if reg == nil {
			reg = obs.Default
		}
		eng.Instrument(reg)
	}
	cfg.server.Backend = cfg.budget.backend()
	cfg.server.ResynBackend = cfg.budget.resynBackend()

	// Durable store: opened (replaying any crash leftovers) before the
	// server exists, recovered into it before the listener takes traffic.
	var st *store.Store
	var recovered []store.Record
	if cfg.storeDir != "" {
		mode, _ := store.ParseSyncMode(cfg.walSync) // validated in parseFlags
		reg := cfg.server.Metrics
		if reg == nil {
			reg = obs.Default // same registry server.New defaults to
		}
		var err error
		st, recovered, err = store.Open(store.Options{
			Dir:     cfg.storeDir,
			Sync:    mode,
			Metrics: reg,
		})
		if err != nil {
			// store errors are already "store: ..."-prefixed.
			fmt.Fprintf(stderr, "relsynd: %v\n", err)
			return 1
		}
		cfg.server.Store = st
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintf(stderr, "relsynd: listen: %v\n", err)
		return 1
	}

	srv := server.New(cfg.server)
	if st != nil {
		rs := srv.Recover(recovered)
		fmt.Fprintf(stdout,
			"relsynd: store %s recovered %d records (requeued %d, deduped %d, unreplayable %d)\n",
			cfg.storeDir, len(recovered), rs.Requeued, rs.Deduped, rs.Failed)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Opt-in pprof on its own listener, never on the service mux.
	var pprofSrv *http.Server
	if cfg.pprofAddr != "" {
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			ln.Close()
			fmt.Fprintf(stderr, "relsynd: pprof listen: %v\n", err)
			return 1
		}
		pprofSrv = &http.Server{
			Handler:           pprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() { _ = pprofSrv.Serve(pln) }()
		fmt.Fprintf(stdout, "relsynd: pprof on %s\n", pln.Addr())
	}
	defer func() {
		if pprofSrv != nil {
			pprofSrv.Close()
		}
	}()

	fmt.Fprintf(stdout, "relsynd: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Listener died underneath us; nothing to drain cleanly.
		srv.Close()
		fmt.Fprintf(stderr, "relsynd: serve: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stdout, "relsynd: %v received, draining (up to %s)\n", s, cfg.drainTimeout)
	}

	// Graceful drain: stop admitting, finish the backlog, then close the
	// listener. A second signal or the drain deadline forces the stop.
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	go func() {
		select {
		case s := <-sig:
			fmt.Fprintf(stderr, "relsynd: second %v, forcing stop\n", s)
			cancel()
		case <-drainCtx.Done():
		}
	}()

	drainErr := srv.Drain(drainCtx)
	shutErr := httpSrv.Shutdown(drainCtx)
	if st != nil {
		// Every drained job is terminal in the WAL; compact it so the next
		// start replays a snapshot instead of the whole log.
		if err := st.Checkpoint(); err != nil {
			fmt.Fprintf(stderr, "relsynd: store checkpoint: %v\n", err)
		}
		if err := st.Close(); err != nil {
			fmt.Fprintf(stderr, "relsynd: store close: %v\n", err)
		}
	}
	if drainErr != nil || (shutErr != nil && !errors.Is(shutErr, context.Canceled) && !errors.Is(shutErr, context.DeadlineExceeded)) {
		if drainErr != nil {
			fmt.Fprintf(stderr, "relsynd: drain: %v\n", drainErr)
		}
		if shutErr != nil {
			fmt.Fprintf(stderr, "relsynd: shutdown: %v\n", shutErr)
		}
		httpSrv.Close()
		return 1
	}
	fmt.Fprintln(stdout, "relsynd: drained cleanly")
	return 0
}
