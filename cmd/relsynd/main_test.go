package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lockedBuffer lets the test poll output written by the daemon
// goroutine without racing.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, signal channel, and a channel carrying the exit code.
func startDaemon(t *testing.T, args []string, out, errOut io.Writer) (string, chan os.Signal, chan int) {
	t.Helper()
	lb, ok := out.(*lockedBuffer)
	if !ok {
		t.Fatal("startDaemon needs a *lockedBuffer stdout")
	}
	sig := make(chan os.Signal, 2)
	code := make(chan int, 1)
	go func() { code <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), out, errOut, sig) }()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(lb.String()); m != nil {
			return "http://" + m[1], sig, code
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never announced its address; output: %q", lb.String())
	return "", nil, nil
}

func waitExit(t *testing.T, code chan int) int {
	t.Helper()
	select {
	case c := <-code:
		return c
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit")
		return -1
	}
}

const daemonPLA = `.i 3
.o 1
.p 4
000 1
011 1
101 1
11- -
.e
`

func TestDaemonServesAndDrainsOnSIGTERM(t *testing.T) {
	out, errOut := &lockedBuffer{}, &lockedBuffer{}
	base, sig, code := startDaemon(t, []string{"-workers", "2", "-drain-timeout", "20s"}, out, errOut)

	body, _ := json.Marshal(map[string]any{
		"pla":     daemonPLA,
		"options": map[string]any{"method": "rank", "fraction": 1.0},
	})
	resp, err := http.Post(base+"/v1/synth", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synth status %d: %s", resp.StatusCode, raw)
	}
	var envelope struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(raw, &envelope); err != nil || envelope.Status != "done" {
		t.Fatalf("envelope %s (err %v)", raw, err)
	}

	// Queue a couple of slow-ish jobs asynchronously, then immediately
	// signal: the drain must finish them before exiting.
	for i := 0; i < 2; i++ {
		b, _ := json.Marshal(map[string]any{
			"pla":     strings.Replace(daemonPLA, "000 1", fmt.Sprintf("0%d0 1", i), 1),
			"options": map[string]any{"method": "complete"},
			"wait":    false,
		})
		r, err := http.Post(base+"/v1/synth", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("async post: %v", err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("async status %d", r.StatusCode)
		}
	}

	sig <- syscall.SIGTERM
	if c := waitExit(t, code); c != 0 {
		t.Fatalf("exit code %d; stderr: %s", c, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "draining") || !strings.Contains(s, "drained cleanly") {
		t.Fatalf("missing drain messages in output: %q", s)
	}
}

func TestDaemonHealthzAndStatsz(t *testing.T) {
	out, errOut := &lockedBuffer{}, &lockedBuffer{}
	base, sig, code := startDaemon(t, nil, out, errOut)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/statsz")
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	var stats struct {
		Workers  int  `json:"workers"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode statsz: %v", err)
	}
	resp.Body.Close()
	if stats.Workers < 1 || stats.Draining {
		t.Fatalf("stats %+v", stats)
	}

	sig <- syscall.SIGTERM
	if c := waitExit(t, code); c != 0 {
		t.Fatalf("exit %d; stderr: %s", c, errOut.String())
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	var out, errOut lockedBuffer
	if c := run([]string{"-no-such-flag"}, &out, &errOut, make(chan os.Signal)); c != 2 {
		t.Fatalf("bad flag exit %d", c)
	}
	if c := run([]string{"stray"}, &out, &errOut, make(chan os.Signal)); c != 2 {
		t.Fatalf("stray arg exit %d", c)
	}
	if c := run([]string{"-h"}, &out, &errOut, make(chan os.Signal)); c != 0 {
		t.Fatalf("-h exit %d", c)
	}
	if c := run([]string{"-addr", "256.0.0.1:999999"}, &out, &errOut, make(chan os.Signal)); c != 1 {
		t.Fatalf("bad listen exit %d", c)
	}
}

func TestDaemonBudgetDefaultsApplied(t *testing.T) {
	out, errOut := &lockedBuffer{}, &lockedBuffer{}
	// A 2-node BDD cap cannot fit any real spec: strict jobs must fail
	// with a budget error, proving the server-wide default reached the
	// pipeline.
	base, sig, code := startDaemon(t,
		[]string{"-max-bdd-nodes", "2"}, out, errOut)

	body, _ := json.Marshal(map[string]any{
		"pla":     daemonPLA,
		"options": map[string]any{"method": "rank", "use_bdd": true, "strict": true},
	})
	resp, err := http.Post(base+"/v1/synth", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	var envelope struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if envelope.Status != "failed" || !strings.Contains(envelope.Error, "budget") {
		t.Fatalf("want strict budget failure, got %+v", envelope)
	}

	sig <- syscall.SIGTERM
	if c := waitExit(t, code); c != 0 {
		t.Fatalf("exit %d; stderr: %s", c, errOut.String())
	}
}

const daemonBLIF = `.model fa
.inputs a b cin
.outputs sum cout
.names a b axb
10 1
01 1
.names axb cin sum
10 1
01 1
.names a b ab
11 1
.names axb cin ac
11 1
.names ab ac cout
1- 1
-1 1
.end
`

// The daemon-wide -dc-mode/-window-tfi/-window-tfo defaults reach
// /v1/resyn jobs that carry no extraction options of their own, and a
// per-request dc_mode overrides them.
func TestDaemonResynDefaults(t *testing.T) {
	out, errOut := &lockedBuffer{}, &lockedBuffer{}
	base, sig, code := startDaemon(t,
		[]string{"-dc-mode", "windowed-sat", "-window-tfi", "2", "-window-tfo", "1"}, out, errOut)

	resyn := func(body map[string]any) (status, dcMode string, windows int) {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(base+"/v1/resyn", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		var envelope struct {
			Status string `json:"status"`
			Result *struct {
				DCMode  string `json:"dc_mode"`
				Windows int    `json:"windows"`
			} `json:"result"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if resp.StatusCode != http.StatusOK || envelope.Result == nil {
			t.Fatalf("HTTP %d, envelope %+v", resp.StatusCode, envelope)
		}
		return envelope.Status, envelope.Result.DCMode, envelope.Result.Windows
	}

	// No options: the daemon default picks windowed-SAT even though the
	// 3-PI network would auto-select exhaustive.
	status, mode, windows := resyn(map[string]any{"blif": daemonBLIF})
	if status != "done" || mode != "windowed-sat" || windows == 0 {
		t.Fatalf("daemon default not applied: status %q mode %q windows %d", status, mode, windows)
	}
	// Per-request options win over the daemon default.
	status, mode, _ = resyn(map[string]any{
		"blif": daemonBLIF, "options": map[string]any{"dc_mode": "exhaustive"},
	})
	if status != "done" || mode != "exhaustive" {
		t.Fatalf("request override lost: status %q mode %q", status, mode)
	}

	sig <- syscall.SIGTERM
	if c := waitExit(t, code); c != 0 {
		t.Fatalf("exit %d; stderr: %s", c, errOut.String())
	}
}

func TestDaemonBadDCModeFlag(t *testing.T) {
	var out, errOut lockedBuffer
	if c := run([]string{"-dc-mode", "bogus"}, &out, &errOut, make(chan os.Signal)); c != 2 {
		t.Fatalf("bad -dc-mode exit %d", c)
	}
	if !strings.Contains(errOut.String(), "dc-mode") {
		t.Fatalf("error does not name the flag: %q", errOut.String())
	}
}

var pprofRE = regexp.MustCompile(`pprof on (\S+)`)

// -pprof-addr serves net/http/pprof on its own listener, and the main
// mux exposes Prometheus metrics on /metrics.
func TestDaemonPprofAndMetrics(t *testing.T) {
	out, errOut := &lockedBuffer{}, &lockedBuffer{}
	base, sig, code := startDaemon(t, []string{"-pprof-addr", "127.0.0.1:0"}, out, errOut)

	m := pprofRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("daemon never announced the pprof address; output: %q", out.String())
	}
	resp, err := http.Get("http://" + m[1] + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	// pprof stays off the service mux.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatalf("service pprof probe: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof endpoints leaked onto the service mux")
	}

	// Run one job so the counters move, then scrape.
	body, _ := json.Marshal(map[string]any{"pla": daemonPLA})
	if r, err := http.Post(base+"/v1/synth", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatalf("post: %v", err)
	} else {
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"relsyn_queue_depth",
		"relsyn_jobs_submitted_total 1",
		"relsyn_stage_duration_seconds",
		"relsyn_http_requests_total",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	sig <- syscall.SIGTERM
	if c := waitExit(t, code); c != 0 {
		t.Fatalf("exit %d; stderr: %s", c, errOut.String())
	}
}
