// Process-level crash-recovery test: SIGKILL a live relsynd mid-batch,
// restart it on the same -store-dir, and assert that every accepted job
// reaches a terminal state and that recovered results are never
// recomputed. SIGKILL cannot be delivered to an in-process run(), so the
// victim daemon is this test binary re-executed with RELSYND_RUN_MAIN=1
// (see TestMain).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	if os.Getenv("RELSYND_RUN_MAIN") == "1" {
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		os.Exit(run(strings.Fields(os.Getenv("RELSYND_ARGS")), os.Stdout, os.Stderr, sig))
	}
	os.Exit(m.Run())
}

// startVictim launches the daemon as a child process (killable with
// SIGKILL) and returns its base URL and the exec handle.
func startVictim(t *testing.T, args []string) (string, *exec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"RELSYND_RUN_MAIN=1",
		"RELSYND_ARGS=-addr 127.0.0.1:0 "+strings.Join(args, " "))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start victim: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
		_, _ = cmd.Process.Wait()
	})

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("victim exited before announcing its address")
			}
			if m := listenRE.FindStringSubmatch(line); m != nil {
				go func() { // drain remaining output so the child never blocks
					for range lines {
					}
				}()
				return "http://" + m[1], cmd
			}
		case <-deadline:
			t.Fatal("victim never announced its address")
		}
	}
}

func postSynth(t *testing.T, base string, body map[string]any) (int, map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(base+"/v1/synth", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	var env map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, env
}

// crashSpec builds a distinct 3-input spec per seed.
func crashSpec(seed int) string {
	return strings.Replace(daemonPLA, "000 1", fmt.Sprintf("%03b 1", seed%8), 1)
}

func TestDaemonCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	storeArgs := []string{"-store-dir", dir, "-wal-sync", "always", "-workers", "1"}

	// Phase 1: the victim accepts a batch, then dies mid-flight.
	base, victim := startVictim(t, storeArgs)
	var accepted []string
	doneSpec := crashSpec(1)
	// One job runs to completion first so the store holds a finished
	// result whose recomputation we can detect after the crash.
	code, env := postSynth(t, base, map[string]any{"pla": doneSpec})
	if code != http.StatusOK || env["status"] != "done" {
		t.Fatalf("warm job: %d %v", code, env)
	}
	// A burst of async jobs on one worker: some will still be queued or
	// running when the SIGKILL lands.
	for seed := 2; seed <= 7; seed++ {
		code, env := postSynth(t, base, map[string]any{
			"pla":     crashSpec(seed),
			"options": map[string]any{"method": "complete"},
			"wait":    false,
		})
		if code != http.StatusAccepted {
			t.Fatalf("async submit seed %d: %d %v", seed, code, env)
		}
		id, _ := env["job_id"].(string)
		if id == "" {
			t.Fatalf("async submit seed %d returned no job_id: %v", seed, env)
		}
		accepted = append(accepted, id)
	}

	// The crash: no drain, no checkpoint, no goodbye.
	if err := victim.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_, _ = victim.Process.Wait()

	// Phase 2: restart on the same store dir (in-process this time; only
	// the victim needed to be killable).
	out, errOut := &lockedBuffer{}, &lockedBuffer{}
	base2, sig, exitCode := startDaemon(t, storeArgs, out, errOut)
	if !strings.Contains(out.String(), "recovered") {
		t.Fatalf("restart did not report recovery; output: %q", out.String())
	}

	// Every accepted job must reach a terminal state — and with fast
	// specs and a restarted deadline clock, specifically "done".
	for _, id := range accepted {
		status := waitJobTerminal(t, base2, id)
		if status != "done" {
			t.Errorf("recovered job %s = %s, want done", id, status)
		}
	}

	// No duplicate computation for recovered keys: resubmitting the
	// pre-crash specs must be served from the recovered/recomputed cache.
	code, env = postSynth(t, base2, map[string]any{"pla": doneSpec})
	if code != http.StatusOK || env["status"] != "done" || env["cached"] != true {
		t.Fatalf("resubmit of pre-crash result not served from cache: %d %v", code, env)
	}

	// Clean shutdown of the restarted daemon checkpoints the store; a
	// third start must recover the compacted state without requeues.
	sig <- syscall.SIGTERM
	if c := waitExit(t, exitCode); c != 0 {
		t.Fatalf("restart exit %d; stderr: %s", c, errOut.String())
	}
	out3, errOut3 := &lockedBuffer{}, &lockedBuffer{}
	_, sig3, exit3 := startDaemon(t, storeArgs, out3, errOut3)
	if s := out3.String(); !strings.Contains(s, "requeued 0") {
		t.Fatalf("third start requeued work after a clean drain: %q", s)
	}
	sig3 <- syscall.SIGTERM
	if c := waitExit(t, exit3); c != 0 {
		t.Fatalf("third exit %d; stderr: %s", c, errOut3.String())
	}
}

func waitJobTerminal(t *testing.T, base, id string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		var env struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&env)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode poll %s: %v", id, err)
		}
		if resp.StatusCode == http.StatusNotFound {
			t.Fatalf("accepted job %s unknown after restart", id)
		}
		switch env.Status {
		case "done", "failed", "expired":
			return env.Status
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return ""
}
