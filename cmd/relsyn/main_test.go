package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
	"relsyn/internal/server"
)

// capture runs fn with os.Stdout redirected to a pipe and returns what
// it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), errRun
}

const testPLA = `
.i 3
.o 2
01- 10
1-1 01
000 -0
.e
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.pla")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunStats(t *testing.T) {
	path := writeTemp(t, testPLA)
	out, err := capture(t, func() error { return runStats([]string{"-in", path}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"inputs            3", "outputs           2", "exact bounds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStatsBench(t *testing.T) {
	out, err := capture(t, func() error { return runStats([]string{"-bench", "bench"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "inputs            6") {
		t.Fatalf("bench stats wrong:\n%s", out)
	}
}

func TestRunAssignRoundTrip(t *testing.T) {
	in := writeTemp(t, testPLA)
	out := filepath.Join(t.TempDir(), "out.pla")
	_, err := capture(t, func() error {
		return runAssign([]string{"-in", in, "-out", out, "-method", "rank", "-fraction", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ".i 3") {
		t.Fatalf("assigned PLA malformed:\n%s", data)
	}
	// The output must itself be consumable by stats.
	if _, err := capture(t, func() error { return runStats([]string{"-in", out}) }); err != nil {
		t.Fatal(err)
	}
}

func TestRunAssignMethods(t *testing.T) {
	in := writeTemp(t, testPLA)
	for _, method := range []string{"rank", "lcf", "complete"} {
		out := filepath.Join(t.TempDir(), method+".pla")
		if _, err := capture(t, func() error {
			return runAssign([]string{"-in", in, "-out", out, "-method", method})
		}); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
	}
	if _, err := capture(t, func() error {
		return runAssign([]string{"-in", in, "-method", "bogus"})
	}); err == nil {
		t.Fatal("bogus method accepted")
	}
}

func TestRunSynth(t *testing.T) {
	in := writeTemp(t, testPLA)
	out, err := capture(t, func() error {
		return runSynth([]string{"-in", in, "-objective", "delay"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"area", "delay", "gates", "error rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("synth output missing %q:\n%s", want, out)
		}
	}
	if _, err := capture(t, func() error {
		return runSynth([]string{"-in", in, "-objective", "bogus"})
	}); err == nil {
		t.Fatal("bogus objective accepted")
	}
	if _, err := capture(t, func() error {
		return runSynth([]string{"-in", in, "-flow", "bogus"})
	}); err == nil {
		t.Fatal("bogus flow accepted")
	}
}

func TestRunVerilog(t *testing.T) {
	in := writeTemp(t, testPLA)
	outPath := filepath.Join(t.TempDir(), "top.v")
	if _, err := capture(t, func() error {
		return runVerilog([]string{"-in", in, "-module", "dut", "-out", outPath})
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "module dut(") || !strings.Contains(string(data), "endmodule") {
		t.Fatalf("Verilog malformed:\n%s", data)
	}
}

func TestRunDecompose(t *testing.T) {
	blifPath := filepath.Join(t.TempDir(), "net.blif")
	out, err := capture(t, func() error {
		return runDecompose([]string{"-bench", "bench", "-k", "4", "-blif", blifPath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "nodes") || !strings.Contains(out, "err rate") {
		t.Fatalf("decompose output malformed:\n%s", out)
	}
	data, err := os.ReadFile(blifPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ".model relsyn") {
		t.Fatalf("BLIF malformed:\n%s", data)
	}
}

const testBLIF = `.model fa
.inputs a b cin
.outputs sum cout
.names a b axb
10 1
01 1
.names axb cin sum
10 1
01 1
.names a b ab
11 1
.names axb cin ac
11 1
.names ab ac cout
1- 1
-1 1
.end
`

func writeTempBLIF(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.blif")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// resyn round-trips a BLIF network through the reassignment job: the
// human summary reports the extraction, and the emitted BLIF is itself
// consumable as resyn input.
func TestRunResyn(t *testing.T) {
	in := writeTempBLIF(t, testBLIF)
	for _, mode := range []string{"auto", "exhaustive", "windowed-sat"} {
		out := filepath.Join(t.TempDir(), mode+".blif")
		text, err := capture(t, func() error {
			return runResyn([]string{"-in", in, "-out", out, "-dc-mode", mode})
		})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		for _, want := range []string{"inputs           3", "outputs          2", "dc mode", "PO-equivalent    true"} {
			if !strings.Contains(text, want) {
				t.Fatalf("%s: resyn output missing %q:\n%s", mode, want, text)
			}
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), ".model relsyn") {
			t.Fatalf("%s: BLIF malformed:\n%s", mode, data)
		}
		// The emitted network must itself be consumable by resyn.
		if _, err := capture(t, func() error { return runResyn([]string{"-in", out}) }); err != nil {
			t.Fatalf("%s: emitted BLIF rejected: %v", mode, err)
		}
	}
}

// resyn -json prints the relsynd /v1/resyn wire format: a status
// envelope around pipeline.NetworkJobResult.
func TestRunResynJSON(t *testing.T) {
	in := writeTempBLIF(t, testBLIF)
	out, err := capture(t, func() error {
		return runResyn([]string{"-in", in, "-dc-mode", "windowed-sat", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Status string `json:"status"`
		Result *struct {
			NumPI      int    `json:"num_pi"`
			NumPO      int    `json:"num_po"`
			DCMode     string `json:"dc_mode"`
			Windows    int    `json:"windows"`
			Equivalent bool   `json:"equivalent"`
			CECMethod  string `json:"cec_method"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &env); err != nil {
		t.Fatalf("resyn -json output is not JSON: %v\n%s", err, out)
	}
	if env.Status != "done" || env.Result == nil {
		t.Fatalf("envelope %+v", env)
	}
	if env.Result.NumPI != 3 || env.Result.NumPO != 2 ||
		env.Result.DCMode != "windowed-sat" || env.Result.Windows == 0 {
		t.Fatalf("result %+v", env.Result)
	}
	if !env.Result.Equivalent || env.Result.CECMethod == "" {
		t.Fatalf("CEC not reported: %+v", env.Result)
	}
	// Human metric lines must not leak into the JSON stream.
	if strings.Contains(out, "dc mode ") {
		t.Fatalf("human output mixed into -json stream:\n%s", out)
	}
}

// resyn flag validation: enum and range mistakes are usage errors (exit
// 2), a missing input file is a hard failure (exit 1).
func TestRunResynFlagValidation(t *testing.T) {
	in := writeTempBLIF(t, testBLIF)
	_, err := capture(t, func() error {
		return runResyn([]string{"-in", in, "-dc-mode", "bogus"})
	})
	if err == nil || exitCode(err) != exitUsage {
		t.Fatalf("bad -dc-mode classified as %d (%v)", exitCode(err), err)
	}
	_, err = capture(t, func() error {
		return runResyn([]string{"-in", in, "-threshold", "1.5"})
	})
	if err == nil || exitCode(err) != exitUsage {
		t.Fatalf("bad -threshold classified as %d (%v)", exitCode(err), err)
	}
	_, err = capture(t, func() error {
		return runResyn([]string{"-in", filepath.Join(t.TempDir(), "missing.blif")})
	})
	if err == nil || exitCode(err) != exitFailure {
		t.Fatalf("missing input classified as %d (%v)", exitCode(err), err)
	}
}

// Each numeric flag is validated with a clear error before any work
// starts: -fraction in [0,1], -threshold in (0,1), -k >= 1.
func TestFlagValidation(t *testing.T) {
	in := writeTemp(t, testPLA)
	cases := []struct {
		name string
		run  func([]string) error
		args []string
		want string
	}{
		{"assign fraction high", runAssign, []string{"-in", in, "-fraction", "1.5"}, "-fraction"},
		{"assign fraction negative", runAssign, []string{"-in", in, "-fraction", "-0.1"}, "-fraction"},
		{"assign threshold zero", runAssign, []string{"-in", in, "-threshold", "0"}, "-threshold"},
		{"assign threshold high", runAssign, []string{"-in", in, "-threshold", "1.2"}, "-threshold"},
		{"synth fraction high", runSynth, []string{"-in", in, "-fraction", "2"}, "-fraction"},
		{"synth threshold one", runSynth, []string{"-in", in, "-threshold", "1"}, "-threshold"},
		{"decompose k zero", runDecompose, []string{"-in", in, "-k", "0"}, "-k"},
		{"decompose k negative", runDecompose, []string{"-in", in, "-k", "-3"}, "-k"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := capture(t, func() error { return tc.run(tc.args) })
			if err == nil {
				t.Fatalf("invalid flag accepted: %v", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.want)
			}
		})
	}
}

// The pipeline knobs demonstrably change behavior: a tiny -timeout turns
// a succeeding run into a prompt cancellation error; -max-bdd-nodes
// forces the dense-assignment fallback, which -strict turns into a
// budget error.
func TestRunSynthPipelineFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis runs in -short mode")
	}
	// Baseline: succeeds and reports verification.
	out, err := capture(t, func() error {
		return runSynth([]string{"-bench", "bench", "-method", "lcf"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "verified    true") {
		t.Fatalf("synth output missing verification line:\n%s", out)
	}

	// -timeout: the same invocation under a 1ns budget is cancelled.
	if _, err := capture(t, func() error {
		return runSynth([]string{"-bench", "bench", "-method", "lcf", "-timeout", "1ns"})
	}); err == nil {
		t.Fatal("-timeout 1ns did not fail the run")
	} else if !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("timeout error not classified as cancellation: %v", err)
	}

	// -max-bdd-nodes: BDD assignment exhausts its arena but the run
	// degrades to the dense path and still succeeds...
	if _, err := capture(t, func() error {
		return runSynth([]string{"-bench", "bench", "-method", "lcf", "-max-bdd-nodes", "8"})
	}); err != nil {
		t.Fatalf("-max-bdd-nodes should degrade, not fail: %v", err)
	}
	// ...unless -strict forbids degradation.
	if _, err := capture(t, func() error {
		return runSynth([]string{"-bench", "bench", "-method", "lcf", "-max-bdd-nodes", "8", "-strict"})
	}); err == nil {
		t.Fatal("-strict with exhausted BDD budget did not fail")
	} else if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("strict BDD exhaustion not classified as budget: %v", err)
	}
}

// synth -json prints the relsynd wire format: a status envelope around
// pipeline.JobResult.
func TestRunSynthJSON(t *testing.T) {
	in := writeTemp(t, testPLA)
	out, err := capture(t, func() error {
		return runSynth([]string{"-in", in, "-method", "rank", "-fraction", "1", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Status string `json:"status"`
		Result *struct {
			Spec struct {
				Inputs  int `json:"inputs"`
				Outputs int `json:"outputs"`
			} `json:"spec"`
			Assign *struct {
				Method   string `json:"method"`
				Assigned int    `json:"assigned"`
			} `json:"assign"`
			Metrics struct {
				Gates    int `json:"gates"`
				Literals int `json:"literals"`
			} `json:"metrics"`
			Verified bool `json:"verified"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &env); err != nil {
		t.Fatalf("synth -json output is not JSON: %v\n%s", err, out)
	}
	if env.Status != "done" || env.Result == nil {
		t.Fatalf("envelope %+v", env)
	}
	if env.Result.Spec.Inputs != 3 || env.Result.Spec.Outputs != 2 {
		t.Fatalf("spec %+v", env.Result.Spec)
	}
	if env.Result.Assign == nil || env.Result.Assign.Method != "rank" {
		t.Fatalf("assign %+v", env.Result.Assign)
	}
	if env.Result.Metrics.Gates <= 0 || !env.Result.Verified {
		t.Fatalf("metrics/verified %+v", env.Result)
	}
	// Human metric lines must not leak into the JSON stream.
	if strings.Contains(out, "area        ") {
		t.Fatalf("human output mixed into -json stream:\n%s", out)
	}
}

// A failing strict run under -json still prints a machine-readable
// envelope (status "failed" + error) before exiting non-zero.
func TestRunSynthJSONFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthesis runs in -short mode")
	}
	out, err := capture(t, func() error {
		return runSynth([]string{"-bench", "bench", "-method", "lcf",
			"-max-bdd-nodes", "8", "-strict", "-json"})
	})
	if err == nil {
		t.Fatal("strict budget exhaustion did not fail")
	}
	var env struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if jerr := json.Unmarshal([]byte(out), &env); jerr != nil {
		t.Fatalf("failure output is not JSON: %v\n%s", jerr, out)
	}
	if env.Status != "failed" || !strings.Contains(env.Error, "budget") {
		t.Fatalf("envelope %+v", env)
	}
	if exitCode(err) != exitResource {
		t.Fatalf("exit code %d, want %d (resource-limited)", exitCode(err), exitResource)
	}
}

// Exit codes are stable: usage mistakes are distinct from hard failures,
// which are distinct from budget/timeout stops.
func TestExitCodes(t *testing.T) {
	if exitCode(nil) != exitOK {
		t.Fatal("nil error must exit 0")
	}
	if c := exitCode(usagef("-fraction out of range")); c != exitUsage {
		t.Fatalf("usage error exit %d", c)
	}
	if c := exitCode(errors.New("spec parse failed")); c != exitFailure {
		t.Fatalf("plain error exit %d", c)
	}
	budget := &pipeline.StageError{Stage: pipeline.StageAssign, Reason: pipeline.ReasonBudget}
	if c := exitCode(fmt.Errorf("wrapped: %w", budget)); c != exitResource {
		t.Fatalf("budget error exit %d", c)
	}
	cancel := &pipeline.StageError{Stage: pipeline.StageSynth, Reason: pipeline.ReasonCancel}
	if c := exitCode(cancel); c != exitResource {
		t.Fatalf("cancel error exit %d", c)
	}
	hard := &pipeline.StageError{Stage: pipeline.StageSynth, Reason: pipeline.ReasonPanic}
	if c := exitCode(hard); c != exitFailure {
		t.Fatalf("panic stage error exit %d", c)
	}
	// Flag-validation paths produce usage errors end-to-end.
	in := writeTemp(t, testPLA)
	_, err := capture(t, func() error {
		return runSynth([]string{"-in", in, "-fraction", "1.5"})
	})
	if exitCode(err) != exitUsage {
		t.Fatalf("bad -fraction classified as %d", exitCode(err))
	}
	_, err = capture(t, func() error {
		return runSynth([]string{"-in", in, "-objective", "bogus"})
	})
	if exitCode(err) != exitUsage {
		t.Fatalf("bad -objective classified as %d", exitCode(err))
	}
}

func TestLoadSpecMissingFile(t *testing.T) {
	if _, err := loadSpec("/nonexistent/file.pla", ""); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := loadSpec("", "nonesuch-benchmark"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// synth -trace prints a span tree to stderr: the CLI root span with the
// pipeline run and one span per stage attempt nested under it.
func TestRunSynthTrace(t *testing.T) {
	in := writeTemp(t, testPLA)
	// -trace writes to stderr; capture it alongside stdout.
	oldErr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	_, runErr := capture(t, func() error {
		return runSynth([]string{"-in", in, "-method", "rank", "-fraction", "1", "-trace"})
	})
	w.Close()
	os.Stderr = oldErr
	raw, _ := io.ReadAll(r)
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	tree := string(raw)
	for _, want := range []string{"cli/synth", "pipeline/run", "stage/assign/bdd", "stage/synth/sop", "stage/verify/"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("trace output missing %q:\n%s", want, tree)
		}
	}
	// Nesting: the pipeline span is indented under the CLI root.
	if !strings.Contains(tree, "\n  pipeline/run") {
		t.Fatalf("pipeline span not nested under root:\n%s", tree)
	}
}

// timingRE blanks the wall-clock fields that legitimately differ
// between two identical runs.
var timingRE = regexp.MustCompile(`"(took_ms|elapsed_ms)": [0-9.eE+-]+`)

func normalizeTimings(raw []byte) []byte {
	return timingRE.ReplaceAll(raw, []byte(`"$1": 0`))
}

// Differential test: for a fixed spec and options, the "result" object
// printed by `relsyn synth -json` is byte-identical (modulo wall-clock
// timings) to the "result" object in the relsynd /v1/synth response
// body — one wire format, produced by two front ends.
func TestSynthJSONMatchesServiceResponse(t *testing.T) {
	in := writeTemp(t, testPLA)
	cliOut, err := capture(t, func() error {
		return runSynth([]string{"-in", in, "-method", "rank", "-fraction", "1", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var cliEnv struct {
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal([]byte(cliOut), &cliEnv); err != nil {
		t.Fatalf("CLI output not JSON: %v\n%s", err, cliOut)
	}
	if cliEnv.Status != "done" {
		t.Fatalf("CLI status %q", cliEnv.Status)
	}

	srv := server.New(server.Config{
		Workers: 1, QueueDepth: 8, CacheSize: 8, Metrics: obs.NewRegistry(),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Mirror the CLI's effective options exactly (runSynth sets UseBDD
	// for method=rank and defaults objective=power, flow=sop).
	body, err := json.Marshal(map[string]any{
		"pla": testPLA,
		"options": map[string]any{
			"method": "rank", "fraction": 1.0, "use_bdd": true,
			"objective": "power", "flow": "sop",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/synth", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("service HTTP %d: %s", resp.StatusCode, raw)
	}
	var svcEnv struct {
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(raw, &svcEnv); err != nil {
		t.Fatalf("service body not JSON: %v\n%s", err, raw)
	}
	if svcEnv.Status != "done" {
		t.Fatalf("service status %q: %s", svcEnv.Status, raw)
	}

	cliRes := normalizeTimings(cliEnv.Result)
	svcRes := normalizeTimings(svcEnv.Result)
	if !bytes.Equal(cliRes, svcRes) {
		t.Fatalf("CLI and service results diverge\n--- cli ---\n%s\n--- service ---\n%s", cliRes, svcRes)
	}
}
