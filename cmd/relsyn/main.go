// Command relsyn is the CLI front-end to the library: inspect .pla
// specifications, apply reliability-driven DC assignment, and run the
// synthesis flow.
//
// Usage:
//
//	relsyn stats  [-in spec.pla]
//	relsyn assign [-in spec.pla] [-out out.pla] -method rank|lcf|complete \
//	              [-fraction 0.5] [-threshold 0.55]
//	relsyn synth  [-in spec.pla] [-objective delay|power|area] [-flow sop|resyn]
//
// A benchmark name from the built-in suite (e.g. "ex1010") may be given
// via -bench instead of -in.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"relsyn"
)

// Exit codes (stable; documented in README):
//
//	0  success (including degraded runs — inspect stderr/-json for fallbacks)
//	1  hard failure: the run itself failed (I/O, spec, stage error)
//	2  usage: unknown subcommand/flag or invalid flag value
//	3  resource-limited: the run was stopped by a budget or timeout and
//	   could succeed with more resources (includes strict-mode refusals
//	   to degrade)
const (
	exitOK       = 0
	exitFailure  = 1
	exitUsage    = 2
	exitResource = 3
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(exitUsage)
	}
	var err error
	switch os.Args[1] {
	case "stats":
		err = runStats(os.Args[2:])
	case "assign":
		err = runAssign(os.Args[2:])
	case "synth":
		err = runSynth(os.Args[2:])
	case "verilog":
		err = runVerilog(os.Args[2:])
	case "decompose":
		err = runDecompose(os.Args[2:])
	case "resyn":
		err = runResyn(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "relsyn: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(exitUsage)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "relsyn: %v\n", err)
		os.Exit(exitCode(err))
	}
}

// usageError marks command-line mistakes (invalid flag values, unknown
// enum spellings) so main can exit 2, like flag-parse errors, instead of
// 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// exitCode classifies err per the table above.
func exitCode(err error) int {
	if err == nil {
		return exitOK
	}
	var ue usageError
	if errors.As(err, &ue) {
		return exitUsage
	}
	var se *relsyn.StageError
	if errors.As(err, &se) && se.Retryable() {
		return exitResource
	}
	return exitFailure
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  relsyn stats  [-in spec.pla | -bench name]
  relsyn assign [-in spec.pla | -bench name] [-out out.pla] -method rank|lcf|complete [-fraction F] [-threshold T]
  relsyn synth  [-in spec.pla | -bench name] [-objective delay|power|area] [-flow sop|resyn]
                [-method none|rank|lcf|complete] [-fraction F] [-threshold T]
                [-timeout D] [-max-bdd-nodes N] [-max-conflicts N] [-max-aig-nodes N] [-strict]
                [-j N] [-kernels=false] [-json] [-trace]
  relsyn verilog [-in spec.pla | -bench name] [-module name] [-out file.v]
  relsyn decompose [-in spec.pla | -bench name] [-k 5] [-threshold 0.7] [-blif file.blif]
  relsyn resyn  [-in file.blif] [-out file.blif] [-threshold T]
                [-dc-mode auto|exhaustive|windowed-sat] [-window-tfi N] [-window-tfo N]
                [-max-conflicts N] [-timeout D] [-strict] [-json]

exit codes: 0 ok, 1 failure, 2 usage, 3 resource-limited (budget/timeout)`)
}

// inputFlags registers the shared spec-source flags on fs.
func inputFlags(fs *flag.FlagSet) (in, bench *string) {
	in = fs.String("in", "", "input .pla file (default: stdin)")
	bench = fs.String("bench", "", "built-in benchmark name instead of -in")
	return in, bench
}

// checkFraction validates the -fraction flag: the assigned fraction of
// ranked DC minterms must lie in the closed interval [0, 1].
func checkFraction(v float64) error {
	if v < 0 || v > 1 {
		return usagef("-fraction must be in [0,1], got %g", v)
	}
	return nil
}

// checkThreshold validates the -threshold flag: LC^f thresholds are
// meaningful only strictly inside (0, 1).
func checkThreshold(v float64) error {
	if v <= 0 || v >= 1 {
		return usagef("-threshold must be in (0,1), got %g", v)
	}
	return nil
}

// checkK validates the -k flag: the node fanin bound must be at least 1.
func checkK(k int) error {
	if k < 1 {
		return usagef("-k must be >= 1, got %d", k)
	}
	return nil
}

func loadSpec(in, bench string) (*relsyn.Function, error) {
	if bench != "" {
		return relsyn.LoadBenchmark(bench)
	}
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return relsyn.ParsePLA(f)
	}
	return relsyn.ParsePLA(r)
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in, bench := inputFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := loadSpec(*in, *bench)
	if err != nil {
		return err
	}
	lo, hi, err := relsyn.ExactBounds(f)
	if err != nil {
		return err
	}
	sig, err := relsyn.SignalEstimate(f)
	if err != nil {
		return err
	}
	bor, err := relsyn.BorderEstimate(f)
	if err != nil {
		return err
	}
	cf, err := relsyn.ComplexityFactor(f)
	if err != nil {
		return err
	}
	ecf, err := relsyn.ExpectedComplexityFactor(f)
	if err != nil {
		return err
	}
	fmt.Printf("inputs            %d\n", f.NumIn)
	fmt.Printf("outputs           %d\n", f.NumOut())
	fmt.Printf("%%DC               %.1f\n", 100*f.DCFraction())
	fmt.Printf("C^f               %.3f\n", cf)
	fmt.Printf("E[C^f]            %.3f\n", ecf)
	fmt.Printf("exact bounds      [%.3f, %.3f]\n", lo, hi)
	fmt.Printf("signal estimate   [%.3f, %.3f]\n", sig.Min, sig.Max)
	fmt.Printf("border estimate   [%.3f, %.3f]\n", bor.Min, bor.Max)
	return nil
}

func runAssign(args []string) error {
	fs := flag.NewFlagSet("assign", flag.ExitOnError)
	in, bench := inputFlags(fs)
	out := fs.String("out", "", "output .pla file (default: stdout)")
	method := fs.String("method", "rank", "assignment method: rank, lcf, or complete")
	fraction := fs.Float64("fraction", 0.5, "fraction of ranked DCs to assign (rank)")
	threshold := fs.Float64("threshold", 0.55, "LC^f threshold (lcf)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFraction(*fraction); err != nil {
		return err
	}
	if err := checkThreshold(*threshold); err != nil {
		return err
	}
	f, err := loadSpec(*in, *bench)
	if err != nil {
		return err
	}
	var res *relsyn.AssignResult
	switch *method {
	case "rank":
		res, err = relsyn.RankingAssign(f, *fraction)
	case "lcf":
		res, err = relsyn.LCFAssign(f, *threshold)
	case "complete":
		res = relsyn.CompleteAssign(f)
	default:
		return usagef("unknown method %q", *method)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "assigned %d of %d DC minterms (%.1f%%)\n",
		len(res.Assigned), res.TotalDCs, 100*res.FractionAssigned())
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	return relsyn.WritePLA(w, res.Func)
}

// stageFailure renders a pipeline stage error in the CLI's message
// format while keeping the typed *StageError reachable for exit-code
// classification via errors.As.
type stageFailure struct{ se *relsyn.StageError }

func (e stageFailure) Error() string {
	return fmt.Sprintf("stage %s failed (%s, attempt %s): %v",
		e.se.Stage, e.se.Reason, e.se.Attempt, e.se.Err)
}

func (e stageFailure) Unwrap() error { return e.se }

// synthEnvelope is the machine-readable wrapper printed by `synth
// -json`: the same JobResult struct the relsynd HTTP API returns, plus
// the server's status vocabulary ("done" / "failed").
type synthEnvelope struct {
	Status string            `json:"status"`
	Result *relsyn.JobResult `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
}

func runSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	in, bench := inputFlags(fs)
	objective := fs.String("objective", "power", "optimization objective: delay, power, or area")
	flow := fs.String("flow", "sop", "synthesis flow: sop or resyn")
	method := fs.String("method", "none", "DC assignment before synthesis: none, rank, lcf, or complete")
	fraction := fs.Float64("fraction", 0.5, "fraction of ranked DCs to assign (rank)")
	threshold := fs.Float64("threshold", 0.55, "LC^f threshold (lcf)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = unlimited)")
	maxBDD := fs.Int("max-bdd-nodes", 0, "BDD node budget for assignment (0 = unlimited)")
	maxConflicts := fs.Int64("max-conflicts", 0, "SAT conflict budget for verification (0 = default)")
	maxAIG := fs.Int("max-aig-nodes", 0, "AIG node budget for synthesis (0 = unlimited)")
	strict := fs.Bool("strict", false, "fail on budget exhaustion instead of degrading")
	jsonOut := fs.Bool("json", false, "print the result as JSON (the relsynd wire format)")
	trace := fs.Bool("trace", false, "print the span tree of the run to stderr")
	jobs := fs.Int("j", 0, "worker parallelism for per-output analysis (0 = GOMAXPROCS, 1 = sequential)")
	kernels := fs.Bool("kernels", true, "use word-parallel bitset kernels (false = bit-identical scalar paths)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs < 0 {
		return usagef("-j must be >= 0, got %d", *jobs)
	}
	// Process-wide switch, set before any work begins: the scalar paths
	// compute bit-identical results, so this only trades speed.
	relsyn.SetKernels(*kernels)
	if err := checkFraction(*fraction); err != nil {
		return err
	}
	if err := checkThreshold(*threshold); err != nil {
		return err
	}
	switch *method {
	case "none", "rank", "lcf", "complete":
	default:
		return usagef("unknown method %q", *method)
	}
	switch *objective {
	case "delay", "power", "area":
	default:
		return usagef("unknown objective %q", *objective)
	}
	switch *flow {
	case "sop", "resyn":
	default:
		return usagef("unknown flow %q", *flow)
	}
	f, err := loadSpec(*in, *bench)
	if err != nil {
		return err
	}
	jo := relsyn.JobOptions{
		Method:       *method,
		Objective:    *objective,
		Flow:         *flow,
		Strict:       *strict,
		MaxBDDNodes:  *maxBDD,
		MaxConflicts: *maxConflicts,
		MaxAIGNodes:  *maxAIG,
		Parallelism:  *jobs,
	}
	switch *method {
	case "rank":
		jo.Fraction, jo.UseBDD = *fraction, true
	case "lcf":
		jo.Threshold, jo.UseBDD = *threshold, true
	}
	// The CLI enforces -timeout via a context deadline rather than the
	// wire field timeout_ms, preserving sub-millisecond budgets exactly.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var root *relsyn.Span
	if *trace {
		ctx, root = relsyn.WithTrace(ctx, "cli/synth")
	}

	jr, err := relsyn.RunJob(ctx, f, jo)
	if root != nil {
		root.End()
		if rerr := root.Render(os.Stderr); rerr != nil {
			return rerr
		}
	}
	if *jsonOut {
		env := synthEnvelope{Status: "done", Result: jr}
		if err != nil {
			env.Status, env.Error = "failed", err.Error()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(env); encErr != nil {
			return encErr
		}
	}
	if err != nil {
		reportFallbacks(jr)
		var se *relsyn.StageError
		if errors.As(err, &se) {
			return stageFailure{se}
		}
		return err
	}
	if *jsonOut {
		return nil
	}
	m := jr.Metrics
	fmt.Printf("area        %.2f\n", m.Area)
	fmt.Printf("delay       %.1f ps\n", m.DelayPs)
	fmt.Printf("power       %.2f\n", m.Power)
	fmt.Printf("gates       %d\n", m.Gates)
	fmt.Printf("literals    %d\n", m.Literals)
	fmt.Printf("aig nodes   %d (depth %d)\n", m.AIGNodes, m.AIGDepth)
	fmt.Printf("error rate  %.4f\n", jr.ErrorRate)
	fmt.Printf("verified    %v (%s)\n", jr.Verified, jr.VerifyMethod)
	reportFallbacks(jr)
	return nil
}

// reportFallbacks prints each degradation-ladder step a pipeline run took
// to stderr, so scripted callers parsing stdout metrics stay unaffected.
func reportFallbacks(jr *relsyn.JobResult) {
	if jr == nil {
		return
	}
	for _, fb := range jr.Fallbacks {
		fmt.Fprintf(os.Stderr, "fallback    %s: %s -> %s (%s)\n",
			fb.Stage, fb.From, fb.To, fb.Reason)
	}
}

func runDecompose(args []string) error {
	fs := flag.NewFlagSet("decompose", flag.ExitOnError)
	in, bench := inputFlags(fs)
	k := fs.Int("k", 5, "node fanin bound (2..6)")
	threshold := fs.Float64("threshold", 0.7, "LC^f threshold for internal reassignment")
	blifOut := fs.String("blif", "", "write reassigned network as BLIF to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkK(*k); err != nil {
		return err
	}
	if err := checkThreshold(*threshold); err != nil {
		return err
	}
	f, err := loadSpec(*in, *bench)
	if err != nil {
		return err
	}
	res, err := relsyn.Synthesize(f, relsyn.SynthOptions{Objective: relsyn.OptimizePower})
	if err != nil {
		return err
	}
	conv, err := relsyn.Decompose(res.Graph, *k)
	if err != nil {
		return err
	}
	rel, err := relsyn.Decompose(res.Graph, *k)
	if err != nil {
		return err
	}
	if err := conv.CompleteConventionalAll(); err != nil {
		return err
	}
	assigned, err := rel.ReassignLCF(*threshold)
	if err != nil {
		return err
	}
	fmt.Printf("nodes                %d (k=%d)\n", conv.NumNodes(), *k)
	fmt.Printf("internal DCs bound   %d\n", assigned)
	fmt.Printf("node-output err rate %.4f -> %.4f\n", conv.InternalErrorRate(), rel.InternalErrorRate())
	fmt.Printf("node-input err rate  %.4f -> %.4f\n", conv.InputErrorRate(), rel.InputErrorRate())
	fmt.Printf("SOP literals         %d -> %d\n", conv.TotalLiterals(), rel.TotalLiterals())
	if *blifOut != "" {
		file, err := os.Create(*blifOut)
		if err != nil {
			return err
		}
		defer file.Close()
		if err := relsyn.WriteBLIF(file, rel, "relsyn"); err != nil {
			return err
		}
		fmt.Printf("BLIF written to      %s\n", *blifOut)
	}
	return nil
}

// resynEnvelope is the machine-readable wrapper printed by `resyn
// -json`: the same NetworkJobResult struct the relsynd /v1/resyn
// endpoint returns, plus the server's status vocabulary.
type resynEnvelope struct {
	Status string                   `json:"status"`
	Result *relsyn.NetworkJobResult `json:"result,omitempty"`
	Error  string                   `json:"error,omitempty"`
}

// runResyn reassigns the internal don't-cares of a BLIF network: parse,
// extract per-node DCs (exhaustively or with windowed SAT), bind those
// below the LC^f threshold, and emit the rewritten — provably
// PO-equivalent — network as BLIF.
func runResyn(args []string) error {
	fs := flag.NewFlagSet("resyn", flag.ExitOnError)
	in := fs.String("in", "", "input .blif file (default: stdin)")
	out := fs.String("out", "", "output .blif file for the reassigned network")
	threshold := fs.Float64("threshold", 0.55, "LC^f threshold for internal reassignment")
	dcMode := fs.String("dc-mode", "auto", "DC extraction engine: auto, exhaustive, or windowed-sat")
	windowTFI := fs.Int("window-tfi", 0, "window fanin depth for windowed-sat (0 = default, negative = full)")
	windowTFO := fs.Int("window-tfo", 0, "window fanout depth for windowed-sat (0 = default, negative = full)")
	maxConflicts := fs.Int64("max-conflicts", 0, "per-node SAT conflict budget (0 = default)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = unlimited)")
	strict := fs.Bool("strict", false, "fail on budget exhaustion instead of degrading")
	jsonOut := fs.Bool("json", false, "print the result as JSON (the relsynd wire format)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkThreshold(*threshold); err != nil {
		return err
	}
	switch *dcMode {
	case "auto", "exhaustive", "windowed-sat":
	default:
		return usagef("unknown dc-mode %q", *dcMode)
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		file, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer file.Close()
		r = file
	}
	nw, err := relsyn.ParseBLIF(r)
	if err != nil {
		return err
	}
	jo := relsyn.JobOptions{
		Method:       "lcf",
		Threshold:    *threshold,
		DCMode:       *dcMode,
		WindowTFI:    *windowTFI,
		WindowTFO:    *windowTFO,
		MaxConflicts: *maxConflicts,
		Strict:       *strict,
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	jr, err := relsyn.RunNetworkJob(ctx, nw, jo)
	if *jsonOut {
		env := resynEnvelope{Status: "done", Result: jr}
		if err != nil {
			env.Status, env.Error = "failed", err.Error()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(env); encErr != nil {
			return encErr
		}
	}
	if err != nil {
		reportNetFallbacks(jr)
		var se *relsyn.StageError
		if errors.As(err, &se) {
			return stageFailure{se}
		}
		return err
	}
	if !*jsonOut {
		fmt.Printf("inputs           %d\n", jr.NumPI)
		fmt.Printf("outputs          %d\n", jr.NumPO)
		fmt.Printf("nodes            %d\n", jr.Nodes)
		fmt.Printf("dc mode          %s\n", jr.DCMode)
		fmt.Printf("DCs bound        %d\n", jr.Assigned)
		if jr.Windows > 0 {
			fmt.Printf("windows          %d (%d SAT calls, %d budget-exhausted)\n",
				jr.Windows, jr.SATCalls, jr.BudgetExhausted)
		}
		fmt.Printf("SOP literals     %d -> %d\n", jr.LiteralsBefore, jr.LiteralsAfter)
		fmt.Printf("PO-equivalent    %v (%s)\n", jr.Equivalent, jr.CECMethod)
	}
	reportNetFallbacks(jr)
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		if err := relsyn.WriteBLIF(file, jr.Network, "relsyn"); err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Printf("BLIF written to  %s\n", *out)
		}
	}
	return nil
}

// reportNetFallbacks mirrors reportFallbacks for network jobs.
func reportNetFallbacks(jr *relsyn.NetworkJobResult) {
	if jr == nil {
		return
	}
	for _, fb := range jr.Fallbacks {
		fmt.Fprintf(os.Stderr, "fallback    %s: %s -> %s (%s)\n",
			fb.Stage, fb.From, fb.To, fb.Reason)
	}
}

func runVerilog(args []string) error {
	fs := flag.NewFlagSet("verilog", flag.ExitOnError)
	in, bench := inputFlags(fs)
	module := fs.String("module", "top", "Verilog module name")
	out := fs.String("out", "", "output .v file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := loadSpec(*in, *bench)
	if err != nil {
		return err
	}
	res, err := relsyn.Synthesize(f, relsyn.SynthOptions{Objective: relsyn.OptimizeArea})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	return res.Netlist.WriteVerilog(w, *module, f.NumIn)
}
