// Command relsyn is the CLI front-end to the library: inspect .pla
// specifications, apply reliability-driven DC assignment, and run the
// synthesis flow.
//
// Usage:
//
//	relsyn stats  [-in spec.pla]
//	relsyn assign [-in spec.pla] [-out out.pla] -method rank|lcf|complete \
//	              [-fraction 0.5] [-threshold 0.55]
//	relsyn synth  [-in spec.pla] [-objective delay|power|area] [-flow sop|resyn]
//
// A benchmark name from the built-in suite (e.g. "ex1010") may be given
// via -bench instead of -in.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"relsyn"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "stats":
		err = runStats(os.Args[2:])
	case "assign":
		err = runAssign(os.Args[2:])
	case "synth":
		err = runSynth(os.Args[2:])
	case "verilog":
		err = runVerilog(os.Args[2:])
	case "decompose":
		err = runDecompose(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "relsyn: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "relsyn: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  relsyn stats  [-in spec.pla | -bench name]
  relsyn assign [-in spec.pla | -bench name] [-out out.pla] -method rank|lcf|complete [-fraction F] [-threshold T]
  relsyn synth  [-in spec.pla | -bench name] [-objective delay|power|area] [-flow sop|resyn]
                [-method none|rank|lcf|complete] [-fraction F] [-threshold T]
                [-timeout D] [-max-bdd-nodes N] [-max-conflicts N] [-max-aig-nodes N] [-strict]
  relsyn verilog [-in spec.pla | -bench name] [-module name] [-out file.v]
  relsyn decompose [-in spec.pla | -bench name] [-k 5] [-threshold 0.7] [-blif file.blif]`)
}

// inputFlags registers the shared spec-source flags on fs.
func inputFlags(fs *flag.FlagSet) (in, bench *string) {
	in = fs.String("in", "", "input .pla file (default: stdin)")
	bench = fs.String("bench", "", "built-in benchmark name instead of -in")
	return in, bench
}

// checkFraction validates the -fraction flag: the assigned fraction of
// ranked DC minterms must lie in the closed interval [0, 1].
func checkFraction(v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("-fraction must be in [0,1], got %g", v)
	}
	return nil
}

// checkThreshold validates the -threshold flag: LC^f thresholds are
// meaningful only strictly inside (0, 1).
func checkThreshold(v float64) error {
	if v <= 0 || v >= 1 {
		return fmt.Errorf("-threshold must be in (0,1), got %g", v)
	}
	return nil
}

// checkK validates the -k flag: the node fanin bound must be at least 1.
func checkK(k int) error {
	if k < 1 {
		return fmt.Errorf("-k must be >= 1, got %d", k)
	}
	return nil
}

func loadSpec(in, bench string) (*relsyn.Function, error) {
	if bench != "" {
		return relsyn.LoadBenchmark(bench)
	}
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return relsyn.ParsePLA(f)
	}
	return relsyn.ParsePLA(r)
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in, bench := inputFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := loadSpec(*in, *bench)
	if err != nil {
		return err
	}
	lo, hi := relsyn.ExactBounds(f)
	sig := relsyn.SignalEstimate(f)
	bor := relsyn.BorderEstimate(f)
	fmt.Printf("inputs            %d\n", f.NumIn)
	fmt.Printf("outputs           %d\n", f.NumOut())
	fmt.Printf("%%DC               %.1f\n", 100*f.DCFraction())
	fmt.Printf("C^f               %.3f\n", relsyn.ComplexityFactor(f))
	fmt.Printf("E[C^f]            %.3f\n", relsyn.ExpectedComplexityFactor(f))
	fmt.Printf("exact bounds      [%.3f, %.3f]\n", lo, hi)
	fmt.Printf("signal estimate   [%.3f, %.3f]\n", sig.Min, sig.Max)
	fmt.Printf("border estimate   [%.3f, %.3f]\n", bor.Min, bor.Max)
	return nil
}

func runAssign(args []string) error {
	fs := flag.NewFlagSet("assign", flag.ExitOnError)
	in, bench := inputFlags(fs)
	out := fs.String("out", "", "output .pla file (default: stdout)")
	method := fs.String("method", "rank", "assignment method: rank, lcf, or complete")
	fraction := fs.Float64("fraction", 0.5, "fraction of ranked DCs to assign (rank)")
	threshold := fs.Float64("threshold", 0.55, "LC^f threshold (lcf)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFraction(*fraction); err != nil {
		return err
	}
	if err := checkThreshold(*threshold); err != nil {
		return err
	}
	f, err := loadSpec(*in, *bench)
	if err != nil {
		return err
	}
	var res *relsyn.AssignResult
	switch *method {
	case "rank":
		res, err = relsyn.RankingAssign(f, *fraction)
	case "lcf":
		res, err = relsyn.LCFAssign(f, *threshold)
	case "complete":
		res = relsyn.CompleteAssign(f)
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "assigned %d of %d DC minterms (%.1f%%)\n",
		len(res.Assigned), res.TotalDCs, 100*res.FractionAssigned())
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	return relsyn.WritePLA(w, res.Func)
}

func runSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	in, bench := inputFlags(fs)
	objective := fs.String("objective", "power", "optimization objective: delay, power, or area")
	flow := fs.String("flow", "sop", "synthesis flow: sop or resyn")
	method := fs.String("method", "none", "DC assignment before synthesis: none, rank, lcf, or complete")
	fraction := fs.Float64("fraction", 0.5, "fraction of ranked DCs to assign (rank)")
	threshold := fs.Float64("threshold", 0.55, "LC^f threshold (lcf)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = unlimited)")
	maxBDD := fs.Int("max-bdd-nodes", 0, "BDD node budget for assignment (0 = unlimited)")
	maxConflicts := fs.Int64("max-conflicts", 0, "SAT conflict budget for verification (0 = default)")
	maxAIG := fs.Int("max-aig-nodes", 0, "AIG node budget for synthesis (0 = unlimited)")
	strict := fs.Bool("strict", false, "fail on budget exhaustion instead of degrading")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkFraction(*fraction); err != nil {
		return err
	}
	if err := checkThreshold(*threshold); err != nil {
		return err
	}
	f, err := loadSpec(*in, *bench)
	if err != nil {
		return err
	}
	opt := relsyn.PipelineOptions{
		Strict: *strict,
		Budget: relsyn.PipelineBudget{
			Timeout:      *timeout,
			MaxBDDNodes:  *maxBDD,
			MaxConflicts: *maxConflicts,
			MaxAIGNodes:  *maxAIG,
		},
	}
	switch *objective {
	case "delay":
		opt.Synth.Objective = relsyn.OptimizeDelay
	case "power":
		opt.Synth.Objective = relsyn.OptimizePower
	case "area":
		opt.Synth.Objective = relsyn.OptimizeArea
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}
	switch *flow {
	case "sop":
		opt.Synth.Flow = relsyn.FlowSOP
	case "resyn":
		opt.Synth.Flow = relsyn.FlowResyn
	default:
		return fmt.Errorf("unknown flow %q", *flow)
	}
	switch *method {
	case "none":
		opt.Assign.Method = relsyn.MethodNone
	case "rank":
		opt.Assign = relsyn.PipelineAssign{
			Method: relsyn.MethodRanking, Fraction: *fraction, UseBDD: true}
	case "lcf":
		opt.Assign = relsyn.PipelineAssign{
			Method: relsyn.MethodLCF, Threshold: *threshold, UseBDD: true}
	case "complete":
		opt.Assign.Method = relsyn.MethodComplete
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	res, err := relsyn.RunPipeline(context.Background(), f, opt)
	if err != nil {
		var se *relsyn.StageError
		if errors.As(err, &se) {
			reportFallbacks(res)
			return fmt.Errorf("stage %s failed (%s, attempt %s): %w",
				se.Stage, se.Reason, se.Attempt, se.Err)
		}
		return err
	}
	m := res.Synth.Metrics
	fmt.Printf("area        %.2f\n", m.Area)
	fmt.Printf("delay       %.1f ps\n", m.DelayPs)
	fmt.Printf("power       %.2f\n", m.Power)
	fmt.Printf("gates       %d\n", m.Gates)
	fmt.Printf("literals    %d\n", m.Literals)
	fmt.Printf("aig nodes   %d (depth %d)\n", m.AIGNodes, m.AIGDepth)
	er, err := relsyn.ErrorRate(f, res.Synth.Impl)
	if err != nil {
		return err
	}
	fmt.Printf("error rate  %.4f\n", er)
	fmt.Printf("verified    %v (%s)\n", res.Verified, res.VerifyMethod)
	reportFallbacks(res)
	return nil
}

// reportFallbacks prints each degradation-ladder step a pipeline run took
// to stderr, so scripted callers parsing stdout metrics stay unaffected.
func reportFallbacks(res *relsyn.PipelineResult) {
	if res == nil {
		return
	}
	for _, fb := range res.Fallbacks {
		fmt.Fprintf(os.Stderr, "fallback    %s: %s -> %s (%v)\n",
			fb.Stage, fb.From, fb.To, fb.Cause)
	}
}

func runDecompose(args []string) error {
	fs := flag.NewFlagSet("decompose", flag.ExitOnError)
	in, bench := inputFlags(fs)
	k := fs.Int("k", 5, "node fanin bound (2..6)")
	threshold := fs.Float64("threshold", 0.7, "LC^f threshold for internal reassignment")
	blifOut := fs.String("blif", "", "write reassigned network as BLIF to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := checkK(*k); err != nil {
		return err
	}
	if err := checkThreshold(*threshold); err != nil {
		return err
	}
	f, err := loadSpec(*in, *bench)
	if err != nil {
		return err
	}
	res, err := relsyn.Synthesize(f, relsyn.SynthOptions{Objective: relsyn.OptimizePower})
	if err != nil {
		return err
	}
	conv, err := relsyn.Decompose(res.Graph, *k)
	if err != nil {
		return err
	}
	rel, err := relsyn.Decompose(res.Graph, *k)
	if err != nil {
		return err
	}
	if err := conv.CompleteConventionalAll(); err != nil {
		return err
	}
	assigned, err := rel.ReassignLCF(*threshold)
	if err != nil {
		return err
	}
	fmt.Printf("nodes                %d (k=%d)\n", conv.NumNodes(), *k)
	fmt.Printf("internal DCs bound   %d\n", assigned)
	fmt.Printf("node-output err rate %.4f -> %.4f\n", conv.InternalErrorRate(), rel.InternalErrorRate())
	fmt.Printf("node-input err rate  %.4f -> %.4f\n", conv.InputErrorRate(), rel.InputErrorRate())
	fmt.Printf("SOP literals         %d -> %d\n", conv.TotalLiterals(), rel.TotalLiterals())
	if *blifOut != "" {
		file, err := os.Create(*blifOut)
		if err != nil {
			return err
		}
		defer file.Close()
		if err := relsyn.WriteBLIF(file, rel, "relsyn"); err != nil {
			return err
		}
		fmt.Printf("BLIF written to      %s\n", *blifOut)
	}
	return nil
}

func runVerilog(args []string) error {
	fs := flag.NewFlagSet("verilog", flag.ExitOnError)
	in, bench := inputFlags(fs)
	module := fs.String("module", "top", "Verilog module name")
	out := fs.String("out", "", "output .v file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := loadSpec(*in, *bench)
	if err != nil {
		return err
	}
	res, err := relsyn.Synthesize(f, relsyn.SynthOptions{Objective: relsyn.OptimizeArea})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	return res.Netlist.WriteVerilog(w, *module, f.NumIn)
}
