// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments [-quick] [-threshold 0.55] [table1 fig2 fig4 fig5 fig6 table2 table3 threshold ties nodal | all]
//
// -quick shrinks the sweep grids and sample counts so the full set runs
// in a couple of minutes on one core; omit it for paper-scale runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"relsyn/internal/experiments"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "reduced grids and sample counts")
		threshold = flag.Float64("threshold", experiments.DefaultThreshold, "LC^f threshold for tables 2-3")
	)
	flag.Parse()
	names := flag.Args()
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		names = []string{"table1", "fig2", "fig4", "fig5", "fig6", "table2", "table3",
			"threshold", "ties", "nodal", "flows", "faults", "multibit", "quality", "conflicts"}
	}

	fractions := experiments.DefaultFractions
	fig2Samples := 3
	fig6 := experiments.DefaultFig6()
	if *quick {
		fractions = []float64{0, 0.25, 0.5, 0.75, 1}
		fig2Samples = 1
		fig6 = experiments.Fig6Config{Inputs: 9, Outputs: 4, FunctionsPerClass: 3,
			Fractions: []float64{0, 0.5, 1}, Seed: 4000}
	}

	for _, name := range names {
		start := time.Now()
		var (
			out string
			err error
		)
		switch name {
		case "table1":
			var rows []experiments.Table1Row
			rows, err = experiments.Table1()
			out = experiments.RenderTable1(rows)
		case "fig2":
			var pts []experiments.Fig2Point
			pts, err = experiments.Fig2(fig2Samples, 7000)
			out = experiments.RenderFig2(pts)
		case "fig4":
			var rows []experiments.Fig4Row
			rows, err = experiments.Fig4(fractions)
			out = experiments.RenderFig4(rows)
		case "fig5":
			var res []experiments.Fig5Result
			res, err = experiments.Fig5(fractions)
			out = experiments.RenderFig5(res)
		case "fig6":
			var fams []experiments.Fig6Family
			fams, err = experiments.Fig6(fig6)
			out = experiments.RenderFig6(fams)
		case "table2":
			var rows []experiments.Table2Row
			rows, err = experiments.Table2(*threshold)
			out = experiments.RenderTable2(rows)
		case "table3":
			var rows []experiments.Table3Row
			rows, err = experiments.Table3(*threshold)
			out = experiments.RenderTable3(rows)
		case "threshold":
			var pts []experiments.ThresholdPoint
			pts, err = experiments.ThresholdSweep([]float64{0.35, 0.45, 0.55, 0.65, 0.75})
			out = experiments.RenderThresholdSweep(pts)
		case "ties":
			var rows []experiments.TiesPoint
			rows, err = experiments.TiesAblation()
			out = experiments.RenderTies(rows)
		case "nodal":
			var rows []experiments.NodalRow
			rows, err = experiments.Nodal(nil, 0.7)
			out = experiments.RenderNodal(rows)
		case "flows":
			var rows []experiments.FlowRow
			rows, err = experiments.Flows()
			out = experiments.RenderFlows(rows)
		case "faults":
			var rows []experiments.FaultRow
			rows, err = experiments.Faults(nil, *threshold)
			out = experiments.RenderFaults(rows)
		case "multibit":
			var rows []experiments.MultiBitRow
			rows, err = experiments.MultiBit(nil)
			out = experiments.RenderMultiBit(rows)
		case "quality":
			samples := 10
			if *quick {
				samples = 3
			}
			var rows []experiments.QualityRow
			rows, err = experiments.Quality(samples, 8000)
			out = experiments.RenderQuality(rows)
		case "conflicts":
			var rows []experiments.ConflictRow
			rows, err = experiments.Conflicts()
			out = experiments.RenderConflicts(rows)
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
