// Command benchgen generates synthetic benchmark functions with a
// designated complexity factor and DC density (the paper's §2.2
// methodology), writing them as .pla files.
//
// Usage:
//
//	benchgen -n 10 -m 2 -dc 0.6 -cf 0.7 [-on 0.15] [-seed 1] [-out f.pla]
//	benchgen -suite -dir testdata/   # dump the Table 1 stand-in suite
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"relsyn"
)

func main() {
	var (
		n     = flag.Int("n", 10, "number of inputs")
		m     = flag.Int("m", 1, "number of outputs")
		dc    = flag.Float64("dc", 0.6, "DC fraction per output")
		cf    = flag.Float64("cf", 0.5, "target complexity factor")
		on    = flag.Float64("on", 0, "fixed on-set fraction (0 = balanced care set)")
		seed  = flag.Int64("seed", 1, "generator seed")
		tol   = flag.Float64("tol", 0.02, "C^f tolerance")
		out   = flag.String("out", "", "output .pla file (default: stdout)")
		suite = flag.Bool("suite", false, "emit the built-in Table 1 stand-in suite")
		dir   = flag.String("dir", ".", "output directory for -suite")
	)
	flag.Parse()

	if *suite {
		if err := emitSuite(*dir); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	f, err := relsyn.GenerateSynthetic(relsyn.SyntheticParams{
		Inputs: *n, Outputs: *m, DCFraction: *dc, TargetCf: *cf,
		OnFraction: *on, Tolerance: *tol, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	cf0, err := relsyn.ComplexityFactor(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	ecf, err := relsyn.ExpectedComplexityFactor(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated: C^f=%.3f E[C^f]=%.3f %%DC=%.1f\n",
		cf0, ecf, 100*f.DCFraction())
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		defer file.Close()
		w = file
	}
	if err := relsyn.WritePLA(w, f); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		os.Exit(1)
	}
}

func emitSuite(dir string) error {
	for _, spec := range relsyn.Benchmarks() {
		f, err := relsyn.LoadBenchmark(spec.Name)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, spec.Name+".pla")
		file, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := relsyn.WritePLA(file, f); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
		fmt.Printf("%s: %d inputs, %d outputs -> %s\n", spec.Name, spec.Inputs, spec.Outputs, path)
	}
	return nil
}
