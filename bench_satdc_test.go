package relsyn_test

import (
	"fmt"
	"strings"
	"testing"

	"relsyn/internal/benchmarks"
	"relsyn/internal/blif"
	"relsyn/internal/network"
	"relsyn/internal/synth"
)

func benchSatDCNetwork(b *testing.B, name string) *network.Network {
	b.Helper()
	f, err := benchmarks.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	res, err := synth.Synthesize(f, synth.Options{})
	if err != nil {
		b.Fatal(err)
	}
	nw, err := network.FromAIG(res.Graph, 4)
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

// benchBigBLIF mirrors the 120-PI acceptance circuit from the network
// tests: 40 PI triples, 39 overlapping combiners, 13 collectors.
func benchBigBLIF() string {
	var sb strings.Builder
	sb.WriteString(".model big\n.inputs")
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&sb, " x%d", i)
	}
	sb.WriteString("\n.outputs")
	for j := 0; j < 13; j++ {
		fmt.Fprintf(&sb, " y%d", j)
	}
	sb.WriteString("\n")
	for j := 0; j < 40; j++ {
		fmt.Fprintf(&sb, ".names x%d x%d x%d m%d\n", 3*j, 3*j+1, 3*j+2, j)
		if j%2 == 0 {
			sb.WriteString("11- 1\n1-1 1\n-11 1\n")
		} else {
			sb.WriteString("100 1\n010 1\n001 1\n111 1\n")
		}
	}
	for j := 0; j < 39; j++ {
		fmt.Fprintf(&sb, ".names m%d m%d p%d\n", j, j+1, j)
		switch j % 3 {
		case 0:
			sb.WriteString("11 1\n")
		case 1:
			sb.WriteString("1- 1\n-1 1\n")
		default:
			sb.WriteString("10 1\n01 1\n")
		}
	}
	for j := 0; j < 13; j++ {
		fmt.Fprintf(&sb, ".names p%d p%d p%d y%d\n", 3*j, 3*j+1, 3*j+2, j)
		sb.WriteString("001 1\n111 1\n")
	}
	sb.WriteString(".end\n")
	return sb.String()
}

// BenchmarkSatDC pairs the windowed SAT reassignment against the
// exhaustive-simulation one on suite benchmarks at the exhaustive
// engine's comfortable sizes. The windowed side's per-node cost is
// O(window), the exhaustive side's is O(2^n): the gated windowed
// speedup must not shrink as either engine evolves. The 120-PI group
// has no exhaustive partner — that regime is the windowed engine's
// reason to exist — so it is reported but never paired.
func BenchmarkSatDC(b *testing.B) {
	for _, tc := range []struct{ group, bench string }{
		{"t4", "t4"},
		{"random3", "random3"},
	} {
		nw := benchSatDCNetwork(b, tc.bench)
		b.Run(tc.group+"/windowed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := nw.Clone()
				if _, err := c.ReassignLCFWindowed(0.55, network.SatDCOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.group+"/exhaustive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := nw.Clone()
				if _, err := c.ReassignLCF(0.55); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	big, err := blif.Parse(strings.NewReader(benchBigBLIF()))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("n=120/windowed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := big.Clone()
			if _, err := c.ReassignLCFWindowed(0.55, network.SatDCOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
