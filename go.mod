module relsyn

go 1.23
