package relsyn_test

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"relsyn"
)

func TestPLARoundTripThroughFacade(t *testing.T) {
	src := `
.i 3
.o 1
01- 1
000 -
.e
`
	f, err := relsyn.ParsePLA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumIn != 3 || f.NumOut() != 1 {
		t.Fatal("shape wrong")
	}
	var buf bytes.Buffer
	if err := relsyn.WritePLA(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := relsyn.ParsePLA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(back) {
		t.Fatal("round trip mismatch")
	}
}

func TestQuickstartPipeline(t *testing.T) {
	spec, err := relsyn.LoadBenchmark("bench")
	if err != nil {
		t.Fatal(err)
	}
	// Conventional baseline.
	conv, err := relsyn.Synthesize(spec, relsyn.SynthOptions{Objective: relsyn.OptimizePower})
	if err != nil {
		t.Fatal(err)
	}
	convER, err := relsyn.ErrorRate(spec, conv.Impl)
	if err != nil {
		t.Fatal(err)
	}

	// Reliability-driven: rank and bind half the DCs.
	res, err := relsyn.RankingAssign(spec, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := relsyn.Synthesize(res.Func, relsyn.SynthOptions{Objective: relsyn.OptimizePower})
	if err != nil {
		t.Fatal(err)
	}
	relER, err := relsyn.ErrorRate(spec, rel.Impl)
	if err != nil {
		t.Fatal(err)
	}

	lo, hi, err := relsyn.ExactBounds(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, er := range []float64{convER, relER} {
		if er < lo-1e-12 || er > hi+1e-12 {
			t.Fatalf("error rate %v outside exact bounds [%v, %v]", er, lo, hi)
		}
	}
	if relER > convER+1e-12 {
		t.Fatalf("half ranking assignment worsened error rate: %v > %v", relER, convER)
	}
	if conv.Metrics.Area <= 0 || conv.Metrics.Gates <= 0 {
		t.Fatal("metrics missing")
	}
}

func TestFacadeMetrics(t *testing.T) {
	spec, err := relsyn.LoadBenchmark("fout")
	if err != nil {
		t.Fatal(err)
	}
	cf, err := relsyn.ComplexityFactor(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cf <= 0 || cf >= 1 {
		t.Fatalf("C^f = %v", cf)
	}
	ecf, err := relsyn.ExpectedComplexityFactor(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ecf <= 0 || ecf >= 1 {
		t.Fatalf("E[C^f] = %v", ecf)
	}
	lcf := relsyn.LocalComplexityFactor(spec, 0, 0)
	if lcf < 0 || lcf > 1 {
		t.Fatalf("LC^f = %v", lcf)
	}
	sig, err := relsyn.SignalEstimate(spec)
	if err != nil {
		t.Fatal(err)
	}
	bor, err := relsyn.BorderEstimate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Min > sig.Max || bor.Min > bor.Max {
		t.Fatal("estimate intervals inverted")
	}
}

func TestCompleteAndLCFAssign(t *testing.T) {
	spec, err := relsyn.LoadBenchmark("bench")
	if err != nil {
		t.Fatal(err)
	}
	comp := relsyn.CompleteAssign(spec)
	if !comp.Func.CompletelySpecified() {
		t.Fatal("CompleteAssign left DCs")
	}
	lcf, err := relsyn.LCFAssign(spec, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if lcf.FractionAssigned() < 0 || lcf.FractionAssigned() > 1 {
		t.Fatal("bad fraction")
	}
}

func TestFacadeExtensions(t *testing.T) {
	spec, err := relsyn.LoadBenchmark("bench")
	if err != nil {
		t.Fatal(err)
	}
	res, err := relsyn.Synthesize(spec, relsyn.SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := relsyn.ErrorRateMulti(context.Background(), spec, res.Impl, 1)
	if err != nil {
		t.Fatal(err)
	}
	single, err := relsyn.ErrorRate(spec, res.Impl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1-single) > 1e-12 {
		t.Fatal("ErrorRateMulti(k=1) disagrees with ErrorRate")
	}
	r2, err := relsyn.ErrorRateMulti(context.Background(), spec, res.Impl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0 || r2 > 1 {
		t.Fatalf("2-bit rate out of range: %v", r2)
	}
	rep, err := relsyn.AnalyzeFaults(res, spec.NumIn)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == 0 || rep.MeanObservability <= 0 {
		t.Fatalf("fault report implausible: %+v", rep)
	}
	// BLIF through the facade.
	nw, err := relsyn.Decompose(res.Graph, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := relsyn.WriteBLIF(&buf, nw, "m"); err != nil {
		t.Fatal(err)
	}
	back, err := relsyn.ParseBLIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPI != spec.NumIn {
		t.Fatal("BLIF round trip lost inputs")
	}
	// BDD variants agree with the dense ones.
	a, err := relsyn.RankingAssign(spec, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := relsyn.RankingAssignBDD(spec, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Func.Equal(b.Func) {
		t.Fatal("BDD ranking facade diverges")
	}
	l1, err := relsyn.LCFAssign(spec, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := relsyn.LCFAssignBDD(spec, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if !l1.Func.Equal(l2.Func) {
		t.Fatal("BDD LCF facade diverges")
	}
	// SAT-based equivalence checking through the facade.
	res2, err := relsyn.Synthesize(spec, relsyn.SynthOptions{Flow: relsyn.FlowResyn})
	if err != nil {
		t.Fatal(err)
	}
	eq, _, err := relsyn.CheckEquivalence(res.Graph, res2.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("two flows of the same completion reported inequivalent")
	}
}

func TestBenchmarksList(t *testing.T) {
	specs := relsyn.Benchmarks()
	if len(specs) != 12 {
		t.Fatalf("suite has %d entries, want 12", len(specs))
	}
	if specs[0].Name != "bench" || specs[11].Name != "random3" {
		t.Fatal("suite order wrong")
	}
}

func TestGenerateSyntheticFacade(t *testing.T) {
	f, err := relsyn.GenerateSynthetic(relsyn.SyntheticParams{
		Inputs: 7, Outputs: 1, DCFraction: 0.5, TargetCf: 0.6, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := relsyn.ComplexityFactor(f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.6) > 0.011 {
		t.Fatalf("C^f = %v, want ~0.6", got)
	}
}

func TestDecomposeFacade(t *testing.T) {
	spec, err := relsyn.LoadBenchmark("bench")
	if err != nil {
		t.Fatal(err)
	}
	res, err := relsyn.Synthesize(spec, relsyn.SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := relsyn.Decompose(res.Graph, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumNodes() == 0 {
		t.Fatal("empty decomposition")
	}
	r := nw.InternalErrorRate()
	if r <= 0 || r > 1 {
		t.Fatalf("internal error rate %v", r)
	}
}
