// Quickstart: load a benchmark, compare conventional synthesis against
// reliability-driven DC assignment, and print the area/reliability
// trade-off — the library's core loop in ~40 lines.
package main

import (
	"fmt"
	"log"

	"relsyn"
)

func main() {
	spec, err := relsyn.LoadBenchmark("ex1010")
	if err != nil {
		log.Fatal(err)
	}
	cf, err := relsyn.ComplexityFactor(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ex1010: %d inputs, %d outputs, %.1f%% DC, C^f=%.3f\n",
		spec.NumIn, spec.NumOut(), 100*spec.DCFraction(), cf)

	lo, hi, err := relsyn.ExactBounds(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("achievable error-rate range: [%.4f, %.4f]\n\n", lo, hi)

	// Conventional: every DC spent on area by the minimizer.
	conv, err := relsyn.Synthesize(spec, relsyn.SynthOptions{Objective: relsyn.OptimizePower})
	if err != nil {
		log.Fatal(err)
	}
	convER, err := relsyn.ErrorRate(spec, conv.Impl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional:       area %7.1f   error rate %.4f\n", conv.Metrics.Area, convER)

	// Reliability-driven: bind the most valuable half of the ranked DCs
	// (paper Fig. 3), then synthesize with the remaining flexibility.
	for _, fraction := range []float64{0.25, 0.5, 1.0} {
		res, err := relsyn.RankingAssign(spec, fraction)
		if err != nil {
			log.Fatal(err)
		}
		impl, err := relsyn.Synthesize(res.Func, relsyn.SynthOptions{Objective: relsyn.OptimizePower})
		if err != nil {
			log.Fatal(err)
		}
		er, err := relsyn.ErrorRate(spec, impl.Impl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ranking %4.0f%%:      area %7.1f   error rate %.4f   (%.1f%% fewer errors)\n",
			100*fraction, impl.Metrics.Area, er, 100*(convER-er)/convER)
	}
}
