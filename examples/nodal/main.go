// Nodal: the paper's §4 extension. Decompose a synthesized circuit into
// SOP nodes, extract exact internal don't-cares (satisfiability +
// observability), reassign them with the LC^f rule, and measure how much
// better the circuit masks internal single-node errors — without
// changing its function.
package main

import (
	"fmt"
	"log"

	"relsyn"
)

func main() {
	spec, err := relsyn.LoadBenchmark("bench")
	if err != nil {
		log.Fatal(err)
	}
	impl, err := relsyn.Synthesize(spec, relsyn.SynthOptions{Objective: relsyn.OptimizePower})
	if err != nil {
		log.Fatal(err)
	}

	// Two copies of the same decomposition: one completed conventionally,
	// one with reliability-driven internal DC assignment.
	conv, err := relsyn.Decompose(impl.Graph, 5)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := relsyn.Decompose(impl.Graph, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bench decomposed into %d SOP nodes (k=5)\n\n", conv.NumNodes())

	before := rel.POFunction()
	if err := conv.CompleteConventionalAll(); err != nil {
		log.Fatal(err)
	}
	assigned, err := rel.ReassignLCF(0.7)
	if err != nil {
		log.Fatal(err)
	}
	if !rel.POFunction().Equal(before) {
		log.Fatal("reassignment changed the circuit function (bug)")
	}
	fmt.Printf("internal DC patterns bound for reliability: %d\n", assigned)
	fmt.Printf("circuit function preserved exactly: yes\n\n")

	fmt.Printf("node-output error propagation (single node-output errors):\n")
	fmt.Printf("  conventional completion:   %.4f\n", conv.InternalErrorRate())
	fmt.Printf("  LC^f reassignment:         %.4f\n", rel.InternalErrorRate())
	fmt.Printf("node-input (wire) error propagation:\n")
	fmt.Printf("  conventional completion:   %.4f\n", conv.InputErrorRate())
	fmt.Printf("  LC^f reassignment:         %.4f\n", rel.InputErrorRate())
	fmt.Printf("\nSOP literal cost: conventional %d, reassigned %d\n",
		conv.TotalLiterals(), rel.TotalLiterals())
	fmt.Println("\nNote: at node granularity (k ≤ 6) the area-driven completion already")
	fmt.Println("agrees with the majority-phase choice on ~97% of internal DC patterns,")
	fmt.Println("so the headroom here is inherently small — see EXPERIMENTS.md (A3).")
}
