// Motivating example (paper Fig. 1): a 4-variable incompletely specified
// function with three DC minterms that reliability-driven assignment
// treats differently — one agrees with area-driven assignment, one
// conflicts with it, and one stays flexible.
package main

import (
	"fmt"
	"log"

	"relsyn"
)

func main() {
	// Construct the specification: on-set neighbors arranged so that
	//   x1 has two on-neighbors, one off-neighbor        -> assign 1
	//   x2 has two off-neighbors, one on-neighbor        -> assign 0
	//   x3 has two on- and two off-neighbors (balanced)  -> leave DC
	f := relsyn.NewFunction(4, 1)
	x1, x2, x3 := 0b0000, 0b1000, 0b0111
	for _, m := range []int{0b0001, 0b0010, 0b1100, 0b0110, 0b0101} {
		f.SetPhase(0, m, relsyn.On)
	}
	for _, m := range []int{x1, x2, x3} {
		f.SetPhase(0, m, relsyn.DC)
	}

	fmt.Println("DC minterm neighborhoods:")
	for _, m := range []int{x1, x2, x3} {
		fmt.Printf("  minterm %04b: %d on-neighbors, %d off-neighbors, LC^f=%.2f\n",
			m, f.OnNeighbors(0, m), f.OffNeighbors(0, m),
			relsyn.LocalComplexityFactor(f, 0, m))
	}

	res, err := relsyn.RankingAssign(f, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nranking-based assignment (fraction 1.0):")
	for _, m := range []int{x1, x2, x3} {
		fmt.Printf("  minterm %04b -> %v\n", m, res.Func.Phase(0, m))
	}

	lo, hi, err := relsyn.ExactBounds(f)
	if err != nil {
		log.Fatal(err)
	}
	impl, err := relsyn.Synthesize(res.Func, relsyn.SynthOptions{})
	if err != nil {
		log.Fatal(err)
	}
	er, err := relsyn.ErrorRate(f, impl.Impl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact error-rate bounds [%.4f, %.4f]; achieved %.4f\n", lo, hi, er)
}
