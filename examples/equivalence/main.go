// Equivalence: formally verify that reliability-driven assignment only
// touches don't-care space. Two implementations of the same
// specification — conventional and ranking-assigned — are proven equal
// on the care set with the BDD package (a miter over care minterms),
// and the mapped netlist's fault behaviour is compared as a bonus.
package main

import (
	"fmt"
	"log"

	"relsyn"
	"relsyn/internal/bdd"
)

func main() {
	spec, err := relsyn.LoadBenchmark("fout")
	if err != nil {
		log.Fatal(err)
	}

	conv, err := relsyn.Synthesize(spec, relsyn.SynthOptions{Objective: relsyn.OptimizePower})
	if err != nil {
		log.Fatal(err)
	}
	assigned, err := relsyn.RankingAssign(spec, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := relsyn.Synthesize(assigned.Func, relsyn.SynthOptions{Objective: relsyn.OptimizePower})
	if err != nil {
		log.Fatal(err)
	}

	// Build BDDs for both implementations and the spec's care sets, then
	// check the miter (impl1 ⊕ impl2) ∧ care == 0 per output.
	m := bdd.New(spec.NumIn)
	allEqual := true
	diffMinterms := 0
	for o := 0; o < spec.NumOut(); o++ {
		f1 := m.FromBitset(conv.Impl.Outs[o].On)
		f2 := m.FromBitset(rel.Impl.Outs[o].On)
		care := m.Not(m.FromBitset(spec.Outs[o].DC))
		miter := m.And(m.Xor(f1, f2), care)
		if miter != bdd.FalseRef {
			allEqual = false
			fmt.Printf("output %d: implementations DIFFER on %d care minterms (BUG)\n",
				o, m.SatCount(miter))
		}
		// Where they differ overall must be inside the DC set.
		anywhere := m.Xor(f1, f2)
		diffMinterms += int(m.SatCount(anywhere))
	}
	if allEqual {
		fmt.Println("BDD miter: implementations agree on every care minterm ✓")
	}
	fmt.Printf("total disagreements (all inside the DC space): %d minterms\n\n", diffMinterms)

	convER, err := relsyn.ErrorRate(spec, conv.Impl)
	if err != nil {
		log.Fatal(err)
	}
	relER, err := relsyn.ErrorRate(spec, rel.Impl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional: area %7.1f  error rate %.4f\n", conv.Metrics.Area, convER)
	fmt.Printf("reliability:  area %7.1f  error rate %.4f\n", rel.Metrics.Area, relER)

	// Bonus: BDD variable-order sensitivity of the spec itself.
	var fs []bdd.Ref
	for o := 0; o < spec.NumOut(); o++ {
		fs = append(fs, m.FromBitset(spec.Outs[o].On))
	}
	natural := m.SharedNodeCount(fs)
	order, best := m.FindOrder(fs)
	fmt.Printf("\nBDD size of the on-sets: %d nodes (natural order), %d after sifting %v\n",
		natural, best, order)
}
