// Sweep: reproduce a single benchmark's Fig. 4/5 trajectory — error
// rate and implementation overheads as a function of the fraction of
// DCs assigned for reliability, under both synthesis objectives.
package main

import (
	"fmt"
	"log"

	"relsyn"
)

func main() {
	spec, err := relsyn.LoadBenchmark("exam")
	if err != nil {
		log.Fatal(err)
	}
	cf, err := relsyn.ComplexityFactor(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exam: %.1f%% DC, C^f=%.3f\n\n", 100*spec.DCFraction(), cf)

	for _, obj := range []struct {
		name string
		o    relsyn.SynthOptions
	}{
		{"delay-optimized", relsyn.SynthOptions{Objective: relsyn.OptimizeDelay}},
		{"power-optimized", relsyn.SynthOptions{Objective: relsyn.OptimizePower}},
	} {
		fmt.Printf("[%s]\n", obj.name)
		fmt.Printf("%9s %10s %10s %10s %10s\n", "fraction", "norm.area", "norm.delay", "norm.power", "norm.ER")
		var baseArea, baseDelay, basePower, baseER float64
		for _, fr := range []float64{0, 0.25, 0.5, 0.75, 1} {
			res, err := relsyn.RankingAssign(spec, fr)
			if err != nil {
				log.Fatal(err)
			}
			impl, err := relsyn.Synthesize(res.Func, obj.o)
			if err != nil {
				log.Fatal(err)
			}
			er, err := relsyn.ErrorRate(spec, impl.Impl)
			if err != nil {
				log.Fatal(err)
			}
			m := impl.Metrics
			if fr == 0 {
				baseArea, baseDelay, basePower, baseER = m.Area, m.DelayPs, m.Power, er
			}
			fmt.Printf("%9.2f %10.3f %10.3f %10.3f %10.3f\n", fr,
				m.Area/baseArea, m.DelayPs/baseDelay, m.Power/basePower, er/baseER)
		}
		fmt.Println()
	}
}
