// Bounds: reproduce the paper's Fig. 8 observation — two functions with
// identical signal probabilities but different border counts get
// identical signal-probability estimates yet very different actual
// reliability ranges, which only the border-based estimate can see.
package main

import (
	"errors"
	"fmt"
	"log"

	"relsyn"
)

func main() {
	// Function A: clustered — on-set, off-set and DC-set each occupy a
	// contiguous quarter/half arrangement (few borders).
	clustered := relsyn.NewFunction(4, 1)
	for m := 0; m < 4; m++ {
		clustered.SetPhase(0, m, relsyn.On) // subcube x2=0,x3=0
	}
	for m := 4; m < 8; m++ {
		clustered.SetPhase(0, m, relsyn.DC) // subcube x2=1,x3=0
	}
	// minterms 8..15 stay off.

	// Function B: scattered — same set sizes (4 on, 4 DC, 8 off) but
	// interleaved (many borders).
	scattered := relsyn.NewFunction(4, 1)
	for _, m := range []int{0, 3, 5, 6} {
		scattered.SetPhase(0, m, relsyn.On)
	}
	for _, m := range []int{9, 10, 12, 15} {
		scattered.SetPhase(0, m, relsyn.DC)
	}

	show := func(name string, f *relsyn.Function) {
		f0, f1, fdc := f.SignalProbabilities(0)
		lo, hi, err := relsyn.ExactBounds(f)
		if err != nil {
			log.Fatal(err)
		}
		sig, err := relsyn.SignalEstimate(f)
		if err != nil {
			log.Fatal(err)
		}
		bor, err := relsyn.BorderEstimate(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: f0=%.2f f1=%.2f fDC=%.2f\n", name, f0, f1, fdc)
		fmt.Printf("  exact bounds    [%.3f, %.3f]\n", lo, hi)
		fmt.Printf("  signal estimate [%.3f, %.3f]   (sees only probabilities)\n", sig.Min, sig.Max)
		fmt.Printf("  border estimate [%.3f, %.3f]   (sees structure)\n\n", bor.Min, bor.Max)
	}
	show("clustered (few borders)", clustered)
	show("scattered (many borders)", scattered)

	sigA, errA := relsyn.SignalEstimate(clustered)
	sigB, errB := relsyn.SignalEstimate(scattered)
	if errA != nil || errB != nil {
		log.Fatal(errors.Join(errA, errB))
	}
	if sigA == sigB {
		fmt.Println("signal-probability estimates are IDENTICAL for both functions;")
		fmt.Println("only the border-based estimate distinguishes their reliability ranges.")
	}

	// The analytic story carries through synthesis too.
	for name, f := range map[string]*relsyn.Function{"clustered": clustered, "scattered": scattered} {
		impl, err := relsyn.Synthesize(f, relsyn.SynthOptions{})
		if err != nil {
			log.Fatal(err)
		}
		er, err := relsyn.ErrorRate(f, impl.Impl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s synthesized: %d gates, measured error rate %.3f\n",
			name, impl.Metrics.Gates, er)
	}
}
