// Top-level benchmark harness: one testing.B target per paper table and
// figure (see DESIGN.md §4), each driving the same entry points as
// cmd/experiments on reduced grids so the whole suite is runnable with
// `go test -bench=. -benchmem`. Paper-scale runs: `go run ./cmd/experiments`.
package relsyn_test

import (
	"testing"

	"relsyn/internal/experiments"
)

var benchFractions = []float64{0, 0.5, 1}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(1, 7000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchFractions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchFractions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	cfg := experiments.Fig6Config{Inputs: 8, Outputs: 2, FunctionsPerClass: 2,
		Fractions: []float64{0, 1}, Seed: 900}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(experiments.DefaultThreshold); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(experiments.DefaultThreshold); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ThresholdSweep([]float64{0.45, 0.65}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TiesAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Flows(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNodal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Nodal([]string{"bench"}, 0.7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Faults([]string{"bench"}, experiments.DefaultThreshold); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiBit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiBit([]string{"bench"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Quality(1, 8000); err != nil {
			b.Fatal(err)
		}
	}
}
