// Top-level benchmark harness: one testing.B target per paper table and
// figure (see DESIGN.md §4), each driving the same entry points as
// cmd/experiments on reduced grids so the whole suite is runnable with
// `go test -bench=. -benchmem`. Paper-scale runs: `go run ./cmd/experiments`.
package relsyn_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"relsyn/client"
	"relsyn/internal/bitset"
	"relsyn/internal/census"
	"relsyn/internal/cluster"
	"relsyn/internal/complexity"
	"relsyn/internal/core"
	"relsyn/internal/estimate"
	"relsyn/internal/experiments"
	"relsyn/internal/fleet"
	"relsyn/internal/obs"
	"relsyn/internal/pla"
	"relsyn/internal/reliability"
	"relsyn/internal/server"
	"relsyn/internal/store"
	"relsyn/internal/synth"
	"relsyn/internal/synthetic"
	"relsyn/internal/tt"
)

var benchFractions = []float64{0, 0.5, 1}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(1, 7000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchFractions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchFractions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	cfg := experiments.Fig6Config{Inputs: 8, Outputs: 2, FunctionsPerClass: 2,
		Fractions: []float64{0, 1}, Seed: 900}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(experiments.DefaultThreshold); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(experiments.DefaultThreshold); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ThresholdSweep([]float64{0.45, 0.65}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TiesAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Flows(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNodal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Nodal([]string{"bench"}, 0.7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Faults([]string{"bench"}, experiments.DefaultThreshold); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiBit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiBit([]string{"bench"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Quality(1, 8000); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Sequential-vs-parallel kernel benchmarks (internal/par engine).
//
// Every kernel is bit-identical at any worker count (the metatest
// property-5 sweep enforces it), so these benchmarks measure pure
// scheduling overhead and scaling: j=1 is the inline sequential path,
// j=2/4 the bounded pool. GOMAXPROCS is raised to 4 so the pool can
// actually run concurrently on small CI machines; on a 1-core host the
// parallel rows then measure pool overhead under forced multiplexing
// rather than true speedup.

// benchParProcs raises GOMAXPROCS for the duration of one benchmark.
func benchParProcs(b *testing.B, n int) {
	b.Helper()
	prev := runtime.GOMAXPROCS(n)
	b.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// benchParSpec generates the multi-output spec shared by the kernel
// benchmarks: 14 inputs and 8 outputs (the issue's n>=14 operating
// point) gives the per-output fan-out the pool distributes. Generation
// is cached across sub-benchmarks.
var benchParSpecOnce struct {
	sync.Once
	f   *tt.Function
	err error
}

func benchParSpec(b *testing.B) *tt.Function {
	b.Helper()
	benchParSpecOnce.Do(func() {
		benchParSpecOnce.f, benchParSpecOnce.err = synthetic.Generate(synthetic.Params{
			Inputs: 14, Outputs: 8, DCFraction: 0.5, TargetCf: 0.5,
			Tolerance: 0.05, Seed: 4242, BestEffort: true,
		})
	})
	if benchParSpecOnce.err != nil {
		b.Fatal(benchParSpecOnce.err)
	}
	return benchParSpecOnce.f
}

var benchParWorkers = []int{1, 2, 4}

func BenchmarkParBoundsMean(b *testing.B) {
	spec := benchParSpec(b)
	for _, j := range benchParWorkers {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			benchParProcs(b, 4)
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				if _, _, err := reliability.BoundsMeanCtx(ctx, spec, j); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParErrorRateMean(b *testing.B) {
	spec := benchParSpec(b)
	impl := core.Complete(spec).Func
	for _, j := range benchParWorkers {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			benchParProcs(b, 4)
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				if _, err := reliability.ErrorRateMeanCtx(ctx, spec, impl, j); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParFactorMean(b *testing.B) {
	spec := benchParSpec(b)
	for _, j := range benchParWorkers {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			benchParProcs(b, 4)
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				if _, err := complexity.FactorMeanCtx(ctx, spec, j); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParSynthesize(b *testing.B) {
	// Synthesis runs full espresso+factoring per output, so it uses a
	// smaller spec than the analysis kernels to keep -benchtime=1x (the
	// CI race smoke) affordable.
	spec, err := synthetic.Generate(synthetic.Params{
		Inputs: 10, Outputs: 8, DCFraction: 0.5, TargetCf: 0.5,
		Tolerance: 0.05, Seed: 4242, BestEffort: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range benchParWorkers {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			benchParProcs(b, 4)
			for i := 0; i < b.N; i++ {
				if _, err := synth.Synthesize(spec, synth.Options{Parallelism: j}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Kernel-vs-scalar benchmarks (internal/bitset word-parallel paths).
//
// Each benchmark runs the same Θ(n·2^n) scan through the word-parallel
// kernel and through its scalar oracle at n = 12/14/16. Both paths are
// pinned per call (exported *Kernel/*Scalar entry points and
// core.Options.Kernels) — the process-wide bitset.UseKernels switch is
// never touched, so these are safe alongside parallel tests.
// cmd/benchjson pairs the kernel/scalar rows of this output into
// BENCH_kernels.json and gates CI on the speedup ratios.

var benchKernelInputs = []int{12, 14, 16}

// benchKernelSpecs caches one single-output synthetic spec per input
// count (generation at n=16 walks 65536 minterms; do it once).
var benchKernelSpecs struct {
	sync.Mutex
	specs map[int]*tt.Function
}

func benchKernelSpec(b *testing.B, n int) *tt.Function {
	b.Helper()
	benchKernelSpecs.Lock()
	defer benchKernelSpecs.Unlock()
	if f, ok := benchKernelSpecs.specs[n]; ok {
		return f
	}
	f, err := synthetic.Generate(synthetic.Params{
		Inputs: n, Outputs: 1, DCFraction: 0.3, TargetCf: 0.5,
		Tolerance: 0.05, Seed: int64(1600 + n), BestEffort: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if benchKernelSpecs.specs == nil {
		benchKernelSpecs.specs = map[int]*tt.Function{}
	}
	benchKernelSpecs.specs[n] = f
	return f
}

// benchKernelPair runs the kernel and scalar variants of one scan as
// n=<N>/kernel and n=<N>/scalar sub-benchmarks.
func benchKernelPair(b *testing.B, n int, kernel, scalar func(b *testing.B)) {
	b.Helper()
	b.Run(fmt.Sprintf("n=%d/kernel", n), kernel)
	b.Run(fmt.Sprintf("n=%d/scalar", n), scalar)
}

func BenchmarkKernelErrorRate(b *testing.B) {
	for _, n := range benchKernelInputs {
		spec := benchKernelSpec(b, n)
		impl := core.Complete(spec).Func
		benchKernelPair(b, n,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := reliability.ErrorRateKernel(spec, impl, 0); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := reliability.ErrorRateScalar(spec, impl, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
	}
}

func BenchmarkKernelBounds(b *testing.B) {
	for _, n := range benchKernelInputs {
		spec := benchKernelSpec(b, n)
		benchKernelPair(b, n,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					reliability.BoundsKernel(spec, 0)
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					reliability.BoundsScalar(spec, 0)
				}
			})
	}
}

func BenchmarkKernelFactor(b *testing.B) {
	for _, n := range benchKernelInputs {
		spec := benchKernelSpec(b, n)
		benchKernelPair(b, n,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					complexity.FactorKernel(spec, 0)
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					complexity.FactorScalar(spec, 0)
				}
			})
	}
}

func BenchmarkKernelLocal(b *testing.B) {
	ctx := context.Background()
	for _, n := range benchKernelInputs {
		spec := benchKernelSpec(b, n)
		benchKernelPair(b, n,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := complexity.LocalAllKernelCtx(ctx, spec, 0, 1); err != nil {
						b.Fatal(err)
					}
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := complexity.LocalAllScalarCtx(ctx, spec, 0, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
	}
}

func BenchmarkKernelBorder(b *testing.B) {
	for _, n := range benchKernelInputs {
		spec := benchKernelSpec(b, n)
		benchKernelPair(b, n,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					reliability.CountBordersKernel(spec, 0)
				}
			},
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					reliability.CountBordersScalar(spec, 0)
				}
			})
	}
}

func BenchmarkKernelRanking(b *testing.B) {
	for _, n := range benchKernelInputs {
		spec := benchKernelSpec(b, n)
		run := func(mode core.KernelMode) func(b *testing.B) {
			return func(b *testing.B) {
				opt := core.Options{Kernels: mode, Parallelism: 1}
				for i := 0; i < b.N; i++ {
					if _, err := core.Ranking(spec, 0.5, opt); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		benchKernelPair(b, n, run(core.KernelsOn), run(core.KernelsOff))
	}
}

// ---------------------------------------------------------------------
// Fused-vs-unfused census benchmarks (internal/census engine).
//
// BenchmarkSynthesize runs the full analysis bundle one /v1/synth job
// pays before synthesis proper — exact bounds, C^f, the Poisson border
// estimate, and both assignment passes — twice per input count:
//
//   - unfused: the PR 5 path, every metric re-deriving its neighbor
//     censuses in its own ShiftNeighbor/popcount scan (kernels on).
//   - fused: the metrics served from one shared neighbor census pulled
//     through a content-addressed census.Engine exactly as the pipeline
//     does — the first iteration computes the census, the rest ride the
//     warm cache, which is the engine's steady serving state.
//
// Both lanes produce bit-identical answers (metatest property 7), so
// the fused/unfused ratio is pure execution win. cmd/benchjson pairs
// the rows into BENCH_fused.json and CI gates the n=16 ratio ≥ 2.0×.

func benchCensusBundle(b *testing.B, spec *tt.Function, cs []*bitset.Census) {
	b.Helper()
	ctx := context.Background()
	opt := core.Options{Kernels: core.KernelsOn, Parallelism: 1, Census: cs}
	if _, _, err := reliability.BoundsMeanCensusCtx(ctx, spec, cs, 1); err != nil {
		b.Fatal(err)
	}
	if _, err := estimate.BorderBasedMeanCensusCtx(ctx, spec, cs, 1); err != nil {
		b.Fatal(err)
	}
	for o := 0; o < spec.NumOut(); o++ {
		if o < len(cs) && cs[o] != nil {
			complexity.FactorCensus(cs[o])
		} else {
			complexity.FactorKernel(spec, o)
		}
	}
	if _, err := core.Ranking(spec, 0.5, opt); err != nil {
		b.Fatal(err)
	}
	if _, err := core.LCF(spec, 0.55, opt); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSynthesize(b *testing.B) {
	for _, n := range benchKernelInputs {
		spec := benchKernelSpec(b, n)
		hash := pla.HashFunction(spec)
		b.Run(fmt.Sprintf("n=%d/fused", n), func(b *testing.B) {
			eng := census.NewEngine(4, 64<<20)
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				fc, err := eng.For(ctx, hash, spec, 1)
				if err != nil {
					b.Fatal(err)
				}
				benchCensusBundle(b, spec, fc.Outs)
			}
		})
		b.Run(fmt.Sprintf("n=%d/unfused", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchCensusBundle(b, spec, nil)
			}
		})
	}
}

// BenchmarkCensusCompute isolates the fused pass itself: the one-time
// cost a cold census cache pays per spec (amortized across every
// consumer and every later job on the same spec).
func BenchmarkCensusCompute(b *testing.B) {
	for _, n := range benchKernelInputs {
		spec := benchKernelSpec(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				if _, err := census.Compute(ctx, spec, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchServerPLA generates one of the distinct 4-input specifications
// used by BenchmarkServerThroughput: deterministic per seed, with a mix
// of on-set and DC rows so the full assign+synth+verify pipeline runs.
func benchServerPLA(seed int) string {
	var sb strings.Builder
	sb.WriteString(".i 4\n.o 1\n.type fd\n")
	for m := 0; m < 16; m++ {
		switch (m*31 + seed*17 + seed*seed) % 5 {
		case 0, 3:
			fmt.Fprintf(&sb, "%04b 1\n", m)
		case 1:
			fmt.Fprintf(&sb, "%04b -\n", m)
		}
	}
	sb.WriteString(".e\n")
	return sb.String()
}

// fireServerRequests posts total concurrent synth requests (cycling
// through specs) against base and fails the benchmark on any non-OK or
// non-done response.
func fireServerRequests(b *testing.B, base string, specs []string, total int) {
	b.Helper()
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := json.Marshal(map[string]any{
				"pla":     specs[i%len(specs)],
				"options": map[string]any{"method": "rank", "fraction": 1.0},
			})
			if err != nil {
				b.Error(err)
				return
			}
			resp, err := http.Post(base+"/v1/synth", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			defer resp.Body.Close()
			var env struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK || env.Status != "done" {
				b.Errorf("request %d: status %d / %q (%s)", i, resp.StatusCode, env.Status, env.Error)
			}
		}(i)
	}
	wg.Wait()
}

// BenchmarkServerThroughput measures the relsynd service end to end: 64
// concurrent requests over 8 distinct specifications through the HTTP
// front end, job queue, worker pool, and result cache.
//
//   - cold: every iteration starts an empty cache, so each distinct spec
//     synthesizes once and its 7 duplicates coalesce or hit the cache.
//   - warm: the cache is primed before the timer starts, so all 64
//     requests are cache hits — the serving-path overhead in isolation.
func BenchmarkServerThroughput(b *testing.B) {
	const total, distinct = 64, 8
	specs := make([]string, distinct)
	for i := range specs {
		specs[i] = benchServerPLA(i)
	}
	cfg := server.Config{Workers: 4, QueueDepth: 2 * total, CacheSize: 2 * distinct}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv := server.New(cfg)
			ts := httptest.NewServer(srv.Handler())
			b.StartTimer()
			fireServerRequests(b, ts.URL, specs, total)
			b.StopTimer()
			ts.Close()
			srv.Close()
			b.StartTimer()
		}
	})

	b.Run("warm", func(b *testing.B) {
		srv := server.New(cfg)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Close()
		fireServerRequests(b, ts.URL, specs, distinct) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fireServerRequests(b, ts.URL, specs, total)
		}
	})
}

// BenchmarkStoreThroughput measures what the durable job store costs on
// the serving path: the same 64-request cold-cache burst as
// BenchmarkServerThroughput, once without a store (base) and once
// persisting every job record with -wal-sync always (wal). The gated
// quantity in BENCH_store.json is the base/wal ratio (cmd/benchjson
// -pair wal,base) — not absolute throughput — so the gate fails when
// WAL overhead grows relative to the serving path.
func BenchmarkStoreThroughput(b *testing.B) {
	const total, distinct = 64, 8
	specs := make([]string, distinct)
	for i := range specs {
		specs[i] = benchServerPLA(i)
	}
	base := server.Config{Workers: 4, QueueDepth: 2 * total, CacheSize: 2 * distinct}

	run := func(b *testing.B, durable bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cfg := base
			var st *store.Store
			if durable {
				var err error
				st, _, err = store.Open(store.Options{Dir: b.TempDir(), Sync: store.SyncAlways})
				if err != nil {
					b.Fatal(err)
				}
				cfg.Store = st
			}
			srv := server.New(cfg)
			ts := httptest.NewServer(srv.Handler())
			b.StartTimer()
			fireServerRequests(b, ts.URL, specs, total)
			b.StopTimer()
			ts.Close()
			srv.Close()
			if st != nil {
				st.Close()
			}
			b.StartTimer()
		}
	}
	b.Run("conc=64/base", func(b *testing.B) { run(b, false) })
	b.Run("conc=64/wal", func(b *testing.B) { run(b, true) })
}

// BenchmarkStoreRecovery measures warm-restart time: reopening a store
// directory holding 512 terminal job records. The wal side replays the
// full append-only log (a crash left it uncompacted); the base side
// loads the checkpointed snapshot a clean shutdown leaves behind. The
// base/wal ratio gated in BENCH_store.json is the replay penalty a
// crash pays over a clean restart.
func BenchmarkStoreRecovery(b *testing.B) {
	const jobs = 512
	seed := func(b *testing.B, checkpoint bool) string {
		b.Helper()
		dir := b.TempDir()
		st, _, err := store.Open(store.Options{Dir: dir, Sync: store.SyncOff})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < jobs; i++ {
			rec := store.Record{
				ID:      fmt.Sprintf("job_%04d", i),
				Key:     fmt.Sprintf("key_%04d", i),
				Status:  "done",
				SpecPLA: benchServerPLA(i % 8),
			}
			if err := st.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
		if checkpoint {
			if err := st.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}

	run := func(b *testing.B, checkpoint bool) {
		dir := seed(b, checkpoint)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, recovered, err := store.Open(store.Options{Dir: dir, Sync: store.SyncOff})
			if err != nil {
				b.Fatal(err)
			}
			if len(recovered) != jobs {
				b.Fatalf("recovered %d records, want %d", len(recovered), jobs)
			}
			b.StopTimer()
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.Run("jobs=512/base", func(b *testing.B) { run(b, true) })
	b.Run("jobs=512/wal", func(b *testing.B) { run(b, false) })
}

// benchClusterPLA builds a distinct 8-input spec per seed — heavy
// enough that synthesizing one clearly dominates routing + cache-hit
// serving, which is the contrast the cluster warm/cold gate rides on.
func benchClusterPLA(seed int) string {
	var sb strings.Builder
	sb.WriteString(".i 8\n.o 1\n.type fd\n")
	for m := 0; m < 256; m++ {
		switch (m*37 + seed*101 + m*m*13) % 7 {
		case 0, 4:
			fmt.Fprintf(&sb, "%08b 1\n", m)
		case 1:
			fmt.Fprintf(&sb, "%08b -\n", m)
		}
	}
	sb.WriteString(".e\n")
	return sb.String()
}

// bootBenchCluster starts three cluster-aware shards plus a router over
// them, listener-first so the fleet membership is known before any node
// serves. Returns the router's base URL and a teardown.
func bootBenchCluster(b *testing.B, workers int) (routerURL string, shutdown func()) {
	b.Helper()
	const n = 3
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	var closers []func()
	for i, ln := range lns {
		srv := server.New(server.Config{
			Workers:    workers,
			QueueDepth: 256,
			CacheSize:  64,
			Metrics:    obs.NewRegistry(),
			Peers:      peers,
			SelfAddr:   peers[i],
		})
		ts := &httptest.Server{Listener: ln, Config: &http.Server{Handler: srv.Handler()}}
		ts.Start()
		closers = append(closers, func() { ts.Close(); srv.Close() })
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{Peers: peers, Metrics: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	closers = append(closers, rts.Close)
	return rts.URL, func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
}

// BenchmarkClusterThroughput measures the sharded tier end to end: 64
// concurrent mixed requests over 8 distinct specifications through the
// router (content-addressed placement onto 3 shards) and the shards'
// full serving stack.
//
//   - cold: every iteration boots an empty fleet, so each distinct spec
//     synthesizes once on its ring owner while duplicates coalesce
//     there or hit its cache.
//   - warm: the fleet's caches are primed before the timer, so the
//     measured path is routing + forwarding + shard cache hits — the
//     cluster serving overhead in isolation.
//
// CI gates the warm/cold speedup ratio via cmd/benchjson -pair
// warm,cold (BENCH_cluster.json): a machine-independent check that the
// routed hot path stays cheap relative to actual synthesis.
func BenchmarkClusterThroughput(b *testing.B) {
	const total, distinct = 64, 8
	specs := make([]string, distinct)
	for i := range specs {
		specs[i] = benchClusterPLA(i)
	}

	b.Run("shards=3/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			url, shutdown := bootBenchCluster(b, 4)
			b.StartTimer()
			fireServerRequests(b, url, specs, total)
			b.StopTimer()
			shutdown()
			b.StartTimer()
		}
	})

	b.Run("shards=3/warm", func(b *testing.B) {
		url, shutdown := bootBenchCluster(b, 4)
		defer shutdown()
		fireServerRequests(b, url, specs, distinct) // prime every owner's cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fireServerRequests(b, url, specs, total)
		}
	})
}

// BenchmarkFleetThroughput measures the serving stack through the fleet
// harness itself: 64 unpaced closed-loop ops from internal/fleet's
// generator against one in-process shard, reusing the same pinned spec
// pool both ways.
//
//   - cold: every iteration boots an empty shard and sweeps the pool
//     round-robin (grid mix) — cache-adversarial, so the measured path
//     is real synthesis behind the harness.
//   - warm: one primed shard, hot-skewed mix — the measured path is the
//     harness plus cache-hit serving, i.e. the load-generation overhead
//     in isolation.
//
// CI gates the warm/cold speedup ratio via cmd/benchjson -pair
// warm,cold (BENCH_fleet.json). Verdicts are ignored here: the SLO
// engine is off (zero-valued SLO) and only throughput is measured.
func BenchmarkFleetThroughput(b *testing.B) {
	pool, err := fleet.BuildPool(fleet.PoolParams{Inputs: 6, Outputs: 1, Size: 8, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	newDriver := func(base string) *client.Client {
		cl, err := client.New(client.Config{BaseURL: base, Metrics: obs.NewRegistry()})
		if err != nil {
			b.Fatal(err)
		}
		return cl
	}
	runFleet := func(base string, mix fleet.Mix) {
		rep, err := fleet.Run(context.Background(), fleet.Config{
			Driver:   newDriver(base),
			Pool:     pool,
			TotalOps: 64,
			Mix:      mix,
			Seed:     7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Lost != 0 {
			b.Fatalf("lost %d accepted jobs", rep.Lost)
		}
	}

	b.Run("node=1/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv := server.New(server.Config{Workers: 4, Metrics: obs.NewRegistry()})
			ts := httptest.NewServer(srv.Handler())
			b.StartTimer()
			runFleet(ts.URL, fleet.Mix{fleet.OpGrid: 1})
			b.StopTimer()
			ts.Close()
			srv.Close()
			b.StartTimer()
		}
	})

	b.Run("node=1/warm", func(b *testing.B) {
		srv := server.New(server.Config{Workers: 4, Metrics: obs.NewRegistry()})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		runFleet(ts.URL, fleet.Mix{fleet.OpGrid: 1}) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runFleet(ts.URL, fleet.Mix{fleet.OpHot: 1})
		}
	})
}
