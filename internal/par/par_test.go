package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"relsyn/internal/obs"
)

// withProcs raises GOMAXPROCS for the duration of a test so the pool's
// concurrent path is exercised even on single-core machines.
func withProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func TestWorkersBounds(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		limit, n, want int
	}{
		{0, 100, procs},          // limit 0 = GOMAXPROCS
		{-3, 100, procs},         // negative = GOMAXPROCS
		{1, 100, 1},              // explicit sequential
		{1000, 2, min(2, procs)}, // never more workers than tasks/cores
		{1000, 100, procs},       // never more workers than cores
		{0, 0, 1},                // degenerate: at least one
		{2, 100, min(2, procs)},
	}
	for _, c := range cases {
		if got := Workers(c.limit, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.limit, c.n, got, c.want)
		}
	}
}

func TestDoRunsEveryTaskOnce(t *testing.T) {
	withProcs(t, 8)
	for _, limit := range []int{1, 2, 8, 0} {
		const n = 137
		counts := make([]atomic.Int32, n)
		err := Do(context.Background(), limit, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("limit %d: task %d ran %d times", limit, i, got)
			}
		}
	}
}

func TestDoReturnsLowestIndexedError(t *testing.T) {
	withProcs(t, 8)
	// Tasks 10, 40, and 90 fail; every parallelism level must report 10,
	// exactly as a sequential loop would.
	fail := map[int]bool{10: true, 40: true, 90: true}
	for _, limit := range []int{1, 2, 8, 0} {
		err := Do(context.Background(), limit, 128, func(i int) error {
			if fail[i] {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 10 failed" {
			t.Fatalf("limit %d: got %v, want task 10's error", limit, err)
		}
	}
}

func TestDoPanicToError(t *testing.T) {
	withProcs(t, 8)
	for _, limit := range []int{1, 4} {
		err := Do(context.Background(), limit, 16, func(i int) error {
			if i == 3 {
				panic("kernel invariant violated")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("limit %d: got %v (%T), want *PanicError", limit, err, err)
		}
		if pe.Value != "kernel invariant violated" {
			t.Fatalf("limit %d: panic value %v", limit, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("limit %d: no stack captured", limit)
		}
	}
}

func TestDoCancellation(t *testing.T) {
	withProcs(t, 8)
	for _, limit := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := Do(ctx, limit, 1000, func(i int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("limit %d: got %v, want context.Canceled", limit, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Fatalf("limit %d: all %d tasks ran despite cancellation", limit, n)
		}
	}
}

func TestDoPreCancelledContext(t *testing.T) {
	withProcs(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := Do(ctx, 4, 10, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Workers may each start at most zero tasks after observing ctx.
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d tasks ran under a pre-cancelled context", n)
	}
}

func TestDoZeroTasks(t *testing.T) {
	if err := Do(context.Background(), 4, 0, func(int) error {
		t.Fatal("task ran")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDoRangeCoversEveryIndex(t *testing.T) {
	withProcs(t, 8)
	for _, limit := range []int{1, 3, 0} {
		for _, n := range []int{1, 7, 64, 1000} {
			covered := make([]atomic.Int32, n)
			err := DoRange(context.Background(), limit, n, 16, func(lo, hi int) error {
				if lo < 0 || hi > n || lo >= hi {
					return fmt.Errorf("bad chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("limit %d n %d: %v", limit, n, err)
			}
			for i := range covered {
				if got := covered[i].Load(); got != 1 {
					t.Fatalf("limit %d n %d: index %d covered %d times", limit, n, i, got)
				}
			}
		}
	}
}

func TestMetricsRecorded(t *testing.T) {
	withProcs(t, 8)
	before := obs.Default.Counter(MetricTasks).Value()
	if err := Do(context.Background(), 4, 25, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.Counter(MetricTasks).Value() - before; got != 25 {
		t.Fatalf("relsyn_par_tasks_total advanced by %d, want 25", got)
	}
}
