// Package par is the repository's shared bounded work pool: a small,
// dependency-light fan-out primitive used by every per-output /
// per-minterm hot loop (internal/{reliability,complexity,estimate,
// exact,core,synth,experiments}).
//
// Contract (relied on by the metamorphic "parallel ≡ sequential" law and
// documented in DESIGN §9):
//
//   - Bounded. At most Workers(limit, n) = min(limit, GOMAXPROCS, n)
//     goroutines run tasks; limit <= 0 means GOMAXPROCS. Workers(1, n)
//     runs every task inline on the calling goroutine — the sequential
//     path and the parallel path are the same code.
//
//   - Deterministic. Tasks communicate only through caller-owned,
//     index-addressed slots, so results are positionally identical at
//     every parallelism level. The returned error is the error of the
//     LOWEST-indexed failing task: indices are dispatched in ascending
//     order and every started task runs to completion, so if task i
//     fails, every task j < i has also run and recorded its outcome —
//     the same error a sequential loop would have returned.
//
//   - Context-aware. Dispatch stops as soon as ctx is done; Do returns
//     ctx.Err() when cancellation (and no lower-indexed task error)
//     stopped the run. Budget cancellation from internal/pipeline
//     propagates into the pool through this path.
//
//   - Panic-to-error. A panicking task is recovered and reported as a
//     *PanicError carrying the panic value and stack, never crashing
//     sibling goroutines. (internal/pipeline re-classifies these at the
//     stage boundary exactly like direct panics.)
//
// Observability: every task counts toward relsyn_par_tasks_total, and
// the delay between submission (the Do call) and the task starting is
// observed in relsyn_par_queue_wait_seconds.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"relsyn/internal/obs"
)

// Metric names exported by the pool.
const (
	MetricTasks     = "relsyn_par_tasks_total"
	MetricQueueWait = "relsyn_par_queue_wait_seconds"
)

// init seeds the pool's series on the default registry so they are
// present (at zero) before the first parallel kernel runs.
func init() {
	obs.Default.SetHelp(MetricTasks, "Tasks executed by the shared bounded work pool.")
	obs.Default.SetHelp(MetricQueueWait, "Delay between task submission and task start in the work pool.")
	obs.Default.Counter(MetricTasks)
	obs.Default.Histogram(MetricQueueWait)
}

// PanicError is a recovered task panic, converted to an error so that a
// serving process can reject the request instead of crashing.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: task panicked: %v", e.Value)
}

// Workers returns the number of goroutines Do uses for n tasks under the
// given limit: min(limit, GOMAXPROCS, n), at least 1. limit <= 0 selects
// GOMAXPROCS (the "use the whole machine" default).
func Workers(limit, n int) int {
	w := limit
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if procs := runtime.GOMAXPROCS(0); w > procs {
		w = procs
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Do runs fn(i) for every i in [0, n) on up to Workers(limit, n)
// goroutines and returns the lowest-indexed task error, or ctx.Err() if
// cancellation stopped dispatch first, or nil. See the package comment
// for the determinism and panic contract. fn must be safe for concurrent
// invocation with distinct indices whenever Workers(limit, n) > 1.
func Do(ctx context.Context, limit, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Workers(limit, n)
	submitted := time.Now()
	tasks := obs.Default.Counter(MetricTasks)
	wait := obs.Default.Histogram(MetricQueueWait)

	run := func(i int) (err error) {
		wait.Observe(time.Since(submitted).Seconds())
		tasks.Inc()
		defer func() {
			if p := recover(); p != nil {
				stack := make([]byte, 16<<10)
				stack = stack[:runtime.Stack(stack, false)]
				err = &PanicError{Value: p, Stack: stack}
			}
		}()
		return fn(i)
	}

	if workers == 1 {
		// Inline sequential path: same semantics (ctx polls, panic
		// recovery, first-error-by-index), zero goroutines.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64 // dispatch cursor
		stop atomic.Bool  // set on first failure or cancellation
		wg   sync.WaitGroup
	)
	errs := make([]error, n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					stop.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(i); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if stop.Load() {
		// No task error recorded, so cancellation stopped dispatch.
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// DoRange splits [0, n) into contiguous chunks of at least minChunk
// indices and runs fn(lo, hi) for each chunk (half-open) through Do.
// Chunk boundaries are a pure function of (n, minChunk, limit via
// Workers), so a given call sees the same chunking at every parallelism
// level only if the caller fixes minChunk; determinism of the RESULT is
// instead guaranteed by fn writing exclusively to index-addressed slots
// within its own [lo, hi) range.
func DoRange(ctx context.Context, limit, n, minChunk int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if minChunk < 1 {
		minChunk = 1
	}
	workers := Workers(limit, n)
	chunk := (n + workers - 1) / workers
	if chunk < minChunk {
		chunk = minChunk
	}
	chunks := (n + chunk - 1) / chunk
	return Do(ctx, limit, chunks, func(c int) error {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}
