package celllib

import "testing"

func TestGeneric70Functions(t *testing.T) {
	lib := Generic70()
	// Spot-check truth tables: row bit i is pin i.
	cases := []struct {
		name string
		rows map[uint]bool // row -> expected output
	}{
		{"INV", map[uint]bool{0: true, 1: false}},
		{"NAND2", map[uint]bool{0: true, 1: true, 2: true, 3: false}},
		{"NOR2", map[uint]bool{0: true, 1: false, 2: false, 3: false}},
		{"XOR2", map[uint]bool{0: false, 1: true, 2: true, 3: false}},
		{"AOI21", map[uint]bool{0: true, 3: false, 4: false, 7: false, 1: true}},
		{"MUX2", map[uint]bool{0b000: false, 0b001: true, 0b100: false, 0b101: false, 0b110: true}},
		{"MAJ3", map[uint]bool{0b011: true, 0b101: true, 0b001: false, 0b111: true}},
	}
	for _, tc := range cases {
		c, err := lib.ByName(tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for row, want := range tc.rows {
			if got := c.Table>>row&1 == 1; got != want {
				t.Errorf("%s row %b: got %v want %v", tc.name, row, got, want)
			}
		}
	}
}

func TestLibraryWellFormed(t *testing.T) {
	lib := Generic70()
	seen := map[string]bool{}
	for _, c := range lib.Cells {
		if seen[c.Name] {
			t.Errorf("duplicate cell %s", c.Name)
		}
		seen[c.Name] = true
		if c.NumIn < 1 || c.NumIn > 4 {
			t.Errorf("%s: bad arity %d", c.Name, c.NumIn)
		}
		if c.Area <= 0 || c.Delay <= 0 || c.InputCap <= 0 || c.Leakage <= 0 {
			t.Errorf("%s: non-positive physical parameters", c.Name)
		}
		// Table must fit the arity.
		if c.NumIn < 4 && c.Table >= 1<<(1<<uint(c.NumIn)) {
			t.Errorf("%s: table has bits beyond 2^%d rows", c.Name, c.NumIn)
		}
		// Cells must not be constant functions.
		mask := uint16(1)<<(1<<uint(c.NumIn)) - 1
		if c.NumIn == 4 {
			mask = 0xffff
		}
		if c.Table&mask == 0 || c.Table&mask == mask {
			t.Errorf("%s: constant cell", c.Name)
		}
	}
	if lib.Inv.Name != "INV" {
		t.Error("designated inverter missing")
	}
	if _, err := lib.ByName("NOPE"); err == nil {
		t.Error("unknown cell lookup should fail")
	}
}

// Ordering sanity: an AND2 (two stages) must cost more area and delay
// than a NAND2; XOR gates are the most expensive 2-input cells.
func TestLibraryOrdering(t *testing.T) {
	lib := Generic70()
	get := func(n string) Cell {
		c, err := lib.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if !(get("AND2").Area > get("NAND2").Area) {
		t.Error("AND2 should out-cost NAND2 in area")
	}
	if !(get("AND2").Delay > get("NAND2").Delay) {
		t.Error("AND2 should be slower than NAND2")
	}
	if !(get("XOR2").Area > get("OR2").Area) {
		t.Error("XOR2 should be the most expensive 2-input cell")
	}
	if !(get("INV").Area < get("NAND2").Area) {
		t.Error("INV should be the cheapest cell")
	}
}
