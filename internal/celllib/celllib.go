// Package celllib models a small generic standard-cell library in the
// 70 nm class of the paper's experiments. Cell data (function, area,
// delay, input capacitance, leakage) is representative rather than tied
// to a proprietary kit: the experiments compare the same function under
// different DC assignments through a fixed library, so only relative
// metrics matter.
package celllib

import "fmt"

// Cell is one library gate. Table holds the truth table over NumIn
// inputs: bit r of Table is the output for the input row r, where input
// pin i contributes bit i of r.
type Cell struct {
	Name     string
	NumIn    int
	Table    uint16
	Area     float64 // area units (≈ equivalent NAND2 = 1.33)
	Delay    float64 // intrinsic delay, ps
	InputCap float64 // per-pin input capacitance, fF
	Leakage  float64 // leakage power, nW
}

func (c Cell) String() string { return c.Name }

// Library is an immutable set of cells plus the designated inverter used
// for phase repair during mapping.
type Library struct {
	Cells []Cell
	Inv   Cell
}

// tableOf builds a truth table from a function over the row index.
func tableOf(numIn int, fn func(r uint) bool) uint16 {
	var t uint16
	for r := uint(0); r < 1<<uint(numIn); r++ {
		if fn(r) {
			t |= 1 << r
		}
	}
	return t
}

func bit(r uint, i int) bool { return r>>uint(i)&1 == 1 }

// Generic70 returns the default library. Delay and area scale with the
// logical effort of each topology; XORs are the customary outliers.
func Generic70() *Library {
	inv := Cell{Name: "INV", NumIn: 1, Table: tableOf(1, func(r uint) bool { return !bit(r, 0) }),
		Area: 0.67, Delay: 18, InputCap: 1.0, Leakage: 0.4}
	cells := []Cell{
		inv,
		{Name: "NAND2", NumIn: 2, Table: tableOf(2, func(r uint) bool { return !(bit(r, 0) && bit(r, 1)) }),
			Area: 1.33, Delay: 28, InputCap: 1.1, Leakage: 0.8},
		{Name: "NOR2", NumIn: 2, Table: tableOf(2, func(r uint) bool { return !(bit(r, 0) || bit(r, 1)) }),
			Area: 1.33, Delay: 34, InputCap: 1.2, Leakage: 0.9},
		{Name: "AND2", NumIn: 2, Table: tableOf(2, func(r uint) bool { return bit(r, 0) && bit(r, 1) }),
			Area: 1.67, Delay: 42, InputCap: 1.0, Leakage: 1.0},
		{Name: "OR2", NumIn: 2, Table: tableOf(2, func(r uint) bool { return bit(r, 0) || bit(r, 1) }),
			Area: 1.67, Delay: 46, InputCap: 1.1, Leakage: 1.1},
		{Name: "XOR2", NumIn: 2, Table: tableOf(2, func(r uint) bool { return bit(r, 0) != bit(r, 1) }),
			Area: 3.0, Delay: 62, InputCap: 1.8, Leakage: 1.9},
		{Name: "XNOR2", NumIn: 2, Table: tableOf(2, func(r uint) bool { return bit(r, 0) == bit(r, 1) }),
			Area: 3.0, Delay: 62, InputCap: 1.8, Leakage: 1.9},
		{Name: "NAND3", NumIn: 3, Table: tableOf(3, func(r uint) bool { return !(bit(r, 0) && bit(r, 1) && bit(r, 2)) }),
			Area: 2.0, Delay: 38, InputCap: 1.3, Leakage: 1.2},
		{Name: "NOR3", NumIn: 3, Table: tableOf(3, func(r uint) bool { return !(bit(r, 0) || bit(r, 1) || bit(r, 2)) }),
			Area: 2.0, Delay: 48, InputCap: 1.5, Leakage: 1.3},
		{Name: "AND3", NumIn: 3, Table: tableOf(3, func(r uint) bool { return bit(r, 0) && bit(r, 1) && bit(r, 2) }),
			Area: 2.33, Delay: 52, InputCap: 1.1, Leakage: 1.4},
		{Name: "OR3", NumIn: 3, Table: tableOf(3, func(r uint) bool { return bit(r, 0) || bit(r, 1) || bit(r, 2) }),
			Area: 2.33, Delay: 58, InputCap: 1.2, Leakage: 1.5},
		{Name: "NAND4", NumIn: 4, Table: tableOf(4, func(r uint) bool { return !(bit(r, 0) && bit(r, 1) && bit(r, 2) && bit(r, 3)) }),
			Area: 2.67, Delay: 46, InputCap: 1.4, Leakage: 1.6},
		{Name: "NOR4", NumIn: 4, Table: tableOf(4, func(r uint) bool { return !(bit(r, 0) || bit(r, 1) || bit(r, 2) || bit(r, 3)) }),
			Area: 2.67, Delay: 60, InputCap: 1.7, Leakage: 1.7},
		{Name: "AOI21", NumIn: 3, Table: tableOf(3, func(r uint) bool { return !(bit(r, 0) && bit(r, 1) || bit(r, 2)) }),
			Area: 2.0, Delay: 40, InputCap: 1.3, Leakage: 1.1},
		{Name: "OAI21", NumIn: 3, Table: tableOf(3, func(r uint) bool { return !((bit(r, 0) || bit(r, 1)) && bit(r, 2)) }),
			Area: 2.0, Delay: 40, InputCap: 1.3, Leakage: 1.1},
		{Name: "AOI22", NumIn: 4, Table: tableOf(4, func(r uint) bool { return !(bit(r, 0) && bit(r, 1) || bit(r, 2) && bit(r, 3)) }),
			Area: 2.67, Delay: 48, InputCap: 1.4, Leakage: 1.5},
		{Name: "OAI22", NumIn: 4, Table: tableOf(4, func(r uint) bool { return !((bit(r, 0) || bit(r, 1)) && (bit(r, 2) || bit(r, 3))) }),
			Area: 2.67, Delay: 48, InputCap: 1.4, Leakage: 1.5},
		{Name: "MUX2", NumIn: 3, Table: tableOf(3, func(r uint) bool {
			if bit(r, 2) {
				return bit(r, 1)
			}
			return bit(r, 0)
		}),
			Area: 2.67, Delay: 50, InputCap: 1.4, Leakage: 1.6},
		{Name: "MAJ3", NumIn: 3, Table: tableOf(3, func(r uint) bool {
			n := 0
			for i := 0; i < 3; i++ {
				if bit(r, i) {
					n++
				}
			}
			return n >= 2
		}),
			Area: 3.0, Delay: 56, InputCap: 1.6, Leakage: 1.8},
	}
	return &Library{Cells: cells, Inv: inv}
}

// ByName returns the named cell, or an error if absent.
func (l *Library) ByName(name string) (Cell, error) {
	for _, c := range l.Cells {
		if c.Name == name {
			return c, nil
		}
	}
	return Cell{}, fmt.Errorf("celllib: no cell %q", name)
}
