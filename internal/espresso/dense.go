package espresso

import (
	"sort"

	"relsyn/internal/bitset"
	"relsyn/internal/cube"
)

// DenseLimit is the largest input count routed to the dense (bitset)
// minimization engine. Above it, Minimize falls back to the pure
// cube-algebra path. 2^16 minterms × an int counter per minterm keeps the
// working set comfortably in cache.
const DenseLimit = 16

// denseCtx carries the precomputed per-variable truth-table patterns and
// the fixed on/dc/off sets of one minimization run.
type denseCtx struct {
	n    int
	size int
	pats []*bitset.Set // pats[v] = minterms with bit v set
	on   *bitset.Set
	dc   *bitset.Set
	off  *bitset.Set
	poll func() error // cooperative cancellation hook (nil = never)
}

func newDenseCtx(n int, on, dc *cube.Cover) *denseCtx {
	ctx := &denseCtx{n: n, size: 1 << uint(n)}
	ctx.pats = make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		ctx.pats[v] = bitset.VarPattern(ctx.size, v)
	}
	ctx.on = ctx.coverBits(on)
	ctx.dc = ctx.coverBits(dc)
	care := ctx.on.Union(ctx.dc)
	ctx.off = care.Complement()
	return ctx
}

// cubeBits materializes a cube's minterm set with word-level AND of the
// variable patterns: O(n·2^n/64).
func (ctx *denseCtx) cubeBits(c cube.Cube) *bitset.Set {
	s := bitset.New(ctx.size)
	s.FillAll()
	for v := 0; v < ctx.n; v++ {
		switch c.Val(v) {
		case cube.One:
			s.InPlaceIntersect(ctx.pats[v])
		case cube.Zero:
			s.InPlaceDifference(ctx.pats[v])
		}
	}
	return s
}

func (ctx *denseCtx) coverBits(f *cube.Cover) *bitset.Set {
	s := bitset.New(ctx.size)
	if f == nil {
		return s
	}
	for _, c := range f.Cubes {
		s.InPlaceUnion(ctx.cubeBits(c))
	}
	return s
}

// expand raises each cube to a prime implicant of on∪dc, biggest cubes
// first, dropping cubes already covered by accumulated primes. The
// variant selects a different (still deterministic) raise order, used by
// the last-gasp pass to escape the default order's local optimum.
func (ctx *denseCtx) expand(f *cube.Cover, variant int) *cube.Cover {
	work := f.Clone()
	work.Sort()
	if variant == 2 {
		// Smallest cubes first: they are the most constrained and claim
		// their primes before the big cubes lock in the covering.
		for i, j := 0, len(work.Cubes)-1; i < j; i, j = i+1, j-1 {
			work.Cubes[i], work.Cubes[j] = work.Cubes[j], work.Cubes[i]
		}
	}
	out := cube.NewCover(ctx.n)
	covered := bitset.New(ctx.size)
	for _, c := range work.Cubes {
		check(ctx.poll)
		cb := ctx.cubeBits(c)
		if cb.SubsetOf(covered) {
			continue
		}
		p := ctx.expandCube(c, variant)
		out.Add(p)
		covered.InPlaceUnion(ctx.cubeBits(p))
	}
	out.RemoveContained()
	return out
}

// expandCube greedily raises literals, preferring variables whose raise
// exposes the fewest off-set minterms (zero exposures are valid raises;
// the count orders the attempts deterministically). Variant 1 breaks
// ties toward the highest variable index instead of the lowest.
func (ctx *denseCtx) expandCube(c cube.Cube, variant int) cube.Cube {
	type cand struct{ v, exposed int }
	var cands []cand
	for v := 0; v < ctx.n; v++ {
		if c.Val(v) == cube.Full {
			continue
		}
		raised := ctx.cubeBits(c.SetVal(v, cube.Full))
		cands = append(cands, cand{v, raised.IntersectionCount(ctx.off)})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].exposed != cands[j].exposed {
			return cands[i].exposed < cands[j].exposed
		}
		if variant == 1 {
			return cands[i].v > cands[j].v
		}
		return cands[i].v < cands[j].v
	})
	for _, cd := range cands {
		raised := c.SetVal(cd.v, cube.Full)
		if !ctx.cubeBits(raised).IntersectsWith(ctx.off) {
			c = raised
		}
	}
	return c
}

// coverageCounts returns, per minterm, how many cubes of f cover it.
func (ctx *denseCtx) coverageCounts(f *cube.Cover) []int32 {
	counts := make([]int32, ctx.size)
	for _, c := range f.Cubes {
		ctx.cubeBits(c).ForEach(func(m int) { counts[m]++ })
	}
	return counts
}

// irredundant removes cubes whose on-set minterms are all covered at
// least twice, smallest cubes first, maintaining exact counts.
func (ctx *denseCtx) irredundant(f *cube.Cover) *cube.Cover {
	work := f.Clone()
	work.Sort() // big first; iterate from the back (small first)
	counts := ctx.coverageCounts(work)
	for i := work.Len() - 1; i >= 0; i-- {
		check(ctx.poll)
		cb := ctx.cubeBits(work.Cubes[i])
		needed := false
		cb.ForEach(func(m int) {
			if counts[m] == 1 && ctx.on.Test(m) {
				needed = true
			}
		})
		if needed {
			continue
		}
		cb.ForEach(func(m int) { counts[m]-- })
		work.Cubes = append(work.Cubes[:i], work.Cubes[i+1:]...)
	}
	return work
}

// reduce shrinks each cube to the bounding cube of the on-set minterms
// only it covers, sequentially so later cubes see earlier reductions.
func (ctx *denseCtx) reduce(f *cube.Cover) *cube.Cover {
	work := f.Clone()
	work.Sort()
	counts := ctx.coverageCounts(work)
	for i, c := range work.Cubes {
		check(ctx.poll)
		cb := ctx.cubeBits(c)
		unique := bitset.New(ctx.size)
		cb.ForEach(func(m int) {
			if counts[m] == 1 && ctx.on.Test(m) {
				unique.Set(m)
			}
		})
		if unique.None() {
			continue // fully redundant; leave for irredundant
		}
		reduced := boundingCube(ctx.n, unique)
		rb := ctx.cubeBits(reduced)
		// Give up coverage of the abandoned minterms.
		aband := cb.Difference(rb)
		aband.ForEach(func(m int) { counts[m]-- })
		work.Cubes[i] = reduced
	}
	return work
}

// boundingCube returns the smallest cube containing every minterm of s.
// s must be non-empty.
func boundingCube(n int, s *bitset.Set) cube.Cube {
	c := cube.New(n)
	first := s.NextSet(0)
	for v := 0; v < n; v++ {
		bit := first>>uint(v)&1 == 1
		uniform := true
		s.ForEach(func(m int) {
			if (m>>uint(v)&1 == 1) != bit {
				uniform = false
			}
		})
		if uniform {
			if bit {
				c = c.SetVal(v, cube.One)
			} else {
				c = c.SetVal(v, cube.Zero)
			}
		}
	}
	return c
}

// minimizeDense is the bitset-backed Minimize engine for n ≤ DenseLimit.
// poll (nil = never) is checked at cube granularity inside every pass.
func minimizeDense(on, dc *cube.Cover, poll func() error) *cube.Cover {
	n := on.NumVars()
	ctx := newDenseCtx(n, on, dc)
	ctx.poll = poll
	if ctx.on.None() {
		return cube.NewCover(n)
	}
	if ctx.off.None() {
		return cube.CoverOf(n, cube.New(n)) // tautology: single universe cube
	}
	f := ctx.expand(on, 0)
	f = ctx.irredundant(f)
	best := f
	bestCost := CostOf(f)
	for iter := 0; iter < 8; iter++ {
		g := ctx.reduce(best)
		g = ctx.expand(g, 0)
		g = ctx.irredundant(g)
		cost := CostOf(g)
		if !cost.Less(bestCost) {
			break
		}
		best, bestCost = g, cost
	}
	// Last gasp: re-run the improvement loop from alternative expansion
	// orders; keep whichever cover is cheapest.
	for variant := 1; variant <= 2; variant++ {
		g := ctx.reduce(best)
		g = ctx.expand(g, variant)
		g = ctx.irredundant(g)
		for iter := 0; iter < 4; iter++ {
			h := ctx.reduce(g)
			h = ctx.expand(h, variant)
			h = ctx.irredundant(h)
			if !CostOf(h).Less(CostOf(g)) {
				break
			}
			g = h
		}
		if cost := CostOf(g); cost.Less(bestCost) {
			best, bestCost = g, cost
		}
	}
	best.Sort()
	return best
}
