package espresso

import (
	"math/rand"
	"testing"

	"relsyn/internal/cube"
	"relsyn/internal/tt"
)

func mustParse(t *testing.T, s string) cube.Cube {
	t.Helper()
	c, err := cube.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func coverFrom(t *testing.T, n int, cubes ...string) *cube.Cover {
	t.Helper()
	cv := cube.NewCover(n)
	for _, s := range cubes {
		cv.Add(mustParse(t, s))
	}
	return cv
}

// bitsOf evaluates a cover exhaustively.
func bitsOf(cv *cube.Cover) []bool {
	out := make([]bool, 1<<uint(cv.NumVars()))
	for m := range out {
		out[m] = cv.ContainsMinterm(uint(m))
	}
	return out
}

func randomCover(rng *rand.Rand, n, k int) *cube.Cover {
	cv := cube.NewCover(n)
	for i := 0; i < k; i++ {
		c := cube.New(n)
		for v := 0; v < n; v++ {
			switch rng.Intn(3) {
			case 0:
				c = c.SetVal(v, cube.Zero)
			case 1:
				c = c.SetVal(v, cube.One)
			}
		}
		cv.Add(c)
	}
	return cv
}

func TestTautologyBasics(t *testing.T) {
	// x + x̄ is a tautology.
	if !Tautology(coverFrom(t, 1, "0", "1")) {
		t.Fatal("x + x̄ should be tautology")
	}
	if Tautology(coverFrom(t, 1, "0")) {
		t.Fatal("x̄ alone is not a tautology")
	}
	if !Tautology(coverFrom(t, 3, "---")) {
		t.Fatal("universe cube is a tautology")
	}
	if Tautology(cube.NewCover(3)) {
		t.Fatal("empty cover is not a tautology")
	}
	// Shannon expansion of 1 over two vars.
	if !Tautology(coverFrom(t, 2, "0-", "11", "10")) {
		t.Fatal("complete cover should be tautology")
	}
	if Tautology(coverFrom(t, 2, "0-", "11")) {
		t.Fatal("cover missing minterm 10 reported tautology")
	}
}

func TestTautologyMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		// Mix sparse and dense covers; dense ones are often tautologies.
		cv := randomCover(rng, n, 1+rng.Intn(10))
		want := true
		for _, b := range bitsOf(cv) {
			if !b {
				want = false
				break
			}
		}
		if got := Tautology(cv); got != want {
			t.Fatalf("n=%d cover:\n%s\nTautology=%v, want %v", n, cv, got, want)
		}
	}
}

func TestSharpSingleCube(t *testing.T) {
	c := mustParse(t, "01-")
	comp := sharp(c)
	bits := bitsOf(comp)
	for m := 0; m < 8; m++ {
		if bits[m] == c.ContainsMinterm(uint(m)) {
			t.Fatalf("sharp overlaps or misses minterm %d", m)
		}
	}
	// Sharp must produce disjoint cubes.
	for i := 0; i < comp.Len(); i++ {
		for j := i + 1; j < comp.Len(); j++ {
			if comp.Cubes[i].Distance(comp.Cubes[j]) == 0 {
				t.Fatal("sharp cubes not disjoint")
			}
		}
	}
}

func TestComplementMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		cv := randomCover(rng, n, 1+rng.Intn(8))
		comp := Complement(cv)
		b, cb := bitsOf(cv), bitsOf(comp)
		for m := range b {
			if b[m] == cb[m] {
				t.Fatalf("n=%d minterm %d: cover=%v comp=%v\ncover:\n%s\ncomp:\n%s",
					n, m, b[m], cb[m], cv, comp)
			}
		}
	}
}

func TestComplementEdgeCases(t *testing.T) {
	// ¬0 = 1
	comp := Complement(cube.NewCover(3))
	if comp.Len() != 1 || comp.Cubes[0].NumLiterals() != 0 {
		t.Fatal("complement of empty cover should be the universe")
	}
	// ¬1 = 0
	comp = Complement(coverFrom(t, 3, "---"))
	if comp.Len() != 0 {
		t.Fatal("complement of universe should be empty")
	}
}

func TestCoverContainsCube(t *testing.T) {
	cv := coverFrom(t, 3, "0--", "-1-")
	if !CoverContainsCube(cv, mustParse(t, "01-")) {
		t.Fatal("cover should contain 01-")
	}
	if CoverContainsCube(cv, mustParse(t, "1-0")) {
		t.Fatal("cover should not contain 1-0")
	}
	// Containment requiring cooperation of two cubes.
	cv2 := coverFrom(t, 2, "0-", "1-")
	if !CoverContainsCube(cv2, mustParse(t, "--")) {
		t.Fatal("split cover should contain the universe")
	}
}

func checkMinimized(t *testing.T, name string, impl, on, dc *cube.Cover) {
	t.Helper()
	n := on.NumVars()
	onB, dcB, implB := bitsOf(on), bitsOf(dc), bitsOf(impl)
	for m := 0; m < 1<<uint(n); m++ {
		if onB[m] && !implB[m] {
			t.Fatalf("%s: on-set minterm %d not covered", name, m)
		}
		if implB[m] && !onB[m] && !dcB[m] {
			t.Fatalf("%s: off-set minterm %d covered", name, m)
		}
	}
	// Primality: raising any literal of any cube must hit the off-set.
	for ci, c := range impl.Cubes {
		for v := 0; v < n; v++ {
			if c.Val(v) == cube.Full {
				continue
			}
			raised := c.SetVal(v, cube.Full)
			hitsOff := false
			raised.Minterms(func(m uint) {
				if !onB[m] && !dcB[m] {
					hitsOff = true
				}
			})
			if !hitsOff {
				t.Fatalf("%s: cube %d (%s) is not prime (var %d raisable)", name, ci, c, v)
			}
		}
	}
	// Irredundancy: no cube removable.
	for ci := range impl.Cubes {
		rest := cube.NewCover(n)
		for j, o := range impl.Cubes {
			if j != ci {
				rest.Add(o)
			}
		}
		restB := bitsOf(rest)
		removable := true
		for m := 0; m < 1<<uint(n); m++ {
			if onB[m] && implB[m] && !restB[m] {
				// This on-set minterm is covered only via cube ci... unless
				// another cube covers it; restB says not.
				if impl.Cubes[ci].ContainsMinterm(uint(m)) {
					removable = false
					break
				}
			}
		}
		if removable {
			t.Fatalf("%s: cube %d (%s) is redundant", name, ci, impl.Cubes[ci])
		}
	}
}

func TestMinimizeRandomBothEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		f := tt.New(n, 1)
		for m := 0; m < f.Size(); m++ {
			f.SetPhase(0, m, tt.Phase(rng.Intn(3)))
		}
		on, dc := f.OnCover(0), f.DCCover(0)
		dense := minimizeDense(on, dc, nil)
		checkMinimized(t, "dense", dense, on, dc)
		generic := minimizeGeneric(on, dc, nil)
		checkMinimized(t, "generic", generic, on, dc)
	}
}

func TestMinimizeKnownSizes(t *testing.T) {
	// Minimal SOP sizes that any competent minimizer must reach.
	cases := []struct {
		name  string
		n     int
		onset func(m int) bool
		want  int // exact minimal cube count
	}{
		{"xor3", 3, func(m int) bool { return popcount(m)%2 == 1 }, 4},
		{"xor4", 4, func(m int) bool { return popcount(m)%2 == 1 }, 8},
		{"and4", 4, func(m int) bool { return m == 15 }, 1},
		{"or4-as-minterms", 4, func(m int) bool { return m != 0 }, 4},
		{"maj3", 3, func(m int) bool { return popcount(m) >= 2 }, 3},
	}
	for _, tc := range cases {
		f := tt.New(tc.n, 1)
		for m := 0; m < f.Size(); m++ {
			if tc.onset(m) {
				f.SetPhase(0, m, tt.On)
			}
		}
		impl := Minimize(f.OnCover(0), nil)
		checkMinimized(t, tc.name, impl, f.OnCover(0), cube.NewCover(tc.n))
		if impl.Len() != tc.want {
			t.Errorf("%s: got %d cubes, want %d\n%s", tc.name, impl.Len(), tc.want, impl)
		}
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

func TestMinimizeUsesDontCares(t *testing.T) {
	// f on {11}, dc {10, 01}: minimal cover with DCs is a single literal
	// cube; without them it is the single minterm.
	f := tt.New(2, 1)
	f.SetPhase(0, 3, tt.On)
	f.SetPhase(0, 1, tt.DC)
	f.SetPhase(0, 2, tt.DC)
	withDC := Minimize(f.OnCover(0), f.DCCover(0))
	if withDC.Len() != 1 || withDC.Cubes[0].NumLiterals() != 1 {
		t.Fatalf("DC-aware minimization should give one 1-literal cube, got\n%s", withDC)
	}
	without := Minimize(f.OnCover(0), nil)
	if without.Len() != 1 || without.Cubes[0].NumLiterals() != 2 {
		t.Fatalf("DC-free minimization should keep the minterm, got\n%s", without)
	}
}

func TestMinimizeConstants(t *testing.T) {
	// Empty on-set -> empty cover.
	if got := Minimize(cube.NewCover(3), nil); got.Len() != 0 {
		t.Fatal("constant 0 should minimize to empty cover")
	}
	// Full on-set -> single universe cube.
	f := tt.New(3, 1)
	for m := 0; m < 8; m++ {
		f.SetPhase(0, m, tt.On)
	}
	got := Minimize(f.OnCover(0), nil)
	if got.Len() != 1 || got.Cubes[0].NumLiterals() != 0 {
		t.Fatalf("constant 1 should minimize to the universe cube, got\n%s", got)
	}
	// On-set empty but DC-full: prefer the empty cover.
	g := tt.New(3, 1)
	for m := 0; m < 8; m++ {
		g.SetPhase(0, m, tt.DC)
	}
	if got := Minimize(g.OnCover(0), g.DCCover(0)); got.Len() != 0 {
		t.Fatalf("all-DC with empty on-set should give empty cover, got\n%s", got)
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	f := tt.New(7, 1)
	for m := 0; m < f.Size(); m++ {
		f.SetPhase(0, m, tt.Phase(rng.Intn(3)))
	}
	a := Minimize(f.OnCover(0), f.DCCover(0))
	b := Minimize(f.OnCover(0), f.DCCover(0))
	if a.String() != b.String() {
		t.Fatal("Minimize is not deterministic")
	}
}

func TestVerify(t *testing.T) {
	on := coverFrom(t, 3, "11-")
	dc := coverFrom(t, 3, "0-0")
	good := coverFrom(t, 3, "11-")
	if !Verify(good, on, dc) {
		t.Fatal("valid cover rejected")
	}
	overreach := coverFrom(t, 3, "1--")
	if Verify(overreach, on, dc) {
		t.Fatal("cover exceeding on∪dc accepted")
	}
	undercover := cube.NewCover(3)
	if Verify(undercover, on, dc) {
		t.Fatal("cover missing on-set accepted")
	}
}

func TestExpandProducesPrimes(t *testing.T) {
	// Start from minterms of x0 on 3 vars; expand against the off-set.
	f := tt.New(3, 1)
	for m := 0; m < 8; m++ {
		if m&1 == 1 {
			f.SetPhase(0, m, tt.On)
		}
	}
	r := Complement(f.OnCover(0))
	exp := Expand(f.OnCover(0), r)
	if exp.Len() != 1 || exp.Cubes[0].String() != "1--" {
		t.Fatalf("expand of x0 minterms = %s, want single cube 1--", exp)
	}
}

func TestReduceExpandEscapesLocalMinimum(t *testing.T) {
	// Classic case where the first irredundant cover is not minimum and a
	// reduce/expand pass improves it — at minimum, the loop must never
	// worsen cost and must stay valid.
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 20; trial++ {
		n := 5
		f := tt.New(n, 1)
		for m := 0; m < f.Size(); m++ {
			if rng.Intn(2) == 0 {
				f.SetPhase(0, m, tt.On)
			}
		}
		on := f.OnCover(0)
		first := minimizeDense(on, cube.NewCover(n), nil)
		checkMinimized(t, "loop", first, on, cube.NewCover(n))
	}
}

func BenchmarkMinimizeDense10(b *testing.B) {
	rng := rand.New(rand.NewSource(66))
	f := tt.New(10, 1)
	for m := 0; m < f.Size(); m++ {
		f.SetPhase(0, m, tt.Phase(rng.Intn(3)))
	}
	on, dc := f.OnCover(0), f.DCCover(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		minimizeDense(on, dc, nil)
	}
}

func BenchmarkTautology8(b *testing.B) {
	rng := rand.New(rand.NewSource(67))
	cv := randomCover(rng, 8, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tautology(cv)
	}
}
