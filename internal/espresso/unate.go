// Package espresso is a two-level logic minimizer in the ESPRESSO
// tradition: EXPAND / IRREDUNDANT / REDUCE passes built on the unate
// recursion paradigm (tautology checking and complementation by
// cofactoring on the most binate variable).
//
// It stands in for the ESPRESSO binary the paper uses to size minimal
// SOPs (Fig. 2) and for the DC-consuming "conventional assignment" step
// of the synthesis flow: minimizing the on-set against the remaining
// DC-set is exactly how a conventional optimizer spends don't-cares.
//
// The minimizer is heuristic (like ESPRESSO itself): results are valid
// irredundant covers, not guaranteed minimum. Determinism is guaranteed —
// cube orderings are fixed — so experiments are reproducible.
package espresso

import (
	"relsyn/internal/cube"
)

// varCounts tallies, for each variable, how many cubes bind it to Zero
// and to One.
func varCounts(f *cube.Cover) (zeros, ones []int) {
	n := f.NumVars()
	zeros = make([]int, n)
	ones = make([]int, n)
	for _, c := range f.Cubes {
		for i := 0; i < n; i++ {
			switch c.Val(i) {
			case cube.Zero:
				zeros[i]++
			case cube.One:
				ones[i]++
			}
		}
	}
	return zeros, ones
}

// binateSelect returns the most binate variable of f — the variable
// maximizing min(#Zero, #One) bindings, ties broken toward more total
// bindings then lower index — or -1 if the cover is unate.
func binateSelect(f *cube.Cover) int {
	zeros, ones := varCounts(f)
	best, bestMin, bestTot := -1, 0, 0
	for i := range zeros {
		lo := zeros[i]
		if ones[i] < lo {
			lo = ones[i]
		}
		tot := zeros[i] + ones[i]
		if lo > bestMin || (lo == bestMin && lo > 0 && tot > bestTot) {
			best, bestMin, bestTot = i, lo, tot
		}
	}
	if bestMin == 0 {
		return -1
	}
	return best
}

// mostBoundVar returns the variable bound by the most cubes, or -1 if no
// variable is bound (all cubes are the universe or the cover is empty).
func mostBoundVar(f *cube.Cover) int {
	zeros, ones := varCounts(f)
	best, bestTot := -1, 0
	for i := range zeros {
		if t := zeros[i] + ones[i]; t > bestTot {
			best, bestTot = i, t
		}
	}
	return best
}

// hasFullCube reports whether some cube of f is the universe.
func hasFullCube(f *cube.Cover) bool {
	for _, c := range f.Cubes {
		if c.NumLiterals() == 0 {
			return true
		}
	}
	return false
}

// Tautology reports whether the cover evaluates to 1 on every minterm.
func Tautology(f *cube.Cover) bool {
	if len(f.Cubes) == 0 {
		return f.NumVars() == 0 // the empty product over zero vars is moot; treat as false
	}
	if hasFullCube(f) {
		return true
	}
	// Fast necessary condition: the cubes must jointly have at least 2^n
	// minterms (with multiplicity) to possibly cover the space.
	var total, space uint64
	space = 1 << uint(f.NumVars())
	for _, c := range f.Cubes {
		total += c.MintermCount()
		if total >= space {
			break
		}
	}
	if total < space {
		return false
	}
	x := binateSelect(f)
	if x < 0 {
		// Unate cover without a universe cube is never a tautology.
		return false
	}
	lit0 := cube.New(f.NumVars()).SetVal(x, cube.Zero)
	lit1 := cube.New(f.NumVars()).SetVal(x, cube.One)
	return Tautology(f.Cofactor(lit0)) && Tautology(f.Cofactor(lit1))
}

// sharp returns the complement of a single cube as a disjoint cover:
// for each bound variable in index order, one cube flipping that variable
// with all earlier bound variables held at the cube's value.
func sharp(c cube.Cube) *cube.Cover {
	n := c.NumVars()
	out := cube.NewCover(n)
	prefix := cube.New(n)
	for i := 0; i < n; i++ {
		v := c.Val(i)
		if v == cube.Full {
			continue
		}
		flipped := prefix.SetVal(i, v^cube.Full) // Zero<->One
		out.Add(flipped)
		prefix = prefix.SetVal(i, v)
	}
	return out
}

// Complement returns ¬f as a cover, via unate recursion.
func Complement(f *cube.Cover) *cube.Cover {
	n := f.NumVars()
	if len(f.Cubes) == 0 {
		return cube.CoverOf(n, cube.New(n)) // ¬0 = 1
	}
	if hasFullCube(f) {
		return cube.NewCover(n) // ¬1 = 0
	}
	if len(f.Cubes) == 1 {
		return sharp(f.Cubes[0])
	}
	x := binateSelect(f)
	if x < 0 {
		x = mostBoundVar(f)
	}
	lit0 := cube.New(n).SetVal(x, cube.Zero)
	lit1 := cube.New(n).SetVal(x, cube.One)
	c0 := Complement(f.Cofactor(lit0))
	c1 := Complement(f.Cofactor(lit1))
	out := cube.NewCover(n)
	mergeBranch(out, c0, x, cube.Zero)
	mergeBranch(out, c1, x, cube.One)
	out.RemoveContained()
	return out
}

// mergeBranch adds lit·branch to out, re-binding variable x to v in each
// branch cube (branch cubes are cofactors, so x is Full in them). Cubes
// identical across branches would merge to x-free cubes; the containment
// cleanup in Complement handles the simple cases.
func mergeBranch(out, branch *cube.Cover, x int, v cube.Literal) {
	for _, c := range branch.Cubes {
		out.Add(c.SetVal(x, v))
	}
}

// CoverContainsCube reports whether the cover contains (covers every
// minterm of) cube c, by tautology of the cofactor.
func CoverContainsCube(f *cube.Cover, c cube.Cube) bool {
	return Tautology(f.Cofactor(c))
}
