package espresso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relsyn/internal/tt"
)

// Property: Minimize always produces a cover that contains the on-set
// and avoids the off-set, for random incompletely specified functions.
func TestQuickMinimizeCorrectness(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%6
		fn := tt.New(n, 1)
		for m := 0; m < fn.Size(); m++ {
			fn.SetPhase(0, m, tt.Phase(rng.Intn(3)))
		}
		cov := Minimize(fn.OnCover(0), fn.DCCover(0))
		for m := 0; m < fn.Size(); m++ {
			has := cov.ContainsMinterm(uint(m))
			switch fn.Phase(0, m) {
			case tt.On:
				if !has {
					return false
				}
			case tt.Off:
				if has {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Complement is an involution up to Boolean equivalence, and
// Tautology(f ∪ ¬f) always holds.
func TestQuickComplementInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		cv := randomCover(rng, n, 1+rng.Intn(8))
		comp := Complement(cv)
		both := cv.Clone()
		for _, c := range comp.Cubes {
			both.Add(c)
		}
		if !Tautology(both) {
			return false
		}
		back := Complement(comp)
		for m := uint(0); m < 1<<uint(n); m++ {
			if back.ContainsMinterm(m) != cv.ContainsMinterm(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the dense and generic engines agree on validity and produce
// covers whose cost difference is small on random functions.
func TestQuickEngineAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		fn := tt.New(n, 1)
		for m := 0; m < fn.Size(); m++ {
			fn.SetPhase(0, m, tt.Phase(rng.Intn(3)))
		}
		on, dc := fn.OnCover(0), fn.DCCover(0)
		a := minimizeDense(on, dc, nil)
		b := minimizeGeneric(on, dc, nil)
		// Both must be valid; exact sizes may differ slightly between
		// heuristics, but not wildly.
		if !Verify(a, on, dc) || !Verify(b, on, dc) {
			return false
		}
		diff := a.Len() - b.Len()
		if diff < 0 {
			diff = -diff
		}
		return diff <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
