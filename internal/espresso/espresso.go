package espresso

import (
	"sort"

	"relsyn/internal/cube"
)

// Cost is the two-level cost of a cover, ordered lexicographically:
// fewer cubes first, then fewer literals.
type Cost struct {
	Cubes    int
	Literals int
}

// CostOf measures a cover.
func CostOf(f *cube.Cover) Cost {
	return Cost{Cubes: f.Len(), Literals: f.LiteralCount()}
}

// Less reports whether c is strictly cheaper than o.
func (c Cost) Less(o Cost) bool {
	if c.Cubes != o.Cubes {
		return c.Cubes < o.Cubes
	}
	return c.Literals < o.Literals
}

// intersectsCover reports whether cube c shares a minterm with any cube
// of r.
func intersectsCover(c cube.Cube, r *cube.Cover) bool {
	for _, rc := range r.Cubes {
		if c.Distance(rc) == 0 {
			return true
		}
	}
	return false
}

// expandCube greedily raises literals of c to Full while the cube stays
// disjoint from the off-set cover r, producing a prime implicant of
// f = ¬r. Raise order prefers variables blocked by the fewest off-set
// cubes (cheapest first), ties toward lower index.
func expandCube(c cube.Cube, r *cube.Cover) cube.Cube {
	n := c.NumVars()
	type cand struct{ v, blockers int }
	var cands []cand
	for v := 0; v < n; v++ {
		if c.Val(v) == cube.Full {
			continue
		}
		raised := c.SetVal(v, cube.Full)
		b := 0
		for _, rc := range r.Cubes {
			if raised.Distance(rc) == 0 {
				b++
			}
		}
		cands = append(cands, cand{v, b})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].blockers != cands[j].blockers {
			return cands[i].blockers < cands[j].blockers
		}
		return cands[i].v < cands[j].v
	})
	for _, cd := range cands {
		raised := c.SetVal(cd.v, cube.Full)
		if !intersectsCover(raised, r) {
			c = raised
		}
	}
	return c
}

// Expand replaces every cube of f with a prime implicant containing it,
// dropping cubes that become covered by an already-expanded prime.
// r must be (a cover of) the off-set of the function being minimized.
func Expand(f, r *cube.Cover) *cube.Cover {
	// Expand biggest cubes first: they are the most likely to swallow
	// others, maximizing the single-cube-containment harvest.
	work := f.Clone()
	work.Sort()
	out := cube.NewCover(f.NumVars())
	for _, c := range work.Cubes {
		covered := false
		for _, p := range out.Cubes {
			if p.Contains(c) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		out.Add(expandCube(c, r))
	}
	out.RemoveContained()
	return out
}

// Irredundant greedily removes cubes of f that are covered by the rest of
// f together with the don't-care cover d. Cubes are visited from smallest
// to largest so that small cubes (cheap to re-cover) are discarded first.
func Irredundant(f, d *cube.Cover) *cube.Cover {
	work := f.Clone()
	work.Sort()
	// Sort gives big-first ordering; walk from the back (smallest).
	for i := work.Len() - 1; i >= 0; i-- {
		c := work.Cubes[i]
		rest := cube.NewCover(work.NumVars())
		for j, o := range work.Cubes {
			if j != i {
				rest.Add(o)
			}
		}
		if d != nil {
			for _, o := range d.Cubes {
				rest.Add(o)
			}
		}
		if CoverContainsCube(rest, c) {
			work.Cubes = append(work.Cubes[:i], work.Cubes[i+1:]...)
		}
	}
	return work
}

// Reduce shrinks each cube of f to the smallest cube that still covers
// the minterms no other cube (nor the DC cover d) takes care of. Reducing
// unlocks different expansions on the next EXPAND pass. The reduction is
// sequential: later cubes see earlier reductions.
func Reduce(f, d *cube.Cover) *cube.Cover {
	work := f.Clone()
	work.Sort()
	for i, c := range work.Cubes {
		rest := cube.NewCover(work.NumVars())
		for j, o := range work.Cubes {
			if j != i {
				rest.Add(o)
			}
		}
		if d != nil {
			for _, o := range d.Cubes {
				rest.Add(o)
			}
		}
		// The part of c not covered elsewhere is c ∩ ¬(rest cofactor c);
		// shrink c to the smallest cube containing it.
		q := rest.Cofactor(c)
		comp := Complement(q)
		if comp.Len() == 0 {
			// c is fully covered elsewhere; keep as-is (IRREDUNDANT's job).
			continue
		}
		sc := comp.Cubes[0]
		for _, cc := range comp.Cubes[1:] {
			sc = sc.Supercube(cc)
		}
		if reduced, ok := c.Intersect(sc); ok {
			work.Cubes[i] = reduced
		}
	}
	return work
}

// Minimize computes an irredundant prime cover of the incompletely
// specified single-output function with on-set cover `on` and don't-care
// cover `dc` (either may be nil for empty). The returned cover covers
// every on-set minterm, lies within on ∪ dc, and consists of prime
// implicants of on ∪ dc. Functions with up to DenseLimit inputs use a
// bitset-backed engine; larger ones use pure cube algebra.
func Minimize(on, dc *cube.Cover) *cube.Cover {
	cov, _ := MinimizeInterruptible(on, dc, nil)
	return cov
}

// interrupted carries the poll error out of the deep minimization loops.
type interrupted struct{ err error }

// MinimizeInterruptible is Minimize with a cooperative cancellation hook:
// poll (nil = never interrupt) is checked at cube granularity inside the
// EXPAND / IRREDUNDANT / REDUCE passes, and a non-nil return aborts the
// run with that error. The successful result is identical to Minimize's.
func MinimizeInterruptible(on, dc *cube.Cover, poll func() error) (cov *cube.Cover, err error) {
	n := on.NumVars()
	if dc == nil {
		dc = cube.NewCover(n)
	}
	if on.Len() == 0 {
		return cube.NewCover(n), nil
	}
	if poll != nil {
		defer func() {
			if r := recover(); r != nil {
				if ie, ok := r.(interrupted); ok {
					cov, err = nil, ie.err
					return
				}
				panic(r)
			}
		}()
	}
	if n <= DenseLimit {
		return minimizeDense(on, dc, poll), nil
	}
	return minimizeGeneric(on, dc, poll), nil
}

// check aborts the minimization via panic when poll reports an error; the
// panic is recovered at the MinimizeInterruptible boundary.
func check(poll func() error) {
	if poll == nil {
		return
	}
	if err := poll(); err != nil {
		panic(interrupted{err})
	}
}

// minimizeGeneric is the cover-algebra engine behind Minimize, usable at
// any width. poll (nil = never) is checked between passes.
func minimizeGeneric(on, dc *cube.Cover, poll func() error) *cube.Cover {
	if dc == nil {
		dc = cube.NewCover(on.NumVars())
	}
	if on.Len() == 0 {
		return cube.NewCover(on.NumVars())
	}
	// Off-set: complement of on ∪ dc, computed once.
	all := on.Clone()
	for _, c := range dc.Cubes {
		all.Add(c)
	}
	r := Complement(all)

	check(poll)
	f := Expand(on, r)
	f = Irredundant(f, dc)
	best := f
	bestCost := CostOf(f)
	for iter := 0; iter < 8; iter++ {
		check(poll)
		g := Reduce(best, dc)
		g = Expand(g, r)
		g = Irredundant(g, dc)
		cost := CostOf(g)
		if !cost.Less(bestCost) {
			break
		}
		best, bestCost = g, cost
	}
	best.Sort()
	return best
}

// Verify checks that impl is a correct cover for (on, dc): impl ⊆ on∪dc
// and on ⊆ impl. It returns false with a witness cube index on failure.
// Used by tests and as a post-condition in debug paths.
func Verify(impl, on, dc *cube.Cover) bool {
	all := on.Clone()
	if dc != nil {
		for _, c := range dc.Cubes {
			all.Add(c)
		}
	}
	for _, c := range impl.Cubes {
		if !CoverContainsCube(all, c) {
			return false
		}
	}
	for _, c := range on.Cubes {
		if !CoverContainsCube(impl, c) {
			return false
		}
	}
	return true
}
