// Package census is the one-pass fused analysis engine's sharing layer:
// it computes the per-output neighbor censuses of a function
// (bitset.Census) once, caches them content-addressed, and serves them
// to every analysis that used to run its own ShiftNeighbor/popcount
// pass — ranking weights, LC^f, the exact reliability bounds, border
// counts and C^f.
//
// Cache-key contract: a census depends only on the specification's
// truth tables, so the cache is keyed on the spec content hash ALONE
// (pla.HashFunction upstream). Execution knobs — parallelism, the
// kernels ladder, assignment fractions/thresholds — must never
// fragment it; the key-purity tests in this package and in
// internal/pipeline pin that. The same property makes the census
// shareable across shards: ring placement already groups every
// option-variant of one spec on the owner of the bare spec hash, so
// the peer-fill path can serve censuses under the same ownership rule.
//
// Invalidation story: there is none, by construction. The key is a
// content hash of the truth tables, so a "stale" census is
// unreachable — a changed spec hashes elsewhere. Entries only ever
// leave through LRU pressure (entry count or byte budget; censuses are
// two orders of magnitude bigger than job results, so the cache is
// byte-accounted via lru.NewSized).
package census

import (
	"context"
	"fmt"

	"relsyn/internal/bitset"
	"relsyn/internal/lru"
	"relsyn/internal/obs"
	"relsyn/internal/par"
	"relsyn/internal/tt"
)

// FunctionCensus bundles the fused neighbor censuses of every output
// of one function. Immutable after Compute; safe for concurrent
// readers and for sharing through the cache.
type FunctionCensus struct {
	NumIn int
	Outs  []*bitset.Census
}

// Compute builds the census of every output, parallel across outputs
// under the caller's parallelism limit (0 = GOMAXPROCS). Library
// panics out of the bitset layer surface as *par.PanicError.
func Compute(ctx context.Context, f *tt.Function, parallelism int) (*FunctionCensus, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	fc := &FunctionCensus{NumIn: f.NumIn, Outs: make([]*bitset.Census, len(f.Outs))}
	err := par.Do(ctx, parallelism, len(f.Outs), func(o int) error {
		fc.Outs[o] = bitset.NewCensus(f.Outs[o].On, f.Outs[o].DC)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fc, nil
}

// Out returns output o's census.
func (fc *FunctionCensus) Out(o int) *bitset.Census { return fc.Outs[o] }

// Bytes reports the resident size charged by the byte-accounted cache.
func (fc *FunctionCensus) Bytes() int {
	total := 0
	for _, c := range fc.Outs {
		total += c.Bytes()
	}
	return total
}

// Matches reports whether the census plausibly belongs to f: same
// input count, same output count, and each output's snapshot on/dc
// sets equal f's. It is the guard consumers use before trusting a
// cache or peer-supplied census for a given function.
func (fc *FunctionCensus) Matches(f *tt.Function) bool {
	if fc.NumIn != f.NumIn || len(fc.Outs) != len(f.Outs) {
		return false
	}
	for o, c := range fc.Outs {
		if c == nil || !c.On().Equal(f.Outs[o].On) || !c.DC().Equal(f.Outs[o].DC) {
			return false
		}
	}
	return true
}

// Engine is the process-wide census service: a content-addressed,
// byte-accounted LRU in front of Compute. The zero Engine is not
// usable; construct with NewEngine.
type Engine struct {
	cache *lru.Cache[string, *FunctionCensus]

	hits, misses obs.Counter
}

// DefaultMaxBytes bounds the default engine's resident censuses:
// 64 MiB holds ~490 single-output n=16 censuses (~134 KiB each) and
// stays negligible next to the worker pool's own footprint.
const DefaultMaxBytes = 64 << 20

// DefaultMaxEntries bounds the default engine's entry count; the byte
// budget is the binding limit for any realistically sized spec.
const DefaultMaxEntries = 4096

// Default is the process-wide engine used by pipeline jobs.
// Reconfigure (SetDefault) before serving traffic.
var Default = NewEngine(DefaultMaxEntries, DefaultMaxBytes)

// SetDefault replaces the process-wide engine; nil disables fused
// caching entirely (jobs still compute per-call censuses).
func SetDefault(e *Engine) { Default = e }

// NewEngine returns an engine whose cache holds at most maxEntries
// censuses and maxBytes of resident census planes (maxBytes <= 0
// disables byte accounting; maxEntries <= 0 disables caching — every
// For recomputes).
func NewEngine(maxEntries int, maxBytes int64) *Engine {
	return &Engine{
		cache: lru.NewSized[string, *FunctionCensus](maxEntries, maxBytes,
			func(fc *FunctionCensus) int { return fc.Bytes() }),
	}
}

// Instrument exports the engine's series on reg:
// relsyn_census_{hits,misses}_total and the relsyn_census_bytes gauge.
// Registered eagerly so scrapes see zeros before the first job.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.SetHelp("relsyn_census_hits_total", "Fused-census lookups served from the content-addressed cache (local or peer-primed).")
	reg.SetHelp("relsyn_census_misses_total", "Fused-census lookups that recomputed the census.")
	reg.SetHelp("relsyn_census_bytes", "Resident bytes of cached fused censuses.")
	reg.RegisterCounter("relsyn_census_hits_total", &e.hits)
	reg.RegisterCounter("relsyn_census_misses_total", &e.misses)
	reg.GaugeFunc("relsyn_census_bytes", func() float64 { return float64(e.cache.Bytes()) })
}

// Stats snapshots the engine counters and cache occupancy.
type Stats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Bytes  int64 `json:"bytes"`
	Len    int   `json:"len"`
}

func (e *Engine) Stats() Stats {
	return Stats{
		Hits:   e.hits.Value(),
		Misses: e.misses.Value(),
		Bytes:  e.cache.Bytes(),
		Len:    e.cache.Len(),
	}
}

// For returns the census for the spec identified by hash, serving it
// from the cache when present and computing (and caching) it
// otherwise. hash must be the spec content hash alone — callers must
// not mix execution options into it (key purity). A cached census that
// fails the Matches guard (hash collision or corrupted prime) is
// discarded and recomputed.
func (e *Engine) For(ctx context.Context, hash string, f *tt.Function, parallelism int) (*FunctionCensus, error) {
	if hash == "" {
		return nil, fmt.Errorf("census: empty spec hash")
	}
	if fc, ok := e.cache.Get(hash); ok {
		if fc.Matches(f) {
			e.hits.Inc()
			return fc, nil
		}
		e.cache.Remove(hash)
	}
	e.misses.Inc()
	fc, err := Compute(ctx, f, parallelism)
	if err != nil {
		return nil, err
	}
	e.cache.Add(hash, fc)
	return fc, nil
}

// Prime inserts a census computed elsewhere (the peer-fill path) under
// its spec hash. The Matches guard still runs at every For, so a bad
// prime can waste cache space but never corrupt results.
func (e *Engine) Prime(hash string, fc *FunctionCensus) {
	if hash == "" || fc == nil {
		return
	}
	e.cache.Add(hash, fc)
}

// Peek returns the cached census for hash without computing on miss —
// the read side of the peer census endpoint.
func (e *Engine) Peek(hash string) (*FunctionCensus, bool) { return e.cache.Get(hash) }
