package census

import (
	"context"
	"math/rand"
	"testing"

	"relsyn/internal/tt"
)

// randomSpec builds a k-input, m-output incompletely specified function.
func randomSpec(k, m int, seed int64) *tt.Function {
	rng := rand.New(rand.NewSource(seed))
	f := tt.New(k, m)
	for o := 0; o < m; o++ {
		for i := 0; i < f.Size(); i++ {
			switch rng.Intn(3) {
			case 0:
				f.SetPhase(o, i, tt.On)
			case 1:
				f.SetPhase(o, i, tt.DC)
			}
		}
	}
	return f
}

func TestComputeMatchesPerMinterm(t *testing.T) {
	f := randomSpec(6, 3, 1)
	fc, err := Compute(context.Background(), f, 2)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 3; o++ {
		c := fc.Out(o)
		for m := 0; m < f.Size(); m++ {
			if got, want := c.OnAt(m), f.OnNeighbors(o, m); got != want {
				t.Fatalf("o=%d m=%d OnAt=%d want %d", o, m, got, want)
			}
			if got, want := c.OffAt(m), f.OffNeighbors(o, m); got != want {
				t.Fatalf("o=%d m=%d OffAt=%d want %d", o, m, got, want)
			}
		}
	}
	if !fc.Matches(f) {
		t.Fatal("freshly computed census fails its own Matches guard")
	}
	if fc.Bytes() <= 0 {
		t.Fatal("census reports zero resident bytes")
	}
}

// TestEngineKeyPurity is the cache-key contract test: the census cache
// is keyed on the spec hash ALONE, so lookups under any combination of
// execution knobs (parallelism here; the pipeline-level test covers the
// kernels and fraction wire knobs) share one entry — the knobs never
// fragment the cache.
func TestEngineKeyPurity(t *testing.T) {
	e := NewEngine(16, 1<<20)
	f := randomSpec(5, 2, 2)
	ctx := context.Background()
	first, err := e.For(ctx, "spec-hash-a", f, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{0, 1, 4, 8} {
		got, err := e.For(ctx, "spec-hash-a", f, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("parallelism=%d returned a different census instance: the knob fragmented the cache", parallelism)
		}
	}
	st := e.Stats()
	if st.Len != 1 {
		t.Fatalf("cache holds %d entries after knob sweep, want 1", st.Len)
	}
	if st.Misses != 1 || st.Hits != 4 {
		t.Fatalf("hits/misses = %d/%d, want 4/1", st.Hits, st.Misses)
	}
}

func TestEngineMatchesGuardRejectsWrongSpec(t *testing.T) {
	e := NewEngine(16, 1<<20)
	ctx := context.Background()
	f := randomSpec(5, 1, 3)
	g := randomSpec(5, 1, 4)
	if _, err := e.For(ctx, "h", f, 1); err != nil {
		t.Fatal(err)
	}
	// Same hash, different function (a collision or bad prime): the
	// guard must recompute, not serve f's census for g.
	got, err := e.For(ctx, "h", g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Matches(g) {
		t.Fatal("engine served a census that does not match the requested function")
	}
}

func TestEngineByteBudgetBounds(t *testing.T) {
	f := randomSpec(8, 1, 5)
	probe, err := Compute(context.Background(), f, 1)
	if err != nil {
		t.Fatal(err)
	}
	one := int64(probe.Bytes())
	e := NewEngine(1024, 3*one)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		spec := randomSpec(8, 1, int64(100+i))
		if _, err := e.For(ctx, string(rune('a'+i)), spec, 1); err != nil {
			t.Fatal(err)
		}
		if got := e.Stats().Bytes; got > 3*one {
			t.Fatalf("resident census bytes %d exceed the %d budget", got, 3*one)
		}
	}
	if got := e.Stats().Len; got > 3 {
		t.Fatalf("cache holds %d censuses, byte budget allows at most 3", got)
	}
}

func TestWireRoundTrip(t *testing.T) {
	for _, k := range []int{0, 1, 5, 7} {
		f := randomSpec(k, 2, int64(10+k))
		fc, err := Compute(context.Background(), f, 1)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := fc.MarshalBinary()
		if err != nil {
			t.Fatalf("k=%d marshal: %v", k, err)
		}
		got, err := UnmarshalBinary(buf)
		if err != nil {
			t.Fatalf("k=%d unmarshal: %v", k, err)
		}
		if !got.Matches(f) {
			t.Fatalf("k=%d round-tripped census does not match the source function", k)
		}
		for o := range fc.Outs {
			want, have := fc.Out(o), got.Out(o)
			for m := 0; m < f.Size(); m++ {
				if want.OnAt(m) != have.OnAt(m) || want.OffAt(m) != have.OffAt(m) || want.DCAt(m) != have.DCAt(m) {
					t.Fatalf("k=%d o=%d m=%d counts differ after round trip", k, o, m)
				}
			}
			wb0, wb1, wbd := want.Borders()
			gb0, gb1, gbd := have.Borders()
			if wb0 != gb0 || wb1 != gb1 || wbd != gbd {
				t.Fatalf("k=%d o=%d borders differ after round trip", k, o)
			}
		}
	}
}

func TestWireRejectsCorruption(t *testing.T) {
	f := randomSpec(4, 1, 20)
	fc, _ := Compute(context.Background(), f, 1)
	buf, err := fc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("XXXX"), buf[4:]...),
		"truncated":    buf[:len(buf)-3],
		"trailing":     append(append([]byte{}, buf...), 0),
		"insane numIn": append(append(append([]byte{}, buf[:4]...), 0xFF, 0xFF, 0, 0), buf[8:]...),
	}
	for name, data := range cases {
		if _, err := UnmarshalBinary(data); err == nil {
			t.Fatalf("%s payload accepted", name)
		}
	}
}
