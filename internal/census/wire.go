// Binary wire format for shipping censuses between shards (the peer
// census-fill path, GET /v1/census/{hash}).
//
// Layout (little-endian):
//
//	magic   "RSC1"
//	numIn   uint32
//	numOuts uint32
//	per output:
//	  on words, dc words           (word count derived from numIn)
//	  onCnt/offCnt/dcCnt planes    (plane count derived from numIn)
//
// Everything derivable is derived, not shipped: word counts, plane
// counts and the off-set (rederived as ~(on|dc) on receive) — the
// format cannot express a census whose shape disagrees with its
// header. Counter contents are shape-checked but trusted; receivers
// additionally gate primes behind FunctionCensus.Matches against the
// local spec, so a corrupt or mismatched payload is discarded at use.
package census

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"relsyn/internal/bitset"
)

var wireMagic = [4]byte{'R', 'S', 'C', '1'}

// maxWireInputs caps deserialized spec sizes: 2^24 minterms is 2 MiB
// per set, far beyond any spec the service accepts, and keeps a
// malformed header from asking for gigabyte allocations.
const maxWireInputs = 24

func censusPlanes(numIn int) int {
	k := numIn
	if k < 1 {
		k = 1
	}
	return bits.Len(uint(k))
}

// MarshalBinary serializes the census for the peer endpoint.
func (fc *FunctionCensus) MarshalBinary() ([]byte, error) {
	if fc.NumIn < 0 || fc.NumIn > maxWireInputs {
		return nil, fmt.Errorf("census: %d inputs outside wire range [0,%d]", fc.NumIn, maxWireInputs)
	}
	n := 1 << uint(fc.NumIn)
	words := (n + 63) / 64
	planes := censusPlanes(fc.NumIn)
	size := 12 + len(fc.Outs)*(words*8*(2+3*planes))
	buf := make([]byte, 0, size)
	buf = append(buf, wireMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(fc.NumIn))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fc.Outs)))
	appendSet := func(s *bitset.Set) error {
		if s.Len() != n {
			return fmt.Errorf("census: output set has %d bits, want %d", s.Len(), n)
		}
		for _, w := range s.Words() {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
		return nil
	}
	for o, c := range fc.Outs {
		if c == nil {
			return nil, fmt.Errorf("census: output %d has no census", o)
		}
		if err := appendSet(c.On()); err != nil {
			return nil, err
		}
		if err := appendSet(c.DC()); err != nil {
			return nil, err
		}
		for _, cnt := range []*bitset.Counter{c.OnCounter(), c.OffCounter(), c.DCCounter()} {
			if cnt.NumPlanes() != planes {
				return nil, fmt.Errorf("census: output %d counter has %d planes, want %d", o, cnt.NumPlanes(), planes)
			}
			for p := 0; p < planes; p++ {
				if err := appendSet(cnt.Plane(p)); err != nil {
					return nil, err
				}
			}
		}
	}
	return buf, nil
}

// UnmarshalBinary parses a wire census, validating the header and that
// the payload length matches exactly what the header implies.
func UnmarshalBinary(data []byte) (*FunctionCensus, error) {
	if len(data) < 12 || [4]byte(data[:4]) != wireMagic {
		return nil, fmt.Errorf("census: bad wire header")
	}
	numIn := int(binary.LittleEndian.Uint32(data[4:8]))
	numOuts := int(binary.LittleEndian.Uint32(data[8:12]))
	if numIn > maxWireInputs {
		return nil, fmt.Errorf("census: %d inputs outside wire range [0,%d]", numIn, maxWireInputs)
	}
	n := 1 << uint(numIn)
	words := (n + 63) / 64
	planes := censusPlanes(numIn)
	perOut := words * 8 * (2 + 3*planes)
	if numOuts < 1 || len(data)-12 != numOuts*perOut {
		return nil, fmt.Errorf("census: payload %d bytes, want %d for %d outputs", len(data)-12, numOuts*perOut, numOuts)
	}
	pos := 12
	readSet := func() *bitset.Set {
		s := bitset.New(n)
		ws := s.Words()
		for i := range ws {
			ws[i] = binary.LittleEndian.Uint64(data[pos : pos+8])
			pos += 8
		}
		s.Trim() // never trust padding bits off the wire
		return s
	}
	fc := &FunctionCensus{NumIn: numIn, Outs: make([]*bitset.Census, numOuts)}
	for o := range fc.Outs {
		on := readSet()
		dc := readSet()
		if on.IntersectsWith(dc) {
			return nil, fmt.Errorf("census: output %d on/dc sets intersect", o)
		}
		var cnts [3]*bitset.Counter
		for i := range cnts {
			ps := make([]*bitset.Set, planes)
			for p := range ps {
				ps[p] = readSet()
			}
			cnts[i] = bitset.NewCounterFromPlanes(n, ps)
		}
		fc.Outs[o] = bitset.NewCensusFromParts(on, dc, cnts[0], cnts[1], cnts[2])
	}
	return fc, nil
}
