package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"

	"relsyn/internal/pipeline"
)

func TestHarnessFiresOnceAtPoint(t *testing.T) {
	h := New("synth/sop", Budget)
	if err := h.Hook("assign/dense"); err != nil {
		t.Fatalf("fired at wrong point: %v", err)
	}
	if h.Fired() {
		t.Fatal("marked fired before reaching its point")
	}
	err := h.Hook("synth/sop")
	if err == nil {
		t.Fatal("did not fire at its point")
	}
	if !errors.Is(err, pipeline.ErrBudget) {
		t.Fatalf("budget fault does not wrap pipeline.ErrBudget: %v", err)
	}
	if !h.Fired() {
		t.Fatal("Fired() false after firing")
	}
	// One-shot: the second arrival is a no-op.
	if err := h.Hook("synth/sop"); err != nil {
		t.Fatalf("fired twice: %v", err)
	}
}

func TestHarnessVisitCount(t *testing.T) {
	h := &Harness{Point: "verify/sat", Kind: Budget, Visit: 2}
	if err := h.Hook("verify/sat"); err != nil {
		t.Fatalf("fired on first visit with Visit=2: %v", err)
	}
	if err := h.Hook("verify/sat"); err == nil {
		t.Fatal("did not fire on second visit")
	}
}

func TestPanicKindPanics(t *testing.T) {
	h := New("assign/bdd", Panic)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Panic harness did not panic")
		}
		if !strings.Contains(r.(string), "assign/bdd") {
			t.Fatalf("panic value does not name the point: %v", r)
		}
	}()
	h.Hook("assign/bdd")
}

func TestCancelRequiresBind(t *testing.T) {
	unbound := New("synth/sop", Cancel)
	if err := unbound.Hook("synth/sop"); err == nil ||
		!strings.Contains(err.Error(), "not bound") {
		t.Fatalf("unbound Cancel harness error = %v", err)
	}

	h := New("synth/sop", Cancel)
	ctx := h.Bind(context.Background())
	err := h.Hook("synth/sop")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault returned %v", err)
	}
	if ctx.Err() == nil {
		t.Fatal("bound context not cancelled")
	}
}

func TestZeroHarnessAndNilAreInert(t *testing.T) {
	var zero Harness
	for _, p := range Points() {
		if err := zero.Hook(p); err != nil {
			t.Fatalf("zero harness fired at %s: %v", p, err)
		}
	}
	var nilH *Harness
	if err := nilH.Hook("synth/sop"); err != nil {
		t.Fatalf("nil harness fired: %v", err)
	}
}

func TestChainFirstErrorWins(t *testing.T) {
	a := New("assign/bdd", Budget)
	b := New("assign/dense", Budget)
	hook := Chain(a.Hook, nil, b.Hook)
	if err := hook("assign/bdd"); !errors.Is(err, pipeline.ErrBudget) {
		t.Fatalf("chain missed first harness: %v", err)
	}
	if err := hook("assign/dense"); !errors.Is(err, pipeline.ErrBudget) {
		t.Fatalf("chain missed second harness: %v", err)
	}
	if !a.Fired() || !b.Fired() {
		t.Fatal("chained harnesses not both fired")
	}
}

func TestPlanCoversCrossProduct(t *testing.T) {
	plan := Plan()
	if len(plan) != len(Points())*len(Kinds()) {
		t.Fatalf("plan has %d cases, want %d", len(plan), len(Points())*len(Kinds()))
	}
	seen := map[string]bool{}
	for _, c := range plan {
		if seen[c.String()] {
			t.Fatalf("duplicate case %s", c)
		}
		seen[c.String()] = true
	}
}
