// Package faultinject is a deterministic fault-injection harness for the
// pipeline runner. It implements the pipeline's Inject hook and fires a
// scripted fault — a panic, an artificial budget exhaustion, or a context
// cancellation — the first time execution reaches a chosen stage-boundary
// point ("assign/bdd", "synth/resyn", "verify/sat", ...).
//
// The harness exists to prove, benchmark by benchmark, that every edge of
// the pipeline's degradation ladder is actually exercised: the injection
// sweep in internal/pipeline's tests crosses every injection point with
// every fault kind and asserts that the pipeline either degrades to a
// verified implementation or returns a typed *pipeline.StageError —
// never a process panic, never a hang.
//
// Injection is deterministic: a Harness fires at an exact point, exactly
// once (or on the k-th visit with Visit > 1). Plan enumerates the full
// cross product for sweep tests.
package faultinject

import (
	"context"
	"fmt"
	"sync"

	"relsyn/internal/pipeline"
)

// Kind selects the fault to inject.
type Kind string

// Fault kinds.
const (
	// Panic raises a runtime panic at the injection point, simulating a
	// library bug (index out of range, invariant violation, ...).
	Panic Kind = "panic"
	// Budget returns an error wrapping pipeline.ErrBudget, simulating
	// resource exhaustion (BDD nodes, SAT conflicts, AIG nodes).
	Budget Kind = "budget"
	// Cancel cancels the bound context, simulating a caller abandoning
	// the job; the hook then reports the context's error.
	Cancel Kind = "cancel"
)

// Kinds lists all fault kinds, for sweep tests.
func Kinds() []Kind { return []Kind{Panic, Budget, Cancel} }

// Points lists the pipeline's stage-boundary injection points, i.e. the
// rungs of the degradation ladder, in execution order.
func Points() []string {
	return []string{
		"assign/bdd",
		"assign/dense",
		"synth/resyn",
		"synth/sop",
		"verify/sat",
		"verify/exhaustive",
	}
}

// Harness fires one scripted fault. The zero value is inert.
type Harness struct {
	// Point is the attempt name to fire at (see Points).
	Point string
	// Kind is the fault to inject.
	Kind Kind
	// Visit fires on the n-th arrival at Point (0 and 1 mean first).
	Visit int

	mu     sync.Mutex
	visits int
	fired  bool
	cancel context.CancelFunc
}

// New returns a harness that fires kind on the first arrival at point.
func New(point string, kind Kind) *Harness {
	return &Harness{Point: point, Kind: kind}
}

// Bind derives a cancellable context for the pipeline run and arms the
// Cancel fault with its CancelFunc. It must be called (and its context
// passed to pipeline.Run) for Cancel harnesses to have any effect.
func (h *Harness) Bind(ctx context.Context) context.Context {
	ctx, cancel := context.WithCancel(ctx)
	h.mu.Lock()
	h.cancel = cancel
	h.mu.Unlock()
	return ctx
}

// Fired reports whether the fault has been injected.
func (h *Harness) Fired() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fired
}

// Hook is the pipeline.Options.Inject implementation.
func (h *Harness) Hook(point string) error {
	if h == nil || h.Point == "" {
		return nil
	}
	h.mu.Lock()
	if point != h.Point || h.fired {
		h.mu.Unlock()
		return nil
	}
	h.visits++
	want := h.Visit
	if want < 1 {
		want = 1
	}
	if h.visits < want {
		h.mu.Unlock()
		return nil
	}
	h.fired = true
	kind := h.Kind
	cancel := h.cancel
	h.mu.Unlock()

	switch kind {
	case Panic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", point))
	case Budget:
		return fmt.Errorf("faultinject: injected exhaustion at %s: %w", point, pipeline.ErrBudget)
	case Cancel:
		if cancel == nil {
			return fmt.Errorf("faultinject: Cancel harness at %s not bound to a context", point)
		}
		cancel()
		return context.Canceled
	default:
		return fmt.Errorf("faultinject: unknown kind %q", kind)
	}
}

// Chain composes injection hooks left to right: each hook sees every
// point, and the first non-nil error (or panic) wins. Use it to arm a
// fault on a lower ladder rung behind a forcer that fails the rung above.
func Chain(hooks ...func(string) error) func(string) error {
	return func(point string) error {
		for _, h := range hooks {
			if h == nil {
				continue
			}
			if err := h(point); err != nil {
				return err
			}
		}
		return nil
	}
}

// Case is one cell of an injection sweep.
type Case struct {
	Point string
	Kind  Kind
}

func (c Case) String() string { return fmt.Sprintf("%s+%s", c.Point, c.Kind) }

// Plan enumerates the deterministic cross product of all injection points
// and fault kinds, in a fixed order.
func Plan() []Case {
	var out []Case
	for _, p := range Points() {
		for _, k := range Kinds() {
			out = append(out, Case{Point: p, Kind: k})
		}
	}
	return out
}
