package blif

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks the BLIF parser never panics and that accepted
// networks survive a write/parse round trip functionally.
func FuzzParse(f *testing.F) {
	f.Add(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs y z\n.names a y\n0 1\n.names z\n1\n.end\n")
	f.Add(".model m\n.inputs a b c\n.outputs s\n.names a b c s\n100 1\n010 1\n001 1\n111 1\n.end\n")
	f.Add("garbage\n.names x\n")
	f.Fuzz(func(t *testing.T, src string) {
		nw, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if nw.NumPI > 10 || nw.NumNodes() > 200 {
			return
		}
		var buf bytes.Buffer
		if err := WriteNetwork(&buf, nw, "fz"); err != nil {
			t.Fatalf("write failed on accepted network: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v\n%s", err, buf.String())
		}
		for m := uint(0); m < 1<<uint(nw.NumPI); m++ {
			a, b := nw.Eval(m), back.Eval(m)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round trip changed PO %d at minterm %d", i, m)
				}
			}
		}
	})
}
