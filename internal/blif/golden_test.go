package blif

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenCircuits pins the parser's semantics on checked-in circuits:
// each file carries an independent oracle the parsed network must match
// on every minterm, in the minterm convention Eval uses (bit i of the
// minterm is the i-th declared input).
var goldenCircuits = []struct {
	file   string
	numPI  int
	oracle func(m uint) []bool
}{
	{"fulladder.blif", 3, func(m uint) []bool {
		n := 0
		for b := uint(0); b < 3; b++ {
			if m>>b&1 == 1 {
				n++
			}
		}
		return []bool{n%2 == 1, n >= 2}
	}},
	{"mux41.blif", 6, func(m uint) []bool {
		sel := 2*(m&1) + (m >> 1 & 1)
		return []bool{m>>(2+sel)&1 == 1}
	}},
	{"parity5.blif", 5, func(m uint) []bool {
		n := 0
		for b := uint(0); b < 5; b++ {
			if m>>b&1 == 1 {
				n++
			}
		}
		return []bool{n%2 == 1}
	}},
	{"corner.blif", 2, func(m uint) []bool {
		a := m&1 == 1
		b := m>>1&1 == 1
		nand := !(a && b)
		return []bool{false, true, !a, !a && nand, nand, a}
	}},
}

// Golden circuits must parse to their oracle semantics, survive a
// write→parse round trip bit for bit, and the writer must be stable: a
// second round trip reproduces the first write byte-identically.
func TestGoldenRoundTrip(t *testing.T) {
	for _, tc := range goldenCircuits {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			nw, err := Parse(bytes.NewReader(src))
			if err != nil {
				t.Fatal(err)
			}
			if nw.NumPI != tc.numPI {
				t.Fatalf("%d inputs, want %d", nw.NumPI, tc.numPI)
			}
			numPO := len(tc.oracle(0))
			if len(nw.POs) != numPO {
				t.Fatalf("%d outputs, want %d", len(nw.POs), numPO)
			}
			for m := uint(0); m < 1<<uint(tc.numPI); m++ {
				got, want := nw.Eval(m), tc.oracle(m)
				for o := range want {
					if got[o] != want[o] {
						t.Fatalf("PO %d wrong at minterm %d: got %v want %v", o, m, got[o], want[o])
					}
				}
			}
			var first bytes.Buffer
			if err := WriteNetwork(&first, nw, "golden"); err != nil {
				t.Fatal(err)
			}
			back, err := Parse(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("round trip unparseable: %v\n%s", err, first.String())
			}
			for m := uint(0); m < 1<<uint(tc.numPI); m++ {
				got, want := back.Eval(m), tc.oracle(m)
				for o := range want {
					if got[o] != want[o] {
						t.Fatalf("round trip broke PO %d at minterm %d", o, m)
					}
				}
			}
			var second bytes.Buffer
			if err := WriteNetwork(&second, back, "golden"); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("writer not stable:\n--- first ---\n%s\n--- second ---\n%s",
					first.String(), second.String())
			}
		})
	}
}

// Malformed inputs are rejected with diagnostics naming the offense —
// the message matters, because parse errors surface verbatim through
// the CLI and the /v1/resyn endpoint.
func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"names without output", ".model x\n.inputs a\n.outputs y\n.names\n.end\n", "needs at least an output"},
		{"row outside names", ".model x\n.inputs a\n.outputs y\n1 1\n.end\n", "cube row outside"},
		{"row extra fields", ".model x\n.inputs a\n.outputs y\n.names a y\n1 1 1\n.end\n", "malformed row"},
		{"row missing output value", ".model x\n.inputs a\n.outputs y\n.names a y\n1\n.end\n", "missing output value"},
		{"bad output value", ".model x\n.inputs a\n.outputs y\n.names a y\n1 x\n.end\n", "output value"},
		{"row width mismatch", ".model x\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n", "row width"},
		{"bad cube character", ".model x\n.inputs a\n.outputs y\n.names a y\nq 1\n.end\n", "invalid literal"},
		{"subckt", ".model x\n.inputs a\n.outputs y\n.subckt sub a=a y=y\n.end\n", "unsupported construct"},
		{"gate", ".model x\n.inputs a\n.outputs y\n.gate inv A=a Y=y\n.end\n", "unsupported construct"},
		{"no outputs", ".model x\n.inputs a\n.names a y\n1 1\n.end\n", "no outputs"},
		{"undriven signal", ".model x\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n", "undriven"},
		{"self cycle", ".model x\n.inputs a\n.outputs y\n.names y a y\n1- 1\n.end\n", "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.src))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
