// Package blif reads and writes the combinational subset of the
// Berkeley Logic Interchange Format (.model/.inputs/.outputs/.names) for
// SOP-node networks — the format ABC consumes, making the nodal
// decomposition results (paper §4) portable to external tools.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"relsyn/internal/bitset"
	"relsyn/internal/cube"
	"relsyn/internal/espresso"
	"relsyn/internal/network"
)

// WriteNetwork serializes a network. Primary inputs are named i0…,
// outputs o0…, internal nodes n0…. Node functions are emitted as
// espresso-minimized single-output covers. A node that drives a primary
// output takes that output's name directly, so a parse→write cycle is a
// fixpoint: buffers appear only for PI-driven outputs and for outputs
// sharing an already-named signal, and those buffers become the named
// node on the next cycle.
func WriteNetwork(w io.Writer, nw *network.Network, model string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", model)
	var ins, outs []string
	for i := 0; i < nw.NumPI; i++ {
		ins = append(ins, fmt.Sprintf("i%d", i))
	}
	for i := range nw.POs {
		outs = append(outs, fmt.Sprintf("o%d", i))
	}
	if len(ins) > 0 {
		fmt.Fprintf(bw, ".inputs %s\n", strings.Join(ins, " "))
	}
	fmt.Fprintf(bw, ".outputs %s\n", strings.Join(outs, " "))

	// poOf maps a node's signal to the first non-constant PO it drives;
	// that node is emitted under the output's name.
	poOf := make(map[int]int)
	for i, s := range nw.POs {
		if nw.POConst(i) >= 0 || s < nw.NumPI {
			continue
		}
		if _, ok := poOf[s]; !ok {
			poOf[s] = i
		}
	}
	sigName := func(s int) string {
		if s < nw.NumPI {
			return fmt.Sprintf("i%d", s)
		}
		if i, ok := poOf[s]; ok {
			return fmt.Sprintf("o%d", i)
		}
		return fmt.Sprintf("n%d", s-nw.NumPI)
	}
	for ni, nd := range nw.Nodes {
		names := make([]string, 0, nd.NumIn()+1)
		for _, f := range nd.Fanins {
			names = append(names, sigName(f))
		}
		names = append(names, sigName(nw.NumPI+ni))
		fmt.Fprintf(bw, ".names %s\n", strings.Join(names, " "))
		cov := espresso.Minimize(nd.OnCover(), nil)
		if nd.NumIn() == 0 {
			// A zero-input node (a parsed constant): the cover's universe
			// cube stringifies empty, so spell the constant-1 row directly.
			if cov.Len() > 0 {
				fmt.Fprintln(bw, "1")
			}
			continue
		}
		for _, c := range cov.Cubes {
			fmt.Fprintf(bw, "%s 1\n", c.String())
		}
	}
	for i, s := range nw.POs {
		switch {
		case nw.POConst(i) == 0:
			fmt.Fprintf(bw, ".names o%d\n", i) // no rows: constant 0
		case nw.POConst(i) == 1:
			fmt.Fprintf(bw, ".names o%d\n1\n", i)
		case s >= nw.NumPI && poOf[s] == i:
			// Already emitted as the node named o<i>.
		default:
			fmt.Fprintf(bw, ".names %s o%d\n1 1\n", sigName(s), i)
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// rawNode is a parsed .names block before topological ordering.
type rawNode struct {
	fanins []string
	output string
	rows   []row
}

type row struct {
	in  string
	out byte
}

// Parse reads a combinational BLIF model into a Network. Supported:
// .model, .inputs, .outputs, .names (with '1' or '0' output plane),
// .end; latches and subcircuits are errors.
func Parse(r io.Reader) (*network.Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		inputs, outputs []string
		nodes           []rawNode
		cur             *rawNode
	)
	flush := func() {
		if cur != nil {
			nodes = append(nodes, *cur)
			cur = nil
		}
	}
	for sc.Scan() {
		line := sc.Text()
		for strings.HasSuffix(line, "\\") && sc.Scan() {
			line = strings.TrimSuffix(line, "\\") + sc.Text()
		}
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case ".model":
			// name ignored
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
		case ".names":
			flush()
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: .names needs at least an output")
			}
			cur = &rawNode{fanins: fields[1 : len(fields)-1], output: fields[len(fields)-1]}
		case ".end":
			flush()
		case ".latch", ".subckt", ".gate":
			return nil, fmt.Errorf("blif: unsupported construct %s", fields[0])
		default:
			if strings.HasPrefix(fields[0], ".") {
				// Ignore other directives like .default_input_arrival.
				continue
			}
			if cur == nil {
				return nil, fmt.Errorf("blif: cube row outside .names: %q", line)
			}
			switch len(fields) {
			case 1:
				if len(cur.fanins) != 0 {
					return nil, fmt.Errorf("blif: row %q missing output value", line)
				}
				cur.rows = append(cur.rows, row{in: "", out: fields[0][0]})
			case 2:
				cur.rows = append(cur.rows, row{in: fields[0], out: fields[1][0]})
			default:
				return nil, fmt.Errorf("blif: malformed row %q", line)
			}
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("blif: model declares no outputs")
	}
	return build(inputs, outputs, nodes)
}

func build(inputs, outputs []string, raw []rawNode) (*network.Network, error) {
	byOutput := map[string]*rawNode{}
	for i := range raw {
		rn := &raw[i]
		if _, dup := byOutput[rn.output]; dup {
			return nil, fmt.Errorf("blif: signal %s driven twice", rn.output)
		}
		byOutput[rn.output] = rn
	}
	nw := &network.Network{NumPI: len(inputs)}
	sigOf := map[string]int{}
	for i, name := range inputs {
		sigOf[name] = i
	}

	var visit func(name string, stack map[string]bool) (int, error)
	visit = func(name string, stack map[string]bool) (int, error) {
		if s, ok := sigOf[name]; ok {
			return s, nil
		}
		if stack[name] {
			return 0, fmt.Errorf("blif: combinational cycle through %s", name)
		}
		rn, ok := byOutput[name]
		if !ok {
			return 0, fmt.Errorf("blif: undriven signal %s", name)
		}
		if len(rn.fanins) > network.MaxFanins {
			return 0, fmt.Errorf("blif: node %s has %d fanins (max %d)",
				name, len(rn.fanins), network.MaxFanins)
		}
		stack[name] = true
		defer delete(stack, name)
		fanins := make([]int, len(rn.fanins))
		for i, fn := range rn.fanins {
			s, err := visit(fn, stack)
			if err != nil {
				return 0, err
			}
			fanins[i] = s
		}
		table, err := tableFromRows(len(rn.fanins), rn.rows)
		if err != nil {
			return 0, fmt.Errorf("blif: node %s: %w", name, err)
		}
		nw.Nodes = append(nw.Nodes, network.Node{Fanins: fanins, Table: table})
		s := nw.NumPI + len(nw.Nodes) - 1
		sigOf[name] = s
		return s, nil
	}

	for _, out := range outputs {
		s, err := visit(out, map[string]bool{})
		if err != nil {
			return nil, err
		}
		nw.AddPO(s)
	}
	return nw, nil
}

// tableFromRows converts .names rows into a truth table. All rows must
// share the same output value: '1' rows define the on-set, '0' rows the
// off-set (table = complement of their union). No rows = constant 0.
func tableFromRows(k int, rows []row) (*bitset.Set, error) {
	table := bitset.New(1 << uint(k))
	if len(rows) == 0 {
		return table, nil
	}
	val := rows[0].out
	if val != '0' && val != '1' {
		return nil, fmt.Errorf("output value %q", string(val))
	}
	for _, rw := range rows {
		if rw.out != val {
			return nil, fmt.Errorf("mixed output values in one .names block")
		}
		var c cube.Cube
		if k == 0 {
			c = cube.New(0)
		} else {
			var err error
			c, err = cube.Parse(rw.in)
			if err != nil {
				return nil, err
			}
			if c.NumVars() != k {
				return nil, fmt.Errorf("row width %d, want %d", c.NumVars(), k)
			}
		}
		c.Minterms(func(m uint) { table.Set(int(m)) })
	}
	if val == '0' {
		table = table.Complement()
	}
	return table, nil
}

// Signals returns deterministic sorted signal names for diagnostics.
func Signals(nw *network.Network) []string {
	var out []string
	for i := 0; i < nw.NumPI; i++ {
		out = append(out, fmt.Sprintf("i%d", i))
	}
	for i := range nw.Nodes {
		out = append(out, fmt.Sprintf("n%d", i))
	}
	sort.Strings(out)
	return out
}
