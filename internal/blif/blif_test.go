package blif

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"relsyn/internal/network"
	"relsyn/internal/synth"
	"relsyn/internal/tt"
)

func buildNetwork(t *testing.T, seed int64, n, m int) *network.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := tt.New(n, m)
	for o := 0; o < m; o++ {
		for mm := 0; mm < f.Size(); mm++ {
			r := rng.Float64()
			switch {
			case r < 0.3:
				f.SetPhase(o, mm, tt.DC)
			case r < 0.65:
				f.SetPhase(o, mm, tt.On)
			}
		}
	}
	res, err := synth.Synthesize(f, synth.Options{Objective: synth.OptimizePower})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := network.FromAIG(res.Graph, 4)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		nw := buildNetwork(t, 201+seed, 5, 2)
		var buf bytes.Buffer
		if err := WriteNetwork(&buf, nw, "test"); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, buf.String())
		}
		if back.NumPI != nw.NumPI || len(back.POs) != len(nw.POs) {
			t.Fatal("interface mismatch after round trip")
		}
		for m := uint(0); m < 1<<uint(nw.NumPI); m++ {
			a, b := nw.Eval(m), back.Eval(m)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: PO %d differs at minterm %d", seed, i, m)
				}
			}
		}
	}
}

func TestParseHandwritten(t *testing.T) {
	src := `
# full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`
	nw, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumPI != 3 || len(nw.POs) != 2 {
		t.Fatalf("interface wrong: %d inputs, %d outputs", nw.NumPI, len(nw.POs))
	}
	for m := uint(0); m < 8; m++ {
		a := m&1 == 1
		b := m>>1&1 == 1
		c := m>>2&1 == 1
		n := 0
		for _, v := range []bool{a, b, c} {
			if v {
				n++
			}
		}
		out := nw.Eval(m)
		if out[0] != (n%2 == 1) {
			t.Fatalf("sum wrong at %03b", m)
		}
		if out[1] != (n >= 2) {
			t.Fatalf("cout wrong at %03b", m)
		}
	}
}

func TestParseZeroRows(t *testing.T) {
	// '0' rows define the off-set; the function is the complement.
	src := ".model z\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
	nw, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for m := uint(0); m < 4; m++ {
		want := m != 3
		if nw.Eval(m)[0] != want {
			t.Fatalf("complement semantics wrong at %02b", m)
		}
	}
}

func TestParseConstants(t *testing.T) {
	src := ".model c\n.inputs a\n.outputs z0 z1\n.names z0\n.names z1\n1\n.end\n"
	nw, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := nw.Eval(0)
	if out[0] != false || out[1] != true {
		t.Fatalf("constants wrong: %v", out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		".model x\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n", // double drive
		".model x\n.inputs a\n.outputs y\n.end\n",                                   // undriven output
		".model x\n.inputs a\n.outputs y\n.latch a y\n.end\n",                       // latch
		".model x\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n",             // mixed planes
		".model x\n.inputs a\n.outputs y\n.names y a y\n1- 1\n.end\n",               // cycle (y depends on y)
		"", // empty
		".model x\n.inputs a b c d e f g\n.outputs y\n.names a b c d e f g y\n1111111 1\n.end\n", // too many fanins
	}
	for i, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestWriteFormat(t *testing.T) {
	nw := buildNetwork(t, 301, 4, 1)
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, nw, "m1"); err != nil {
		t.Fatal(err)
	}
	src := buf.String()
	for _, want := range []string{".model m1", ".inputs i0 i1 i2 i3", ".outputs o0", ".end"} {
		if !strings.Contains(src, want) {
			t.Fatalf("missing %q in:\n%s", want, src)
		}
	}
}
