package fleet

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParsePrometheus(t *testing.T) {
	const text = `# HELP relsyn_jobs_total Jobs.
# TYPE relsyn_jobs_total counter
relsyn_jobs_total 42
relsyn_http_requests_total{code="200",route="synth"} 10
relsyn_http_requests_total{code="429",route="synth"} 3
relsyn_latency_seconds{quantile="0.99"} 0.125
relsyn_bogus_quantile NaN

relsyn_uptime_seconds 12.5
`
	s, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := s["relsyn_jobs_total"]; got != 42 {
		t.Fatalf("relsyn_jobs_total = %v, want 42", got)
	}
	if got := s[`relsyn_http_requests_total{code="429",route="synth"}`]; got != 3 {
		t.Fatalf("labeled series = %v, want 3", got)
	}
	if _, ok := s["relsyn_bogus_quantile"]; ok {
		t.Fatal("NaN sample must be dropped")
	}
	if got := s.Sum("relsyn_http_requests_total"); got != 13 {
		t.Fatalf("Sum across label sets = %v, want 13", got)
	}
	// Sum must not swallow metrics that merely share a prefix.
	if got := s.Sum("relsyn_http"); got != 0 {
		t.Fatalf("prefix-only Sum = %v, want 0", got)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"loneword\n", "name notanumber\n"} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParsePrometheus(%q) = nil error, want error", bad)
		}
	}
}

func TestSeriesDeltaAndMerge(t *testing.T) {
	before := Series{"a": 10, "b": 5}
	after := Series{"a": 17, "b": 5, "c": 2}
	d := after.Delta(before)
	want := Series{"a": 7, "c": 2}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("Delta = %v, want %v", d, want)
	}
	total := Series{"a": 1}
	total.Merge(d)
	if total["a"] != 8 || total["c"] != 2 {
		t.Fatalf("Merge = %v", total)
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("hot=0.5, batch=0.2,async=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if m[OpHot] != 0.5 || m[OpBatch] != 0.2 || m[OpAsync] != 0.3 {
		t.Fatalf("ParseMix = %v", m)
	}
	if err := m.validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"hot", "hot=x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) = nil error, want error", bad)
		}
	}
	for _, bad := range []Mix{{"warp": 1}, {OpHot: -1}, {}, {OpHot: 0}} {
		if err := bad.validate(); err == nil {
			t.Fatalf("validate(%v) = nil error, want error", bad)
		}
	}
}

// TestSchedulerDeterministic pins the harness's core reproducibility
// claim: the op stream is a pure function of (pool size, mix, seed).
func TestSchedulerDeterministic(t *testing.T) {
	mk := func(seed int64) []op {
		sc, err := newScheduler(16, DefaultMix(), 4, 1.25, seed, 4)
		if err != nil {
			t.Fatal(err)
		}
		ops := make([]op, 500)
		for i := range ops {
			ops[i] = sc.next()
		}
		return ops
	}
	a, b := mk(7), mk(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different op streams")
	}
	c := mk(8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical op streams")
	}
	kinds := map[string]int{}
	for _, o := range a {
		kinds[o.kind]++
		if o.kind == OpBatch && len(o.batch) != 4 {
			t.Fatalf("batch op carries %d specs, want 4", len(o.batch))
		}
	}
	for _, k := range opKinds {
		if kinds[k] == 0 {
			t.Fatalf("kind %s never scheduled in 500 ops of the default mix (%v)", k, kinds)
		}
	}
}

func TestSchedulerHonorsZeroWeights(t *testing.T) {
	sc, err := newScheduler(8, Mix{OpHot: 1}, 4, 1.25, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if o := sc.next(); o.kind != OpHot {
			t.Fatalf("op %d has kind %s, want only %s", i, o.kind, OpHot)
		}
	}
}

func TestSchedulerZipfSkew(t *testing.T) {
	sc, err := newScheduler(32, Mix{OpHot: 1}, 4, 1.4, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	const draws = 4000
	for i := 0; i < draws; i++ {
		counts[sc.next().spec]++
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	// Zipf s=1.4 over 32 ranks puts well over a third of the mass on
	// rank 0; uniform would give ~3%.
	if top < draws/4 {
		t.Fatalf("hottest key drew %d/%d — no Zipf skew", top, draws)
	}
}

func TestBuildPoolDeterministicGrid(t *testing.T) {
	p := PoolParams{Inputs: 4, Outputs: 1, Size: 6, Seed: 5,
		CfTargets: []float64{0.3, 0.6}, DCFractions: []float64{0.2, 0.4}}
	a, err := BuildPool(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPool(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Specs) != 6 {
		t.Fatalf("pool size %d, want 6", len(a.Specs))
	}
	for i := range a.Specs {
		if a.Specs[i].PLA != b.Specs[i].PLA || a.Specs[i].Hash != b.Specs[i].Hash {
			t.Fatalf("spec %d differs across identical builds", i)
		}
		wantCf := p.CfTargets[i%2]
		wantDC := p.DCFractions[(i/2)%2]
		if a.Specs[i].TargetCf != wantCf || a.Specs[i].DCFraction != wantDC {
			t.Fatalf("spec %d grid point (%v,%v), want (%v,%v)",
				i, a.Specs[i].TargetCf, a.Specs[i].DCFraction, wantCf, wantDC)
		}
		if !strings.Contains(a.Specs[i].PLA, ".i 4") {
			t.Fatalf("spec %d PLA missing .i header:\n%s", i, a.Specs[i].PLA)
		}
	}
	seen := map[string]bool{}
	for _, s := range a.Specs {
		if seen[s.Hash] {
			t.Fatalf("duplicate spec hash %s in pool", s.Hash)
		}
		seen[s.Hash] = true
	}
}

func TestFlattenJSONSkipsMetricsAndArrays(t *testing.T) {
	doc := map[string]any{
		"uptime_seconds": 12.5,
		"draining":       false,
		"queue":          map[string]any{"depth": float64(64), "len": float64(0)},
		"peers":          []any{"a", "b"},
		"metrics":        map[string]any{"counters": map[string]any{"x": float64(9)}},
		"bad":            math.NaN(),
	}
	out := Series{}
	flattenJSON("", doc, out)
	want := Series{"uptime_seconds": 12.5, "draining": 0, "queue.depth": 64, "queue.len": 0}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("flattenJSON = %v, want %v", out, want)
	}
}

func TestFleetDeltaExcludesLostTargets(t *testing.T) {
	before := []TargetSnapshot{
		{Target: "http://a", Metrics: Series{"relsyn_cache_hits_total": 10}, Statsz: Series{"completed": 5}},
		{Target: "http://b", Metrics: Series{"relsyn_cache_hits_total": 100}, Statsz: Series{"completed": 50}},
	}
	after := []TargetSnapshot{
		{Target: "http://a", Metrics: Series{"relsyn_cache_hits_total": 30}, Statsz: Series{"completed": 11}},
		{Target: "http://b", Errs: []string{"metrics: connection refused"}, Metrics: Series{}, Statsz: Series{}},
	}
	metrics, statsz, reset, lost := FleetDelta(before, after)
	if got := metrics.Sum("relsyn_cache_hits_total"); got != 20 {
		t.Fatalf("metrics delta = %v, want 20 (dead target must not contribute −100)", got)
	}
	if statsz["completed"] != 6 {
		t.Fatalf("statsz delta = %v, want completed=6", statsz)
	}
	if len(lost) != 1 || lost[0] != "http://b" {
		t.Fatalf("lost = %v, want [http://b]", lost)
	}
	if len(reset) != 0 {
		t.Fatalf("reset = %v, want none", reset)
	}
}

// A shard that restarts between snapshots scrapes cleanly but with
// counters (and uptime) rewound. It must be classified as reset — not
// lost — and its post-restart progress must be counted from zero, not
// folded in as a negative delta or dropped.
func TestFleetDeltaCountsResetTargetsFromZero(t *testing.T) {
	before := []TargetSnapshot{
		{Target: "http://a", Metrics: Series{"relsyn_cache_hits_total": 10}, Statsz: Series{"completed": 5, "uptime_seconds": 100}},
		{Target: "http://b", Metrics: Series{"relsyn_cache_hits_total": 100}, Statsz: Series{"completed": 50, "uptime_seconds": 100}},
	}
	after := []TargetSnapshot{
		{Target: "http://a", Metrics: Series{"relsyn_cache_hits_total": 30}, Statsz: Series{"completed": 11, "uptime_seconds": 130}},
		// b restarted: counters rebuilt from zero, uptime rewound.
		{Target: "http://b", Metrics: Series{"relsyn_cache_hits_total": 7}, Statsz: Series{"completed": 3, "uptime_seconds": 12}},
	}
	metrics, statsz, reset, lost := FleetDelta(before, after)
	if got := metrics.Sum("relsyn_cache_hits_total"); got != 27 {
		t.Fatalf("metrics delta = %v, want 27 (20 from a + 7 post-restart from b)", got)
	}
	if statsz["completed"] != 9 {
		t.Fatalf("statsz delta completed = %v, want 9 (6 from a + 3 post-restart from b)", statsz["completed"])
	}
	if len(reset) != 1 || reset[0] != "http://b" {
		t.Fatalf("reset = %v, want [http://b]", reset)
	}
	if len(lost) != 0 {
		t.Fatalf("lost = %v, want none (a restarted shard is alive)", lost)
	}

	// Uptime alone must also trip detection: a restart early enough that
	// no counter has yet fallen below its prior value is still a restart.
	before[1].Metrics["relsyn_cache_hits_total"] = 0
	after[1].Metrics["relsyn_cache_hits_total"] = 2
	_, _, reset, lost = FleetDelta(before, after)
	if len(reset) != 1 || len(lost) != 0 {
		t.Fatalf("uptime-only restart: reset=%v lost=%v, want reset=[http://b]", reset, lost)
	}
}

// A single-spec pool must schedule without panicking: Zipf over one
// rank is degenerate (imax would be 0, for which rand.NewZipf is not
// safe on every Go release), so every hot/batch draw is spec 0.
func TestSchedulerSingleSpecPool(t *testing.T) {
	sc, err := newScheduler(1, DefaultMix(), 4, 1.25, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		o := sc.next()
		if o.spec != 0 {
			t.Fatalf("op %d drew spec %d from a pool of 1", i, o.spec)
		}
		for _, b := range o.batch {
			if b != 0 {
				t.Fatalf("op %d batch drew spec %d from a pool of 1", i, b)
			}
		}
	}
}

func TestSummarizeNearestRank(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s := summarize(xs)
	if s.P50Seconds != 50 || s.P95Seconds != 95 || s.P99Seconds != 99 || s.MaxSeconds != 100 {
		t.Fatalf("summarize = %+v", s)
	}
	if s.Count != 100 || math.Abs(s.MeanSeconds-50.5) > 1e-9 {
		t.Fatalf("count/mean = %d/%v", s.Count, s.MeanSeconds)
	}
	if z := summarize(nil); z.Count != 0 || z.P99Seconds != 0 {
		t.Fatalf("empty summarize = %+v", z)
	}
}

func TestSLOEvaluate(t *testing.T) {
	rep := &Report{
		Ops: map[string]*OpCounts{
			OpHot:     {OK: 96, Errors: 2},
			OpHostile: {Rejected: 2},
		},
		Latency: map[string]LatencySummary{
			"sync": {Count: 96, P99Seconds: 0.150},
		},
		Accepted:     100,
		Resolved:     99,
		Lost:         1,
		MetricsDelta: Series{"relsyn_cache_hits_total": 80, "relsyn_cache_misses_total": 20, "relsyn_cluster_loops_broken_total": 0},
	}
	slo := SLO{
		P99:                  200 * time.Millisecond,
		MaxErrorRate:         0.05,
		MinCacheHitRate:      0.5,
		ExpectNoLoopsBroken:  true,
		ExpectNoBreakerTrips: true,
	}
	verdicts, pass := slo.evaluate(rep)
	if pass {
		t.Fatal("run with a lost job must fail overall")
	}
	byName := map[string]Verdict{}
	for _, v := range verdicts {
		byName[v.Name] = v
	}
	for name, want := range map[string]bool{
		"p99_latency_seconds": true,  // 0.150 <= 0.200
		"error_rate":          true,  // 2/100 <= 0.05
		"cache_hit_rate":      true,  // 0.8 >= 0.5
		"lost_accepted_jobs":  false, // 1 > 0
		"loops_broken":        true,
		"breaker_trips":       true,
	} {
		v, ok := byName[name]
		if !ok {
			t.Fatalf("missing verdict %s", name)
		}
		if v.Pass != want {
			t.Fatalf("verdict %s pass=%v, want %v (%+v)", name, v.Pass, want, v)
		}
	}
	if byName["error_rate"].Observed != 0.02 {
		t.Fatalf("error_rate observed %v, want 0.02", byName["error_rate"].Observed)
	}

	// Now the healthy variant: zero lost and a breaker trip expected to
	// flip only its own rule.
	rep.Lost = 0
	rep.MetricsDelta["relsyn_store_breaker_trips_total"] = 2
	verdicts, pass = slo.evaluate(rep)
	byName = map[string]Verdict{}
	for _, v := range verdicts {
		byName[v.Name] = v
	}
	if pass {
		t.Fatal("breaker trips must fail the run when ExpectNoBreakerTrips")
	}
	if !byName["lost_accepted_jobs"].Pass || byName["breaker_trips"].Pass {
		t.Fatalf("verdicts = %+v", byName)
	}

	// Skips: no p99 bound, disabled error rate, no cache floor.
	verdicts, pass = SLO{SkipErrorRate: true}.evaluate(rep)
	byName = map[string]Verdict{}
	for _, v := range verdicts {
		byName[v.Name] = v
	}
	if !pass {
		t.Fatal("all-skipped SLO with zero lost must pass")
	}
	for _, name := range []string{"p99_latency_seconds", "error_rate", "cache_hit_rate", "loops_broken", "breaker_trips"} {
		if !byName[name].Skipped {
			t.Fatalf("%s not skipped: %+v", name, byName[name])
		}
	}
	if byName["lost_accepted_jobs"].Skipped {
		t.Fatal("lost_accepted_jobs must never be skippable")
	}
}

func TestHostilePayloadsShapes(t *testing.T) {
	pool, err := BuildPool(PoolParams{Inputs: 4, Outputs: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	payloads := hostilePayloads(pool)
	if len(payloads) != 4 {
		t.Fatalf("%d hostile payloads, want 4", len(payloads))
	}
	if len(payloads[3]) <= 8<<20 {
		t.Fatalf("oversized payload is %d bytes, must exceed the 8 MiB server cap", len(payloads[3]))
	}
}
