// Prometheus text-format parsing for the fleet harness.
//
// The fleet's verdicts are computed from before/after scrapes of the
// very /metrics endpoints operators dashboard on — not from privileged
// in-process hooks — so a passing report certifies the deployment's
// observable surface, not a lab shortcut. The parser therefore speaks
// exactly the exposition dialect internal/obs writes (version 0.0.4,
// no timestamps): `name{labels} value` lines, HELP/TYPE comments
// skipped. See DESIGN §8 for the conventions it relies on.
package fleet

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is a flat scrape: one entry per exposed time series, keyed
// exactly as rendered — `name` or `name{k="v",...}`.
type Series map[string]float64

// ParsePrometheus reads a text exposition (format 0.0.4) into a Series.
// Comment lines are skipped; a sample line is split at its last space
// (label values may themselves contain spaces, the value never does).
// Non-finite samples (NaN/Inf quantiles of empty summaries in other
// exporters) are parsed but dropped: the differ and the report must
// stay JSON-encodable, and a non-finite delta is meaningless.
func ParsePrometheus(r io.Reader) (Series, error) {
	s := Series{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		i := strings.LastIndexByte(text, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("fleet: metrics line %d: no value in %q", line, text)
		}
		key := strings.TrimSpace(text[:i])
		v, err := strconv.ParseFloat(text[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: metrics line %d: bad value in %q: %v", line, text, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		s[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: scan metrics: %w", err)
	}
	return s, nil
}

// Sum totals every series of the given metric name across its label
// sets (exact-name match plus `name{...}` prefixed series). Intended
// for counters and gauges; summing a summary's quantile series is the
// caller's mistake.
func (s Series) Sum(name string) float64 {
	total := 0.0
	for key, v := range s {
		if key == name || strings.HasPrefix(key, name+"{") {
			total += v
		}
	}
	return total
}

// Delta returns after-minus-before per series, keyed like the receiver
// (the "after" side). Series absent from before are treated as starting
// at zero — the obs registries register every series eagerly, so a key
// that appears mid-run genuinely started at zero. Zero deltas are
// dropped to keep reports readable.
func (s Series) Delta(before Series) Series {
	d := Series{}
	for key, v := range s {
		if diff := v - before[key]; diff != 0 {
			d[key] = diff
		}
	}
	return d
}

// Merge adds other's samples into s (summing shared keys), used to fold
// per-target deltas into one fleet-wide view.
func (s Series) Merge(other Series) {
	for key, v := range other {
		s[key] += v
	}
}
