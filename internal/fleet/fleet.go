// The fleet runner: deterministic seeded arrivals, open-loop pacing
// with a closed-loop fallback, per-kind outcome accounting, and the
// before/after scrape that turns a soak into an SLO verdict.
//
// Pacing contract (DESIGN §13): the primary discipline is OPEN-LOOP —
// arrival times are fixed in advance by (seed, rate) as an exponential
// (Poisson) process, independent of response latency, because a fleet
// of real users does not slow down when the service does; closed-loop
// generators hide overload by self-throttling (coordinated omission).
// The fallback is the MaxOutstanding semaphore: when the SUT falls so
// far behind that the generator would need unbounded goroutines to keep
// the schedule, arrivals block on a slot and each blocked arrival is
// counted as a PacerStall. Stalls are therefore themselves a signal:
// a clean open-loop run reports zero.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"relsyn/client"
	"relsyn/internal/pipeline"
)

// ReportSchema identifies the FLEET_report.json wire shape.
const ReportSchema = "relsyn/fleet-report/v1"

// Config configures Run. Driver and Pool are required.
type Config struct {
	// Driver is where ops are sent — a relsynd shard or a relsyn-router.
	Driver *client.Client
	// ScrapeTargets are the base URLs snapshotted before/after (router
	// AND shards, so cache/breaker counters are fleet-wide). Defaults to
	// just the driver's base URL.
	ScrapeTargets []string

	Pool *Pool
	Mix  Mix // default DefaultMix()

	// Duration bounds arrival generation by wall clock. Ignored when
	// TotalOps > 0.
	Duration time.Duration
	// TotalOps, when positive, generates exactly this many arrivals
	// (benchmarks use this for a fixed work quantum).
	TotalOps int
	// Rate is the open-loop target in arrivals/sec. <= 0 means unpaced:
	// arrivals are generated back-to-back and the MaxOutstanding
	// semaphore becomes the only throttle (pure closed-loop mode).
	Rate float64
	// MaxOutstanding caps in-flight ops (default 64).
	MaxOutstanding int

	BatchSize int     // specs per batch op (default 8)
	ZipfS     float64 // hot-key Zipf exponent, must be > 1 (default 1.25)
	Seed      int64   // default 1

	SLO SLO

	// ReqTimeout bounds each op end-to-end, async resolution included
	// (default 30s).
	ReqTimeout time.Duration
	// DrainGrace bounds the wait for in-flight ops after generation
	// stops (default 30s). Ops still unfinished after the grace are
	// cancelled — accepted ones then count as lost.
	DrainGrace time.Duration

	// HTTPClient is used for scrapes (default: 10s-timeout client).
	HTTPClient *http.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if len(c.ScrapeTargets) == 0 && c.Driver != nil {
		c.ScrapeTargets = []string{c.Driver.BaseURL()}
	}
	if c.Mix == nil {
		c.Mix = DefaultMix()
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 64
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ReqTimeout <= 0 {
		c.ReqTimeout = 30 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 30 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 10 * time.Second}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// OpCounts is the per-kind outcome ledger.
type OpCounts struct {
	Started      int64 `json:"started"`
	OK           int64 `json:"ok"`
	CacheHits    int64 `json:"cache_hits"`   // client-visible cached flag on OK ops
	JobFailures  int64 `json:"job_failures"` // accepted jobs that ended failed/expired
	Backpressure int64 `json:"backpressure"` // 429 through every retry — shed, never accepted
	Rejected     int64 `json:"rejected"`     // expected 4xx on hostile input
	Resubmits    int64 `json:"resubmits"`    // async jobs recovered by idempotent resubmit
	Errors       int64 `json:"errors"`       // everything unexpected
}

// LatencySummary summarizes one latency class over the FULL sample set
// (nearest-rank quantiles) — unlike the server's /metrics histograms,
// nothing here is windowed.
type LatencySummary struct {
	Count       int     `json:"count"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
}

// RunInfo echoes the effective run parameters into the report.
type RunInfo struct {
	Driver          string   `json:"driver"`
	ScrapeTargets   []string `json:"scrape_targets"`
	PoolSpecs       int      `json:"pool_specs"`
	Inputs          int      `json:"inputs"`
	Outputs         int      `json:"outputs"`
	Seed            int64    `json:"seed"`
	Rate            float64  `json:"rate_per_sec"`
	DurationSeconds float64  `json:"duration_seconds"`
	TotalOps        int      `json:"total_ops,omitempty"`
	MaxOutstanding  int      `json:"max_outstanding"`
	BatchSize       int      `json:"batch_size"`
	ZipfS           float64  `json:"zipf_s"`
	Mix             Mix      `json:"mix"`
}

// Report is the machine-readable run record (FLEET_report.json).
type Report struct {
	Schema         string                    `json:"schema"`
	Verdict        string                    `json:"verdict"` // "pass" | "fail"
	SLOs           []Verdict                 `json:"slos"`
	Config         RunInfo                   `json:"config"`
	ElapsedSeconds float64                   `json:"elapsed_seconds"`
	AchievedRate   float64                   `json:"achieved_ops_per_sec"`
	Ops            map[string]*OpCounts      `json:"ops"`
	Latency        map[string]LatencySummary `json:"latency"`
	Accepted       int64                     `json:"accepted"`
	Resolved       int64                     `json:"resolved"`
	Lost           int64                     `json:"lost"`
	PacerStalls    int64                     `json:"pacer_stalls"`
	ErrorSamples   []string                  `json:"error_samples,omitempty"`
	MetricsDelta   Series                    `json:"metrics_delta"`
	StatszDelta    Series                    `json:"statsz_delta"`
	ResetTargets   []string                  `json:"reset_targets,omitempty"`
	LostTargets    []string                  `json:"lost_targets,omitempty"`
	ScrapeErrors   []string                  `json:"scrape_errors,omitempty"`
}

// totals returns (completed ops, unexpected errors) across kinds.
func (r *Report) totals() (total, errs int64) {
	for _, c := range r.Ops {
		total += c.OK + c.JobFailures + c.Backpressure + c.Rejected + c.Errors
		errs += c.Errors
	}
	return total, errs
}

// collector accumulates outcomes from concurrent op goroutines.
type collector struct {
	mu       sync.Mutex
	ops      map[string]*OpCounts
	lat      map[string][]float64
	accepted int64
	resolved int64
	lost     int64
	stalls   int64
	samples  []string
}

func newCollector() *collector {
	c := &collector{ops: map[string]*OpCounts{}, lat: map[string][]float64{}}
	for _, k := range opKinds {
		c.ops[k] = &OpCounts{}
	}
	return c
}

func (c *collector) counts(kind string) *OpCounts { return c.ops[kind] }

func (c *collector) summaries() map[string]LatencySummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]LatencySummary, len(c.lat))
	for class, xs := range c.lat {
		out[class] = summarize(xs)
	}
	return out
}

func summarize(xs []float64) LatencySummary {
	s := LatencySummary{Count: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	q := func(p float64) float64 { // nearest-rank, matching internal/obs
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	s.MeanSeconds = sum / float64(len(sorted))
	s.P50Seconds = q(0.50)
	s.P95Seconds = q(0.95)
	s.P99Seconds = q(0.99)
	s.MaxSeconds = sorted[len(sorted)-1]
	return s
}

type runner struct {
	cfg     Config
	col     *collector
	hostile [][]byte
}

// hostilePayloads builds the cycling hostile bodies once: malformed
// PLA, empty PLA, unknown method option, and a body just over relsynd's
// 8 MiB limit (built from one valid spec padded with comment lines so
// the size — not the syntax — is what trips the server).
func hostilePayloads(p *Pool) [][]byte {
	valid := p.Specs[0].PLA
	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err) // static shapes; cannot fail
		}
		return b
	}
	type req struct {
		PLA     string               `json:"pla"`
		Options *pipeline.JobOptions `json:"options,omitempty"`
	}
	oversized := valid + strings.Repeat("# padding padding padding padding padding padding\n", (9<<20)/50)
	return [][]byte{
		mustJSON(req{PLA: ".i 2\n.o 1\nthis is not a pla body\n.e\n"}),
		mustJSON(req{PLA: ""}),
		mustJSON(req{PLA: valid, Options: &pipeline.JobOptions{Method: "bogus"}}),
		mustJSON(req{PLA: oversized}),
	}
}

// Run executes one soak and returns its report. An error means the
// harness itself could not run (bad config); an SLO failure is a
// "fail" verdict on a nil-error report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Driver == nil {
		return nil, fmt.Errorf("fleet: Config.Driver is required")
	}
	if cfg.Pool == nil || len(cfg.Pool.Specs) == 0 {
		return nil, fmt.Errorf("fleet: Config.Pool is required and must be non-empty")
	}
	if cfg.TotalOps <= 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("fleet: set Config.Duration or Config.TotalOps")
	}
	r := &runner{cfg: cfg, col: newCollector(), hostile: hostilePayloads(cfg.Pool)}
	sched, err := newScheduler(len(cfg.Pool.Specs), cfg.Mix, cfg.BatchSize, cfg.ZipfS, cfg.Seed, len(r.hostile))
	if err != nil {
		return nil, err
	}
	// The pacer draws inter-arrival gaps from its own seeded stream so
	// op content and op timing stay independently reproducible.
	pacer := rand.New(rand.NewSource(cfg.Seed + 1))

	cfg.Logf("fleet: scraping %d target(s) before run", len(cfg.ScrapeTargets))
	before := ScrapeTargets(ctx, cfg.HTTPClient, cfg.ScrapeTargets)

	opBase, opCancel := context.WithCancel(ctx)
	defer opCancel()
	sem := make(chan struct{}, cfg.MaxOutstanding)
	var wg sync.WaitGroup

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	next := start
	launched := 0
generate:
	for {
		if ctx.Err() != nil {
			break
		}
		if cfg.TotalOps > 0 {
			if launched >= cfg.TotalOps {
				break
			}
		} else if !time.Now().Before(deadline) {
			break
		}
		if cfg.Rate > 0 {
			gap := time.Duration(pacer.ExpFloat64() / cfg.Rate * float64(time.Second))
			next = next.Add(gap)
			if d := time.Until(next); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-ctx.Done():
					t.Stop()
					break generate
				case <-t.C:
				}
			}
		}
		// Closed-loop fallback: block for a slot only when the open-loop
		// schedule has outrun the SUT, and count every such stall.
		select {
		case sem <- struct{}{}:
		default:
			r.col.mu.Lock()
			r.col.stalls++
			r.col.mu.Unlock()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				break generate
			}
		}
		r.launch(opBase, sem, &wg, sched.next())
		launched++
	}
	genElapsed := time.Since(start)
	cfg.Logf("fleet: generation done: %d ops in %s; draining", launched, genElapsed.Round(time.Millisecond))

	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(cfg.DrainGrace):
		cfg.Logf("fleet: drain grace %s expired; cancelling stragglers", cfg.DrainGrace)
		opCancel()
		<-drained
	}
	elapsed := time.Since(start)

	after := ScrapeTargets(ctx, cfg.HTTPClient, cfg.ScrapeTargets)
	metricsDelta, statszDelta, resetTargets, lostTargets := FleetDelta(before, after)

	rep := &Report{
		Schema: ReportSchema,
		Config: RunInfo{
			Driver:          cfg.Driver.BaseURL(),
			ScrapeTargets:   cfg.ScrapeTargets,
			PoolSpecs:       len(cfg.Pool.Specs),
			Inputs:          cfg.Pool.Params.Inputs,
			Outputs:         cfg.Pool.Params.Outputs,
			Seed:            cfg.Seed,
			Rate:            cfg.Rate,
			DurationSeconds: cfg.Duration.Seconds(),
			TotalOps:        cfg.TotalOps,
			MaxOutstanding:  cfg.MaxOutstanding,
			BatchSize:       cfg.BatchSize,
			ZipfS:           cfg.ZipfS,
			Mix:             cfg.Mix,
		},
		ElapsedSeconds: elapsed.Seconds(),
		Ops:            r.col.ops,
		Latency:        r.col.summaries(),
		Accepted:       r.col.accepted,
		Resolved:       r.col.resolved,
		Lost:           r.col.lost,
		PacerStalls:    r.col.stalls,
		ErrorSamples:   r.col.samples,
		MetricsDelta:   metricsDelta,
		StatszDelta:    statszDelta,
		ResetTargets:   resetTargets,
		LostTargets:    lostTargets,
	}
	for _, snaps := range [][]TargetSnapshot{before, after} {
		for i := range snaps {
			for _, e := range snaps[i].Errs {
				rep.ScrapeErrors = append(rep.ScrapeErrors, snaps[i].Target+": "+e)
			}
		}
	}
	if total, _ := rep.totals(); elapsed > 0 {
		rep.AchievedRate = float64(total) / elapsed.Seconds()
	}
	verdicts, pass := cfg.SLO.evaluate(rep)
	rep.SLOs = verdicts
	rep.Verdict = "fail"
	if pass {
		rep.Verdict = "pass"
	}
	cfg.Logf("fleet: verdict=%s accepted=%d resolved=%d lost=%d", rep.Verdict, rep.Accepted, rep.Resolved, rep.Lost)
	return rep, nil
}

func (r *runner) launch(ctx context.Context, sem chan struct{}, wg *sync.WaitGroup, o op) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { <-sem }()
		opCtx, cancel := context.WithTimeout(ctx, r.cfg.ReqTimeout)
		defer cancel()
		r.runOp(opCtx, o)
	}()
}

func (r *runner) runOp(ctx context.Context, o op) {
	c := r.col.counts(o.kind)
	r.col.mu.Lock()
	c.Started++
	r.col.mu.Unlock()
	switch o.kind {
	case OpHot, OpGrid:
		r.syncOp(ctx, o.kind, o.spec)
	case OpBatch:
		r.batchOp(ctx, o.batch)
	case OpAsync:
		r.asyncOp(ctx, o.spec)
	case OpHostile:
		r.hostileOp(ctx, o.hostile)
	}
}

func is429(err error) bool {
	return err != nil && strings.Contains(err.Error(), "HTTP 429")
}

func (r *runner) syncOp(ctx context.Context, kind string, spec int) {
	body, _ := json.Marshal(map[string]string{"pla": r.cfg.Pool.Specs[spec].PLA})
	c := r.col.counts(kind)
	start := time.Now()
	env, code, err := r.cfg.Driver.Do(ctx, http.MethodPost, "/v1/synth", body, nil)
	lat := time.Since(start)
	r.col.mu.Lock()
	defer r.col.mu.Unlock()
	switch {
	case is429(err):
		c.Backpressure++
	case err != nil:
		c.Errors++
		r.sampleErrorLocked(kind, err.Error())
	case code >= 400:
		c.Errors++
		r.sampleErrorLocked(kind, fmt.Sprintf("unexpected HTTP %d: %s", code, env.Error))
	default:
		switch env.Status {
		case "done":
			c.OK++
			r.col.accepted++
			r.col.resolved++
			if env.Cached {
				c.CacheHits++
			}
			r.col.lat["sync"] = append(r.col.lat["sync"], lat.Seconds())
		case "failed", "expired":
			c.JobFailures++
			r.col.accepted++
			r.col.resolved++
		default:
			c.Errors++
			r.sampleErrorLocked(kind, "non-terminal sync status "+env.Status)
		}
	}
}

func (r *runner) batchOp(ctx context.Context, specs []int) {
	type item struct {
		PLA string `json:"pla"`
	}
	jobs := make([]item, len(specs))
	for i, s := range specs {
		jobs[i] = item{PLA: r.cfg.Pool.Specs[s].PLA}
	}
	body, _ := json.Marshal(map[string]any{"jobs": jobs})
	c := r.col.counts(OpBatch)
	start := time.Now()
	br, errEnv, code, err := r.cfg.Driver.DoBatch(ctx, body, nil)
	lat := time.Since(start)
	r.col.mu.Lock()
	defer r.col.mu.Unlock()
	switch {
	case is429(err):
		c.Backpressure++
		return
	case err != nil:
		c.Errors++
		r.sampleErrorLocked(OpBatch, err.Error())
		return
	case code >= 400:
		c.Errors++
		msg := fmt.Sprintf("batch HTTP %d", code)
		if errEnv != nil {
			msg += ": " + errEnv.Error
		}
		r.sampleErrorLocked(OpBatch, msg)
		return
	}
	r.col.lat["batch"] = append(r.col.lat["batch"], lat.Seconds())
	for i := range br.Results {
		res := &br.Results[i]
		switch res.Status {
		case "done":
			c.OK++
			r.col.accepted++
			r.col.resolved++
			if res.Cached {
				c.CacheHits++
			}
		case "failed", "expired":
			c.JobFailures++
			r.col.accepted++
			r.col.resolved++
		case "rejected":
			c.Backpressure++
		default:
			c.Errors++
			r.sampleErrorLocked(OpBatch, "batch item status "+res.Status)
		}
	}
}

// asyncOp submits with wait=false, then polls to terminal. If the job
// id vanishes mid-poll (404 — the owning shard died before finishing),
// the op recovers by resubmitting synchronously: submissions are
// content-addressed and idempotent, so at-least-once delivery is safe
// and "accepted" still ends "resolved". This client-side recovery is
// exactly what the zero-lost-jobs SLO certifies end to end.
func (r *runner) asyncOp(ctx context.Context, spec int) {
	plaText := r.cfg.Pool.Specs[spec].PLA
	env, err := r.cfg.Driver.SynthAsync(ctx, plaText, pipeline.JobOptions{})
	c := r.col.counts(OpAsync)
	if err != nil {
		r.col.mu.Lock()
		defer r.col.mu.Unlock()
		if is429(err) {
			c.Backpressure++
		} else {
			c.Errors++
			r.sampleErrorLocked(OpAsync, "submit: "+err.Error())
		}
		return
	}
	r.col.mu.Lock()
	r.col.accepted++
	r.col.mu.Unlock()
	start := time.Now()
	if env.Terminal() { // cached/coalesced fast path: done at submit
		r.finishAsync(c, env, false, time.Since(start), "")
		return
	}
	final, recovered, errMsg := r.pollToTerminal(ctx, env.JobID, plaText)
	r.finishAsync(c, final, recovered, time.Since(start), errMsg)
}

func (r *runner) finishAsync(c *OpCounts, env *client.Response, recovered bool, lat time.Duration, errMsg string) {
	r.col.mu.Lock()
	defer r.col.mu.Unlock()
	if env == nil {
		r.col.lost++
		c.Errors++
		r.sampleErrorLocked(OpAsync, "lost: "+errMsg)
		return
	}
	r.col.resolved++
	if recovered {
		c.Resubmits++
	}
	switch env.Status {
	case "done":
		c.OK++
		if env.Cached {
			c.CacheHits++
		}
		r.col.lat["async"] = append(r.col.lat["async"], lat.Seconds())
	default: // failed / expired
		c.JobFailures++
	}
}

// pollToTerminal polls /v1/jobs/{id} with a fixed bounded backoff
// schedule until the job is terminal, recovering from a vanished id by
// one synchronous resubmit. Returns (nil, false, reason) only when the
// accepted job could not be resolved within ctx — i.e. it was lost.
func (r *runner) pollToTerminal(ctx context.Context, id, plaText string) (*client.Response, bool, string) {
	delay := 25 * time.Millisecond
	const maxDelay = 500 * time.Millisecond
	for {
		env, code, err := r.cfg.Driver.Do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil)
		switch {
		case err != nil:
			return nil, false, "poll: " + err.Error()
		case code == http.StatusNotFound:
			// Owner died holding the job: idempotent sync resubmit.
			env2, code2, err2 := r.cfg.Driver.Do(ctx, http.MethodPost, "/v1/synth",
				mustMarshal(map[string]string{"pla": plaText}), nil)
			if err2 != nil {
				return nil, false, "resubmit: " + err2.Error()
			}
			if code2 >= 400 || !env2.Terminal() {
				return nil, false, fmt.Sprintf("resubmit: HTTP %d status %s", code2, env2.Status)
			}
			return env2, true, ""
		case code >= 400:
			return nil, false, fmt.Sprintf("poll: HTTP %d: %s", code, env.Error)
		case env.Terminal():
			return env, false, ""
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, false, "poll: " + ctx.Err().Error()
		case <-t.C:
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

func (r *runner) hostileOp(ctx context.Context, idx int) {
	c := r.col.counts(OpHostile)
	env, code, err := r.cfg.Driver.Do(ctx, http.MethodPost, "/v1/synth", r.hostile[idx], nil)
	r.col.mu.Lock()
	defer r.col.mu.Unlock()
	switch {
	case is429(err):
		c.Backpressure++
	case err != nil:
		c.Errors++
		r.sampleErrorLocked(OpHostile, err.Error())
	case code >= 400 && code < 500:
		c.Rejected++ // the expected outcome: a clean, bounded rejection
	default:
		c.Errors++
		r.sampleErrorLocked(OpHostile, fmt.Sprintf("hostile input %d got HTTP %d status %s", idx, code, env.Status))
	}
}

// sampleErrorLocked requires r.col.mu held.
func (r *runner) sampleErrorLocked(kind, msg string) {
	if len(r.col.samples) < 20 {
		r.col.samples = append(r.col.samples, kind+": "+msg)
	}
}

func mustMarshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
