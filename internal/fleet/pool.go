package fleet

import (
	"fmt"
	"strings"

	"relsyn/internal/pla"
	"relsyn/internal/synthetic"
)

// PoolParams configures BuildPool. The zero value of every field gets a
// sensible default; Seed defaults to 1 so the zero value is still fully
// deterministic.
type PoolParams struct {
	Inputs  int // truth-table inputs per spec (default 8)
	Outputs int // outputs per spec (default 2)
	Size    int // number of specs (default 24)
	Seed    int64

	// CfTargets and DCFractions define the grid the pool sweeps,
	// reproducing the paper's functionality axis (XOR-like → constant-
	// like at fixed DC density). Spec i takes CfTargets[i%len] crossed
	// with DCFractions[(i/len(CfTargets))%len].
	CfTargets   []float64
	DCFractions []float64
}

func (p PoolParams) withDefaults() PoolParams {
	if p.Inputs == 0 {
		p.Inputs = 8
	}
	if p.Outputs == 0 {
		p.Outputs = 2
	}
	if p.Size == 0 {
		p.Size = 24
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if len(p.CfTargets) == 0 {
		p.CfTargets = []float64{0.15, 0.3, 0.45, 0.6, 0.75}
	}
	if len(p.DCFractions) == 0 {
		p.DCFractions = []float64{0.1, 0.3, 0.5}
	}
	return p
}

// Spec is one pinned workload unit: a PLA body plus the metadata the
// mix scheduler and report need. Hash is the content address relsynd
// caches under, so the harness can reason about hit rates per spec.
type Spec struct {
	PLA        string  `json:"-"`
	Hash       string  `json:"hash"`
	TargetCf   float64 `json:"target_cf"`
	DCFraction float64 `json:"dc_fraction"`
	Seed       int64   `json:"seed"`
}

// Pool is an immutable, seed-deterministic spec set. The same
// PoolParams always yield byte-identical PLA bodies (and therefore
// identical cache keys), which is what makes hot-key skew and hit-rate
// SLOs reproducible across runs and machines.
type Pool struct {
	Params PoolParams
	Specs  []Spec
}

// BuildPool sweeps the C^f × DC-fraction grid with synthetic.Generate.
// BestEffort is forced on: near the feasibility boundary (high C^f at
// high DC density) the steering may stop short of tolerance, and a load
// pool wants the closest real function, not an error.
func BuildPool(p PoolParams) (*Pool, error) {
	p = p.withDefaults()
	if p.Size < 1 {
		return nil, fmt.Errorf("fleet: pool size %d < 1", p.Size)
	}
	pool := &Pool{Params: p, Specs: make([]Spec, 0, p.Size)}
	for i := 0; i < p.Size; i++ {
		cf := p.CfTargets[i%len(p.CfTargets)]
		dc := p.DCFractions[(i/len(p.CfTargets))%len(p.DCFractions)]
		seed := p.Seed*1_000_003 + int64(i)
		fn, err := synthetic.Generate(synthetic.Params{
			Inputs:     p.Inputs,
			Outputs:    p.Outputs,
			DCFraction: dc,
			TargetCf:   cf,
			Tolerance:  0.05,
			Seed:       seed,
			BestEffort: true,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: generate spec %d (cf=%v dc=%v): %w", i, cf, dc, err)
		}
		fn.Name = fmt.Sprintf("fleet_%03d", i)
		var sb strings.Builder
		if err := pla.FromFunction(fn, nil, nil).Write(&sb); err != nil {
			return nil, fmt.Errorf("fleet: serialize spec %d: %w", i, err)
		}
		pool.Specs = append(pool.Specs, Spec{
			PLA:        sb.String(),
			Hash:       pla.HashFunction(fn),
			TargetCf:   cf,
			DCFraction: dc,
			Seed:       seed,
		})
	}
	return pool, nil
}
