// Soak tests: the fleet harness driven against real in-process relsynd
// shards (and a real router for the cluster scenario), over loopback
// TCP. These are the end-to-end proof behind the serving tier — the
// single-node soak pins the harness/SLO plumbing, and the
// kill-one-mid-soak scenario pins the acceptance claim: one shard dies
// under load and the fleet still resolves every accepted job.
package fleet_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relsyn/client"
	"relsyn/internal/cluster"
	"relsyn/internal/fleet"
	"relsyn/internal/obs"
	"relsyn/internal/server"
)

func testPool(t *testing.T) *fleet.Pool {
	t.Helper()
	pool, err := fleet.BuildPool(fleet.PoolParams{Inputs: 6, Outputs: 1, Size: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func testDriver(t *testing.T, baseURL string) *client.Client {
	t.Helper()
	cl, err := client.New(client.Config{BaseURL: baseURL, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestFleetSingleNodeSoak(t *testing.T) {
	reg := obs.NewRegistry()
	srv := server.New(server.Config{Workers: 4, Metrics: reg})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := fleet.Run(context.Background(), fleet.Config{
		Driver:   testDriver(t, ts.URL),
		Pool:     testPool(t),
		Duration: 1500 * time.Millisecond,
		Rate:     150,
		Seed:     11,
		SLO: fleet.SLO{
			P99:                  5 * time.Second,
			MaxErrorRate:         0,
			MinCacheHitRate:      0.10,
			ExpectNoLoopsBroken:  true,
			ExpectNoBreakerTrips: true,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != "pass" {
		raw, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("verdict %q, want pass:\n%s", rep.Verdict, raw)
	}
	if rep.Lost != 0 {
		t.Fatalf("lost = %d, want 0", rep.Lost)
	}
	if rep.Accepted == 0 || rep.Accepted != rep.Resolved {
		t.Fatalf("accepted=%d resolved=%d", rep.Accepted, rep.Resolved)
	}
	for _, kind := range []string{fleet.OpHot, fleet.OpGrid, fleet.OpBatch, fleet.OpAsync, fleet.OpHostile} {
		if rep.Ops[kind].Started == 0 {
			t.Fatalf("kind %s never ran; ops=%v", kind, rep.Ops)
		}
	}
	if rep.Ops[fleet.OpHostile].Rejected == 0 {
		t.Fatal("hostile ops produced no clean rejections")
	}
	if rep.Ops[fleet.OpHostile].Errors != 0 {
		t.Fatalf("hostile ops produced %d unexpected outcomes: %v",
			rep.Ops[fleet.OpHostile].Errors, rep.ErrorSamples)
	}
	// The report is the product: it must round-trip as JSON with the
	// schema marker intact.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report marshal: %v", err)
	}
	var back fleet.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report round-trip: %v", err)
	}
	if back.Schema != fleet.ReportSchema {
		t.Fatalf("schema %q, want %q", back.Schema, fleet.ReportSchema)
	}
	if strings.Contains(string(raw), "NaN") {
		t.Fatal("report leaks NaN")
	}
}

// soakShard is one in-process relsynd for the cluster scenario.
type soakShard struct {
	addr string
	srv  *server.Server
	ts   *httptest.Server
}

func (sh *soakShard) kill() {
	sh.ts.CloseClientConnections()
	sh.ts.Close()
	sh.srv.Close()
}

// bootSoakCluster claims listeners first (so membership is known before
// traffic), then starts n cluster-aware shards plus one router.
func bootSoakCluster(t *testing.T, n int) (shards []*soakShard, routerURL string, scrape []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		sh := &soakShard{addr: ln.Addr().String()}
		sh.srv = server.New(server.Config{
			Workers:  4,
			Metrics:  obs.NewRegistry(),
			Peers:    peers,
			SelfAddr: sh.addr,
		})
		sh.ts = &httptest.Server{Listener: ln, Config: &http.Server{Handler: sh.srv.Handler()}}
		sh.ts.Start()
		shards = append(shards, sh)
		t.Cleanup(func() {
			defer func() { recover() }() // the killed shard closes twice
			sh.ts.Close()
			sh.srv.Close()
		})
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{Peers: peers, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	scrape = append(scrape, rts.URL)
	for _, sh := range shards {
		scrape = append(scrape, sh.ts.URL)
	}
	return shards, rts.URL, scrape
}

// TestFleetClusterKillOneMidSoak is the acceptance scenario: a 3-shard
// cluster under the full default mix, one shard killed mid-soak. The
// run must still end with verdict pass and zero lost accepted jobs —
// sync/batch traffic fails over inside the router, and async jobs that
// died with the victim are recovered by the harness's idempotent
// resubmit.
func TestFleetClusterKillOneMidSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	shards, routerURL, scrape := bootSoakCluster(t, 3)

	killed := make(chan struct{})
	go func() {
		time.Sleep(1200 * time.Millisecond)
		shards[0].kill()
		close(killed)
	}()

	rep, err := fleet.Run(context.Background(), fleet.Config{
		Driver:        testDriver(t, routerURL),
		ScrapeTargets: scrape,
		Pool:          testPool(t),
		Duration:      3500 * time.Millisecond,
		Rate:          100,
		Seed:          23,
		ReqTimeout:    15 * time.Second,
		SLO: fleet.SLO{
			P99:                 8 * time.Second,
			MaxErrorRate:        0.02,
			ExpectNoLoopsBroken: true,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	raw, _ := json.MarshalIndent(rep, "", "  ")
	if rep.Verdict != "pass" {
		t.Fatalf("verdict %q, want pass:\n%s", rep.Verdict, raw)
	}
	if rep.Lost != 0 {
		t.Fatalf("lost = %d, want 0:\n%s", rep.Lost, raw)
	}
	if rep.Accepted == 0 || rep.Accepted != rep.Resolved {
		t.Fatalf("accepted=%d resolved=%d:\n%s", rep.Accepted, rep.Resolved, raw)
	}
	// The differ must have noticed the corpse instead of folding a giant
	// negative delta into the fleet sums.
	if len(rep.LostTargets) != 1 || rep.LostTargets[0] != shards[0].ts.URL {
		t.Fatalf("lost_targets = %v, want [%s]", rep.LostTargets, shards[0].ts.URL)
	}
	// The kill happened a third of the way in at 100 ops/s: traffic must
	// actually have crossed the failure.
	if total, _ := repTotals(rep); total < 100 {
		t.Fatalf("only %d completed ops — soak too thin to prove anything", total)
	}
	if rep.MetricsDelta.Sum("relsyn_cluster_failovers_total") < 1 {
		t.Fatalf("no failovers recorded — the kill never bit:\n%s", raw)
	}
}

// TestFleetSingleNodeRestartMidSoak pins the differ's restart
// classification end to end: a shard that dies and comes back on the
// same address scrapes cleanly on both sides but with uptime and
// counters rewound. It must land in reset_targets — alive — with its
// post-restart deltas counted from zero, not in lost_targets.
func TestFleetSingleNodeRestartMidSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	boot := func(ln net.Listener) *soakShard {
		sh := &soakShard{addr: addr}
		sh.srv = server.New(server.Config{Workers: 4, Metrics: obs.NewRegistry()})
		sh.ts = &httptest.Server{Listener: ln, Config: &http.Server{Handler: sh.srv.Handler()}}
		sh.ts.Start()
		return sh
	}
	sh := boot(ln)
	url := sh.ts.URL
	t.Cleanup(func() {
		defer func() { recover() }() // the restarted-over shard closes twice
		sh.ts.Close()
		sh.srv.Close()
	})

	// Age the first incarnation so its before-snapshot uptime exceeds the
	// whole soak: the replacement's uptime then reads as a rewind even
	// though the replacement serves for most of the run.
	time.Sleep(2 * time.Second)

	restarted := make(chan *soakShard, 1)
	go func() {
		defer close(restarted)
		time.Sleep(400 * time.Millisecond)
		sh.kill()
		// A restarted daemon keeps its address; the freed port may need a
		// few retries to rebind.
		for i := 0; i < 100; i++ {
			ln2, err := net.Listen("tcp", addr)
			if err == nil {
				restarted <- boot(ln2)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	rep, err := fleet.Run(context.Background(), fleet.Config{
		Driver:        testDriver(t, url),
		ScrapeTargets: []string{url},
		Pool:          testPool(t),
		Duration:      1500 * time.Millisecond,
		Rate:          100,
		Seed:          31,
		// The restart window drops in-flight ops and kills accepted async
		// jobs with the process; this test certifies the differ, not the
		// zero-loss SLO (that one is the cluster kill scenario's job).
		SLO:  fleet.SLO{P99: 15 * time.Second, MaxErrorRate: 1},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh2, ok := <-restarted
	if !ok || sh2 == nil {
		t.Fatal("shard never came back on its address")
	}
	t.Cleanup(func() { sh2.ts.Close(); sh2.srv.Close() })

	raw, _ := json.MarshalIndent(rep, "", "  ")
	if len(rep.ResetTargets) != 1 || rep.ResetTargets[0] != url {
		t.Fatalf("reset_targets = %v, want [%s]:\n%s", rep.ResetTargets, url, raw)
	}
	if len(rep.LostTargets) != 0 {
		t.Fatalf("lost_targets = %v — restarted shard misclassified as dead:\n%s", rep.LostTargets, raw)
	}
	for key, v := range rep.MetricsDelta {
		if v < 0 {
			t.Fatalf("metrics delta %s = %v — restart folded in as a negative delta:\n%s", key, v, raw)
		}
	}
	if rep.MetricsDelta.Sum("relsyn_http_requests_total") < 1 {
		t.Fatalf("no post-restart requests counted — reset deltas were dropped:\n%s", raw)
	}
}

func repTotals(rep *fleet.Report) (total, errs int64) {
	for _, c := range rep.Ops {
		total += c.OK + c.JobFailures + c.Backpressure + c.Rejected + c.Errors
		errs += c.Errors
	}
	return
}
