package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"
)

// TargetSnapshot is one node's observable state at an instant: its
// /metrics exposition parsed into a Series and its /statsz document
// flattened to dotted numeric keys ("queue.enqueued", "cache.hits", …).
// Scrape failures are recorded, not fatal — a killed shard is an
// expected snapshot outcome mid-soak, and the differ accounts for it.
type TargetSnapshot struct {
	Target  string   `json:"target"`
	Errs    []string `json:"errs,omitempty"`
	Metrics Series   `json:"-"`
	Statsz  Series   `json:"-"`
}

// OK reports whether both endpoints scraped cleanly.
func (ts *TargetSnapshot) OK() bool { return len(ts.Errs) == 0 }

// ScrapeTargets snapshots every target concurrently. The returned slice
// is parallel to targets.
func ScrapeTargets(ctx context.Context, hc *http.Client, targets []string) []TargetSnapshot {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	out := make([]TargetSnapshot, len(targets))
	done := make(chan int, len(targets))
	for i, t := range targets {
		go func(i int, t string) {
			out[i] = scrapeOne(ctx, hc, t)
			done <- i
		}(i, t)
	}
	for range targets {
		<-done
	}
	return out
}

func scrapeOne(ctx context.Context, hc *http.Client, target string) TargetSnapshot {
	ts := TargetSnapshot{Target: target, Metrics: Series{}, Statsz: Series{}}
	if body, err := fetch(ctx, hc, target+"/metrics"); err != nil {
		ts.Errs = append(ts.Errs, fmt.Sprintf("metrics: %v", err))
	} else if series, err := ParsePrometheus(body); err != nil {
		body.Close()
		ts.Errs = append(ts.Errs, fmt.Sprintf("metrics: %v", err))
	} else {
		body.Close()
		ts.Metrics = series
	}
	if body, err := fetch(ctx, hc, target+"/statsz"); err != nil {
		ts.Errs = append(ts.Errs, fmt.Sprintf("statsz: %v", err))
	} else {
		raw, rerr := io.ReadAll(io.LimitReader(body, 4<<20))
		body.Close()
		if rerr != nil {
			ts.Errs = append(ts.Errs, fmt.Sprintf("statsz: %v", rerr))
		} else {
			var doc map[string]any
			if jerr := json.Unmarshal(raw, &doc); jerr != nil {
				// This is the contract satellite-tested in internal/server
				// and internal/cluster: /statsz must stay parseable JSON.
				ts.Errs = append(ts.Errs, fmt.Sprintf("statsz: invalid JSON: %v", jerr))
			} else {
				flattenJSON("", doc, ts.Statsz)
			}
		}
	}
	return ts
}

func fetch(ctx context.Context, hc *http.Client, url string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return resp.Body, nil
}

// flattenJSON folds a decoded JSON document into dotted numeric keys.
// Arrays and strings are skipped (the differ wants countable state, not
// identity), bools become 0/1, and the registry mirror under "metrics"
// is skipped too — the Prometheus side already carries those series
// with label structure intact.
func flattenJSON(prefix string, v any, out Series) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if prefix == "" && k == "metrics" {
				continue
			}
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenJSON(key, x[k], out)
		}
	case float64:
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out[prefix] = x
		}
	case bool:
		if x {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	}
}

// FleetDelta folds per-target deltas into one fleet-wide view. Only
// targets that scraped cleanly on BOTH sides contribute full deltas — a
// target present before but unreachable after (a killed shard) is
// listed in lost instead of polluting the sums with a giant negative
// delta. A target that scraped cleanly but restarted between the two
// snapshots (its counters went backwards, or its uptime did) is alive,
// not dead: it is listed in reset and its post-restart deltas are
// counted from zero instead of being dropped — the standard monotonic
// counter-reset treatment. Work accumulated before the restart and lost
// with the old process is inherently unrecoverable and undercounted.
func FleetDelta(before, after []TargetSnapshot) (metrics, statsz Series, reset, lost []string) {
	prior := make(map[string]*TargetSnapshot, len(before))
	for i := range before {
		prior[before[i].Target] = &before[i]
	}
	metrics, statsz = Series{}, Series{}
	for i := range after {
		a := &after[i]
		b, had := prior[a.Target]
		if !had {
			continue
		}
		if !a.OK() || !b.OK() {
			lost = append(lost, a.Target)
			continue
		}
		if resetDetected(b, a) {
			reset = append(reset, a.Target)
			metrics.Merge(a.Metrics.Delta(Series{}))
			statsz.Merge(a.Statsz.Delta(Series{}))
			continue
		}
		metrics.Merge(a.Metrics.Delta(b.Metrics))
		statsz.Merge(a.Statsz.Delta(b.Statsz))
	}
	sort.Strings(reset)
	sort.Strings(lost)
	return metrics, statsz, reset, lost
}

// resetDetected reports whether a target restarted between two clean
// scrapes: its /statsz uptime went backwards, or any Prometheus counter
// (a `_total`-suffixed series) decreased. Counters the restart happened
// to leave below their prior values are the only decreasing series a
// healthy monotonic exporter can produce.
func resetDetected(before, after *TargetSnapshot) bool {
	if ub, ok := before.Statsz["uptime_seconds"]; ok {
		if ua, ok2 := after.Statsz["uptime_seconds"]; ok2 && ua < ub {
			return true
		}
	}
	for key, bv := range before.Metrics {
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasSuffix(name, "_total") {
			continue
		}
		if av, ok := after.Metrics[key]; ok && av < bv {
			return true
		}
	}
	return false
}
