package fleet

import (
	"fmt"
	"time"
)

// SLO is the rule set a run is judged against. Zero-valued rate/latency
// rules are skipped (reported with Skipped=true, never failed); the
// lost-jobs rule always evaluates — "zero lost accepted jobs" is the
// fleet's reason to exist and must not be silently waivable.
type SLO struct {
	// P99 bounds the p99 of client-observed sync latencies (hot + grid
	// ops, full-sample — not the server's sliding-window histogram; see
	// the metric-catalog caveat in the README). Zero skips the rule.
	P99 time.Duration
	// MaxErrorRate ceilings unexpected failures per completed op.
	// Backpressure (429 through every retry) and hostile rejections are
	// classified separately and do not count as errors. Zero means
	// "no errors tolerated" — it still evaluates.
	MaxErrorRate float64
	// SkipErrorRate disables the error-rate rule entirely (MaxErrorRate
	// zero is a real, strict ceiling, so skipping needs its own flag).
	SkipErrorRate bool
	// MinCacheHitRate floors fleet-wide delta hit-rate
	// (Δhits/(Δhits+Δmisses) from relsyn_cache_* counters). Zero skips;
	// the rule is also skipped when no cache traffic was observed.
	MinCacheHitRate float64
	// MaxLostJobs ceilings accepted-but-unresolved jobs. Always
	// evaluated; the production bar is 0.
	MaxLostJobs int64
	// ExpectNoLoopsBroken asserts Δrelsyn_cluster_loops_broken_total==0:
	// healthy topologies never trip the forwarding-loop breaker.
	ExpectNoLoopsBroken bool
	// ExpectNoBreakerTrips asserts Δrelsyn_store_breaker_trips_total==0:
	// the durable store must not brown out under the driven load.
	ExpectNoBreakerTrips bool
}

// Verdict is one evaluated SLO rule.
type Verdict struct {
	Name      string  `json:"name"`
	Pass      bool    `json:"pass"`
	Skipped   bool    `json:"skipped,omitempty"`
	Observed  float64 `json:"observed"`
	Threshold float64 `json:"threshold"`
	Detail    string  `json:"detail,omitempty"`
}

// evaluate renders the rule set against a built report (its counters,
// latency summaries, and metrics delta must already be populated) and
// returns the verdicts plus the overall pass flag: every non-skipped
// rule must pass.
func (s SLO) evaluate(rep *Report) ([]Verdict, bool) {
	var out []Verdict
	add := func(v Verdict) { out = append(out, v) }

	// p99_latency: client-observed sync path.
	{
		v := Verdict{Name: "p99_latency_seconds", Threshold: s.P99.Seconds()}
		lat, ok := rep.Latency["sync"]
		switch {
		case s.P99 <= 0:
			v.Skipped, v.Pass = true, true
			v.Detail = "no p99 bound configured"
		case !ok || lat.Count == 0:
			v.Skipped, v.Pass = true, true
			v.Detail = "no sync latency samples"
		default:
			v.Observed = lat.P99Seconds
			v.Pass = v.Observed <= v.Threshold
			v.Detail = fmt.Sprintf("%d samples", lat.Count)
		}
		add(v)
	}

	// error_rate: unexpected failures over completed ops.
	{
		v := Verdict{Name: "error_rate", Threshold: s.MaxErrorRate}
		total, errs := rep.totals()
		switch {
		case s.SkipErrorRate:
			v.Skipped, v.Pass = true, true
			v.Detail = "rule disabled"
		case total == 0:
			v.Skipped, v.Pass = true, true
			v.Detail = "no completed ops"
		default:
			v.Observed = float64(errs) / float64(total)
			v.Pass = v.Observed <= v.Threshold
			v.Detail = fmt.Sprintf("%d errors / %d ops", errs, total)
		}
		add(v)
	}

	// cache_hit_rate: server-side, fleet-wide delta.
	{
		v := Verdict{Name: "cache_hit_rate", Threshold: s.MinCacheHitRate}
		hits := rep.MetricsDelta.Sum("relsyn_cache_hits_total")
		misses := rep.MetricsDelta.Sum("relsyn_cache_misses_total")
		switch {
		case s.MinCacheHitRate <= 0:
			v.Skipped, v.Pass = true, true
			v.Detail = "no hit-rate floor configured"
		case hits+misses == 0:
			v.Skipped, v.Pass = true, true
			v.Detail = "no cache traffic observed (cache disabled or counters unscraped)"
		default:
			v.Observed = hits / (hits + misses)
			v.Pass = v.Observed >= v.Threshold
			v.Detail = fmt.Sprintf("Δhits=%.0f Δmisses=%.0f", hits, misses)
		}
		add(v)
	}

	// lost_accepted_jobs: always on.
	{
		v := Verdict{
			Name:      "lost_accepted_jobs",
			Threshold: float64(s.MaxLostJobs),
			Observed:  float64(rep.Lost),
			Detail:    fmt.Sprintf("accepted=%d resolved=%d", rep.Accepted, rep.Resolved),
		}
		v.Pass = rep.Lost <= s.MaxLostJobs
		add(v)
	}

	// loops_broken / breaker_trips: expected-zero cluster health counters.
	for _, rule := range []struct {
		name, series string
		on           bool
	}{
		{"loops_broken", "relsyn_cluster_loops_broken_total", s.ExpectNoLoopsBroken},
		{"breaker_trips", "relsyn_store_breaker_trips_total", s.ExpectNoBreakerTrips},
	} {
		v := Verdict{Name: rule.name, Threshold: 0, Observed: rep.MetricsDelta.Sum(rule.series)}
		if !rule.on {
			v.Skipped, v.Pass = true, true
			v.Detail = "rule disabled"
		} else {
			v.Pass = v.Observed == 0
			v.Detail = "Δ" + rule.series
		}
		add(v)
	}

	pass := true
	for _, v := range out {
		if !v.Skipped && !v.Pass {
			pass = false
		}
	}
	return out, pass
}
