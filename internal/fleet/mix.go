package fleet

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Traffic kinds the scheduler can emit.
const (
	OpHot     = "hot"     // Zipf-skewed sync requests over the pinned pool
	OpGrid    = "grid"    // uniform round-robin sweep of the full C^f/DC grid
	OpBatch   = "batch"   // one POST /v1/synth/batch of BatchSize Zipf draws
	OpAsync   = "async"   // submit-then-poll wave (wait=false + job polling)
	OpHostile = "hostile" // malformed / empty / bad-options / oversized bodies
)

var opKinds = []string{OpHot, OpGrid, OpBatch, OpAsync, OpHostile}

// Mix maps traffic kind → relative weight. Weights need not sum to 1;
// they are normalized. A missing or zero-weight kind is simply never
// scheduled.
type Mix map[string]float64

// DefaultMix approximates a production front door: mostly hot-key sync
// traffic, a steady grid sweep, periodic batch bursts and async waves,
// and a trickle of hostile input.
func DefaultMix() Mix {
	return Mix{OpHot: 0.50, OpGrid: 0.10, OpBatch: 0.15, OpAsync: 0.20, OpHostile: 0.05}
}

// ParseMix parses "hot=0.5,batch=0.2,..." (CLI form). Unknown kinds and
// negative weights are errors.
func ParseMix(s string) (Mix, error) {
	m := Mix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fleet: mix entry %q: want kind=weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: mix entry %q: %v", part, err)
		}
		m[strings.TrimSpace(kind)] = w
	}
	return m, nil
}

func (m Mix) validate() error {
	sum := 0.0
	for kind, w := range m {
		known := false
		for _, k := range opKinds {
			if kind == k {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("fleet: unknown mix kind %q (want one of %s)", kind, strings.Join(opKinds, "/"))
		}
		if w < 0 {
			return fmt.Errorf("fleet: mix kind %q has negative weight %v", kind, w)
		}
		sum += w
	}
	if sum <= 0 {
		return fmt.Errorf("fleet: mix has no positive weights")
	}
	return nil
}

// op is one scheduled unit of traffic.
type op struct {
	kind    string
	spec    int   // pool index (hot/grid/async)
	batch   []int // pool indices (batch)
	hostile int   // hostile subtype index
}

// scheduler draws a deterministic op stream: all randomness flows from
// one seeded source, so the same (pool, mix, seed) triple replays the
// same arrival sequence — the property that makes soak regressions
// bisectable.
type scheduler struct {
	rng       *rand.Rand
	kinds     []string
	cum       []float64 // cumulative normalized weights, parallel to kinds
	zipf      *rand.Zipf
	perm      []int // seeded hot-rank permutation of pool indices
	poolSize  int
	batchSize int
	grid      int // round-robin cursor for OpGrid
	uni       int // round-robin cursor for OpAsync
	hostile   int // cycling cursor over hostile subtypes
	nHostile  int
}

func newScheduler(poolSize int, mix Mix, batchSize int, zipfS float64, seed int64, nHostile int) (*scheduler, error) {
	if poolSize < 1 {
		return nil, fmt.Errorf("fleet: empty spec pool")
	}
	if err := mix.validate(); err != nil {
		return nil, err
	}
	if zipfS <= 1 {
		return nil, fmt.Errorf("fleet: zipf exponent %v must be > 1", zipfS)
	}
	if batchSize < 1 {
		return nil, fmt.Errorf("fleet: batch size %d < 1", batchSize)
	}
	kinds := make([]string, 0, len(mix))
	for kind, w := range mix {
		if w > 0 {
			kinds = append(kinds, kind)
		}
	}
	sort.Strings(kinds) // map order must not leak into the op stream
	sum := 0.0
	for _, k := range kinds {
		sum += mix[k]
	}
	cum := make([]float64, len(kinds))
	acc := 0.0
	for i, k := range kinds {
		acc += mix[k] / sum
		cum[i] = acc
	}
	cum[len(cum)-1] = 1.0 // absorb rounding
	rng := rand.New(rand.NewSource(seed))
	// A single-spec pool has no rank distribution to draw from: imax=0
	// makes NewZipf return nil on some Go releases and the first draw
	// panic. Leave zipf nil and let hotIdx short-circuit to the one spec.
	var zipf *rand.Zipf
	if poolSize > 1 {
		zipf = rand.NewZipf(rng, zipfS, 1, uint64(poolSize-1))
	}
	sc := &scheduler{
		rng:       rng,
		kinds:     kinds,
		cum:       cum,
		zipf:      zipf,
		perm:      rng.Perm(poolSize),
		poolSize:  poolSize,
		batchSize: batchSize,
		nHostile:  nHostile,
	}
	return sc, nil
}

// hotIdx draws a Zipf-ranked pool index: rank r (r=0 hottest) maps
// through the seeded permutation so the hot set differs per seed.
func (s *scheduler) hotIdx() int {
	if s.zipf == nil { // poolSize == 1: every rank is the one spec
		return s.perm[0]
	}
	return s.perm[int(s.zipf.Uint64())]
}

func (s *scheduler) next() op {
	r := s.rng.Float64()
	kind := s.kinds[len(s.kinds)-1]
	for i, c := range s.cum {
		if r < c {
			kind = s.kinds[i]
			break
		}
	}
	switch kind {
	case OpHot:
		return op{kind: kind, spec: s.hotIdx()}
	case OpGrid:
		idx := s.grid % s.poolSize
		s.grid++
		return op{kind: kind, spec: idx}
	case OpBatch:
		b := make([]int, s.batchSize)
		for i := range b {
			b[i] = s.hotIdx()
		}
		return op{kind: kind, batch: b}
	case OpAsync:
		// Round-robin (offset from grid's cursor) so async waves queue
		// real work instead of riding the hot keys' cache entries.
		idx := (s.uni*7 + 3) % s.poolSize
		s.uni++
		return op{kind: kind, spec: idx}
	default: // OpHostile
		idx := s.hostile % s.nHostile
		s.hostile++
		return op{kind: kind, hostile: idx}
	}
}
