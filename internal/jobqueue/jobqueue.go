// Package jobqueue is a bounded, priority-ordered FIFO for synthesis
// jobs with per-job context deadlines and explicit backpressure.
//
// Semantics:
//
//   - Bounded: Enqueue on a full queue fails immediately with ErrFull —
//     backpressure is the caller's signal to shed load (the HTTP front
//     end maps it to 429 + Retry-After).
//   - Priority: higher Item.Priority dequeues first; items of equal
//     priority dequeue in arrival order (stable FIFO via sequence
//     numbers), so the queue degenerates to a plain FIFO when all
//     priorities are equal.
//   - Deadlines: an Item may carry a context; items whose context is
//     already done when they reach the head are dropped (counted in
//     Stats.Expired, with the item's OnExpire hook invoked) instead of
//     being handed to a worker — a job that waited out its deadline in
//     the queue must not consume worker time.
//   - Drain: Close stops admissions but lets consumers drain the
//     backlog; Dequeue returns ErrClosed only once the queue is both
//     closed and empty. This is the graceful-shutdown half of the
//     service's SIGTERM handling.
package jobqueue

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"time"

	"relsyn/internal/obs"
)

// Queue-state errors.
var (
	// ErrFull is returned by Enqueue when the queue is at capacity.
	ErrFull = errors.New("jobqueue: queue full")
	// ErrClosed is returned by Enqueue after Close, and by Dequeue once
	// the queue is closed and drained.
	ErrClosed = errors.New("jobqueue: queue closed")
	// ErrExpired is the typed cause for items dropped because their
	// context deadline passed while they were queued. The queue never
	// hands such an item to a consumer; it invokes the item's OnExpire
	// hook, whose owner should surface an error wrapping ErrExpired to
	// the item's waiters (internal/server does exactly that).
	ErrExpired = errors.New("jobqueue: item deadline expired in queue")
)

// Item is one queued unit of work.
type Item struct {
	// ID identifies the job for logs and observability.
	ID string
	// Priority orders dequeues: higher first, FIFO within a level.
	Priority int
	// Ctx, when non-nil, carries the job's deadline/cancellation. Items
	// whose context is done at dequeue time are dropped as expired.
	Ctx context.Context
	// OnExpire, when non-nil, is called (outside the queue lock) when the
	// item is dropped because its context was done.
	OnExpire func()
	// Payload is the caller's work description.
	Payload any
	// EnqueuedAt is stamped by Enqueue.
	EnqueuedAt time.Time

	seq uint64
}

// Stats are monotonic queue counters plus current occupancy.
type Stats struct {
	Depth    int   `json:"depth"`    // configured capacity
	Len      int   `json:"len"`      // current occupancy
	MaxLen   int   `json:"max_len"`  // high-water mark
	Enqueued int64 `json:"enqueued"` // accepted items
	Dequeued int64 `json:"dequeued"` // items handed to consumers
	Rejected int64 `json:"rejected"` // ErrFull admissions
	Expired  int64 `json:"expired"`  // deadline drops
	Dropped  int64 `json:"dropped"`  // fault-hook drops (chaos)
}

// FaultHook intercepts queue operations for fault injection
// (internal/chaos). Both methods run outside the queue lock and must be
// safe for concurrent use. A nil hook (the default) is a no-op.
type FaultHook interface {
	// Admit may veto an Enqueue before the item is considered: a non-nil
	// error is returned to the caller verbatim (wrap ErrFull to exercise
	// the backpressure path).
	Admit(it *Item) error
	// Deliver runs as a dequeued item is about to be handed to a
	// consumer. Returning false drops the item: it is counted under
	// relsyn_queue_rejections_total{reason="dropped"} and its OnExpire
	// hook fires, so the item's waiters still reach a terminal state
	// through the owner's deadline machinery. Deliver may sleep to
	// inject queue latency.
	Deliver(it *Item) bool
}

// queueMetrics are the queue's exported series. Counters are the
// authoritative storage (Stats derives from them); occupancy is a
// callback gauge so it can never drift from len(h).
type queueMetrics struct {
	enqueued      obs.Counter
	dequeued      obs.Counter
	rejectFull    obs.Counter
	rejectExpired obs.Counter
	rejectDropped obs.Counter
	wait          obs.Histogram // seconds between Enqueue and Dequeue
}

// Queue is a bounded priority FIFO. The zero value is unusable; use New.
type Queue struct {
	mu     sync.Mutex
	notify chan struct{} // closed and replaced on every state change
	h      itemHeap
	depth  int
	seq    uint64
	closed bool
	maxLen int
	m      queueMetrics

	hookMu sync.RWMutex
	hook   FaultHook
}

// New returns an empty queue with the given capacity (minimum 1),
// instrumented on the default observability registry.
func New(depth int) *Queue { return NewWithRegistry(depth, obs.Default) }

// NewWithRegistry is New with an explicit metrics registry (tests pass a
// fresh registry for isolation; nil disables registration but the queue
// still counts internally for Stats).
func NewWithRegistry(depth int, reg *obs.Registry) *Queue {
	if depth < 1 {
		depth = 1
	}
	q := &Queue{
		notify: make(chan struct{}),
		depth:  depth,
	}
	if reg != nil {
		reg.SetHelp("relsyn_queue_depth", "Current job-queue occupancy.")
		reg.SetHelp("relsyn_queue_capacity", "Configured job-queue capacity.")
		reg.SetHelp("relsyn_queue_wait_seconds", "Time jobs spent queued before dispatch.")
		reg.SetHelp("relsyn_queue_enqueued_total", "Jobs admitted to the queue.")
		reg.SetHelp("relsyn_queue_dequeued_total", "Jobs handed to workers.")
		reg.SetHelp("relsyn_queue_rejections_total", "Jobs the queue refused to run, by reason (full = backpressure at admission, expired = deadline passed while queued).")
		reg.GaugeFunc("relsyn_queue_depth", func() float64 { return float64(q.Len()) })
		reg.GaugeFunc("relsyn_queue_capacity", func() float64 { return float64(depth) })
		reg.RegisterCounter("relsyn_queue_enqueued_total", &q.m.enqueued)
		reg.RegisterCounter("relsyn_queue_dequeued_total", &q.m.dequeued)
		reg.RegisterCounter("relsyn_queue_rejections_total", &q.m.rejectFull, obs.L("reason", "full"))
		reg.RegisterCounter("relsyn_queue_rejections_total", &q.m.rejectExpired, obs.L("reason", "expired"))
		reg.RegisterCounter("relsyn_queue_rejections_total", &q.m.rejectDropped, obs.L("reason", "dropped"))
		reg.RegisterHistogram("relsyn_queue_wait_seconds", &q.m.wait)
	}
	return q
}

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook. Intended for chaos tests; call before the queue is shared or
// accept that in-flight operations may miss the change.
func (q *Queue) SetFaultHook(h FaultHook) {
	q.hookMu.Lock()
	q.hook = h
	q.hookMu.Unlock()
}

func (q *Queue) faultHook() FaultHook {
	q.hookMu.RLock()
	defer q.hookMu.RUnlock()
	return q.hook
}

// Enqueue admits it or fails fast with ErrFull / ErrClosed. It never
// blocks. Enqueue is safe to call concurrently with Close: an admission
// racing a shutdown loses with the typed ErrClosed, never a panic — the
// queue's waiter wakeup is a mutex-guarded replace-on-close channel, so
// no send ever races a close.
func (q *Queue) Enqueue(it *Item) error {
	if it == nil {
		return errors.New("jobqueue: nil item")
	}
	if h := q.faultHook(); h != nil {
		if err := h.Admit(it); err != nil {
			if errors.Is(err, ErrFull) {
				q.m.rejectFull.Inc()
			} else {
				q.m.rejectDropped.Inc()
			}
			return err
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if len(q.h) >= q.depth {
		q.m.rejectFull.Inc()
		return ErrFull
	}
	q.seq++
	it.seq = q.seq
	it.EnqueuedAt = time.Now()
	heap.Push(&q.h, it)
	q.m.enqueued.Inc()
	if len(q.h) > q.maxLen {
		q.maxLen = len(q.h)
	}
	q.broadcastLocked()
	return nil
}

// Dequeue blocks until an item is available, the queue is closed and
// drained (ErrClosed), or ctx is done (ctx.Err()). An item whose
// deadline already expired is never returned: it is counted as a
// rejection (Stats.Expired, relsyn_queue_rejections_total{reason=
// "expired"}) and its OnExpire hook runs on the dequeuing goroutine —
// the hook's owner is responsible for failing the item's waiters with an
// error wrapping ErrExpired. The dequeuer then continues to the next
// live item.
func (q *Queue) Dequeue(ctx context.Context) (*Item, error) {
	for {
		q.mu.Lock()
		var expired []*Item
		var deliver *Item
		for len(q.h) > 0 {
			it := heap.Pop(&q.h).(*Item)
			if it.Ctx != nil && it.Ctx.Err() != nil {
				q.m.rejectExpired.Inc()
				expired = append(expired, it)
				continue
			}
			deliver = it
			break
		}
		if deliver != nil {
			q.mu.Unlock()
			runExpiry(expired)
			// The fault hook runs outside the lock: it may sleep (latency
			// injection) or drop the item (lossy-queue fault). A dropped
			// item still fires OnExpire so its waiters reach a terminal
			// state through the owner's deadline machinery.
			if h := q.faultHook(); h != nil && !h.Deliver(deliver) {
				q.m.rejectDropped.Inc()
				if deliver.OnExpire != nil {
					deliver.OnExpire()
				}
				continue
			}
			q.m.dequeued.Inc()
			q.m.wait.Observe(time.Since(deliver.EnqueuedAt).Seconds())
			return deliver, nil
		}
		closed := q.closed
		ch := q.notify
		q.mu.Unlock()
		runExpiry(expired)
		if closed {
			return nil, ErrClosed
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ch:
		}
	}
}

func runExpiry(items []*Item) {
	for _, it := range items {
		if it.OnExpire != nil {
			it.OnExpire()
		}
	}
}

// Close stops admissions. Queued items remain dequeueable; consumers see
// ErrClosed once the backlog is drained. Close is idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.broadcastLocked()
}

// Len returns the current occupancy.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h)
}

// Stats returns a snapshot of the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Depth:    q.depth,
		Len:      len(q.h),
		MaxLen:   q.maxLen,
		Enqueued: q.m.enqueued.Value(),
		Dequeued: q.m.dequeued.Value(),
		Rejected: q.m.rejectFull.Value(),
		Expired:  q.m.rejectExpired.Value(),
		Dropped:  q.m.rejectDropped.Value(),
	}
}

// broadcastLocked wakes every waiter. Callers hold q.mu.
func (q *Queue) broadcastLocked() {
	close(q.notify)
	q.notify = make(chan struct{})
}

// itemHeap orders by (Priority desc, seq asc).
type itemHeap []*Item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)   { *h = append(*h, x.(*Item)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
