// Package jobqueue is a bounded, priority-ordered FIFO for synthesis
// jobs with per-job context deadlines and explicit backpressure.
//
// Semantics:
//
//   - Bounded: Enqueue on a full queue fails immediately with ErrFull —
//     backpressure is the caller's signal to shed load (the HTTP front
//     end maps it to 429 + Retry-After).
//   - Priority: higher Item.Priority dequeues first; items of equal
//     priority dequeue in arrival order (stable FIFO via sequence
//     numbers), so the queue degenerates to a plain FIFO when all
//     priorities are equal.
//   - Deadlines: an Item may carry a context; items whose context is
//     already done when they reach the head are dropped (counted in
//     Stats.Expired, with the item's OnExpire hook invoked) instead of
//     being handed to a worker — a job that waited out its deadline in
//     the queue must not consume worker time.
//   - Drain: Close stops admissions but lets consumers drain the
//     backlog; Dequeue returns ErrClosed only once the queue is both
//     closed and empty. This is the graceful-shutdown half of the
//     service's SIGTERM handling.
package jobqueue

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"time"
)

// Queue-state errors.
var (
	// ErrFull is returned by Enqueue when the queue is at capacity.
	ErrFull = errors.New("jobqueue: queue full")
	// ErrClosed is returned by Enqueue after Close, and by Dequeue once
	// the queue is closed and drained.
	ErrClosed = errors.New("jobqueue: queue closed")
)

// Item is one queued unit of work.
type Item struct {
	// ID identifies the job for logs and observability.
	ID string
	// Priority orders dequeues: higher first, FIFO within a level.
	Priority int
	// Ctx, when non-nil, carries the job's deadline/cancellation. Items
	// whose context is done at dequeue time are dropped as expired.
	Ctx context.Context
	// OnExpire, when non-nil, is called (outside the queue lock) when the
	// item is dropped because its context was done.
	OnExpire func()
	// Payload is the caller's work description.
	Payload any
	// EnqueuedAt is stamped by Enqueue.
	EnqueuedAt time.Time

	seq uint64
}

// Stats are monotonic queue counters plus current occupancy.
type Stats struct {
	Depth    int   `json:"depth"`    // configured capacity
	Len      int   `json:"len"`      // current occupancy
	MaxLen   int   `json:"max_len"`  // high-water mark
	Enqueued int64 `json:"enqueued"` // accepted items
	Dequeued int64 `json:"dequeued"` // items handed to consumers
	Rejected int64 `json:"rejected"` // ErrFull admissions
	Expired  int64 `json:"expired"`  // deadline drops
}

// Queue is a bounded priority FIFO. The zero value is unusable; use New.
type Queue struct {
	mu     sync.Mutex
	notify chan struct{} // closed and replaced on every state change
	h      itemHeap
	depth  int
	seq    uint64
	closed bool
	stats  Stats
}

// New returns an empty queue with the given capacity (minimum 1).
func New(depth int) *Queue {
	if depth < 1 {
		depth = 1
	}
	return &Queue{
		notify: make(chan struct{}),
		depth:  depth,
		stats:  Stats{Depth: depth},
	}
}

// Enqueue admits it or fails fast with ErrFull / ErrClosed. It never
// blocks.
func (q *Queue) Enqueue(it *Item) error {
	if it == nil {
		return errors.New("jobqueue: nil item")
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if len(q.h) >= q.depth {
		q.stats.Rejected++
		return ErrFull
	}
	q.seq++
	it.seq = q.seq
	it.EnqueuedAt = time.Now()
	heap.Push(&q.h, it)
	q.stats.Enqueued++
	if len(q.h) > q.stats.MaxLen {
		q.stats.MaxLen = len(q.h)
	}
	q.broadcastLocked()
	return nil
}

// Dequeue blocks until an item is available, the queue is closed and
// drained (ErrClosed), or ctx is done (ctx.Err()). Expired items are
// dropped transparently; their OnExpire hooks run on the dequeuing
// goroutine before it continues waiting.
func (q *Queue) Dequeue(ctx context.Context) (*Item, error) {
	for {
		q.mu.Lock()
		var expired []*Item
		for len(q.h) > 0 {
			it := heap.Pop(&q.h).(*Item)
			if it.Ctx != nil && it.Ctx.Err() != nil {
				q.stats.Expired++
				expired = append(expired, it)
				continue
			}
			q.stats.Dequeued++
			q.mu.Unlock()
			runExpiry(expired)
			return it, nil
		}
		closed := q.closed
		ch := q.notify
		q.mu.Unlock()
		runExpiry(expired)
		if closed {
			return nil, ErrClosed
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ch:
		}
	}
}

func runExpiry(items []*Item) {
	for _, it := range items {
		if it.OnExpire != nil {
			it.OnExpire()
		}
	}
}

// Close stops admissions. Queued items remain dequeueable; consumers see
// ErrClosed once the backlog is drained. Close is idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.broadcastLocked()
}

// Len returns the current occupancy.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h)
}

// Stats returns a snapshot of the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Len = len(q.h)
	return s
}

// broadcastLocked wakes every waiter. Callers hold q.mu.
func (q *Queue) broadcastLocked() {
	close(q.notify)
	q.notify = make(chan struct{})
}

// itemHeap orders by (Priority desc, seq asc).
type itemHeap []*Item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)   { *h = append(*h, x.(*Item)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
