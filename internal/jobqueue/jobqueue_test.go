package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relsyn/internal/obs"
)

func TestFIFOWithinPriority(t *testing.T) {
	q := New(8)
	for i := 0; i < 5; i++ {
		if err := q.Enqueue(&Item{ID: fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		it, err := q.Dequeue(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if it.ID != fmt.Sprint(i) {
			t.Fatalf("dequeue %d got %s", i, it.ID)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	q := New(8)
	ids := []struct {
		id   string
		prio int
	}{{"low1", 0}, {"high1", 5}, {"low2", 0}, {"mid", 3}, {"high2", 5}}
	for _, s := range ids {
		if err := q.Enqueue(&Item{ID: s.id, Priority: s.prio}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"high1", "high2", "mid", "low1", "low2"}
	for i, w := range want {
		it, err := q.Dequeue(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if it.ID != w {
			t.Fatalf("dequeue %d = %s, want %s", i, it.ID, w)
		}
	}
}

func TestBackpressure(t *testing.T) {
	q := New(2)
	if err := q.Enqueue(&Item{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(&Item{ID: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(&Item{ID: "c"}); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull enqueue: %v, want ErrFull", err)
	}
	if _, err := q.Dequeue(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(&Item{ID: "c"}); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
	st := q.Stats()
	if st.Rejected != 1 || st.Enqueued != 3 || st.MaxLen != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDequeueBlocksUntilEnqueue(t *testing.T) {
	q := New(4)
	got := make(chan *Item, 1)
	go func() {
		it, err := q.Dequeue(context.Background())
		if err != nil {
			t.Error(err)
		}
		got <- it
	}()
	time.Sleep(10 * time.Millisecond)
	if err := q.Enqueue(&Item{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	select {
	case it := <-got:
		if it.ID != "x" {
			t.Fatalf("got %s", it.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dequeue did not wake")
	}
}

func TestDequeueCtxCancel(t *testing.T) {
	q := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.Dequeue(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dequeue did not observe cancellation")
	}
}

// Items whose context expires while queued are dropped at the head with
// their OnExpire hook fired, and never reach a consumer.
func TestExpiredItemsDropped(t *testing.T) {
	q := New(8)
	expiredCtx, cancel := context.WithCancel(context.Background())
	cancel()
	var fired atomic.Int32
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(&Item{
			ID: fmt.Sprintf("dead%d", i), Ctx: expiredCtx,
			OnExpire: func() { fired.Add(1) },
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Enqueue(&Item{ID: "live", Ctx: context.Background()}); err != nil {
		t.Fatal(err)
	}
	it, err := q.Dequeue(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if it.ID != "live" {
		t.Fatalf("dequeued %s, want live", it.ID)
	}
	if fired.Load() != 3 {
		t.Fatalf("OnExpire fired %d times, want 3", fired.Load())
	}
	st := q.Stats()
	if st.Expired != 3 || st.Dequeued != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// Regression for the expired-dequeue contract: an item whose deadline
// passed while queued must never be handed to a worker ("silently run");
// it must be counted as a rejection (reason="expired") on the metrics
// registry, and ErrExpired must be the typed cause OnExpire owners
// surface to waiters.
func TestExpiredDequeueIsTypedRejection(t *testing.T) {
	reg := obs.NewRegistry()
	q := NewWithRegistry(4, reg)

	expiredCtx, cancel := context.WithCancel(context.Background())
	cancel()
	var expireErr error
	if err := q.Enqueue(&Item{
		ID: "dead", Ctx: expiredCtx,
		// The hook's owner (the server) wraps ErrExpired; mirror that
		// here to pin the sentinel's role in the contract.
		OnExpire: func() { expireErr = fmt.Errorf("job dead: %w", ErrExpired) },
	}); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(&Item{ID: "live", Ctx: context.Background()}); err != nil {
		t.Fatal(err)
	}

	it, err := q.Dequeue(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if it.ID != "live" {
		t.Fatalf("dequeued %q: expired item must not reach a worker", it.ID)
	}
	if !errors.Is(expireErr, ErrExpired) {
		t.Fatalf("OnExpire error %v is not typed ErrExpired", expireErr)
	}
	if got := reg.Counter("relsyn_queue_rejections_total", obs.L("reason", "expired")).Value(); got != 1 {
		t.Fatalf("expired rejection counter = %d, want 1", got)
	}
	if got := reg.Counter("relsyn_queue_rejections_total", obs.L("reason", "full")).Value(); got != 0 {
		t.Fatalf("full rejection counter = %d, want 0", got)
	}
	st := q.Stats()
	if st.Expired != 1 || st.Dequeued != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// The queue's registry series must reflect admissions, dispatches,
// occupancy, and wait time.
func TestQueueMetricsSeries(t *testing.T) {
	reg := obs.NewRegistry()
	q := NewWithRegistry(2, reg)
	if err := q.Enqueue(&Item{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(&Item{ID: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(&Item{ID: "c"}); !errors.Is(err, ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
	snap := reg.Snapshot()
	if snap.Gauges["relsyn_queue_depth"] != 2 || snap.Gauges["relsyn_queue_capacity"] != 2 {
		t.Fatalf("gauges: %+v", snap.Gauges)
	}
	if snap.Counters[`relsyn_queue_rejections_total{reason="full"}`] != 1 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	if _, err := q.Dequeue(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if snap.Counters["relsyn_queue_enqueued_total"] != 2 ||
		snap.Counters["relsyn_queue_dequeued_total"] != 1 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	h := snap.Histograms["relsyn_queue_wait_seconds"]
	if h.Count != 1 || h.Sum < 0 {
		t.Fatalf("wait histogram: %+v", h)
	}
}

// Close lets consumers drain the backlog, then reports ErrClosed; new
// admissions fail immediately.
func TestCloseDrains(t *testing.T) {
	q := New(8)
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(&Item{ID: fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	q.Close() // idempotent
	if err := q.Enqueue(&Item{ID: "late"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := q.Dequeue(context.Background()); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if _, err := q.Dequeue(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("dequeue on drained closed queue: %v", err)
	}
}

// Close wakes blocked consumers.
func TestCloseWakesWaiters(t *testing.T) {
	q := New(4)
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := q.Dequeue(context.Background())
			done <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("err %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("waiter not woken by Close")
		}
	}
}

// Hammer the queue from many producers and consumers under -race: every
// accepted item is dequeued exactly once, none invented, none lost.
func TestConcurrentProducersConsumers(t *testing.T) {
	const producers, perProducer, consumers = 8, 50, 4
	q := New(64)
	var accepted, consumed atomic.Int64
	seen := sync.Map{}

	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				it, err := q.Dequeue(context.Background())
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				if _, dup := seen.LoadOrStore(it.ID, true); dup {
					t.Errorf("item %s dequeued twice", it.ID)
				}
				consumed.Add(1)
			}
		}()
	}

	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				it := &Item{ID: fmt.Sprintf("p%d-%d", p, i), Priority: i % 3}
				for {
					err := q.Enqueue(it)
					if err == nil {
						accepted.Add(1)
						break
					}
					if errors.Is(err, ErrFull) {
						time.Sleep(time.Millisecond)
						continue
					}
					t.Error(err)
					return
				}
			}
		}(p)
	}
	pwg.Wait()
	q.Close()
	cwg.Wait()

	if accepted.Load() != producers*perProducer {
		t.Fatalf("accepted %d, want %d", accepted.Load(), producers*perProducer)
	}
	if consumed.Load() != accepted.Load() {
		t.Fatalf("consumed %d of %d accepted", consumed.Load(), accepted.Load())
	}
	st := q.Stats()
	if st.Dequeued != accepted.Load() || st.Len != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestNilItemAndTinyDepth(t *testing.T) {
	q := New(0) // clamped to 1
	if err := q.Enqueue(nil); err == nil {
		t.Fatal("nil item accepted")
	}
	if err := q.Enqueue(&Item{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(&Item{ID: "b"}); !errors.Is(err, ErrFull) {
		t.Fatalf("depth clamp failed: %v", err)
	}
	if q.Stats().Depth != 1 {
		t.Fatalf("depth %d", q.Stats().Depth)
	}
}

// TestCloseEnqueueRaceStress hammers Enqueue from many goroutines while
// Close fires mid-storm. The contract under test: an admission racing a
// shutdown loses with the typed ErrClosed (or the queue was still full),
// never a panic or an untyped error, and every successfully admitted
// item is either dequeued or still countable — nothing is lost.
func TestCloseEnqueueRaceStress(t *testing.T) {
	for round := 0; round < 20; round++ {
		q := NewWithRegistry(64, obs.NewRegistry())
		const producers = 8
		var admitted atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					err := q.Enqueue(&Item{ID: fmt.Sprintf("p%d-%d", p, i)})
					switch {
					case err == nil:
						admitted.Add(1)
					case errors.Is(err, ErrClosed):
						return
					case errors.Is(err, ErrFull):
						// Backpressure; keep hammering until Close lands.
					default:
						t.Errorf("Enqueue returned untyped error: %v", err)
						return
					}
				}
			}(p)
		}
		// One consumer drains so ErrFull doesn't stall the storm.
		var drained atomic.Int64
		consumerDone := make(chan struct{})
		go func() {
			defer close(consumerDone)
			for {
				if _, err := q.Dequeue(context.Background()); err != nil {
					return // ErrClosed after drain
				}
				drained.Add(1)
			}
		}()
		close(start)
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		q.Close()
		wg.Wait()
		<-consumerDone
		if got := drained.Load(); got != admitted.Load() {
			t.Fatalf("round %d: admitted %d items but drained %d", round, admitted.Load(), got)
		}
	}
}

// nopHook is a FaultHook that admits and delivers everything, proving
// the hook plumbing itself perturbs nothing.
type nopHook struct{}

func (nopHook) Admit(*Item) error  { return nil }
func (nopHook) Deliver(*Item) bool { return true }

func TestFaultHookNopAndReset(t *testing.T) {
	q := NewWithRegistry(4, obs.NewRegistry())
	q.SetFaultHook(nopHook{})
	if err := q.Enqueue(&Item{ID: "a"}); err != nil {
		t.Fatalf("enqueue through nop hook: %v", err)
	}
	it, err := q.Dequeue(context.Background())
	if err != nil || it.ID != "a" {
		t.Fatalf("dequeue through nop hook = %v, %v", it, err)
	}
	q.SetFaultHook(nil) // removal restores the unhooked fast path
	if err := q.Enqueue(&Item{ID: "b"}); err != nil {
		t.Fatalf("enqueue after hook removal: %v", err)
	}
	if s := q.Stats(); s.Dropped != 0 {
		t.Fatalf("nop hook dropped %d items", s.Dropped)
	}
}
