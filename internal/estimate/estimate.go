// Package estimate derives the paper's §5 analytical min-max reliability
// estimates, which bracket a specification's achievable error rates
// without the minterm-enumerative computation of the exact bounds:
//
//   - Signal-probability-based: models the neighbor-phase balance
//     Y = Σ Xj of each DC minterm as a Gaussian with moments derived from
//     (f0, f1, fDC) alone, and uses the exact expectation of min/max of
//     the (perfectly anticorrelated) neighbor counts (n∓Y)/2. These
//     estimates "consistently overshoot" the exact rates (paper Table 3)
//     because they ignore the clustering of real functions.
//
//   - Border-based: additionally measures the border counts b0, b1, bDC
//     (ordered mixed-phase adjacencies), models each DC minterm's on-set
//     border count as Poisson with mean N_on, and produces bounds that
//     bracket the exact values.
//
// All rates use the same normalization as package reliability: fraction
// of the n·2^n ordered (minterm, flipped-bit) events.
package estimate

import (
	"context"
	"fmt"
	"math"

	"relsyn/internal/bitset"
	"relsyn/internal/par"
	"relsyn/internal/reliability"
	"relsyn/internal/tt"
)

// Bounds is an estimated [Min, Max] error-rate interval.
type Bounds struct {
	Min float64
	Max float64
}

// SignalBased computes the Gaussian signal-probability estimate for
// output o.
func SignalBased(f *tt.Function, o int) Bounds {
	n := float64(f.NumIn)
	f0, f1, fdc := f.SignalProbabilities(o)
	base := 2 * f0 * f1

	// Y = Σ Xj with Xj ∈ {-1, 0, +1} carrying probabilities f0, fDC, f1:
	// μ = n(f1−f0), σ² = n(f1+f0−(f1−f0)²).
	mu := n * (f1 - f0)
	variance := n * (f1 + f0 - (f1-f0)*(f1-f0))
	eAbsY := meanAbsGaussian(mu, variance)

	// min((n−Y)/2, (n+Y)/2) = (n−|Y|)/2 and max = (n+|Y|)/2.
	minPer := (n - eAbsY) / 2
	maxPer := (n + eAbsY) / 2
	return Bounds{
		Min: base + fdc*minPer/n,
		Max: base + fdc*maxPer/n,
	}
}

// meanAbsGaussian returns E|Y| for Y ~ N(mu, variance): the folded
// normal mean σ√(2/π)·exp(−μ²/2σ²) + μ·erf(μ/(σ√2)).
func meanAbsGaussian(mu, variance float64) float64 {
	if variance <= 0 {
		return math.Abs(mu)
	}
	sigma := math.Sqrt(variance)
	return sigma*math.Sqrt(2/math.Pi)*math.Exp(-mu*mu/(2*variance)) +
		mu*math.Erf(mu/(sigma*math.Sqrt2))
}

// BorderBased computes the Poisson border-count estimate for output o.
// The border measurement inherits the kernel/scalar dispatch of
// reliability.CountBorders (the analytical model on top is pure float
// arithmetic either way).
func BorderBased(f *tt.Function, o int) Bounds {
	return borderBasedFrom(f, o, reliability.CountBorders(f, o))
}

// BorderBasedCensus is BorderBased with the border counts served from
// a fused neighbor census (three masked plane sums) instead of a
// dedicated shift+popcount pass. The integer border counts are
// identical, so the estimate floats are too. A nil census falls back
// to the dispatching path.
func BorderBasedCensus(f *tt.Function, o int, c *bitset.Census) Bounds {
	if c == nil {
		return BorderBased(f, o)
	}
	return borderBasedFrom(f, o, reliability.CountBordersCensus(c))
}

// BorderBasedScalar is BorderBased pinned to the scalar border-count
// oracle, for differential tests that cross-check the kernel path.
func BorderBasedScalar(f *tt.Function, o int) Bounds {
	return borderBasedFrom(f, o, reliability.CountBordersScalar(f, o))
}

// BorderBasedKernel is BorderBased pinned to the word-parallel
// border-count kernel.
func BorderBasedKernel(f *tt.Function, o int) Bounds {
	return borderBasedFrom(f, o, reliability.CountBordersKernel(f, o))
}

// borderBasedFrom evaluates the Poisson model on measured border counts.
func borderBasedFrom(f *tt.Function, o int, b reliability.Borders) Bounds {
	n := float64(f.NumIn)
	size := float64(f.Size())
	f0, f1, fdc := f.SignalProbabilities(o)

	base := 0.0
	if f0+fdc > 0 {
		base += float64(b.B1) / size * f0 / (f0 + fdc)
	}
	if f1+fdc > 0 {
		base += float64(b.B0) / size * f1 / (f1 + fdc)
	}
	base /= n // per-(minterm,bit) normalization

	if fdc == 0 || b.BDC == 0 {
		return Bounds{Min: base, Max: base}
	}

	// Expected borders per DC minterm and expected on-set borders.
	nb := float64(b.BDC) / (fdc * size)
	var non float64
	if b.B0+b.B1 > 0 {
		non = nb * float64(b.B1) / float64(b.B0+b.B1)
	}

	nbi := int(math.Round(nb))
	minPer, maxPer := 0.0, 0.0
	half := nbi / 2
	for i := 0; i <= nbi; i++ {
		p := poisson(i, non)
		if i <= half {
			minPer += float64(i) * p
			maxPer += float64(nbi-i) * p
		} else {
			minPer += float64(nbi-i) * p
			maxPer += float64(i) * p
		}
	}
	return Bounds{
		Min: base + fdc*minPer/n,
		Max: base + fdc*maxPer/n,
	}
}

// poisson returns the pmf λ^k e^{−λ}/k!.
func poisson(k int, lambda float64) float64 {
	if lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	// Compute iteratively in log-free form to avoid overflow for the small
	// k (≤ n) used here.
	p := math.Exp(-lambda)
	for i := 1; i <= k; i++ {
		p *= lambda / float64(i)
	}
	return p
}

// SignalBasedMean averages SignalBased over all outputs with full
// machine parallelism. Zero-output functions are rejected with an error
// wrapping tt.ErrZeroOutputs.
func SignalBasedMean(f *tt.Function) (Bounds, error) {
	return SignalBasedMeanCtx(context.Background(), f, 0)
}

// SignalBasedMeanCtx is SignalBasedMean with cooperative cancellation
// and an explicit parallelism cap (0 = GOMAXPROCS, 1 = sequential);
// results are bit-identical at every parallelism level.
func SignalBasedMeanCtx(ctx context.Context, f *tt.Function, parallelism int) (Bounds, error) {
	return meanOver(ctx, f, parallelism, SignalBased)
}

// BorderBasedMean averages BorderBased over all outputs with full
// machine parallelism. Zero-output functions are rejected with an error
// wrapping tt.ErrZeroOutputs.
func BorderBasedMean(f *tt.Function) (Bounds, error) {
	return BorderBasedMeanCtx(context.Background(), f, 0)
}

// BorderBasedMeanCtx is BorderBasedMean with cooperative cancellation
// and an explicit parallelism cap (0 = GOMAXPROCS, 1 = sequential);
// results are bit-identical at every parallelism level.
func BorderBasedMeanCtx(ctx context.Context, f *tt.Function, parallelism int) (Bounds, error) {
	return meanOver(ctx, f, parallelism, BorderBased)
}

// BorderBasedMeanCensusCtx is BorderBasedMeanCtx with per-output border
// counts served from fused censuses where available (nil or missing
// entries fall back to the dispatching measurement path).
func BorderBasedMeanCensusCtx(ctx context.Context, f *tt.Function, cs []*bitset.Census, parallelism int) (Bounds, error) {
	return meanOver(ctx, f, parallelism, func(f *tt.Function, o int) Bounds {
		if o < len(cs) {
			return BorderBasedCensus(f, o, cs[o])
		}
		return BorderBased(f, o)
	})
}

// meanOver computes per-output bounds concurrently into index-addressed
// slots and accumulates them sequentially in output order, so the mean
// is bit-identical at every parallelism level. Zero-output functions
// are rejected with the typed tt.ErrZeroOutputs sentinel (historically
// this divided by zero and returned NaN bounds).
func meanOver(ctx context.Context, f *tt.Function, parallelism int, fn func(*tt.Function, int) Bounds) (Bounds, error) {
	if f.NumOut() == 0 {
		return Bounds{}, fmt.Errorf("estimate: %w", tt.ErrZeroOutputs)
	}
	per := make([]Bounds, f.NumOut())
	if err := par.Do(ctx, parallelism, f.NumOut(), func(o int) error {
		per[o] = fn(f, o)
		return nil
	}); err != nil {
		return Bounds{}, err
	}
	var acc Bounds
	for _, b := range per {
		acc.Min += b.Min
		acc.Max += b.Max
	}
	m := float64(f.NumOut())
	return Bounds{Min: acc.Min / m, Max: acc.Max / m}, nil
}
