package estimate

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"relsyn/internal/reliability"
	"relsyn/internal/synthetic"
	"relsyn/internal/tt"
)

func TestMeanAbsGaussian(t *testing.T) {
	// Standard normal: E|Y| = √(2/π).
	if got, want := meanAbsGaussian(0, 1), math.Sqrt(2/math.Pi); math.Abs(got-want) > 1e-12 {
		t.Fatalf("E|N(0,1)| = %v, want %v", got, want)
	}
	// Large mean dominates: E|Y| → |μ|.
	if got := meanAbsGaussian(10, 1); math.Abs(got-10) > 1e-6 {
		t.Fatalf("E|N(10,1)| = %v, want ≈10", got)
	}
	if got := meanAbsGaussian(-10, 1); math.Abs(got-10) > 1e-6 {
		t.Fatalf("E|N(-10,1)| = %v, want ≈10", got)
	}
	// Zero variance: exactly |μ|.
	if got := meanAbsGaussian(-3, 0); got != 3 {
		t.Fatalf("degenerate E|Y| = %v, want 3", got)
	}
}

func TestPoissonPmf(t *testing.T) {
	// Sums to ~1.
	total := 0.0
	for k := 0; k < 60; k++ {
		p := poisson(k, 4.5)
		if p < 0 {
			t.Fatalf("negative pmf at %d", k)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("pmf sums to %v", total)
	}
	if poisson(0, 0) != 1 || poisson(3, 0) != 0 {
		t.Fatal("λ=0 special case wrong")
	}
	// Mean check.
	mean := 0.0
	for k := 0; k < 80; k++ {
		mean += float64(k) * poisson(k, 6.25)
	}
	if math.Abs(mean-6.25) > 1e-6 {
		t.Fatalf("pmf mean %v, want 6.25", mean)
	}
}

func TestEstimatesOnFullySpecified(t *testing.T) {
	// No DCs: both estimates collapse to a base-only interval.
	rng := rand.New(rand.NewSource(131))
	f := tt.New(8, 1)
	for m := 0; m < f.Size(); m++ {
		if rng.Intn(2) == 0 {
			f.SetPhase(0, m, tt.On)
		}
	}
	sb := SignalBased(f, 0)
	bb := BorderBased(f, 0)
	if sb.Min != sb.Max {
		t.Fatalf("signal interval should be a point without DCs: %+v", sb)
	}
	if bb.Min != bb.Max {
		t.Fatalf("border interval should be a point without DCs: %+v", bb)
	}
	// The border-based base estimate is exact when fDC = 0.
	lo, hi := reliability.Bounds(f, 0)
	if lo != hi {
		t.Fatal("exact bounds should coincide without DCs")
	}
	if math.Abs(bb.Min-lo) > 1e-9 {
		t.Fatalf("border base %v vs exact %v", bb.Min, lo)
	}
	// Signal-based base = 2 f0 f1 exactly.
	f0, f1, _ := f.SignalProbabilities(0)
	if math.Abs(sb.Min-2*f0*f1) > 1e-12 {
		t.Fatalf("signal base %v, want %v", sb.Min, 2*f0*f1)
	}
}

func TestIntervalsWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	for trial := 0; trial < 50; trial++ {
		f := tt.New(6+rng.Intn(4), 1)
		for m := 0; m < f.Size(); m++ {
			f.SetPhase(0, m, tt.Phase(rng.Intn(3)))
		}
		for _, b := range []Bounds{SignalBased(f, 0), BorderBased(f, 0)} {
			if b.Min > b.Max+1e-12 {
				t.Fatalf("inverted interval %+v", b)
			}
			if b.Min < 0 || b.Max > 1.5 {
				t.Fatalf("interval out of plausible range %+v", b)
			}
		}
	}
}

// The paper's Table 3 claims: border-based estimates bracket the exact
// bounds; signal-based estimates overshoot (min above exact min). Random
// functions satisfy both in aggregate.
func TestPaperClaimsOnRandomFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	trials, borderBracket, signalOvershoot := 0, 0, 0
	for i := 0; i < 40; i++ {
		f := tt.New(10, 1)
		for m := 0; m < f.Size(); m++ {
			r := rng.Float64()
			switch {
			case r < 0.6:
				f.SetPhase(0, m, tt.DC)
			case r < 0.8:
				f.SetPhase(0, m, tt.On)
			}
		}
		exLo, exHi := reliability.Bounds(f, 0)
		bb := BorderBased(f, 0)
		sb := SignalBased(f, 0)
		trials++
		if bb.Min <= exLo+0.02 && bb.Max >= exHi-0.02 {
			borderBracket++
		}
		if sb.Min >= exLo {
			signalOvershoot++
		}
	}
	if borderBracket < trials*9/10 {
		t.Fatalf("border-based bracketed exact in only %d/%d trials", borderBracket, trials)
	}
	if signalOvershoot < trials*9/10 {
		t.Fatalf("signal-based overshot exact min in only %d/%d trials", signalOvershoot, trials)
	}
}

// On clustered (high-C^f) functions, signal-based overshoot should be
// dramatic while border-based stays informative — the motivation for the
// second estimator (paper Fig. 8 discussion).
func TestBorderTighterOnStructuredFunctions(t *testing.T) {
	f, err := synthetic.Generate(synthetic.Params{
		Inputs: 10, Outputs: 1, DCFraction: 0.6, TargetCf: 0.78, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	exLo, _ := reliability.Bounds(f, 0)
	sb := SignalBased(f, 0)
	bb := BorderBased(f, 0)
	if !(sb.Min > exLo) {
		t.Fatalf("signal-based min %v should overshoot exact %v on structured function", sb.Min, exLo)
	}
	if !(bb.Min <= exLo+1e-9) {
		t.Fatalf("border-based min %v should lower-bound exact %v", bb.Min, exLo)
	}
	if !(bb.Min < sb.Min) {
		t.Fatalf("border-based min %v should be tighter than signal-based %v", bb.Min, sb.Min)
	}
}

func TestMeansAverageOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	f := tt.New(5, 3)
	for o := 0; o < 3; o++ {
		for m := 0; m < f.Size(); m++ {
			f.SetPhase(o, m, tt.Phase(rng.Intn(3)))
		}
	}
	var wantMin, wantMax float64
	for o := 0; o < 3; o++ {
		b := SignalBased(f, o)
		wantMin += b.Min / 3
		wantMax += b.Max / 3
	}
	got, err := SignalBasedMean(f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Min-wantMin) > 1e-12 || math.Abs(got.Max-wantMax) > 1e-12 {
		t.Fatalf("mean = %+v, want {%v %v}", got, wantMin, wantMax)
	}
}

// Regression: the mean estimates silently returned NaN bounds on
// zero-output functions; they must reject them with the typed sentinel.
func TestMeansZeroOutputsRejected(t *testing.T) {
	f := &tt.Function{NumIn: 4} // hand-built: no outputs
	if _, err := SignalBasedMean(f); !errors.Is(err, tt.ErrZeroOutputs) {
		t.Fatalf("SignalBasedMean: got %v, want tt.ErrZeroOutputs", err)
	}
	if _, err := BorderBasedMean(f); !errors.Is(err, tt.ErrZeroOutputs) {
		t.Fatalf("BorderBasedMean: got %v, want tt.ErrZeroOutputs", err)
	}
}

// The mean estimates must be bit-identical at every parallelism level.
func TestMeansParallelMatchSequential(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	rng := rand.New(rand.NewSource(135))
	ctx := context.Background()
	f := tt.New(6, 6)
	for o := 0; o < f.NumOut(); o++ {
		for m := 0; m < f.Size(); m++ {
			f.SetPhase(o, m, tt.Phase(rng.Intn(3)))
		}
	}
	seqSig, err := SignalBasedMeanCtx(ctx, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	seqBor, err := BorderBasedMeanCtx(ctx, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8, 0} {
		sig, err := SignalBasedMeanCtx(ctx, f, p)
		if err != nil {
			t.Fatal(err)
		}
		if sig != seqSig {
			t.Fatalf("p=%d: SignalBasedMean %+v != sequential %+v", p, sig, seqSig)
		}
		bor, err := BorderBasedMeanCtx(ctx, f, p)
		if err != nil {
			t.Fatal(err)
		}
		if bor != seqBor {
			t.Fatalf("p=%d: BorderBasedMean %+v != sequential %+v", p, bor, seqBor)
		}
	}
}

func TestAllDCFunction(t *testing.T) {
	f := tt.New(6, 1)
	for m := 0; m < 64; m++ {
		f.SetPhase(0, m, tt.DC)
	}
	// Exact: zero errors possible (no care minterms).
	lo, hi := reliability.Bounds(f, 0)
	if lo != 0 || hi != 0 {
		t.Fatalf("all-DC exact bounds (%v,%v), want (0,0)", lo, hi)
	}
	// Border-based sees zero borders and agrees.
	bb := BorderBased(f, 0)
	if bb.Min != 0 || bb.Max != 0 {
		t.Fatalf("all-DC border bounds %+v, want zeros", bb)
	}
	// Signal-based (by design) overshoots badly here: it assumes all
	// neighbors are specified.
	sb := SignalBased(f, 0)
	if sb.Max <= 0 {
		t.Fatalf("signal-based should overshoot on all-DC, got %+v", sb)
	}
}
