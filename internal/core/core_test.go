package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"relsyn/internal/reliability"
	"relsyn/internal/tt"
)

func randomFunction(rng *rand.Rand, n, m int, dcFrac float64) *tt.Function {
	f := tt.New(n, m)
	for o := 0; o < m; o++ {
		for mm := 0; mm < f.Size(); mm++ {
			r := rng.Float64()
			switch {
			case r < dcFrac:
				f.SetPhase(o, mm, tt.DC)
			case r < dcFrac+(1-dcFrac)/2:
				f.SetPhase(o, mm, tt.On)
			}
		}
	}
	return f
}

// Paper Fig. 1's motivating example: three DC minterms on a 4-variable map.
// x1 has two on-neighbors and one off-neighbor (assign on), x2 has two
// off-neighbors and one on-neighbor (assign off), x3 is balanced (leave DC).
func motivatingExample() (f *tt.Function, x1, x2, x3 int) {
	f = tt.New(4, 1)
	// Choose concrete minterms that realize the neighbor structure:
	// x1 = 0b0000 with neighbors 0b0001 (on), 0b0010 (on), 0b0100 (off),
	// 0b1000 (DC = x2).
	// x2 = 0b1000 with neighbors 0b1001 (off), 0b1010 (off), 0b1100 (on),
	// 0b0000 (DC = x1).
	// x3 = 0b0111 with neighbors 0b0110 (on), 0b0101 (on), 0b0011 (off),
	// 0b1111 (off).
	x1, x2, x3 = 0b0000, 0b1000, 0b0111
	for _, m := range []int{0b0001, 0b0010, 0b1100, 0b0110, 0b0101} {
		f.SetPhase(0, m, tt.On)
	}
	for _, m := range []int{x1, x2, x3} {
		f.SetPhase(0, m, tt.DC)
	}
	// All remaining minterms are off.
	return f, x1, x2, x3
}

func TestRankingMotivatingExample(t *testing.T) {
	f, x1, x2, x3 := motivatingExample()
	res, err := Ranking(f, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Func.Phase(0, x1); got != tt.On {
		t.Errorf("x1 assigned %v, want on", got)
	}
	if got := res.Func.Phase(0, x2); got != tt.Off {
		t.Errorf("x2 assigned %v, want off", got)
	}
	if got := res.Func.Phase(0, x3); got != tt.DC {
		t.Errorf("x3 assigned %v, want left DC", got)
	}
	if len(res.Assigned) != 2 || res.TotalDCs != 3 {
		t.Errorf("assigned %d of %d, want 2 of 3", len(res.Assigned), res.TotalDCs)
	}
}

func TestRankingFractionZeroIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	f := randomFunction(rng, 6, 2, 0.5)
	res, err := Ranking(f, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Func.Equal(f) {
		t.Fatal("fraction 0 modified the function")
	}
	if len(res.Assigned) != 0 {
		t.Fatal("fraction 0 made assignments")
	}
}

func TestRankingDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	f := randomFunction(rng, 5, 1, 0.5)
	g := f.Clone()
	if _, err := Ranking(f, 1.0, Options{}); err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("Ranking mutated its input")
	}
}

func TestRankingFractionMonotoneInAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	f := randomFunction(rng, 7, 1, 0.6)
	prev := -1
	for _, fr := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res, err := Ranking(f, fr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Assigned) < prev {
			t.Fatalf("assignments not monotone in fraction at %v", fr)
		}
		prev = len(res.Assigned)
		if err := res.Func.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// The paper's key claim for Fig. 4: more ranking-based assignment gives
// monotonically non-increasing minimum achievable error rate, because each
// assignment binds the majority phase. At fraction 1 the exact lower bound
// (restricted to non-tied DCs) is achieved.
func TestRankingReducesErrorRateMonotonically(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 10; trial++ {
		f := randomFunction(rng, 6, 1, 0.5)
		// Measure error rate with remaining DCs adversarially assigned by a
		// conventional-like completion (here: all to off) against the spec.
		measure := func(g *tt.Function) float64 {
			impl := g.Clone()
			g.Outs[0].DC.ForEach(func(m int) { impl.SetPhase(0, m, tt.Off) })
			r, err := reliability.ErrorRate(f, impl, 0)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		prev := math.Inf(1)
		_ = prev
		rates := make([]float64, 0, 5)
		for _, fr := range []float64{0, 0.25, 0.5, 0.75, 1} {
			res, err := Ranking(f, fr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rates = append(rates, measure(res.Func))
		}
		// Not strictly monotone pointwise for arbitrary completions, but the
		// fully assigned case must not exceed the unassigned case.
		if rates[len(rates)-1] > rates[0]+1e-12 {
			t.Fatalf("full ranking assignment worsened error rate: %v -> %v",
				rates[0], rates[len(rates)-1])
		}
	}
}

// With ties excluded, assigning 100% of ranked DCs and then binding the
// leftover tied DCs arbitrarily still achieves the exact minimum bound:
// tied DCs contribute min(on,off) either way.
func TestRankingFullAchievesExactMin(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		f := randomFunction(rng, 6, 1, 0.5)
		lo, _ := reliability.Bounds(f, 0)
		res, err := Ranking(f, 1.0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		impl := res.Func.Clone()
		res.Func.Outs[0].DC.ForEach(func(m int) {
			// Remaining DCs are ties: on-neighbors == off-neighbors in the
			// original spec. Bind randomly; the achieved rate must equal lo.
			if rng.Intn(2) == 0 {
				impl.SetPhase(0, m, tt.On)
			} else {
				impl.SetPhase(0, m, tt.Off)
			}
		})
		got, err := reliability.ErrorRate(f, impl, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-lo) > 1e-12 {
			t.Fatalf("full ranking + arbitrary ties = %v, want exact min %v", got, lo)
		}
	}
}

func TestCompleteSpecifiesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	f := randomFunction(rng, 5, 3, 0.7)
	res := Complete(f)
	if !res.Func.CompletelySpecified() {
		t.Fatal("Complete left DCs")
	}
	if len(res.Assigned) != res.TotalDCs {
		t.Fatalf("assigned %d of %d", len(res.Assigned), res.TotalDCs)
	}
	lo, _, err := reliability.BoundsMean(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reliability.ErrorRateMean(f, res.Func)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-lo) > 1e-12 {
		t.Fatalf("Complete error rate %v != exact min %v", got, lo)
	}
}

func TestLCFThresholdZeroAssignsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	f := randomFunction(rng, 6, 1, 0.5)
	res, err := LCF(f, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assigned) != 0 {
		t.Fatal("threshold 0 should assign nothing (LC^f >= 0 always)")
	}
}

func TestLCFThresholdMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	f := randomFunction(rng, 7, 1, 0.6)
	prev := -1
	for _, th := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		res, err := LCF(f, th, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Assigned) < prev {
			t.Fatalf("LCF assignments not monotone in threshold at %v", th)
		}
		prev = len(res.Assigned)
	}
}

// LCF assignments must be a subset of what full ranking would assign, and
// each individual binding must match ranking's majority-phase choice.
func TestLCFAgreesWithMajorityPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	f := randomFunction(rng, 6, 1, 0.5)
	res, err := LCF(f, 0.6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assigned {
		on := f.OnNeighbors(a.Output, a.Minterm)
		off := f.OffNeighbors(a.Output, a.Minterm)
		want := tt.Off
		if on > off {
			want = tt.On
		}
		if on == off {
			t.Fatalf("tie assigned without AssignTies at minterm %d", a.Minterm)
		}
		if a.Value != want {
			t.Fatalf("minterm %d assigned %v, want %v", a.Minterm, a.Value, want)
		}
	}
}

func TestAssignTiesOption(t *testing.T) {
	f, _, _, x3 := motivatingExample()
	res, err := Ranking(f, 1.0, Options{AssignTies: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Func.Phase(0, x3); got != tt.Off {
		t.Fatalf("tied minterm with AssignTies = %v, want off", got)
	}
}

func TestRankingPerOutputMatchesFractions(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	f := randomFunction(rng, 6, 3, 0.5)
	lcf, err := LCF(f, 0.55, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Re-run ranking with matched per-output fractions of the *candidate*
	// lists; fractions are relative to total DCs, so convert.
	fracs := make([]float64, f.NumOut())
	for o := range fracs {
		cands := rankCandidates(f, o, Options{})
		dcAssigned := 0
		for _, a := range lcf.Assigned {
			if a.Output == o {
				dcAssigned++
			}
		}
		if len(cands) > 0 {
			fracs[o] = float64(dcAssigned) / float64(len(cands))
			if fracs[o] > 1 {
				fracs[o] = 1
			}
		}
	}
	rank, err := RankingPerOutput(f, fracs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for o := range fracs {
		la, ra := 0, 0
		for _, a := range lcf.Assigned {
			if a.Output == o {
				la++
			}
		}
		for _, a := range rank.Assigned {
			if a.Output == o {
				ra++
			}
		}
		if d := la - ra; d < -1 || d > 1 { // rounding slack of one minterm
			t.Fatalf("output %d: lcf assigned %d, ranking %d", o, la, ra)
		}
	}
}

func TestInvalidParameters(t *testing.T) {
	f := tt.New(3, 1)
	if _, err := Ranking(f, -0.1, Options{}); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if _, err := Ranking(f, 1.1, Options{}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, err := LCF(f, -0.1, Options{}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := LCF(f, 1.5, Options{}); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
	if _, err := RankingPerOutput(f, []float64{0.5, 0.5}, Options{}); err == nil {
		t.Fatal("wrong fraction count accepted")
	}
}

func TestRankingPrefersHighWeight(t *testing.T) {
	// Construct a function with two DC minterms of different weights and
	// assign only the top one (fraction rounds to 1 of 2).
	f := tt.New(4, 1)
	// DC at 0b0000 with all 4 neighbors on: weight 4.
	for _, m := range []int{0b0001, 0b0010, 0b0100, 0b1000} {
		f.SetPhase(0, m, tt.On)
	}
	f.SetPhase(0, 0b0000, tt.DC)
	// DC at 0b1111 with 3 on-neighbors and 1 off-neighbor: weight 2.
	for _, m := range []int{0b1110, 0b1101, 0b1011} {
		f.SetPhase(0, m, tt.On)
	}
	f.SetPhase(0, 0b1111, tt.DC)
	res, err := Ranking(f, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assigned) != 1 {
		t.Fatalf("assigned %d, want 1", len(res.Assigned))
	}
	if res.Assigned[0].Minterm != 0 || res.Assigned[0].Weight != 4 {
		t.Fatalf("assigned %+v, want minterm 0 weight 4", res.Assigned[0])
	}
	if res.Assigned[0].Value != tt.On {
		t.Fatalf("assigned value %v, want on", res.Assigned[0].Value)
	}
}

func TestFractionAssigned(t *testing.T) {
	f, _, _, _ := motivatingExample()
	res, err := Ranking(f, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.FractionAssigned(), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("FractionAssigned = %v, want %v", got, want)
	}
	empty := &Result{Func: tt.New(2, 1)}
	if empty.FractionAssigned() != 0 {
		t.Fatal("empty result fraction should be 0")
	}
}

// Canonical strips operational knobs (hooks, budgets) and keeps only the
// fields that change the computed assignment, so equal canonical forms
// imply equal results.
func TestOptionsCanonical(t *testing.T) {
	loaded := Options{
		AssignTies:  true,
		Interrupt:   func() error { return nil },
		MaxBDDNodes: 1234,
		Parallelism: 8,
	}
	c := loaded.Canonical()
	if !c.AssignTies {
		t.Fatal("Canonical dropped AssignTies")
	}
	if c.Interrupt != nil || c.MaxBDDNodes != 0 || c.Parallelism != 0 {
		t.Fatalf("Canonical kept operational knobs: %+v", c)
	}
	c2 := Options{MaxBDDNodes: 7}.Canonical()
	if c2.AssignTies || c2.Interrupt != nil || c2.MaxBDDNodes != 0 {
		t.Fatalf("Canonical of budget-only options not zero: %+v", c2)
	}
}

// The assignment algorithms must compute the exact same result at every
// parallelism level: candidate selection fans out, application is
// sequential in output order.
func TestAssignmentParallelMatchesSequential(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 3; trial++ {
		f := randomFunction(rng, 6, 5, 0.5)
		seqRank, err := Ranking(f, 0.6, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		seqLCF, err := LCF(f, 0.55, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 8, 0} {
			rank, err := Ranking(f, 0.6, Options{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			if !rank.Func.Equal(seqRank.Func) || len(rank.Assigned) != len(seqRank.Assigned) {
				t.Fatalf("p=%d: Ranking result differs from sequential", p)
			}
			for i := range rank.Assigned {
				if rank.Assigned[i] != seqRank.Assigned[i] {
					t.Fatalf("p=%d: Ranking assignment %d differs: %+v vs %+v",
						p, i, rank.Assigned[i], seqRank.Assigned[i])
				}
			}
			lcf, err := LCF(f, 0.55, Options{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			if !lcf.Func.Equal(seqLCF.Func) || len(lcf.Assigned) != len(seqLCF.Assigned) {
				t.Fatalf("p=%d: LCF result differs from sequential", p)
			}
		}
	}
}
