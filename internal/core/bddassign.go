package core

import (
	"fmt"
	"math"
	"sort"

	"relsyn/internal/bdd"
	"relsyn/internal/tt"
)

// The *BDD variants below run the same algorithms as Ranking and LCF but
// maintain and manipulate the on-, off-, and DC-sets as BDDs, the way
// the paper's tool does with CUDD (§3: "the on-set, off-set, and DC-set
// are independently maintained and manipulated using the CUDD BDD
// package"). Neighbor membership tests use per-variable set flips
// (Manager.FlipVar); DC minterms are enumerated straight off the DC-set
// BDD. Results are bit-identical to the dense-truth-table variants —
// the property tests in bddassign_test.go enforce this — so the dense
// path is the default and these exist for large-support functions and
// as an independent oracle.

// outSets holds one output's three sets and their per-variable flips.
type outSets struct {
	man     *bdd.Manager
	on, off bdd.Ref
	dc      bdd.Ref
	onFlip  []bdd.Ref // onFlip[b] = {x : x⊕e_b ∈ on}
	offFlip []bdd.Ref
	dcFlip  []bdd.Ref
}

// recoverBDDLimit converts a node-budget panic raised by the BDD manager
// into a returned error; all other panics propagate.
func recoverBDDLimit(err *error) {
	if r := recover(); r != nil {
		if le, ok := r.(*bdd.LimitError); ok {
			*err = le
			return
		}
		panic(r)
	}
}

func newOutSets(f *tt.Function, o int, opt Options) *outSets {
	n := f.NumIn
	man := bdd.New(n)
	man.SetMaxNodes(opt.MaxBDDNodes)
	s := &outSets{man: man}
	s.on = man.FromBitset(f.Outs[o].On)
	s.dc = man.FromBitset(f.Outs[o].DC)
	s.off = man.And(man.Not(s.on), man.Not(s.dc))
	for b := 0; b < n; b++ {
		s.onFlip = append(s.onFlip, man.FlipVar(s.on, b))
		s.offFlip = append(s.offFlip, man.FlipVar(s.off, b))
		s.dcFlip = append(s.dcFlip, man.FlipVar(s.dc, b))
	}
	return s
}

// neighborCounts returns minterm m's on- and off-neighbor counts using
// only BDD membership queries.
func (s *outSets) neighborCounts(m uint) (on, off int) {
	for b := range s.onFlip {
		if s.man.Eval(s.onFlip[b], m) {
			on++
		}
		if s.man.Eval(s.offFlip[b], m) {
			off++
		}
	}
	return on, off
}

// phase classifies minterm m from the set BDDs.
func (s *outSets) phase(m uint) tt.Phase {
	switch {
	case s.man.Eval(s.dc, m):
		return tt.DC
	case s.man.Eval(s.on, m):
		return tt.On
	default:
		return tt.Off
	}
}

// decideBDD mirrors decide using BDD queries.
func (s *outSets) decideBDD(o int, m uint, opt Options) (Assignment, bool) {
	on, off := s.neighborCounts(m)
	w := on - off
	if w < 0 {
		w = -w
	}
	a := Assignment{Output: o, Minterm: int(m), Weight: w}
	switch {
	case on > off:
		a.Value = tt.On
	case off > on:
		a.Value = tt.Off
	default:
		if !opt.AssignTies {
			return Assignment{}, false
		}
		a.Value = tt.Off
	}
	return a, true
}

// RankingBDD is Ranking computed over BDD set representations. With
// Options.MaxBDDNodes set, a blown-up set representation returns a
// *bdd.LimitError instead of consuming unbounded memory.
func RankingBDD(f *tt.Function, fraction float64, opt Options) (res *Result, err error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("core: fraction %v outside [0,1]", fraction)
	}
	defer recoverBDDLimit(&err)
	res = newResult(f)
	for o := range f.Outs {
		if err := opt.check(); err != nil {
			return nil, err
		}
		s := newOutSets(f, o, opt)
		var cands []Assignment
		s.man.ForEachMinterm(s.dc, func(m uint) bool {
			if a, ok := s.decideBDD(o, m, opt); ok {
				cands = append(cands, a)
			}
			return true
		})
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].Weight != cands[j].Weight {
				return cands[i].Weight > cands[j].Weight
			}
			return cands[i].Minterm < cands[j].Minterm
		})
		k := int(math.Round(fraction * float64(len(cands))))
		res.apply(o, cands[:k])
	}
	return res, nil
}

// LCFBDD is LCF computed over BDD set representations. The local
// complexity factor of a DC minterm x sums, over x's neighbors y, the
// number of y's neighbors sharing y's phase — all via flipped-set
// membership queries.
func LCFBDD(f *tt.Function, threshold float64, opt Options) (res *Result, err error) {
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("core: threshold %v outside [0,1]", threshold)
	}
	defer recoverBDDLimit(&err)
	n := f.NumIn
	res = newResult(f)
	for o := range f.Outs {
		if err := opt.check(); err != nil {
			return nil, err
		}
		s := newOutSets(f, o, opt)
		samePhaseNeighbors := func(y uint) int {
			var flips []bdd.Ref
			switch s.phase(y) {
			case tt.On:
				flips = s.onFlip
			case tt.Off:
				flips = s.offFlip
			default:
				flips = s.dcFlip
			}
			c := 0
			for b := 0; b < n; b++ {
				if s.man.Eval(flips[b], y) {
					c++
				}
			}
			return c
		}
		var sel []Assignment
		s.man.ForEachMinterm(s.dc, func(m uint) bool {
			total := 0
			for b := 0; b < n; b++ {
				total += samePhaseNeighbors(m ^ 1<<uint(b))
			}
			if float64(total)/float64(n*n) >= threshold {
				return true
			}
			if a, ok := s.decideBDD(o, m, opt); ok {
				sel = append(sel, a)
			}
			return true
		})
		// ForEachMinterm enumerates in bit-reversed order; the dense path
		// visits minterms in ascending order. Normalize for bit-identical
		// results.
		sort.Slice(sel, func(i, j int) bool { return sel[i].Minterm < sel[j].Minterm })
		res.apply(o, sel)
	}
	return res, nil
}
