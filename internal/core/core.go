// Package core implements the paper's contribution: reliability-driven
// selective assignment of input don't-cares.
//
// Both algorithms decide, per DC minterm of each output, whether to bind
// the minterm to the on- or off-set so that single-bit input errors from
// neighboring specified minterms are masked, or to leave it don't-care for
// the downstream (conventional, area-driven) optimizer:
//
//   - Ranking-based assignment (paper Fig. 3) ranks DC minterms by
//     w = |#on-neighbors − #off-neighbors| and assigns the top fraction of
//     the ranked list to the majority phase.
//   - Complexity-factor-based assignment (paper Fig. 7) assigns a DC
//     minterm iff its local complexity factor LC^f is below a threshold;
//     low-LC^f neighborhoods are the ones where reliability can be bought
//     without an area penalty (paper §3.1, Fig. 6).
//
// Neighbor counts and LC^f are computed once against the original
// specification, matching the paper's algorithms (they are one-shot, not
// iterated after each assignment).
package core

import (
	"context"
	"fmt"
	"math"

	"relsyn/internal/bitset"
	"relsyn/internal/complexity"
	"relsyn/internal/par"
	"relsyn/internal/tt"
)

// KernelMode selects between the word-parallel bitset kernels and the
// scalar oracle implementations for one assignment pass.
type KernelMode int

const (
	// KernelsDefault follows the process-wide bitset.UseKernels switch.
	KernelsDefault KernelMode = iota
	// KernelsOn forces the word-parallel kernel paths for this call.
	KernelsOn
	// KernelsOff forces the scalar oracle paths for this call.
	KernelsOff
)

// Assignment records one DC minterm decision.
type Assignment struct {
	Output  int
	Minterm int
	Value   tt.Phase // On or Off
	Weight  int      // |on-neighbors − off-neighbors| at decision time
}

// Result is the outcome of an assignment pass.
type Result struct {
	// Func is a deep copy of the input with the selected DC minterms bound;
	// unselected DCs remain don't-care for later conventional optimization.
	Func *tt.Function
	// Assigned lists every binding made, in application order.
	Assigned []Assignment
	// TotalDCs is the number of DC (output, minterm) pairs in the input.
	TotalDCs int
	// PerOutputFraction[o] is assigned-DCs / total-DCs for output o
	// (0 when output o had no DCs).
	PerOutputFraction []float64
}

// FractionAssigned returns assigned / total DCs over the whole function.
func (r *Result) FractionAssigned() float64 {
	if r.TotalDCs == 0 {
		return 0
	}
	return float64(len(r.Assigned)) / float64(r.TotalDCs)
}

// Options tunes the assignment algorithms.
type Options struct {
	// AssignTies also binds DC minterms whose on- and off-neighbor counts
	// are equal (to the off-set, following the `else` arm of paper Fig. 7).
	// The default (false) leaves ties don't-care: a tie contributes nothing
	// to error masking, so retaining flexibility is never worse. The paper's
	// Fig. 3 excludes ties from the ranked list; its Fig. 7 pseudocode
	// assigns them — set AssignTies to reproduce that literal behaviour.
	AssignTies bool

	// Interrupt, when non-nil, is polled at least once per output; a
	// non-nil return aborts the pass with that error. Wire a
	// context-derived check here for cooperative cancellation.
	Interrupt func() error

	// MaxBDDNodes caps the per-output BDD manager arena in the *BDD
	// variants (0 = unlimited). Exhaustion aborts the pass with a
	// *bdd.LimitError; callers may then fall back to the dense
	// truth-table path, which computes the identical result.
	MaxBDDNodes int

	// Parallelism caps the worker count for the per-output candidate
	// selection fan-out (0 = GOMAXPROCS, 1 = sequential). It never
	// changes the computed assignment: selections land in
	// index-addressed slots and are applied sequentially in output
	// order, so it is deliberately NOT part of Canonical().
	Parallelism int

	// Kernels selects the word-parallel bitset kernels or the scalar
	// oracles for the neighbor censuses and LC^f scans of this pass
	// (default: follow the process-wide bitset.UseKernels switch). Both
	// paths compute bit-identical assignments — metatest property 6
	// pins the equivalence — so, like Parallelism, Kernels is an
	// operational knob and deliberately NOT part of Canonical().
	Kernels KernelMode

	// Census, when non-nil, supplies precomputed fused neighbor
	// censuses (internal/bitset.Census), indexed by output. Outputs
	// with a census skip their own neighbor-count and same-phase
	// passes and read the shared counters instead; nil or missing
	// entries fall back to the Kernels-selected path. The census is a
	// spec-time snapshot of the same counts both other paths compute —
	// metatest property 7 pins the fused/unfused equivalence
	// bit-identically — so, like Parallelism and Kernels, Census is an
	// operational knob and deliberately NOT part of Canonical().
	Census []*bitset.Census
}

// censusFor returns the fused census for output o when one was supplied
// and its minterm space matches f, else nil.
func (o Options) censusFor(f *tt.Function, idx int) *bitset.Census {
	if idx < len(o.Census) && o.Census[idx] != nil && o.Census[idx].Len() == f.Size() {
		return o.Census[idx]
	}
	return nil
}

// kernelsEnabled resolves the tri-state Kernels knob against the
// process-wide default.
func (o Options) kernelsEnabled() bool {
	switch o.Kernels {
	case KernelsOn:
		return true
	case KernelsOff:
		return false
	default:
		return bitset.UseKernels
	}
}

// check polls the Interrupt hook.
func (o Options) check() error {
	if o.Interrupt == nil {
		return nil
	}
	return o.Interrupt()
}

// Canonical returns o reduced to the fields that determine the computed
// assignment, with every operational knob (cancellation hooks, resource
// budgets, parallelism caps) cleared. Two Options values with equal Canonical() forms
// produce bit-identical results on the same input, so cache keys and
// request-coalescing identities (internal/server) must be derived from
// the canonical form — deriving them from the raw struct would split
// identical work across cache entries.
func (o Options) Canonical() Options {
	return Options{AssignTies: o.AssignTies}
}

// Ranking runs the ranking-based algorithm of paper Fig. 3, binding the
// given fraction (in [0,1]) of each output's rankable DC minterms.
func Ranking(f *tt.Function, fraction float64, opt Options) (*Result, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("core: fraction %v outside [0,1]", fraction)
	}
	fractions := make([]float64, f.NumOut())
	for o := range fractions {
		fractions[o] = fraction
	}
	return rankingWith(f, fractions, opt)
}

// RankingPerOutput is Ranking with an independent fraction per output,
// used to compare against an LC^f run at matched fractions (paper Table 2
// keeps "the fraction of DCs assigned the same in both cases").
func RankingPerOutput(f *tt.Function, fractions []float64, opt Options) (*Result, error) {
	if len(fractions) != f.NumOut() {
		return nil, fmt.Errorf("core: %d fractions for %d outputs", len(fractions), f.NumOut())
	}
	for _, fr := range fractions {
		if fr < 0 || fr > 1 {
			return nil, fmt.Errorf("core: fraction %v outside [0,1]", fr)
		}
	}
	return rankingWith(f, fractions, opt)
}

// rankingWith is the shared body of Ranking and RankingPerOutput: the
// per-output candidate ranking fans out through the work pool into
// index-addressed slots, and the selections are applied sequentially in
// output order — the computed assignment is bit-identical at every
// parallelism level.
func rankingWith(f *tt.Function, fractions []float64, opt Options) (*Result, error) {
	res := newResult(f)
	sels := make([][]Assignment, f.NumOut())
	err := par.Do(context.Background(), opt.Parallelism, f.NumOut(), func(o int) error {
		if err := opt.check(); err != nil {
			return err
		}
		cands := rankCandidates(f, o, opt)
		// Decreasing weight; ties broken by minterm index. Weights are
		// bounded by the input count, so a two-pass stable counting sort
		// over the inverted weight replaces a comparator sort — cands
		// arrives in increasing minterm order, and stable placement
		// preserves that order within each weight bucket, so the result
		// is exactly the (weight desc, minterm asc) order of paper Fig. 5
		// at O(cands) instead of O(cands·log). On large DC sets the sort
		// was the single hottest slice of the ranking pass.
		offs := make([]int, f.NumIn+2)
		for _, a := range cands {
			offs[f.NumIn-a.Weight+1]++
		}
		for i := 1; i < len(offs); i++ {
			offs[i] += offs[i-1]
		}
		ordered := make([]Assignment, len(cands))
		for _, a := range cands {
			w := f.NumIn - a.Weight
			ordered[offs[w]] = a
			offs[w]++
		}
		k := int(math.Round(fractions[o] * float64(len(cands))))
		sels[o] = ordered[:k]
		return nil
	})
	if err != nil {
		return nil, err
	}
	for o, sel := range sels {
		res.apply(o, sel)
	}
	return res, nil
}

// LCF runs the complexity-factor-based algorithm of paper Fig. 7: a DC
// minterm is bound to its majority neighbor phase iff its local
// complexity factor is strictly below threshold. Thresholds in 0.45–0.65
// trade performance (low) against reliability (high) per the paper §4.
func LCF(f *tt.Function, threshold float64, opt Options) (*Result, error) {
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("core: threshold %v outside [0,1]", threshold)
	}
	res := newResult(f)
	sels := make([][]Assignment, f.NumOut())
	err := par.Do(context.Background(), opt.Parallelism, f.NumOut(), func(o int) error {
		if err := opt.check(); err != nil {
			return err
		}
		// The LC^f kernel itself also fans out over minterm chunks, so a
		// single-output function still uses the whole parallelism budget.
		// The kernel/scalar choice is pinned per call from opt rather
		// than read from the process-wide switch mid-pass.
		local, err := localAll(f, o, opt)
		if err != nil {
			return err
		}
		no := newNeighborOracle(f, o, opt)
		no.decodeCounts()
		var sel []Assignment
		f.Outs[o].DC.ForEach(func(m int) {
			if local[m] >= threshold {
				return
			}
			if a, ok := no.decide(m, opt); ok {
				sel = append(sel, a)
			}
		})
		sels[o] = sel
		return nil
	})
	if err != nil {
		return nil, err
	}
	for o, sel := range sels {
		res.apply(o, sel)
	}
	return res, nil
}

// localAll computes LC^f for every minterm of output o: from the fused
// census when one was supplied, else pinned to the kernel or scalar
// path by opt (never the process-wide switch mid-pass).
func localAll(f *tt.Function, o int, opt Options) ([]float64, error) {
	if c := opt.censusFor(f, o); c != nil {
		return complexity.LocalAllCensusCtx(context.Background(), f, o, c, opt.Parallelism)
	}
	if opt.kernelsEnabled() {
		return complexity.LocalAllKernelCtx(context.Background(), f, o, opt.Parallelism)
	}
	return complexity.LocalAllScalarCtx(context.Background(), f, o, opt.Parallelism)
}

// Complete binds every DC minterm to its majority neighbor phase — the
// "Complete" column of paper Table 2 (full reliability-driven assignment,
// maximal error masking, typically large area overhead). Ties are bound
// to the off-set so that the result is completely specified.
func Complete(f *tt.Function) *Result {
	res := newResult(f)
	for o := range f.Outs {
		no := newNeighborOracle(f, o, Options{})
		var sel []Assignment
		f.Outs[o].DC.ForEach(func(m int) {
			a, ok := no.decide(m, Options{AssignTies: true})
			if !ok {
				panic("core: Complete decide must always assign")
			}
			sel = append(sel, a)
		})
		res.apply(o, sel)
	}
	return res
}

func newResult(f *tt.Function) *Result {
	total := 0
	for _, o := range f.Outs {
		total += o.DC.Count()
	}
	return &Result{
		Func:              f.Clone(),
		TotalDCs:          total,
		PerOutputFraction: make([]float64, f.NumOut()),
	}
}

// RankableCounts returns, per output, how many DC minterms are eligible
// for ranking (non-tied under opt) — the denominator for matching an
// LC^f run's per-output assignment fractions in a Ranking run.
func RankableCounts(f *tt.Function, opt Options) []int {
	out := make([]int, f.NumOut())
	for o := range f.Outs {
		out[o] = len(rankCandidates(f, o, opt))
	}
	return out
}

// neighborOracle answers per-minterm on/off neighbor-count queries for
// one output. On the kernel path the counts come from two bit-sliced
// neighbor-census counters built in n word-parallel passes and read at
// O(log n) per minterm; on the scalar path every query walks the n
// neighbors with phase lookups. Both return identical integers.
type neighborOracle struct {
	f              *tt.Function
	o              int
	onCnt, offCnt  *bitset.Counter // nil → scalar lookups
	onVals, offVal []uint8         // decoded counters; a census supplies them prebuilt
}

// newNeighborOracle builds the oracle. A supplied fused census answers
// queries directly from its precomputed decode arrays; otherwise the
// kernel path precomputes the two censuses when the output has any DC
// minterm to decide (the censuses cost n passes; skip them when
// nothing asks).
func newNeighborOracle(f *tt.Function, o int, opt Options) *neighborOracle {
	no := &neighborOracle{f: f, o: o}
	if c := opt.censusFor(f, o); c != nil {
		no.onVals, no.offVal = c.OnValues(), c.OffValues()
		return no
	}
	if opt.kernelsEnabled() && f.Outs[o].DC.Any() {
		no.onCnt = bitset.NeighborCount(f.Outs[o].On)
		no.offCnt = bitset.NeighborCount(f.OffSet(o))
	}
	return no
}

func (no *neighborOracle) counts(m int) (on, off int) {
	if no.onVals != nil {
		return int(no.onVals[m]), int(no.offVal[m])
	}
	if no.onCnt != nil {
		return no.onCnt.Get(m), no.offCnt.Get(m)
	}
	return no.f.OnNeighbors(no.o, m), no.f.OffNeighbors(no.o, m)
}

// decodeCounts flattens the oracle's counters into plain arrays. The
// assignment passes query every DC minterm, so two streaming decodes
// beat per-minterm bit-gathered Get pairs; one-shot callers that probe
// a few minterms skip this and pay Get instead. The census path is
// already decoded at construction.
func (no *neighborOracle) decodeCounts() {
	if no.onCnt == nil || no.onVals != nil {
		return
	}
	no.onVals = no.onCnt.Values8()
	no.offVal = no.offCnt.Values8()
}

// rankCandidates lists output o's DC minterms eligible for ranking.
func rankCandidates(f *tt.Function, o int, opt Options) []Assignment {
	no := newNeighborOracle(f, o, opt)
	no.decodeCounts()
	cands := make([]Assignment, 0, f.Outs[o].DC.Count())
	f.Outs[o].DC.ForEach(func(m int) {
		if a, ok := no.decide(m, opt); ok {
			cands = append(cands, a)
		}
	})
	return cands
}

// decide computes the majority-phase binding for DC minterm m of the
// oracle's output. It returns ok=false for a tie unless opt.AssignTies
// is set.
func (no *neighborOracle) decide(m int, opt Options) (Assignment, bool) {
	on, off := no.counts(m)
	w := on - off
	if w < 0 {
		w = -w
	}
	a := Assignment{Output: no.o, Minterm: m, Weight: w}
	switch {
	case on > off:
		a.Value = tt.On
	case off > on:
		a.Value = tt.Off
	default:
		if !opt.AssignTies {
			return Assignment{}, false
		}
		a.Value = tt.Off
	}
	return a, true
}

// apply binds the selected minterms on res.Func and updates bookkeeping.
func (res *Result) apply(o int, sel []Assignment) {
	dcs := res.Func.Outs[o].DC.Count()
	for _, a := range sel {
		res.Func.SetPhase(a.Output, a.Minterm, a.Value)
	}
	res.Assigned = append(res.Assigned, sel...)
	if dcs > 0 {
		res.PerOutputFraction[o] = float64(len(sel)) / float64(dcs)
	}
}
