package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"relsyn/internal/tt"
)

// The BDD-backed variants must be bit-identical to the dense variants:
// same function, same assignment list, same order.

func resultsEqual(a, b *Result) bool {
	if !a.Func.Equal(b.Func) || len(a.Assigned) != len(b.Assigned) || a.TotalDCs != b.TotalDCs {
		return false
	}
	for i := range a.Assigned {
		if a.Assigned[i] != b.Assigned[i] {
			return false
		}
	}
	return true
}

func TestRankingBDDMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 20; trial++ {
		f := randomFunction(rng, 3+rng.Intn(5), 1+rng.Intn(2), 0.5)
		for _, fr := range []float64{0, 0.3, 0.7, 1} {
			for _, opt := range []Options{{}, {AssignTies: true}} {
				dense, err := Ranking(f, fr, opt)
				if err != nil {
					t.Fatal(err)
				}
				viaBDD, err := RankingBDD(f, fr, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !resultsEqual(dense, viaBDD) {
					t.Fatalf("trial %d fr=%v opt=%+v: BDD ranking diverges from dense",
						trial, fr, opt)
				}
			}
		}
	}
}

func TestLCFBDDMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	for trial := 0; trial < 20; trial++ {
		f := randomFunction(rng, 3+rng.Intn(5), 1+rng.Intn(2), 0.5)
		for _, th := range []float64{0, 0.4, 0.6, 1} {
			dense, err := LCF(f, th, Options{})
			if err != nil {
				t.Fatal(err)
			}
			viaBDD, err := LCFBDD(f, th, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(dense, viaBDD) {
				t.Fatalf("trial %d th=%v: BDD LCF diverges from dense", trial, th)
			}
		}
	}
}

func TestBDDVariantsValidateParameters(t *testing.T) {
	f := tt.New(3, 1)
	if _, err := RankingBDD(f, -0.5, Options{}); err == nil {
		t.Fatal("negative fraction accepted")
	}
	if _, err := LCFBDD(f, 2, Options{}); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
}

// quick-check style property: for random seeds, the two paths agree on
// the count of assignments at a random threshold.
func TestBDDLCFCountProperty(t *testing.T) {
	f := func(seed int64, thRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fn := randomFunction(rng, 5, 1, 0.6)
		th := float64(thRaw%100) / 100
		a, err1 := LCF(fn, th, Options{})
		b, err2 := LCFBDD(fn, th, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return len(a.Assigned) == len(b.Assigned)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRankingDense8(b *testing.B) {
	rng := rand.New(rand.NewSource(153))
	f := randomFunction(rng, 8, 2, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Ranking(f, 1, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankingBDD8(b *testing.B) {
	rng := rand.New(rand.NewSource(153))
	f := randomFunction(rng, 8, 2, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RankingBDD(f, 1, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
