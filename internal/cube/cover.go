package cube

import (
	"fmt"
	"sort"
	"strings"
)

// Cover is a sum (disjunction) of cubes over a common variable count.
// A Cover with no cubes denotes the constant-0 function.
type Cover struct {
	n     int
	Cubes []Cube
}

// NewCover returns an empty cover over n variables.
func NewCover(n int) *Cover {
	return &Cover{n: n}
}

// CoverOf builds a cover from the given cubes, which must all have n vars.
func CoverOf(n int, cubes ...Cube) *Cover {
	c := NewCover(n)
	for _, cb := range cubes {
		c.Add(cb)
	}
	return c
}

// NumVars returns the number of input variables.
func (cv *Cover) NumVars() int { return cv.n }

// Len returns the number of cubes.
func (cv *Cover) Len() int { return len(cv.Cubes) }

// Add appends a cube to the cover.
func (cv *Cover) Add(c Cube) {
	if c.NumVars() != cv.n {
		panic(fmt.Sprintf("cube: adding %d-var cube to %d-var cover", c.NumVars(), cv.n))
	}
	cv.Cubes = append(cv.Cubes, c)
}

// Clone returns a deep copy of the cover.
func (cv *Cover) Clone() *Cover {
	out := NewCover(cv.n)
	out.Cubes = make([]Cube, len(cv.Cubes))
	for i, c := range cv.Cubes {
		out.Cubes[i] = c.Clone()
	}
	return out
}

// ContainsMinterm reports whether any cube covers minterm m.
func (cv *Cover) ContainsMinterm(m uint) bool {
	for _, c := range cv.Cubes {
		if c.ContainsMinterm(m) {
			return true
		}
	}
	return false
}

// LiteralCount returns the total number of literals across all cubes,
// the classic two-level cost measure.
func (cv *Cover) LiteralCount() int {
	total := 0
	for _, c := range cv.Cubes {
		total += c.NumLiterals()
	}
	return total
}

// RemoveContained deletes every cube that is contained in another single
// cube of the cover (single-cube containment).
func (cv *Cover) RemoveContained() {
	keep := cv.Cubes[:0]
	for i, c := range cv.Cubes {
		contained := false
		for j, d := range cv.Cubes {
			if i == j {
				continue
			}
			if d.Contains(c) && !(c.Contains(d) && j > i) {
				// When two cubes are identical, keep the earlier one.
				contained = true
				break
			}
		}
		if !contained {
			keep = append(keep, c)
		}
	}
	cv.Cubes = keep
}

// Sort orders cubes by descending minterm count, then lexicographically,
// giving deterministic output for serialization and tests.
func (cv *Cover) Sort() {
	sort.SliceStable(cv.Cubes, func(i, j int) bool {
		a, b := cv.Cubes[i], cv.Cubes[j]
		am, bm := a.MintermCount(), b.MintermCount()
		if am != bm {
			return am > bm
		}
		return a.String() < b.String()
	})
}

// Cofactor returns the cover's Shannon cofactor with respect to cube p.
func (cv *Cover) Cofactor(p Cube) *Cover {
	out := NewCover(cv.n)
	for _, c := range cv.Cubes {
		if cf, ok := c.Cofactor(p); ok {
			out.Add(cf)
		}
	}
	return out
}

// String renders the cover one cube per line.
func (cv *Cover) String() string {
	var b strings.Builder
	for i, c := range cv.Cubes {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(c.String())
	}
	return b.String()
}
