// Package cube implements single-output cubes and covers in positional
// cube notation, the interchange representation between .pla files, the
// espresso-style two-level minimizer, and dense truth tables.
//
// Each input variable occupies two bits in a packed word array:
// bit0 set means the cube admits the variable at 0, bit1 set means it
// admits the variable at 1. The four states are therefore
//
//	00  empty    (cube covers nothing; invalid in a cover)
//	01  Zero     (literal x̄: variable must be 0)
//	10  One      (literal x: variable must be 1)
//	11  Full     (variable unconstrained / don't care)
//
// A cube denotes the conjunction of its literals; a Cover denotes the
// disjunction of its cubes.
package cube

import (
	"fmt"
	"math/bits"
	"strings"
)

// Literal is the per-variable state of a cube.
type Literal uint8

// Literal values; see the package comment for the encoding.
const (
	Empty Literal = 0
	Zero  Literal = 1
	One   Literal = 2
	Full  Literal = 3
)

// Char returns the .pla character for the literal ('0', '1', '-').
func (l Literal) Char() byte {
	switch l {
	case Zero:
		return '0'
	case One:
		return '1'
	case Full:
		return '-'
	default:
		return '?'
	}
}

const varsPerWord = 32

// Cube is a product term over n input variables.
type Cube struct {
	n     int
	words []uint64
}

// New returns the full cube (every variable unconstrained) over n variables.
func New(n int) Cube {
	if n < 0 {
		panic("cube: negative variable count")
	}
	nw := (n + varsPerWord - 1) / varsPerWord
	c := Cube{n: n, words: make([]uint64, nw)}
	for i := range c.words {
		c.words[i] = ^uint64(0)
	}
	c.trim()
	return c
}

func (c *Cube) trim() {
	if rem := c.n % varsPerWord; rem != 0 && len(c.words) > 0 {
		c.words[len(c.words)-1] &= (1 << uint(2*rem)) - 1
	}
}

// NumVars returns the number of input variables.
func (c Cube) NumVars() int { return c.n }

// Val returns the literal state of variable i.
func (c Cube) Val(i int) Literal {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("cube: var %d out of range [0,%d)", i, c.n))
	}
	return Literal(c.words[i/varsPerWord] >> (2 * (uint(i) % varsPerWord)) & 3)
}

// SetVal sets the literal state of variable i, returning the modified cube.
// Cube uses value semantics internally, so SetVal copies on write.
func (c Cube) SetVal(i int, l Literal) Cube {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("cube: var %d out of range [0,%d)", i, c.n))
	}
	w := make([]uint64, len(c.words))
	copy(w, c.words)
	sh := 2 * (uint(i) % varsPerWord)
	w[i/varsPerWord] = w[i/varsPerWord]&^(3<<sh) | uint64(l)<<sh
	return Cube{n: c.n, words: w}
}

// Clone returns an independent copy of the cube.
func (c Cube) Clone() Cube {
	w := make([]uint64, len(c.words))
	copy(w, c.words)
	return Cube{n: c.n, words: w}
}

func (c Cube) mustMatch(o Cube) {
	if c.n != o.n {
		panic(fmt.Sprintf("cube: variable count mismatch %d vs %d", c.n, o.n))
	}
}

// Equal reports whether the two cubes are identical.
func (c Cube) Equal(o Cube) bool {
	if c.n != o.n {
		return false
	}
	for i, w := range c.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// evenMask selects bit0 of every variable pair, oddMask bit1.
const (
	evenMask = 0x5555555555555555
	oddMask  = 0xaaaaaaaaaaaaaaaa
)

// Distance returns the number of variables in which c and o conflict
// (their literal intersection is empty). Distance 0 means the cubes
// intersect; distance 1 is the consensus condition.
func (c Cube) Distance(o Cube) int {
	c.mustMatch(o)
	d := 0
	for i, w := range c.words {
		x := w & o.words[i]
		// A variable pair is 00 in x iff both its bits are clear.
		pairEmpty := ^(x | x>>1) & evenMask
		if i == len(c.words)-1 {
			// Mask out the unused trailing variable slots.
			if rem := c.n % varsPerWord; rem != 0 {
				pairEmpty &= (1 << uint(2*rem)) - 1
			}
		}
		d += bits.OnesCount64(pairEmpty)
	}
	return d
}

// Intersects reports whether the two cubes share at least one minterm.
func (c Cube) Intersects(o Cube) bool { return c.Distance(o) == 0 }

// Intersect returns the cube covering exactly the common minterms,
// and whether that intersection is non-empty.
func (c Cube) Intersect(o Cube) (Cube, bool) {
	c.mustMatch(o)
	w := make([]uint64, len(c.words))
	for i := range w {
		w[i] = c.words[i] & o.words[i]
	}
	r := Cube{n: c.n, words: w}
	for i := 0; i < c.n; i++ {
		if r.Val(i) == Empty {
			return Cube{}, false
		}
	}
	return r, true
}

// Contains reports whether c covers every minterm of o (c ⊇ o).
func (c Cube) Contains(o Cube) bool {
	c.mustMatch(o)
	for i, w := range o.words {
		if w&^c.words[i] != 0 {
			return false
		}
	}
	return true
}

// ContainsMinterm reports whether minterm m (binary encoding, variable 0
// the least significant bit) lies inside the cube.
func (c Cube) ContainsMinterm(m uint) bool {
	for i := 0; i < c.n; i++ {
		bit := Literal(One)
		if m>>uint(i)&1 == 0 {
			bit = Zero
		}
		if c.Val(i)&bit == 0 {
			return false
		}
	}
	return true
}

// Supercube returns the smallest cube containing both c and o.
func (c Cube) Supercube(o Cube) Cube {
	c.mustMatch(o)
	w := make([]uint64, len(c.words))
	for i := range w {
		w[i] = c.words[i] | o.words[i]
	}
	return Cube{n: c.n, words: w}
}

// Consensus returns the consensus cube of c and o and whether it exists.
// The consensus exists iff Distance(c, o) == 1; it is the supercube in the
// conflicting variable and the intersection elsewhere.
func (c Cube) Consensus(o Cube) (Cube, bool) {
	c.mustMatch(o)
	if c.Distance(o) != 1 {
		return Cube{}, false
	}
	r := New(c.n)
	for i := 0; i < c.n; i++ {
		a, b := c.Val(i), o.Val(i)
		if a&b == Empty {
			r = r.SetVal(i, a|b)
		} else {
			r = r.SetVal(i, a&b)
		}
	}
	return r, true
}

// Cofactor returns the Shannon cofactor of c with respect to cube p
// (espresso definition): empty if the cubes conflict, otherwise c with
// every variable that p binds raised to Full.
func (c Cube) Cofactor(p Cube) (Cube, bool) {
	c.mustMatch(p)
	if c.Distance(p) != 0 {
		return Cube{}, false
	}
	w := make([]uint64, len(c.words))
	for i := range w {
		// Raise to Full wherever p is not Full: result = c | ^p (within pairs).
		w[i] = c.words[i] | ^p.words[i]
	}
	r := Cube{n: c.n, words: w}
	r.trim()
	return r, true
}

// NumLiterals returns the number of bound variables (not Full).
func (c Cube) NumLiterals() int {
	lit := 0
	for i, w := range c.words {
		// A pair is Full iff both bits set; count pairs that are not 11.
		notFull := ^(w & (w >> 1)) & evenMask
		if i == len(c.words)-1 {
			if rem := c.n % varsPerWord; rem != 0 {
				notFull &= (1 << uint(2*rem)) - 1
			}
		}
		lit += bits.OnesCount64(notFull)
	}
	return lit
}

// MintermCount returns the number of minterms the cube covers: 2^(free vars).
func (c Cube) MintermCount() uint64 {
	free := c.n - c.NumLiterals()
	return 1 << uint(free)
}

// Minterms calls fn for every minterm covered by the cube, in ascending
// binary order.
func (c Cube) Minterms(fn func(m uint)) {
	freeVars := make([]int, 0, c.n)
	var base uint
	for i := 0; i < c.n; i++ {
		switch c.Val(i) {
		case One:
			base |= 1 << uint(i)
		case Full:
			freeVars = append(freeVars, i)
		case Empty:
			return
		}
	}
	total := uint(1) << uint(len(freeVars))
	for k := uint(0); k < total; k++ {
		m := base
		for j, v := range freeVars {
			if k>>uint(j)&1 == 1 {
				m |= 1 << uint(v)
			}
		}
		fn(m)
	}
}

// FromMinterm returns the cube covering exactly minterm m.
func FromMinterm(n int, m uint) Cube {
	c := New(n)
	for i := 0; i < n; i++ {
		if m>>uint(i)&1 == 1 {
			c = c.SetVal(i, One)
		} else {
			c = c.SetVal(i, Zero)
		}
	}
	return c
}

// Parse builds a cube from a .pla-style literal string such as "01-1".
// Character i binds variable i; accepted characters are '0', '1', '-', '2'
// and 'x'/'X' (the latter three all meaning unconstrained).
func Parse(s string) (Cube, error) {
	c := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			c = c.SetVal(i, Zero)
		case '1':
			c = c.SetVal(i, One)
		case '-', '2', 'x', 'X':
			// already Full
		default:
			return Cube{}, fmt.Errorf("cube: invalid literal character %q at position %d", s[i], i)
		}
	}
	return c, nil
}

// String renders the cube in .pla notation, e.g. "01-1".
func (c Cube) String() string {
	var b strings.Builder
	for i := 0; i < c.n; i++ {
		b.WriteByte(c.Val(i).Char())
	}
	return b.String()
}
