package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) Cube {
	t.Helper()
	c, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return c
}

func TestParseAndString(t *testing.T) {
	for _, s := range []string{"", "0", "1", "-", "01-1", "----", "110010"} {
		c := mustParse(t, s)
		if got := c.String(); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
	if c := mustParse(t, "2xX-"); c.String() != "----" {
		t.Fatalf("alt DC chars: got %q", c.String())
	}
	if _, err := Parse("01a"); err == nil {
		t.Fatal("expected error for invalid char")
	}
}

func TestValSetVal(t *testing.T) {
	c := New(40) // spans two words
	for i := 0; i < 40; i++ {
		if c.Val(i) != Full {
			t.Fatalf("new cube var %d = %v, want Full", i, c.Val(i))
		}
	}
	c2 := c.SetVal(0, Zero).SetVal(33, One).SetVal(39, Zero)
	if c2.Val(0) != Zero || c2.Val(33) != One || c2.Val(39) != Zero {
		t.Fatal("SetVal values not read back")
	}
	if c.Val(0) != Full {
		t.Fatal("SetVal mutated the receiver (should copy on write)")
	}
	if c2.Val(1) != Full || c2.Val(34) != Full {
		t.Fatal("SetVal disturbed neighboring variables")
	}
}

func TestDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"01-1", "01-1", 0},
		{"01-1", "11-1", 1},
		{"0101", "1010", 4},
		{"----", "0101", 0},
		{"0---", "1---", 1},
		{"00--", "11--", 2},
	}
	for _, tc := range cases {
		a, b := mustParse(t, tc.a), mustParse(t, tc.b)
		if got := a.Distance(b); got != tc.want {
			t.Errorf("Distance(%s,%s) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := b.Distance(a); got != tc.want {
			t.Errorf("Distance symmetric fail (%s,%s)", tc.b, tc.a)
		}
	}
}

func TestDistanceWideCube(t *testing.T) {
	// 70 variables spans three words; place conflicts in each word.
	a := New(70).SetVal(0, Zero).SetVal(35, One).SetVal(69, Zero)
	b := New(70).SetVal(0, One).SetVal(35, Zero).SetVal(69, One)
	if got := a.Distance(b); got != 3 {
		t.Fatalf("wide Distance = %d, want 3", got)
	}
}

func TestIntersect(t *testing.T) {
	a := mustParse(t, "0--1")
	b := mustParse(t, "-1-1")
	r, ok := a.Intersect(b)
	if !ok || r.String() != "01-1" {
		t.Fatalf("Intersect = %q ok=%v", r.String(), ok)
	}
	c := mustParse(t, "1---")
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint cubes reported intersecting")
	}
	if a.Intersects(c) {
		t.Fatal("Intersects wrong for disjoint cubes")
	}
}

func TestContains(t *testing.T) {
	big := mustParse(t, "0---")
	small := mustParse(t, "01-1")
	if !big.Contains(small) {
		t.Fatal("0--- should contain 01-1")
	}
	if small.Contains(big) {
		t.Fatal("01-1 should not contain 0---")
	}
	if !big.Contains(big) {
		t.Fatal("cube should contain itself")
	}
}

func TestContainsMinterm(t *testing.T) {
	c := mustParse(t, "01-1") // x0=0, x1=1, x2 free, x3=1
	// minterm bits: variable i is bit i.
	want := map[uint]bool{
		0b1010: true,  // x0=0,x1=1,x2=0,x3=1
		0b1110: true,  // x2=1
		0b1011: false, // x0=1
		0b0010: false, // x3=0
	}
	for m, w := range want {
		if got := c.ContainsMinterm(m); got != w {
			t.Errorf("ContainsMinterm(%04b) = %v, want %v", m, got, w)
		}
	}
}

func TestSupercube(t *testing.T) {
	a := mustParse(t, "010")
	b := mustParse(t, "011")
	if got := a.Supercube(b).String(); got != "01-" {
		t.Fatalf("Supercube = %q, want 01-", got)
	}
	c := mustParse(t, "111")
	if got := a.Supercube(c).String(); got != "-1-" {
		t.Fatalf("Supercube = %q, want -1-", got)
	}
}

func TestConsensus(t *testing.T) {
	a := mustParse(t, "01-")
	b := mustParse(t, "11-")
	r, ok := a.Consensus(b)
	if !ok || r.String() != "-1-" {
		t.Fatalf("Consensus = %q ok=%v, want -1-", r.String(), ok)
	}
	// Distance 2: no consensus.
	c := mustParse(t, "10-")
	if _, ok := a.Consensus(c); ok {
		t.Fatal("consensus should not exist at distance 2")
	}
	// Distance 0: no consensus either (per definition used here).
	d := mustParse(t, "0--")
	if _, ok := a.Consensus(d); ok {
		t.Fatal("consensus should not exist at distance 0")
	}
}

func TestCofactor(t *testing.T) {
	c := mustParse(t, "01-1")
	p := mustParse(t, "0---")
	r, ok := c.Cofactor(p)
	if !ok || r.String() != "-1-1" {
		t.Fatalf("Cofactor = %q ok=%v, want -1-1", r.String(), ok)
	}
	conflict := mustParse(t, "1---")
	if _, ok := c.Cofactor(conflict); ok {
		t.Fatal("cofactor of conflicting cube should be empty")
	}
}

func TestLiteralAndMintermCounts(t *testing.T) {
	cases := []struct {
		s    string
		lits int
		mins uint64
	}{
		{"----", 0, 16},
		{"0---", 1, 8},
		{"01-1", 3, 2},
		{"0101", 4, 1},
	}
	for _, tc := range cases {
		c := mustParse(t, tc.s)
		if got := c.NumLiterals(); got != tc.lits {
			t.Errorf("%s NumLiterals = %d, want %d", tc.s, got, tc.lits)
		}
		if got := c.MintermCount(); got != tc.mins {
			t.Errorf("%s MintermCount = %d, want %d", tc.s, got, tc.mins)
		}
	}
}

func TestMintermsEnumeration(t *testing.T) {
	c := mustParse(t, "-1-0")
	var got []uint
	c.Minterms(func(m uint) { got = append(got, m) })
	if uint64(len(got)) != c.MintermCount() {
		t.Fatalf("enumerated %d minterms, want %d", len(got), c.MintermCount())
	}
	seen := map[uint]bool{}
	for _, m := range got {
		if !c.ContainsMinterm(m) {
			t.Fatalf("enumerated minterm %04b not in cube", m)
		}
		if seen[m] {
			t.Fatalf("duplicate minterm %04b", m)
		}
		seen[m] = true
	}
}

func TestFromMinterm(t *testing.T) {
	c := FromMinterm(4, 0b1010)
	if c.String() != "0101" {
		t.Fatalf("FromMinterm = %q, want 0101", c.String())
	}
	if !c.ContainsMinterm(0b1010) || c.MintermCount() != 1 {
		t.Fatal("FromMinterm should cover exactly its minterm")
	}
}

func randomCube(rng *rand.Rand, n int) Cube {
	c := New(n)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			c = c.SetVal(i, Zero)
		case 1:
			c = c.SetVal(i, One)
		}
	}
	return c
}

// Property: Distance(a,b) == 0 iff a and b share a minterm (checked
// exhaustively on small n).
func TestDistanceZeroIffSharedMinterm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		a, b := randomCube(rng, n), randomCube(rng, n)
		shared := false
		for m := uint(0); m < 1<<uint(n); m++ {
			if a.ContainsMinterm(m) && b.ContainsMinterm(m) {
				shared = true
				break
			}
		}
		if (a.Distance(b) == 0) != shared {
			t.Fatalf("distance/minterm disagreement: %s vs %s", a, b)
		}
	}
}

// Property: Contains(a,b) iff every minterm of b is in a.
func TestContainsMatchesMinterms(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		a, b := randomCube(rng, n), randomCube(rng, n)
		all := true
		b.Minterms(func(m uint) {
			if !a.ContainsMinterm(m) {
				all = false
			}
		})
		if a.Contains(b) != all {
			t.Fatalf("contains/minterm disagreement: %s vs %s", a, b)
		}
	}
}

// Property: supercube contains both operands.
func TestSupercubeContainsOperands(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		a, b := randomCube(rng, n), randomCube(rng, n)
		s := a.Supercube(b)
		return s.Contains(a) && s.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoverBasics(t *testing.T) {
	cv := NewCover(4)
	cv.Add(mustParse(t, "01--"))
	cv.Add(mustParse(t, "1--1"))
	if cv.Len() != 2 || cv.NumVars() != 4 {
		t.Fatal("cover shape wrong")
	}
	if !cv.ContainsMinterm(0b0010) { // x0=0,x1=1 matches first cube
		t.Fatal("cover should contain 0b0010")
	}
	if cv.ContainsMinterm(0b0100) {
		t.Fatal("cover should not contain 0b0100")
	}
	if got := cv.LiteralCount(); got != 4 {
		t.Fatalf("LiteralCount = %d, want 4", got)
	}
}

func TestCoverRemoveContained(t *testing.T) {
	cv := CoverOf(3,
		mustParse(t, "01-"),
		mustParse(t, "010"), // contained in 01-
		mustParse(t, "1--"),
		mustParse(t, "1--"), // duplicate
	)
	cv.RemoveContained()
	if cv.Len() != 2 {
		t.Fatalf("RemoveContained left %d cubes, want 2:\n%s", cv.Len(), cv)
	}
}

func TestCoverCofactor(t *testing.T) {
	cv := CoverOf(3,
		mustParse(t, "01-"),
		mustParse(t, "1--"),
	)
	cf := cv.Cofactor(mustParse(t, "0--"))
	if cf.Len() != 1 || cf.Cubes[0].String() != "-1-" {
		t.Fatalf("cofactor wrong:\n%s", cf)
	}
}

func TestCoverSortDeterministic(t *testing.T) {
	cv := CoverOf(3,
		mustParse(t, "111"),
		mustParse(t, "0--"),
		mustParse(t, "-1-"),
	)
	cv.Sort()
	want := []string{"-1-", "0--", "111"}
	for i, w := range want {
		if cv.Cubes[i].String() != w {
			t.Fatalf("sort order: got %s at %d, want %s", cv.Cubes[i], i, w)
		}
	}
}

func TestCoverAddWrongWidthPanics(t *testing.T) {
	cv := NewCover(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic adding wrong-width cube")
		}
	}()
	cv.Add(New(4))
}
