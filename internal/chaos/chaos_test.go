package chaos_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"relsyn/internal/chaos"
	"relsyn/internal/jobqueue"
	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
	"relsyn/internal/store"
	"relsyn/internal/tt"
)

func TestTriggerOrdinals(t *testing.T) {
	cases := []struct {
		name  string
		trig  *chaos.Trigger
		calls int
		want  []int // 1-based ordinals that must fire
	}{
		{"zero value never fires", &chaos.Trigger{}, 5, nil},
		{"on 3 fires once", &chaos.Trigger{On: 3}, 6, []int{3}},
		{"on 2 count 3", &chaos.Trigger{On: 2, Count: 3}, 6, []int{2, 3, 4}},
		{"on 4 forever", &chaos.Trigger{On: 4, Count: -1}, 7, []int{4, 5, 6, 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var fired []int
			for i := 1; i <= tc.calls; i++ {
				if tc.trig.Fire() {
					fired = append(fired, i)
				}
			}
			if fmt.Sprint(fired) != fmt.Sprint(tc.want) {
				t.Fatalf("fired on %v, want %v", fired, tc.want)
			}
			if tc.trig.Fired() != len(tc.want) {
				t.Fatalf("Fired() = %d, want %d", tc.trig.Fired(), len(tc.want))
			}
		})
	}
	var nilTrig *chaos.Trigger
	if nilTrig.Fire() || nilTrig.Fired() != 0 {
		t.Fatal("nil trigger must be inert")
	}
}

func TestInjectedErrors(t *testing.T) {
	err := chaos.Injected("write")
	if !chaos.IsInjected(err) {
		t.Fatal("IsInjected(Injected(...)) = false")
	}
	if !chaos.IsInjected(fmt.Errorf("outer: %w", err)) {
		t.Fatal("IsInjected must see through wrapping")
	}
	if chaos.IsInjected(errors.New("organic failure")) {
		t.Fatal("IsInjected claimed an organic error")
	}
	if chaos.IsInjected(nil) {
		t.Fatal("IsInjected(nil) = true")
	}
}

// TestTornWriteRecovered injects a torn write into a real store's WAL
// append — the power-cut-mid-write artifact — and proves the next Open
// truncates the torn tail and keeps every record that was fully framed.
func TestTornWriteRecovered(t *testing.T) {
	dir := t.TempDir()
	faults := &chaos.FSFaults{TornWrite: &chaos.Trigger{On: 3}}
	st, _, err := store.Open(store.Options{Dir: dir, FS: chaos.FS(store.OSFS{}, faults)})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := st.Append(store.Record{ID: "a", Status: store.StatusQueued}); err != nil {
		t.Fatalf("append a: %v", err)
	}
	if err := st.Append(store.Record{ID: "b", Status: store.StatusQueued}); err != nil {
		t.Fatalf("append b: %v", err)
	}
	// Third append tears: half the frame lands on disk, then the error
	// surfaces to the caller (whose breaker would record it).
	err = st.Append(store.Record{ID: "c", Status: store.StatusQueued})
	if !chaos.IsInjected(err) {
		t.Fatalf("torn append error = %v, want injected", err)
	}
	st.Close()

	st2, recs, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer st2.Close()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2 (torn frame dropped)", len(recs))
	}
	if st2.Stats().TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st2.Stats().TornTails)
	}
	// The store must be fully usable after absorbing the tear.
	if err := st2.Append(store.Record{ID: "d", Status: store.StatusQueued}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestSyncErrorSurfaces(t *testing.T) {
	faults := &chaos.FSFaults{SyncErr: &chaos.Trigger{On: 1, Count: -1}}
	st, _, err := store.Open(store.Options{Dir: t.TempDir(), FS: chaos.FS(store.OSFS{}, faults)})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	err = st.Append(store.Record{ID: "a", Status: store.StatusQueued})
	if !chaos.IsInjected(err) {
		t.Fatalf("append under fsync fault = %v, want injected", err)
	}
	if st.Stats().AppendErrors != 1 {
		t.Fatalf("AppendErrors = %d, want 1", st.Stats().AppendErrors)
	}
}

// TestSyncErrorOpensBreaker wires the chaos FS, a real store, and the
// breaker together: persistent fsync failures must trip the circuit
// open, and a healthy probe after cooldown must close it.
func TestSyncErrorOpensBreaker(t *testing.T) {
	faults := &chaos.FSFaults{SyncErr: &chaos.Trigger{On: 1, Count: 3}}
	st, _, err := store.Open(store.Options{Dir: t.TempDir(), FS: chaos.FS(store.OSFS{}, faults)})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	b := store.NewBreaker(3, time.Second)
	now := time.Unix(0, 0)
	b.SetClock(func() time.Time { return now })

	appends := 0
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			break
		}
		appends++
		b.Record(st.Append(store.Record{ID: fmt.Sprintf("j%d", i), Status: store.StatusQueued}))
	}
	if appends != 3 {
		t.Fatalf("breaker admitted %d appends before opening, want 3", appends)
	}
	if b.State() != store.BreakerOpen {
		t.Fatalf("breaker state = %s, want open", b.State())
	}
	// Cooldown passes; the fault script is exhausted, so the half-open
	// probe succeeds and the circuit closes.
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the post-cooldown probe")
	}
	b.Record(st.Append(store.Record{ID: "probe", Status: store.StatusQueued}))
	if b.State() != store.BreakerClosed {
		t.Fatalf("breaker state after healthy probe = %s, want closed", b.State())
	}
}

func TestQueueReject(t *testing.T) {
	q := jobqueue.NewWithRegistry(8, obs.NewRegistry())
	q.SetFaultHook(&chaos.QueueFaults{Reject: &chaos.Trigger{On: 2}})
	if err := q.Enqueue(&jobqueue.Item{ID: "a"}); err != nil {
		t.Fatalf("first enqueue: %v", err)
	}
	err := q.Enqueue(&jobqueue.Item{ID: "b"})
	if !errors.Is(err, jobqueue.ErrFull) {
		t.Fatalf("injected rejection = %v, want ErrFull (backpressure path)", err)
	}
	if err := q.Enqueue(&jobqueue.Item{ID: "c"}); err != nil {
		t.Fatalf("third enqueue: %v", err)
	}
	if s := q.Stats(); s.Len != 2 || s.Rejected != 1 {
		t.Fatalf("stats = %+v, want len 2 rejected 1", s)
	}
}

// TestQueueDropFiresExpiry proves a chaos-dropped item still terminates
// its waiters: the drop routes through OnExpire, the same path a
// deadline expiry takes, so the owner can fail the job.
func TestQueueDropFiresExpiry(t *testing.T) {
	q := jobqueue.NewWithRegistry(8, obs.NewRegistry())
	q.SetFaultHook(&chaos.QueueFaults{Drop: &chaos.Trigger{On: 1}})
	expired := make(chan string, 2)
	for _, id := range []string{"a", "b"} {
		id := id
		if err := q.Enqueue(&jobqueue.Item{ID: id, OnExpire: func() { expired <- id }}); err != nil {
			t.Fatalf("enqueue %s: %v", id, err)
		}
	}
	it, err := q.Dequeue(context.Background())
	if err != nil {
		t.Fatalf("dequeue: %v", err)
	}
	// The first item was dropped; the dequeuer transparently got the
	// second, and the dropped item's expiry hook fired.
	if it.ID != "b" {
		t.Fatalf("delivered %s, want b (a dropped)", it.ID)
	}
	select {
	case id := <-expired:
		if id != "a" {
			t.Fatalf("expired %s, want a", id)
		}
	case <-time.After(time.Second):
		t.Fatal("dropped item's OnExpire never fired")
	}
	if s := q.Stats(); s.Dropped != 1 || s.Dequeued != 1 {
		t.Fatalf("stats = %+v, want dropped 1 dequeued 1", s)
	}
}

func TestQueueLatency(t *testing.T) {
	q := jobqueue.NewWithRegistry(8, obs.NewRegistry())
	q.SetFaultHook(&chaos.QueueFaults{
		LatencyOn: &chaos.Trigger{On: 1},
		Latency:   30 * time.Millisecond,
	})
	if err := q.Enqueue(&jobqueue.Item{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := q.Dequeue(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delivery took %v, want >= 30ms of injected latency", d)
	}
}

func TestWorkerFaults(t *testing.T) {
	inner := func(ctx context.Context, f *tt.Function, opt pipeline.JobOptions) (*pipeline.JobResult, error) {
		return &pipeline.JobResult{}, nil
	}

	t.Run("fail", func(t *testing.T) {
		b := chaos.Backend(inner, &chaos.WorkerFaults{Fail: &chaos.Trigger{On: 2}})
		if _, err := b(context.Background(), nil, pipeline.JobOptions{}); err != nil {
			t.Fatalf("call 1: %v", err)
		}
		if _, err := b(context.Background(), nil, pipeline.JobOptions{}); !chaos.IsInjected(err) {
			t.Fatalf("call 2 = %v, want injected", err)
		}
		if _, err := b(context.Background(), nil, pipeline.JobOptions{}); err != nil {
			t.Fatalf("call 3: %v", err)
		}
	})

	t.Run("panic", func(t *testing.T) {
		b := chaos.Backend(inner, &chaos.WorkerFaults{Panic: &chaos.Trigger{On: 1}})
		defer func() {
			if recover() == nil {
				t.Fatal("backend did not panic")
			}
		}()
		_, _ = b(context.Background(), nil, pipeline.JobOptions{})
	})

	t.Run("stall cut by context", func(t *testing.T) {
		b := chaos.Backend(inner, &chaos.WorkerFaults{
			StallOn: &chaos.Trigger{On: 1},
			Stall:   time.Minute,
		})
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, err := b(ctx, nil, pipeline.JobOptions{})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("stalled call = %v, want DeadlineExceeded", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("stall ignored the context deadline")
		}
	})
}
