// Package chaos is the deterministic fault-injection harness for the
// relsynd durability stack. Where internal/faultinject fires faults at
// pipeline stage boundaries, chaos targets the serving seams around the
// pipeline:
//
//   - store: torn writes, short writes, fsync errors, and open/rename
//     failures injected through the internal/store FS seam — proving
//     that WAL recovery truncates torn tails and that the circuit
//     breaker degrades to in-memory serving instead of failing the
//     request path;
//   - queue: admission rejections, silent drops, and delivery latency
//     through jobqueue.FaultHook — proving that every accepted job still
//     reaches a terminal state via the deadline machinery;
//   - worker: backend panics, stalls, and errors through a Backend
//     middleware — proving the worker pool converts panics into failed
//     jobs rather than crashing the process.
//
// Like faultinject, everything is counter-deterministic: a Trigger fires
// on exact call ordinals, never on randomness or time, so chaos tests
// are reproducible and race-detector friendly.
package chaos

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"relsyn/internal/jobqueue"
	"relsyn/internal/pipeline"
	"relsyn/internal/store"
	"relsyn/internal/tt"
)

// Trigger fires deterministically on call ordinals: calls 1..On-1 pass,
// then Count consecutive calls fire (Count 0 means 1; Count < 0 means
// every call from On onward). The zero value never fires. Safe for
// concurrent use.
type Trigger struct {
	// On is the 1-based call ordinal of the first fire (0 = never).
	On int
	// Count is the number of consecutive fires (0 → 1, negative → all).
	Count int

	mu    sync.Mutex
	calls int
	fired int
}

// Fire records one call and reports whether the fault fires on it.
func (t *Trigger) Fire() bool {
	if t == nil || t.On <= 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls++
	if t.calls < t.On {
		return false
	}
	count := t.Count
	if count == 0 {
		count = 1
	}
	if count > 0 && t.fired >= count {
		return false
	}
	t.fired++
	return true
}

// Fired returns how many times the trigger has fired.
func (t *Trigger) Fired() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fired
}

// injectedError is the concrete type behind every error the harness
// fabricates, so tests can assert provenance via IsInjected.
type injectedError struct{ op string }

func (e *injectedError) Error() string { return "chaos: injected " + e.op + " fault" }

// Injected fabricates a typed fault error for op.
func Injected(op string) error { return &injectedError{op: op} }

// IsInjected reports whether err (anywhere in its chain) was fabricated
// by this package.
func IsInjected(err error) bool {
	for err != nil {
		if _, ok := err.(*injectedError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// ---------------------------------------------------------------------
// Store faults: an FS decorator over internal/store's filesystem seam.
// ---------------------------------------------------------------------

// FSFaults scripts filesystem faults. Each trigger counts its own
// operation class independently.
type FSFaults struct {
	// WriteErr fails a WAL/snapshot write outright (nothing written).
	WriteErr *Trigger
	// TornWrite writes only the first half of the buffer, then fails —
	// the classic torn-frame crash artifact WAL recovery must absorb.
	TornWrite *Trigger
	// SyncErr fails fsync (data written but durability unknown).
	SyncErr *Trigger
	// OpenErr fails OpenAppend/Create/Open.
	OpenErr *Trigger
	// RenameErr fails the snapshot publish rename.
	RenameErr *Trigger
}

// FS wraps inner with the scripted faults. The returned FS is safe for
// concurrent use to the extent inner is. A nil faults script returns
// inner unchanged.
func FS(inner store.FS, f *FSFaults) store.FS {
	if f == nil {
		return inner
	}
	return &faultFS{inner: inner, f: f}
}

type faultFS struct {
	inner store.FS
	f     *FSFaults
}

func (c *faultFS) MkdirAll(dir string) error { return c.inner.MkdirAll(dir) }

func (c *faultFS) OpenAppend(name string) (store.File, error) {
	if c.f.OpenErr.Fire() {
		return nil, Injected("open")
	}
	fl, err := c.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: fl, f: c.f}, nil
}

func (c *faultFS) Create(name string) (store.File, error) {
	if c.f.OpenErr.Fire() {
		return nil, Injected("create")
	}
	fl, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: fl, f: c.f}, nil
}

func (c *faultFS) Open(name string) (io.ReadCloser, error) {
	if c.f.OpenErr.Fire() {
		return nil, Injected("open")
	}
	return c.inner.Open(name)
}

func (c *faultFS) Rename(o, n string) error {
	if c.f.RenameErr.Fire() {
		return Injected("rename")
	}
	return c.inner.Rename(o, n)
}

func (c *faultFS) Remove(name string) error               { return c.inner.Remove(name) }
func (c *faultFS) Truncate(name string, size int64) error { return c.inner.Truncate(name, size) }

type faultFile struct {
	inner store.File
	f     *FSFaults
}

func (c *faultFile) Write(p []byte) (int, error) {
	if c.f.WriteErr.Fire() {
		return 0, Injected("write")
	}
	if c.f.TornWrite.Fire() {
		// Write a strict prefix — the on-disk state a power cut leaves
		// behind mid-append — then report failure.
		n, err := c.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		_ = c.inner.Sync() // make the torn prefix the durable state
		return n, Injected("torn write")
	}
	return c.inner.Write(p)
}

func (c *faultFile) Sync() error {
	if c.f.SyncErr.Fire() {
		return Injected("sync")
	}
	return c.inner.Sync()
}

func (c *faultFile) Close() error { return c.inner.Close() }

// ---------------------------------------------------------------------
// Queue faults: a jobqueue.FaultHook.
// ---------------------------------------------------------------------

// QueueFaults scripts job-queue faults. It implements
// jobqueue.FaultHook; install with Queue.SetFaultHook.
type QueueFaults struct {
	// Reject vetoes an Enqueue with jobqueue.ErrFull (backpressure).
	Reject *Trigger
	// Drop discards a dequeued item before delivery; its OnExpire hook
	// still fires so waiters terminate.
	Drop *Trigger
	// LatencyOn delays a delivery by Latency.
	LatencyOn *Trigger
	Latency   time.Duration
}

var _ jobqueue.FaultHook = (*QueueFaults)(nil)

// Admit implements jobqueue.FaultHook.
func (q *QueueFaults) Admit(*jobqueue.Item) error {
	if q.Reject.Fire() {
		return fmt.Errorf("chaos: injected admission rejection: %w", jobqueue.ErrFull)
	}
	return nil
}

// Deliver implements jobqueue.FaultHook.
func (q *QueueFaults) Deliver(*jobqueue.Item) bool {
	if q.LatencyOn.Fire() && q.Latency > 0 {
		time.Sleep(q.Latency)
	}
	return !q.Drop.Fire()
}

// ---------------------------------------------------------------------
// Worker faults: a Backend middleware.
// ---------------------------------------------------------------------

// backendFunc matches internal/server.Backend without importing the
// server package (which would preclude use from server-internal tests).
type backendFunc = func(ctx context.Context, f *tt.Function, opt pipeline.JobOptions) (*pipeline.JobResult, error)

// WorkerFaults scripts worker-execution faults.
type WorkerFaults struct {
	// Panic panics inside the backend — the worker pool must convert it
	// into a failed job, never a process crash.
	Panic *Trigger
	// Fail returns an injected error.
	Fail *Trigger
	// StallOn blocks the backend for Stall (or until ctx is done),
	// simulating a wedged computation that must be cut off by the job
	// deadline.
	StallOn *Trigger
	Stall   time.Duration
}

// Backend wraps inner with the scripted worker faults.
func Backend(inner backendFunc, w *WorkerFaults) backendFunc {
	return func(ctx context.Context, f *tt.Function, opt pipeline.JobOptions) (*pipeline.JobResult, error) {
		if w.Panic.Fire() {
			panic("chaos: injected worker panic")
		}
		if w.Fail.Fire() {
			return nil, Injected("worker")
		}
		if w.StallOn.Fire() && w.Stall > 0 {
			select {
			case <-time.After(w.Stall):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return inner(ctx, f, opt)
	}
}
