package benchmarks

import (
	"math"
	"testing"

	"relsyn/internal/complexity"
)

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestLoadDeterministicAndIsolated(t *testing.T) {
	a, err := Load("bench")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("bench")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("Load not deterministic")
	}
	// Mutating a loaded copy must not poison the cache.
	a.SetPhase(0, 0, 2)
	c, _ := Load("bench")
	if !b.Equal(c) {
		t.Fatal("cache shares storage with callers")
	}
}

func TestSuiteMatchesTable1(t *testing.T) {
	for _, s := range Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			f, err := Load(s.Name)
			if err != nil {
				t.Fatal(err)
			}
			if f.NumIn != s.Inputs || f.NumOut() != s.Outputs {
				t.Fatalf("shape %dx%d, want %dx%d", f.NumIn, f.NumOut(), s.Inputs, s.Outputs)
			}
			if err := f.Validate(); err != nil {
				t.Fatal(err)
			}
			if dc := f.DCFraction(); math.Abs(dc-s.DCFraction) > 0.01 {
				t.Errorf("%%DC = %.3f, want %.3f", dc, s.DCFraction)
			}
			cf, err := complexity.FactorMean(f)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(cf-s.Cf) > 0.025 {
				t.Errorf("C^f = %.3f, want %.3f", cf, s.Cf)
			}
			// E[C^f] follows from the signal probabilities; it should land
			// near the published value since the on/off split was derived
			// from it.
			ecf, err := complexity.ExpectedMean(f)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ecf-s.ExpectedCf) > 0.03 {
				t.Errorf("E[C^f] = %.3f, want %.3f", ecf, s.ExpectedCf)
			}
			if f.Name != s.Name {
				t.Errorf("Name = %q", f.Name)
			}
		})
	}
}

func TestLoadAllOrder(t *testing.T) {
	fns, err := LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	specs := Specs()
	if len(fns) != len(specs) {
		t.Fatalf("LoadAll returned %d, want %d", len(fns), len(specs))
	}
	for i, f := range fns {
		if f.Name != specs[i].Name {
			t.Fatalf("order wrong at %d: %s", i, f.Name)
		}
	}
}
