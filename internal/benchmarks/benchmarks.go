// Package benchmarks provides the evaluation suite: deterministic
// synthetic stand-ins for the MCNC .pla benchmarks of paper Table 1.
//
// The original MCNC files are not redistributable here, so each stand-in
// is generated (internal/synthetic, fixed seeds) to match the published
// structural properties that drive the paper's algorithms: input and
// output counts, %DC, complexity factor C^f, and — via the expected
// complexity factor E[C^f] = f0²+f1²+fDC² — the on/off signal
// probability split. The paper's own random1–random3 benchmarks were
// generated exactly this way by the authors.
//
// On/off splits below are recovered from Table 1 by solving
// f0+f1 = 1−fDC and f0²+f1² = E[C^f]−fDC² per benchmark.
package benchmarks

import (
	"fmt"
	"sync"

	"relsyn/internal/synthetic"
	"relsyn/internal/tt"
)

// Spec describes one suite benchmark's published properties (paper
// Table 1) and the generator parameters that realize them.
type Spec struct {
	Name    string
	Inputs  int
	Outputs int
	// Published properties (targets for the stand-in).
	DCFraction float64 // %DC / 100
	ExpectedCf float64 // E[C^f]
	Cf         float64 // measured C^f
	// OnFraction implied by (DCFraction, ExpectedCf); the smaller care
	// phase is assigned to the on-set, the PLA convention.
	OnFraction float64
	Seed       int64
}

// Specs lists the twelve Table 1 benchmarks in paper order.
func Specs() []Spec {
	return []Spec{
		{Name: "bench", Inputs: 6, Outputs: 8, DCFraction: 0.689, ExpectedCf: 0.533, Cf: 0.540, OnFraction: 0.085, Seed: 1001},
		{Name: "fout", Inputs: 6, Outputs: 10, DCFraction: 0.414, ExpectedCf: 0.351, Cf: 0.338, OnFraction: 0.230, Seed: 1002},
		{Name: "p3", Inputs: 8, Outputs: 14, DCFraction: 0.796, ExpectedCf: 0.671, Cf: 0.805, OnFraction: 0.011, Seed: 1003},
		{Name: "p1", Inputs: 8, Outputs: 18, DCFraction: 0.777, ExpectedCf: 0.641, Cf: 0.788, OnFraction: 0.032, Seed: 1004},
		{Name: "exp", Inputs: 8, Outputs: 18, DCFraction: 0.772, ExpectedCf: 0.644, Cf: 0.788, OnFraction: 0.009, Seed: 1005},
		{Name: "test4", Inputs: 8, Outputs: 30, DCFraction: 0.715, ExpectedCf: 0.560, Cf: 0.557, OnFraction: 0.079, Seed: 1006},
		{Name: "ex1010", Inputs: 10, Outputs: 10, DCFraction: 0.703, ExpectedCf: 0.540, Cf: 0.539, OnFraction: 0.119, Seed: 1007},
		{Name: "exam", Inputs: 10, Outputs: 10, DCFraction: 0.868, ExpectedCf: 0.768, Cf: 0.802, OnFraction: 0.012, Seed: 1008},
		{Name: "t4", Inputs: 12, Outputs: 8, DCFraction: 0.439, ExpectedCf: 0.477, Cf: 0.867, OnFraction: 0.029, Seed: 1009},
		{Name: "random1", Inputs: 12, Outputs: 12, DCFraction: 0.686, ExpectedCf: 0.52, Cf: 0.49, OnFraction: 0.150, Seed: 1010},
		{Name: "random2", Inputs: 12, Outputs: 12, DCFraction: 0.686, ExpectedCf: 0.52, Cf: 0.667, OnFraction: 0.150, Seed: 1011},
		{Name: "random3", Inputs: 12, Outputs: 12, DCFraction: 0.686, ExpectedCf: 0.52, Cf: 0.826, OnFraction: 0.150, Seed: 1012},
	}
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*tt.Function{}
)

// Load generates (or returns the cached) stand-in for the named
// benchmark. Generation is deterministic per name.
func Load(name string) (*tt.Function, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if f, ok := cache[name]; ok {
		return f.Clone(), nil
	}
	for _, s := range Specs() {
		if s.Name != name {
			continue
		}
		f, err := generate(s)
		if err != nil {
			return nil, err
		}
		cache[name] = f
		return f.Clone(), nil
	}
	return nil, fmt.Errorf("benchmarks: unknown benchmark %q", name)
}

// LoadAll generates the whole suite in paper order.
func LoadAll() ([]*tt.Function, error) {
	var out []*tt.Function
	for _, s := range Specs() {
		f, err := Load(s.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func generate(s Spec) (*tt.Function, error) {
	f, err := synthetic.Generate(synthetic.Params{
		Inputs:     s.Inputs,
		Outputs:    s.Outputs,
		DCFraction: s.DCFraction,
		OnFraction: s.OnFraction,
		TargetCf:   s.Cf,
		Tolerance:  0.02,
		Seed:       s.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("benchmarks: generating %s: %w", s.Name, err)
	}
	f.Name = s.Name
	return f, nil
}
