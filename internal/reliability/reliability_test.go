package reliability

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"relsyn/internal/tt"
)

// mustRate unwraps an (ErrorRate*, error) pair for tests whose inputs
// are dimensionally valid by construction: mustRate(t)(ErrorRate(...)).
func mustRate(t *testing.T) func(float64, error) float64 {
	return func(r float64, err error) float64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
}

func randomFunction(rng *rand.Rand, n, m int) *tt.Function {
	f := tt.New(n, m)
	for o := 0; o < m; o++ {
		for mm := 0; mm < f.Size(); mm++ {
			f.SetPhase(o, mm, tt.Phase(rng.Intn(3)))
		}
	}
	return f
}

func naiveExact(f *tt.Function, o int) Counts {
	var c Counts
	n := f.NumIn
	for m := 0; m < f.Size(); m++ {
		switch f.Phase(o, m) {
		case tt.On, tt.Off:
			for b := 0; b < n; b++ {
				nb := f.Phase(o, m^(1<<uint(b)))
				if (f.Phase(o, m) == tt.On && nb == tt.Off) || (f.Phase(o, m) == tt.Off && nb == tt.On) {
					c.BasePairs++
				}
			}
		case tt.DC:
			on, off := 0, 0
			for b := 0; b < n; b++ {
				switch f.Phase(o, m^(1<<uint(b))) {
				case tt.On:
					on++
				case tt.Off:
					off++
				}
			}
			if on < off {
				c.MinDCPairs += on
				c.MaxDCPairs += off
			} else {
				c.MinDCPairs += off
				c.MaxDCPairs += on
			}
		}
	}
	return c
}

func TestExactCountsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{2, 4, 6, 8} {
		for trial := 0; trial < 5; trial++ {
			f := randomFunction(rng, n, 1)
			got := ExactCounts(f, 0)
			want := naiveExact(f, 0)
			if got != want {
				t.Fatalf("n=%d: got %+v want %+v", n, got, want)
			}
		}
	}
}

func TestExactCountsXOR(t *testing.T) {
	// Fully specified parity: every one of the n·2^n events propagates.
	n := 5
	f := tt.New(n, 1)
	for m := 0; m < f.Size(); m++ {
		if popcount(m)%2 == 1 {
			f.SetPhase(0, m, tt.On)
		}
	}
	c := ExactCounts(f, 0)
	if c.BasePairs != n*f.Size() {
		t.Fatalf("XOR base pairs = %d, want %d", c.BasePairs, n*f.Size())
	}
	if c.MinDCPairs != 0 || c.MaxDCPairs != 0 {
		t.Fatal("fully specified function should have zero DC pair counts")
	}
	lo, hi := Bounds(f, 0)
	if lo != 1.0 || hi != 1.0 {
		t.Fatalf("XOR bounds = (%v,%v), want (1,1)", lo, hi)
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

func TestExactCountsConstant(t *testing.T) {
	f := tt.New(4, 1)
	c := ExactCounts(f, 0)
	if c.BasePairs != 0 || c.MinDCPairs != 0 || c.MaxDCPairs != 0 {
		t.Fatalf("constant function counts = %+v, want zeros", c)
	}
}

func TestBoundsOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		f := randomFunction(rng, 6, 1)
		lo, hi := Bounds(f, 0)
		if lo > hi {
			t.Fatalf("lo %v > hi %v", lo, hi)
		}
		if lo < 0 || hi > 1 {
			t.Fatalf("bounds (%v,%v) out of [0,1]", lo, hi)
		}
	}
}

// Any complete assignment of the DCs must land inside [lo, hi] when its
// error rate is measured against the original care set.
func TestBoundsContainAllAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		spec := randomFunction(rng, 5, 1)
		lo, hi := Bounds(spec, 0)
		for assignTrial := 0; assignTrial < 10; assignTrial++ {
			impl := spec.Clone()
			spec.Outs[0].DC.ForEach(func(m int) {
				if rng.Intn(2) == 0 {
					impl.SetPhase(0, m, tt.On)
				} else {
					impl.SetPhase(0, m, tt.Off)
				}
			})
			er := mustRate(t)(ErrorRate(spec, impl, 0))
			if er < lo-1e-12 || er > hi+1e-12 {
				t.Fatalf("assignment error rate %v outside bounds [%v,%v]", er, lo, hi)
			}
		}
	}
}

// Assigning every DC minterm to the majority phase of its specified
// neighbors achieves... not necessarily the lower bound (DC neighbors also
// change), but the bound is achieved when DCs are assigned minterm-wise by
// specified-neighbor majority *and* errors only count care→x events. Here
// we verify the min bound is met by that greedy assignment.
func TestMinBoundAchievedByGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		spec := randomFunction(rng, 5, 1)
		lo, _ := Bounds(spec, 0)
		impl := spec.Clone()
		spec.Outs[0].DC.ForEach(func(m int) {
			if spec.OnNeighbors(0, m) >= spec.OffNeighbors(0, m) {
				impl.SetPhase(0, m, tt.On)
			} else {
				impl.SetPhase(0, m, tt.Off)
			}
		})
		er := mustRate(t)(ErrorRate(spec, impl, 0))
		if math.Abs(er-lo) > 1e-12 {
			t.Fatalf("greedy assignment rate %v != exact min %v", er, lo)
		}
	}
}

func TestErrorRateNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 10; trial++ {
		spec := randomFunction(rng, 5, 1)
		impl := spec.Clone()
		spec.Outs[0].DC.ForEach(func(m int) {
			impl.SetPhase(0, m, tt.Phase(1+rng.Intn(2)%2))
		})
		got := mustRate(t)(ErrorRate(spec, impl, 0))
		// Naive recount.
		n := spec.NumIn
		errs := 0
		for m := 0; m < spec.Size(); m++ {
			if spec.Phase(0, m) == tt.DC {
				continue
			}
			for b := 0; b < n; b++ {
				v1 := impl.Phase(0, m) == tt.On
				v2 := impl.Phase(0, m^(1<<uint(b))) == tt.On
				if v1 != v2 {
					errs++
				}
			}
		}
		want := float64(errs) / float64(n*spec.Size())
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("ErrorRate = %v, want %v", got, want)
		}
	}
}

func TestErrorRateMean(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	spec := randomFunction(rng, 4, 3)
	impl := spec.Clone()
	for o := 0; o < 3; o++ {
		spec.Outs[o].DC.ForEach(func(m int) { impl.SetPhase(o, m, tt.Off) })
	}
	sum := 0.0
	for o := 0; o < 3; o++ {
		sum += mustRate(t)(ErrorRate(spec, impl, o))
	}
	if got := mustRate(t)(ErrorRateMean(spec, impl)); math.Abs(got-sum/3) > 1e-12 {
		t.Fatalf("ErrorRateMean = %v, want %v", got, sum/3)
	}
}

func TestSelfErrorRateXORAndConstant(t *testing.T) {
	n := 4
	xor := tt.New(n, 1)
	for m := 0; m < xor.Size(); m++ {
		if popcount(m)%2 == 1 {
			xor.SetPhase(0, m, tt.On)
		}
	}
	if got := mustRate(t)(SelfErrorRate(xor, 0)); got != 1.0 {
		t.Fatalf("XOR self error rate = %v, want 1", got)
	}
	if got := mustRate(t)(SelfErrorRate(tt.New(n, 1), 0)); got != 0.0 {
		t.Fatalf("constant self error rate = %v, want 0", got)
	}
}

// Regression: SelfErrorRate used to panic on an out-of-range output
// index; it must now return an error like its ErrorRate siblings.
func TestSelfErrorRateInvalidIndexIsError(t *testing.T) {
	f := tt.New(3, 2)
	for _, o := range []int{-1, 2, 100} {
		if _, err := SelfErrorRate(f, o); err == nil {
			t.Fatalf("SelfErrorRate(f, %d): expected error, got nil", o)
		}
	}
}

func TestCountBordersNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		f := randomFunction(rng, 6, 1)
		got := CountBorders(f, 0)
		var want Borders
		for m := 0; m < f.Size(); m++ {
			for b := 0; b < f.NumIn; b++ {
				p1 := f.Phase(0, m)
				p2 := f.Phase(0, m^(1<<uint(b)))
				if p1 == p2 {
					continue
				}
				switch p1 {
				case tt.Off:
					want.B0++
				case tt.On:
					want.B1++
				case tt.DC:
					want.BDC++
				}
			}
		}
		if got != want {
			t.Fatalf("borders got %+v want %+v", got, want)
		}
	}
}

// Border identity: every off↔on, off↔dc, on↔dc adjacency is counted once
// from each side, so B0+B1+BDC is even and the base pairs relate as
// BasePairs = B0 + B1 - BDC... no — BasePairs counts only on↔off pairs
// (both directions). Check the weaker consistency: BasePairs ≤ B0 + B1.
func TestBorderConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 20; trial++ {
		f := randomFunction(rng, 6, 1)
		b := CountBorders(f, 0)
		c := ExactCounts(f, 0)
		if c.BasePairs > b.B0+b.B1 {
			t.Fatalf("BasePairs %d > B0+B1 %d", c.BasePairs, b.B0+b.B1)
		}
		// (B0+B1+BDC) counts each mixed-phase unordered pair exactly twice.
		if (b.B0+b.B1+b.BDC)%2 != 0 {
			t.Fatalf("border total %d should be even", b.B0+b.B1+b.BDC)
		}
		// on↔off pairs counted from both sides: base = B0+B1-2·(dc-adjacent
		// specified pairs)... direct identity: B0 + B1 - BasePairs equals the
		// number of ordered specified↔DC adjacencies, which equals BDC.
		if b.B0+b.B1-c.BasePairs != b.BDC {
			t.Fatalf("identity B0+B1-Base == BDC violated: %d vs %d",
				b.B0+b.B1-c.BasePairs, b.BDC)
		}
	}
}

func TestErrorRateMultiK1MatchesErrorRate(t *testing.T) {
	rng := rand.New(rand.NewSource(481))
	for trial := 0; trial < 10; trial++ {
		spec := randomFunction(rng, 6, 1)
		impl := spec.Clone()
		spec.Outs[0].DC.ForEach(func(m int) { impl.SetPhase(0, m, tt.Off) })
		a := mustRate(t)(ErrorRate(spec, impl, 0))
		b := mustRate(t)(ErrorRateMulti(context.Background(), spec, impl, 0, 1))
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("k=1 multi rate %v != single rate %v", b, a)
		}
	}
}

func TestErrorRateMultiNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(482))
	spec := randomFunction(rng, 5, 1)
	impl := spec.Clone()
	spec.Outs[0].DC.ForEach(func(m int) { impl.SetPhase(0, m, tt.On) })
	for _, k := range []int{2, 3} {
		got := mustRate(t)(ErrorRateMulti(context.Background(), spec, impl, 0, k))
		// Naive: enumerate all k-subsets and care minterms.
		n := spec.NumIn
		errs, events := 0, 0
		var masks []uint
		forEachSubset(n, k, func(m uint) error { masks = append(masks, m); return nil })
		for _, mask := range masks {
			events++
			for m := 0; m < spec.Size(); m++ {
				if spec.Phase(0, m) == tt.DC {
					continue
				}
				v1 := impl.Phase(0, m) == tt.On
				v2 := impl.Phase(0, m^int(mask)) == tt.On
				if v1 != v2 {
					errs++
				}
			}
		}
		want := float64(errs) / float64(events*spec.Size())
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("k=%d: got %v want %v", k, got, want)
		}
	}
}

func TestErrorRateMultiXOR(t *testing.T) {
	// Parity flips on every odd-multiplicity error and never on even.
	n := 5
	f := tt.New(n, 1)
	for m := 0; m < f.Size(); m++ {
		if popcount(m)%2 == 1 {
			f.SetPhase(0, m, tt.On)
		}
	}
	if got := mustRate(t)(ErrorRateMulti(context.Background(), f, f, 0, 2)); got != 0 {
		t.Fatalf("XOR 2-bit rate = %v, want 0", got)
	}
	if got := mustRate(t)(ErrorRateMulti(context.Background(), f, f, 0, 3)); got != 1 {
		t.Fatalf("XOR 3-bit rate = %v, want 1", got)
	}
}

func TestForEachSubsetCount(t *testing.T) {
	count := 0
	seen := map[uint]bool{}
	forEachSubset(6, 3, func(m uint) error {
		count++
		if popcount(int(m)) != 3 {
			t.Fatalf("mask %b has wrong popcount", m)
		}
		if seen[m] {
			t.Fatalf("duplicate mask %b", m)
		}
		seen[m] = true
		return nil
	})
	if count != 20 { // C(6,3)
		t.Fatalf("enumerated %d subsets, want 20", count)
	}
}

// The public API boundary rejects malformed requests with errors rather
// than panicking (so a serving process survives bad inputs).
func TestErrorRateBoundaryErrors(t *testing.T) {
	a, b := tt.New(3, 1), tt.New(4, 1)
	if _, err := ErrorRate(a, b, 0); err == nil {
		t.Fatal("expected error on input-count mismatch")
	}
	c := tt.New(3, 2)
	if _, err := ErrorRate(a, c, 0); err == nil {
		t.Fatal("expected error on output-count mismatch")
	}
	if _, err := ErrorRate(a, a, 1); err == nil {
		t.Fatal("expected error on out-of-range output index")
	}
	if _, err := ErrorRate(a, a, -1); err == nil {
		t.Fatal("expected error on negative output index")
	}
	if _, err := ErrorRateMean(a, b); err == nil {
		t.Fatal("expected ErrorRateMean to propagate the mismatch error")
	}
}

func TestErrorRateMultiMultiplicityErrors(t *testing.T) {
	f := tt.New(3, 1)
	for _, k := range []int{0, -1, 4} {
		if _, err := ErrorRateMulti(context.Background(), f, f, 0, k); err == nil {
			t.Fatalf("expected error for multiplicity k=%d", k)
		}
	}
	if _, err := ErrorRateMultiMean(context.Background(), f, tt.New(4, 1), 1); err == nil {
		t.Fatal("expected ErrorRateMultiMean to propagate the mismatch error")
	}
}

// Regression: mean helpers divided by zero outputs and silently returned
// NaN; they must reject zero-output specs with the typed sentinel.
func TestZeroOutputMeansRejected(t *testing.T) {
	f := &tt.Function{NumIn: 3} // hand-built: no outputs
	if _, _, err := BoundsMean(f); !errors.Is(err, tt.ErrZeroOutputs) {
		t.Fatalf("BoundsMean: got %v, want tt.ErrZeroOutputs", err)
	}
	if _, err := ErrorRateMean(f, f); !errors.Is(err, tt.ErrZeroOutputs) {
		t.Fatalf("ErrorRateMean: got %v, want tt.ErrZeroOutputs", err)
	}
	if _, err := ErrorRateMultiMean(context.Background(), f, f, 1); !errors.Is(err, tt.ErrZeroOutputs) {
		t.Fatalf("ErrorRateMultiMean: got %v, want tt.ErrZeroOutputs", err)
	}
}

// Regression: ErrorRateMulti used to enumerate all C(n,k) subsets with no
// way to stop; it must now honor context cancellation mid-enumeration.
func TestErrorRateMultiCancellation(t *testing.T) {
	// n=20, k=10 gives C(20,10) = 184756 subsets over a 2^20 space —
	// long enough that a pre-cancelled context must abort well before
	// completion (the first stride poll fires at subset 0).
	f := tt.New(20, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ErrorRateMulti(ctx, f, f, 0, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// And the mean wrapper propagates it unchanged.
	if _, err := ErrorRateMultiMean(ctx, f, f, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("mean: got %v, want context.Canceled", err)
	}
}

// withProcs raises GOMAXPROCS so the parallel path actually runs
// concurrently even on single-core machines.
func withProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// The mean kernels must be bit-identical at every parallelism level:
// per-output results are computed concurrently but summed in output
// order.
func TestMeansParallelMatchSequential(t *testing.T) {
	withProcs(t, 8)
	rng := rand.New(rand.NewSource(600))
	ctx := context.Background()
	for trial := 0; trial < 5; trial++ {
		spec := randomFunction(rng, 6, 7)
		impl := spec.Clone()
		for o := 0; o < spec.NumOut(); o++ {
			spec.Outs[o].DC.ForEach(func(m int) { impl.SetPhase(o, m, tt.Off) })
		}
		seqLo, seqHi, err := BoundsMeanCtx(ctx, spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		seqER, err := ErrorRateMeanCtx(ctx, spec, impl, 1)
		if err != nil {
			t.Fatal(err)
		}
		seqMulti, err := ErrorRateMultiMeanCtx(ctx, spec, impl, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 8, 0} {
			lo, hi, err := BoundsMeanCtx(ctx, spec, p)
			if err != nil {
				t.Fatal(err)
			}
			if lo != seqLo || hi != seqHi {
				t.Fatalf("p=%d: BoundsMean (%v,%v) != sequential (%v,%v)", p, lo, hi, seqLo, seqHi)
			}
			er, err := ErrorRateMeanCtx(ctx, spec, impl, p)
			if err != nil {
				t.Fatal(err)
			}
			if er != seqER {
				t.Fatalf("p=%d: ErrorRateMean %v != sequential %v", p, er, seqER)
			}
			multi, err := ErrorRateMultiMeanCtx(ctx, spec, impl, 2, p)
			if err != nil {
				t.Fatal(err)
			}
			if multi != seqMulti {
				t.Fatalf("p=%d: ErrorRateMultiMean %v != sequential %v", p, multi, seqMulti)
			}
		}
	}
}

func BenchmarkExactCounts12(b *testing.B) {
	rng := rand.New(rand.NewSource(49))
	f := randomFunction(rng, 12, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactCounts(f, 0)
	}
}
