// Package reliability computes exact input-error propagation metrics over
// incompletely specified functions (paper §2 and §5).
//
// Error model (paper §2): single-bit input errors on otherwise-correct
// input vectors; errors on different pins are uncorrelated and rare, so
// multi-bit errors are ignored. A correct input vector is always a *care*
// minterm of the original specification — minterms in the DC-set "can
// never occur in practice" (paper §2.1) — while the erroneous vector may
// land anywhere. The error propagates iff the implementation's value
// differs between the two vectors.
//
// All rates are normalized by n·2^n, the number of ordered
// (minterm, flipped-bit) events, so that rates are directly comparable
// across functions and with the paper's analytical estimates. Rates for a
// multi-output function are the per-output mean.
package reliability

import (
	"context"
	"fmt"

	"relsyn/internal/bitset"
	"relsyn/internal/par"
	"relsyn/internal/tt"
)

// checkOutputs rejects zero-output functions at the API boundary with
// the typed tt.ErrZeroOutputs sentinel: a per-output mean over zero
// outputs has no value (historically these helpers divided by zero and
// silently returned NaN).
func checkOutputs(f *tt.Function) error {
	if f.NumOut() == 0 {
		return fmt.Errorf("reliability: %w", tt.ErrZeroOutputs)
	}
	return nil
}

// Counts holds the raw exact pair counts for one output of a
// specification (paper §5 formulas).
type Counts struct {
	// BasePairs is 2·|{(xi,xj) : xi∈on, xj∈off, D_H=1}| — the ordered
	// care-to-care pairs whose error propagation is fixed regardless of DC
	// assignment.
	BasePairs int
	// MinDCPairs is Σ over DC minterms of min(on-neighbors, off-neighbors):
	// the fewest additional propagating events any DC assignment can incur.
	MinDCPairs int
	// MaxDCPairs is the analogous worst case.
	MaxDCPairs int
}

// NormBase returns BasePairs normalized by n·2^n.
func (c Counts) NormBase(n, size int) float64 { return float64(c.BasePairs) / float64(n*size) }

// NormMin returns the exact minimum error rate, (base + min-dc)/(n·2^n).
func (c Counts) NormMin(n, size int) float64 {
	return float64(c.BasePairs+c.MinDCPairs) / float64(n*size)
}

// NormMax returns the exact maximum error rate, (base + max-dc)/(n·2^n).
func (c Counts) NormMax(n, size int) float64 {
	return float64(c.BasePairs+c.MaxDCPairs) / float64(n*size)
}

// ExactCounts computes the base/min-dc/max-dc pair counts for output o.
// It dispatches between the word-parallel kernel path and the scalar
// oracle on bitset.UseKernels; both produce identical integer counts
// (metatest property 6 pins the equivalence).
func ExactCounts(f *tt.Function, o int) Counts {
	if bitset.UseKernels {
		return ExactCountsKernel(f, o)
	}
	return ExactCountsScalar(f, o)
}

// ExactCountsScalar is the pre-kernel implementation and the testing
// oracle: base pairs by per-bit set intersection, DC pair bounds by a
// per-minterm neighbor walk (n phase lookups per DC minterm).
func ExactCountsScalar(f *tt.Function, o int) Counts {
	var c Counts
	out := f.Outs[o]
	off := f.OffSet(o)
	n := f.NumIn
	// Base: ordered on-off neighbor pairs, counted in both directions.
	for b := 0; b < n; b++ {
		offSh := off.ShiftXor(b)
		c.BasePairs += 2 * out.On.IntersectionCount(offSh)
	}
	out.DC.ForEach(func(m int) {
		on := f.OnNeighbors(o, m)
		offN := f.OffNeighbors(o, m)
		c.MinDCPairs += min(on, offN)
		c.MaxDCPairs += max(on, offN)
	})
	return c
}

// ExactCountsKernel is the word-parallel path: base pairs are n fused
// shift+popcount passes (no intermediate sets), and the per-DC-minterm
// neighbor min/max comes from two bit-sliced neighbor-census counters
// read at O(log n) per DC minterm instead of n phase lookups each.
// Exported (like its Scalar sibling) so differential tests can pin both
// paths without flipping the process-wide switch.
func ExactCountsKernel(f *tt.Function, o int) Counts {
	var c Counts
	out := f.Outs[o]
	off := f.OffSet(o)
	n := f.NumIn
	for b := 0; b < n; b++ {
		c.BasePairs += 2 * out.On.ShiftAndPopcount(off, b)
	}
	if out.DC.Any() {
		onCnt := bitset.NeighborCount(out.On)
		offCnt := bitset.NeighborCount(off)
		out.DC.ForEach(func(m int) {
			on := onCnt.Get(m)
			offN := offCnt.Get(m)
			c.MinDCPairs += min(on, offN)
			c.MaxDCPairs += max(on, offN)
		})
	}
	return c
}

// ExactCountsCensus recovers the pair counts from a fused neighbor
// census (internal/census) instead of running the per-metric scans:
// base pairs are one masked plane sum, and the DC min/max read the
// same census the ranking oracle shares. Bit-identical to both the
// kernel and scalar paths — the counts are exact integer identities of
// the same censuses (metatest property 7 pins it).
func ExactCountsCensus(c *bitset.Census) Counts {
	minDC, maxDC := c.DCPairBounds()
	return Counts{BasePairs: c.BasePairs(), MinDCPairs: minDC, MaxDCPairs: maxDC}
}

// Bounds returns the exact minimum and maximum achievable error rates for
// output o over all possible DC assignments.
func Bounds(f *tt.Function, o int) (lo, hi float64) {
	c := ExactCounts(f, o)
	return c.NormMin(f.NumIn, f.Size()), c.NormMax(f.NumIn, f.Size())
}

// BoundsCensus is Bounds served from a fused census; the census
// carries its own dimensions.
func BoundsCensus(c *bitset.Census) (lo, hi float64) {
	counts := ExactCountsCensus(c)
	return counts.NormMin(c.K(), c.Len()), counts.NormMax(c.K(), c.Len())
}

// BoundsScalar is Bounds pinned to the scalar oracle, for differential
// tests that cross-check the kernel path.
func BoundsScalar(f *tt.Function, o int) (lo, hi float64) {
	c := ExactCountsScalar(f, o)
	return c.NormMin(f.NumIn, f.Size()), c.NormMax(f.NumIn, f.Size())
}

// BoundsKernel is Bounds pinned to the word-parallel kernel path.
func BoundsKernel(f *tt.Function, o int) (lo, hi float64) {
	c := ExactCountsKernel(f, o)
	return c.NormMin(f.NumIn, f.Size()), c.NormMax(f.NumIn, f.Size())
}

// BoundsMean returns Bounds averaged over all outputs, computed with
// full machine parallelism. Zero-output functions are rejected with an
// error wrapping tt.ErrZeroOutputs.
func BoundsMean(f *tt.Function) (lo, hi float64, err error) {
	return BoundsMeanCtx(context.Background(), f, 0)
}

// BoundsMeanCtx is BoundsMean with cooperative cancellation and an
// explicit parallelism cap (0 = GOMAXPROCS, 1 = sequential). The
// per-output bounds are computed concurrently but accumulated in output
// order, so the result is bit-identical at every parallelism level.
func BoundsMeanCtx(ctx context.Context, f *tt.Function, parallelism int) (lo, hi float64, err error) {
	return BoundsMeanCensusCtx(ctx, f, nil, parallelism)
}

// BoundsMeanCensusCtx is BoundsMeanCtx consuming precomputed fused
// censuses where available: cs is indexed by output (nil slice or nil
// entries fall back to the per-call dispatch). The pipeline passes the
// cached FunctionCensus.Outs here so the bounds report rides the same
// census as the assignment stage.
func BoundsMeanCensusCtx(ctx context.Context, f *tt.Function, cs []*bitset.Census, parallelism int) (lo, hi float64, err error) {
	if err := checkOutputs(f); err != nil {
		return 0, 0, err
	}
	los := make([]float64, f.NumOut())
	his := make([]float64, f.NumOut())
	err = par.Do(ctx, parallelism, f.NumOut(), func(o int) error {
		if o < len(cs) && cs[o] != nil {
			los[o], his[o] = BoundsCensus(cs[o])
		} else {
			los[o], his[o] = Bounds(f, o)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	for o := range los {
		lo += los[o]
		hi += his[o]
	}
	m := float64(f.NumOut())
	return lo / m, hi / m, nil
}

// checkPair validates the public-API boundary: spec and impl must have
// identical dimensions and o must be a valid output index. Violations are
// returned as errors (not panics) so that a serving process can reject a
// bad request instead of crashing.
func checkPair(spec, impl *tt.Function, o int) error {
	if spec.NumIn != impl.NumIn {
		return fmt.Errorf("reliability: input count mismatch %d vs %d", spec.NumIn, impl.NumIn)
	}
	if spec.NumOut() != impl.NumOut() {
		return fmt.Errorf("reliability: output count mismatch %d vs %d", spec.NumOut(), impl.NumOut())
	}
	if o < 0 || o >= spec.NumOut() {
		return fmt.Errorf("reliability: output %d outside [0,%d)", o, spec.NumOut())
	}
	return nil
}

// ErrorRate returns the exact single-bit input error rate of output o of
// implementation impl, evaluated against the care set of specification
// spec: the fraction of (care minterm, bit) events whose flip changes
// impl's output value. impl must be completely specified on the care set
// of spec and is typically a fully specified function. The two functions
// must have the same dimensions; mismatches are reported as errors.
func ErrorRate(spec, impl *tt.Function, o int) (float64, error) {
	if err := checkPair(spec, impl, o); err != nil {
		return 0, err
	}
	if bitset.UseKernels {
		return errorRateKernel(spec, impl, o), nil
	}
	return errorRateScalar(spec, impl, o), nil
}

// ErrorRateScalar is ErrorRate pinned to the scalar oracle, for
// differential tests that cross-check the kernel path.
func ErrorRateScalar(spec, impl *tt.Function, o int) (float64, error) {
	if err := checkPair(spec, impl, o); err != nil {
		return 0, err
	}
	return errorRateScalar(spec, impl, o), nil
}

// ErrorRateKernel is ErrorRate pinned to the word-parallel kernel path.
func ErrorRateKernel(spec, impl *tt.Function, o int) (float64, error) {
	if err := checkPair(spec, impl, o); err != nil {
		return 0, err
	}
	return errorRateKernel(spec, impl, o), nil
}

// errorRateScalar is the pre-kernel implementation: per input bit it
// materializes the shifted value vector, the symmetric difference, and
// intersects with the care set (three 2^n-bit temporaries per bit).
func errorRateScalar(spec, impl *tt.Function, o int) float64 {
	n := spec.NumIn
	care := spec.Outs[o].DC.Complement()
	val := implValue(impl, o)
	errs := 0
	for b := 0; b < n; b++ {
		valSh := val.ShiftXor(b)
		diff := val.Clone()
		diff.InPlaceSymDiff(valSh) // minterms whose value differs from the b-neighbor
		errs += diff.IntersectionCount(care)
	}
	return float64(errs) / float64(n*spec.Size())
}

// errorRateKernel fuses the shift, the value comparison and the care
// masking into one popcount pass per input bit: n passes total and no
// allocations at all — the care set is expressed as the complement of
// the DC set directly inside the fused pass.
func errorRateKernel(spec, impl *tt.Function, o int) float64 {
	n := spec.NumIn
	dc := spec.Outs[o].DC
	val := impl.Outs[o].On // read-only: no clone needed on the kernel path
	errs := val.NeighborDiffAndNotPopcountAll(dc)
	return float64(errs) / float64(n*spec.Size())
}

// ErrorRateCensus is ErrorRate served from a fused census of the
// *implementation*: implCensus's on-set is read as impl's value vector
// (matching implValue's DC-at-0 convention only when impl is
// completely specified, the case the census engine computes for), and
// the spec contributes its DC set as the exclusion mask. The error
// events come out of the census's plane sums instead of another
// neighbor scan, and the integer count — hence the quotient — is
// bit-identical to both kernel and scalar paths.
func ErrorRateCensus(spec *tt.Function, o int, implCensus *bitset.Census) (float64, error) {
	if o < 0 || o >= spec.NumOut() {
		return 0, fmt.Errorf("reliability: output %d outside [0,%d)", o, spec.NumOut())
	}
	if implCensus.Len() != spec.Size() {
		return 0, fmt.Errorf("reliability: census over %d minterms, spec has %d", implCensus.Len(), spec.Size())
	}
	n := spec.NumIn
	errs := implCensus.DiffEvents(spec.Outs[o].DC)
	return float64(errs) / float64(n*spec.Size()), nil
}

// implValue returns impl's output-o value vector. DC minterms of impl are
// taken at value 0; callers measuring implementations should pass fully
// specified functions (a synthesized circuit always is).
func implValue(impl *tt.Function, o int) *bitset.Set {
	return impl.Outs[o].On.Clone()
}

// ErrorRateMean returns ErrorRate averaged over all outputs — the
// per-benchmark reliability number used throughout the paper's plots —
// computed with full machine parallelism. Zero-output functions are
// rejected with an error wrapping tt.ErrZeroOutputs.
func ErrorRateMean(spec, impl *tt.Function) (float64, error) {
	return ErrorRateMeanCtx(context.Background(), spec, impl, 0)
}

// ErrorRateMeanCtx is ErrorRateMean with cooperative cancellation and an
// explicit parallelism cap (0 = GOMAXPROCS, 1 = sequential); results are
// bit-identical at every parallelism level.
func ErrorRateMeanCtx(ctx context.Context, spec, impl *tt.Function, parallelism int) (float64, error) {
	if err := checkOutputs(spec); err != nil {
		return 0, err
	}
	rates := make([]float64, spec.NumOut())
	err := par.Do(ctx, parallelism, spec.NumOut(), func(o int) error {
		r, err := ErrorRate(spec, impl, o)
		if err != nil {
			return err
		}
		rates[o] = r
		return nil
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, r := range rates {
		sum += r
	}
	return sum / float64(spec.NumOut()), nil
}

// SelfErrorRate measures a completely specified function against its own
// care set (all minterms): the plain fraction of adjacent minterm pairs
// with differing values. An invalid output index is reported as an
// error, matching its ErrorRate/ErrorRateMulti siblings (this function
// is exported; a bad index from a caller must not crash a serving
// process).
func SelfErrorRate(f *tt.Function, o int) (float64, error) {
	return ErrorRate(f, f, o)
}

// SelfErrorRateScalar is SelfErrorRate pinned to the scalar oracle.
func SelfErrorRateScalar(f *tt.Function, o int) (float64, error) {
	return ErrorRateScalar(f, f, o)
}

// SelfErrorRateKernel is SelfErrorRate pinned to the kernel path.
func SelfErrorRateKernel(f *tt.Function, o int) (float64, error) {
	return ErrorRateKernel(f, f, o)
}

// multiCancelStride is how many k-subsets ErrorRateMulti enumerates
// between context polls. The enumeration is C(n,k) and can run for
// minutes on hostile inputs; polling every ~1k subsets keeps the
// cancellation latency in the microsecond range without measurable
// overhead.
const multiCancelStride = 1024

// ErrorRateMulti generalizes ErrorRate to simultaneous k-bit input
// errors: the fraction of (care minterm, k-subset of input bits) events
// whose joint flip changes output o of impl. k = 1 reproduces ErrorRate.
// The paper argues single-bit errors dominate when pin errors are rare
// and uncorrelated (§2); this extension quantifies the k ≥ 2 tail.
//
// The C(n,k) subset enumeration polls ctx every ~1k subsets and aborts
// with ctx.Err() once the context is done, so a request budget
// (internal/pipeline) bounds even adversarially large (n, k) choices.
func ErrorRateMulti(ctx context.Context, spec, impl *tt.Function, o, k int) (float64, error) {
	if err := checkPair(spec, impl, o); err != nil {
		return 0, err
	}
	n := spec.NumIn
	if k < 1 || k > n {
		return 0, fmt.Errorf("reliability: error multiplicity %d outside [1,%d]", k, n)
	}
	care := spec.Outs[o].DC.Complement()
	val := implValue(impl, o)
	errs, events := 0, 0
	err := forEachSubset(n, k, func(mask uint) error {
		if events%multiCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		events++
		valSh := val
		for b := 0; b < n; b++ {
			if mask>>uint(b)&1 == 1 {
				valSh = valSh.ShiftXor(b)
			}
		}
		diff := val.Clone()
		diff.InPlaceSymDiff(valSh)
		errs += diff.IntersectionCount(care)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return float64(errs) / float64(events*spec.Size()), nil
}

// ErrorRateMultiMean averages ErrorRateMulti over all outputs with full
// machine parallelism. Zero-output functions are rejected with an error
// wrapping tt.ErrZeroOutputs.
func ErrorRateMultiMean(ctx context.Context, spec, impl *tt.Function, k int) (float64, error) {
	return ErrorRateMultiMeanCtx(ctx, spec, impl, k, 0)
}

// ErrorRateMultiMeanCtx is ErrorRateMultiMean with an explicit
// parallelism cap (0 = GOMAXPROCS, 1 = sequential); results are
// bit-identical at every parallelism level.
func ErrorRateMultiMeanCtx(ctx context.Context, spec, impl *tt.Function, k, parallelism int) (float64, error) {
	if err := checkOutputs(spec); err != nil {
		return 0, err
	}
	rates := make([]float64, spec.NumOut())
	err := par.Do(ctx, parallelism, spec.NumOut(), func(o int) error {
		r, err := ErrorRateMulti(ctx, spec, impl, o, k)
		if err != nil {
			return err
		}
		rates[o] = r
		return nil
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, r := range rates {
		sum += r
	}
	return sum / float64(spec.NumOut()), nil
}

// forEachSubset enumerates the C(n,k) bit masks with exactly k of n bits
// set, in ascending order, stopping at the first error fn returns.
func forEachSubset(n, k int, fn func(mask uint) error) error {
	var rec func(start int, mask uint, left int) error
	rec = func(start int, mask uint, left int) error {
		if left == 0 {
			return fn(mask)
		}
		for b := start; b <= n-left; b++ {
			if err := rec(b+1, mask|1<<uint(b), left-1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, 0, k)
}

// Borders holds the border counts of paper §5: ordered pairs of 1-Hamming
// neighbors whose first element is in the named set and whose second is
// outside it.
type Borders struct {
	B0  int // first ∈ off-set
	B1  int // first ∈ on-set
	BDC int // first ∈ DC-set
}

// CountBorders computes the three border counts for output o. It
// dispatches between the word-parallel kernel and the scalar oracle on
// bitset.UseKernels; the integer counts are identical either way.
func CountBorders(f *tt.Function, o int) Borders {
	if bitset.UseKernels {
		return CountBordersKernel(f, o)
	}
	return CountBordersScalar(f, o)
}

// CountBordersScalar is the pre-kernel implementation and the testing
// oracle: it materializes three shifted sets per input bit.
func CountBordersScalar(f *tt.Function, o int) Borders {
	out := f.Outs[o]
	off := f.OffSet(o)
	var b Borders
	for bit := 0; bit < f.NumIn; bit++ {
		onSh := out.On.ShiftXor(bit)
		dcSh := out.DC.ShiftXor(bit)
		offSh := off.ShiftXor(bit)
		// (x ∈ on, neighbor ∉ on): neighbor in off or dc.
		b.B1 += out.On.IntersectionCount(offSh) + out.On.IntersectionCount(dcSh)
		b.B0 += off.IntersectionCount(onSh) + off.IntersectionCount(dcSh)
		b.BDC += out.DC.IntersectionCount(onSh) + out.DC.IntersectionCount(offSh)
	}
	return b
}

// CountBordersKernel is the word-parallel path: six fused shift+popcount
// passes per input bit, no shifted temporaries.
func CountBordersKernel(f *tt.Function, o int) Borders {
	out := f.Outs[o]
	off := f.OffSet(o)
	var b Borders
	for bit := 0; bit < f.NumIn; bit++ {
		b.B1 += out.On.ShiftAndPopcount(off, bit) + out.On.ShiftAndPopcount(out.DC, bit)
		b.B0 += off.ShiftAndPopcount(out.On, bit) + off.ShiftAndPopcount(out.DC, bit)
		b.BDC += out.DC.ShiftAndPopcount(out.On, bit) + out.DC.ShiftAndPopcount(off, bit)
	}
	return b
}

// CountBordersCensus recovers the border counts from a fused census:
// a minterm's out-of-region neighbor count is its input count minus its
// same-region census, so each border is one masked plane sum instead of
// 2n fused shift passes.
func CountBordersCensus(c *bitset.Census) Borders {
	b0, b1, bdc := c.Borders()
	return Borders{B0: b0, B1: b1, BDC: bdc}
}
