package synth

import (
	"math/rand"
	"runtime"
	"testing"

	"relsyn/internal/core"
	"relsyn/internal/reliability"
	"relsyn/internal/tt"
)

func randomFunction(rng *rand.Rand, n, m int, dcFrac float64) *tt.Function {
	f := tt.New(n, m)
	for o := 0; o < m; o++ {
		for mm := 0; mm < f.Size(); mm++ {
			r := rng.Float64()
			switch {
			case r < dcFrac:
				f.SetPhase(o, mm, tt.DC)
			case r < dcFrac+(1-dcFrac)/2:
				f.SetPhase(o, mm, tt.On)
			}
		}
	}
	return f
}

func TestSynthesizeRespectsSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 8; trial++ {
		f := randomFunction(rng, 5+rng.Intn(3), 1+rng.Intn(3), 0.5)
		for _, obj := range []Objective{OptimizeDelay, OptimizePower} {
			res, err := Synthesize(f, Options{Objective: obj})
			if err != nil {
				t.Fatalf("trial %d obj %v: %v", trial, obj, err)
			}
			if !res.Impl.CompletelySpecified() {
				t.Fatal("implementation not completely specified")
			}
			// Synthesize already errors on care-set violations; re-verify
			// independently via the truth tables.
			for o := range f.Outs {
				for m := 0; m < f.Size(); m++ {
					switch f.Phase(o, m) {
					case tt.On:
						if res.Impl.Phase(o, m) != tt.On {
							t.Fatalf("on-set violated at out %d minterm %d", o, m)
						}
					case tt.Off:
						if res.Impl.Phase(o, m) != tt.Off {
							t.Fatalf("off-set violated at out %d minterm %d", o, m)
						}
					}
				}
			}
			if res.Metrics.Gates > 0 && (res.Metrics.Area <= 0 || res.Metrics.DelayPs <= 0) {
				t.Fatalf("bad metrics: %+v", res.Metrics)
			}
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	f := randomFunction(rng, 6, 2, 0.6)
	a, err := Synthesize(f, Options{Objective: OptimizePower})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(f, Options{Objective: OptimizePower})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Fatalf("nondeterministic metrics: %+v vs %+v", a.Metrics, b.Metrics)
	}
	if !a.Impl.Equal(b.Impl) {
		t.Fatal("nondeterministic implementation")
	}
}

func TestDelayObjectiveFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	slower := 0
	for trial := 0; trial < 6; trial++ {
		f := randomFunction(rng, 7, 2, 0.5)
		d, err := Synthesize(f, Options{Objective: OptimizeDelay})
		if err != nil {
			t.Fatal(err)
		}
		p, err := Synthesize(f, Options{Objective: OptimizePower})
		if err != nil {
			t.Fatal(err)
		}
		if d.Metrics.DelayPs > p.Metrics.DelayPs+1e-9 {
			slower++
		}
	}
	if slower > 0 {
		t.Fatalf("delay objective slower than power objective in %d/6 trials", slower)
	}
}

func TestFlowResynEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	for trial := 0; trial < 5; trial++ {
		f := randomFunction(rng, 6, 2, 0.5)
		a, err := Synthesize(f, Options{Flow: FlowSOP, Objective: OptimizePower})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Synthesize(f, Options{Flow: FlowResyn, Objective: OptimizePower})
		if err != nil {
			t.Fatal(err)
		}
		// The two flows may pick different DC completions only if the
		// minimizer input differs — it does not, so implementations match
		// exactly on the care set and both satisfy the spec.
		for o := range f.Outs {
			for m := 0; m < f.Size(); m++ {
				if f.Phase(o, m) == tt.DC {
					continue
				}
				if a.Impl.Phase(o, m) != b.Impl.Phase(o, m) {
					t.Fatalf("flows disagree on care minterm %d out %d", m, o)
				}
			}
		}
		_ = b
	}
}

// The headline pipeline property (paper Fig. 4): reliability-driven
// assignment before synthesis must not increase the measured error rate
// versus conventional-only synthesis, and complete assignment achieves
// the exact minimum bound.
func TestPipelineErrorRateImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	for trial := 0; trial < 5; trial++ {
		spec := randomFunction(rng, 6, 2, 0.6)

		conv, err := Synthesize(spec, Options{Objective: OptimizePower})
		if err != nil {
			t.Fatal(err)
		}
		convER, err := reliability.ErrorRateMean(spec, conv.Impl)
		if err != nil {
			t.Fatal(err)
		}

		complete := core.Complete(spec)
		rel, err := Synthesize(complete.Func, Options{Objective: OptimizePower})
		if err != nil {
			t.Fatal(err)
		}
		relER, err := reliability.ErrorRateMean(spec, rel.Impl)
		if err != nil {
			t.Fatal(err)
		}

		lo, hi, err := reliability.BoundsMean(spec)
		if err != nil {
			t.Fatal(err)
		}
		if relER < lo-1e-12 || convER < lo-1e-12 || relER > hi+1e-12 || convER > hi+1e-12 {
			t.Fatalf("error rates outside exact bounds: conv=%v rel=%v in [%v,%v]",
				convER, relER, lo, hi)
		}
		if relER > lo+1e-12 {
			t.Fatalf("complete reliability assignment rate %v != exact min %v", relER, lo)
		}
		if relER > convER+1e-12 {
			t.Fatalf("reliability assignment worsened error rate: %v > %v", relER, convER)
		}
	}
}

func TestRefactorPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(116))
	f := randomFunction(rng, 6, 3, 0.4)
	res, err := Synthesize(f, Options{Objective: OptimizePower})
	if err != nil {
		t.Fatal(err)
	}
	g2 := Refactor(res.Graph)
	for m := uint(0); m < uint(f.Size()); m++ {
		a, b := res.Graph.Eval(m), g2.Eval(m)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Refactor changed function at minterm %d PO %d", m, i)
			}
		}
	}
	if g2.NumNodes() > res.Graph.NumNodes() {
		t.Fatal("Refactor grew the graph (should keep original)")
	}
}

func TestResynNodesPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	for trial := 0; trial < 5; trial++ {
		f := randomFunction(rng, 6, 2, 0.4)
		res, err := Synthesize(f, Options{Objective: OptimizePower})
		if err != nil {
			t.Fatal(err)
		}
		g2, err := ResynNodes(res.Graph, 5)
		if err != nil {
			t.Fatal(err)
		}
		for m := uint(0); m < uint(f.Size()); m++ {
			a, b := res.Graph.Eval(m), g2.Eval(m)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("ResynNodes changed function at minterm %d PO %d", m, i)
				}
			}
		}
		if g2.NumNodes() > res.Graph.NumNodes() {
			t.Fatal("ResynNodes grew the graph (should keep original)")
		}
	}
}

func TestSynthesizeConstantOutputs(t *testing.T) {
	f := tt.New(4, 2)
	// Output 0 constant 0, output 1 constant 1.
	for m := 0; m < 16; m++ {
		f.SetPhase(1, m, tt.On)
	}
	res, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Gates != 0 {
		t.Fatalf("constant outputs should need no gates, got %d", res.Metrics.Gates)
	}
	if res.Impl.Outs[0].On.Any() || res.Impl.Outs[1].On.Count() != 16 {
		t.Fatal("constant outputs wrong")
	}
}

func TestSynthesizeAllDCFunction(t *testing.T) {
	f := tt.New(3, 1)
	for m := 0; m < 8; m++ {
		f.SetPhase(0, m, tt.DC)
	}
	res, err := Synthesize(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Gates != 0 {
		t.Fatal("all-DC function should synthesize to a constant")
	}
}

// The synthesized netlist must be identical at every parallelism level:
// minimization fans out, but the AIG is always built in output order.
func TestSynthesizeParallelMatchesSequential(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	rng := rand.New(rand.NewSource(119))
	for _, flow := range []Flow{FlowSOP, FlowResyn} {
		spec := randomFunction(rng, 6, 4, 0.4)
		seq, err := Synthesize(spec, Options{Flow: flow, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 8, 0} {
			got, err := Synthesize(spec, Options{Flow: flow, Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Impl.Equal(seq.Impl) {
				t.Fatalf("flow=%v p=%d: implementation differs from sequential", flow, p)
			}
			if got.Metrics != seq.Metrics {
				t.Fatalf("flow=%v p=%d: metrics %+v != sequential %+v", flow, p, got.Metrics, seq.Metrics)
			}
		}
	}
}
