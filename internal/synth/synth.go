// Package synth runs the end-to-end synthesis flow the paper drives
// through Synopsys Design Compiler: consume the remaining don't-cares
// with two-level minimization (espresso), restructure with algebraic
// factoring, build and optimize an AIG, and technology-map onto the
// generic cell library, reporting area, delay, and power.
//
// Two flows are provided, mirroring the paper's cross-validation of
// Design Compiler results with ABC's resyn2rs script:
//
//   - FlowSOP: espresso → good-factor → AIG (strash + balance) → map.
//   - FlowResyn: FlowSOP plus a truth-table-based refactoring pass over
//     each output cone (re-minimize the *implemented* completely
//     specified function and rebuild), an independent restructuring in
//     the spirit of resyn2rs.
//
// The power objective maps in area mode: the paper itself notes that
// area-optimized implementations were "very similar" to power-optimized
// ones (§3), and the power metric is reported from switching activity on
// the mapped netlist either way.
package synth

import (
	"context"
	"errors"
	"fmt"

	"relsyn/internal/aig"
	"relsyn/internal/bitset"
	"relsyn/internal/celllib"
	"relsyn/internal/cube"
	"relsyn/internal/espresso"
	"relsyn/internal/factor"
	"relsyn/internal/mapper"
	"relsyn/internal/network"
	"relsyn/internal/par"
	"relsyn/internal/tt"
)

// Objective selects what the flow optimizes for.
type Objective int

// Synthesis objectives, matching the paper's Design Compiler runs
// ("set_max_delay 0" vs "set_max_leakage_power 0; set_max_dynamic_power 0").
const (
	OptimizeDelay Objective = iota
	OptimizePower
	OptimizeArea
)

func (o Objective) String() string {
	switch o {
	case OptimizeDelay:
		return "delay"
	case OptimizePower:
		return "power"
	default:
		return "area"
	}
}

// Flow selects the restructuring recipe.
type Flow int

// Flow variants.
const (
	FlowSOP Flow = iota
	FlowResyn
)

func (f Flow) String() string {
	if f == FlowResyn {
		return "resyn"
	}
	return "sop"
}

// ErrAIGBudget is wrapped by errors returned when the optimized AIG
// exceeds Options.MaxAIGNodes. The run is retryable with a larger cap.
var ErrAIGBudget = errors.New("synth: AIG node budget exhausted")

// Options configures Synthesize.
type Options struct {
	Objective Objective
	Flow      Flow
	Library   *celllib.Library // nil = celllib.Generic70()

	// Interrupt, when non-nil, is polled between per-output minimization
	// passes and between flow phases; a non-nil return aborts Synthesize
	// with that error (cooperative cancellation).
	Interrupt func() error

	// MaxAIGNodes caps the AND-node count of the constructed AIG
	// (0 = unlimited). The cap is checked after initial construction and
	// after each restructuring phase; exhaustion returns an error wrapping
	// ErrAIGBudget.
	MaxAIGNodes int

	// Parallelism caps the worker count for the per-output (and per-node)
	// minimize+factor passes (0 = GOMAXPROCS, 1 = sequential). It never
	// changes results: minimization fans out into index-addressed slots
	// and the AIG is always built sequentially in output order.
	Parallelism int
}

// check polls the Interrupt hook.
func (o Options) check() error {
	if o.Interrupt == nil {
		return nil
	}
	return o.Interrupt()
}

// checkAIG enforces the node cap on g.
func (o Options) checkAIG(g *aig.Graph, phase string) error {
	if o.MaxAIGNodes > 0 && g.NumNodes() > o.MaxAIGNodes {
		return fmt.Errorf("%w: %d nodes after %s (limit %d)",
			ErrAIGBudget, g.NumNodes(), phase, o.MaxAIGNodes)
	}
	return nil
}

// Metrics are the implementation costs of a synthesized circuit.
type Metrics struct {
	Area     float64
	DelayPs  float64
	Power    float64
	Gates    int
	Literals int // factored-form literals before mapping
	AIGNodes int
	AIGDepth int
}

// Result bundles the synthesized implementation.
type Result struct {
	// Impl is the completely specified function the netlist computes.
	Impl *tt.Function
	// Netlist is the mapped gate-level implementation.
	Netlist *mapper.Result
	// Graph is the optimized AIG the netlist was mapped from.
	Graph *aig.Graph
	// Metrics summarizes implementation costs.
	Metrics Metrics
}

// Synthesize runs the full flow on an incompletely specified function.
// Remaining DC minterms are spent by the minimizer (conventional
// assignment); the returned implementation is completely specified.
func Synthesize(f *tt.Function, opt Options) (*Result, error) {
	lib := opt.Library
	if lib == nil {
		lib = celllib.Generic70()
	}
	g := aig.New(f.NumIn)
	literals := 0
	// Per-output two-level minimization and factoring are independent;
	// fan them out through the shared pool into index-addressed slots.
	// The AIG itself is built sequentially in output order below, so the
	// structural hash (and hence every downstream metric) is identical
	// at every parallelism level.
	exprs := make([]*factor.Expr, f.NumOut())
	err := par.Do(context.Background(), opt.Parallelism, f.NumOut(), func(o int) error {
		if err := opt.check(); err != nil {
			return err
		}
		cov, err := espresso.MinimizeInterruptible(f.OnCover(o), f.DCCover(o), opt.Interrupt)
		if err != nil {
			return err
		}
		exprs[o] = factor.GoodFactor(cov)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, e := range exprs {
		literals += e.NumLiterals()
		g.AddPO(g.FromExpr(e))
	}
	g = g.Cleanup().Balance()
	if err := opt.checkAIG(g, "construction"); err != nil {
		return nil, err
	}
	if opt.Flow == FlowResyn {
		var err error
		g, err = refactorPoll(g, opt.Interrupt, opt.Parallelism)
		if err != nil {
			return nil, err
		}
		if g2, err := resynNodesPoll(g, 6, opt.Interrupt, opt.Parallelism); err == nil {
			g = g2
		} else if opt.Interrupt != nil && opt.Interrupt() != nil {
			return nil, err
		}
		g = g.Balance()
		if err := opt.checkAIG(g, "resyn"); err != nil {
			return nil, err
		}
	}
	if err := opt.check(); err != nil {
		return nil, err
	}

	mode := mapper.Area
	if opt.Objective == OptimizeDelay {
		mode = mapper.Delay
	}
	net, err := mapper.Map(g, lib, mode)
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}

	impl, err := implFunction(f, g)
	if err != nil {
		return nil, err
	}
	return &Result{
		Impl:    impl,
		Netlist: net,
		Graph:   g,
		Metrics: Metrics{
			Area:     net.Area,
			DelayPs:  net.DelayPs,
			Power:    net.Power,
			Gates:    net.GateCount(),
			Literals: literals,
			AIGNodes: g.NumNodes(),
			AIGDepth: g.Depth(),
		},
	}, nil
}

// implFunction reads the implemented truth table off the AIG and checks
// it against the specification's care set.
func implFunction(spec *tt.Function, g *aig.Graph) (*tt.Function, error) {
	impl := tt.New(spec.NumIn, spec.NumOut())
	impl.Name = spec.Name
	tts := g.NodeTruthTables()
	for o := range spec.Outs {
		table := g.LitTable(tts, g.PO(o))
		impl.Outs[o].On.Copy(table)
		// Consistency checks: the implementation must respect the care set.
		onMissing := spec.Outs[o].On.Difference(table)
		if onMissing.Any() {
			return nil, fmt.Errorf("synth: output %d drops on-set minterm %d",
				o, onMissing.NextSet(0))
		}
		offHit := table.Intersect(spec.OffSet(o))
		if offHit.Any() {
			return nil, fmt.Errorf("synth: output %d asserts off-set minterm %d",
				o, offHit.NextSet(0))
		}
	}
	return impl, nil
}

// Refactor re-synthesizes every PO cone from its exact truth table:
// minimize the completely specified function, re-factor, and rebuild into
// a fresh strashed graph. Cones whose rebuild is larger keep their
// original structure.
func Refactor(g *aig.Graph) *aig.Graph {
	out, _ := refactorPoll(g, nil, 0)
	return out
}

// refactorPoll is Refactor with a cooperative cancellation hook and a
// parallelism cap for the per-cone minimize+factor fan-out.
func refactorPoll(g *aig.Graph, poll func() error, parallelism int) (*aig.Graph, error) {
	n := g.NumPI()
	if n > 16 {
		return g, nil
	}
	tts := g.NodeTruthTables()
	// Per-cone re-minimization reads only the (immutable) simulation
	// tables; rebuild stays sequential in PO order for determinism.
	exprs := make([]*factor.Expr, g.NumPO())
	err := par.Do(context.Background(), parallelism, g.NumPO(), func(o int) error {
		table := g.LitTable(tts, g.PO(o))
		cov, err := espresso.MinimizeInterruptible(coverFromBits(n, table), nil, poll)
		if err != nil {
			return err
		}
		exprs[o] = factor.GoodFactor(cov)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := aig.New(n)
	for _, e := range exprs {
		out.AddPO(out.FromExpr(e))
	}
	out = out.Cleanup()
	if out.NumNodes() >= g.NumNodes() {
		return g, nil
	}
	return out, nil
}

func coverFromBits(n int, s *bitset.Set) *cube.Cover {
	cv := cube.NewCover(n)
	s.ForEach(func(m int) { cv.Add(cube.FromMinterm(n, uint(m))) })
	return cv
}

// ResynNodes re-synthesizes the graph at node granularity — the
// renode-style analogue of ABC's refactor: cluster into k-feasible SOP
// nodes, minimize and factor each node's completely specified local
// function, and compose the factored forms back into a fresh strashed
// graph. The rebuild is kept only if it has fewer AND nodes.
func ResynNodes(g *aig.Graph, k int) (*aig.Graph, error) {
	return resynNodesPoll(g, k, nil, 0)
}

// resynNodesPoll is ResynNodes with a cooperative cancellation hook and
// a parallelism cap. Each node's local minimize+factor depends only on
// the node's own truth table, so the expensive phase fans out; the
// fanin-ordered graph composition stays sequential for determinism.
func resynNodesPoll(g *aig.Graph, k int, poll func() error, parallelism int) (*aig.Graph, error) {
	nw, err := network.FromAIG(g, k)
	if err != nil {
		return nil, err
	}
	exprs := make([]*factor.Expr, len(nw.Nodes))
	err = par.Do(context.Background(), parallelism, len(nw.Nodes), func(ni int) error {
		cov, err := espresso.MinimizeInterruptible(nw.Nodes[ni].OnCover(), nil, poll)
		if err != nil {
			return err
		}
		exprs[ni] = factor.GoodFactor(cov)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := aig.New(g.NumPI())
	sig := make([]aig.Lit, nw.NumPI+len(nw.Nodes))
	for i := 0; i < nw.NumPI; i++ {
		sig[i] = out.PI(i)
	}
	for ni, nd := range nw.Nodes {
		leaves := make([]aig.Lit, nd.NumIn())
		for j, f := range nd.Fanins {
			leaves[j] = sig[f]
		}
		sig[nw.NumPI+ni] = out.FromExprSubst(exprs[ni], leaves)
	}
	for i, s := range nw.POs {
		switch {
		case nw.POConst(i) == 0:
			out.AddPO(aig.ConstFalse)
		case nw.POConst(i) == 1:
			out.AddPO(aig.ConstTrue)
		default:
			out.AddPO(sig[s])
		}
	}
	out = out.Cleanup()
	if out.NumNodes() >= g.NumNodes() {
		return g, nil
	}
	return out, nil
}
