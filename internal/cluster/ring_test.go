package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func keysN(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	return keys
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer list: want error")
	}
	if _, err := NewRing([]string{" ", ""}, 0); err == nil {
		t.Fatal("all-blank peer list: want error")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 0); err == nil {
		t.Fatal("duplicate peer: want error")
	}
	if _, err := NewRing([]string{"a:1", " a:1 "}, 0); err == nil {
		t.Fatal("duplicate peer after trim: want error")
	}
	r, err := NewRing([]string{" b:2 ", "a:1", ""}, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	if got, want := r.Peers(), []string{"a:1", "b:2"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Peers() = %v, want %v (trimmed, sorted)", got, want)
	}
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("VNodes() = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
}

// Placement must depend only on the peer set, never on list order.
func TestRingPermutationInvariance(t *testing.T) {
	peers := []string{"s1:8337", "s2:8337", "s3:8337", "s4:8337", "s5:8337"}
	base, err := NewRing(peers, 16)
	if err != nil {
		t.Fatal(err)
	}
	keys := keysN(500)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string(nil), peers...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r, err := NewRing(shuffled, 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if got, want := r.Owner(k), base.Owner(k); got != want {
				t.Fatalf("trial %d: Owner(%q) = %q under order %v, want %q", trial, k, got, shuffled, want)
			}
			if got, want := r.Replicas(k, 3), base.Replicas(k, 3); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: Replicas(%q) = %v, want %v", trial, k, got, want)
			}
		}
	}
}

func TestRingReplicas(t *testing.T) {
	r, err := NewRing([]string{"a:1", "b:2", "c:3"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keysN(100) {
		all := r.Replicas(k, 0)
		if len(all) != 3 {
			t.Fatalf("Replicas(%q, 0) = %v, want all 3 peers", k, all)
		}
		seen := map[string]bool{}
		for _, p := range all {
			if seen[p] {
				t.Fatalf("Replicas(%q, 0) repeats %q: %v", k, p, all)
			}
			seen[p] = true
		}
		if all[0] != r.Owner(k) {
			t.Fatalf("Replicas(%q)[0] = %q, Owner = %q", k, all[0], r.Owner(k))
		}
		if two := r.Replicas(k, 2); !reflect.DeepEqual(two, all[:2]) {
			t.Fatalf("Replicas(%q, 2) = %v, want prefix of %v", k, two, all)
		}
		if ten := r.Replicas(k, 10); !reflect.DeepEqual(ten, all) {
			t.Fatalf("Replicas(%q, 10) = %v, want clamped to %v", k, ten, all)
		}
	}
}

// Removing one peer must remap only the keys that peer owned.
func TestRingBoundedChurn(t *testing.T) {
	peers := []string{"s1:8337", "s2:8337", "s3:8337", "s4:8337"}
	full, err := NewRing(peers, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := keysN(2000)
	for drop := range peers {
		rest := make([]string, 0, len(peers)-1)
		for i, p := range peers {
			if i != drop {
				rest = append(rest, p)
			}
		}
		smaller, err := NewRing(rest, DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			before, after := full.Owner(k), smaller.Owner(k)
			if before == after {
				continue
			}
			if before != peers[drop] {
				t.Fatalf("dropping %q moved key %q from %q to %q — churn must be bounded to the removed peer's keys",
					peers[drop], k, before, after)
			}
			moved++
		}
		if moved == 0 {
			t.Fatalf("dropping %q moved no keys out of %d — implausible", peers[drop], len(keys))
		}
	}
}

func TestRingSharesBalanced(t *testing.T) {
	r, err := NewRing([]string{"s1:8337", "s2:8337", "s3:8337"}, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	shares := r.Shares()
	sum := 0.0
	for p, s := range shares {
		sum += s
		// 64 vnodes keeps every share within a loose factor of even.
		if s < 1.0/3/3 || s > 3.0/3 {
			t.Fatalf("share[%s] = %f, wildly unbalanced", p, s)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %f, want 1", sum)
	}
	// Placement counts should roughly follow the arc shares.
	counts := map[string]int{}
	keys := keysN(3000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for p, c := range counts {
		frac := float64(c) / float64(len(keys))
		if diff := frac - shares[p]; diff > 0.1 || diff < -0.1 {
			t.Fatalf("peer %s: observed %f of keys vs arc share %f", p, frac, shares[p])
		}
	}
}

func TestRingSinglePeer(t *testing.T) {
	r, err := NewRing([]string{"only:1"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keysN(10) {
		if r.Owner(k) != "only:1" {
			t.Fatalf("Owner(%q) = %q", k, r.Owner(k))
		}
	}
	if s := r.Shares()["only:1"]; s < 0.999 || s > 1.001 {
		t.Fatalf("single peer share = %f, want 1", s)
	}
}

func TestBaseURL(t *testing.T) {
	for in, want := range map[string]string{
		"127.0.0.1:8337":        "http://127.0.0.1:8337",
		"http://shard-a:8337":   "http://shard-a:8337",
		"https://shard-a":       "https://shard-a",
		"shard-b.internal:8337": "http://shard-b.internal:8337",
	} {
		if got := BaseURL(in); got != want {
			t.Errorf("BaseURL(%q) = %q, want %q", in, got, want)
		}
	}
}
