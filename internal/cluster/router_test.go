package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"relsyn/client"
	"relsyn/internal/obs"
)

// specPLA builds a tiny but distinct 4-input spec per seed. An odd
// multiplier is a bijection mod 2^16, so the low 16 bits of seed*40503
// pick a distinct on-set for every seed below 65536 — ownership
// searches must never run out of candidates, however the stub shards'
// random names happen to split the ring.
func specPLA(seed int) string {
	bits := seed * 40503 & 0xffff
	dc := (seed*7 + 5) % 16
	bits &^= 1 << dc
	if bits == 0 {
		bits = 1 << ((dc + 1) % 16)
	}
	var b strings.Builder
	b.WriteString(".i 4\n.o 1\n")
	for m := 0; m < 16; m++ {
		if bits>>m&1 == 1 {
			fmt.Fprintf(&b, "%04b 1\n", m)
		}
	}
	fmt.Fprintf(&b, "%04b -\n", dc)
	b.WriteString(".e\n")
	return b.String()
}

// stubShard is a scripted relsynd stand-in recording everything it was
// asked.
type stubShard struct {
	t  *testing.T
	ts *httptest.Server

	mu   sync.Mutex
	reqs []stubReq

	// handle produces the response; default: 200 {"status":"done",
	// "job_id": <name>}.
	handle func(w http.ResponseWriter, r *http.Request, body []byte)
	name   string
}

type stubReq struct {
	method string
	path   string
	header http.Header
	body   []byte
}

func newStubShard(t *testing.T, name string) *stubShard {
	t.Helper()
	s := &stubShard{t: t, name: name}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := readBody(w, r)
		s.mu.Lock()
		s.reqs = append(s.reqs, stubReq{method: r.Method, path: r.URL.Path, header: r.Header.Clone(), body: body})
		h := s.handle
		s.mu.Unlock()
		if h != nil {
			h(w, r, body)
			return
		}
		writeJSON(w, http.StatusOK, client.Response{Status: "done", JobID: s.name})
	}))
	t.Cleanup(s.ts.Close)
	return s
}

// addr returns the host:port the ring knows this stub by.
func (s *stubShard) addr() string { return strings.TrimPrefix(s.ts.URL, "http://") }

func (s *stubShard) calls(path string) []stubReq {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []stubReq
	for _, r := range s.reqs {
		if r.path == path {
			out = append(out, r)
		}
	}
	return out
}

func newTestRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return rt
}

// seedOwnedBy finds a spec whose ring owner is addr.
func seedOwnedBy(t *testing.T, ring *Ring, addr string) (plaText, hash string) {
	t.Helper()
	for seed := 0; seed < 2000; seed++ {
		text := specPLA(seed)
		h, err := hashSpec(text)
		if err != nil {
			t.Fatalf("hashSpec(seed %d): %v", seed, err)
		}
		if ring.Owner(h) == addr {
			return text, h
		}
	}
	t.Fatalf("no seed < 2000 owned by %s", addr)
	return "", ""
}

func postRouter(t *testing.T, rt *Router, path string, body any, header http.Header) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	for k, vs := range header {
		req.Header[k] = vs
	}
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	resp := rec.Result()
	out, _ := readAll(resp)
	return resp, out
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

func TestForwardHeaders(t *testing.T) {
	src := http.Header{}
	src.Set("Content-Type", "application/json")
	src.Set("Content-Length", "42")
	src.Set("Host", "original")
	src.Set("Connection", "close, X-Per-Hop")
	src.Set("X-Per-Hop", "drop-me")
	src.Set("Keep-Alive", "timeout=5")
	src.Set("Transfer-Encoding", "chunked")
	src.Set("Authorization", "Bearer tok")
	src.Set("X-Request-Id", "r-1")
	src.Set(HeaderForwarded, "someone-else")

	dst := ForwardHeaders(src, "router-a")
	for _, gone := range []string{"Connection", "X-Per-Hop", "Keep-Alive", "Transfer-Encoding", "Host", "Content-Length", "Content-Type"} {
		if v := dst.Get(gone); v != "" {
			t.Errorf("header %s survived forwarding: %q", gone, v)
		}
	}
	if got := dst.Get("Authorization"); got != "Bearer tok" {
		t.Errorf("Authorization = %q, want passthrough", got)
	}
	if got := dst.Get("X-Request-Id"); got != "r-1" {
		t.Errorf("X-Request-Id = %q, want passthrough", got)
	}
	if got := dst.Get(HeaderForwarded); got != "router-a" {
		t.Errorf("%s = %q, want this hop's own marker", HeaderForwarded, got)
	}
	if vs := dst.Values(HeaderForwarded); len(vs) != 1 {
		t.Errorf("%s values = %v, inbound marker must not stack", HeaderForwarded, vs)
	}
}

func TestRouterForwardsToOwner(t *testing.T) {
	shards := []*stubShard{newStubShard(t, "s0"), newStubShard(t, "s1"), newStubShard(t, "s2")}
	peers := []string{shards[0].addr(), shards[1].addr(), shards[2].addr()}
	rt := newTestRouter(t, RouterConfig{Peers: peers, HedgeAfter: -1})

	byAddr := map[string]*stubShard{}
	for _, s := range shards {
		byAddr[s.addr()] = s
	}
	for seed := 0; seed < 6; seed++ {
		text := specPLA(seed)
		hash, err := hashSpec(text)
		if err != nil {
			t.Fatal(err)
		}
		owner := rt.Ring().Owner(hash)
		resp, body := postRouter(t, rt, "/v1/synth", map[string]any{"pla": text}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, body)
		}
		var env client.Response
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		if env.JobID != byAddr[owner].name {
			t.Fatalf("seed %d: answered by %q, ring owner is %q (%s)", seed, env.JobID, byAddr[owner].name, owner)
		}
	}
	// Every forwarded request must carry the loop marker and only it.
	total := 0
	for _, s := range shards {
		for _, r := range s.calls("/v1/synth") {
			total++
			if got := r.header.Get(HeaderForwarded); got != "relsyn-router" {
				t.Fatalf("forwarded request %s = %q, want router marker", HeaderForwarded, got)
			}
		}
	}
	if total != 6 {
		t.Fatalf("stub shards saw %d forwards, want exactly 6 (no hedges, no failovers)", total)
	}
}

func TestRouterFailover(t *testing.T) {
	shards := []*stubShard{newStubShard(t, "s0"), newStubShard(t, "s1")}
	for _, s := range shards {
		s.handle = func(w http.ResponseWriter, r *http.Request, _ []byte) {
			writeJSON(w, http.StatusInternalServerError, client.Response{Status: "error", Error: "injected"})
		}
	}
	peers := []string{shards[0].addr(), shards[1].addr()}
	rt := newTestRouter(t, RouterConfig{Peers: peers, HedgeAfter: -1, MaxAttempts: 1})

	// The key's owner always fails; its successor answers.
	text, hash := seedOwnedBy(t, rt.Ring(), shards[0].addr())
	shards[1].handle = nil // healthy

	resp, body := postRouter(t, rt, "/v1/synth", map[string]any{"pla": text}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env client.Response
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.JobID != "s1" {
		t.Fatalf("answered by %q, want failover target s1", env.JobID)
	}
	if got := rt.byAddr[rt.Ring().Owner(hash)].failovers.Value(); got != 1 {
		t.Fatalf("failovers counter = %d, want 1", got)
	}

	// All peers dead: 502 with an "unreachable" envelope.
	shards[1].handle = shards[0].handle
	resp, body = postRouter(t, rt, "/v1/synth", map[string]any{"pla": text}, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-dead status = %d, want 502: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Status != "unreachable" {
		t.Fatalf("all-dead envelope = %s (err %v), want status unreachable", body, err)
	}
}

func TestRouterHedgeWin(t *testing.T) {
	slow := newStubShard(t, "slow")
	fast := newStubShard(t, "fast")
	slow.handle = func(w http.ResponseWriter, r *http.Request, _ []byte) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		writeJSON(w, http.StatusOK, client.Response{Status: "done", JobID: "slow"})
	}
	peers := []string{slow.addr(), fast.addr()}
	rt := newTestRouter(t, RouterConfig{Peers: peers, HedgeAfter: 10 * time.Millisecond})

	text, _ := seedOwnedBy(t, rt.Ring(), slow.addr())
	resp, body := postRouter(t, rt, "/v1/synth", map[string]any{"pla": text}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env client.Response
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.JobID != "fast" {
		t.Fatalf("answered by %q, want the hedge target", env.JobID)
	}
	if rt.hedges.Value() != 1 || rt.hedgeWins.Value() != 1 {
		t.Fatalf("hedges=%d hedgeWins=%d, want 1/1", rt.hedges.Value(), rt.hedgeWins.Value())
	}
}

// A -peers list that includes the router's own address must degrade into
// one refused candidate (508 + loops counter), not an infinite loop: the
// race then fails over to the real shard and the request still succeeds.
func TestRouterLoopBreakRegression(t *testing.T) {
	shard := newStubShard(t, "real")

	// Listener-first so the router's own address can appear in its peers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	selfAddr := ln.Addr().String()
	rt := newTestRouter(t, RouterConfig{
		Peers:       []string{selfAddr, shard.addr()},
		HedgeAfter:  -1,
		MaxAttempts: 1,
	})
	ts := &httptest.Server{Listener: ln, Config: &http.Server{Handler: rt.Handler()}}
	ts.Start()
	t.Cleanup(ts.Close)

	// Pick a spec the misconfigured self-peer owns, so the router
	// forwards to itself first.
	text, _ := seedOwnedBy(t, rt.Ring(), selfAddr)
	raw, _ := json.Marshal(map[string]any{"pla": text})
	resp, err := http.Post(ts.URL+"/v1/synth", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after loop break + failover: %s", resp.StatusCode, body)
	}
	var env client.Response
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.JobID != "real" {
		t.Fatalf("answered by %q, want the real shard", env.JobID)
	}
	if rt.loops.Value() < 1 {
		t.Fatalf("loops counter = %d, want >= 1 (self-forward must be refused)", rt.loops.Value())
	}

	// Direct re-entry with a foreign marker is refused outright.
	hdr := http.Header{}
	hdr.Set(HeaderForwarded, "other-router")
	dresp, dbody := postRouter(t, rt, "/v1/synth", map[string]any{"pla": text}, hdr)
	if dresp.StatusCode != http.StatusLoopDetected {
		t.Fatalf("marked re-entry status = %d, want 508: %s", dresp.StatusCode, dbody)
	}
}

func TestRouterBatchSplitsByOwner(t *testing.T) {
	shards := []*stubShard{newStubShard(t, "s0"), newStubShard(t, "s1"), newStubShard(t, "s2")}
	byAddr := map[string]*stubShard{}
	peers := make([]string, len(shards))
	for i, s := range shards {
		peers[i] = s.addr()
		byAddr[s.addr()] = s
		name := s.name
		s.handle = func(w http.ResponseWriter, r *http.Request, body []byte) {
			var breq struct {
				Jobs []json.RawMessage `json:"jobs"`
			}
			if err := json.Unmarshal(body, &breq); err != nil {
				writeError(w, http.StatusBadRequest, "decode: %v", err)
				return
			}
			out := batchEnvelope{Results: make([]client.Response, len(breq.Jobs))}
			for i := range out.Results {
				out.Results[i] = client.Response{Status: "done", JobID: name}
			}
			writeJSON(w, http.StatusOK, out)
		}
	}
	rt := newTestRouter(t, RouterConfig{Peers: peers, HedgeAfter: -1})

	jobs := make([]map[string]any, 0, 7)
	owners := make([]string, 0, 7)
	for seed := 0; seed < 6; seed++ {
		text := specPLA(seed)
		hash, err := hashSpec(text)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, map[string]any{"pla": text})
		owners = append(owners, byAddr[rt.Ring().Owner(hash)].name)
	}
	// One malformed job mid-batch: answered inline, never forwarded.
	jobs = append(jobs[:3], append([]map[string]any{{"pla": "not a pla"}}, jobs[3:]...)...)
	owners = append(owners[:3], append([]string{""}, owners[3:]...)...)

	resp, body := postRouter(t, rt, "/v1/synth/batch", map[string]any{"jobs": jobs}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out batchEnvelope
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(out.Results), len(jobs))
	}
	for i, r := range out.Results {
		if owners[i] == "" {
			if r.Status != "invalid" {
				t.Fatalf("job %d: status %q, want inline invalid", i, r.Status)
			}
			continue
		}
		if r.JobID != owners[i] {
			t.Fatalf("job %d answered by %q, ring owner is %q", i, r.JobID, owners[i])
		}
	}
	// The invalid job must not have reached any shard.
	totalForwarded := 0
	for _, s := range shards {
		for _, c := range s.calls("/v1/synth/batch") {
			var breq struct {
				Jobs []json.RawMessage `json:"jobs"`
			}
			if err := json.Unmarshal(c.body, &breq); err != nil {
				t.Fatal(err)
			}
			totalForwarded += len(breq.Jobs)
		}
	}
	if totalForwarded != 6 {
		t.Fatalf("shards received %d jobs, want 6 (invalid answered inline)", totalForwarded)
	}
}

func TestRouterJobFanout(t *testing.T) {
	has := newStubShard(t, "has")
	lacks := newStubShard(t, "lacks")
	has.handle = func(w http.ResponseWriter, r *http.Request, _ []byte) {
		writeJSON(w, http.StatusOK, client.Response{Status: "done", JobID: "job_abc"})
	}
	lacks.handle = func(w http.ResponseWriter, r *http.Request, _ []byte) {
		writeJSON(w, http.StatusNotFound, client.Response{Status: "error", Error: "unknown job"})
	}
	rt := newTestRouter(t, RouterConfig{Peers: []string{has.addr(), lacks.addr()}, HedgeAfter: -1, MaxAttempts: 1})

	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/job_abc", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 from the shard that knows the job: %s", rec.Code, rec.Body)
	}
	var env client.Response
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.JobID != "job_abc" {
		t.Fatalf("JobID = %q", env.JobID)
	}

	has.handle = lacks.handle // nobody knows it now
	rec = httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/job_missing", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("all-miss status = %d, want 404: %s", rec.Code, rec.Body)
	}
}

func TestRouterHealthzAndStatsz(t *testing.T) {
	a := newStubShard(t, "a")
	b := newStubShard(t, "b")
	rt := newTestRouter(t, RouterConfig{Peers: []string{a.addr(), b.addr()}, HedgeAfter: -1, BreakerThreshold: 1})

	get := func(path string) (*http.Response, []byte) {
		rec := httptest.NewRecorder()
		rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		resp := rec.Result()
		body, _ := readAll(resp)
		return resp, body
	}

	resp, body := get("/healthz")
	var h RouterHealth
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("fresh healthz = %d %q, want 200 ok: %s", resp.StatusCode, h.Status, body)
	}
	if len(h.Peers) != 2 {
		t.Fatalf("healthz peers = %v, want both shards", h.Peers)
	}

	// One breaker open: still 200, status degraded, peer marked.
	rt.byAddr[a.addr()].breaker.Record(fmt.Errorf("injected"))
	resp, body = get("/healthz")
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "degraded" {
		t.Fatalf("one-dead healthz = %d %q, want 200 degraded: %s", resp.StatusCode, h.Status, body)
	}
	if h.Peers[a.addr()] != "degraded" || h.Peers[b.addr()] != "ok" {
		t.Fatalf("peer states = %v", h.Peers)
	}

	// All breakers open: 503 down.
	// Default threshold is 3 consecutive failures: trip b's breaker so
	// the peer map carries mixed raw states ("open" vs "closed").
	for i := 0; i < 3; i++ {
		rt.byAddr[b.addr()].breaker.Record(fmt.Errorf("injected"))
	}
	resp, body = get("/healthz")
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "down" {
		t.Fatalf("all-dead healthz = %d %q, want 503 down: %s", resp.StatusCode, h.Status, body)
	}

	resp, body = get("/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz status %d", resp.StatusCode)
	}
	var stats RouterStats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Ring.Peers) != 2 || len(stats.Peers) != 2 {
		t.Fatalf("statsz ring/peers = %+v", stats)
	}
	sum := 0.0
	for _, s := range stats.Ring.Shares {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("statsz shares sum to %f", sum)
	}

	// The metrics endpoint must expose every relsyn_cluster_* series
	// eagerly (CI smoke greps them at zero).
	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, series := range []string{
		"relsyn_cluster_forwards_total",
		"relsyn_cluster_failovers_total",
		"relsyn_cluster_hedges_total",
		"relsyn_cluster_hedge_wins_total",
		"relsyn_cluster_loops_broken_total",
		"relsyn_cluster_peer_degraded",
	} {
		if !bytes.Contains(body, []byte(series)) {
			t.Errorf("metrics exposition missing %s", series)
		}
	}
}

func TestRouterInvalidSpec(t *testing.T) {
	shard := newStubShard(t, "s0")
	rt := newTestRouter(t, RouterConfig{Peers: []string{shard.addr()}, HedgeAfter: -1})
	resp, body := postRouter(t, rt, "/v1/synth", map[string]any{"pla": ".i nope"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if len(shard.calls("/v1/synth")) != 0 {
		t.Fatal("invalid spec must not be forwarded")
	}
}

// TestRouterStatszStableParseableJSON is the router half of the statsz
// schema regression (the shard half lives in internal/server): the
// fleet differ flattens this document, so it must stay one valid JSON
// object with the documented keys and no non-finite floats — even with
// traffic (and a dead peer) behind it.
func TestRouterStatszStableParseableJSON(t *testing.T) {
	a := newStubShard(t, "shard-a")
	b := newStubShard(t, "shard-b")
	rt := newTestRouter(t, RouterConfig{Peers: []string{a.addr(), b.addr()}})

	// Some real traffic plus one open breaker, so peers carry mixed
	// states and the histogram series hold samples.
	text, _ := seedOwnedBy(t, rt.ring, a.addr())
	raw, _ := json.Marshal(map[string]any{"pla": text})
	req := httptest.NewRequest(http.MethodPost, "/v1/synth", bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("synth through router: %d: %s", rec.Code, rec.Body.String())
	}
	// Default threshold is 3 consecutive failures: trip b's breaker so
	// the peer map carries mixed raw states ("open" vs "closed").
	for i := 0; i < 3; i++ {
		rt.byAddr[b.addr()].breaker.Record(fmt.Errorf("injected"))
	}

	req = httptest.NewRequest(http.MethodGet, "/statsz", nil)
	rec = httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("statsz status %d", rec.Code)
	}
	body := rec.Body.Bytes()
	if !json.Valid(body) {
		t.Fatalf("router statsz is not valid JSON (truncated encode?):\n%s", body)
	}
	if bad := regexp.MustCompile(`\b(NaN|Inf|Infinity)\b`); bad.Match(body) {
		t.Fatalf("router statsz leaks a non-finite float:\n%s", body)
	}
	var stats RouterStats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("statsz does not decode into RouterStats: %v", err)
	}
	if stats.UptimeSeconds < 0 || len(stats.Ring.Peers) != 2 || len(stats.Peers) != 2 {
		t.Fatalf("statsz content off: %+v", stats)
	}
	if stats.Peers[b.addr()] != "open" || stats.Peers[a.addr()] != "closed" {
		t.Fatalf("peer breaker states = %v", stats.Peers)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"uptime_seconds", "ring", "peers", "metrics"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("router statsz missing required key %q:\n%s", key, body)
		}
	}
	metrics, ok := doc["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("router statsz metrics is %T, want object", doc["metrics"])
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := metrics[key]; !ok {
			t.Fatalf("router statsz metrics missing %q", key)
		}
	}
}
