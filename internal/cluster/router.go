// The relsyn-router serving core: a stateless HTTP daemon that owns no
// compute and no cache. It parses each submission just far enough to
// content-address it (internal/pla.HashFunction), maps the hash onto
// the consistent-hash ring, and forwards the request — byte-for-byte —
// to the owning relsynd shard with the reliability behaviors a fleet
// front door needs:
//
//   - Forwarding reuses relsyn/client, so every hop inherits its capped
//     exponential backoff and Retry-After handling.
//   - Hedged fan-out: if the owner has not answered within HedgeAfter,
//     the same request races against the next ring replica and the
//     first definitive answer wins. Safe by construction: requests are
//     content-addressed, so the loser's work lands in a shard cache (or
//     coalesces with the winner's via peer fill) instead of corrupting
//     anything.
//   - Failover: a transport error or retry-exhausted 5xx/429 moves to
//     the next replica in ring order. A per-peer circuit breaker
//     (internal/store.Breaker) front-runs known-dead shards so requests
//     skip straight to their successors, with half-open probes to
//     notice recovery.
//   - Loop breaking: every forwarded request carries HeaderForwarded;
//     inbound requests that already carry it are refused with 508, so a
//     -peers list that includes the router itself degrades into one
//     failed candidate instead of an infinite loop.
//
// Batches are split by owner into per-shard sub-batches, forwarded
// concurrently (each with the same hedge/failover policy), and
// reassembled in request order.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"relsyn/client"
	"relsyn/internal/obs"
	"relsyn/internal/pla"
	"relsyn/internal/store"
	"relsyn/internal/tt"
)

const maxBodyBytes = 8 << 20

// RouterConfig sizes the router. Peers is required; every other field
// has a sensible default.
type RouterConfig struct {
	// Peers is the relsynd shard fleet (host:port or URL); the same
	// list, in any order, that each shard was given via -peers.
	Peers []string
	// VNodes is the ring's virtual-node count per peer (default
	// DefaultVNodes). Must match the shards' setting for peer cache
	// fill to agree on owners.
	VNodes int
	// HedgeAfter races the next ring replica against a slow owner after
	// this delay. Zero or negative disables hedging (cmd/relsyn-router's
	// flag defaults to 100ms).
	HedgeAfter time.Duration
	// ForwardTimeout bounds one forwarded HTTP exchange (default 2m).
	ForwardTimeout time.Duration
	// MaxAttempts is the per-peer retry budget handed to relsyn/client
	// (default 2: one try, one retry — cross-peer failover is the
	// router's own second line of defense).
	MaxAttempts int
	// BreakerThreshold / BreakerCooldown configure the per-peer circuit
	// breaker (defaults: 3 consecutive failures, 5s cooldown, as
	// internal/store's).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Name identifies this router in the HeaderForwarded marker
	// (default "relsyn-router").
	Name string
	// HTTPClient overrides the forwarding transport (tests).
	HTTPClient *http.Client
	// Metrics receives the relsyn_cluster_* series (default
	// obs.Default).
	Metrics *obs.Registry
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 2 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Name == "" {
		c.Name = "relsyn-router"
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default
	}
	return c
}

// peer is one shard as the router sees it: a retrying client plus a
// health breaker and its per-peer counters.
type peer struct {
	addr      string
	client    *client.Client
	breaker   *store.Breaker
	forwards  obs.Counter
	failovers obs.Counter
}

// Router is the stateless shard router. Safe for concurrent use.
type Router struct {
	cfg     RouterConfig
	ring    *Ring
	byAddr  map[string]*peer
	started time.Time

	hedges    obs.Counter
	hedgeWins obs.Counter
	loops     obs.Counter
}

// NewRouter validates cfg, builds the ring, and connects a client per
// peer.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:     cfg,
		ring:    ring,
		byAddr:  make(map[string]*peer, len(ring.Peers())),
		started: time.Now(),
	}
	reg := cfg.Metrics
	reg.SetHelp("relsyn_cluster_forwards_total", "Requests forwarded to a shard, by peer (hedges and failovers included).")
	reg.SetHelp("relsyn_cluster_failovers_total", "Forwards abandoned for the next ring replica after a transport error or retry-exhausted 5xx, by failed peer.")
	reg.SetHelp("relsyn_cluster_hedges_total", "Hedge forwards launched against slow owners.")
	reg.SetHelp("relsyn_cluster_hedge_wins_total", "Hedge forwards that answered before the primary.")
	reg.SetHelp("relsyn_cluster_loops_broken_total", "Inbound requests refused with 508 because they already carried the forwarding marker.")
	reg.SetHelp("relsyn_cluster_peer_degraded", "1 while the peer's circuit breaker is open (requests route around it), by peer.")
	reg.RegisterCounter("relsyn_cluster_hedges_total", &rt.hedges)
	reg.RegisterCounter("relsyn_cluster_hedge_wins_total", &rt.hedgeWins)
	reg.RegisterCounter("relsyn_cluster_loops_broken_total", &rt.loops)
	httpClient := cfg.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: cfg.ForwardTimeout}
	}
	for _, addr := range ring.Peers() {
		cl, err := client.New(client.Config{
			BaseURL:     BaseURL(addr),
			HTTPClient:  httpClient,
			MaxAttempts: cfg.MaxAttempts,
			Metrics:     reg,
			Header:      http.Header{HeaderForwarded: []string{cfg.Name}},
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %s: %w", addr, err)
		}
		p := &peer{
			addr:    addr,
			client:  cl,
			breaker: store.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
		reg.RegisterCounter("relsyn_cluster_forwards_total", &p.forwards, obs.L("peer", addr))
		reg.RegisterCounter("relsyn_cluster_failovers_total", &p.failovers, obs.L("peer", addr))
		reg.GaugeFunc("relsyn_cluster_peer_degraded", func() float64 {
			if p.breaker.Degraded() {
				return 1
			}
			return 0
		}, obs.L("peer", addr))
		rt.byAddr[addr] = p
	}
	return rt, nil
}

// Ring exposes the router's placement ring (tests, /statsz).
func (rt *Router) Ring() *Ring { return rt.ring }

// candidates returns the full failover chain for a spec hash in ring
// order: the owner first, then its successors.
func (rt *Router) candidates(specHash string) []*peer {
	addrs := rt.ring.Replicas(specHash, 0)
	out := make([]*peer, len(addrs))
	for i, a := range addrs {
		out[i] = rt.byAddr[a]
	}
	return out
}

// fwdResult is one forwarded call's outcome.
type fwdResult[T any] struct {
	env   T
	code  int
	err   error
	p     *peer
	hedge bool
}

// forwardRace fans one forwarding call out over cands: launch the first
// candidate whose breaker admits it, hedge to the next after HedgeAfter,
// fail over on error. The first definitive answer (err == nil from
// call, 4xx included) wins and cancels the rest. If every candidate's
// breaker is open the first is tried anyway — when the whole fleet
// looks dead, availability beats politeness.
func forwardRace[T any](rt *Router, ctx context.Context, cands []*peer,
	call func(ctx context.Context, p *peer) (T, int, error)) (T, int, error) {
	var zero T
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap the losers
	results := make(chan fwdResult[T], len(cands))
	next, pending := 0, 0
	var tripped []*peer // candidates whose breaker refused them, in order
	fire := func(p *peer, hedge bool) {
		pending++
		p.forwards.Inc()
		if hedge {
			rt.hedges.Inc()
		}
		go func() {
			env, code, err := call(cctx, p)
			results <- fwdResult[T]{env: env, code: code, err: err, p: p, hedge: hedge}
		}()
	}
	// launchNext starts the next breaker-admitted candidate; candidates
	// the breaker refuses queue up as a last resort.
	launchNext := func(hedge bool) bool {
		for next < len(cands) {
			p := cands[next]
			next++
			if !p.breaker.Allow() {
				tripped = append(tripped, p)
				continue
			}
			fire(p, hedge)
			return true
		}
		if len(tripped) > 0 {
			p := tripped[0]
			tripped = tripped[1:]
			fire(p, hedge)
			return true
		}
		return false
	}
	if !launchNext(false) {
		return zero, 0, errors.New("cluster: no forwarding candidates")
	}
	var hedgeC <-chan time.Time
	if rt.cfg.HedgeAfter > 0 && len(cands) > 1 {
		t := time.NewTimer(rt.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for {
		select {
		case r := <-results:
			pending--
			if r.err == nil {
				r.p.breaker.Record(nil)
				if r.hedge {
					rt.hedgeWins.Inc()
				}
				return r.env, r.code, nil
			}
			r.p.breaker.Record(r.err)
			r.p.failovers.Inc()
			lastErr = r.err
			if !launchNext(false) && pending == 0 {
				return zero, 0, lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			launchNext(true)
		case <-ctx.Done():
			return zero, 0, ctx.Err()
		}
	}
}

// hashSpec content-addresses one submission's .pla text.
func hashSpec(plaText string) (string, error) {
	if strings.TrimSpace(plaText) == "" {
		return "", errors.New("empty pla")
	}
	file, err := pla.Parse(strings.NewReader(plaText))
	if err != nil {
		return "", err
	}
	var fn *tt.Function
	if fn, err = file.ToFunction(); err != nil {
		return "", err
	}
	return pla.HashFunction(fn), nil
}

// Handler returns the router's HTTP handler: the same public surface as
// a shard (/v1/synth, /v1/synth/batch, /v1/jobs/{id}) plus router-side
// /healthz, /statsz, and /metrics.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.Handle(pattern, rt.instrument(name, h))
	}
	route("POST /v1/synth", "/v1/synth", rt.handleSynth)
	route("POST /v1/synth/batch", "/v1/synth/batch", rt.handleBatch)
	route("GET /v1/jobs/{id}", "/v1/jobs/{id}", rt.handleJob)
	route("GET /healthz", "/healthz", rt.handleHealthz)
	route("GET /statsz", "/statsz", rt.handleStatsz)
	route("GET /metrics", "/metrics", rt.handleMetrics)
	return mux
}

// instrument mirrors the shard's HTTP middleware: requests by
// route/code, per-route latency, in-flight gauge — same series names,
// scraped from the router's own registry.
func (rt *Router) instrument(routeName string, h http.HandlerFunc) http.Handler {
	reg := rt.cfg.Metrics
	reg.SetHelp("relsyn_http_requests_total", "HTTP requests served, by route and status code.")
	reg.SetHelp("relsyn_http_request_duration_seconds", "HTTP request latency, by route.")
	reg.SetHelp("relsyn_http_in_flight", "HTTP requests currently being served.")
	routeL := obs.L("route", routeName)
	dur := reg.Histogram("relsyn_http_request_duration_seconds", routeL)
	inFlight := reg.Gauge("relsyn_http_in_flight")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		inFlight.Add(-1)
		dur.Observe(time.Since(start).Seconds())
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		reg.Counter("relsyn_http_requests_total", routeL,
			obs.L("code", strconv.Itoa(code))).Inc()
	})
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, client.Response{Status: "error", Error: fmt.Sprintf(format, args...)})
}

// breakLoop refuses requests that already crossed a routing hop.
// Reports true when the request was handled (refused).
func (rt *Router) breakLoop(w http.ResponseWriter, r *http.Request) bool {
	if via := r.Header.Get(HeaderForwarded); via != "" {
		rt.loops.Inc()
		writeJSON(w, http.StatusLoopDetected, client.Response{
			Status: "loop",
			Error:  fmt.Sprintf("cluster: forwarding loop: request already forwarded via %q — check -peers for the router's own address", via),
		})
		return true
	}
	return false
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
}

func (rt *Router) handleSynth(w http.ResponseWriter, r *http.Request) {
	if rt.breakLoop(w, r) {
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	var req struct {
		PLA string `json:"pla"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	hash, err := hashSpec(req.PLA)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, client.Response{Status: "invalid", Error: fmt.Sprintf("parse pla: %v", err)})
		return
	}
	hdr := ForwardHeaders(r.Header, rt.cfg.Name)
	env, code, err := forwardRace(rt, r.Context(), rt.candidates(hash),
		func(ctx context.Context, p *peer) (*client.Response, int, error) {
			return p.client.Do(ctx, http.MethodPost, "/v1/synth", body, hdr)
		})
	if err != nil {
		writeJSON(w, http.StatusBadGateway, client.Response{Status: "unreachable", Error: err.Error()})
		return
	}
	writeJSON(w, code, env)
}

// batchEnvelope mirrors the shard's BatchResponse shape.
type batchEnvelope struct {
	Results []client.Response `json:"results"`
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if rt.breakLoop(w, r) {
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	var breq struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	if err := json.Unmarshal(body, &breq); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if len(breq.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	// Place every job; invalid specs are answered inline (the router is
	// the parse authority — there is no shard to own an unhashable
	// spec). Valid jobs group into per-owner sub-batches.
	results := make([]client.Response, len(breq.Jobs))
	groups := make(map[string][]int) // owner addr -> original indices
	groupHash := make(map[string]string)
	for i, raw := range breq.Jobs {
		var job struct {
			PLA string `json:"pla"`
		}
		if err := json.Unmarshal(raw, &job); err != nil {
			results[i] = client.Response{Status: "invalid", Error: fmt.Sprintf("decode job: %v", err)}
			continue
		}
		hash, err := hashSpec(job.PLA)
		if err != nil {
			results[i] = client.Response{Status: "invalid", Error: fmt.Sprintf("parse pla: %v", err)}
			continue
		}
		owner := rt.ring.Owner(hash)
		groups[owner] = append(groups[owner], i)
		if _, ok := groupHash[owner]; !ok {
			// The failover chain for the whole sub-batch follows its
			// first key's ring order; co-owned keys share successors
			// often enough that this stays one hop in the common case.
			groupHash[owner] = hash
		}
	}
	hdr := ForwardHeaders(r.Header, rt.cfg.Name)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner string, idxs []int) {
			defer wg.Done()
			sub := struct {
				Jobs []json.RawMessage `json:"jobs"`
			}{Jobs: make([]json.RawMessage, len(idxs))}
			for k, i := range idxs {
				sub.Jobs[k] = breq.Jobs[i]
			}
			subBody, err := json.Marshal(sub)
			if err != nil {
				mu.Lock()
				for _, i := range idxs {
					results[i] = client.Response{Status: "error", Error: err.Error()}
				}
				mu.Unlock()
				return
			}
			br, _, err := forwardRaceBatch(rt, r.Context(), rt.candidates(groupHash[owner]), subBody, hdr)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				for _, i := range idxs {
					results[i] = client.Response{Status: "unreachable", Error: err.Error()}
				}
			case br.batch == nil || len(br.batch.Results) != len(idxs):
				// Definitive non-batch answer: a whole-batch 4xx envelope
				// or a malformed body — fail every slot in this group.
				msg := "cluster: malformed sub-batch response"
				if br.errEnv != nil && br.errEnv.Error != "" {
					msg = br.errEnv.Error
				}
				for _, i := range idxs {
					results[i] = client.Response{Status: "error", Error: msg}
				}
			default:
				for k, i := range idxs {
					results[i] = br.batch.Results[k]
				}
			}
		}(owner, idxs)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, batchEnvelope{Results: results})
}

// batchOutcome wraps DoBatch's two-envelope result for forwardRace.
type batchOutcome struct {
	batch  *client.BatchResponse
	errEnv *client.Response
}

func forwardRaceBatch(rt *Router, ctx context.Context, cands []*peer, body []byte, hdr http.Header) (*batchOutcome, int, error) {
	return forwardRace(rt, ctx, cands,
		func(ctx context.Context, p *peer) (*batchOutcome, int, error) {
			batch, errEnv, code, err := p.client.DoBatch(ctx, body, hdr)
			if err != nil {
				return nil, code, err
			}
			return &batchOutcome{batch: batch, errEnv: errEnv}, code, nil
		})
}

// handleJob fans a job poll out to every shard: job IDs are minted by
// shards, so the router cannot place them on the ring. First 200 wins.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	if rt.breakLoop(w, r) {
		return
	}
	id := r.PathValue("id")
	hdr := ForwardHeaders(r.Header, rt.cfg.Name)
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	type pollResult struct {
		env  *client.Response
		code int
		err  error
	}
	results := make(chan pollResult, len(rt.byAddr))
	for _, p := range rt.byAddr {
		go func(p *peer) {
			env, code, err := p.client.Do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, hdr)
			results <- pollResult{env, code, err}
		}(p)
	}
	sawMiss := false
	var lastErr error
	for range rt.byAddr {
		pr := <-results
		switch {
		case pr.err == nil && pr.code == http.StatusOK:
			writeJSON(w, http.StatusOK, pr.env)
			return
		case pr.err == nil && pr.code == http.StatusNotFound:
			sawMiss = true
		case pr.err != nil:
			lastErr = pr.err
		default:
			sawMiss = true
		}
	}
	if sawMiss || lastErr == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusBadGateway, client.Response{Status: "unreachable", Error: lastErr.Error()})
}

// RouterHealth is the /healthz body: overall status plus per-peer
// breaker state.
type RouterHealth struct {
	// Status is "ok" (every shard live), "degraded" (some breakers
	// open, still routing), or "down" (every breaker open).
	Status string `json:"status"`
	// Peers maps each shard to "ok" or "degraded".
	Peers map[string]string `json:"peers"`
}

// Health classifies the fleet from the router's breakers.
func (rt *Router) Health() RouterHealth {
	h := RouterHealth{Peers: make(map[string]string, len(rt.byAddr))}
	live := 0
	for addr, p := range rt.byAddr {
		if p.breaker.Degraded() {
			h.Peers[addr] = "degraded"
		} else {
			h.Peers[addr] = "ok"
			live++
		}
	}
	switch {
	case live == len(rt.byAddr):
		h.Status = "ok"
	case live > 0:
		h.Status = "degraded"
	default:
		h.Status = "down"
	}
	return h
}

// handleHealthz returns 200 while at least one shard is live (load
// balancers keep routing here as long as the router can make progress);
// 503 only when every peer's breaker is open.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := rt.Health()
	code := http.StatusOK
	if h.Status == "down" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// RouterStats is the /statsz body.
type RouterStats struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Ring          RingSnapshot      `json:"ring"`
	Peers         map[string]string `json:"peers"` // breaker states
	Metrics       obs.Snapshot      `json:"metrics"`
}

func (rt *Router) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	peers := make(map[string]string, len(rt.byAddr))
	for addr, p := range rt.byAddr {
		peers[addr] = p.breaker.State()
	}
	writeJSON(w, http.StatusOK, RouterStats{
		UptimeSeconds: time.Since(rt.started).Seconds(),
		Ring:          rt.ring.Snapshot(),
		Peers:         peers,
		Metrics:       rt.cfg.Metrics.Snapshot(),
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.cfg.Metrics.WritePrometheus(w)
}
