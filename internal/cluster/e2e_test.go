// End-to-end cluster tests: real relsynd shards (internal/server) and a
// real router, wired over loopback TCP exactly as a deployment would be
// — the router and every shard hold the same -peers list, placement is
// computed independently on each node, and the only coordination is the
// HTTP surface itself.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"relsyn/internal/cluster"
	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
	"relsyn/internal/pla"
	"relsyn/internal/server"
	"relsyn/internal/tt"
)

// e2eSpecPLA builds a tiny but distinct 4-input spec per seed. An odd
// multiplier is a bijection mod 2^16, so the low 16 bits of seed*40503
// pick a distinct on-set for every seed below 65536 — ownership
// searches must never run out of candidates, however the ephemeral-port
// peer addresses happen to split the ring.
func e2eSpecPLA(seed int) string {
	bits := seed * 40503 & 0xffff
	dc := (seed*7 + 5) % 16
	bits &^= 1 << dc
	if bits == 0 {
		bits = 1 << ((dc + 1) % 16)
	}
	var b strings.Builder
	b.WriteString(".i 4\n.o 1\n")
	for m := 0; m < 16; m++ {
		if bits>>m&1 == 1 {
			fmt.Fprintf(&b, "%04b 1\n", m)
		}
	}
	fmt.Fprintf(&b, "%04b -\n", dc)
	b.WriteString(".e\n")
	return b.String()
}

func e2eHash(t *testing.T, text string) string {
	t.Helper()
	file, err := pla.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	fn, err := file.ToFunction()
	if err != nil {
		t.Fatal(err)
	}
	return pla.HashFunction(fn)
}

// e2eBackend counts executions per spec hash, optionally delaying each
// run and announcing starts.
type e2eBackend struct {
	mu      sync.Mutex
	runs    map[string]int
	delay   time.Duration
	started chan string // non-nil: receives each hash as its run begins
}

func (b *e2eBackend) fn(ctx context.Context, f *tt.Function, jo pipeline.JobOptions) (*pipeline.JobResult, error) {
	h := pla.HashFunction(f)
	b.mu.Lock()
	if b.runs == nil {
		b.runs = make(map[string]int)
	}
	b.runs[h]++
	b.mu.Unlock()
	if b.started != nil {
		select {
		case b.started <- h:
		default:
		}
	}
	if b.delay > 0 {
		select {
		case <-time.After(b.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return pipeline.RunJob(ctx, f, jo)
}

func (b *e2eBackend) count(hash string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runs[hash]
}

// e2eShard is one in-process relsynd.
type e2eShard struct {
	addr    string
	srv     *server.Server
	ts      *httptest.Server
	backend *e2eBackend
	reg     *obs.Registry
}

// kill simulates the shard's process dying: in-flight connections are
// severed, the port stops answering, and the worker pool is stopped
// without drain.
func (sh *e2eShard) kill() {
	sh.ts.CloseClientConnections()
	sh.ts.Close()
	sh.srv.Close()
}

type e2eCluster struct {
	shards []*e2eShard
	peers  []string
	ring   *cluster.Ring
	router *httptest.Server
	reg    *obs.Registry // router registry
}

// bootCluster starts n cluster-aware shards plus one router. Listeners
// are claimed first so every node knows the full membership before any
// traffic flows.
func bootCluster(t *testing.T, n int, mkBackend func(i int) *e2eBackend, rcfg cluster.RouterConfig) *e2eCluster {
	t.Helper()
	c := &e2eCluster{}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		c.peers = append(c.peers, ln.Addr().String())
	}
	ring, err := cluster.NewRing(c.peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.ring = ring
	for i, ln := range lns {
		sh := &e2eShard{addr: ln.Addr().String(), backend: mkBackend(i), reg: obs.NewRegistry()}
		sh.srv = server.New(server.Config{
			Workers:  4,
			Metrics:  sh.reg,
			Backend:  sh.backend.fn,
			Peers:    c.peers,
			SelfAddr: sh.addr,
		})
		sh.ts = &httptest.Server{Listener: ln, Config: &http.Server{Handler: sh.srv.Handler()}}
		sh.ts.Start()
		c.shards = append(c.shards, sh)
		t.Cleanup(func() {
			defer func() { recover() }() // killed shards close twice
			sh.ts.Close()
			sh.srv.Close()
		})
	}
	c.reg = obs.NewRegistry()
	rcfg.Peers = c.peers
	rcfg.Metrics = c.reg
	rt, err := cluster.NewRouter(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	c.router = httptest.NewServer(rt.Handler())
	t.Cleanup(c.router.Close)
	return c
}

// ownerIdx maps a spec hash to the shard index owning it.
func (c *e2eCluster) ownerIdx(hash string) int {
	owner := c.ring.Owner(hash)
	for i, sh := range c.shards {
		if sh.addr == owner {
			return i
		}
	}
	return -1
}

// specsOwnedBy returns count distinct specs owned by shard idx.
func (c *e2eCluster) specsOwnedBy(t *testing.T, idx, count int, used map[string]bool) (texts, hashes []string) {
	t.Helper()
	for seed := 0; seed < 5000 && len(texts) < count; seed++ {
		text := e2eSpecPLA(seed)
		h := e2eHash(t, text)
		if used[h] || c.ownerIdx(h) != idx {
			continue
		}
		used[h] = true
		texts = append(texts, text)
		hashes = append(hashes, h)
	}
	if len(texts) < count {
		t.Fatalf("found only %d/%d specs owned by shard %d", len(texts), count, idx)
	}
	return texts, hashes
}

// totalRuns sums backend executions of hash across every shard.
func (c *e2eCluster) totalRuns(hash string) int {
	total := 0
	for _, sh := range c.shards {
		total += sh.backend.count(hash)
	}
	return total
}

// counterSum sums a counter series (across label sets) in a registry.
func counterSum(reg *obs.Registry, name string) int64 {
	var total int64
	for key, v := range reg.Snapshot().Counters {
		if key == name || strings.HasPrefix(key, name+"{") {
			total += v
		}
	}
	return total
}

type synthEnvelope struct {
	JobID  string              `json:"job_id"`
	Status string              `json:"status"`
	Cached bool                `json:"cached"`
	Result *pipeline.JobResult `json:"result"`
	Error  string              `json:"error"`
}

func postSynth(t *testing.T, baseURL, plaText string) synthEnvelope {
	t.Helper()
	raw, _ := json.Marshal(map[string]any{"pla": plaText})
	resp, err := http.Post(baseURL+"/v1/synth", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST /v1/synth: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/synth: status %d: %s", resp.StatusCode, body)
	}
	var env synthEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("decode synth envelope: %v: %s", err, body)
	}
	return env
}

// TestE2EPlacementAndPeerFill drives the steady-state contract through
// the full stack: the router computes each spec exactly once on its ring
// owner, repeats are cache hits, and a shard handed a foreign key fills
// from the owner's cache instead of recomputing.
func TestE2EPlacementAndPeerFill(t *testing.T) {
	c := bootCluster(t, 3, func(int) *e2eBackend { return &e2eBackend{} }, cluster.RouterConfig{})

	const nSpecs = 9
	texts := make([]string, nSpecs)
	hashes := make([]string, nSpecs)
	for i := range texts {
		texts[i] = e2eSpecPLA(i)
		hashes[i] = e2eHash(t, texts[i])
	}

	// Round 1 via the router: one computation each, on the owner.
	for i, text := range texts {
		env := postSynth(t, c.router.URL, text)
		if env.Status != "done" || env.Result == nil {
			t.Fatalf("spec %d: envelope %+v", i, env)
		}
		owner := c.ownerIdx(hashes[i])
		if got := c.shards[owner].backend.count(hashes[i]); got != 1 {
			t.Fatalf("spec %d: owner ran it %d times, want 1", i, got)
		}
		if got := c.totalRuns(hashes[i]); got != 1 {
			t.Fatalf("spec %d: %d total runs, want 1 (owner only)", i, got)
		}
	}

	// Round 2 via the router: pure cache hits, no new computation.
	for i, text := range texts {
		env := postSynth(t, c.router.URL, text)
		if env.Status != "done" || !env.Cached {
			t.Fatalf("spec %d repeat: envelope %+v, want cached", i, env)
		}
		if got := c.totalRuns(hashes[i]); got != 1 {
			t.Fatalf("spec %d repeat: %d total runs, want still 1", i, got)
		}
	}

	// Round 3 bypasses the router, submitting each spec to a NON-owner
	// shard (as a hedge or a direct client would): peer fill fetches the
	// owner's result — still no recomputation anywhere.
	fills := 0
	for i, text := range texts {
		nonOwner := (c.ownerIdx(hashes[i]) + 1) % len(c.shards)
		env := postSynth(t, c.shards[nonOwner].ts.URL, text)
		if env.Status != "done" || env.Result == nil {
			t.Fatalf("spec %d non-owner: envelope %+v", i, env)
		}
		if got := c.totalRuns(hashes[i]); got != 1 {
			t.Fatalf("spec %d non-owner: %d total runs, want still 1 (peer fill must prevent recompute)", i, got)
		}
		fills++
	}
	totalHits := int64(0)
	for _, sh := range c.shards {
		totalHits += counterSum(sh.reg, "relsyn_cluster_peer_fill_hits_total")
	}
	if totalHits != int64(fills) {
		t.Fatalf("peer_fill_hits across shards = %d, want %d", totalHits, fills)
	}
	if fwd := counterSum(c.reg, "relsyn_cluster_forwards_total"); fwd != nSpecs*2 {
		t.Fatalf("router forwards = %d, want %d (two routed rounds, no hedges/failovers)", fwd, nSpecs*2)
	}
}

// TestE2EHedgedSlowShard: a shard that stalls gets hedged around — the
// next ring replica answers first and the request still completes fast.
func TestE2EHedgedSlowShard(t *testing.T) {
	slowIdx := 0
	c := bootCluster(t, 2, func(i int) *e2eBackend {
		if i == slowIdx {
			return &e2eBackend{delay: 3 * time.Second}
		}
		return &e2eBackend{}
	}, cluster.RouterConfig{HedgeAfter: 25 * time.Millisecond})

	used := map[string]bool{}
	texts, hashes := c.specsOwnedBy(t, slowIdx, 1, used)
	start := time.Now()
	env := postSynth(t, c.router.URL, texts[0])
	if env.Status != "done" || env.Result == nil {
		t.Fatalf("envelope %+v", env)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedged request took %s — hedge did not win", elapsed)
	}
	if wins := counterSum(c.reg, "relsyn_cluster_hedge_wins_total"); wins < 1 {
		t.Fatalf("hedge_wins = %d, want >= 1", wins)
	}
	// The fast shard computed it (peer fill missed: the owner was still
	// chewing on it).
	if got := c.shards[1-slowIdx].backend.count(hashes[0]); got != 1 {
		t.Fatalf("hedge target ran it %d times, want 1", got)
	}
}

// TestE2EKillShardMidBatch is the acceptance scenario: three shards, a
// batch in flight, one shard killed while computing its share. The
// router must fail the dead shard's sub-batch over to the next replica,
// every accepted job must reach a terminal state, and the counting
// backends + peer-fill counters must prove no spec was computed twice on
// the surviving shards.
func TestE2EKillShardMidBatch(t *testing.T) {
	victimIdx := 0
	started := make(chan string, 64)
	c := bootCluster(t, 3, func(i int) *e2eBackend {
		if i == victimIdx {
			return &e2eBackend{delay: 400 * time.Millisecond, started: started}
		}
		return &e2eBackend{delay: 20 * time.Millisecond}
	}, cluster.RouterConfig{MaxAttempts: 1})

	// A mixed batch: 4 specs owned by the victim, 4 by each survivor.
	used := map[string]bool{}
	var texts, hashes []string
	victimHashes := map[string]bool{}
	for idx := 0; idx < 3; idx++ {
		ts, hs := c.specsOwnedBy(t, idx, 4, used)
		texts = append(texts, ts...)
		hashes = append(hashes, hs...)
		if idx == victimIdx {
			for _, h := range hs {
				victimHashes[h] = true
			}
		}
	}

	jobs := make([]map[string]any, len(texts))
	for i, text := range texts {
		jobs[i] = map[string]any{"pla": text}
	}
	raw, _ := json.Marshal(map[string]any{"jobs": jobs})

	type batchResult struct {
		code int
		body []byte
		err  error
	}
	resCh := make(chan batchResult, 1)
	go func() {
		resp, err := http.Post(c.router.URL+"/v1/synth/batch", "application/json", bytes.NewReader(raw))
		if err != nil {
			resCh <- batchResult{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resCh <- batchResult{code: resp.StatusCode, body: body}
	}()

	// Kill the victim once it has actually started computing its share.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("victim never started computing")
	}
	c.shards[victimIdx].kill()

	var br batchResult
	select {
	case br = <-resCh:
	case <-time.After(60 * time.Second):
		t.Fatal("batch never completed after shard kill")
	}
	if br.err != nil {
		t.Fatalf("batch request failed outright: %v", br.err)
	}
	if br.code != http.StatusOK {
		t.Fatalf("batch status %d: %s", br.code, br.body)
	}
	var out struct {
		Results []synthEnvelope `json:"results"`
	}
	if err := json.Unmarshal(br.body, &out); err != nil {
		t.Fatalf("decode batch: %v: %s", err, br.body)
	}
	if len(out.Results) != len(jobs) {
		t.Fatalf("batch returned %d results for %d jobs", len(out.Results), len(jobs))
	}
	// Every accepted job reaches a terminal, successful state despite the
	// kill: the dead shard's sub-batch failed over to a survivor.
	for i, r := range out.Results {
		if r.Status != "done" || r.Result == nil {
			t.Fatalf("job %d (hash %.12s): status %q error %q — all jobs must complete",
				i, hashes[i], r.Status, r.Error)
		}
	}
	if fo := counterSum(c.reg, "relsyn_cluster_failovers_total"); fo < 1 {
		t.Fatalf("failovers = %d, want >= 1 (the victim's sub-batch must have failed over)", fo)
	}

	// No duplicate computation among survivors: every spec ran exactly
	// once across the two live shards. (The victim may have burned a
	// partial run before dying; that work died with it.)
	for i, h := range hashes {
		runs := 0
		for idx, sh := range c.shards {
			if idx == victimIdx {
				continue
			}
			runs += sh.backend.count(h)
		}
		if victimHashes[h] {
			if runs != 1 {
				t.Fatalf("victim-owned spec %d ran %d times on survivors, want exactly 1", i, runs)
			}
		} else if runs != 1 {
			t.Fatalf("survivor-owned spec %d ran %d times, want exactly 1", i, runs)
		}
	}

	// Peer fill proves results are fetched, not recomputed: hand a
	// survivor-owned, already-computed spec to the other survivor.
	surv := []int{}
	for i := range c.shards {
		if i != victimIdx {
			surv = append(surv, i)
		}
	}
	ownedBySurv0 := -1
	for i, h := range hashes {
		if c.ownerIdx(h) == surv[0] {
			ownedBySurv0 = i
			break
		}
	}
	other := c.shards[surv[1]]
	beforeHits := counterSum(other.reg, "relsyn_cluster_peer_fill_hits_total")
	env := postSynth(t, other.ts.URL, texts[ownedBySurv0])
	if env.Status != "done" {
		t.Fatalf("post-kill fill envelope %+v", env)
	}
	if got := c.totalRuns(hashes[ownedBySurv0]); got != 1 {
		t.Fatalf("post-kill fill recomputed: %d total runs, want 1", got)
	}
	if after := counterSum(other.reg, "relsyn_cluster_peer_fill_hits_total"); after != beforeHits+1 {
		t.Fatalf("peer_fill_hits %d -> %d, want +1", beforeHits, after)
	}

	// And the router still serves: a fresh victim-owned spec completes
	// via failover to a survivor.
	freshTexts, freshHashes := c.specsOwnedBy(t, victimIdx, 1, used)
	env = postSynth(t, c.router.URL, freshTexts[0])
	if env.Status != "done" || env.Result == nil {
		t.Fatalf("post-kill routed envelope %+v", env)
	}
	if got := c.totalRuns(freshHashes[0]); got != 1 {
		t.Fatalf("post-kill routed spec ran %d times, want 1", got)
	}
}
