// Package cluster is the sharded serving tier: a consistent-hash ring
// that assigns every content-addressed specification to exactly one
// owning relsynd shard, and a stateless router (router.go) that maps
// requests onto the ring, hedges slow shards against their ring
// successors, and fails over past dead ones.
//
// Placement contract (DESIGN §12):
//
//   - Deterministic: ownership depends only on the peer *set* and the
//     key — never on the order peers were listed, the node computing
//     the placement, or any runtime state. Every shard and every router
//     holding the same -peers list computes identical owners, which is
//     what makes peer cache fill (internal/server) and router hedging
//     safe without coordination.
//   - Bounded churn: removing one peer remaps only the keys that peer
//     owned; every other key keeps its owner. Virtual nodes (VNodes
//     points per peer) keep the per-peer load share balanced.
//   - Replica order: Replicas(key, n) walks the ring clockwise from the
//     key's point and returns the first n distinct peers. Index 0 is
//     the owner; the rest are the hedging / failover chain, again
//     identical on every node.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// DefaultVNodes is the virtual-node count per peer: 64 points per peer
// keeps the largest/smallest ownership share within ~2x of even for
// small fleets while the ring stays tiny (3 shards = 192 points).
const DefaultVNodes = 64

// Domain separators keep ring-point hashes and key hashes in disjoint
// hash families (a peer name can never collide with a key).
const (
	ringPointDomain = "relsyn/ring/point/v1\n"
	ringKeyDomain   = "relsyn/ring/key/v1\n"
)

// point is one virtual node: a position on the 64-bit ring owned by a
// peer (indexed into Ring.peers).
type point struct {
	h    uint64
	peer int32
}

// Ring is an immutable consistent-hash ring over a static peer set.
// Safe for concurrent use.
type Ring struct {
	vnodes int
	peers  []string // sorted, deduplicated
	points []point  // sorted by (h, peer name)
}

// NewRing builds a ring over peers with vnodes virtual nodes per peer
// (vnodes <= 0 selects DefaultVNodes). Peer strings are trimmed; empty
// entries are dropped; duplicates are an error (they would silently
// double that peer's share).
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(peers))
	clean := make([]string, 0, len(peers))
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		clean = append(clean, p)
	}
	if len(clean) == 0 {
		return nil, errors.New("cluster: ring needs at least one peer")
	}
	sort.Strings(clean)
	r := &Ring{vnodes: vnodes, peers: clean}
	r.points = make([]point, 0, len(clean)*vnodes)
	for pi, p := range clean {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{h: pointHash(p, v), peer: int32(pi)})
		}
	}
	// Ties (64-bit collisions between different peers' points) are
	// broken by peer name so that placement stays deterministic and the
	// bounded-churn property survives removals.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.peers[r.points[i].peer] < r.peers[r.points[j].peer]
	})
	return r, nil
}

// pointHash places virtual node v of a peer on the ring.
func pointHash(peer string, v int) uint64 {
	sum := sha256.Sum256([]byte(ringPointDomain + peer + "#" + strconv.Itoa(v)))
	return binary.BigEndian.Uint64(sum[:8])
}

// KeyPoint maps a cache/spec key onto the ring. Exported so tests and
// diagnostics can reason about placement directly.
func KeyPoint(key string) uint64 {
	sum := sha256.Sum256([]byte(ringKeyDomain + key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Peers returns the ring membership in sorted order. The slice is
// shared; callers must not mutate it.
func (r *Ring) Peers() []string { return r.peers }

// VNodes returns the virtual-node count per peer.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the peer owning key: the peer whose virtual node is
// first at or clockwise after the key's ring point.
func (r *Ring) Owner(key string) string {
	return r.replicas(KeyPoint(key), 1)[0]
}

// Replicas returns the first n distinct peers clockwise from key's ring
// point: the owner first, then its failover/hedging successors. n <= 0
// or n > len(peers) returns every peer in ring order for this key.
func (r *Ring) Replicas(key string, n int) []string {
	return r.replicas(KeyPoint(key), n)
}

func (r *Ring) replicas(h uint64, n int) []string {
	if n <= 0 || n > len(r.peers) {
		n = len(r.peers)
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]string, 0, n)
	taken := make([]bool, len(r.peers))
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		pt := r.points[(i+k)%len(r.points)]
		if !taken[pt.peer] {
			taken[pt.peer] = true
			out = append(out, r.peers[pt.peer])
		}
	}
	return out
}

// Shares returns each peer's exact fraction of the ring (arc length of
// the key space it owns). Shares sum to 1; with enough virtual nodes
// they concentrate around 1/len(peers).
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.peers))
	for _, p := range r.peers {
		out[p] = 0
	}
	for i, pt := range r.points {
		// A point owns the arc reaching back to its predecessor;
		// uint64 subtraction wraps correctly for the first point.
		arc := pt.h - r.points[(i+len(r.points)-1)%len(r.points)].h
		if len(r.points) == 1 {
			arc = math.MaxUint64 // single point owns the whole ring
		}
		out[r.peers[pt.peer]] += float64(arc)
	}
	const ringSize = float64(1<<63) * 2
	for k := range out {
		out[k] /= ringSize
	}
	return out
}

// RingSnapshot is the JSON view of a ring for /statsz.
type RingSnapshot struct {
	Peers  []string           `json:"peers"`
	VNodes int                `json:"vnodes"`
	Shares map[string]float64 `json:"shares"`
}

// Snapshot summarizes the ring.
func (r *Ring) Snapshot() RingSnapshot {
	return RingSnapshot{
		Peers:  append([]string(nil), r.peers...),
		VNodes: r.vnodes,
		Shares: r.Shares(),
	}
}

// BaseURL normalizes a peer address into a client base URL: addresses
// without a scheme get "http://".
func BaseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}
