// Forwarding hygiene shared by the router and relsynd's peer-fill
// client: hop-by-hop header stripping and the loop-breaking forwarded
// marker.
package cluster

import (
	"net/http"
	"net/textproto"
	"strings"
)

// HeaderForwarded marks a request that already crossed one relsyn
// routing hop. The router sets it on every forwarded request and
// refuses (508 Loop Detected) any inbound request that carries it: a
// -peers list that mistakenly includes the router itself then degrades
// into an ordinary failover instead of an infinite forwarding loop.
// relsynd sets it on peer cache-fill fetches for the same reason.
const HeaderForwarded = "X-Relsyn-Forwarded"

// hopByHop are the RFC 9110 §7.6.1 connection-scoped headers a proxy
// must not forward (keys in canonical MIME form).
var hopByHop = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

// ForwardHeaders returns the headers safe to attach to a forwarded
// request: a copy of src with hop-by-hop headers (and any header named
// in Connection) stripped, message-framing headers dropped (the
// forwarder re-frames the body it sends), and HeaderForwarded set to
// via so the next hop can detect a forwarding loop.
func ForwardHeaders(src http.Header, via string) http.Header {
	drop := make(map[string]bool, len(hopByHop)+2)
	for k := range hopByHop {
		drop[k] = true
	}
	for _, field := range src.Values("Connection") {
		for _, name := range strings.Split(field, ",") {
			if name = strings.TrimSpace(name); name != "" {
				drop[textproto.CanonicalMIMEHeaderKey(name)] = true
			}
		}
	}
	dst := make(http.Header, len(src))
	for k, vs := range src {
		ck := textproto.CanonicalMIMEHeaderKey(k)
		switch {
		case drop[ck]:
		case ck == "Host" || ck == "Content-Length" || ck == "Content-Type":
			// Re-framed by the outbound request.
		case ck == HeaderForwarded:
			// Never propagate an inbound marker: the loop check already
			// ran, and the outbound hop gets this forwarder's own.
		default:
			dst[ck] = append([]string(nil), vs...)
		}
	}
	dst.Set(HeaderForwarded, via)
	return dst
}
