package cluster

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzRing drives the two placement invariants with fuzzer-chosen peer
// sets and keys:
//
//  1. permutation invariance — reversing (any reordering of) the peer
//     list changes no placement;
//  2. bounded churn — removing one peer remaps only keys that peer
//     owned, and every remapped key lands on the removed peer's
//     successor chain, never reshuffling survivors among themselves.
func FuzzRing(f *testing.F) {
	f.Add("a:1,b:2,c:3", "some-spec-hash", uint8(3))
	f.Add("shard-0:8337,shard-1:8337,shard-2:8337,shard-3:8337", "deadbeef", uint8(16))
	f.Add("x", "k", uint8(1))
	f.Add("p:1,q:2", "", uint8(64))
	f.Fuzz(func(t *testing.T, peerCSV, key string, vnodes uint8) {
		peers := strings.Split(peerCSV, ",")
		r, err := NewRing(peers, int(vnodes))
		if err != nil {
			t.Skip() // invalid peer set (empty/dup) — rejected by construction
		}
		// Derive a family of keys from the fuzz key so each input
		// exercises many placements.
		keys := make([]string, 0, 32)
		for i := 0; i < 32; i++ {
			keys = append(keys, fmt.Sprintf("%s/%d", key, i))
		}

		// Invariant 1: permutation invariance (reverse order).
		rev := make([]string, len(peers))
		for i, p := range peers {
			rev[len(peers)-1-i] = p
		}
		rr, err := NewRing(rev, int(vnodes))
		if err != nil {
			t.Fatalf("reversed peer list rejected: %v", err)
		}
		for _, k := range keys {
			if a, b := r.Owner(k), rr.Owner(k); a != b {
				t.Fatalf("Owner(%q) order-dependent: %q vs %q", k, a, b)
			}
		}

		// Invariant 2: bounded churn on single-peer removal.
		if len(r.Peers()) < 2 {
			return
		}
		removed := r.Owner(keys[0]) // remove a peer that owns something
		rest := make([]string, 0, len(r.Peers())-1)
		for _, p := range r.Peers() {
			if p != removed {
				rest = append(rest, p)
			}
		}
		smaller, err := NewRing(rest, int(vnodes))
		if err != nil {
			t.Fatalf("removal peer list rejected: %v", err)
		}
		for _, k := range keys {
			before, after := r.Owner(k), smaller.Owner(k)
			if before != removed && before != after {
				t.Fatalf("removing %q moved key %q owned by %q to %q", removed, k, before, after)
			}
			if before == removed {
				// The orphaned key must land on its next live replica.
				for _, succ := range r.Replicas(k, 0)[1:] {
					if succ == after {
						break
					}
					if succ != removed {
						t.Fatalf("orphaned key %q skipped live successor %q to land on %q", k, succ, after)
					}
				}
			}
		}
	})
}
