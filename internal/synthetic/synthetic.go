// Package synthetic generates benchmark functions with designated
// structure, reproducing the paper's §2.2 methodology: completely random
// functions ("flipping a three-sided coin for each minterm") bear little
// resemblance to published benchmarks, so functions are instead generated
// to a target complexity factor C^f by seeded local search, which lets
// the experiments sweep functionality from XOR-like (C^f→0) to
// constant-like (C^f→1) at a fixed DC density.
package synthetic

import (
	"fmt"
	"math"
	"math/rand"

	"relsyn/internal/complexity"
	"relsyn/internal/tt"
)

// Params configures Generate.
type Params struct {
	Inputs     int
	Outputs    int
	DCFraction float64 // fraction of each output's minterms that are DC
	TargetCf   float64 // per-output complexity factor to steer toward
	// OnFraction, when positive, fixes the on-set to this fraction of the
	// whole minterm space (it must leave room for the DC set); the search
	// then uses only count-preserving swap moves, so all three signal
	// probabilities are exact. Zero means "balanced care set, free to
	// drift", which lets the search also flip care minterms.
	OnFraction float64
	Tolerance  float64 // acceptable |C^f−target| (default 0.01)
	Seed       int64
	MaxIters   int // local-search move budget per output (default 60·2^n)
	// BestEffort returns the closest function found instead of an error
	// when the target C^f is not reached within tolerance (useful when
	// sweeping targets toward the feasibility boundary, e.g. Fig. 2).
	BestEffort bool
}

// Random generates a function by independent per-minterm sampling with
// the given phase probabilities (the paper's "three-sided coin").
func Random(n, m int, p0, p1, pdc float64, seed int64) (*tt.Function, error) {
	if err := checkProbs(p0, p1, pdc); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	f := tt.New(n, m)
	for o := 0; o < m; o++ {
		for mm := 0; mm < f.Size(); mm++ {
			r := rng.Float64()
			switch {
			case r < p1:
				f.SetPhase(o, mm, tt.On)
			case r < p1+pdc:
				f.SetPhase(o, mm, tt.DC)
			}
		}
	}
	return f, nil
}

func checkProbs(p0, p1, pdc float64) error {
	for _, p := range []float64{p0, p1, pdc} {
		if p < 0 || p > 1 {
			return fmt.Errorf("synthetic: probability %v outside [0,1]", p)
		}
	}
	if s := p0 + p1 + pdc; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("synthetic: probabilities sum to %v, want 1", s)
	}
	return nil
}

// Generate produces a function whose per-output complexity factor is
// steered to Params.TargetCf by local search over phase flips and
// DC-position swaps, at exactly the requested DC density.
func Generate(p Params) (*tt.Function, error) {
	if p.Inputs < 1 || p.Inputs > 16 {
		return nil, fmt.Errorf("synthetic: inputs %d outside [1,16]", p.Inputs)
	}
	if p.Outputs < 1 {
		return nil, fmt.Errorf("synthetic: need at least one output")
	}
	if p.DCFraction < 0 || p.DCFraction > 1 {
		return nil, fmt.Errorf("synthetic: DC fraction %v outside [0,1]", p.DCFraction)
	}
	if p.TargetCf < 0 || p.TargetCf > 1 {
		return nil, fmt.Errorf("synthetic: target C^f %v outside [0,1]", p.TargetCf)
	}
	if p.OnFraction < 0 || p.OnFraction+p.DCFraction > 1 {
		return nil, fmt.Errorf("synthetic: on fraction %v incompatible with DC fraction %v",
			p.OnFraction, p.DCFraction)
	}
	tol := p.Tolerance
	if tol <= 0 {
		tol = 0.01
	}
	size := 1 << uint(p.Inputs)
	iters := p.MaxIters
	if iters <= 0 {
		iters = 60 * size
	}
	rng := rand.New(rand.NewSource(p.Seed))
	f := tt.New(p.Inputs, p.Outputs)
	for o := 0; o < p.Outputs; o++ {
		if err := generateOutput(f, o, p, tol, iters, rng); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func generateOutput(f *tt.Function, o int, p Params, tol float64, iters int, rng *rand.Rand) error {
	n, size := p.Inputs, f.Size()
	// Initial layout: exact DC count at random positions; care minterms
	// split per OnFraction (default: evenly).
	dcCount := int(math.Round(p.DCFraction * float64(size)))
	lockBalance := p.OnFraction > 0
	onCount := (size - dcCount + 1) / 2
	if lockBalance {
		onCount = int(math.Round(p.OnFraction * float64(size)))
		if onCount > size-dcCount {
			onCount = size - dcCount
		}
	}
	perm := rng.Perm(size)
	for i, m := range perm {
		switch {
		case i < dcCount:
			f.SetPhase(o, m, tt.DC)
		case i < dcCount+onCount:
			f.SetPhase(o, m, tt.On)
		default:
			f.SetPhase(o, m, tt.Off)
		}
	}

	totalPairs := n * size // normalization denominator
	target := int(math.Round(p.TargetCf * float64(totalPairs)))
	tolPairs := int(math.Ceil(tol * float64(totalPairs)))
	cur := samePairs(f, o)

	// Hill climbing descends easily (disordering) but ascends poorly
	// (coarsening). Pick a start on the easy side of the target:
	// for very low targets on fully specified functions, start from a
	// k-variable parity (C^f = (n−k)/n ≤ target) and ascend locally;
	// for targets above the random start, restart from a "blocky" layout
	// — phases assigned to natural-index prefixes, which are unions of
	// subcubes and hence near-maximal C^f — and descend.
	if !lockBalance && dcCount == 0 && float64(target) < float64(cur) && p.TargetCf < 0.45 {
		// Start one parity order below the target so the search must mix in
		// random flips on the way up — landing exactly on a pure k-parity
		// would yield a degenerate (reduced-support) function.
		k := int(math.Ceil(float64(n)*(1-p.TargetCf))) + 1
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		mask := (1 << uint(k)) - 1 // parity over the low k variables
		for m := 0; m < size; m++ {
			if parity(m & mask) {
				f.SetPhase(o, m, tt.On)
			} else {
				f.SetPhase(o, m, tt.Off)
			}
		}
		cur = samePairs(f, o)
	}
	if target > cur {
		for m := 0; m < size; m++ {
			switch {
			case m < dcCount:
				f.SetPhase(o, m, tt.DC)
			case m < dcCount+onCount:
				f.SetPhase(o, m, tt.On)
			default:
				f.SetPhase(o, m, tt.Off)
			}
		}
		cur = samePairs(f, o)
	}

	dist := func(v int) int {
		d := v - target
		if d < 0 {
			return -d
		}
		return d
	}

	// If the blocky start already sits inside the tolerance band, the
	// search would return it untouched — a degenerate prefix-of-subcubes
	// layout (in the fully specified balanced case, a single literal).
	// Apply a small swap perturbation, sized so annealing can recover the
	// target, to give the function realistic texture.
	if dist(cur) <= tolPairs {
		swaps := tolPairs / (8 * n)
		if swaps < 3 {
			swaps = 3
		}
		cur = perturb(f, o, rng, swaps)
	}

	snapshot := func() (*tt.Function, int) {
		g := tt.New(n, 1)
		g.Outs[0].On.Copy(f.Outs[o].On)
		g.Outs[0].DC.Copy(f.Outs[o].DC)
		return g, cur
	}
	restore := func(g *tt.Function) {
		f.Outs[o].On.Copy(g.Outs[0].On)
		f.Outs[o].DC.Copy(g.Outs[0].DC)
	}
	best, bestCur := snapshot()

	// Simulated annealing: plateaus are common when coarsening toward
	// high C^f, so worsening moves are accepted with a decaying
	// temperature; the best-seen state is kept.
	t0, tEnd := float64(2*n), 0.05
	for it := 0; it < iters && dist(bestCur) > tolPairs; it++ {
		temp := t0 * math.Pow(tEnd/t0, float64(it)/float64(iters))
		var delta int
		var apply func()
		if lockBalance || rng.Intn(3) == 0 {
			// Swap the phases of a random pair of minterms (keeps all three
			// set sizes, can relocate DCs).
			a, b := rng.Intn(size), rng.Intn(size)
			pa, pb := f.Phase(o, a), f.Phase(o, b)
			if a == b || pa == pb {
				continue
			}
			delta = swapDelta(f, o, a, b)
			apply = func() {
				f.SetPhase(o, a, pb)
				f.SetPhase(o, b, pa)
			}
		} else {
			// Flip a care minterm between on and off (keeps DC density).
			m := rng.Intn(size)
			ph := f.Phase(o, m)
			if ph == tt.DC {
				continue
			}
			q := tt.On
			if ph == tt.On {
				q = tt.Off
			}
			delta = flipDelta(f, o, m, q)
			mm, qq := m, q
			apply = func() { f.SetPhase(o, mm, qq) }
		}
		next := cur + delta
		worse := dist(next) - dist(cur)
		if worse <= 0 || rng.Float64() < math.Exp(-float64(worse)/temp) {
			apply()
			cur = next
			if dist(cur) < dist(bestCur) {
				best, bestCur = snapshot()
			}
		}
	}
	restore(best)
	if dist(bestCur) > tolPairs && !p.BestEffort {
		return fmt.Errorf("synthetic: output %d stuck at C^f=%.3f (target %.3f)",
			o, float64(bestCur)/float64(totalPairs), p.TargetCf)
	}
	return nil
}

// perturb swaps the phases of `swaps` random minterm pairs and returns
// the recounted pair total.
func perturb(f *tt.Function, o int, rng *rand.Rand, swaps int) int {
	size := f.Size()
	for i := 0; i < swaps; i++ {
		a, b := rng.Intn(size), rng.Intn(size)
		pa, pb := f.Phase(o, a), f.Phase(o, b)
		f.SetPhase(o, a, pb)
		f.SetPhase(o, b, pa)
	}
	return samePairs(f, o)
}

func parity(x int) bool {
	p := false
	for x != 0 {
		p = !p
		x &= x - 1
	}
	return p
}

// samePairs counts ordered same-phase neighbor pairs for output o.
func samePairs(f *tt.Function, o int) int {
	same := complexity.SamePhaseNeighbors(f, o)
	total := 0
	for _, s := range same {
		total += s
	}
	return total
}

// flipDelta returns the change in ordered same-phase pair count if
// minterm m's phase becomes q.
func flipDelta(f *tt.Function, o, m int, q tt.Phase) int {
	p := f.Phase(o, m)
	d := 0
	for b := 0; b < f.NumIn; b++ {
		nb := f.Phase(o, m^(1<<uint(b)))
		if nb == q {
			d++
		}
		if nb == p {
			d--
		}
	}
	return 2 * d // both pair orientations
}

// swapDelta returns the pair-count change for exchanging the phases of
// minterms a and b, by applying the swap, re-counting the affected local
// pairs, and reverting. Correctly handles a and b being 1-Hamming
// neighbors of each other.
func swapDelta(f *tt.Function, o, a, b int) int {
	pa, pb := f.Phase(o, a), f.Phase(o, b)
	before := localOrderedPairs(f, o, a, b)
	f.SetPhase(o, a, pb)
	f.SetPhase(o, b, pa)
	after := localOrderedPairs(f, o, a, b)
	f.SetPhase(o, a, pa)
	f.SetPhase(o, b, pb)
	return after - before
}

// localOrderedPairs counts the ordered same-phase neighbor pairs that
// involve minterm a or b, counting the (a,b) pair itself exactly twice
// (once per orientation) like the global tally does.
func localOrderedPairs(f *tt.Function, o, a, b int) int {
	s := 0
	for _, m := range [2]int{a, b} {
		pm := f.Phase(o, m)
		for bit := 0; bit < f.NumIn; bit++ {
			nb := m ^ (1 << uint(bit))
			if (nb == a || nb == b) && m > nb {
				continue // partner pair: count from the lower side only
			}
			if pm == f.Phase(o, nb) {
				s += 2 // both orientations of the (m, nb) pair
			}
		}
	}
	return s
}
