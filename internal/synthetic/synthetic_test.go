package synthetic

import (
	"math"
	"math/rand"
	"testing"

	"relsyn/internal/complexity"
	"relsyn/internal/tt"
)

func TestRandomProbabilities(t *testing.T) {
	f, err := Random(10, 1, 0.25, 0.25, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	f0, f1, fdc := f.SignalProbabilities(0)
	if math.Abs(f0-0.25) > 0.05 || math.Abs(f1-0.25) > 0.05 || math.Abs(fdc-0.5) > 0.05 {
		t.Fatalf("probabilities %v %v %v far from 0.25/0.25/0.5", f0, f1, fdc)
	}
}

func TestRandomValidatesProbs(t *testing.T) {
	if _, err := Random(4, 1, 0.5, 0.5, 0.5, 1); err == nil {
		t.Fatal("probabilities summing to 1.5 accepted")
	}
	if _, err := Random(4, 1, -0.1, 0.6, 0.5, 1); err == nil {
		t.Fatal("negative probability accepted")
	}
}

// Random functions should land near the expected complexity factor.
func TestRandomNearExpectedCf(t *testing.T) {
	f, err := Random(11, 1, 0.2, 0.2, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	cf := complexity.Factor(f, 0)
	ecf := complexity.Expected(f, 0)
	if math.Abs(cf-ecf) > 0.02 {
		t.Fatalf("random C^f=%v vs E[C^f]=%v", cf, ecf)
	}
}

func TestFlipDeltaMatchesRecount(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	f := tt.New(6, 1)
	for m := 0; m < 64; m++ {
		f.SetPhase(0, m, tt.Phase(rng.Intn(3)))
	}
	for trial := 0; trial < 200; trial++ {
		m := rng.Intn(64)
		p := f.Phase(0, m)
		if p == tt.DC {
			continue
		}
		q := tt.On
		if p == tt.On {
			q = tt.Off
		}
		before := samePairs(f, 0)
		delta := flipDelta(f, 0, m, q)
		f.SetPhase(0, m, q)
		after := samePairs(f, 0)
		f.SetPhase(0, m, p)
		if after-before != delta {
			t.Fatalf("flipDelta=%d, recount=%d (minterm %d %v->%v)",
				delta, after-before, m, p, q)
		}
	}
}

func TestSwapDeltaMatchesRecount(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	f := tt.New(5, 1)
	for m := 0; m < 32; m++ {
		f.SetPhase(0, m, tt.Phase(rng.Intn(3)))
	}
	for trial := 0; trial < 300; trial++ {
		a, b := rng.Intn(32), rng.Intn(32)
		if a == b {
			continue
		}
		pa, pb := f.Phase(0, a), f.Phase(0, b)
		before := samePairs(f, 0)
		delta := swapDelta(f, 0, a, b)
		f.SetPhase(0, a, pb)
		f.SetPhase(0, b, pa)
		after := samePairs(f, 0)
		f.SetPhase(0, a, pa)
		f.SetPhase(0, b, pb)
		if after-before != delta {
			t.Fatalf("swapDelta=%d, recount=%d (a=%d b=%d adjacent=%v)",
				delta, after-before, a, b, (a^b)&((a^b)-1) == 0)
		}
	}
}

func TestGenerateHitsTargets(t *testing.T) {
	// Moderate targets at 8 inputs; very high C^f needs the larger
	// hypercubes the paper uses (its C^f=.826 function has 12 inputs —
	// edge-isoperimetry caps achievable C^f on small cubes).
	for _, target := range []float64{0.3, 0.5, 0.67} {
		f, err := Generate(Params{
			Inputs: 8, Outputs: 2, DCFraction: 0.6,
			TargetCf: target, Tolerance: 0.02, Seed: 7,
		})
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		for o := 0; o < 2; o++ {
			cf := complexity.Factor(f, o)
			if math.Abs(cf-target) > 0.02+1e-9 {
				t.Errorf("target %v output %d: C^f=%v", target, o, cf)
			}
			// DC density must be exact.
			_, _, fdc := f.SignalProbabilities(o)
			if math.Abs(fdc-0.6) > 1.0/float64(f.Size()) {
				t.Errorf("DC fraction %v, want 0.6", fdc)
			}
		}
		if err := f.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestGenerateHighCfAtPaperScale(t *testing.T) {
	// Paper Fig. 6 uses 11-input synthetic families with 60% DC up to
	// high complexity factors.
	f, err := Generate(Params{
		Inputs: 11, Outputs: 1, DCFraction: 0.6,
		TargetCf: 0.83, Tolerance: 0.02, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cf := complexity.Factor(f, 0); math.Abs(cf-0.83) > 0.021 {
		t.Fatalf("C^f = %v, want ~0.83", cf)
	}
}

func TestGenerateFullySpecified(t *testing.T) {
	f, err := Generate(Params{
		Inputs: 7, Outputs: 1, DCFraction: 0,
		TargetCf: 0.75, Tolerance: 0.02, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !f.CompletelySpecified() {
		t.Fatal("DCFraction 0 should give a completely specified function")
	}
	if cf := complexity.Factor(f, 0); math.Abs(cf-0.75) > 0.021 {
		t.Fatalf("C^f = %v, want ~0.75", cf)
	}
}

func TestGenerateLowCfFullySpecified(t *testing.T) {
	// Fig. 2's sweep needs low-C^f fully specified functions; the parity
	// start makes these reachable.
	for _, target := range []float64{0.1, 0.2, 0.35} {
		f, err := Generate(Params{
			Inputs: 10, Outputs: 1, DCFraction: 0,
			TargetCf: target, Tolerance: 0.02, Seed: 23,
		})
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if cf := complexity.Factor(f, 0); math.Abs(cf-target) > 0.021 {
			t.Errorf("target %v: C^f=%v", target, cf)
		}
	}
}

func TestGenerateBestEffort(t *testing.T) {
	// An infeasible target must not error under BestEffort.
	f, err := Generate(Params{
		Inputs: 6, Outputs: 1, DCFraction: 0.6,
		TargetCf: 0.99, Tolerance: 0.001, Seed: 3, BestEffort: true,
	})
	if err != nil {
		t.Fatalf("BestEffort returned error: %v", err)
	}
	if f == nil {
		t.Fatal("BestEffort returned nil function")
	}
}

func TestGenerateLockedBalance(t *testing.T) {
	// Unbalanced phases with exact counts (needed for the MCNC stand-ins,
	// e.g. t4's implied f1=.53/f0=.03 split).
	f, err := Generate(Params{
		Inputs: 9, Outputs: 1, DCFraction: 0.44, OnFraction: 0.53,
		TargetCf: 0.8, Tolerance: 0.02, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	f0, f1, fdc := f.SignalProbabilities(0)
	size := float64(f.Size())
	if math.Abs(f1-0.53) > 1/size || math.Abs(fdc-0.44) > 1/size {
		t.Fatalf("locked probabilities drifted: f0=%v f1=%v fdc=%v", f0, f1, fdc)
	}
	if cf := complexity.Factor(f, 0); math.Abs(cf-0.8) > 0.021 {
		t.Fatalf("C^f = %v, want ~0.8", cf)
	}
}

func TestGenerateRejectsOverfullOnFraction(t *testing.T) {
	_, err := Generate(Params{
		Inputs: 5, Outputs: 1, DCFraction: 0.7, OnFraction: 0.5, TargetCf: 0.5,
	})
	if err == nil {
		t.Fatal("on+dc > 1 accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Inputs: 6, Outputs: 2, DCFraction: 0.5, TargetCf: 0.6, Seed: 11}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed gave different functions")
	}
	p.Seed = 12
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("different seeds gave identical functions")
	}
}

func TestGenerateValidatesParams(t *testing.T) {
	bad := []Params{
		{Inputs: 0, Outputs: 1, TargetCf: 0.5},
		{Inputs: 20, Outputs: 1, TargetCf: 0.5},
		{Inputs: 4, Outputs: 0, TargetCf: 0.5},
		{Inputs: 4, Outputs: 1, TargetCf: 1.5},
		{Inputs: 4, Outputs: 1, TargetCf: 0.5, DCFraction: -0.1},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func BenchmarkGenerate10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Generate(Params{
			Inputs: 10, Outputs: 1, DCFraction: 0.6,
			TargetCf: 0.7, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestGenerateEdgeParams table-drives the parameter edges the fleet's
// pinned spec pool leans on: the OnFraction feasibility boundary, the
// BestEffort fallback under a starved move budget, and the zero
// MaxIters default.
func TestGenerateEdgeParams(t *testing.T) {
	cases := []struct {
		name    string
		p       Params
		wantErr bool
		check   func(t *testing.T, f *tt.Function)
	}{
		{
			name: "on-fraction at the feasibility boundary leaves an empty off-set",
			p: Params{Inputs: 6, Outputs: 1, DCFraction: 0.5, OnFraction: 0.5,
				TargetCf: 0.6, Seed: 31, BestEffort: true},
			check: func(t *testing.T, f *tt.Function) {
				f0, f1, fdc := f.SignalProbabilities(0)
				if f0 != 0 || f1 != 0.5 || fdc != 0.5 {
					t.Fatalf("boundary probabilities f0=%v f1=%v fdc=%v, want 0/0.5/0.5", f0, f1, fdc)
				}
			},
		},
		{
			name: "on-fraction one minterm past the boundary is rejected",
			p: Params{Inputs: 6, Outputs: 1, DCFraction: 0.5, OnFraction: 0.5 + 1.0/64,
				TargetCf: 0.5},
			wantErr: true,
		},
		{
			name: "zero MaxIters falls back to the default budget and converges",
			p: Params{Inputs: 8, Outputs: 1, DCFraction: 0.6, TargetCf: 0.5,
				Tolerance: 0.02, Seed: 7, MaxIters: 0},
			check: func(t *testing.T, f *tt.Function) {
				if cf := complexity.Factor(f, 0); math.Abs(cf-0.5) > 0.02+1e-9 {
					t.Fatalf("C^f=%v, want within 0.02 of 0.5", cf)
				}
			},
		},
		{
			name: "starved MaxIters without BestEffort reports the miss",
			p: Params{Inputs: 8, Outputs: 1, DCFraction: 0.6, TargetCf: 0.9,
				Tolerance: 0.005, Seed: 7, MaxIters: 1},
			wantErr: true,
		},
		{
			name: "starved MaxIters with BestEffort returns the closest function",
			p: Params{Inputs: 8, Outputs: 1, DCFraction: 0.6, TargetCf: 0.9,
				Tolerance: 0.005, Seed: 7, MaxIters: 1, BestEffort: true},
			check: func(t *testing.T, f *tt.Function) {
				_, _, fdc := f.SignalProbabilities(0)
				if math.Abs(fdc-0.6) > 1.0/float64(f.Size()) {
					t.Fatalf("BestEffort drifted the DC density to %v", fdc)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Generate(tc.p)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Validate(); err != nil {
				t.Fatal(err)
			}
			if tc.check != nil {
				tc.check(t, f)
			}
		})
	}
}

// TestGenerateSeedBitIdentical pins the determinism contract at the
// representation level: the same Params.Seed must reproduce the same
// tt.Function word for word (Equal checks phases; the fleet pool also
// needs identical serialized bytes, hence identical bitset words).
func TestGenerateSeedBitIdentical(t *testing.T) {
	p := Params{Inputs: 8, Outputs: 3, DCFraction: 0.3, TargetCf: 0.5,
		Seed: 42, BestEffort: true}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed gave semantically different functions")
	}
	for o := range a.Outs {
		aw, bw := a.Outs[o].On.Words(), b.Outs[o].On.Words()
		for w := range aw {
			if aw[w] != bw[w] {
				t.Fatalf("output %d on-set word %d differs: %#x vs %#x", o, w, aw[w], bw[w])
			}
		}
		aw, bw = a.Outs[o].DC.Words(), b.Outs[o].DC.Words()
		for w := range aw {
			if aw[w] != bw[w] {
				t.Fatalf("output %d dc-set word %d differs: %#x vs %#x", o, w, aw[w], bw[w])
			}
		}
	}
	p.Seed = 43
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("different seeds gave identical functions")
	}
}
