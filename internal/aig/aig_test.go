package aig

import (
	"math/rand"
	"testing"

	"relsyn/internal/cube"
	"relsyn/internal/espresso"
	"relsyn/internal/factor"
	"relsyn/internal/tt"
)

func TestConstAndTrivialRules(t *testing.T) {
	g := New(2)
	a, b := g.PI(0), g.PI(1)
	if g.And(ConstFalse, a) != ConstFalse {
		t.Fatal("0∧a should be 0")
	}
	if g.And(ConstTrue, a) != a {
		t.Fatal("1∧a should be a")
	}
	if g.And(a, a) != a {
		t.Fatal("a∧a should be a")
	}
	if g.And(a, a.Not()) != ConstFalse {
		t.Fatal("a∧¬a should be 0")
	}
	x := g.And(a, b)
	y := g.And(b, a)
	if x != y {
		t.Fatal("strashing failed for commuted operands")
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestLitHelpers(t *testing.T) {
	l := MakeLit(5, true)
	if l.Node() != 5 || !l.Compl() {
		t.Fatal("MakeLit round trip broken")
	}
	if l.Not().Compl() || l.Not().Node() != 5 {
		t.Fatal("Not broken")
	}
}

func TestEvalGates(t *testing.T) {
	g := New(2)
	a, b := g.PI(0), g.PI(1)
	g.AddPO(g.And(a, b))
	g.AddPO(g.Or(a, b))
	g.AddPO(g.Xor(a, b))
	g.AddPO(g.Mux(a, b, b.Not()))
	for m := uint(0); m < 4; m++ {
		av := m&1 == 1
		bv := m>>1&1 == 1
		out := g.Eval(m)
		if out[0] != (av && bv) || out[1] != (av || bv) || out[2] != (av != bv) {
			t.Fatalf("gate eval wrong at %02b: %v", m, out)
		}
		wantMux := bv
		if !av {
			wantMux = !bv
		}
		if out[3] != wantMux {
			t.Fatalf("mux eval wrong at %02b", m)
		}
	}
}

func TestTruthTableMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	g := randomGraph(rng, 6, 40, 3)
	for o := 0; o < g.NumPO(); o++ {
		table := g.TruthTable(o)
		for m := uint(0); m < 64; m++ {
			if table.Test(int(m)) != g.Eval(m)[o] {
				t.Fatalf("PO %d truth table disagrees with Eval at %d", o, m)
			}
		}
	}
}

func randomGraph(rng *rand.Rand, numPI, ands, pos int) *Graph {
	g := New(numPI)
	lits := []Lit{ConstTrue}
	for i := 0; i < numPI; i++ {
		lits = append(lits, g.PI(i))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))]
		b := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			a = a.Not()
		}
		if rng.Intn(2) == 0 {
			b = b.Not()
		}
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < pos; i++ {
		l := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			l = l.Not()
		}
		g.AddPO(l)
	}
	return g
}

func graphsEquivalent(a, b *Graph) bool {
	if a.NumPI() != b.NumPI() || a.NumPO() != b.NumPO() {
		return false
	}
	for m := uint(0); m < 1<<uint(a.NumPI()); m++ {
		ea, eb := a.Eval(m), b.Eval(m)
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
	}
	return true
}

func TestCleanupPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 5, 30, 4)
		c := g.Cleanup()
		if !graphsEquivalent(g, c) {
			t.Fatal("Cleanup changed function")
		}
		if c.NumNodes() > g.NumNodes() {
			t.Fatal("Cleanup grew the graph")
		}
	}
}

func TestCleanupRemovesDangling(t *testing.T) {
	g := New(3)
	a, b, c := g.PI(0), g.PI(1), g.PI(2)
	used := g.And(a, b)
	g.And(b, c) // dangling
	g.And(a, c) // dangling
	g.AddPO(used)
	clean := g.Cleanup()
	if clean.NumNodes() != 1 {
		t.Fatalf("Cleanup left %d nodes, want 1", clean.NumNodes())
	}
}

func TestBalancePreservesFunctionAndReducesDepth(t *testing.T) {
	// Long AND chain: depth n-1 unbalanced, ⌈log2 n⌉ balanced.
	g := New(8)
	acc := g.PI(0)
	for i := 1; i < 8; i++ {
		acc = g.And(acc, g.PI(i))
	}
	g.AddPO(acc)
	if g.Depth() != 7 {
		t.Fatalf("chain depth = %d, want 7", g.Depth())
	}
	b := g.Balance()
	if !graphsEquivalent(g, b) {
		t.Fatal("Balance changed function")
	}
	if b.Depth() != 3 {
		t.Fatalf("balanced depth = %d, want 3", b.Depth())
	}
}

func TestBalanceRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 5, 40, 3)
		b := g.Balance()
		if !graphsEquivalent(g, b) {
			t.Fatalf("trial %d: Balance changed function", trial)
		}
		if b.Depth() > g.Depth() {
			t.Fatalf("trial %d: Balance increased depth %d -> %d", trial, g.Depth(), b.Depth())
		}
	}
}

func TestFromExprEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		f := tt.New(n, 1)
		for m := 0; m < f.Size(); m++ {
			if rng.Intn(2) == 0 {
				f.SetPhase(0, m, tt.On)
			}
		}
		cov := espresso.Minimize(f.OnCover(0), nil)
		e := factor.GoodFactor(cov)
		g := New(n)
		g.AddPO(g.FromExpr(e))
		for m := uint(0); m < uint(f.Size()); m++ {
			if g.Eval(m)[0] != (f.Phase(0, int(m)) == tt.On) {
				t.Fatalf("AIG differs from spec at minterm %d", m)
			}
		}
	}
}

func TestFromExprConstants(t *testing.T) {
	g := New(2)
	if g.FromExpr(factor.NewConst(false)) != ConstFalse {
		t.Fatal("const 0 expr")
	}
	if g.FromExpr(factor.NewConst(true)) != ConstTrue {
		t.Fatal("const 1 expr")
	}
	e := factor.NewLit(1, true)
	if got := g.FromExpr(e); got != g.PI(1).Not() {
		t.Fatal("negated literal expr")
	}
}

func TestAndNOrN(t *testing.T) {
	g := New(4)
	var ls []Lit
	for i := 0; i < 4; i++ {
		ls = append(ls, g.PI(i))
	}
	andAll := g.AndN(ls)
	orAll := g.OrN(ls)
	g.AddPO(andAll)
	g.AddPO(orAll)
	for m := uint(0); m < 16; m++ {
		want := m == 15
		if g.Eval(m)[0] != want {
			t.Fatalf("AndN wrong at %04b", m)
		}
		if g.Eval(m)[1] != (m != 0) {
			t.Fatalf("OrN wrong at %04b", m)
		}
	}
	if g.AndN(nil) != ConstTrue || g.OrN(nil) != ConstFalse {
		t.Fatal("empty folds wrong")
	}
}

func TestLevelsAndFanout(t *testing.T) {
	g := New(2)
	a, b := g.PI(0), g.PI(1)
	x := g.And(a, b)
	y := g.And(x, a.Not())
	g.AddPO(y)
	lv := g.Levels()
	if lv[x.Node()] != 1 || lv[y.Node()] != 2 {
		t.Fatalf("levels wrong: %v", lv)
	}
	fo := g.FanoutCounts()
	if fo[a.Node()] != 2 || fo[x.Node()] != 1 || fo[y.Node()] != 1 {
		t.Fatalf("fanouts wrong: %v", fo)
	}
}

func TestNodeTruthTablesCube(t *testing.T) {
	g := New(3)
	c, _ := cube.Parse("01-")
	e := factor.FromCube(c)
	g.AddPO(g.FromExpr(e))
	table := g.TruthTable(0)
	for m := uint(0); m < 8; m++ {
		if table.Test(int(m)) != c.ContainsMinterm(m) {
			t.Fatalf("cube AIG table wrong at %d", m)
		}
	}
}

func BenchmarkAnd(b *testing.B) {
	g := New(16)
	rng := rand.New(rand.NewSource(95))
	lits := make([]Lit, 16)
	for i := range lits {
		lits[i] = g.PI(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := lits[rng.Intn(len(lits))]
		c := lits[rng.Intn(len(lits))]
		g.And(a, c.Not())
	}
}

func BenchmarkNodeTruthTables(b *testing.B) {
	rng := rand.New(rand.NewSource(96))
	g := randomGraph(rng, 12, 2000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NodeTruthTables()
	}
}
