// Package aig implements and-inverter graphs: the technology-independent
// network representation between factored expressions and technology
// mapping. Construction applies constant propagation and structural
// hashing; Balance restructures AND trees for minimum depth; Cleanup
// removes logic unreachable from the primary outputs. Exhaustive
// bit-parallel simulation recovers exact truth tables (and hence signal
// probabilities) for the input counts used throughout the paper.
package aig

import (
	"fmt"

	"relsyn/internal/bitset"
	"relsyn/internal/factor"
)

// Lit is a literal: a node index with a phase bit (LSB). Lit 0 is the
// constant false, Lit 1 constant true.
type Lit uint32

// ConstFalse and ConstTrue are the constant literals of every graph.
const (
	ConstFalse Lit = 0
	ConstTrue  Lit = 1
)

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Node returns the node index.
func (l Lit) Node() int { return int(l >> 1) }

// Compl reports whether the literal is complemented.
func (l Lit) Compl() bool { return l&1 == 1 }

// MakeLit builds a literal from node index and phase.
func MakeLit(node int, compl bool) Lit {
	l := Lit(node) << 1
	if compl {
		l |= 1
	}
	return l
}

type node struct {
	f0, f1 Lit // AND fanins; unused for the constant and PI nodes
}

// Graph is a mutable AIG. Node 0 is the constant-false node; nodes
// 1..NumPI are primary inputs; later nodes are ANDs whose fanins always
// precede them (topological by construction).
type Graph struct {
	numPI  int
	nodes  []node
	strash map[[2]Lit]Lit
	pos    []Lit
}

// New returns an empty graph with numPI primary inputs.
func New(numPI int) *Graph {
	g := &Graph{
		numPI:  numPI,
		nodes:  make([]node, 1+numPI),
		strash: make(map[[2]Lit]Lit),
	}
	return g
}

// NumPI returns the number of primary inputs.
func (g *Graph) NumPI() int { return g.numPI }

// NumNodes returns the number of AND nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) - 1 - g.numPI }

// NumPO returns the number of primary outputs.
func (g *Graph) NumPO() int { return len(g.pos) }

// PO returns the literal driving primary output i.
func (g *Graph) PO(i int) Lit { return g.pos[i] }

// PI returns the literal of primary input i.
func (g *Graph) PI(i int) Lit {
	if i < 0 || i >= g.numPI {
		panic(fmt.Sprintf("aig: PI %d out of range [0,%d)", i, g.numPI))
	}
	return MakeLit(1+i, false)
}

// AddPO registers a primary output and returns its index.
func (g *Graph) AddPO(l Lit) int {
	g.pos = append(g.pos, l)
	return len(g.pos) - 1
}

// isAnd reports whether node index i is an AND node.
func (g *Graph) isAnd(i int) bool { return i > g.numPI }

// Fanins returns the fanin literals of AND node i.
func (g *Graph) Fanins(i int) (Lit, Lit) {
	if !g.isAnd(i) {
		panic(fmt.Sprintf("aig: node %d is not an AND", i))
	}
	n := g.nodes[i]
	return n.f0, n.f1
}

// And returns the literal for a∧b, applying trivial rules and structural
// hashing.
func (g *Graph) And(a, b Lit) Lit {
	// Constant and identical/complementary operand rules.
	switch {
	case a == ConstFalse || b == ConstFalse:
		return ConstFalse
	case a == ConstTrue:
		return b
	case b == ConstTrue:
		return a
	case a == b:
		return a
	case a == b.Not():
		return ConstFalse
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if l, ok := g.strash[key]; ok {
		return l
	}
	g.nodes = append(g.nodes, node{f0: a, f1: b})
	l := MakeLit(len(g.nodes)-1, false)
	g.strash[key] = l
	return l
}

// Or returns a∨b.
func (g *Graph) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a⊕b.
func (g *Graph) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Mux returns s ? t : e.
func (g *Graph) Mux(s, t, e Lit) Lit {
	return g.Or(g.And(s, t), g.And(s.Not(), e))
}

// AndN folds And over a list (balanced pairwise for bounded depth).
func (g *Graph) AndN(ls []Lit) Lit {
	return g.foldBalanced(ls, ConstTrue, g.And)
}

// OrN folds Or over a list.
func (g *Graph) OrN(ls []Lit) Lit {
	return g.foldBalanced(ls, ConstFalse, g.Or)
}

func (g *Graph) foldBalanced(ls []Lit, identity Lit, op func(a, b Lit) Lit) Lit {
	if len(ls) == 0 {
		return identity
	}
	work := append([]Lit(nil), ls...)
	for len(work) > 1 {
		var next []Lit
		for i := 0; i+1 < len(work); i += 2 {
			next = append(next, op(work[i], work[i+1]))
		}
		if len(work)%2 == 1 {
			next = append(next, work[len(work)-1])
		}
		work = next
	}
	return work[0]
}

// FromExpr builds the expression into the graph and returns its literal.
func (g *Graph) FromExpr(e *factor.Expr) Lit {
	switch e.Kind {
	case factor.Const0:
		return ConstFalse
	case factor.Const1:
		return ConstTrue
	case factor.Lit:
		l := g.PI(e.Var)
		if e.Neg {
			l = l.Not()
		}
		return l
	case factor.And:
		ls := make([]Lit, len(e.Args))
		for i, a := range e.Args {
			ls[i] = g.FromExpr(a)
		}
		return g.AndN(ls)
	case factor.Or:
		ls := make([]Lit, len(e.Args))
		for i, a := range e.Args {
			ls[i] = g.FromExpr(a)
		}
		return g.OrN(ls)
	default:
		panic(fmt.Sprintf("aig: bad expr kind %d", e.Kind))
	}
}

// FromExprSubst builds the expression with literal variable v replaced
// by leaves[v] — the substitution form used when composing node-local
// factored functions into a larger graph.
func (g *Graph) FromExprSubst(e *factor.Expr, leaves []Lit) Lit {
	switch e.Kind {
	case factor.Const0:
		return ConstFalse
	case factor.Const1:
		return ConstTrue
	case factor.Lit:
		l := leaves[e.Var]
		if e.Neg {
			l = l.Not()
		}
		return l
	case factor.And:
		ls := make([]Lit, len(e.Args))
		for i, a := range e.Args {
			ls[i] = g.FromExprSubst(a, leaves)
		}
		return g.AndN(ls)
	case factor.Or:
		ls := make([]Lit, len(e.Args))
		for i, a := range e.Args {
			ls[i] = g.FromExprSubst(a, leaves)
		}
		return g.OrN(ls)
	default:
		panic(fmt.Sprintf("aig: bad expr kind %d", e.Kind))
	}
}

// Eval evaluates all POs on one input minterm (variable i is bit i).
func (g *Graph) Eval(minterm uint) []bool {
	val := make([]bool, len(g.nodes))
	for i := 0; i < g.numPI; i++ {
		val[1+i] = minterm>>uint(i)&1 == 1
	}
	litVal := func(l Lit) bool { return val[l.Node()] != l.Compl() }
	for i := 1 + g.numPI; i < len(g.nodes); i++ {
		n := g.nodes[i]
		val[i] = litVal(n.f0) && litVal(n.f1)
	}
	out := make([]bool, len(g.pos))
	for i, po := range g.pos {
		out[i] = litVal(po)
	}
	return out
}

// NodeTruthTables simulates the whole graph over all 2^NumPI input
// patterns and returns one bitset per node (indexed by node number) with
// the node's positive-phase value for each minterm. NumPI must be ≤ 20.
func (g *Graph) NodeTruthTables() []*bitset.Set {
	if g.numPI > 20 {
		panic(fmt.Sprintf("aig: %d inputs too many for exhaustive simulation", g.numPI))
	}
	size := 1 << uint(g.numPI)
	if g.numPI == 0 {
		size = 1
	}
	tts := make([]*bitset.Set, len(g.nodes))
	tts[0] = bitset.New(size) // constant false
	for i := 0; i < g.numPI; i++ {
		tts[1+i] = bitset.VarPattern(size, i)
	}
	litWords := func(l Lit, w int) uint64 {
		x := tts[l.Node()].Words()[w]
		if l.Compl() {
			x = ^x
		}
		return x
	}
	nw := (size + 63) / 64
	for i := 1 + g.numPI; i < len(g.nodes); i++ {
		n := g.nodes[i]
		s := bitset.New(size)
		w := s.Words()
		for wi := 0; wi < nw; wi++ {
			w[wi] = litWords(n.f0, wi) & litWords(n.f1, wi)
		}
		trimSet(s, size)
		tts[i] = s
	}
	return tts
}

// trimSet zeroes bits at and above size in the final word.
func trimSet(s *bitset.Set, size int) {
	if rem := size % 64; rem != 0 {
		w := s.Words()
		w[len(w)-1] &= (1 << uint(rem)) - 1
	}
}

// TruthTable returns PO i's exact truth table as a 2^NumPI bitset.
func (g *Graph) TruthTable(i int) *bitset.Set {
	tts := g.NodeTruthTables()
	return g.LitTable(tts, g.pos[i])
}

// LitTable resolves a literal against precomputed node tables.
func (g *Graph) LitTable(tts []*bitset.Set, l Lit) *bitset.Set {
	t := tts[l.Node()]
	if l.Compl() {
		return t.Complement()
	}
	return t.Clone()
}

// Levels returns the AND-depth of every node (PIs and constant at 0).
func (g *Graph) Levels() []int {
	lv := make([]int, len(g.nodes))
	for i := 1 + g.numPI; i < len(g.nodes); i++ {
		n := g.nodes[i]
		l0, l1 := lv[n.f0.Node()], lv[n.f1.Node()]
		if l1 > l0 {
			l0 = l1
		}
		lv[i] = l0 + 1
	}
	return lv
}

// Depth returns the maximum PO level.
func (g *Graph) Depth() int {
	lv := g.Levels()
	d := 0
	for _, po := range g.pos {
		if l := lv[po.Node()]; l > d {
			d = l
		}
	}
	return d
}

// FanoutCounts returns, per node, how many fanin edges and POs reference
// it (regardless of phase).
func (g *Graph) FanoutCounts() []int {
	fo := make([]int, len(g.nodes))
	for i := 1 + g.numPI; i < len(g.nodes); i++ {
		n := g.nodes[i]
		fo[n.f0.Node()]++
		fo[n.f1.Node()]++
	}
	for _, po := range g.pos {
		fo[po.Node()]++
	}
	return fo
}

// Cleanup returns a new graph containing only logic reachable from the
// POs, preserving PO order. Node identities change; the mapping is not
// exposed.
func (g *Graph) Cleanup() *Graph {
	out := New(g.numPI)
	memo := make(map[int]Lit, len(g.nodes))
	memo[0] = ConstFalse
	for i := 0; i < g.numPI; i++ {
		memo[1+i] = out.PI(i)
	}
	var rebuild func(i int) Lit
	rebuild = func(i int) Lit {
		if l, ok := memo[i]; ok {
			return l
		}
		n := g.nodes[i]
		a := rebuild(n.f0.Node())
		if n.f0.Compl() {
			a = a.Not()
		}
		b := rebuild(n.f1.Node())
		if n.f1.Compl() {
			b = b.Not()
		}
		l := out.And(a, b)
		memo[i] = l
		return l
	}
	for _, po := range g.pos {
		l := rebuild(po.Node())
		if po.Compl() {
			l = l.Not()
		}
		out.AddPO(l)
	}
	return out
}

// Balance returns a functionally equivalent graph with AND trees
// rebuilt to minimal depth: multi-input conjunctions are re-gathered by
// walking through single-fanout positive AND edges, then recombined
// pairing the two shallowest operands first (Huffman style).
func (g *Graph) Balance() *Graph {
	fo := g.FanoutCounts()
	out := New(g.numPI)
	memo := make(map[int]Lit, len(g.nodes))
	memo[0] = ConstFalse
	for i := 0; i < g.numPI; i++ {
		memo[1+i] = out.PI(i)
	}
	// Incrementally tracked levels of the output graph, indexed by node.
	lvl := make([]int, 1+g.numPI)
	levels := func(l Lit) int { return lvl[l.Node()] }
	mkAnd := func(a, b Lit) Lit {
		r := out.And(a, b)
		for len(lvl) < len(out.nodes) {
			n := out.nodes[len(lvl)]
			l0, l1 := lvl[n.f0.Node()], lvl[n.f1.Node()]
			if l1 > l0 {
				l0 = l1
			}
			lvl = append(lvl, l0+1)
		}
		return r
	}
	var rebuild func(i int) Lit
	var collect func(l Lit, root int, leaves *[]Lit)
	collect = func(l Lit, root int, leaves *[]Lit) {
		ni := l.Node()
		if !l.Compl() && g.isAnd(ni) && fo[ni] == 1 && ni != root {
			n := g.nodes[ni]
			collect(n.f0, root, leaves)
			collect(n.f1, root, leaves)
			return
		}
		nl := rebuild(ni)
		if l.Compl() {
			nl = nl.Not()
		}
		*leaves = append(*leaves, nl)
	}
	rebuild = func(i int) Lit {
		if l, ok := memo[i]; ok {
			return l
		}
		n := g.nodes[i]
		var leaves []Lit
		collect(n.f0, i, &leaves)
		collect(n.f1, i, &leaves)
		// Pair shallowest first. Levels must be re-read as nodes are added;
		// with small operand lists the quadratic selection is fine.
		for len(leaves) > 1 {
			// Find two minimum-level leaves.
			i0, i1 := 0, 1
			if levels(leaves[i1]) < levels(leaves[i0]) {
				i0, i1 = i1, i0
			}
			for k := 2; k < len(leaves); k++ {
				lk := levels(leaves[k])
				if lk < levels(leaves[i0]) {
					i1 = i0
					i0 = k
				} else if lk < levels(leaves[i1]) {
					i1 = k
				}
			}
			merged := mkAnd(leaves[i0], leaves[i1])
			if i0 > i1 {
				i0, i1 = i1, i0
			}
			leaves[i0] = merged
			leaves = append(leaves[:i1], leaves[i1+1:]...)
		}
		l := leaves[0]
		memo[i] = l
		return l
	}
	for _, po := range g.pos {
		l := rebuild(po.Node())
		if po.Compl() {
			l = l.Not()
		}
		out.AddPO(l)
	}
	return out
}
