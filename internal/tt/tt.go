// Package tt represents incompletely specified multi-output Boolean
// functions as dense truth tables.
//
// Every output is a partition of the 2^n minterm space into on-set,
// off-set, and DC-set, stored as two bitsets (on, dc); the off-set is
// implicit. All of the paper's metrics — complexity factor, error rates,
// border counts — are Θ(n·2^n) bulk scans over this representation, which
// is exact and fast for the benchmark sizes in question (n ≤ 16).
package tt

import (
	"errors"
	"fmt"

	"relsyn/internal/bitset"
	"relsyn/internal/cube"
)

// ErrZeroOutputs is returned (wrapped) wherever a zero-output function
// is rejected: by Validate, by the .pla boundary (pla.File.ToFunction),
// and by every per-output mean metric in internal/{reliability,
// complexity, estimate}. A function with no outputs has no per-output
// mean — before this sentinel existed the mean helpers silently divided
// by zero and returned NaN.
var ErrZeroOutputs = errors.New("tt: function has zero outputs")

// Phase classifies a minterm with respect to one output.
type Phase uint8

// Minterm phases.
const (
	Off Phase = iota
	On
	DC
)

func (p Phase) String() string {
	switch p {
	case Off:
		return "off"
	case On:
		return "on"
	case DC:
		return "dc"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Output is one output column of a function: the sets of minterms mapped
// to 1 (On) and to don't-care (DC). Minterms in neither set are 0.
// On and DC must stay disjoint; mutating methods preserve this.
type Output struct {
	On *bitset.Set
	DC *bitset.Set
}

// Function is an incompletely specified function of NumIn inputs with one
// Output per element of Outs.
type Function struct {
	Name  string
	NumIn int
	Outs  []Output
}

// New returns an all-zero (fully specified) function with n inputs and m
// outputs.
func New(n, m int) *Function {
	if n < 0 || n > 30 {
		panic(fmt.Sprintf("tt: unsupported input count %d", n))
	}
	f := &Function{NumIn: n, Outs: make([]Output, m)}
	for i := range f.Outs {
		f.Outs[i] = Output{On: bitset.New(1 << uint(n)), DC: bitset.New(1 << uint(n))}
	}
	return f
}

// Size returns the number of minterms, 2^NumIn.
func (f *Function) Size() int { return 1 << uint(f.NumIn) }

// NumOut returns the number of outputs.
func (f *Function) NumOut() int { return len(f.Outs) }

// Clone returns a deep copy.
func (f *Function) Clone() *Function {
	g := &Function{Name: f.Name, NumIn: f.NumIn, Outs: make([]Output, len(f.Outs))}
	for i, o := range f.Outs {
		g.Outs[i] = Output{On: o.On.Clone(), DC: o.DC.Clone()}
	}
	return g
}

// Phase returns the phase of minterm m for output o.
func (f *Function) Phase(o, m int) Phase {
	out := f.Outs[o]
	switch {
	case out.DC.Test(m):
		return DC
	case out.On.Test(m):
		return On
	default:
		return Off
	}
}

// SetPhase sets the phase of minterm m for output o.
func (f *Function) SetPhase(o, m int, p Phase) {
	out := f.Outs[o]
	out.On.SetTo(m, p == On)
	out.DC.SetTo(m, p == DC)
}

// Validate checks the representation invariant: the function has at
// least one output, and for every output the on-set and DC-set are
// disjoint and sized to 2^NumIn.
func (f *Function) Validate() error {
	if len(f.Outs) == 0 {
		return ErrZeroOutputs
	}
	for i, o := range f.Outs {
		if o.On.Len() != f.Size() || o.DC.Len() != f.Size() {
			return fmt.Errorf("tt: output %d sets sized %d/%d, want %d", i, o.On.Len(), o.DC.Len(), f.Size())
		}
		if o.On.IntersectsWith(o.DC) {
			return fmt.Errorf("tt: output %d has minterms both on and DC", i)
		}
	}
	return nil
}

// Equal reports whether two functions have identical phase assignments.
func (f *Function) Equal(g *Function) bool {
	if f.NumIn != g.NumIn || len(f.Outs) != len(g.Outs) {
		return false
	}
	for i := range f.Outs {
		if !f.Outs[i].On.Equal(g.Outs[i].On) || !f.Outs[i].DC.Equal(g.Outs[i].DC) {
			return false
		}
	}
	return true
}

// OffSet returns output o's off-set as a freshly allocated bitset.
func (f *Function) OffSet(o int) *bitset.Set {
	out := f.Outs[o]
	off := out.On.Union(out.DC)
	return off.Complement()
}

// SignalProbabilities returns (f0, f1, fDC) for output o: the fractions of
// the minterm space in the off-, on-, and DC-sets (paper §3.1).
func (f *Function) SignalProbabilities(o int) (f0, f1, fdc float64) {
	total := float64(f.Size())
	on := float64(f.Outs[o].On.Count())
	dc := float64(f.Outs[o].DC.Count())
	return (total - on - dc) / total, on / total, dc / total
}

// DCFraction returns the fraction of all (minterm, output) pairs that are
// don't-care — the "%DC" column of paper Table 1.
func (f *Function) DCFraction() float64 {
	total := 0
	for _, o := range f.Outs {
		total += o.DC.Count()
	}
	return float64(total) / float64(f.Size()*len(f.Outs))
}

// CompletelySpecified reports whether no output has any DC minterm.
func (f *Function) CompletelySpecified() bool {
	for _, o := range f.Outs {
		if o.DC.Any() {
			return false
		}
	}
	return true
}

// OnNeighbors returns how many of minterm m's NumIn 1-Hamming neighbors
// are in output o's on-set.
func (f *Function) OnNeighbors(o, m int) int {
	c := 0
	for b := 0; b < f.NumIn; b++ {
		if f.Outs[o].On.Test(m ^ 1<<uint(b)) {
			c++
		}
	}
	return c
}

// OffNeighbors returns how many of minterm m's neighbors are in the off-set.
func (f *Function) OffNeighbors(o, m int) int {
	c := 0
	out := f.Outs[o]
	for b := 0; b < f.NumIn; b++ {
		nb := m ^ 1<<uint(b)
		if !out.On.Test(nb) && !out.DC.Test(nb) {
			c++
		}
	}
	return c
}

// OnCover returns output o's on-set as a cover of minterm cubes.
func (f *Function) OnCover(o int) *cube.Cover {
	return setToCover(f.NumIn, f.Outs[o].On)
}

// DCCover returns output o's DC-set as a cover of minterm cubes.
func (f *Function) DCCover(o int) *cube.Cover {
	return setToCover(f.NumIn, f.Outs[o].DC)
}

// OffCover returns output o's off-set as a cover of minterm cubes.
func (f *Function) OffCover(o int) *cube.Cover {
	off := f.OffSet(o)
	return setToCover(f.NumIn, off)
}

func setToCover(n int, s *bitset.Set) *cube.Cover {
	cv := cube.NewCover(n)
	s.ForEach(func(m int) {
		cv.Add(cube.FromMinterm(n, uint(m)))
	})
	return cv
}

// SetFromCover overwrites output o from an on-set cover and a DC cover.
// Minterms covered by both are treated as don't-care (the .pla "fd"
// convention, where the D part wins ties).
func (f *Function) SetFromCover(o int, on, dc *cube.Cover) {
	out := f.Outs[o]
	out.On.Reset()
	out.DC.Reset()
	if on != nil {
		for _, c := range on.Cubes {
			c.Minterms(func(m uint) { out.On.Set(int(m)) })
		}
	}
	if dc != nil {
		for _, c := range dc.Cubes {
			c.Minterms(func(m uint) { out.DC.Set(int(m)) })
		}
	}
	out.On.InPlaceDifference(out.DC)
}

// EvalCover checks a completely specified single-output implementation
// (given as an on-set cover) for consistency with output o of the spec:
// the cover must contain every on-set minterm and avoid every off-set
// minterm; DC minterms are unconstrained. It returns the first offending
// minterm and false on violation.
func (f *Function) EvalCover(o int, impl *cube.Cover) (int, bool) {
	out := f.Outs[o]
	for m := 0; m < f.Size(); m++ {
		if out.DC.Test(m) {
			continue
		}
		has := impl.ContainsMinterm(uint(m))
		if has != out.On.Test(m) {
			return m, false
		}
	}
	return -1, true
}
