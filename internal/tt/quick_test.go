package tt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: after any random sequence of SetPhase operations, the
// representation invariant (On ∩ DC = ∅) holds and Phase reads back the
// last write for every minterm.
func TestQuickSetPhaseConsistency(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%6
		m := 1 + int(mRaw)%3
		fn := New(n, m)
		shadow := make([][]Phase, m)
		for o := range shadow {
			shadow[o] = make([]Phase, fn.Size())
		}
		for i := 0; i < 200; i++ {
			o := rng.Intn(m)
			mm := rng.Intn(fn.Size())
			p := Phase(rng.Intn(3))
			fn.SetPhase(o, mm, p)
			shadow[o][mm] = p
		}
		if err := fn.Validate(); err != nil {
			return false
		}
		for o := 0; o < m; o++ {
			for mm := 0; mm < fn.Size(); mm++ {
				if fn.Phase(o, mm) != shadow[o][mm] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: signal probabilities always sum to 1 and the off-set
// complement identity holds.
func TestQuickProbabilityPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fn := New(1+rng.Intn(7), 1)
		for mm := 0; mm < fn.Size(); mm++ {
			fn.SetPhase(0, mm, Phase(rng.Intn(3)))
		}
		f0, f1, fdc := fn.SignalProbabilities(0)
		if f0+f1+fdc < 0.999999 || f0+f1+fdc > 1.000001 {
			return false
		}
		off := fn.OffSet(0)
		return off.Count() == int(f0*float64(fn.Size())+0.5) &&
			!off.IntersectsWith(fn.Outs[0].On) &&
			!off.IntersectsWith(fn.Outs[0].DC)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: cover round trip (OnCover/DCCover -> SetFromCover) is the
// identity for any random function.
func TestQuickCoverRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fn := New(1+rng.Intn(6), 1+rng.Intn(3))
		for o := 0; o < fn.NumOut(); o++ {
			for mm := 0; mm < fn.Size(); mm++ {
				fn.SetPhase(o, mm, Phase(rng.Intn(3)))
			}
		}
		g := New(fn.NumIn, fn.NumOut())
		for o := 0; o < fn.NumOut(); o++ {
			g.SetFromCover(o, fn.OnCover(o), fn.DCCover(o))
		}
		return fn.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
