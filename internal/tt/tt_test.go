package tt

import (
	"math/rand"
	"testing"

	"relsyn/internal/cube"
)

func TestNewShape(t *testing.T) {
	f := New(4, 3)
	if f.Size() != 16 || f.NumOut() != 3 || f.NumIn != 4 {
		t.Fatalf("shape wrong: size=%d outs=%d", f.Size(), f.NumOut())
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 3; o++ {
		for m := 0; m < 16; m++ {
			if f.Phase(o, m) != Off {
				t.Fatalf("new function not all-off at (%d,%d)", o, m)
			}
		}
	}
}

func TestSetPhaseRoundTrip(t *testing.T) {
	f := New(3, 1)
	for m := 0; m < 8; m++ {
		p := Phase(m % 3)
		f.SetPhase(0, m, p)
		if got := f.Phase(0, m); got != p {
			t.Fatalf("phase(%d) = %v, want %v", m, got, p)
		}
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// Overwrite DC with On and check disjointness is preserved.
	f.SetPhase(0, 2, DC)
	f.SetPhase(0, 2, On)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Phase(0, 2) != On {
		t.Fatal("overwrite DC->On failed")
	}
}

func TestOffSetAndSignalProbabilities(t *testing.T) {
	f := New(3, 1) // 8 minterms
	f.SetPhase(0, 0, On)
	f.SetPhase(0, 1, On)
	f.SetPhase(0, 2, DC)
	f0, f1, fdc := f.SignalProbabilities(0)
	if f1 != 2.0/8 || fdc != 1.0/8 || f0 != 5.0/8 {
		t.Fatalf("probabilities = %v %v %v", f0, f1, fdc)
	}
	off := f.OffSet(0)
	if off.Count() != 5 || off.Test(0) || off.Test(2) || !off.Test(3) {
		t.Fatalf("offset wrong: %v", off)
	}
	if f0+f1+fdc != 1.0 {
		t.Fatal("probabilities do not sum to 1")
	}
}

func TestDCFraction(t *testing.T) {
	f := New(2, 2) // 4 minterms x 2 outputs
	f.SetPhase(0, 0, DC)
	f.SetPhase(1, 0, DC)
	f.SetPhase(1, 1, DC)
	if got := f.DCFraction(); got != 3.0/8 {
		t.Fatalf("DCFraction = %v, want 3/8", got)
	}
	if f.CompletelySpecified() {
		t.Fatal("function with DCs reported completely specified")
	}
	g := New(2, 2)
	if !g.CompletelySpecified() {
		t.Fatal("all-off function should be completely specified")
	}
}

func TestNeighborCounts(t *testing.T) {
	// 3 inputs; set minterm 0's neighbors: 1 (on), 2 (dc), 4 (off).
	f := New(3, 1)
	f.SetPhase(0, 1, On)
	f.SetPhase(0, 2, DC)
	if got := f.OnNeighbors(0, 0); got != 1 {
		t.Fatalf("OnNeighbors = %d, want 1", got)
	}
	if got := f.OffNeighbors(0, 0); got != 1 {
		t.Fatalf("OffNeighbors = %d, want 1", got)
	}
	// on + off + dc neighbors == NumIn
	dcN := f.NumIn - f.OnNeighbors(0, 0) - f.OffNeighbors(0, 0)
	if dcN != 1 {
		t.Fatalf("DC neighbors = %d, want 1", dcN)
	}
}

func TestNeighborCountsExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := New(5, 1)
	for m := 0; m < 32; m++ {
		f.SetPhase(0, m, Phase(rng.Intn(3)))
	}
	for m := 0; m < 32; m++ {
		on, off, dc := 0, 0, 0
		for b := 0; b < 5; b++ {
			switch f.Phase(0, m^(1<<b)) {
			case On:
				on++
			case Off:
				off++
			case DC:
				dc++
			}
		}
		if f.OnNeighbors(0, m) != on || f.OffNeighbors(0, m) != off {
			t.Fatalf("neighbor counts wrong at %d", m)
		}
		if on+off+dc != 5 {
			t.Fatal("neighbor classification does not partition")
		}
	}
}

func TestCoversRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := New(6, 2)
	for o := 0; o < 2; o++ {
		for m := 0; m < 64; m++ {
			f.SetPhase(o, m, Phase(rng.Intn(3)))
		}
	}
	g := New(6, 2)
	for o := 0; o < 2; o++ {
		g.SetFromCover(o, f.OnCover(o), f.DCCover(o))
	}
	if !f.Equal(g) {
		t.Fatal("cover round trip lost information")
	}
}

func TestSetFromCoverDCWins(t *testing.T) {
	f := New(2, 1)
	on, _ := cube.Parse("1-")
	dc, _ := cube.Parse("11")
	f.SetFromCover(0, cube.CoverOf(2, on), cube.CoverOf(2, dc))
	if f.Phase(0, 0b01) != On { // x0=1,x1=0
		t.Fatal("minterm 01 should be on")
	}
	if f.Phase(0, 0b11) != DC {
		t.Fatal("overlapping minterm should be DC (fd semantics)")
	}
}

func TestEvalCover(t *testing.T) {
	f := New(3, 1)
	f.SetPhase(0, 0b011, On)
	f.SetPhase(0, 0b111, DC)
	// Implementation: x0 & x1 — covers minterms 0b011 and 0b111.
	c, _ := cube.Parse("11-")
	impl := cube.CoverOf(3, c)
	if m, ok := f.EvalCover(0, impl); !ok {
		t.Fatalf("valid implementation rejected at minterm %d", m)
	}
	// Breaking implementation: misses the on-set minterm.
	bad := cube.NewCover(3)
	if m, ok := f.EvalCover(0, bad); ok || m != 0b011 {
		t.Fatalf("invalid implementation accepted (m=%d ok=%v)", m, ok)
	}
}

func TestCloneAndEqual(t *testing.T) {
	f := New(3, 1)
	f.SetPhase(0, 5, On)
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatal("clone not equal")
	}
	g.SetPhase(0, 6, DC)
	if f.Equal(g) {
		t.Fatal("mutated clone still equal")
	}
	if f.Phase(0, 6) != Off {
		t.Fatal("clone shares storage")
	}
	h := New(4, 1)
	if f.Equal(h) {
		t.Fatal("different widths reported equal")
	}
}
