package bdd

import (
	"math/rand"
	"testing"

	"relsyn/internal/bitset"
)

// interleavedAdder builds f = x0·x1 + x2·x3 + ... (pair products), the
// classic order-sensitivity example: with pairs adjacent the BDD is
// linear, with pairs separated it is exponential.
func pairProduct(m *Manager, pairs [][2]int) Ref {
	f := FalseRef
	for _, p := range pairs {
		f = m.Or(f, m.And(m.Var(p[0]), m.Var(p[1])))
	}
	return f
}

func TestPermuteSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	n := 6
	m := New(n)
	s := bitset.New(1 << uint(n))
	for i := 0; i < s.Len(); i++ {
		if rng.Intn(2) == 0 {
			s.Set(i)
		}
	}
	f := m.FromBitset(s)
	perm := rng.Perm(n)
	g := m.Permute(f, perm)
	for mt := uint(0); mt < 1<<uint(n); mt++ {
		// Build t with bit perm[i] = bit i of mt.
		var tgt uint
		for i := 0; i < n; i++ {
			if mt>>uint(i)&1 == 1 {
				tgt |= 1 << uint(perm[i])
			}
		}
		if m.Eval(g, tgt) != m.Eval(f, mt) {
			t.Fatalf("permute semantics wrong at minterm %d (perm %v)", mt, perm)
		}
	}
}

func TestPermuteIdentity(t *testing.T) {
	m := New(4)
	f := m.Xor(m.Var(0), m.And(m.Var(1), m.Var(3)))
	if g := m.Permute(f, []int{0, 1, 2, 3}); g != f {
		t.Fatal("identity permutation changed the ref")
	}
}

func TestPermuteValidation(t *testing.T) {
	m := New(3)
	for _, perm := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad perm %v accepted", perm)
				}
			}()
			m.Permute(TrueRef, perm)
		}()
	}
}

func TestOrderSensitivityAndFindOrder(t *testing.T) {
	// 3 product pairs over 6 vars, deliberately separated:
	// f = x0·x3 + x1·x4 + x2·x5 under natural order is large; under
	// pair-adjacent order it is linear.
	n := 6
	m := New(n)
	f := pairProduct(m, [][2]int{{0, 3}, {1, 4}, {2, 5}})
	natural := []int{0, 1, 2, 3, 4, 5}
	adjacent := []int{0, 3, 1, 4, 2, 5}
	sizeNat := m.SizeUnderOrder([]Ref{f}, natural)
	sizeAdj := m.SizeUnderOrder([]Ref{f}, adjacent)
	if sizeAdj >= sizeNat {
		t.Fatalf("pair-adjacent order (%d nodes) should beat natural (%d)", sizeAdj, sizeNat)
	}
	order, best := m.FindOrder([]Ref{f})
	if best > sizeAdj {
		t.Fatalf("FindOrder best %d worse than known good %d (order %v)", best, sizeAdj, order)
	}
}

func TestApplyOrderPreservesFunction(t *testing.T) {
	n := 6
	m := New(n)
	f := pairProduct(m, [][2]int{{0, 3}, {1, 4}, {2, 5}})
	order, want := m.FindOrder([]Ref{f})
	dst, fs := m.ApplyOrder([]Ref{f}, order)
	if got := dst.SharedNodeCount(fs); got != want {
		t.Fatalf("applied order size %d != measured %d", got, want)
	}
	// Semantics: bit level of dst minterm = original var order[level].
	for mt := uint(0); mt < 1<<uint(n); mt++ {
		var tgt uint
		for level, v := range order {
			if mt>>uint(v)&1 == 1 {
				tgt |= 1 << uint(level)
			}
		}
		if dst.Eval(fs[0], tgt) != m.Eval(f, mt) {
			t.Fatalf("ApplyOrder semantics wrong at %d", mt)
		}
	}
}

func TestSharedNodeCount(t *testing.T) {
	m := New(3)
	a := m.And(m.Var(0), m.Var(1))
	b := m.Or(a, m.Var(2))
	// Shared count must be at most the sum of individual counts minus the
	// two terminals counted twice, and at least the larger individual.
	ca, cb := m.NodeCount(a), m.NodeCount(b)
	shared := m.SharedNodeCount([]Ref{a, b})
	if shared > ca+cb-2 {
		t.Fatalf("shared %d exceeds %d+%d-2", shared, ca, cb)
	}
	if shared < cb || shared < ca {
		t.Fatalf("shared %d below max(%d,%d)", shared, ca, cb)
	}
	// Sharing a function with itself adds nothing.
	if got := m.SharedNodeCount([]Ref{b, b}); got != cb {
		t.Fatalf("self sharing: got %d, want %d", got, cb)
	}
	if m.SharedNodeCount(nil) != 0 {
		t.Fatal("empty shared count should be 0")
	}
}

func BenchmarkFindOrder8(b *testing.B) {
	rng := rand.New(rand.NewSource(192))
	n := 8
	m := New(n)
	s := bitset.New(1 << uint(n))
	for i := 0; i < s.Len(); i++ {
		if rng.Intn(2) == 0 {
			s.Set(i)
		}
	}
	f := m.FromBitset(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FindOrder([]Ref{f})
	}
}
