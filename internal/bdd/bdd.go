// Package bdd is a reduced ordered binary decision diagram (ROBDD)
// package with hash-consed nodes and a memoized ITE core — the role CUDD
// plays in the paper's tooling (maintaining and manipulating the on-,
// off-, and DC-sets of function specifications).
//
// Variable order is fixed at manager creation (natural order 0..n-1).
// Refs are indices into the manager's node arena; equality of Refs is
// functional equivalence (canonicity of ROBDDs).
package bdd

import (
	"fmt"

	"relsyn/internal/bitset"
	"relsyn/internal/cube"
)

// Ref identifies a BDD node within its Manager. The constants FalseRef
// and TrueRef are shared by all managers.
type Ref int32

// Terminal nodes.
const (
	FalseRef Ref = 0
	TrueRef  Ref = 1
)

type node struct {
	level  int32 // variable index; terminals use level = numVars
	lo, hi Ref
}

type triple struct {
	level  int32
	lo, hi Ref
}

type iteKey struct{ f, g, h Ref }

// LimitError reports that a manager exceeded its configured node budget.
// Operations raise it as a panic from deep inside the recursive ITE core;
// use Manager.Guard (or a recover that checks for *LimitError) to convert
// it into an ordinary error at the API boundary.
type LimitError struct {
	// Limit is the configured node cap; Nodes the arena size when it hit.
	Limit, Nodes int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("bdd: node budget exhausted (%d nodes, limit %d)", e.Nodes, e.Limit)
}

// Manager owns a node arena and operation caches for one variable order.
type Manager struct {
	numVars  int
	nodes    []node
	unique   map[triple]Ref
	iteMemo  map[iteKey]Ref
	maxNodes int // 0 = unlimited
}

// New creates a manager for functions over numVars variables.
func New(numVars int) *Manager {
	if numVars < 0 || numVars > 1<<20 {
		panic(fmt.Sprintf("bdd: unsupported variable count %d", numVars))
	}
	m := &Manager{
		numVars: numVars,
		unique:  make(map[triple]Ref),
		iteMemo: make(map[iteKey]Ref),
	}
	term := int32(numVars)
	m.nodes = append(m.nodes, node{level: term}, node{level: term}) // false, true
	return m
}

// NumVars returns the manager's variable count.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the total number of live nodes in the arena (including the
// two terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// SetMaxNodes caps the arena size. Once the manager holds max nodes, any
// operation that would allocate another node panics with a *LimitError
// (recoverable via Guard). max <= 0 removes the cap. The cap bounds
// memory and time on functions whose BDDs blow up under the fixed
// variable order — the CUDD-style resource limit the SAT/BDD don't-care
// literature uses to keep complete computations tractable.
func (m *Manager) SetMaxNodes(max int) {
	if max < 0 {
		max = 0
	}
	m.maxNodes = max
}

// Guard runs fn, converting a node-budget panic into a returned error.
// Other panics propagate unchanged.
func (m *Manager) Guard(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(*LimitError); ok {
				err = le
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

func (m *Manager) level(f Ref) int32 { return m.nodes[f].level }

// mk returns the canonical node (level, lo, hi), applying the reduction
// rule lo==hi and hash-consing.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	k := triple{level, lo, hi}
	if r, ok := m.unique[k]; ok {
		return r
	}
	if m.maxNodes > 0 && len(m.nodes) >= m.maxNodes {
		panic(&LimitError{Limit: m.maxNodes, Nodes: len(m.nodes)})
	}
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi})
	r := Ref(len(m.nodes) - 1)
	m.unique[k] = r
	return r
}

// Var returns the function of single variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: var %d out of range [0,%d)", i, m.numVars))
	}
	return m.mk(int32(i), FalseRef, TrueRef)
}

// NVar returns the complement of variable i.
func (m *Manager) NVar(i int) Ref {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: var %d out of range [0,%d)", i, m.numVars))
	}
	return m.mk(int32(i), TrueRef, FalseRef)
}

// cofactors returns the level-l cofactors of f.
func (m *Manager) cofactors(f Ref, l int32) (lo, hi Ref) {
	n := m.nodes[f]
	if n.level == l {
		return n.lo, n.hi
	}
	return f, f
}

// ITE computes if-then-else(f, g, h), the universal binary operator.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == TrueRef:
		return g
	case f == FalseRef:
		return h
	case g == h:
		return g
	case g == TrueRef && h == FalseRef:
		return f
	}
	k := iteKey{f, g, h}
	if r, ok := m.iteMemo[k]; ok {
		return r
	}
	l := m.level(f)
	if gl := m.level(g); gl < l {
		l = gl
	}
	if hl := m.level(h); hl < l {
		l = hl
	}
	f0, f1 := m.cofactors(f, l)
	g0, g1 := m.cofactors(g, l)
	h0, h1 := m.cofactors(h, l)
	r := m.mk(l, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.iteMemo[k] = r
	return r
}

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, FalseRef, TrueRef) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, FalseRef) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, TrueRef, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Implies returns ¬f ∨ g.
func (m *Manager) Implies(f, g Ref) Ref { return m.ITE(f, g, TrueRef) }

// Restrict fixes variable i to value v in f (Shannon cofactor).
func (m *Manager) Restrict(f Ref, i int, v bool) Ref {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: var %d out of range", i))
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(g Ref) Ref {
		n := m.nodes[g]
		if n.level > int32(i) {
			return g // below i or terminal: i does not occur
		}
		if r, ok := memo[g]; ok {
			return r
		}
		var r Ref
		if n.level == int32(i) {
			if v {
				r = n.hi
			} else {
				r = n.lo
			}
		} else {
			r = m.mk(n.level, rec(n.lo), rec(n.hi))
		}
		memo[g] = r
		return r
	}
	return rec(f)
}

// Exists existentially quantifies variable i out of f.
func (m *Manager) Exists(f Ref, i int) Ref {
	return m.Or(m.Restrict(f, i, false), m.Restrict(f, i, true))
}

// Forall universally quantifies variable i out of f.
func (m *Manager) Forall(f Ref, i int) Ref {
	return m.And(m.Restrict(f, i, false), m.Restrict(f, i, true))
}

// Eval evaluates f on the assignment encoded in minterm bits (variable i
// is bit i).
func (m *Manager) Eval(f Ref, minterm uint) bool {
	for f != TrueRef && f != FalseRef {
		n := m.nodes[f]
		if minterm>>uint(n.level)&1 == 1 {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == TrueRef
}

// SatCount returns the number of satisfying assignments of f over all
// numVars variables.
func (m *Manager) SatCount(f Ref) uint64 {
	memo := make(map[Ref]uint64)
	var rec func(Ref) uint64
	rec = func(g Ref) uint64 {
		if g == FalseRef {
			return 0
		}
		if g == TrueRef {
			return 1
		}
		if c, ok := memo[g]; ok {
			return c
		}
		n := m.nodes[g]
		// Count over the remaining variables below this node's level, then
		// scale: each child count is over vars (childLevel..numVars), missing
		// levels double the count.
		lo := rec(n.lo) << uint(m.level(n.lo)-n.level-1)
		hi := rec(n.hi) << uint(m.level(n.hi)-n.level-1)
		c := lo + hi
		memo[g] = c
		return c
	}
	return rec(f) << uint(m.level(f))
}

// FromCube builds the conjunction of a cube's literals.
func (m *Manager) FromCube(c cube.Cube) Ref {
	if c.NumVars() != m.numVars {
		panic(fmt.Sprintf("bdd: cube has %d vars, manager %d", c.NumVars(), m.numVars))
	}
	// Build bottom-up for linear node count.
	r := TrueRef
	for i := m.numVars - 1; i >= 0; i-- {
		switch c.Val(i) {
		case cube.One:
			r = m.mk(int32(i), FalseRef, r)
		case cube.Zero:
			r = m.mk(int32(i), r, FalseRef)
		case cube.Empty:
			return FalseRef
		}
	}
	return r
}

// FromCover builds the disjunction of a cover's cubes.
func (m *Manager) FromCover(cv *cube.Cover) Ref {
	r := FalseRef
	for _, c := range cv.Cubes {
		r = m.Or(r, m.FromCube(c))
	}
	return r
}

// FromBitset builds the characteristic function of a minterm set with
// 2^numVars bits.
func (m *Manager) FromBitset(s *bitset.Set) Ref {
	if s.Len() != 1<<uint(m.numVars) {
		panic(fmt.Sprintf("bdd: bitset has %d bits, want %d", s.Len(), 1<<uint(m.numVars)))
	}
	if m.numVars == 0 {
		if s.Test(0) {
			return TrueRef
		}
		return FalseRef
	}
	// Level l splits on bit l of the minterm index (variable 0 is the
	// least significant bit).
	var build func(level int32, prefix int) Ref
	build = func(level int32, prefix int) Ref {
		if level == int32(m.numVars) {
			if s.Test(prefix) {
				return TrueRef
			}
			return FalseRef
		}
		lo := build(level+1, prefix)
		hi := build(level+1, prefix|1<<uint(level))
		return m.mk(level, lo, hi)
	}
	return build(0, 0)
}

// ToBitset enumerates f's on-set into a 2^numVars bitset.
func (m *Manager) ToBitset(f Ref) *bitset.Set {
	size := 1 << uint(m.numVars)
	s := bitset.New(size)
	var rec func(g Ref, level int32, prefix int)
	rec = func(g Ref, level int32, prefix int) {
		if g == FalseRef {
			return
		}
		if level == int32(m.numVars) {
			s.Set(prefix)
			return
		}
		n := m.nodes[g]
		if n.level > level || g == TrueRef {
			// Variable `level` is free: recurse on both values of that bit.
			rec(g, level+1, prefix)
			rec(g, level+1, prefix|1<<uint(level))
			return
		}
		rec(n.lo, level+1, prefix)
		rec(n.hi, level+1, prefix|1<<uint(level))
	}
	rec(f, 0, 0)
	return s
}

// FlipVar returns f with variable i complemented: the characteristic
// function of {x : x ⊕ eᵢ ∈ f}. Applied to a set of minterms, it yields
// the set of their 1-Hamming neighbors along input i — the operation the
// reliability-driven assignment algorithms perform on the on-, off-, and
// DC-set BDDs.
func (m *Manager) FlipVar(f Ref, i int) Ref {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: var %d out of range", i))
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(g Ref) Ref {
		n := m.nodes[g]
		if n.level > int32(i) {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		var r Ref
		if n.level == int32(i) {
			r = m.mk(n.level, n.hi, n.lo) // swap children
		} else {
			r = m.mk(n.level, rec(n.lo), rec(n.hi))
		}
		memo[g] = r
		return r
	}
	return rec(f)
}

// ForEachMinterm calls fn for every satisfying minterm of f in ascending
// binary order, expanding variables absent from the BDD. fn returning
// false stops the enumeration early.
func (m *Manager) ForEachMinterm(f Ref, fn func(minterm uint) bool) {
	var rec func(g Ref, level int32, prefix uint) bool
	rec = func(g Ref, level int32, prefix uint) bool {
		if g == FalseRef {
			return true
		}
		if level == int32(m.numVars) {
			return fn(prefix)
		}
		n := m.nodes[g]
		if g == TrueRef || n.level > level {
			return rec(g, level+1, prefix) &&
				rec(g, level+1, prefix|1<<uint(level))
		}
		return rec(n.lo, level+1, prefix) &&
			rec(n.hi, level+1, prefix|1<<uint(level))
	}
	rec(f, 0, 0)
}

// NodeCount returns the number of distinct nodes reachable from f,
// including terminals.
func (m *Manager) NodeCount(f Ref) int {
	seen := map[Ref]bool{}
	var rec func(Ref)
	rec = func(g Ref) {
		if seen[g] {
			return
		}
		seen[g] = true
		if g == FalseRef || g == TrueRef {
			return
		}
		n := m.nodes[g]
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	return len(seen)
}

// Support returns the sorted variable indices f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := map[Ref]bool{}
	vars := map[int32]bool{}
	var rec func(Ref)
	rec = func(g Ref) {
		if seen[g] || g == FalseRef || g == TrueRef {
			return
		}
		seen[g] = true
		n := m.nodes[g]
		vars[n.level] = true
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	out := make([]int, 0, len(vars))
	for v := int32(0); v < int32(m.numVars); v++ {
		if vars[v] {
			out = append(out, int(v))
		}
	}
	return out
}
