package bdd

import "fmt"

// Permute returns the function obtained from f by renaming variable i to
// perm[i] (perm must be a bijection on [0, NumVars)). Formally, the
// result r satisfies
//
//	Eval(r, t) == Eval(f, s)  where bit perm[i] of t equals bit i of s.
//
// Renaming is how variable reordering is expressed against this
// package's fixed-order managers: the size of f under a candidate order
// is the size of the correspondingly permuted function.
func (m *Manager) Permute(f Ref, perm []int) Ref {
	if len(perm) != m.numVars {
		panic(fmt.Sprintf("bdd: perm has %d entries for %d vars", len(perm), m.numVars))
	}
	seen := make([]bool, m.numVars)
	for _, p := range perm {
		if p < 0 || p >= m.numVars || seen[p] {
			panic("bdd: perm is not a bijection")
		}
		seen[p] = true
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(g Ref) Ref {
		if g == FalseRef || g == TrueRef {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		n := m.nodes[g]
		v := m.Var(perm[n.level])
		r := m.ITE(v, rec(n.hi), rec(n.lo))
		memo[g] = r
		return r
	}
	return rec(f)
}

// SharedNodeCount returns the number of distinct nodes reachable from
// any of fs (terminals included once) — the cost function variable
// reordering minimizes.
func (m *Manager) SharedNodeCount(fs []Ref) int {
	seen := map[Ref]bool{}
	var rec func(Ref)
	rec = func(g Ref) {
		if seen[g] {
			return
		}
		seen[g] = true
		if g == FalseRef || g == TrueRef {
			return
		}
		n := m.nodes[g]
		rec(n.lo)
		rec(n.hi)
	}
	for _, f := range fs {
		rec(f)
	}
	return len(seen)
}

// SizeUnderOrder measures the shared node count of fs under the
// candidate variable order, where order[level] gives the variable placed
// at that level. The measurement happens in a scratch manager so m's
// arena is not polluted.
func (m *Manager) SizeUnderOrder(fs []Ref, order []int) int {
	perm := make([]int, len(order)) // perm[var] = level
	for level, v := range order {
		perm[v] = level
	}
	scratch := New(m.numVars)
	translated := make([]Ref, len(fs))
	for i, f := range fs {
		translated[i] = transfer(m, scratch, f, perm)
	}
	return scratch.SharedNodeCount(translated)
}

// transfer rebuilds src-manager function f inside dst with variable i of
// src placed at level perm[i] of dst.
func transfer(src, dst *Manager, f Ref, perm []int) Ref {
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(g Ref) Ref {
		if g == FalseRef || g == TrueRef {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		n := src.nodes[g]
		r := dst.ITE(dst.Var(perm[n.level]), rec(n.hi), rec(n.lo))
		memo[g] = r
		return r
	}
	return rec(f)
}

// FindOrder searches for a variable order minimizing the shared node
// count of fs, by greedy adjacent transpositions (a lightweight stand-in
// for CUDD's sifting). It returns the best order found
// (order[level] = variable) and its node count.
func (m *Manager) FindOrder(fs []Ref) ([]int, int) {
	order := make([]int, m.numVars)
	for i := range order {
		order[i] = i
	}
	best := m.SizeUnderOrder(fs, order)
	improved := true
	for improved {
		improved = false
		for i := 0; i+1 < len(order); i++ {
			order[i], order[i+1] = order[i+1], order[i]
			if size := m.SizeUnderOrder(fs, order); size < best {
				best = size
				improved = true
			} else {
				order[i], order[i+1] = order[i+1], order[i]
			}
		}
	}
	return order, best
}

// ApplyOrder rebuilds fs in a fresh manager under the given order
// (order[level] = variable) and returns the new manager and translated
// refs. Eval semantics change per Permute: bit `level` of a minterm in
// the new manager corresponds to original variable order[level].
func (m *Manager) ApplyOrder(fs []Ref, order []int) (*Manager, []Ref) {
	perm := make([]int, len(order))
	for level, v := range order {
		perm[v] = level
	}
	dst := New(m.numVars)
	out := make([]Ref, len(fs))
	for i, f := range fs {
		out[i] = transfer(m, dst, f, perm)
	}
	return dst, out
}
