package bdd

import (
	"math/rand"
	"testing"

	"relsyn/internal/bitset"
	"relsyn/internal/cube"
)

func TestTerminals(t *testing.T) {
	m := New(3)
	if m.Eval(TrueRef, 0) != true || m.Eval(FalseRef, 5) != false {
		t.Fatal("terminal evaluation wrong")
	}
	if m.Not(TrueRef) != FalseRef || m.Not(FalseRef) != TrueRef {
		t.Fatal("terminal negation wrong")
	}
}

func TestVarSemantics(t *testing.T) {
	m := New(4)
	for i := 0; i < 4; i++ {
		v := m.Var(i)
		nv := m.NVar(i)
		for mt := uint(0); mt < 16; mt++ {
			want := mt>>uint(i)&1 == 1
			if m.Eval(v, mt) != want {
				t.Fatalf("Var(%d) eval wrong at %04b", i, mt)
			}
			if m.Eval(nv, mt) != !want {
				t.Fatalf("NVar(%d) eval wrong at %04b", i, mt)
			}
		}
		if m.Not(v) != nv {
			t.Fatalf("Not(Var(%d)) != NVar(%d): canonicity broken", i, i)
		}
	}
}

func TestCanonicity(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// (a∧b)∨c computed two different ways must give the same Ref.
	x := m.Or(m.And(a, b), c)
	y := m.Not(m.And(m.Not(m.And(a, b)), m.Not(c)))
	if x != y {
		t.Fatal("equivalent functions got different refs")
	}
	// a⊕b == (a∨b)∧¬(a∧b)
	x1 := m.Xor(a, b)
	x2 := m.And(m.Or(a, b), m.Not(m.And(a, b)))
	if x1 != x2 {
		t.Fatal("xor identity broken")
	}
}

func TestOpsMatchTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := 5
	m := New(n)
	// Build random functions bottom-up and cross-check every operator
	// against direct evaluation.
	randFn := func() (Ref, []bool) {
		bits := make([]bool, 1<<uint(n))
		s := bitset.New(1 << uint(n))
		for i := range bits {
			if rng.Intn(2) == 0 {
				bits[i] = true
				s.Set(i)
			}
		}
		return m.FromBitset(s), bits
	}
	for trial := 0; trial < 20; trial++ {
		f, fb := randFn()
		g, gb := randFn()
		h, hb := randFn()
		checks := []struct {
			name string
			r    Ref
			fn   func(i int) bool
		}{
			{"and", m.And(f, g), func(i int) bool { return fb[i] && gb[i] }},
			{"or", m.Or(f, g), func(i int) bool { return fb[i] || gb[i] }},
			{"xor", m.Xor(f, g), func(i int) bool { return fb[i] != gb[i] }},
			{"not", m.Not(f), func(i int) bool { return !fb[i] }},
			{"implies", m.Implies(f, g), func(i int) bool { return !fb[i] || gb[i] }},
			{"ite", m.ITE(f, g, h), func(i int) bool {
				if fb[i] {
					return gb[i]
				}
				return hb[i]
			}},
		}
		for _, ck := range checks {
			for i := 0; i < 1<<uint(n); i++ {
				if m.Eval(ck.r, uint(i)) != ck.fn(i) {
					t.Fatalf("%s wrong at minterm %d", ck.name, i)
				}
			}
		}
	}
}

func TestFromToBitsetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, n := range []int{1, 3, 6, 10} {
		m := New(n)
		s := bitset.New(1 << uint(n))
		for i := 0; i < s.Len(); i++ {
			if rng.Intn(2) == 0 {
				s.Set(i)
			}
		}
		f := m.FromBitset(s)
		back := m.ToBitset(f)
		if !back.Equal(s) {
			t.Fatalf("n=%d: bitset round trip failed", n)
		}
		if got := m.SatCount(f); got != uint64(s.Count()) {
			t.Fatalf("n=%d: SatCount=%d, want %d", n, got, s.Count())
		}
	}
}

func TestFromCube(t *testing.T) {
	m := New(4)
	c, _ := cube.Parse("01-1")
	f := m.FromCube(c)
	for mt := uint(0); mt < 16; mt++ {
		if m.Eval(f, mt) != c.ContainsMinterm(mt) {
			t.Fatalf("FromCube wrong at %04b", mt)
		}
	}
	if got := m.SatCount(f); got != 2 {
		t.Fatalf("SatCount = %d, want 2", got)
	}
}

func TestFromCover(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := 6
	m := New(n)
	cv := cube.NewCover(n)
	for i := 0; i < 8; i++ {
		c := cube.New(n)
		for v := 0; v < n; v++ {
			switch rng.Intn(3) {
			case 0:
				c = c.SetVal(v, cube.Zero)
			case 1:
				c = c.SetVal(v, cube.One)
			}
		}
		cv.Add(c)
	}
	f := m.FromCover(cv)
	for mt := uint(0); mt < 1<<uint(n); mt++ {
		if m.Eval(f, mt) != cv.ContainsMinterm(mt) {
			t.Fatalf("FromCover wrong at minterm %d", mt)
		}
	}
}

func TestRestrictAndQuantify(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), m.And(m.Not(a), c))
	// f|a=1 = b; f|a=0 = c.
	if m.Restrict(f, 0, true) != b {
		t.Fatal("restrict a=1 should be b")
	}
	if m.Restrict(f, 0, false) != c {
		t.Fatal("restrict a=0 should be c")
	}
	// ∃a.f = b ∨ c; ∀a.f = b ∧ c.
	if m.Exists(f, 0) != m.Or(b, c) {
		t.Fatal("exists wrong")
	}
	if m.Forall(f, 0) != m.And(b, c) {
		t.Fatal("forall wrong")
	}
	// Restricting a variable not in the support is the identity.
	if m.Restrict(b, 0, true) != b {
		t.Fatal("restrict of free var should be identity")
	}
}

func TestSatCountSkippedLevels(t *testing.T) {
	// f = x2 over 5 vars: satcount must be 16.
	m := New(5)
	if got := m.SatCount(m.Var(2)); got != 16 {
		t.Fatalf("SatCount(x2) = %d, want 16", got)
	}
	if got := m.SatCount(TrueRef); got != 32 {
		t.Fatalf("SatCount(1) = %d, want 32", got)
	}
	if got := m.SatCount(FalseRef); got != 0 {
		t.Fatalf("SatCount(0) = %d, want 0", got)
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.And(m.Var(1), m.Or(m.Var(3), m.NVar(1)))
	sup := m.Support(f)
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 3 {
		t.Fatalf("Support = %v, want [1 3]", sup)
	}
	if len(m.Support(TrueRef)) != 0 {
		t.Fatal("terminal support should be empty")
	}
}

func TestNodeCount(t *testing.T) {
	m := New(3)
	if got := m.NodeCount(TrueRef); got != 1 {
		t.Fatalf("NodeCount(1) = %d", got)
	}
	v := m.Var(0)
	if got := m.NodeCount(v); got != 3 {
		t.Fatalf("NodeCount(x0) = %d, want 3", got)
	}
}

// The XOR of n variables has the canonical 2n+... ROBDD size: 2 internal
// nodes per level except the first, plus terminals: 2n-1 internal nodes.
func TestXorChainNodeCount(t *testing.T) {
	n := 8
	m := New(n)
	f := FalseRef
	for i := 0; i < n; i++ {
		f = m.Xor(f, m.Var(i))
	}
	want := 2*n - 1 + 2
	if got := m.NodeCount(f); got != want {
		t.Fatalf("xor%d node count = %d, want %d", n, got, want)
	}
	if got := m.SatCount(f); got != 1<<uint(n-1) {
		t.Fatalf("xor%d satcount = %d, want %d", n, got, 1<<uint(n-1))
	}
}

func TestVarOutOfRangePanics(t *testing.T) {
	m := New(2)
	for _, fn := range []func(){
		func() { m.Var(2) },
		func() { m.NVar(-1) },
		func() { m.Restrict(TrueRef, 5, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkITERandom10(b *testing.B) {
	rng := rand.New(rand.NewSource(74))
	n := 10
	m := New(n)
	s1, s2 := bitset.New(1<<uint(n)), bitset.New(1<<uint(n))
	for i := 0; i < 1<<uint(n); i++ {
		if rng.Intn(2) == 0 {
			s1.Set(i)
		}
		if rng.Intn(2) == 0 {
			s2.Set(i)
		}
	}
	f, g := m.FromBitset(s1), m.FromBitset(s2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.And(f, g)
	}
}
