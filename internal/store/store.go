// Package store is the crash-safe durable job store behind relsynd: an
// append-only write-ahead log (WAL) of job records plus a periodic
// snapshot, replayed on startup so that accepted work survives a
// process crash.
//
// Durability model:
//
//   - Every job transition (queued → running → done/failed/expired) is
//     appended to the WAL as one self-checking frame: a fixed 8-byte
//     header (payload length + CRC32) followed by the JSON-encoded
//     Record. A frame is the unit of atomicity — a torn or short write
//     at the tail is detected by the length/CRC check on replay and the
//     file is truncated back to the last complete frame. Interior
//     corruption cannot occur under the append-only discipline, so any
//     bad frame is treated as end-of-log.
//   - A snapshot (snapshot.json, written atomically via temp-file +
//     rename) compacts the merged record state every SnapshotEvery
//     appends and on explicit Checkpoint (the SIGTERM drain path). A
//     crash between the snapshot rename and the WAL reset is safe:
//     replay merges records by ID with monotonic sequence numbers, so
//     re-applying WAL frames already folded into the snapshot is a
//     no-op.
//   - Open replays snapshot + WAL and returns every recovered record in
//     sequence order. Callers (internal/server.Recover) re-enqueue the
//     non-terminal ones and re-publish the terminal ones.
//
// All file I/O goes through the FS seam so that internal/chaos can
// inject torn writes, fsync failures, and open errors deterministically.
// The Breaker (breaker.go) turns persistent append failures into an
// explicit degraded mode instead of failing the serving path.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
)

// Job status values as persisted. They mirror internal/server's job
// lifecycle states (server passes its constants through verbatim).
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
	StatusExpired = "expired"
)

// Terminal reports whether status is a terminal job state: a record in
// a terminal state is never re-enqueued by crash recovery.
func Terminal(status string) bool {
	switch status {
	case StatusDone, StatusFailed, StatusExpired:
		return true
	}
	return false
}

// Record is one durable job record. The first append for a job carries
// the full submission (spec text, options, priority); subsequent
// transition appends carry only the fields that changed — replay merges
// them by ID in sequence order.
type Record struct {
	// Seq is the store-assigned, strictly increasing sequence number.
	Seq uint64 `json:"seq"`
	// ID is the job id (server-assigned, stable across recovery).
	ID string `json:"id"`
	// Key is the content-addressed cache key (spec hash | options key).
	Key string `json:"key,omitempty"`
	// Status is the job lifecycle state (see the Status constants).
	Status string `json:"status"`
	// Priority is the queue priority of the original submission.
	Priority int `json:"priority,omitempty"`
	// SpecPLA is the specification in .pla text form, carried on the
	// initial "queued" record so recovery can re-parse and re-enqueue.
	SpecPLA string `json:"spec_pla,omitempty"`
	// Options is the normalized job configuration, carried with SpecPLA.
	Options *pipeline.JobOptions `json:"options,omitempty"`
	// Result is the job outcome, carried on "done" (and, when partial
	// results exist, "failed") records.
	Result *pipeline.JobResult `json:"result,omitempty"`
	// Error is the failure message on "failed"/"expired" records.
	Error string `json:"error,omitempty"`
	// CreatedUnixMs / FinishedUnixMs are wall-clock stamps.
	CreatedUnixMs  int64 `json:"created_unix_ms,omitempty"`
	FinishedUnixMs int64 `json:"finished_unix_ms,omitempty"`
}

// merge folds a later record for the same ID into r. Zero-valued fields
// of upd leave the earlier value in place, so transition appends stay
// small.
func (r *Record) merge(upd Record) {
	r.Seq = upd.Seq
	if upd.Status != "" {
		r.Status = upd.Status
	}
	if upd.Key != "" {
		r.Key = upd.Key
	}
	if upd.Priority != 0 {
		r.Priority = upd.Priority
	}
	if upd.SpecPLA != "" {
		r.SpecPLA = upd.SpecPLA
	}
	if upd.Options != nil {
		r.Options = upd.Options
	}
	if upd.Result != nil {
		r.Result = upd.Result
	}
	if upd.Error != "" {
		r.Error = upd.Error
	}
	if upd.CreatedUnixMs != 0 {
		r.CreatedUnixMs = upd.CreatedUnixMs
	}
	if upd.FinishedUnixMs != 0 {
		r.FinishedUnixMs = upd.FinishedUnixMs
	}
}

// File is the writable-file seam: what the store needs from an open WAL
// or snapshot file. *os.File satisfies it.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem seam. The default is the real OS filesystem
// (OSFS); internal/chaos wraps it to inject faults at every call.
type FS interface {
	MkdirAll(dir string) error
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Create truncates or creates name for writing (snapshot temp file).
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
func (OSFS) Create(name string) (File, error)        { return os.Create(name) }
func (OSFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }
func (OSFS) Rename(o, n string) error                { return os.Rename(o, n) }
func (OSFS) Remove(name string) error                { return os.Remove(name) }
func (OSFS) Truncate(name string, size int64) error  { return os.Truncate(name, size) }

// SyncMode selects the WAL fsync policy.
type SyncMode string

const (
	// SyncAlways fsyncs after every append: no accepted record is lost
	// even to a machine crash. The default.
	SyncAlways SyncMode = "always"
	// SyncInterval fsyncs on a background tick (Options.SyncInterval):
	// bounded loss window, near-volatile append latency.
	SyncInterval SyncMode = "interval"
	// SyncOff never fsyncs explicitly: process-crash safe (the OS holds
	// the pages), machine-crash unsafe.
	SyncOff SyncMode = "off"
)

// ParseSyncMode validates a -wal-sync flag value.
func ParseSyncMode(s string) (SyncMode, error) {
	switch SyncMode(s) {
	case SyncAlways, SyncInterval, SyncOff:
		return SyncMode(s), nil
	}
	return "", fmt.Errorf("store: unknown sync mode %q (want always, interval, or off)", s)
}

// Options configures Open.
type Options struct {
	// Dir is the store directory (created if absent).
	Dir string
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncMode
	// SyncInterval is the flush period for SyncInterval (default 100ms).
	SyncInterval time.Duration
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// appends (default 1024; negative disables automatic snapshots).
	SnapshotEvery int
	// FS overrides the filesystem (default OSFS; chaos injects here).
	FS FS
	// Metrics receives the relsyn_store_* series (nil = not exported;
	// the store still counts internally for Stats).
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Sync == "" {
		o.Sync = SyncAlways
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 1024
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	return o
}

// WAL frame layout: 4-byte little-endian payload length, 4-byte IEEE
// CRC32 of the payload, then the JSON payload. One frame per Append, one
// Write call per frame, so a crash can only ever tear the final frame.
const (
	frameHeaderLen = 8
	// maxRecordBytes bounds a single frame; anything larger on replay is
	// treated as tail corruption. Generous: the HTTP layer caps request
	// bodies at 8 MiB.
	maxRecordBytes = 32 << 20

	walName      = "wal.log"
	snapshotName = "snapshot.json"
)

// storeMetrics are the exported relsyn_store_* series.
type storeMetrics struct {
	appends      obs.Counter
	appendErrors obs.Counter
	snapshots    obs.Counter
	tornTails    obs.Counter
	recovered    obs.Gauge
}

// Stats is a snapshot of the store counters.
type Stats struct {
	Appends      int64 `json:"appends"`
	AppendErrors int64 `json:"append_errors"`
	Snapshots    int64 `json:"snapshots"`
	TornTails    int64 `json:"torn_tails"`
	Records      int   `json:"records"`
	WALBytes     int64 `json:"wal_bytes"`
}

// Store is the durable job store. All methods are safe for concurrent
// use.
type Store struct {
	opts     Options
	walPath  string
	snapPath string

	mu        sync.Mutex
	wal       File
	seq       uint64
	state     map[string]*Record // merged current state by job ID
	walBytes  int64
	sinceSnap int
	dirty     bool // unsynced appends (SyncInterval mode)
	closed    bool

	stopSync chan struct{}
	syncDone chan struct{}

	m storeMetrics
}

// snapshotFile is the on-disk snapshot format.
type snapshotFile struct {
	Seq     uint64   `json:"seq"`
	Records []Record `json:"records"`
}

// Open opens (or creates) the store in o.Dir, replays the snapshot and
// WAL, and returns the recovered records in sequence order. A torn WAL
// tail — the expected state after a crash mid-append — is truncated and
// counted, never an error.
func Open(o Options) (*Store, []Record, error) {
	o = o.withDefaults()
	if o.Dir == "" {
		return nil, nil, errors.New("store: Options.Dir is required")
	}
	if err := o.FS.MkdirAll(o.Dir); err != nil {
		// The os error already names the op and path.
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		opts:     o,
		walPath:  filepath.Join(o.Dir, walName),
		snapPath: filepath.Join(o.Dir, snapshotName),
		state:    make(map[string]*Record),
		stopSync: make(chan struct{}),
		syncDone: make(chan struct{}),
	}
	// Leftover snapshot temp file from a crash mid-checkpoint: discard.
	_ = o.FS.Remove(s.snapPath + ".tmp")

	if err := s.loadSnapshot(); err != nil {
		return nil, nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, nil, err
	}
	wal, err := o.FS.OpenAppend(s.walPath)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open wal: %w", err)
	}
	s.wal = wal

	s.register(o.Metrics)
	s.m.recovered.Set(float64(len(s.state)))

	recovered := make([]Record, 0, len(s.state))
	for _, r := range s.state {
		recovered = append(recovered, *r)
	}
	sort.Slice(recovered, func(i, j int) bool { return recovered[i].Seq < recovered[j].Seq })

	if o.Sync == SyncInterval {
		go s.syncLoop()
	} else {
		close(s.syncDone)
	}
	return s, recovered, nil
}

// register exports the relsyn_store_* series.
func (s *Store) register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.SetHelp("relsyn_store_appends_total", "WAL records appended.")
	reg.SetHelp("relsyn_store_append_errors_total", "WAL appends that failed (write or fsync error).")
	reg.SetHelp("relsyn_store_snapshots_total", "Snapshot compactions completed.")
	reg.SetHelp("relsyn_store_torn_tails_total", "Torn WAL tails truncated during recovery.")
	reg.SetHelp("relsyn_store_recovered_records", "Job records recovered at the last Open.")
	reg.SetHelp("relsyn_store_wal_bytes", "Current WAL size in bytes.")
	reg.SetHelp("relsyn_store_records", "Job records tracked in the merged store state.")
	reg.RegisterCounter("relsyn_store_appends_total", &s.m.appends)
	reg.RegisterCounter("relsyn_store_append_errors_total", &s.m.appendErrors)
	reg.RegisterCounter("relsyn_store_snapshots_total", &s.m.snapshots)
	reg.RegisterCounter("relsyn_store_torn_tails_total", &s.m.tornTails)
	reg.RegisterGauge("relsyn_store_recovered_records", &s.m.recovered)
	reg.GaugeFunc("relsyn_store_wal_bytes", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.walBytes)
	})
	reg.GaugeFunc("relsyn_store_records", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.state))
	})
}

func (s *Store) loadSnapshot() error {
	f, err := s.opts.FS.Open(s.snapPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: open snapshot: %w", err)
	}
	defer f.Close()
	var snap snapshotFile
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		// A snapshot is written atomically (temp + rename); a parse error
		// means operator-level corruption, not a crash artifact. Fail
		// loudly rather than silently dropping completed work.
		return fmt.Errorf("store: corrupt snapshot %s: %w", s.snapPath, err)
	}
	s.seq = snap.Seq
	for i := range snap.Records {
		r := snap.Records[i]
		s.state[r.ID] = &r
		if r.Seq > s.seq {
			s.seq = r.Seq
		}
	}
	return nil
}

// replayWAL applies every complete frame and truncates the file after
// the last one (dropping a torn tail, if any).
func (s *Store) replayWAL() error {
	f, err := s.opts.FS.Open(s.walPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: open wal: %w", err)
	}
	var good int64 // offset just past the last valid frame
	torn := false
	func() {
		defer f.Close()
		var header [frameHeaderLen]byte
		for {
			if _, err := io.ReadFull(f, header[:]); err != nil {
				torn = !errors.Is(err, io.EOF) // clean EOF at a frame boundary
				return
			}
			n := binary.LittleEndian.Uint32(header[0:4])
			want := binary.LittleEndian.Uint32(header[4:8])
			if n == 0 || n > maxRecordBytes {
				torn = true
				return
			}
			payload := make([]byte, n)
			if _, err := io.ReadFull(f, payload); err != nil {
				torn = true
				return
			}
			if crc32.ChecksumIEEE(payload) != want {
				torn = true
				return
			}
			var rec Record
			if err := json.Unmarshal(payload, &rec); err != nil {
				torn = true
				return
			}
			good += int64(frameHeaderLen) + int64(n)
			s.applyLocked(rec)
		}
	}()
	if torn {
		s.m.tornTails.Inc()
		if err := s.opts.FS.Truncate(s.walPath, good); err != nil {
			return fmt.Errorf("store: truncate torn wal tail at %d: %w", good, err)
		}
	}
	s.walBytes = good
	return nil
}

// applyLocked merges rec into the in-memory state. Records older than
// what the snapshot already folded in (Seq <= existing.Seq) are skipped,
// which makes replaying a WAL that survived its own checkpoint a no-op.
func (s *Store) applyLocked(rec Record) {
	if rec.Seq > s.seq {
		s.seq = rec.Seq
	}
	if cur, ok := s.state[rec.ID]; ok {
		if rec.Seq <= cur.Seq {
			return
		}
		cur.merge(rec)
		return
	}
	r := rec
	s.state[rec.ID] = &r
}

// Append persists one record transition. The record's Seq is assigned
// by the store. Under SyncAlways the append has been fsynced when
// Append returns; any error means the record may not be durable (the
// caller's breaker decides whether to degrade).
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if rec.ID == "" {
		return errors.New("store: record without ID")
	}
	s.seq++
	rec.Seq = s.seq
	payload, err := json.Marshal(rec)
	if err != nil { // unreachable: plain struct of scalars
		return fmt.Errorf("store: marshal record: %w", err)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)
	if _, err := s.wal.Write(frame); err != nil {
		s.m.appendErrors.Inc()
		return fmt.Errorf("store: wal append: %w", err)
	}
	if s.opts.Sync == SyncAlways {
		if err := s.wal.Sync(); err != nil {
			s.m.appendErrors.Inc()
			return fmt.Errorf("store: wal sync: %w", err)
		}
	} else {
		s.dirty = true
	}
	s.walBytes += int64(len(frame))
	s.applyLocked(rec)
	s.m.appends.Inc()
	s.sinceSnap++
	if s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		if err := s.checkpointLocked(); err != nil {
			// The WAL append itself succeeded; compaction failure is not
			// data loss. Report it so the breaker sees persistent trouble.
			return fmt.Errorf("store: auto checkpoint: %w", err)
		}
	}
	return nil
}

// Get returns the merged record for a job ID.
func (s *Store) Get(id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.state[id]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// Len returns the number of tracked records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.state)
}

// Checkpoint compacts the store: write a snapshot of the merged state
// atomically, then reset the WAL. Called on SIGTERM drain and every
// SnapshotEvery appends.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	snap := snapshotFile{Seq: s.seq, Records: make([]Record, 0, len(s.state))}
	for _, r := range s.state {
		snap.Records = append(snap.Records, *r)
	}
	sort.Slice(snap.Records, func(i, j int) bool { return snap.Records[i].Seq < snap.Records[j].Seq })

	tmp := s.snapPath + ".tmp"
	f, err := s.opts.FS.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create snapshot temp: %w", err)
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(&snap); err != nil {
		f.Close()
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := s.opts.FS.Rename(tmp, s.snapPath); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	// Reset the WAL. A crash right here leaves the full pre-checkpoint
	// WAL next to the new snapshot; replay skips the already-folded
	// frames by sequence number.
	if err := s.wal.Sync(); err != nil && s.opts.Sync != SyncOff {
		return fmt.Errorf("store: sync wal before reset: %w", err)
	}
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("store: close wal: %w", err)
	}
	if err := s.opts.FS.Truncate(s.walPath, 0); err != nil {
		return fmt.Errorf("store: reset wal: %w", err)
	}
	wal, err := s.opts.FS.OpenAppend(s.walPath)
	if err != nil {
		return fmt.Errorf("store: reopen wal: %w", err)
	}
	s.wal = wal
	s.walBytes = 0
	s.sinceSnap = 0
	s.dirty = false
	s.m.snapshots.Inc()
	return nil
}

// syncLoop is the SyncInterval flusher.
func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			s.mu.Lock()
			if s.dirty && !s.closed {
				if err := s.wal.Sync(); err != nil {
					s.m.appendErrors.Inc()
				} else {
					s.dirty = false
				}
			}
			s.mu.Unlock()
		}
	}
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Appends:      s.m.appends.Value(),
		AppendErrors: s.m.appendErrors.Value(),
		Snapshots:    s.m.snapshots.Value(),
		TornTails:    s.m.tornTails.Value(),
		Records:      len(s.state),
		WALBytes:     s.walBytes,
	}
}

// Close flushes and closes the WAL. It does not checkpoint — callers
// that want a compacted store on shutdown call Checkpoint first (the
// relsynd drain path does).
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stopSync)
	var err error
	if s.opts.Sync != SyncOff {
		err = s.wal.Sync()
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.mu.Unlock()
	<-s.syncDone
	return err
}
