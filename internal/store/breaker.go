// Circuit breaker over the durable store: persistent append failures
// (disk full, dying volume, injected chaos) must degrade relsynd to
// in-memory serving instead of failing or stalling the request path.
package store

import (
	"sync"
	"time"

	"relsyn/internal/obs"
)

// Breaker states.
const (
	BreakerClosed   = "closed"    // store healthy, appends flow
	BreakerOpen     = "open"      // appends skipped, cooling down
	BreakerHalfOpen = "half-open" // one probe append in flight
)

// Breaker is a consecutive-failure circuit breaker. Closed until
// Threshold consecutive failures, then open for Cooldown; the first
// Allow after the cooldown admits exactly one probe (half-open), whose
// outcome closes or re-opens the circuit. The zero value is not usable;
// use NewBreaker.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu          sync.Mutex
	state       string
	consecutive int
	openedAt    time.Time

	trips    obs.Counter
	degraded obs.Gauge
}

// NewBreaker returns a closed breaker. threshold <= 0 defaults to 3
// consecutive failures; cooldown <= 0 defaults to 5s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		state:     BreakerClosed,
	}
}

// Instrument exports relsyn_store_degraded (1 while the breaker is not
// closed — the "serving from memory only" signal operators page on) and
// relsyn_store_breaker_trips_total.
func (b *Breaker) Instrument(reg *obs.Registry) *Breaker {
	if reg == nil {
		return b
	}
	reg.SetHelp("relsyn_store_degraded", "1 while the store circuit breaker is open and jobs are served without durability.")
	reg.SetHelp("relsyn_store_breaker_trips_total", "Times the store circuit breaker opened.")
	reg.RegisterGauge("relsyn_store_degraded", &b.degraded)
	reg.RegisterCounter("relsyn_store_breaker_trips_total", &b.trips)
	return b
}

// SetClock overrides the breaker's time source (tests).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// Allow reports whether a store operation should be attempted. While
// open it returns false until the cooldown elapses, then admits exactly
// one half-open probe; further calls return false until that probe's
// outcome is Recorded.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false
	default: // open
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		return true
	}
}

// Record reports the outcome of an attempted store operation. A nil err
// resets the failure streak (and closes a half-open circuit); a non-nil
// err extends it and opens the circuit at the threshold.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.consecutive = 0
		if b.state != BreakerClosed {
			b.state = BreakerClosed
			b.degraded.Set(0)
		}
		return
	}
	b.consecutive++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.consecutive >= b.threshold) {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips.Inc()
		b.degraded.Set(1)
	} else if b.state == BreakerOpen {
		b.openedAt = b.now()
	}
}

// State returns the current breaker state.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Degraded reports whether the breaker is anything but closed.
func (b *Breaker) Degraded() bool { return b.State() != BreakerClosed }
