package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
)

func openTest(t *testing.T, dir string, mutate func(*Options)) (*Store, []Record) {
	t.Helper()
	o := Options{Dir: dir, Metrics: obs.NewRegistry()}
	if mutate != nil {
		mutate(&o)
	}
	st, recs, err := Open(o)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st, recs
}

func mustAppend(t *testing.T, st *Store, rec Record) {
	t.Helper()
	if err := st.Append(rec); err != nil {
		t.Fatalf("Append(%+v): %v", rec, err)
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, recs := openTest(t, dir, nil)
	if len(recs) != 0 {
		t.Fatalf("fresh store recovered %d records, want 0", len(recs))
	}
	jo := pipeline.JobOptions{}
	jo.Normalize()
	mustAppend(t, st, Record{ID: "job-1", Key: "k1", Status: StatusQueued,
		SpecPLA: ".i 1\n.o 1\n1 1\n.e\n", Options: &jo, Priority: 7, CreatedUnixMs: 111})
	mustAppend(t, st, Record{ID: "job-2", Key: "k2", Status: StatusQueued})
	mustAppend(t, st, Record{ID: "job-1", Status: StatusRunning})
	mustAppend(t, st, Record{ID: "job-1", Status: StatusDone,
		Result: &pipeline.JobResult{}, FinishedUnixMs: 222})
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, recovered := openTest(t, dir, nil)
	if len(recovered) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recovered))
	}
	byID := map[string]Record{}
	for _, r := range recovered {
		byID[r.ID] = r
	}
	j1 := byID["job-1"]
	// Transition appends carried only deltas; replay must merge them onto
	// the initial full record.
	if j1.Status != StatusDone || j1.Key != "k1" || j1.SpecPLA == "" ||
		j1.Options == nil || j1.Priority != 7 || j1.Result == nil ||
		j1.CreatedUnixMs != 111 || j1.FinishedUnixMs != 222 {
		t.Fatalf("job-1 merged wrong: %+v", j1)
	}
	if byID["job-2"].Status != StatusQueued {
		t.Fatalf("job-2 = %+v, want queued", byID["job-2"])
	}
}

// TestTornTailTruncated hand-corrupts the WAL tail three ways (short
// header, short payload, bad CRC) and checks recovery keeps every
// complete frame and drops only the tail.
func TestTornTailTruncated(t *testing.T) {
	frame := func(rec Record) []byte {
		payload := []byte(fmt.Sprintf(`{"seq":%d,"id":%q,"status":%q}`, rec.Seq, rec.ID, rec.Status))
		f := make([]byte, frameHeaderLen+len(payload))
		binary.LittleEndian.PutUint32(f[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(f[4:8], crc32.ChecksumIEEE(payload))
		copy(f[frameHeaderLen:], payload)
		return f
	}
	cases := []struct {
		name string
		tail func([]byte) []byte // corrupts a complete frame
	}{
		{"short header", func(f []byte) []byte { return f[:frameHeaderLen/2] }},
		{"short payload", func(f []byte) []byte { return f[:len(f)-3] }},
		{"bad crc", func(f []byte) []byte {
			c := append([]byte(nil), f...)
			c[len(c)-1] ^= 0xff
			return c
		}},
		{"zero length", func(f []byte) []byte {
			c := append([]byte(nil), f...)
			binary.LittleEndian.PutUint32(c[0:4], 0)
			return c[:frameHeaderLen]
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			good1 := frame(Record{Seq: 1, ID: "a", Status: StatusQueued})
			good2 := frame(Record{Seq: 2, ID: "b", Status: StatusQueued})
			bad := tc.tail(frame(Record{Seq: 3, ID: "c", Status: StatusQueued}))
			wal := append(append(append([]byte(nil), good1...), good2...), bad...)
			if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
				t.Fatal(err)
			}

			st, recs := openTest(t, dir, nil)
			if len(recs) != 2 {
				t.Fatalf("recovered %d records, want 2 (torn tail dropped)", len(recs))
			}
			if got := st.Stats().TornTails; got != 1 {
				t.Fatalf("TornTails = %d, want 1", got)
			}
			// The file must have been truncated back to the good prefix so
			// new appends start at a clean frame boundary.
			fi, err := os.Stat(filepath.Join(dir, walName))
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(len(good1) + len(good2)); fi.Size() != want {
				t.Fatalf("wal size after truncate = %d, want %d", fi.Size(), want)
			}
			// And the store must stay appendable across another cycle.
			mustAppend(t, st, Record{ID: "d", Status: StatusQueued})
			st.Close()
			_, again := openTest(t, dir, nil)
			if len(again) != 3 {
				t.Fatalf("after re-append recovered %d records, want 3", len(again))
			}
		})
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, nil)
	for i := 0; i < 10; i++ {
		mustAppend(t, st, Record{ID: fmt.Sprintf("job-%d", i), Status: StatusQueued})
	}
	mustAppend(t, st, Record{ID: "job-0", Status: StatusDone})
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := st.Stats().WALBytes; got != 0 {
		t.Fatalf("WALBytes after checkpoint = %d, want 0", got)
	}
	// Post-checkpoint appends land in the fresh WAL and merge over the
	// snapshot on the next open.
	mustAppend(t, st, Record{ID: "job-1", Status: StatusFailed, Error: "boom"})
	st.Close()

	st2, recs := openTest(t, dir, nil)
	if len(recs) != 10 {
		t.Fatalf("recovered %d records, want 10", len(recs))
	}
	r, ok := st2.Get("job-1")
	if !ok || r.Status != StatusFailed || r.Error != "boom" {
		t.Fatalf("job-1 = %+v, want failed/boom", r)
	}
	if r, _ := st2.Get("job-0"); r.Status != StatusDone {
		t.Fatalf("job-0 = %+v, want done", r)
	}
}

// TestCheckpointCrashWindow simulates a crash between the snapshot
// rename and the WAL reset: both files present, WAL fully duplicating
// the snapshot. Replay must be a no-op on the duplicated frames.
func TestCheckpointCrashWindow(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, nil)
	mustAppend(t, st, Record{ID: "a", Status: StatusQueued, Key: "ka"})
	mustAppend(t, st, Record{ID: "a", Status: StatusDone})
	st.Close()

	// Write the snapshot by hand (what checkpointLocked would publish)
	// while leaving the WAL untouched — the crash-window state.
	snapSrc, _ := openTest(t, t.TempDir(), nil)
	mustAppend(t, snapSrc, Record{ID: "a", Status: StatusQueued, Key: "ka"})
	mustAppend(t, snapSrc, Record{ID: "a", Status: StatusDone})
	if err := snapSrc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(snapSrc.opts.Dir, snapshotName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotName), snap, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, recs := openTest(t, dir, nil)
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1", len(recs))
	}
	if r, _ := st2.Get("a"); r.Status != StatusDone {
		t.Fatalf("a = %+v, want done (WAL replay over snapshot must not regress status)", r)
	}
}

func TestAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, func(o *Options) { o.SnapshotEvery = 4 })
	for i := 0; i < 9; i++ {
		mustAppend(t, st, Record{ID: fmt.Sprintf("j%d", i), Status: StatusQueued})
	}
	s := st.Stats()
	if s.Snapshots != 2 {
		t.Fatalf("Snapshots = %d after 9 appends with SnapshotEvery=4, want 2", s.Snapshots)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
}

func TestStaleSnapshotTempRemoved(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, snapshotName+".tmp")
	if err := os.WriteFile(tmp, []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	openTest(t, dir, nil)
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale snapshot temp still present (err=%v)", err)
	}
}

func TestCorruptSnapshotIsHardError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(Options{Dir: dir})
	if err == nil {
		t.Fatal("Open succeeded on a corrupt snapshot; want hard error")
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTest(t, dir, func(o *Options) {
		o.Sync = SyncInterval
		o.SyncInterval = 5 * time.Millisecond
	})
	mustAppend(t, st, Record{ID: "a", Status: StatusQueued})
	time.Sleep(50 * time.Millisecond) // let the flusher run
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, recs := openTest(t, dir, nil)
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1", len(recs))
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, ok := range []string{"always", "interval", "off"} {
		if _, err := ParseSyncMode(ok); err != nil {
			t.Errorf("ParseSyncMode(%q): %v", ok, err)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Error("ParseSyncMode accepted an unknown mode")
	}
}

func TestAppendValidation(t *testing.T) {
	st, _ := openTest(t, t.TempDir(), nil)
	if err := st.Append(Record{Status: StatusQueued}); err == nil {
		t.Fatal("Append accepted a record without an ID")
	}
	st.Close()
	if err := st.Append(Record{ID: "x", Status: StatusQueued}); err == nil {
		t.Fatal("Append succeeded on a closed store")
	}
}

func TestTerminal(t *testing.T) {
	for status, want := range map[string]bool{
		StatusQueued: false, StatusRunning: false,
		StatusDone: true, StatusFailed: true, StatusExpired: true,
		"": false, "bogus": false,
	} {
		if got := Terminal(status); got != want {
			t.Errorf("Terminal(%q) = %v, want %v", status, got, want)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(3, time.Second)
	now := time.Unix(1000, 0)
	b.SetClock(func() time.Time { return now })
	fail := errors.New("disk on fire")

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("fresh breaker must be closed and allowing")
	}
	// Two failures: still under threshold.
	b.Record(fail)
	b.Record(fail)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("state after 2 failures = %s, want closed", b.State())
	}
	// A success resets the streak: two more failures still don't trip.
	b.Record(nil)
	b.Record(fail)
	b.Record(fail)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %s, want closed (success must reset the streak)", b.State())
	}
	// Third consecutive failure trips it open.
	b.Record(fail)
	if b.State() != BreakerOpen || !b.Degraded() {
		t.Fatalf("state after threshold = %s, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed an operation before cooldown")
	}
	// Cooldown elapses: exactly one half-open probe.
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	// Probe fails: straight back to open, cooldown restarts.
	b.Record(fail)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %s, want open", b.State())
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	// Probe succeeds: closed again, serving durably.
	b.Record(nil)
	if b.State() != BreakerClosed || b.Degraded() {
		t.Fatalf("state after successful probe = %s, want closed", b.State())
	}
}

func TestBreakerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBreaker(1, time.Minute).Instrument(reg)
	b.Record(errors.New("x"))
	snap := reg.Snapshot()
	if got := gaugeValue(t, snap, "relsyn_store_degraded"); got != 1 {
		t.Fatalf("relsyn_store_degraded = %v, want 1", got)
	}
	b.SetClock(func() time.Time { return time.Now().Add(2 * time.Minute) })
	if !b.Allow() {
		t.Fatal("want half-open probe")
	}
	b.Record(nil)
	if got := gaugeValue(t, reg.Snapshot(), "relsyn_store_degraded"); got != 0 {
		t.Fatalf("relsyn_store_degraded after recovery = %v, want 0", got)
	}
}

func gaugeValue(t *testing.T, snap obs.Snapshot, name string) float64 {
	t.Helper()
	v, ok := snap.Gauges[name]
	if !ok {
		t.Fatalf("gauge %s not in snapshot (have %v)", name, snap.Gauges)
	}
	return v
}
