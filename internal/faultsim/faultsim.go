// Package faultsim analyzes single stuck-at faults on mapped netlists by
// exhaustive bit-parallel fault simulation: for every gate output net and
// both stuck values, it measures the fraction of input vectors at which
// the fault is observable at a primary output.
//
// This extends the paper's input-error derating story down to the gate
// level: the complement of mean observability is the circuit's logical
// masking of internal (e.g. soft-error-induced) faults, the quantity the
// cited reliability-synthesis literature optimizes. The experiments use
// it to check whether input-DC reliability assignment also shifts
// gate-level masking.
package faultsim

import (
	"fmt"
	"sort"

	"relsyn/internal/bitset"
	"relsyn/internal/mapper"
)

// Report summarizes the fault behaviour of one netlist.
type Report struct {
	// Faults is the number of (net, stuck-value) pairs analyzed:
	// two per gate output net.
	Faults int
	// MeanObservability is the average over faults of the fraction of the
	// 2^n input vectors at which the fault flips some primary output.
	MeanObservability float64
	// Undetectable counts faults with zero observability (redundant
	// logic or faults hidden by downstream masking on every vector).
	Undetectable int
	// WorstObservability is the single highest per-fault observability.
	WorstObservability float64
}

// Analyze runs exhaustive stuck-at fault simulation. numPI is the
// primary-input count of the circuit the netlist was mapped from
// (numPI ≤ 16 to keep simulation exhaustive). Malformed netlists — nil,
// empty, or referencing a net no gate drives — are reported as errors.
func Analyze(r *mapper.Result, numPI int) (*Report, error) {
	if numPI < 0 || numPI > 16 {
		return nil, fmt.Errorf("faultsim: %d inputs outside [0,16]", numPI)
	}
	if r == nil {
		return nil, fmt.Errorf("faultsim: nil netlist")
	}
	if len(r.Gates) == 0 && len(r.PONets) == 0 {
		return nil, fmt.Errorf("faultsim: empty netlist (no gates, no primary outputs)")
	}
	if err := validateNets(r, numPI); err != nil {
		return nil, err
	}
	size := 1 << uint(numPI)
	sim := newSim(r, numPI, size)
	good := sim.run(nil)

	// Consumers index: for each net, the gate indices reading it.
	consumers := map[mapper.Net][]int{}
	for gi, gt := range r.Gates {
		for _, in := range gt.Inputs {
			consumers[in] = append(consumers[in], gi)
		}
	}

	rep := &Report{}
	for gi := range r.Gates {
		net := r.Gates[gi].Output
		affected := downstream(r, consumers, gi)
		for _, stuck := range []bool{false, true} {
			rep.Faults++
			obs := sim.observability(good, net, stuck, affected)
			frac := float64(obs) / float64(size)
			rep.MeanObservability += frac
			if obs == 0 {
				rep.Undetectable++
			}
			if frac > rep.WorstObservability {
				rep.WorstObservability = frac
			}
		}
	}
	if rep.Faults > 0 {
		rep.MeanObservability /= float64(rep.Faults)
	}
	return rep, nil
}

// validateNets checks that every net referenced by a gate input or by a
// primary output is driven: a constant (node 0), a primary input, or a
// preceding gate's output. Undriven references would otherwise surface
// as a panic deep inside the simulator; detecting them up front turns a
// malformed netlist into a rejected request.
func validateNets(r *mapper.Result, numPI int) error {
	driven := map[mapper.Net]bool{}
	isDriven := func(n mapper.Net) bool {
		return n.Node == 0 || (n.Node >= 1 && n.Node <= numPI) || driven[n]
	}
	for gi, gt := range r.Gates {
		for pin, in := range gt.Inputs {
			if !isDriven(in) {
				return fmt.Errorf("faultsim: gate %d input %d reads undriven net %+v", gi, pin, in)
			}
		}
		driven[gt.Output] = true
	}
	for oi, po := range r.PONets {
		if !isDriven(po) {
			return fmt.Errorf("faultsim: primary output %d reads undriven net %+v", oi, po)
		}
	}
	return nil
}

// downstream returns the gate indices reachable from gate gi's output
// (including none), in ascending (topological) order.
func downstream(r *mapper.Result, consumers map[mapper.Net][]int, gi int) []int {
	seen := map[int]bool{}
	var stack []int
	push := func(net mapper.Net) {
		for _, gj := range consumers[net] {
			if !seen[gj] {
				seen[gj] = true
				stack = append(stack, gj)
			}
		}
	}
	push(r.Gates[gi].Output)
	for i := 0; i < len(stack); i++ {
		push(r.Gates[stack[i]].Output)
	}
	out := make([]int, 0, len(seen))
	for gj := range seen {
		out = append(out, gj)
	}
	sort.Ints(out)
	return out
}

// sim evaluates the netlist word-parallel over all input vectors.
type sim struct {
	r     *mapper.Result
	numPI int
	size  int
	// pi[i] is the truth table of input i.
	pi []*bitset.Set
}

func newSim(r *mapper.Result, numPI, size int) *sim {
	s := &sim{r: r, numPI: numPI, size: size}
	for i := 0; i < numPI; i++ {
		s.pi = append(s.pi, bitset.VarPattern(size, i))
	}
	return s
}

// netValues maps nets to truth tables for one (possibly faulty) run.
type netValues map[mapper.Net]*bitset.Set

// value resolves a net's table, deriving complements and constants.
func (s *sim) value(vals netValues, n mapper.Net) *bitset.Set {
	if t, ok := vals[n]; ok {
		return t
	}
	var t *bitset.Set
	switch {
	case n.Node == 0:
		t = bitset.New(s.size)
		if n.Neg {
			t.FillAll()
		}
	case n.Node >= 1 && n.Node <= s.numPI:
		t = s.pi[n.Node-1].Clone()
		if n.Neg {
			t = t.Complement()
		}
	default:
		panic(fmt.Sprintf("faultsim: undriven net %+v", n))
	}
	vals[n] = t
	return t
}

// evalGate computes a gate's output table from its input tables with
// word-level sum-of-rows evaluation.
//
// Every input table must span exactly s.size vectors: the raw word loop
// below would otherwise silently truncate a longer table (or index out
// of range on a shorter one), so a mismatch panics with the same typed
// bitset.ErrSizeMismatch the Set binary ops raise.
func (s *sim) evalGate(vals netValues, gt mapper.Gate) *bitset.Set {
	k := gt.Cell.NumIn
	ins := make([][]uint64, k)
	for i, in := range gt.Inputs {
		t := s.value(vals, in)
		if t.Len() != s.size {
			panic(bitset.NewSizeMismatch("faultsim.evalGate", t.Len(), s.size))
		}
		ins[i] = t.Words()
	}
	out := bitset.New(s.size)
	w := out.Words()
	for wi := range w {
		var acc uint64
		for row := uint(0); row < 1<<uint(k); row++ {
			if gt.Cell.Table>>row&1 == 0 {
				continue
			}
			term := ^uint64(0)
			for pin := 0; pin < k; pin++ {
				x := ins[pin][wi]
				if row>>uint(pin)&1 == 0 {
					x = ^x
				}
				term &= x
			}
			acc |= term
		}
		w[wi] = acc
	}
	out.Trim()
	return out
}

// run simulates all gates; override, when non-nil, replaces specific net
// tables before dependent gates evaluate.
func (s *sim) run(override netValues) netValues {
	vals := netValues{}
	for n, t := range override {
		vals[n] = t
	}
	for _, gt := range s.r.Gates {
		if _, forced := vals[gt.Output]; forced {
			continue
		}
		vals[gt.Output] = s.evalGate(vals, gt)
	}
	return vals
}

// observability counts input vectors where forcing `net` to `stuck`
// changes at least one PO, resimulating only the affected gates.
func (s *sim) observability(good netValues, net mapper.Net, stuck bool, affected []int) int {
	faulty := netValues{}
	// Copy all good values; the forced net and affected gates recompute.
	for n, t := range good {
		faulty[n] = t
	}
	forced := bitset.New(s.size)
	if stuck {
		forced.FillAll()
	}
	faulty[net] = forced
	for _, gi := range affected {
		gt := s.r.Gates[gi]
		faulty[gt.Output] = s.evalGate(faulty, gt)
	}
	diff := bitset.New(s.size)
	for _, po := range s.r.PONets {
		g := s.value(good, po)
		f := s.value(faulty, po)
		d := g.Clone()
		d.InPlaceSymDiff(f)
		diff.InPlaceUnion(d)
	}
	return diff.Count()
}
