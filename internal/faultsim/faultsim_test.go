package faultsim

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"relsyn/internal/aig"
	"relsyn/internal/bitset"
	"relsyn/internal/celllib"
	"relsyn/internal/mapper"
)

func mapGraph(t *testing.T, g *aig.Graph) *mapper.Result {
	t.Helper()
	r, err := mapper.Map(g, celllib.Generic70(), mapper.Area)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSingleAndGate(t *testing.T) {
	g := aig.New(2)
	g.AddPO(g.And(g.PI(0), g.PI(1)))
	rep, err := Analyze(mapGraph(t, g), 2)
	if err != nil {
		t.Fatal(err)
	}
	// One AND2 gate, two faults. Output stuck-at-0: observed when the
	// good output is 1 (1 of 4 vectors). Stuck-at-1: observed on the
	// other 3 vectors.
	if rep.Faults != 2 {
		t.Fatalf("faults = %d, want 2", rep.Faults)
	}
	want := (1.0/4 + 3.0/4) / 2
	if rep.MeanObservability != want {
		t.Fatalf("mean observability = %v, want %v", rep.MeanObservability, want)
	}
	if rep.Undetectable != 0 {
		t.Fatalf("undetectable = %d, want 0", rep.Undetectable)
	}
	if rep.WorstObservability != 0.75 {
		t.Fatalf("worst observability = %v, want 0.75", rep.WorstObservability)
	}
}

// A fault on a PO-driving net is always observable exactly where it
// flips the value; a fault masked by downstream logic shows lower
// observability.
func TestMaskingByDownstreamGate(t *testing.T) {
	// f = (a AND b) OR a = a: strashing won't simplify this because we
	// build it via distinct nodes... And(a,b) then Or with a gives
	// absorption at AIG level? Or(x, a) = ¬(¬x ∧ ¬a) — no trivial rule
	// applies, so the redundant AND survives into the netlist.
	g := aig.New(2)
	a, b := g.PI(0), g.PI(1)
	x := g.And(a, b)
	g.AddPO(g.Or(x, a))
	r := mapGraph(t, g)
	rep, err := Analyze(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == 0 {
		t.Skip("mapper collapsed the redundancy into a single cell")
	}
	// Any fault on the internal AND is masked whenever a=1 forces the OR
	// (or a=0 with b=0...). Just sanity-check ranges.
	if rep.MeanObservability < 0 || rep.MeanObservability > 1 {
		t.Fatalf("observability out of range: %v", rep.MeanObservability)
	}
}

// evalGate's raw word loop used to silently truncate an input table
// longer than the simulation size (and index out of range on a shorter
// one). It must now refuse the mismatch with the same typed error the
// Set binary ops raise.
func TestEvalGateRejectsMismatchedTable(t *testing.T) {
	g := aig.New(2)
	g.AddPO(g.And(g.PI(0), g.PI(1)))
	r := mapGraph(t, g)
	if len(r.Gates) == 0 {
		t.Fatal("no gates mapped")
	}
	s := newSim(r, 2, 4)
	gt := r.Gates[0]
	vals := netValues{
		// Wrong-sized table injected for the first gate input.
		gt.Inputs[0]: bitset.New(128),
	}
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("mismatched input table accepted")
		}
		err, ok := rec.(error)
		if !ok || !errors.Is(err, bitset.ErrSizeMismatch) {
			t.Fatalf("panic %v is not a bitset.ErrSizeMismatch", rec)
		}
		var sm *bitset.SizeMismatchError
		if !errors.As(err, &sm) || sm.Op != "faultsim.evalGate" {
			t.Fatalf("mismatch detail wrong: %#v", rec)
		}
	}()
	s.evalGate(vals, gt)
}

func TestStuckFaultsExhaustiveVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 4, 15, 2)
		r := mapGraph(t, g)
		rep, err := Analyze(r, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Naive recomputation: per fault, per vector, full forward eval.
		naiveMean, naiveUndet, faults := 0.0, 0, 0
		for gi := range r.Gates {
			for _, stuck := range []bool{false, true} {
				faults++
				obs := 0
				for m := uint(0); m < 16; m++ {
					if evalWithFault(r, 4, m, gi, stuck, false) != evalWithFault(r, 4, m, gi, stuck, true) {
						obs++
					}
				}
				naiveMean += float64(obs) / 16
				if obs == 0 {
					naiveUndet++
				}
			}
		}
		if faults > 0 {
			naiveMean /= float64(faults)
		}
		if rep.Faults != faults || rep.Undetectable != naiveUndet {
			t.Fatalf("trial %d: counts differ: %+v vs naive faults=%d undet=%d",
				trial, rep, faults, naiveUndet)
		}
		if diff := rep.MeanObservability - naiveMean; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("trial %d: mean observability %v vs naive %v",
				trial, rep.MeanObservability, naiveMean)
		}
	}
}

// evalWithFault evaluates the netlist at one vector; withFault selects
// whether gate gi's output is forced to stuck. Returns a fingerprint of
// the PO values.
func evalWithFault(r *mapper.Result, numPI int, minterm uint, gi int, stuck, withFault bool) uint64 {
	vals := map[mapper.Net]bool{}
	var value func(n mapper.Net) bool
	value = func(n mapper.Net) bool {
		if v, ok := vals[n]; ok {
			return v
		}
		switch {
		case n.Node == 0:
			return n.Neg
		case n.Node >= 1 && n.Node <= numPI:
			v := minterm>>uint(n.Node-1)&1 == 1
			if n.Neg {
				v = !v
			}
			return v
		}
		panic("undriven net")
	}
	for idx, gt := range r.Gates {
		if withFault && idx == gi {
			vals[gt.Output] = stuck
			continue
		}
		var row uint
		for pin, in := range gt.Inputs {
			if value(in) {
				row |= 1 << uint(pin)
			}
		}
		vals[gt.Output] = gt.Cell.Table>>row&1 == 1
	}
	var fp uint64
	for i, po := range r.PONets {
		if value(po) {
			fp |= 1 << uint(i)
		}
	}
	return fp
}

func randomGraph(rng *rand.Rand, numPI, ands, pos int) *aig.Graph {
	g := aig.New(numPI)
	lits := []aig.Lit{}
	for i := 0; i < numPI; i++ {
		lits = append(lits, g.PI(i))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))]
		b := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			a = a.Not()
		}
		if rng.Intn(2) == 0 {
			b = b.Not()
		}
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < pos; i++ {
		l := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			l = l.Not()
		}
		g.AddPO(l)
	}
	return g.Cleanup()
}

func TestAnalyzeValidates(t *testing.T) {
	g := aig.New(2)
	g.AddPO(g.And(g.PI(0), g.PI(1)))
	r := mapGraph(t, g)
	if _, err := Analyze(r, 17); err == nil {
		t.Fatal("oversized input count accepted")
	}
}

func TestEmptyNetlist(t *testing.T) {
	g := aig.New(2)
	g.AddPO(aig.ConstFalse)
	rep, err := Analyze(mapGraph(t, g), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != 0 || rep.MeanObservability != 0 {
		t.Fatalf("constant netlist should have no faults: %+v", rep)
	}
}

// Malformed-netlist error paths: Analyze must reject (with errors, not
// panics) nil results, netlists with neither gates nor primary outputs,
// and references to nets no gate drives.
func TestAnalyzeRejectsMalformedNetlists(t *testing.T) {
	if _, err := Analyze(nil, 2); err == nil {
		t.Fatal("nil netlist accepted")
	}
	if _, err := Analyze(&mapper.Result{}, 2); err == nil {
		t.Fatal("empty netlist accepted")
	}
	if _, err := Analyze(&mapper.Result{}, -1); err == nil {
		t.Fatal("negative input count accepted")
	}

	lib := celllib.Generic70()
	var inv celllib.Cell
	found := false
	for _, c := range lib.Cells {
		if c.NumIn == 1 {
			inv, found = c, true
			break
		}
	}
	if !found {
		t.Fatal("library has no 1-input cell")
	}

	// Gate input reads node 9, which is neither constant, PI, nor any
	// gate's output.
	undrivenIn := &mapper.Result{
		Gates: []mapper.Gate{{
			Cell:   inv,
			Inputs: []mapper.Net{{Node: 9}},
			Output: mapper.Net{Node: 3},
		}},
		PONets: []mapper.Net{{Node: 3}},
	}
	if _, err := Analyze(undrivenIn, 2); err == nil {
		t.Fatal("undriven gate input accepted")
	} else if !strings.Contains(err.Error(), "undriven") {
		t.Fatalf("error does not mention undriven net: %v", err)
	}

	// PO reads a net that no gate drives.
	undrivenPO := &mapper.Result{
		Gates: []mapper.Gate{{
			Cell:   inv,
			Inputs: []mapper.Net{{Node: 1}},
			Output: mapper.Net{Node: 3},
		}},
		PONets: []mapper.Net{{Node: 7}},
	}
	if _, err := Analyze(undrivenPO, 2); err == nil {
		t.Fatal("undriven primary output accepted")
	} else if !strings.Contains(err.Error(), "undriven") {
		t.Fatalf("error does not mention undriven net: %v", err)
	}

	// The well-formed version of the same netlist is accepted.
	ok := &mapper.Result{
		Gates: []mapper.Gate{{
			Cell:   inv,
			Inputs: []mapper.Net{{Node: 1}},
			Output: mapper.Net{Node: 3},
		}},
		PONets: []mapper.Net{{Node: 3}},
	}
	if _, err := Analyze(ok, 2); err != nil {
		t.Fatalf("well-formed netlist rejected: %v", err)
	}
}
