// Canonicalization and content hashing of .pla specifications.
//
// Two .pla files that denote the same incompletely specified function —
// regardless of cube order, redundant/overlapping cubes, logic type
// (fd vs fr vs fdr encodings of the same partition), or cosmetic
// directives — must canonicalize to byte-identical normal forms and hash
// to the same digest. The synthesis service (internal/server) keys its
// in-flight coalescing and result cache on this digest, so stability and
// collision-freedom across semantically distinct specs are load-bearing;
// see the tests and FuzzCanonicalPLA in canonical_test.go.
package pla

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"relsyn/internal/tt"
)

// hashDomain versions the digest; bump when the encoding changes so
// persisted caches cannot alias across incompatible layouts.
const hashDomain = "relsyn/pla/v1\n"

// Canonical returns the semantic normal form of f: a type-fd file with
// one minterm row per on-set or DC minterm, emitted output-major in
// increasing minterm order, with all cosmetic metadata (signal names,
// advisory directives) dropped. Files denoting the same function produce
// byte-identical canonical forms under Write. The receiver is unchanged.
func (f *File) Canonical() (*File, error) {
	fn, err := f.ToFunction()
	if err != nil {
		return nil, err
	}
	return FromFunction(fn, nil, nil), nil
}

// Hash returns a stable hex digest of the file's semantics: the dense
// (on, dc) partition it denotes, independent of cube order, redundancy,
// logic type, and naming. Files with different input/output counts or
// differing phases never collide short of a SHA-256 collision.
func (f *File) Hash() (string, error) {
	fn, err := f.ToFunction()
	if err != nil {
		return "", err
	}
	return HashFunction(fn), nil
}

// HashFunction returns the stable content digest of a dense function.
// It is the single source of truth for spec identity across the CLI,
// the server cache, and future persisted artifacts. The function's Name
// is deliberately excluded: identity is semantic.
func HashFunction(fn *tt.Function) string {
	h := sha256.New()
	h.Write([]byte(hashDomain))
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(fn.NumIn))
	writeU64(uint64(fn.NumOut()))
	for _, o := range fn.Outs {
		// Words() zero-pads past Len, so equal functions serialize
		// identically word-for-word.
		for _, w := range o.On.Words() {
			writeU64(w)
		}
		for _, w := range o.DC.Words() {
			writeU64(w)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
