// Package pla reads and writes Espresso-format .pla files, the benchmark
// interchange format used by the paper (MCNC benchmarks are distributed
// as .pla with explicit DC output planes).
//
// Supported logic types (.type directive): f, fd (default), fr, fdr, with
// the standard Espresso semantics for which planes the file specifies and
// how the unspecified remainder is completed.
package pla

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"relsyn/internal/cube"
	"relsyn/internal/tt"
)

// Type identifies which of the F (on), D (don't-care), and R (off) planes
// a .pla file specifies.
type Type string

// Supported .pla logic types.
const (
	TypeF   Type = "f"
	TypeFD  Type = "fd"
	TypeFR  Type = "fr"
	TypeFDR Type = "fdr"
)

// Row is one product-term line: an input cube and one output character per
// output ('1' on, '0' off/unused, '-' or '~' don't-care, plus the Espresso
// digit aliases '4', '3', '2').
type Row struct {
	In  cube.Cube
	Out []byte
}

// File is a parsed .pla description.
type File struct {
	NumIn    int
	NumOut   int
	LogicTyp Type
	InNames  []string
	OutNames []string
	Rows     []Row
}

// Parse reads a .pla file. Unknown dot-directives are ignored (Espresso
// itself ignores most of them); malformed cubes, inconsistent widths, and
// missing .i/.o headers are errors.
func Parse(r io.Reader) (*File, error) {
	f := &File{NumIn: -1, NumOut: -1, LogicTyp: TypeFD}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if strings.HasPrefix(fields[0], ".") {
			if err := f.directive(fields); err != nil {
				return nil, fmt.Errorf("pla: line %d: %w", lineNo, err)
			}
			if fields[0] == ".e" || fields[0] == ".end" {
				break
			}
			continue
		}
		if err := f.cubeLine(fields); err != nil {
			return nil, fmt.Errorf("pla: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pla: %w", err)
	}
	if f.NumIn < 0 || f.NumOut < 0 {
		return nil, fmt.Errorf("pla: missing .i or .o header")
	}
	return f, nil
}

func (f *File) directive(fields []string) error {
	switch fields[0] {
	case ".i":
		n, err := parsePositive(fields, ".i")
		if err != nil {
			return err
		}
		f.NumIn = n
	case ".o":
		n, err := parsePositive(fields, ".o")
		if err != nil {
			return err
		}
		f.NumOut = n
	case ".type":
		if len(fields) != 2 {
			return fmt.Errorf(".type wants one argument")
		}
		switch Type(fields[1]) {
		case TypeF, TypeFD, TypeFR, TypeFDR:
			f.LogicTyp = Type(fields[1])
		default:
			return fmt.Errorf("unsupported .type %q", fields[1])
		}
	case ".ilb":
		f.InNames = append([]string(nil), fields[1:]...)
	case ".ob":
		f.OutNames = append([]string(nil), fields[1:]...)
	case ".p", ".e", ".end":
		// .p is advisory; .e/.end handled by the caller.
	default:
		// Ignore other directives (.phase, .pair, ...) like Espresso does.
	}
	return nil
}

func parsePositive(fields []string, name string) (int, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("%s wants one argument", name)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("%s argument %q is not a positive integer", name, fields[1])
	}
	return n, nil
}

func (f *File) cubeLine(fields []string) error {
	if f.NumIn < 0 || f.NumOut < 0 {
		return fmt.Errorf("cube before .i/.o header")
	}
	// Cubes may be written "0101 10" or "0101|10" or unspaced "010110".
	joined := strings.Join(fields, "")
	joined = strings.ReplaceAll(joined, "|", "")
	if len(joined) != f.NumIn+f.NumOut {
		return fmt.Errorf("cube %q has %d characters, want %d inputs + %d outputs",
			joined, len(joined), f.NumIn, f.NumOut)
	}
	in, err := cube.Parse(joined[:f.NumIn])
	if err != nil {
		return err
	}
	out := []byte(joined[f.NumIn:])
	for i, ch := range out {
		switch ch {
		case '0', '1', '-', '~', '2', '3', '4':
		default:
			return fmt.Errorf("invalid output character %q at output %d", ch, i)
		}
	}
	f.Rows = append(f.Rows, Row{In: in, Out: out})
	return nil
}

// outKind classifies an output character into the plane it selects.
func outKind(ch byte) tt.Phase {
	switch ch {
	case '1', '4':
		return tt.On
	case '0', '3':
		return tt.Off
	default: // '-', '~', '2'
		return tt.DC
	}
}

// ToFunction interprets the file under its logic type and produces a dense
// truth table. For type fd the off-set is the complement of F∪D; for fr
// the DC-set is the complement of F∪R; for f the function is completely
// specified; for fdr all three planes are explicit and must partition the
// space (an error is returned otherwise).
func (f *File) ToFunction() (*tt.Function, error) {
	if f.NumIn > 24 {
		return nil, fmt.Errorf("pla: %d inputs too large for dense truth table", f.NumIn)
	}
	if f.NumOut <= 0 {
		// Parse rejects ".o 0", but a hand-built File can still carry no
		// outputs; reject it here with the typed sentinel so downstream
		// per-output means never divide by zero.
		return nil, fmt.Errorf("pla: %w", tt.ErrZeroOutputs)
	}
	fn := tt.New(f.NumIn, f.NumOut)
	size := fn.Size()

	// Accumulate explicit planes per output.
	type planes struct{ on, off, dc []bool }
	pl := make([]planes, f.NumOut)
	for o := range pl {
		pl[o] = planes{make([]bool, size), make([]bool, size), make([]bool, size)}
	}
	for _, row := range f.Rows {
		row.In.Minterms(func(m uint) {
			for o := 0; o < f.NumOut; o++ {
				switch outKind(row.Out[o]) {
				case tt.On:
					pl[o].on[m] = true
				case tt.Off:
					if f.LogicTyp == TypeFR || f.LogicTyp == TypeFDR {
						pl[o].off[m] = true
					}
				case tt.DC:
					if f.LogicTyp == TypeFD || f.LogicTyp == TypeFDR {
						pl[o].dc[m] = true
					}
				}
			}
		})
	}
	for o := 0; o < f.NumOut; o++ {
		for m := 0; m < size; m++ {
			on, off, dc := pl[o].on[m], pl[o].off[m], pl[o].dc[m]
			var p tt.Phase
			switch f.LogicTyp {
			case TypeF:
				if on {
					p = tt.On
				}
			case TypeFD:
				switch {
				case dc:
					p = tt.DC // D wins ties, matching Espresso
				case on:
					p = tt.On
				}
			case TypeFR:
				switch {
				case on && off:
					return nil, fmt.Errorf("pla: output %d minterm %d in both F and R", o, m)
				case on:
					p = tt.On
				case off:
					p = tt.Off
				default:
					p = tt.DC
				}
			case TypeFDR:
				n := 0
				if on {
					n++
				}
				if off {
					n++
				}
				if dc {
					n++
				}
				if n > 1 {
					return nil, fmt.Errorf("pla: output %d minterm %d in multiple planes", o, m)
				}
				switch {
				case on:
					p = tt.On
				case dc:
					p = tt.DC
				}
			}
			if p != tt.Off {
				fn.SetPhase(o, m, p)
			}
		}
	}
	return fn, nil
}

// FromFunction serializes a truth table as a type-fd file with one row per
// on-set cube and one per DC cube, using the provided per-output covers.
// Passing nil covers falls back to one row per minterm.
func FromFunction(fn *tt.Function, onCovers, dcCovers []*cube.Cover) *File {
	f := &File{NumIn: fn.NumIn, NumOut: fn.NumOut(), LogicTyp: TypeFD}
	for o := 0; o < fn.NumOut(); o++ {
		on := coverOrMinterms(fn, o, onCovers, fn.OnCover)
		dc := coverOrMinterms(fn, o, dcCovers, fn.DCCover)
		for _, c := range on.Cubes {
			out := zeros(fn.NumOut())
			out[o] = '1'
			f.Rows = append(f.Rows, Row{In: c, Out: out})
		}
		for _, c := range dc.Cubes {
			out := zeros(fn.NumOut())
			out[o] = '-'
			f.Rows = append(f.Rows, Row{In: c, Out: out})
		}
	}
	return f
}

func coverOrMinterms(fn *tt.Function, o int, covers []*cube.Cover, fallback func(int) *cube.Cover) *cube.Cover {
	if covers != nil && o < len(covers) && covers[o] != nil {
		return covers[o]
	}
	return fallback(o)
}

func zeros(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = '0'
	}
	return b
}

// Write serializes the file.
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".i %d\n.o %d\n", f.NumIn, f.NumOut)
	if len(f.InNames) == f.NumIn && f.NumIn > 0 {
		fmt.Fprintf(bw, ".ilb %s\n", strings.Join(f.InNames, " "))
	}
	if len(f.OutNames) == f.NumOut && f.NumOut > 0 {
		fmt.Fprintf(bw, ".ob %s\n", strings.Join(f.OutNames, " "))
	}
	if f.LogicTyp != "" && f.LogicTyp != TypeFD {
		fmt.Fprintf(bw, ".type %s\n", f.LogicTyp)
	}
	fmt.Fprintf(bw, ".p %d\n", len(f.Rows))
	for _, row := range f.Rows {
		fmt.Fprintf(bw, "%s %s\n", row.In.String(), string(row.Out))
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}
