package pla

import (
	"bytes"
	"strings"
	"testing"
)

func parseString(t *testing.T, s string) *File {
	t.Helper()
	f, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func hashString(t *testing.T, s string) string {
	t.Helper()
	h, err := parseString(t, s).Hash()
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	return h
}

const basePLA = `
.i 3
.o 2
01- 10
1-1 01
000 -0
.e
`

// Permuting cube order must not change the canonical form or the hash.
func TestCanonicalPermutedCubes(t *testing.T) {
	permuted := `
.i 3
.o 2
000 -0
1-1 01
01- 10
.e
`
	if hashString(t, basePLA) != hashString(t, permuted) {
		t.Fatal("permuted cube order changed the hash")
	}
	c1, err := parseString(t, basePLA).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := parseString(t, permuted).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := c1.Write(&b1); err != nil {
		t.Fatal(err)
	}
	if err := c2.Write(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("canonical forms differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
}

// Redundant (duplicated or overlapping) cubes must not change the hash:
// identity is the denoted function, not the cover.
func TestCanonicalRedundantCubes(t *testing.T) {
	redundant := `
.i 3
.o 2
01- 10
010 10
011 10
1-1 01
111 01
000 -0
.e
`
	if hashString(t, basePLA) != hashString(t, redundant) {
		t.Fatal("redundant cubes changed the hash")
	}
}

// The same function encoded under different logic types (fd vs fr) must
// hash identically.
func TestCanonicalLogicTypeInvariance(t *testing.T) {
	// f(a) = a1' with minterm 0 DC, over .i 1 .o 1... use a 2-input spec:
	// on = {01,11} for output 0; minterm 00 DC; 10 off.
	fd := `
.i 2
.o 1
-1 1
00 -
.e
`
	fr := `
.i 2
.o 1
.type fr
-1 1
10 0
.e
`
	if hashString(t, fd) != hashString(t, fr) {
		t.Fatal("fd and fr encodings of the same function hash differently")
	}
}

// Cosmetic metadata (names, .p) must not affect the hash; semantic
// differences (extra on-minterm, DC vs off, dimensions) must.
func TestCanonicalSensitivity(t *testing.T) {
	named := `
.i 3
.o 2
.ilb a b c
.ob x y
.p 3
01- 10
1-1 01
000 -0
.e
`
	if hashString(t, basePLA) != hashString(t, named) {
		t.Fatal("signal names changed the hash")
	}
	cases := []string{
		// extra on-set minterm
		".i 3\n.o 2\n01- 10\n1-1 01\n000 -0\n110 10\n.e\n",
		// DC flipped to on
		".i 3\n.o 2\n01- 10\n1-1 01\n000 10\n.e\n",
		// different output count
		".i 3\n.o 1\n01- 1\n.e\n",
		// different input count
		".i 4\n.o 2\n01-- 10\n1-1- 01\n000- -0\n.e\n",
	}
	base := hashString(t, basePLA)
	for i, c := range cases {
		if hashString(t, c) == base {
			t.Fatalf("case %d: semantically different spec collided", i)
		}
	}
}

// Canonicalization is idempotent: Canonical(Canonical(f)) writes the
// same bytes, and re-parsing a canonical form preserves the hash.
func TestCanonicalIdempotent(t *testing.T) {
	f := parseString(t, basePLA)
	c1, err := f.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	var b1 bytes.Buffer
	if err := c1.Write(&b1); err != nil {
		t.Fatal(err)
	}
	re := parseString(t, b1.String())
	c2, err := re.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := c2.Write(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("canonicalization not idempotent:\n%s\n---\n%s", b1.String(), b2.String())
	}
	h1, err := f.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := re.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("round-trip through canonical form changed the hash")
	}
}

// FuzzCanonicalPLA checks, for every parseable input, that (1) the
// canonical form re-parses, (2) its hash matches the original, and
// (3) canonicalization is a fixed point after one application.
func FuzzCanonicalPLA(f *testing.F) {
	f.Add(basePLA)
	f.Add(".i 2\n.o 1\n-1 1\n00 -\n.e\n")
	f.Add(".i 2\n.o 1\n.type fr\n-1 1\n10 0\n.e\n")
	f.Add(".i 1\n.o 1\n1 1\n.e\n")
	f.Add(".i 4\n.o 2\n01-- 10\n1-1- 01\n000- -0\n.e\n")
	f.Fuzz(func(t *testing.T, data string) {
		pf, err := Parse(strings.NewReader(data))
		if err != nil {
			return
		}
		if pf.NumIn > 12 { // keep dense expansion cheap under fuzzing
			return
		}
		h1, err := pf.Hash()
		if err != nil {
			return // e.g. fdr plane overlap: not a canonicalizable spec
		}
		c1, err := pf.Canonical()
		if err != nil {
			t.Fatalf("Hash succeeded but Canonical failed: %v", err)
		}
		var b1 bytes.Buffer
		if err := c1.Write(&b1); err != nil {
			t.Fatalf("write canonical: %v", err)
		}
		re, err := Parse(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, b1.String())
		}
		h2, err := re.Hash()
		if err != nil {
			t.Fatalf("re-hash: %v", err)
		}
		if h1 != h2 {
			t.Fatalf("canonical round trip changed hash:\n%s", b1.String())
		}
		c2, err := re.Canonical()
		if err != nil {
			t.Fatalf("re-canonicalize: %v", err)
		}
		var b2 bytes.Buffer
		if err := c2.Write(&b2); err != nil {
			t.Fatal(err)
		}
		if b1.String() != b2.String() {
			t.Fatalf("canonicalization not a fixed point:\n%s\n---\n%s", b1.String(), b2.String())
		}
	})
}
