package pla

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"relsyn/internal/tt"
)

const sample = `
# a small fd-type example
.i 3
.o 2
.ilb a b c
.ob f g
.p 4
01- 10
1-1 01
111 1-
000 -0
.e
`

func TestParseBasics(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumIn != 3 || f.NumOut != 2 || f.LogicTyp != TypeFD {
		t.Fatalf("header wrong: %+v", f)
	}
	if len(f.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(f.Rows))
	}
	if f.Rows[0].In.String() != "01-" || string(f.Rows[0].Out) != "10" {
		t.Fatalf("row 0 = %s %s", f.Rows[0].In, f.Rows[0].Out)
	}
	if len(f.InNames) != 3 || f.InNames[2] != "c" || f.OutNames[1] != "g" {
		t.Fatal("names not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		".i 3\n.o 1\n01 1\n",     // short cube
		".i 0\n.o 1\n",           // non-positive .i
		".i 3\n.o 1\n01a 1\n",    // bad input char
		".i 3\n.o 1\n011 z\n",    // bad output char
		"011 1\n",                // cube before header
		".i 3\n011 1\n",          // missing .o
		".i 3\n.o 1\n.type xy\n", // bad type
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestToFunctionFD(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	fn, err := f.ToFunction()
	if err != nil {
		t.Fatal(err)
	}
	// Output 0 (f): on = cubes "01-" and "111"; DC = "000".
	// minterm encoding: variable a is bit 0 (leftmost char).
	// "01-": a=0,b=1 -> minterms 0b010=2 (c=0), 0b110=6 (c=1).
	for _, m := range []int{2, 6, 7} {
		if fn.Phase(0, m) != tt.On {
			t.Errorf("out0 minterm %d = %v, want on", m, fn.Phase(0, m))
		}
	}
	if fn.Phase(0, 0) != tt.DC {
		t.Errorf("out0 minterm 0 = %v, want dc", fn.Phase(0, 0))
	}
	if fn.Phase(0, 1) != tt.Off {
		t.Errorf("out0 minterm 1 = %v, want off", fn.Phase(0, 1))
	}
	// Output 1 (g): on = "1-1" -> a=1,c=1 -> minterms 0b101=5, 0b111=7; DC="111"=7.
	// D wins ties under fd, so 7 is DC.
	if fn.Phase(1, 5) != tt.On {
		t.Errorf("out1 minterm 5 = %v, want on", fn.Phase(1, 5))
	}
	if fn.Phase(1, 7) != tt.DC {
		t.Errorf("out1 minterm 7 = %v, want dc (D wins)", fn.Phase(1, 7))
	}
}

func TestToFunctionFR(t *testing.T) {
	src := `
.i 2
.o 1
.type fr
01 1
10 0
.e
`
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	fn, err := f.ToFunction()
	if err != nil {
		t.Fatal(err)
	}
	// minterm: a bit0, b bit1. "01" = a=0,b=1 = 2; "10" = 1.
	if fn.Phase(0, 2) != tt.On || fn.Phase(0, 1) != tt.Off {
		t.Fatal("explicit F/R planes wrong")
	}
	// Unspecified minterms are DC under fr.
	if fn.Phase(0, 0) != tt.DC || fn.Phase(0, 3) != tt.DC {
		t.Fatal("fr remainder should be DC")
	}
}

func TestToFunctionFRConflict(t *testing.T) {
	src := ".i 2\n.o 1\n.type fr\n01 1\n-1 0\n.e\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ToFunction(); err == nil {
		t.Fatal("expected F/R overlap error")
	}
}

func TestToFunctionTypeF(t *testing.T) {
	src := ".i 2\n.o 1\n.type f\n11 1\n00 -\n.e\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	fn, err := f.ToFunction()
	if err != nil {
		t.Fatal(err)
	}
	if fn.Phase(0, 3) != tt.On {
		t.Fatal("F plane wrong")
	}
	// '-' has no meaning under type f; everything else is off.
	if !fn.CompletelySpecified() {
		t.Fatal("type f should be completely specified")
	}
}

func TestToFunctionFDR(t *testing.T) {
	src := ".i 2\n.o 1\n.type fdr\n11 1\n00 -\n01 0\n10 0\n.e\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	fn, err := f.ToFunction()
	if err != nil {
		t.Fatal(err)
	}
	if fn.Phase(0, 3) != tt.On || fn.Phase(0, 0) != tt.DC ||
		fn.Phase(0, 1) != tt.Off || fn.Phase(0, 2) != tt.Off {
		t.Fatal("fdr planes wrong")
	}
}

func TestRoundTripRandomFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(4)
		fn := tt.New(n, m)
		for o := 0; o < m; o++ {
			for mm := 0; mm < fn.Size(); mm++ {
				fn.SetPhase(o, mm, tt.Phase(rng.Intn(3)))
			}
		}
		file := FromFunction(fn, nil, nil)
		var buf bytes.Buffer
		if err := file.Write(&buf); err != nil {
			t.Fatal(err)
		}
		parsed, err := Parse(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v\n", trial, err)
		}
		back, err := parsed.ToFunction()
		if err != nil {
			t.Fatal(err)
		}
		if !fn.Equal(back) {
			t.Fatalf("trial %d: round trip mismatch (n=%d m=%d)", trial, n, m)
		}
	}
}

func TestWriteFormat(t *testing.T) {
	fn := tt.New(2, 1)
	fn.SetPhase(0, 3, tt.On)
	fn.SetPhase(0, 0, tt.DC)
	var buf bytes.Buffer
	if err := FromFunction(fn, nil, nil).Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{".i 2", ".o 1", "11 1", "00 -", ".e"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUnspacedCube(t *testing.T) {
	src := ".i 3\n.o 2\n01110\n.e\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.Rows[0].In.String() != "011" || string(f.Rows[0].Out) != "10" {
		t.Fatalf("unspaced cube parsed as %s %s", f.Rows[0].In, f.Rows[0].Out)
	}
}

func TestStopsAtDotE(t *testing.T) {
	src := ".i 2\n.o 1\n11 1\n.e\ngarbage that must be ignored\n"
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 1 {
		t.Fatal("content after .e not ignored")
	}
}
