package pla

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that anything it accepts
// can be converted to a function and re-serialized.
func FuzzParse(f *testing.F) {
	f.Add(".i 3\n.o 2\n01- 10\n1-1 01\n.e\n")
	f.Add(".i 2\n.o 1\n.type fr\n01 1\n10 0\n.e\n")
	f.Add(".i 1\n.o 1\n.ilb a\n.ob z\n0 -\n.e\n")
	f.Add(".i 4\n.o 1\n.p 2\n0101 1\n111- ~\n")
	f.Add("# comment only\n")
	f.Add(".i 3\n.o 1\n011010")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if file.NumIn > 12 {
			return // dense conversion would be huge; parsing alone suffices
		}
		fn, err := file.ToFunction()
		if err != nil {
			return
		}
		if err := fn.Validate(); err != nil {
			t.Fatalf("accepted file produced invalid function: %v", err)
		}
		var buf bytes.Buffer
		if err := FromFunction(fn, nil, nil).Write(&buf); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip re-parse failed: %v\n%s", err, buf.String())
		}
		fn2, err := back.ToFunction()
		if err != nil {
			t.Fatalf("round trip conversion failed: %v", err)
		}
		if !fn.Equal(fn2) {
			t.Fatal("round trip changed the function")
		}
	})
}
