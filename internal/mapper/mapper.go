// Package mapper covers an AIG with standard cells: k-feasible cut
// enumeration, Boolean matching against the library under all input
// permutations, input negations, and output negation, and a two-phase
// dynamic program (positive/negative polarity per node) with inverter
// repair — a compact version of the mapping step Design Compiler and ABC
// perform. Delay mode minimizes arrival time; Area mode minimizes area
// flow.
package mapper

import (
	"fmt"
	"math"
	"sort"

	"relsyn/internal/aig"
	"relsyn/internal/celllib"
)

// Mode selects the optimization objective, mirroring the paper's
// delay-optimized and power/area-optimized Design Compiler runs.
type Mode int

// Mapping objectives.
const (
	Delay Mode = iota
	Area
)

func (m Mode) String() string {
	if m == Delay {
		return "delay"
	}
	return "area"
}

// Net identifies a signal: an AIG node in a polarity.
type Net struct {
	Node int
	Neg  bool
}

// Gate is one mapped cell instance.
type Gate struct {
	Cell   celllib.Cell
	Inputs []Net // per cell pin, in pin order
	Output Net
}

// Result is a mapped netlist with its metrics.
type Result struct {
	Gates      []Gate
	PONets     []Net   // net driving each primary output, in PO order
	Area       float64 // sum of cell areas
	DelayPs    float64 // critical path, ps
	Power      float64 // activity·load dynamic power + leakage (arbitrary units)
	CellCounts map[string]int
}

// GateCount returns the number of mapped cells (the paper's Table 3
// "Gates" column).
func (r *Result) GateCount() int { return len(r.Gates) }

const (
	maxCutLeaves = 4
	maxCutsPer   = 8
	wireCap      = 2.0 // fF added to every driven net
	poCap        = 2.0 // fF load on primary outputs
)

// match is one way to realize a specific function over cut leaves.
type match struct {
	cell    celllib.Cell
	pinLeaf []int  // pinLeaf[pin] = leaf position the pin connects to
	inNeg   []bool // pin polarity (true = leaf used complemented)
}

// matcher indexes matches by arity and exact truth table over the leaves.
type matcher struct {
	byArity [maxCutLeaves + 1]map[uint16][]match
}

func buildMatcher(lib *celllib.Library) *matcher {
	m := &matcher{}
	for k := 1; k <= maxCutLeaves; k++ {
		m.byArity[k] = make(map[uint16][]match)
	}
	for _, cell := range lib.Cells {
		k := cell.NumIn
		if k > maxCutLeaves {
			continue
		}
		perms := permutations(k)
		type key struct {
			table  uint16
			negCnt int
		}
		seen := map[string]map[key]bool{}
		if seen[cell.Name] == nil {
			seen[cell.Name] = map[key]bool{}
		}
		for _, perm := range perms {
			for negMask := 0; negMask < 1<<uint(k); negMask++ {
				table := permNegTable(cell.Table, perm, negMask, k)
				negCnt := popcount(negMask)
				kk := key{table, negCnt}
				if seen[cell.Name][kk] {
					continue
				}
				seen[cell.Name][kk] = true
				pinLeaf := make([]int, k)
				inNeg := make([]bool, k)
				for pin := 0; pin < k; pin++ {
					pinLeaf[pin] = perm[pin]
					inNeg[pin] = negMask>>uint(pin)&1 == 1
				}
				m.byArity[k][table] = append(m.byArity[k][table],
					match{cell: cell, pinLeaf: pinLeaf, inNeg: inNeg})
			}
		}
	}
	return m
}

// permNegTable computes the function over leaves realized by the cell
// when pin i connects to leaf perm[i] with polarity negMask bit i.
func permNegTable(cellTable uint16, perm []int, negMask, k int) uint16 {
	var out uint16
	for row := uint(0); row < 1<<uint(k); row++ { // row bits = leaf values
		var cellRow uint
		for pin := 0; pin < k; pin++ {
			v := row>>uint(perm[pin])&1 == 1
			if negMask>>uint(pin)&1 == 1 {
				v = !v
			}
			if v {
				cellRow |= 1 << uint(pin)
			}
		}
		if cellTable>>cellRow&1 == 1 {
			out |= 1 << row
		}
	}
	return out
}

func permutations(k int) [][]int {
	if k == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var rec func(cur []int, used int)
	rec = func(cur []int, used int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < k; i++ {
			if used>>uint(i)&1 == 0 {
				rec(append(cur, i), used|1<<uint(i))
			}
		}
	}
	rec(nil, 0)
	return out
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

// cut is a set of leaves with the root's function over them.
type cut struct {
	leaves []int // sorted AIG node indices
	table  uint16
}

// enumerateCuts returns per-node cut sets (trivial cut excluded from the
// returned matchable sets but used during merging).
func enumerateCuts(g *aig.Graph) [][]cut {
	total := 1 + g.NumPI() + g.NumNodes()
	// withTrivial[i] includes {i}; cuts used for matching exclude it.
	withTrivial := make([][]cut, total)
	for i := 1; i <= g.NumPI(); i++ {
		withTrivial[i] = []cut{{leaves: []int{i}, table: 0b10}}
	}
	for i := g.NumPI() + 1; i < total; i++ {
		f0, f1 := g.Fanins(i)
		var cs []cut
		for _, c0 := range withTrivial[f0.Node()] {
			for _, c1 := range withTrivial[f1.Node()] {
				leaves := mergeLeaves(c0.leaves, c1.leaves)
				if leaves == nil {
					continue
				}
				t0 := expandTable(c0.table, c0.leaves, leaves)
				if f0.Compl() {
					t0 = ^t0
				}
				t1 := expandTable(c1.table, c1.leaves, leaves)
				if f1.Compl() {
					t1 = ^t1
				}
				table := t0 & t1 & rowMask(len(leaves))
				cs = append(cs, normalizeCut(cut{leaves: leaves, table: table}))
			}
		}
		cs = filterCuts(cs)
		withTrivial[i] = append(cs, cut{leaves: []int{i}, table: 0b10})
	}
	out := make([][]cut, total)
	for i := range withTrivial {
		var cs []cut
		for _, c := range withTrivial[i] {
			if !(len(c.leaves) == 1 && c.leaves[0] == i) {
				cs = append(cs, c)
			}
		}
		out[i] = cs
	}
	return out
}

func rowMask(k int) uint16 {
	if k >= 4 {
		return 0xffff
	}
	return uint16(1)<<uint(1<<uint(k)) - 1
}

// mergeLeaves unions two sorted leaf lists, returning nil when the union
// exceeds maxCutLeaves.
func mergeLeaves(a, b []int) []int {
	out := make([]int, 0, maxCutLeaves)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v int
		switch {
		case i >= len(a):
			v = b[j]
			j++
		case j >= len(b):
			v = a[i]
			i++
		case a[i] < b[j]:
			v = a[i]
			i++
		case a[i] > b[j]:
			v = b[j]
			j++
		default:
			v = a[i]
			i++
			j++
		}
		if len(out) == maxCutLeaves {
			return nil
		}
		out = append(out, v)
	}
	return out
}

// expandTable re-expresses a table over oldLeaves as a table over
// newLeaves (a superset).
func expandTable(t uint16, oldLeaves, newLeaves []int) uint16 {
	pos := make([]int, len(oldLeaves))
	for i, l := range oldLeaves {
		pos[i] = indexOf(newLeaves, l)
	}
	var out uint16
	for row := uint(0); row < 1<<uint(len(newLeaves)); row++ {
		var oldRow uint
		for i := range oldLeaves {
			if row>>uint(pos[i])&1 == 1 {
				oldRow |= 1 << uint(i)
			}
		}
		if t>>oldRow&1 == 1 {
			out |= 1 << row
		}
	}
	return out
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	panic("mapper: leaf not found")
}

// normalizeCut removes leaves outside the function's support.
func normalizeCut(c cut) cut {
	k := len(c.leaves)
	var kept []int
	for i := 0; i < k; i++ {
		if dependsOn(c.table, i, k) {
			kept = append(kept, i)
		}
	}
	if len(kept) == k {
		return c
	}
	newLeaves := make([]int, len(kept))
	for i, old := range kept {
		newLeaves[i] = c.leaves[old]
	}
	var nt uint16
	for row := uint(0); row < 1<<uint(len(kept)); row++ {
		var oldRow uint
		for i, old := range kept {
			if row>>uint(i)&1 == 1 {
				oldRow |= 1 << uint(old)
			}
		}
		if c.table>>oldRow&1 == 1 {
			nt |= 1 << row
		}
	}
	return cut{leaves: newLeaves, table: nt}
}

func dependsOn(t uint16, v, k int) bool {
	for row := uint(0); row < 1<<uint(k); row++ {
		if row>>uint(v)&1 == 1 {
			continue
		}
		if t>>row&1 != t>>(row|1<<uint(v))&1 {
			return true
		}
	}
	return false
}

// filterCuts deduplicates, removes dominated cuts (supersets of another
// cut), and keeps the best few by leaf count.
func filterCuts(cs []cut) []cut {
	// Dedup by leaf signature (same leaves imply same table for a fixed
	// root function).
	seen := map[string]bool{}
	var uniq []cut
	for _, c := range cs {
		if len(c.leaves) == 0 {
			continue // constant function cut: unusable for matching
		}
		key := fmt.Sprint(c.leaves)
		if seen[key] {
			continue
		}
		seen[key] = true
		uniq = append(uniq, c)
	}
	// Dominance: drop c if another cut's leaves are a strict subset.
	var kept []cut
	for i, c := range uniq {
		dominated := false
		for j, d := range uniq {
			if i == j {
				continue
			}
			if len(d.leaves) < len(c.leaves) && subsetOf(d.leaves, c.leaves) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, c)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool {
		if len(kept[i].leaves) != len(kept[j].leaves) {
			return len(kept[i].leaves) < len(kept[j].leaves)
		}
		return fmt.Sprint(kept[i].leaves) < fmt.Sprint(kept[j].leaves)
	})
	if len(kept) > maxCutsPer {
		kept = kept[:maxCutsPer]
	}
	return kept
}

func subsetOf(a, b []int) bool {
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j >= len(b) || b[j] != v {
			return false
		}
	}
	return true
}

// cand is the best implementation found for one (node, phase).
type cand struct {
	arrival float64
	flow    float64
	viaInv  bool
	cut     cut
	m       match
	valid   bool
}

func better(a, b cand, mode Mode) bool {
	if !b.valid {
		return true
	}
	if !a.valid {
		return false
	}
	if mode == Delay {
		if a.arrival != b.arrival {
			return a.arrival < b.arrival
		}
		return a.flow < b.flow
	}
	if a.flow != b.flow {
		return a.flow < b.flow
	}
	return a.arrival < b.arrival
}

// Map covers the graph with library cells under the given mode. Area
// mode iterates the covering with measured reference counts (area
// recovery); delay mode maps once.
func Map(g *aig.Graph, lib *celllib.Library, mode Mode) (*Result, error) {
	mt := buildMatcher(lib)
	cuts := enumerateCuts(g)
	total := 1 + g.NumPI() + g.NumNodes()
	div := make([]float64, total)
	for i, f := range g.FanoutCounts() {
		div[i] = float64(f)
		if div[i] < 1 {
			div[i] = 1
		}
	}
	rounds := 1
	if mode == Area {
		rounds = 3
	}
	var bestRes *Result
	for r := 0; r < rounds; r++ {
		cands, err := runDP(g, lib, mt, cuts, mode, div)
		if err != nil {
			return nil, err
		}
		res, err := extract(g, lib, cands)
		if err != nil {
			return nil, err
		}
		if bestRes == nil ||
			(mode == Area && res.Area < bestRes.Area) ||
			(mode == Delay && res.DelayPs < bestRes.DelayPs) {
			bestRes = res
		}
		// Refine divisors with the actual reference counts of this cover.
		refs := make([]float64, total)
		for _, gt := range res.Gates {
			for _, in := range gt.Inputs {
				refs[in.Node]++
			}
		}
		for i := 0; i < g.NumPO(); i++ {
			refs[g.PO(i).Node()]++
		}
		for i := range div {
			if refs[i] >= 1 {
				div[i] = refs[i]
			} else {
				div[i] = 1
			}
		}
	}
	return bestRes, nil
}

// runDP computes the best candidate per (node, phase) with the given
// fanout divisors.
func runDP(g *aig.Graph, lib *celllib.Library, mt *matcher, cuts [][]cut, mode Mode, div []float64) ([][2]cand, error) {
	total := 1 + g.NumPI() + g.NumNodes()
	inv := lib.Inv

	best := make([][2]cand, total)
	for i := 1; i <= g.NumPI(); i++ {
		best[i][0] = cand{valid: true}
		best[i][1] = cand{valid: true, viaInv: true, arrival: inv.Delay, flow: inv.Area}
	}
	for i := g.NumPI() + 1; i < total; i++ {
		for _, c := range cuts[i] {
			k := len(c.leaves)
			for phase := 0; phase < 2; phase++ {
				table := c.table
				if phase == 1 {
					table = ^table & rowMask(k)
				}
				for _, m := range mt.byArity[k][table] {
					cd := cand{valid: true, cut: c, m: m, flow: m.cell.Area, arrival: 0}
					feasible := true
					for pin := 0; pin < k; pin++ {
						leaf := c.leaves[m.pinLeaf[pin]]
						ph := 0
						if m.inNeg[pin] {
							ph = 1
						}
						lb := best[leaf][ph]
						if !lb.valid {
							feasible = false
							break
						}
						if lb.arrival > cd.arrival {
							cd.arrival = lb.arrival
						}
						cd.flow += lb.flow / div[leaf]
					}
					if !feasible {
						continue
					}
					cd.arrival += m.cell.Delay
					if better(cd, best[i][phase], mode) {
						best[i][phase] = cd
					}
				}
			}
		}
		// Inverter repair, both directions, two rounds for stability.
		for round := 0; round < 2; round++ {
			for phase := 0; phase < 2; phase++ {
				other := best[i][1-phase]
				if !other.valid {
					continue
				}
				cd := cand{valid: true, viaInv: true,
					arrival: other.arrival + inv.Delay, flow: other.flow + inv.Area}
				if better(cd, best[i][phase], mode) {
					best[i][phase] = cd
				}
			}
		}
		if !best[i][0].valid || !best[i][1].valid {
			return nil, fmt.Errorf("mapper: node %d unmatchable in some phase", i)
		}
	}
	return best, nil
}

// extract walks required nets from the POs, emits gates, and computes
// area/delay/power.
func extract(g *aig.Graph, lib *celllib.Library, best [][2]cand) (*Result, error) {
	res := &Result{CellCounts: map[string]int{}}
	emitted := map[Net]bool{}
	arrival := map[Net]float64{}
	inv := lib.Inv

	var emit func(net Net) error
	emit = func(net Net) error {
		if emitted[net] {
			return nil
		}
		emitted[net] = true
		if net.Node == 0 {
			// Constant net: no gate; arrival 0.
			arrival[net] = 0
			return nil
		}
		if net.Node <= g.NumPI() && !net.Neg {
			arrival[net] = 0
			return nil
		}
		phase := 0
		if net.Neg {
			phase = 1
		}
		b := best[net.Node][phase]
		if !b.valid {
			return fmt.Errorf("mapper: no implementation for net %+v", net)
		}
		if b.viaInv {
			src := Net{Node: net.Node, Neg: !net.Neg}
			if err := emit(src); err != nil {
				return err
			}
			res.Gates = append(res.Gates, Gate{Cell: inv, Inputs: []Net{src}, Output: net})
			res.CellCounts[inv.Name]++
			arrival[net] = arrival[src] + inv.Delay
			return nil
		}
		ins := make([]Net, len(b.m.pinLeaf))
		worst := 0.0
		for pin := range b.m.pinLeaf {
			leaf := b.cut.leaves[b.m.pinLeaf[pin]]
			in := Net{Node: leaf, Neg: b.m.inNeg[pin]}
			if err := emit(in); err != nil {
				return err
			}
			ins[pin] = in
			if arrival[in] > worst {
				worst = arrival[in]
			}
		}
		res.Gates = append(res.Gates, Gate{Cell: b.m.cell, Inputs: ins, Output: net})
		res.CellCounts[b.m.cell.Name]++
		arrival[net] = worst + b.m.cell.Delay
		return nil
	}

	poNets := make([]Net, g.NumPO())
	for i := 0; i < g.NumPO(); i++ {
		l := g.PO(i)
		net := Net{Node: l.Node(), Neg: l.Compl()}
		if l.Node() == 0 {
			// Constant PO: normalize to the constant net with its phase.
			net = Net{Node: 0, Neg: l.Compl()}
		}
		if err := emit(net); err != nil {
			return nil, err
		}
		poNets[i] = net
	}
	res.PONets = poNets

	// Metrics.
	for _, gt := range res.Gates {
		res.Area += gt.Cell.Area
		res.Power += gt.Cell.Leakage * 0.01 // leakage contribution (scaled)
	}
	for _, net := range poNets {
		if a := arrival[net]; a > res.DelayPs {
			res.DelayPs = a
		}
	}
	// Dynamic power: activity × capacitive load per net.
	probs := netProbabilities(g)
	load := map[Net]float64{}
	for _, gt := range res.Gates {
		for _, in := range gt.Inputs {
			load[in] += gt.Cell.InputCap
		}
	}
	for _, net := range poNets {
		load[net] += poCap
	}
	nets := make([]Net, 0, len(load))
	for net := range load {
		nets = append(nets, net)
	}
	sort.Slice(nets, func(i, j int) bool {
		if nets[i].Node != nets[j].Node {
			return nets[i].Node < nets[j].Node
		}
		return !nets[i].Neg && nets[j].Neg
	})
	for _, net := range nets {
		p := probs(net)
		res.Power += 2 * p * (1 - p) * (load[net] + wireCap)
	}
	if math.IsNaN(res.Power) {
		return nil, fmt.Errorf("mapper: power computation produced NaN")
	}
	return res, nil
}

// netProbabilities returns a closure giving each net's signal probability
// from exhaustive simulation.
func netProbabilities(g *aig.Graph) func(Net) float64 {
	tts := g.NodeTruthTables()
	size := float64(int(1) << uint(g.NumPI()))
	return func(n Net) float64 {
		p := float64(tts[n.Node].Count()) / size
		if n.Neg {
			p = 1 - p
		}
		return p
	}
}
