package mapper

import (
	"bytes"
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"relsyn/internal/aig"
	"relsyn/internal/celllib"
)

// evalVerilogish is a tiny evaluator for the writer's output subset:
// `assign <name> = <expr>;` lines with ~, &, | and parentheses, over
// i<k>/w<k>/w<k>n wires and 1'b0/1'b1 literals. It lets the test check
// functional equivalence of the emitted netlist without a Verilog tool.
type verilogModule struct {
	assigns []struct{ name, expr string }
	outputs int
}

var assignRe = regexp.MustCompile(`^\s*assign\s+(\S+)\s*=\s*(.+?);`)

func parseVerilogish(t *testing.T, src string) *verilogModule {
	t.Helper()
	m := &verilogModule{}
	for _, line := range strings.Split(src, "\n") {
		if mm := assignRe.FindStringSubmatch(line); mm != nil {
			m.assigns = append(m.assigns, struct{ name, expr string }{mm[1], mm[2]})
			if strings.HasPrefix(mm[1], "o") {
				m.outputs++
			}
		}
	}
	return m
}

func (m *verilogModule) eval(t *testing.T, minterm uint) map[string]bool {
	t.Helper()
	env := map[string]bool{}
	var evalExpr func(s string) bool
	// Shunting-free recursive descent: | lowest, & next, ~ and atoms.
	var pos int
	var src string
	skip := func() {
		for pos < len(src) && src[pos] == ' ' {
			pos++
		}
	}
	var parseOr, parseAnd, parseAtom func() bool
	parseOr = func() bool {
		v := parseAnd()
		for {
			skip()
			if pos < len(src) && src[pos] == '|' {
				pos++
				v2 := parseAnd()
				v = v || v2
				continue
			}
			return v
		}
	}
	parseAnd = func() bool {
		v := parseAtom()
		for {
			skip()
			if pos < len(src) && src[pos] == '&' {
				pos++
				v2 := parseAtom()
				v = v && v2
				continue
			}
			return v
		}
	}
	parseAtom = func() bool {
		skip()
		if pos >= len(src) {
			t.Fatalf("expr truncated: %q", src)
		}
		switch {
		case src[pos] == '~':
			pos++
			return !parseAtom()
		case src[pos] == '(':
			pos++
			v := parseOr()
			skip()
			if pos >= len(src) || src[pos] != ')' {
				t.Fatalf("missing ) in %q", src)
			}
			pos++
			return v
		case strings.HasPrefix(src[pos:], "1'b0"):
			pos += 4
			return false
		case strings.HasPrefix(src[pos:], "1'b1"):
			pos += 4
			return true
		default:
			start := pos
			for pos < len(src) && (isIdent(src[pos])) {
				pos++
			}
			name := src[start:pos]
			if strings.HasPrefix(name, "i") {
				var idx int
				fmt.Sscanf(name[1:], "%d", &idx)
				return minterm>>uint(idx)&1 == 1
			}
			v, ok := env[name]
			if !ok {
				t.Fatalf("wire %s used before assignment", name)
			}
			return v
		}
	}
	evalExpr = func(s string) bool {
		src, pos = s, 0
		return parseOr()
	}
	for _, a := range m.assigns {
		env[a.name] = evalExpr(a.expr)
	}
	return env
}

func isIdent(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= '0' && b <= '9' || b == '_'
}

func TestWriteVerilogEquivalence(t *testing.T) {
	lib := celllib.Generic70()
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 4+rng.Intn(3), 20+rng.Intn(40), 1+rng.Intn(4))
		r, err := Map(g, lib, Area)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.WriteVerilog(&buf, "dut", g.NumPI()); err != nil {
			t.Fatal(err)
		}
		src := buf.String()
		if !strings.Contains(src, "module dut(") || !strings.Contains(src, "endmodule") {
			t.Fatalf("malformed module:\n%s", src)
		}
		mod := parseVerilogish(t, src)
		if mod.outputs != g.NumPO() {
			t.Fatalf("emitted %d outputs, want %d", mod.outputs, g.NumPO())
		}
		for m := uint(0); m < 1<<uint(g.NumPI()); m++ {
			want := g.Eval(m)
			env := mod.eval(t, m)
			for o := 0; o < g.NumPO(); o++ {
				got, ok := env[fmt.Sprintf("o%d", o)]
				if !ok {
					t.Fatalf("output o%d not assigned", o)
				}
				if got != want[o] {
					t.Fatalf("trial %d: o%d wrong at minterm %d\n%s", trial, o, m, src)
				}
			}
		}
	}
}

func TestWriteVerilogConstantsAndPIs(t *testing.T) {
	lib := celllib.Generic70()
	g := aig.New(2)
	g.AddPO(aig.ConstTrue)
	g.AddPO(g.PI(0))
	g.AddPO(g.PI(1).Not())
	r, err := Map(g, lib, Delay)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteVerilog(&buf, "tiny", 2); err != nil {
		t.Fatal(err)
	}
	src := buf.String()
	for _, want := range []string{"assign o0 = 1'b1;", "assign o1 = i0;"} {
		if !strings.Contains(src, want) {
			t.Fatalf("missing %q in:\n%s", want, src)
		}
	}
	mod := parseVerilogish(t, src)
	for m := uint(0); m < 4; m++ {
		env := mod.eval(t, m)
		if env["o2"] != (m>>1&1 == 0) {
			t.Fatalf("inverted PI output wrong at %d", m)
		}
	}
}
