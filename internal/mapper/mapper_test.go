package mapper

import (
	"math/rand"
	"testing"

	"relsyn/internal/aig"
	"relsyn/internal/celllib"
	"relsyn/internal/espresso"
	"relsyn/internal/factor"
	"relsyn/internal/tt"
)

// simulateNetlist evaluates the mapped netlist on one input minterm and
// returns the value of every net.
func simulateNetlist(t *testing.T, g *aig.Graph, r *Result, minterm uint) map[Net]bool {
	t.Helper()
	val := map[Net]bool{
		{Node: 0, Neg: false}: false,
		{Node: 0, Neg: true}:  true,
	}
	for i := 0; i < g.NumPI(); i++ {
		val[Net{Node: 1 + i, Neg: false}] = minterm>>uint(i)&1 == 1
	}
	for _, gt := range r.Gates {
		var row uint
		for pin, in := range gt.Inputs {
			v, ok := val[in]
			if !ok {
				t.Fatalf("gate %s input %+v not yet computed (not topological?)", gt.Cell.Name, in)
			}
			if v {
				row |= 1 << uint(pin)
			}
		}
		val[gt.Output] = gt.Cell.Table>>row&1 == 1
	}
	return val
}

// checkMappingCorrect verifies the netlist computes the AIG's function.
func checkMappingCorrect(t *testing.T, g *aig.Graph, r *Result) {
	t.Helper()
	for m := uint(0); m < 1<<uint(g.NumPI()); m++ {
		want := g.Eval(m)
		val := simulateNetlist(t, g, r, m)
		for i := 0; i < g.NumPO(); i++ {
			l := g.PO(i)
			net := Net{Node: l.Node(), Neg: l.Compl()}
			got, ok := val[net]
			if !ok {
				t.Fatalf("PO %d net %+v not driven", i, net)
			}
			if got != want[i] {
				t.Fatalf("PO %d wrong at minterm %d: got %v want %v", i, m, got, want[i])
			}
		}
	}
}

func randomGraph(rng *rand.Rand, numPI, ands, pos int) *aig.Graph {
	g := aig.New(numPI)
	lits := []aig.Lit{}
	for i := 0; i < numPI; i++ {
		lits = append(lits, g.PI(i))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))]
		b := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			a = a.Not()
		}
		if rng.Intn(2) == 0 {
			b = b.Not()
		}
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < pos; i++ {
		l := lits[rng.Intn(len(lits))]
		if rng.Intn(2) == 0 {
			l = l.Not()
		}
		g.AddPO(l)
	}
	return g.Cleanup()
}

func TestMapSimpleGates(t *testing.T) {
	lib := celllib.Generic70()
	g := aig.New(2)
	a, b := g.PI(0), g.PI(1)
	g.AddPO(g.And(a, b))
	r, err := Map(g, lib, Area)
	if err != nil {
		t.Fatal(err)
	}
	checkMappingCorrect(t, g, r)
	if r.GateCount() != 1 || r.CellCounts["AND2"] != 1 {
		t.Fatalf("AND should map to one AND2 cell, got %v", r.CellCounts)
	}
}

func TestMapNandPhase(t *testing.T) {
	lib := celllib.Generic70()
	g := aig.New(2)
	a, b := g.PI(0), g.PI(1)
	g.AddPO(g.And(a, b).Not())
	r, err := Map(g, lib, Area)
	if err != nil {
		t.Fatal(err)
	}
	checkMappingCorrect(t, g, r)
	// NAND2 is cheaper than AND2+INV: one cell.
	if r.GateCount() != 1 || r.CellCounts["NAND2"] != 1 {
		t.Fatalf("NAND should map to one NAND2, got %v", r.CellCounts)
	}
}

func TestMapXor(t *testing.T) {
	lib := celllib.Generic70()
	g := aig.New(2)
	a, b := g.PI(0), g.PI(1)
	g.AddPO(g.Xor(a, b))
	r, err := Map(g, lib, Area)
	if err != nil {
		t.Fatal(err)
	}
	checkMappingCorrect(t, g, r)
	if r.CellCounts["XOR2"] != 1 || r.GateCount() != 1 {
		t.Fatalf("XOR should map to one XOR2, got %v", r.CellCounts)
	}
}

func TestMapInvertedInput(t *testing.T) {
	lib := celllib.Generic70()
	g := aig.New(2)
	a, b := g.PI(0), g.PI(1)
	g.AddPO(g.And(a, b.Not())) // x ∧ ¬y: realizable as NOR2(¬x, y)
	r, err := Map(g, lib, Area)
	if err != nil {
		t.Fatal(err)
	}
	checkMappingCorrect(t, g, r)
	if r.GateCount() > 2 {
		t.Fatalf("x∧¬y should need at most 2 cells, got %d (%v)", r.GateCount(), r.CellCounts)
	}
}

func TestMapConstantAndPassthroughPOs(t *testing.T) {
	lib := celllib.Generic70()
	g := aig.New(2)
	g.AddPO(aig.ConstFalse)
	g.AddPO(aig.ConstTrue)
	g.AddPO(g.PI(0))
	g.AddPO(g.PI(1).Not())
	r, err := Map(g, lib, Delay)
	if err != nil {
		t.Fatal(err)
	}
	checkMappingCorrect(t, g, r)
	if r.CellCounts["INV"] != 1 || r.GateCount() != 1 {
		t.Fatalf("expected exactly one INV for the negated PI PO, got %v", r.CellCounts)
	}
}

func TestMapRandomEquivalence(t *testing.T) {
	lib := celllib.Generic70()
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 4+rng.Intn(4), 10+rng.Intn(60), 1+rng.Intn(5))
		for _, mode := range []Mode{Delay, Area} {
			r, err := Map(g, lib, mode)
			if err != nil {
				t.Fatalf("trial %d mode %v: %v", trial, mode, err)
			}
			checkMappingCorrect(t, g, r)
			if r.Area <= 0 && r.GateCount() > 0 {
				t.Fatal("zero area for nonempty netlist")
			}
		}
	}
}

func TestDelayModeNotSlowerThanAreaMode(t *testing.T) {
	lib := celllib.Generic70()
	rng := rand.New(rand.NewSource(102))
	worse := 0
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 6, 80, 4)
		rd, err := Map(g, lib, Delay)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := Map(g, lib, Area)
		if err != nil {
			t.Fatal(err)
		}
		if rd.DelayPs > ra.DelayPs+1e-9 {
			worse++
		}
	}
	// Delay-mode mapping must essentially never be slower than area mode.
	if worse > 0 {
		t.Fatalf("delay mode slower than area mode in %d/20 trials", worse)
	}
}

func TestAreaModeNotLargerThanDelayMode(t *testing.T) {
	lib := celllib.Generic70()
	rng := rand.New(rand.NewSource(103))
	larger := 0
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 6, 80, 4)
		rd, _ := Map(g, lib, Delay)
		ra, _ := Map(g, lib, Area)
		if ra.Area > rd.Area+1e-9 {
			larger++
		}
	}
	// Area flow is a heuristic, so allow rare inversions but not a trend.
	if larger > 4 {
		t.Fatalf("area mode larger than delay mode in %d/20 trials", larger)
	}
}

func TestMapEndToEndFromSpec(t *testing.T) {
	lib := celllib.Generic70()
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(3)
		f := tt.New(n, 2)
		for o := 0; o < 2; o++ {
			for m := 0; m < f.Size(); m++ {
				f.SetPhase(o, m, tt.Phase(rng.Intn(3)))
			}
		}
		g := aig.New(n)
		for o := 0; o < 2; o++ {
			cov := espresso.Minimize(f.OnCover(o), f.DCCover(o))
			g.AddPO(g.FromExpr(factor.GoodFactor(cov)))
		}
		g = g.Cleanup().Balance()
		r, err := Map(g, lib, Area)
		if err != nil {
			t.Fatal(err)
		}
		checkMappingCorrect(t, g, r)
		// Mapped implementation must respect the original spec's care set.
		for m := uint(0); m < uint(f.Size()); m++ {
			val := simulateNetlist(t, g, r, m)
			for o := 0; o < 2; o++ {
				l := g.PO(o)
				got := val[Net{Node: l.Node(), Neg: l.Compl()}]
				switch f.Phase(o, int(m)) {
				case tt.On:
					if !got {
						t.Fatalf("netlist misses on-set minterm %d out %d", m, o)
					}
				case tt.Off:
					if got {
						t.Fatalf("netlist covers off-set minterm %d out %d", m, o)
					}
				}
			}
		}
	}
}

func TestMetricsPositive(t *testing.T) {
	lib := celllib.Generic70()
	rng := rand.New(rand.NewSource(105))
	g := randomGraph(rng, 6, 60, 4)
	r, err := Map(g, lib, Delay)
	if err != nil {
		t.Fatal(err)
	}
	if r.GateCount() == 0 {
		t.Skip("degenerate random graph")
	}
	if r.Area <= 0 || r.DelayPs <= 0 || r.Power <= 0 {
		t.Fatalf("metrics not positive: area=%v delay=%v power=%v", r.Area, r.DelayPs, r.Power)
	}
}

func TestBuildMatcherCoversAndFamily(t *testing.T) {
	lib := celllib.Generic70()
	m := buildMatcher(lib)
	// Every 2-input AND-type function (x∧y with any input phases) must be
	// matchable, since the DP's feasibility relies on it.
	tables := []uint16{
		0b1000, // x∧y
		0b0100, // x∧¬y... bit r encodes row; row 2 = x=0,y=1
		0b0010,
		0b0001,
		0b0111, // nand
		0b1110, // or
	}
	for _, tb := range tables {
		if len(m.byArity[2][tb]) == 0 {
			t.Fatalf("no match for 2-input table %04b", tb)
		}
	}
}

func BenchmarkMapArea(b *testing.B) {
	lib := celllib.Generic70()
	rng := rand.New(rand.NewSource(106))
	g := randomGraph(rng, 10, 600, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(g, lib, Area); err != nil {
			b.Fatal(err)
		}
	}
}
