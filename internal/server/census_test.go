package server

import (
	"context"
	"io"
	"net/http"
	"testing"

	"relsyn/internal/census"
)

// withFreshCensusEngine swaps census.Default for a private engine so
// tests that touch the process-global census cache stay isolated.
func withFreshCensusEngine(t *testing.T) *census.Engine {
	t.Helper()
	old := census.Default
	eng := census.NewEngine(64, 1<<22)
	census.SetDefault(eng)
	t.Cleanup(func() { census.SetDefault(old) })
	return eng
}

// The census endpoint is read-only: a primed census round-trips in the
// RSC1 wire format, an unknown hash is a plain 404, and serving never
// triggers a computation.
func TestCensusEndpoint(t *testing.T) {
	eng := withFreshCensusEngine(t)
	shards, _ := newClusterShards(t, 1)
	sh := shards[0]

	text := clusterSpecPLA(1)
	fn, hash, err := parseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := census.Compute(context.Background(), fn, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng.Prime(hash, fc)

	resp, err := http.Get(sh.ts.URL + "/v1/census/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/census/{hash} = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("Content-Type = %q, want application/octet-stream", ct)
	}
	got, err := census.UnmarshalBinary(body)
	if err != nil {
		t.Fatalf("wire round trip: %v", err)
	}
	if !got.Matches(fn) {
		t.Fatal("round-tripped census does not match the spec it was built from")
	}

	resp, err = http.Get(sh.ts.URL + "/v1/census/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown hash = %d, want 404", resp.StatusCode)
	}
	if sh.backend.count(hash) != 0 {
		t.Fatal("census GET triggered a computation on the serving shard")
	}
}

// A non-owner shard pulls the owner's cached census over the wire: the
// fetch goes through the peer client, unmarshals, matches the spec, and
// bumps relsyn_cluster_census_fill_hits_total. An owner the ring maps to
// self is not a fill candidate at all.
func TestPeerCensusFill(t *testing.T) {
	eng := withFreshCensusEngine(t)
	shards, peers := newClusterShards(t, 2)
	used := map[string]bool{}
	text, hash := specOwnedBy(t, peers, shards[0].addr, used)
	fn, _, err := parseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := census.Compute(context.Background(), fn, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng.Prime(hash, fc)

	got, ok := shards[1].srv.peers.fetchCensus(context.Background(), hash)
	if !ok {
		t.Fatal("non-owner failed to fetch census from its ring owner")
	}
	if !got.Matches(fn) {
		t.Fatal("fetched census does not match the spec")
	}
	if h := shards[1].srv.peers.censusHits.Value(); h != 1 {
		t.Fatalf("census fill hits = %d, want 1", h)
	}

	// Self-owned hash: no peer to ask, no counter movement.
	selfText, selfHash := specOwnedBy(t, peers, shards[1].addr, used)
	_ = selfText
	if _, ok := shards[1].srv.peers.fetchCensus(context.Background(), selfHash); ok {
		t.Fatal("self-owned census reported a peer-fill hit")
	}
	if m := shards[1].srv.peers.censusMisses.Value(); m != 0 {
		t.Fatalf("self-owned fetch counted a miss: %d", m)
	}

	// Owner not holding the census: counted as a fill miss.
	missText, missHash := specOwnedBy(t, peers, shards[0].addr, used)
	_ = missText
	if _, ok := shards[1].srv.peers.fetchCensus(context.Background(), missHash); ok {
		t.Fatal("fetch reported a hit for a census the owner never computed")
	}
	if m := shards[1].srv.peers.censusMisses.Value(); m != 1 {
		t.Fatalf("census fill misses = %d, want 1", m)
	}
}
