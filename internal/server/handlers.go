// HTTP/JSON front end.
//
// Endpoints:
//
//	POST /v1/synth        submit one job ({"pla": "...", "options": {...},
//	                      "priority": 0, "wait": true}); wait=false returns
//	                      202 + job id for later polling
//	POST /v1/synth/batch  submit many jobs ({"jobs": [...]}), wait for all
//	POST /v1/resyn        reassign the internal don't-cares of a BLIF
//	                      network ({"blif": "...", "options": {...}}) —
//	                      synchronous, returns the NetworkJobResult plus
//	                      the rewritten network as BLIF
//	GET  /v1/jobs/{id}    poll a job
//	GET  /healthz         health JSON: {"status":"ok"|"degraded"|"draining",
//	                      "reasons":[...]}; 503 only while draining
//	GET  /statsz          queue/worker/cache counters as JSON
//	GET  /metrics         Prometheus text exposition (obs registry)
//
// Every route is wrapped in instrumentation middleware recording
// relsyn_http_requests_total{route,code}, a per-route latency histogram
// relsyn_http_request_duration_seconds{route}, and the
// relsyn_http_in_flight gauge.
//
// Status mapping: 400 malformed request or spec, 404 unknown job, 429
// queue full (with Retry-After), 503 draining, 200/202 otherwise. A job
// that *ran* and failed is reported inside a 200 envelope with
// status "failed" — the request was served; the job outcome is data.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"relsyn/internal/blif"
	"relsyn/internal/census"
	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
	"relsyn/internal/pla"
	"relsyn/internal/tt"
)

const maxBodyBytes = 8 << 20

// SynthRequest is the POST /v1/synth body.
type SynthRequest struct {
	// PLA is the specification in Espresso .pla format.
	PLA string `json:"pla"`
	// Options configures the pipeline job (all fields optional).
	Options pipeline.JobOptions `json:"options"`
	// Priority orders the queue; higher dequeues first (default 0).
	Priority int `json:"priority"`
	// Wait, when false, returns 202 immediately with a job id.
	// Default true.
	Wait *bool `json:"wait,omitempty"`
}

func (r *SynthRequest) wait() bool { return r.Wait == nil || *r.Wait }

// SynthResponse is the envelope for job submissions and polls.
type SynthResponse struct {
	JobID     string              `json:"job_id,omitempty"`
	Status    string              `json:"status"`
	Cached    bool                `json:"cached,omitempty"`
	Coalesced bool                `json:"coalesced,omitempty"`
	Result    *pipeline.JobResult `json:"result,omitempty"`
	Error     string              `json:"error,omitempty"`
}

// BatchRequest is the POST /v1/synth/batch body.
type BatchRequest struct {
	Jobs []SynthRequest `json:"jobs"`
}

// BatchResponse mirrors the request order one envelope per job.
type BatchResponse struct {
	Results []SynthResponse `json:"results"`
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(name, h))
	}
	route("POST /v1/synth", "/v1/synth", s.handleSynth)
	route("POST /v1/synth/batch", "/v1/synth/batch", s.handleBatch)
	route("POST /v1/resyn", "/v1/resyn", s.handleResyn)
	route("GET /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJob)
	route("GET /v1/cache/{key}", "/v1/cache/{key}", s.handleCacheGet)
	route("GET /v1/census/{hash}", "/v1/census/{hash}", s.handleCensusGet)
	route("GET /healthz", "/healthz", s.handleHealthz)
	route("GET /statsz", "/statsz", s.handleStatsz)
	route("GET /metrics", "/metrics", s.handleMetrics)
	return mux
}

// statusWriter captures the response code for the request counter. The
// zero code means WriteHeader was never called (implicit 200 on first
// Write, or a hijacked/abandoned connection); it is reported as 200.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route handler with the HTTP metrics. The route
// label is the registered pattern (bounded cardinality: path parameters
// stay as placeholders, never raw client input).
func (s *Server) instrument(routeName string, h http.HandlerFunc) http.Handler {
	reg := s.cfg.Metrics
	reg.SetHelp("relsyn_http_requests_total", "HTTP requests served, by route and status code.")
	reg.SetHelp("relsyn_http_request_duration_seconds", "HTTP request latency, by route.")
	reg.SetHelp("relsyn_http_in_flight", "HTTP requests currently being served.")
	routeL := obs.L("route", routeName)
	dur := reg.Histogram("relsyn_http_request_duration_seconds", routeL)
	inFlight := reg.Gauge("relsyn_http_in_flight")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		inFlight.Add(-1)
		dur.Observe(time.Since(start).Seconds())
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		reg.Counter("relsyn_http_requests_total", routeL,
			obs.L("code", strconv.Itoa(code))).Inc()
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, SynthResponse{Status: "error", Error: fmt.Sprintf(format, args...)})
}

// parseSpec turns a request's PLA text into a dense function plus its
// content hash.
func parseSpec(text string) (*tt.Function, string, error) {
	if strings.TrimSpace(text) == "" {
		return nil, "", errors.New("empty pla")
	}
	file, err := pla.Parse(strings.NewReader(text))
	if err != nil {
		return nil, "", err
	}
	fn, err := file.ToFunction()
	if err != nil {
		return nil, "", err
	}
	return fn, pla.HashFunction(fn), nil
}

// submitRequest runs the shared admission path for single and batch
// submissions. The returned response is terminal for rejected/invalid
// submissions; otherwise outcome carries the job handle.
func (s *Server) submitRequest(req *SynthRequest) (*SubmitOutcome, *SynthResponse) {
	fn, hash, err := parseSpec(req.PLA)
	if err != nil {
		return nil, &SynthResponse{Status: "invalid", Error: fmt.Sprintf("parse pla: %v", err)}
	}
	out, err := s.SubmitSpec(fn, hash, req.PLA, req.Options, req.Priority)
	switch {
	case errors.Is(err, ErrQueueFull):
		return nil, &SynthResponse{Status: "rejected", Error: err.Error()}
	case errors.Is(err, ErrDraining):
		return nil, &SynthResponse{Status: "draining", Error: err.Error()}
	case err != nil:
		return nil, &SynthResponse{Status: "invalid", Error: err.Error()}
	}
	return out, nil
}

// respond renders a finished (or polled) job state.
func respond(js *jobState, cached, coalesced bool) SynthResponse {
	status, res, errMsg := js.snapshot()
	return SynthResponse{
		JobID:     js.id,
		Status:    status,
		Cached:    cached,
		Coalesced: coalesced,
		Result:    res,
		Error:     errMsg,
	}
}

func (s *Server) handleSynth(w http.ResponseWriter, r *http.Request) {
	var req SynthRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	out, rejected := s.submitRequest(&req)
	if rejected != nil {
		s.writeRejection(w, rejected)
		return
	}
	js := out.Job
	if !req.wait() {
		writeJSON(w, http.StatusAccepted, respond(js, out.Cached, out.Coalesced))
		return
	}
	select {
	case <-js.done:
		writeJSON(w, http.StatusOK, respond(js, out.Cached, out.Coalesced))
	case <-r.Context().Done():
		// Client gone; the job keeps running and lands in the cache.
	}
}

func (s *Server) writeRejection(w http.ResponseWriter, resp *SynthResponse) {
	switch resp.Status {
	case "rejected":
		w.Header().Set("Retry-After",
			strconv.Itoa(int(max64(1, int64(s.cfg.RetryAfter.Seconds())))))
		writeJSON(w, http.StatusTooManyRequests, resp)
	case "draining":
		writeJSON(w, http.StatusServiceUnavailable, resp)
	default:
		writeJSON(w, http.StatusBadRequest, resp)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	// Admit everything first so duplicates coalesce within the batch,
	// then wait; per-item rejections ride along inline.
	type slot struct {
		out  *SubmitOutcome
		resp *SynthResponse
	}
	slots := make([]slot, len(req.Jobs))
	for i := range req.Jobs {
		out, rejected := s.submitRequest(&req.Jobs[i])
		slots[i] = slot{out: out, resp: rejected}
	}
	results := make([]SynthResponse, len(slots))
	for i, sl := range slots {
		if sl.resp != nil {
			results[i] = *sl.resp
			continue
		}
		select {
		case <-sl.out.Job.done:
		case <-r.Context().Done():
			writeError(w, http.StatusRequestTimeout, "client cancelled batch")
			return
		}
		results[i] = respond(sl.out.Job, sl.out.Cached, sl.out.Coalesced)
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// ResynRequest is the POST /v1/resyn body: a combinational BLIF network
// plus network-job options (method defaults to "lcf", threshold to 0.55;
// dc_mode/window_tfi/window_tfo pick the DC-extraction engine).
type ResynRequest struct {
	// BLIF is the network in Berkeley Logic Interchange Format
	// (combinational subset: .model/.inputs/.outputs/.names).
	BLIF string `json:"blif"`
	// Options configures the network job (all fields optional).
	Options pipeline.JobOptions `json:"options"`
}

// ResynResponse is the envelope for network-reassignment jobs. On
// success BLIF carries the rewritten, PO-equivalent network.
type ResynResponse struct {
	Status string                     `json:"status"`
	Result *pipeline.NetworkJobResult `json:"result,omitempty"`
	BLIF   string                     `json:"blif,omitempty"`
	Error  string                     `json:"error,omitempty"`
}

// handleResyn runs one network-reassignment job synchronously on the
// request goroutine. Network jobs bypass the queue/cache tier — their
// identity would need a network content hash, and the windowed engine is
// built to stay cheap at sizes the exhaustive one cannot touch — so the
// handler is bounded only by the server's timeout policy and the job's
// own budgets. A job that ran and failed reports inside a 200 envelope
// with status "failed", like /v1/synth.
func (s *Server) handleResyn(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ResynResponse{Status: "draining", Error: ErrDraining.Error()})
		return
	}
	var req ResynRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ResynResponse{Status: "invalid", Error: fmt.Sprintf("decode request: %v", err)})
		return
	}
	if strings.TrimSpace(req.BLIF) == "" {
		writeJSON(w, http.StatusBadRequest, ResynResponse{Status: "invalid", Error: "empty blif"})
		return
	}
	nw, err := blif.Parse(strings.NewReader(req.BLIF))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ResynResponse{Status: "invalid", Error: fmt.Sprintf("parse blif: %v", err)})
		return
	}
	jo := req.Options
	if jo.Method == "" {
		jo.Method = pipeline.JobMethodLCF
	}
	if jo.Method == pipeline.JobMethodLCF && jo.Threshold == 0 {
		jo.Threshold = 0.55
	}
	// Same timeout policy as Submit: server default when the request
	// carries none, capped at MaxTimeout.
	if jo.TimeoutMs == 0 {
		jo.TimeoutMs = s.cfg.DefaultTimeout.Milliseconds()
	}
	if max := s.cfg.MaxTimeout.Milliseconds(); jo.TimeoutMs > max {
		jo.TimeoutMs = max
	}
	jo = jo.Normalize()
	if err := jo.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, ResynResponse{Status: "invalid", Error: err.Error()})
		return
	}
	res, err := s.cfg.ResynBackend(r.Context(), nw, jo)
	if err != nil {
		writeJSON(w, http.StatusOK, ResynResponse{Status: StatusFailed, Result: res, Error: err.Error()})
		return
	}
	var sb strings.Builder
	if err := blif.WriteNetwork(&sb, res.Network, "relsyn"); err != nil {
		writeJSON(w, http.StatusInternalServerError, ResynResponse{Status: StatusFailed, Result: res, Error: fmt.Sprintf("emit blif: %v", err)})
		return
	}
	writeJSON(w, http.StatusOK, ResynResponse{Status: StatusDone, Result: res, BLIF: sb.String()})
}

// handleCacheGet is the intra-cluster cache-fill protocol: a peer shard
// probing for a finished result by full cache key ("<spec hash>|<options
// key>"). Read-only — a probe never enqueues work and never initiates
// fetches of its own, so shard-to-shard fills cannot cascade or loop.
// Registered unconditionally: on a non-clustered node it is just a
// cache inspection endpoint.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	res, ok := s.cache.Get(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, SynthResponse{Status: "miss"})
		return
	}
	writeJSON(w, http.StatusOK, SynthResponse{Status: StatusDone, Cached: true, Result: res})
}

// handleCensusGet is the census half of the intra-cluster fill
// protocol: a peer shard probing for a cached fused neighbor census by
// bare spec hash (censuses are options-independent, so the key carries
// no options half). The payload is the internal/census binary wire
// format. Read-only and non-computing, like handleCacheGet — a probe
// never builds a census, so shard-to-shard fills cannot cascade.
func (s *Server) handleCensusGet(w http.ResponseWriter, r *http.Request) {
	eng := census.Default
	if eng == nil {
		writeJSON(w, http.StatusNotFound, SynthResponse{Status: "miss"})
		return
	}
	fc, ok := eng.Peek(r.PathValue("hash"))
	if !ok {
		writeJSON(w, http.StatusNotFound, SynthResponse{Status: "miss"})
		return
	}
	buf, err := fc.MarshalBinary()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode census: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	js, ok := s.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, respond(js, false, false))
}

// handleHealthz reports ok / degraded / draining with a JSON body.
// Draining maps to 503 (stop routing here); degraded stays 200 — the
// service still serves, but the body tells operators it is shedding
// durability (store circuit open) or saturated (queue full).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	code := http.StatusOK
	if h.Status == "draining" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatszPayload{
		Stats:   s.Stats(),
		Metrics: s.cfg.Metrics.Snapshot(),
	})
}

// StatszPayload is the enriched /statsz body: the classic service
// counters plus a full snapshot of the observability registry (every
// counter/gauge series and histogram quantiles), so operators get one
// JSON view of everything /metrics exports.
type StatszPayload struct {
	Stats
	Metrics obs.Snapshot `json:"metrics"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Metrics.WritePrometheus(w)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
