package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"relsyn/internal/cluster"
	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
	"relsyn/internal/pla"
	"relsyn/internal/tt"
)

// cacheKeyFor computes the server's cache key for a spec submitted with
// default options: SubmitSpec applies DefaultTimeout before normalizing,
// so the options half of the key carries the default timeout.
func cacheKeyFor(t *testing.T, plaText string, defaultTimeout time.Duration) string {
	t.Helper()
	_, hash, err := parseSpec(plaText)
	if err != nil {
		t.Fatalf("parseSpec: %v", err)
	}
	jo := pipeline.JobOptions{TimeoutMs: defaultTimeout.Milliseconds()}.Normalize()
	return hash + "|" + jo.Key()
}

func TestCacheEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Metrics: obs.NewRegistry()})

	text := specPLA(1)
	resp, body := postJSON(t, ts.URL+"/v1/synth", map[string]any{"pla": text})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synth status %d: %s", resp.StatusCode, body)
	}

	key := cacheKeyFor(t, text, 30*time.Second)
	var env SynthResponse
	cresp := getJSON(t, ts.URL+"/v1/cache/"+url.PathEscape(key), &env)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit status %d", cresp.StatusCode)
	}
	if env.Status != StatusDone || !env.Cached || env.Result == nil {
		t.Fatalf("cache hit envelope = %+v, want done/cached with result", env)
	}

	cresp = getJSON(t, ts.URL+"/v1/cache/"+url.PathEscape("no-such|key"), &env)
	if cresp.StatusCode != http.StatusNotFound {
		t.Fatalf("cache miss status %d, want 404", cresp.StatusCode)
	}
}

// countingBackend counts executions per spec hash.
type countingBackend struct {
	mu    sync.Mutex
	runs  map[string]int
	delay time.Duration
}

func (b *countingBackend) backend() Backend {
	return func(ctx context.Context, f *tt.Function, jo pipeline.JobOptions) (*pipeline.JobResult, error) {
		b.mu.Lock()
		if b.runs == nil {
			b.runs = make(map[string]int)
		}
		b.runs[pla.HashFunction(f)]++
		b.mu.Unlock()
		if b.delay > 0 {
			select {
			case <-time.After(b.delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return pipeline.RunJob(ctx, f, jo)
	}
}

func (b *countingBackend) count(hash string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runs[hash]
}

// clusterShard is one in-process cluster-aware relsynd.
type clusterShard struct {
	addr    string
	ln      net.Listener
	srv     *Server
	ts      *httptest.Server
	backend *countingBackend
	reg     *obs.Registry
}

// newClusterShards boots n shards that all know each other: listeners
// first (so the full membership is known before any server starts), then
// servers.
func newClusterShards(t *testing.T, n int) ([]*clusterShard, []string) {
	t.Helper()
	shards := make([]*clusterShard, n)
	peers := make([]string, n)
	for i := range shards {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = &clusterShard{addr: ln.Addr().String(), ln: ln}
		peers[i] = shards[i].addr
	}
	for _, sh := range shards {
		sh.backend = &countingBackend{}
		sh.reg = obs.NewRegistry()
		sh.srv = New(Config{
			Workers:  2,
			Metrics:  sh.reg,
			Backend:  sh.backend.backend(),
			Peers:    peers,
			SelfAddr: sh.addr,
		})
		sh.ts = &httptest.Server{Listener: sh.ln, Config: &http.Server{Handler: sh.srv.Handler()}}
		sh.ts.Start()
		sh := sh
		t.Cleanup(func() {
			sh.ts.Close()
			sh.srv.Close()
		})
	}
	return shards, peers
}

// clusterSpecPLA builds a tiny but distinct 4-input spec per seed. An
// odd multiplier is a bijection mod 2^16, so the low 16 bits of
// seed*40503 pick a distinct on-set for every seed below 65536 — the
// ownership search must never run out of candidates, however the
// ephemeral-port peer addresses happen to split the ring. (specPLA has
// period 16 in seed, which is not enough here.)
func clusterSpecPLA(seed int) string {
	bits := seed * 40503 & 0xffff
	dc := (seed*7 + 5) % 16
	bits &^= 1 << dc
	if bits == 0 {
		bits = 1 << ((dc + 1) % 16)
	}
	var b strings.Builder
	b.WriteString(".i 4\n.o 1\n")
	for m := 0; m < 16; m++ {
		if bits>>m&1 == 1 {
			fmt.Fprintf(&b, "%04b 1\n", m)
		}
	}
	fmt.Fprintf(&b, "%04b -\n", dc)
	b.WriteString(".e\n")
	return b.String()
}

// specOwnedBy finds a spec whose ring owner is peers[idx]; keys already
// used are excluded via the used set.
func specOwnedBy(t *testing.T, peers []string, owner string, used map[string]bool) (plaText, hash string) {
	t.Helper()
	ring, err := cluster.NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < 2000; seed++ {
		text := clusterSpecPLA(seed)
		_, h, err := parseSpec(text)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if used[h] || ring.Owner(h) != owner {
			continue
		}
		used[h] = true
		return text, h
	}
	t.Fatalf("no unused seed < 2000 owned by %s", owner)
	return "", ""
}

func TestPeerFillHit(t *testing.T) {
	shards, peers := newClusterShards(t, 2)
	used := map[string]bool{}
	text, hash := specOwnedBy(t, peers, shards[0].addr, used)

	// Owner computes it once.
	resp, body := postJSON(t, shards[0].ts.URL+"/v1/synth", map[string]any{"pla": text})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner synth status %d: %s", resp.StatusCode, body)
	}
	if got := shards[0].backend.count(hash); got != 1 {
		t.Fatalf("owner backend runs = %d, want 1", got)
	}

	// The non-owner gets the same spec (as if hedged or client-routed
	// around the ring): it must fetch, not recompute.
	resp, body = postJSON(t, shards[1].ts.URL+"/v1/synth", map[string]any{"pla": text})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-owner synth status %d: %s", resp.StatusCode, body)
	}
	var env SynthResponse
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Status != StatusDone || env.Result == nil {
		t.Fatalf("non-owner envelope = %+v", env)
	}
	if got := shards[1].backend.count(hash); got != 0 {
		t.Fatalf("non-owner backend runs = %d, want 0 (peer fill must prevent recompute)", got)
	}
	if hits := shards[1].srv.peers.hits.Value(); hits != 1 {
		t.Fatalf("peer_fill_hits = %d, want 1", hits)
	}
	if misses := shards[1].srv.peers.misses.Value(); misses != 0 {
		t.Fatalf("peer_fill_misses = %d, want 0", misses)
	}
}

func TestPeerFillMissComputesLocally(t *testing.T) {
	shards, peers := newClusterShards(t, 2)
	used := map[string]bool{}
	// Owned by shard 0, but shard 0 never saw it: shard 1's fill probe
	// misses and it computes locally.
	text, hash := specOwnedBy(t, peers, shards[0].addr, used)

	resp, body := postJSON(t, shards[1].ts.URL+"/v1/synth", map[string]any{"pla": text})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synth status %d: %s", resp.StatusCode, body)
	}
	if got := shards[1].backend.count(hash); got != 1 {
		t.Fatalf("backend runs = %d, want 1", got)
	}
	if misses := shards[1].srv.peers.misses.Value(); misses != 1 {
		t.Fatalf("peer_fill_misses = %d, want 1", misses)
	}
	if hits := shards[1].srv.peers.hits.Value(); hits != 0 {
		t.Fatalf("peer_fill_hits = %d, want 0", hits)
	}

	// Self-owned keys are not fill candidates: no counter movement.
	selfText, selfHash := specOwnedBy(t, peers, shards[1].addr, used)
	resp, body = postJSON(t, shards[1].ts.URL+"/v1/synth", map[string]any{"pla": selfText})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("self-owned synth status %d: %s", resp.StatusCode, body)
	}
	if got := shards[1].backend.count(selfHash); got != 1 {
		t.Fatalf("self-owned backend runs = %d, want 1", got)
	}
	if misses := shards[1].srv.peers.misses.Value(); misses != 1 {
		t.Fatalf("peer_fill_misses moved to %d on a self-owned key", misses)
	}
}

// A dead owner costs a few misses, then the breaker opens and fills
// skip it — jobs still complete locally throughout.
func TestPeerFillDeadOwnerOpensBreaker(t *testing.T) {
	shards, peers := newClusterShards(t, 2)
	used := map[string]bool{}

	// Kill shard 0 outright; its address now refuses connections.
	shards[0].ts.Close()
	shards[0].srv.Close()

	victim := shards[0].addr
	surv := shards[1]
	for i := 0; i < 4; i++ {
		text, hash := specOwnedBy(t, peers, victim, used)
		resp, body := postJSON(t, surv.ts.URL+"/v1/synth", map[string]any{"pla": text})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d status %d: %s", i, resp.StatusCode, body)
		}
		if got := surv.backend.count(hash); got != 1 {
			t.Fatalf("submit %d: backend runs = %d, want 1", i, got)
		}
	}
	if misses := surv.srv.peers.misses.Value(); misses != 4 {
		t.Fatalf("peer_fill_misses = %d, want 4", misses)
	}
	if !surv.srv.peers.peers[victim].breaker.Degraded() {
		t.Fatal("dead owner's breaker still closed after repeated failures")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with SelfAddr outside Peers must panic")
		}
	}()
	New(Config{
		Metrics:  obs.NewRegistry(),
		Peers:    []string{"a:1", "b:2"},
		SelfAddr: "c:3",
	})
}
