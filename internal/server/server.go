// Package server is the long-running synthesis service: a bounded job
// queue (internal/jobqueue) feeding a fixed worker pool that executes
// pipeline jobs (internal/pipeline.RunJob), fronted by an HTTP/JSON API
// and a content-addressed result cache.
//
// Request identity is the pair (spec content hash, normalized job
// options): internal/pla.HashFunction collapses cube order, redundant
// cubes, and logic-type encodings, and pipeline.JobOptions.Normalize
// collapses equivalent option structs. Identical requests therefore
//
//   - coalesce while in flight (internal/flight: one queue slot, one
//     worker execution, any number of waiters), and
//   - hit the LRU result cache (internal/lru) afterwards.
//
// Overload is explicit: a full queue rejects with ErrQueueFull, which
// the HTTP layer maps to 429 + Retry-After. Shutdown is graceful: Drain
// stops admissions, lets the workers finish the backlog, and only then
// returns — the service half of relsynd's SIGTERM handling.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"relsyn/internal/flight"
	"relsyn/internal/jobqueue"
	"relsyn/internal/lru"
	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
	"relsyn/internal/tt"
)

// Service-level errors surfaced by Submit.
var (
	// ErrQueueFull reports backpressure: the job queue is at capacity.
	ErrQueueFull = errors.New("server: queue full")
	// ErrDraining reports that the server no longer admits work.
	ErrDraining = errors.New("server: draining")
)

// Backend executes one synthesis job. The default is pipeline.RunJob;
// tests (and future remote/sharded backends) substitute their own.
type Backend func(ctx context.Context, f *tt.Function, opt pipeline.JobOptions) (*pipeline.JobResult, error)

// Config sizes the service.
type Config struct {
	// Workers is the worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue (default 256).
	QueueDepth int
	// CacheSize bounds the result cache in entries (default 512; 0 with
	// DisableCache set disables caching).
	CacheSize int
	// DisableCache turns the result cache off even if CacheSize is 0
	// (meaning "default") elsewhere.
	DisableCache bool
	// DefaultTimeout is applied to jobs that carry no timeout_ms
	// (default 30s). It bounds queue wait plus execution.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested per-job timeout (default 5m).
	MaxTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxJobStates bounds the finished-job registry served by
	// GET /v1/jobs/{id} (default 4096).
	MaxJobStates int
	// Backend overrides the job executor (default pipeline.RunJob).
	Backend Backend
	// Metrics is the observability registry the server (and its queue,
	// cache, and singleflight group) exports on GET /metrics. Default:
	// obs.Default, which also carries the pipeline stage metrics. Tests
	// pass a fresh registry for isolation.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 512
	}
	if c.DisableCache {
		c.CacheSize = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobStates <= 0 {
		c.MaxJobStates = 4096
	}
	if c.Backend == nil {
		c.Backend = pipeline.RunJob
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default
	}
	return c
}

// Job lifecycle states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
	StatusExpired = "expired"
)

// jobState is the shared handle for one logical job: the queue item's
// payload, the singleflight value, and the registry entry all point at
// the same state. Result/Err are written exactly once before done is
// closed; poll reads go through the mutex.
type jobState struct {
	id  string
	key string

	mu       sync.Mutex
	status   string
	result   *pipeline.JobResult
	err      string
	created  time.Time
	finished time.Time

	done   chan struct{}
	cancel context.CancelFunc
}

func (js *jobState) setRunning() {
	js.mu.Lock()
	if js.status == StatusQueued {
		js.status = StatusRunning
	}
	js.mu.Unlock()
}

// finish publishes the terminal state exactly once.
func (js *jobState) finish(status string, res *pipeline.JobResult, err error) {
	js.mu.Lock()
	if js.status == StatusDone || js.status == StatusFailed || js.status == StatusExpired {
		js.mu.Unlock()
		return
	}
	js.status = status
	js.result = res
	if err != nil {
		js.err = err.Error()
	}
	js.finished = time.Now()
	js.mu.Unlock()
	if js.cancel != nil {
		js.cancel()
	}
	close(js.done)
}

func (js *jobState) snapshot() (status string, res *pipeline.JobResult, errMsg string) {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.status, js.result, js.err
}

func (js *jobState) isFinished() bool {
	select {
	case <-js.done:
		return true
	default:
		return false
	}
}

// work is the queue payload.
type work struct {
	state *jobState
	ctx   context.Context
	fn    *tt.Function
	opts  pipeline.JobOptions
}

// counters are the service-level job metrics, exported both on /statsz
// (JSON) and /metrics (Prometheus). They are obs series registered in
// New — a single source of truth for both views. Cache hit/miss/evict
// and coalescing counters live in the cache and flight group themselves.
type counters struct {
	submitted   obs.Counter
	completed   obs.Counter
	failed      obs.Counter
	rejected    obs.Counter
	expired     obs.Counter
	busyWorkers obs.Gauge
}

// Server is the concurrent synthesis service.
type Server struct {
	cfg     Config
	baseCtx context.Context
	stop    context.CancelFunc

	queue *jobqueue.Queue
	cache *lru.Cache[string, *pipeline.JobResult]
	inFly flight.Group[*jobState]

	mu       sync.Mutex
	jobs     map[string]*jobState
	jobOrder []string

	wg       sync.WaitGroup
	draining atomic.Bool
	started  time.Time
	c        counters
}

// New builds and starts a server: the worker pool begins consuming
// immediately. Callers must eventually Drain (or Close) it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	reg := cfg.Metrics
	s := &Server{
		cfg:     cfg,
		baseCtx: ctx,
		stop:    cancel,
		queue:   jobqueue.NewWithRegistry(cfg.QueueDepth, reg),
		cache:   lru.New[string, *pipeline.JobResult](cfg.CacheSize),
		jobs:    make(map[string]*jobState),
		started: time.Now(),
	}
	s.cache.Instrument(reg, "results")
	s.inFly.Instrument(reg, "synth")
	reg.SetHelp("relsyn_jobs_submitted_total", "Jobs submitted (before cache/coalesce short-circuits).")
	reg.SetHelp("relsyn_jobs_completed_total", "Jobs that ran to a successful result.")
	reg.SetHelp("relsyn_jobs_failed_total", "Jobs whose backend returned an error.")
	reg.SetHelp("relsyn_jobs_rejected_total", "Jobs refused at admission (queue full).")
	reg.SetHelp("relsyn_jobs_expired_total", "Jobs whose deadline passed before execution.")
	reg.SetHelp("relsyn_workers", "Configured worker-pool size.")
	reg.SetHelp("relsyn_workers_busy", "Workers currently executing a job.")
	reg.RegisterCounter("relsyn_jobs_submitted_total", &s.c.submitted)
	reg.RegisterCounter("relsyn_jobs_completed_total", &s.c.completed)
	reg.RegisterCounter("relsyn_jobs_failed_total", &s.c.failed)
	reg.RegisterCounter("relsyn_jobs_rejected_total", &s.c.rejected)
	reg.RegisterCounter("relsyn_jobs_expired_total", &s.c.expired)
	reg.RegisterGauge("relsyn_workers_busy", &s.c.busyWorkers)
	reg.GaugeFunc("relsyn_workers", func() float64 { return float64(cfg.Workers) })
	reg.GaugeFunc("relsyn_draining", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// SubmitOutcome reports how a submission was satisfied.
type SubmitOutcome struct {
	Job *jobState
	// Cached: served directly from the result cache (already done).
	Cached bool
	// Coalesced: joined an identical in-flight job.
	Coalesced bool
}

// Submit admits one job: cache lookup, in-flight coalescing, then queue
// admission. The returned state's done channel closes when the result
// (or error) is available. priority orders the queue (higher first).
func (s *Server) Submit(fn *tt.Function, specHash string, jo pipeline.JobOptions, priority int) (*SubmitOutcome, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	// Server defaults are applied before normalization so that an
	// explicit timeout equal to the default and an omitted timeout key
	// identically.
	if jo.TimeoutMs == 0 {
		jo.TimeoutMs = s.cfg.DefaultTimeout.Milliseconds()
	}
	if max := s.cfg.MaxTimeout.Milliseconds(); jo.TimeoutMs > max {
		jo.TimeoutMs = max
	}
	jo = jo.Normalize()
	if err := jo.Validate(); err != nil {
		return nil, err
	}
	s.c.submitted.Inc()
	key := specHash + "|" + jo.Key()

	// The cache counts its own hits/misses (lru.Instrument).
	if res, ok := s.cache.Get(key); ok {
		js := s.completedState(key, res)
		s.register(js)
		return &SubmitOutcome{Job: js, Cached: true}, nil
	}

	js, started, err := s.inFly.Do(key, func() (*jobState, error) {
		js := &jobState{
			id:      newJobID(),
			key:     key,
			status:  StatusQueued,
			created: time.Now(),
			done:    make(chan struct{}),
		}
		ctx, cancel := context.WithTimeout(s.baseCtx,
			time.Duration(jo.TimeoutMs)*time.Millisecond)
		js.cancel = cancel
		item := &jobqueue.Item{
			ID:       js.id,
			Priority: priority,
			Ctx:      ctx,
			Payload:  &work{state: js, ctx: ctx, fn: fn, opts: jo},
			OnExpire: func() { s.expireJob(js) },
		}
		if err := s.queue.Enqueue(item); err != nil {
			cancel()
			switch {
			case errors.Is(err, jobqueue.ErrFull):
				s.c.rejected.Inc()
				return nil, ErrQueueFull
			case errors.Is(err, jobqueue.ErrClosed):
				return nil, ErrDraining
			default:
				return nil, err
			}
		}
		return js, nil
	})
	if err != nil {
		return nil, err
	}
	if !started {
		// The flight group counted the join (flight.Instrument).
		return &SubmitOutcome{Job: js, Coalesced: true}, nil
	}
	s.register(js)
	return &SubmitOutcome{Job: js}, nil
}

// Lookup returns the job registered under id.
func (s *Server) Lookup(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	return js, ok
}

// register adds js to the bounded job registry, evicting the oldest
// finished entries beyond MaxJobStates.
func (s *Server) register(js *jobState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[js.id] = js
	s.jobOrder = append(s.jobOrder, js.id)
	for len(s.jobOrder) > s.cfg.MaxJobStates {
		oldest := s.jobOrder[0]
		if old, ok := s.jobs[oldest]; ok && !old.isFinished() {
			break // never evict live jobs; backlog is bounded by the queue
		}
		delete(s.jobs, oldest)
		s.jobOrder = s.jobOrder[1:]
	}
}

// completedState wraps a cache hit in an immediately-done jobState so
// cached and computed responses share one shape.
func (s *Server) completedState(key string, res *pipeline.JobResult) *jobState {
	js := &jobState{
		id:      newJobID(),
		key:     key,
		status:  StatusDone,
		result:  res,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	js.finished = js.created
	close(js.done)
	return js
}

// expireJob marks a job dropped by the queue's deadline check. The
// waiters' error is typed: errors.Is(err, jobqueue.ErrExpired) holds.
func (s *Server) expireJob(js *jobState) {
	s.c.expired.Inc()
	js.finish(StatusExpired, nil, fmt.Errorf("server: job %s: %w", js.id, jobqueue.ErrExpired))
	s.inFly.Forget(js.key)
}

// worker consumes the queue until it is closed and drained (graceful
// drain) or the base context is cancelled (forced stop).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		item, err := s.queue.Dequeue(s.baseCtx)
		if err != nil {
			return
		}
		w := item.Payload.(*work)
		s.c.busyWorkers.Add(1)
		s.runJob(w)
		s.c.busyWorkers.Add(-1)
	}
}

// runJob executes one dequeued job and publishes its outcome: result
// into the cache (before the singleflight key is forgotten, so there is
// no window where duplicates recompute), state to all waiters.
//
// A job whose deadline passed between dequeue and execution (the queue
// only checks at dequeue time) is never handed to the backend: it is
// published as expired with the same typed jobqueue.ErrExpired cause as
// a queue-side drop, closing the race in which a just-expired job would
// burn worker time and surface as a generic "failed".
func (s *Server) runJob(w *work) {
	js := w.state
	if w.ctx.Err() != nil {
		s.expireJob(js)
		return
	}
	js.setRunning()
	res, err := s.cfg.Backend(w.ctx, w.fn, w.opts)
	if err != nil {
		s.c.failed.Inc()
		js.finish(StatusFailed, res, err)
		s.inFly.Forget(js.key)
		return
	}
	s.c.completed.Inc()
	s.cache.Add(js.key, res)
	js.finish(StatusDone, res, nil)
	s.inFly.Forget(js.key)
}

// Drain gracefully shuts the server down: stop admitting, let workers
// finish every queued and in-flight job, then return. If ctx expires
// first, remaining jobs are cancelled via the base context and Drain
// waits (briefly) for the workers to observe it.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stop()
		return nil
	case <-ctx.Done():
		s.stop() // cancel in-flight pipelines; they poll interrupts
		<-done
		return ctx.Err()
	}
}

// Close force-stops the server without waiting for the backlog.
func (s *Server) Close() {
	s.draining.Store(true)
	s.queue.Close()
	s.stop()
	s.wg.Wait()
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats is the /statsz payload.
type Stats struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Workers       int            `json:"workers"`
	BusyWorkers   int64          `json:"busy_workers"`
	Draining      bool           `json:"draining"`
	Queue         jobqueue.Stats `json:"queue"`
	Submitted     int64          `json:"submitted"`
	Completed     int64          `json:"completed"`
	Failed        int64          `json:"failed"`
	Rejected      int64          `json:"rejected"`
	Expired       int64          `json:"expired"`
	Coalesced     int64          `json:"coalesced"`
	Cache         lru.Stats      `json:"cache"`
	InFlightKeys  int            `json:"in_flight_keys"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	return Stats{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.cfg.Workers,
		BusyWorkers:   int64(s.c.busyWorkers.Value()),
		Draining:      s.draining.Load(),
		Queue:         s.queue.Stats(),
		Submitted:     s.c.submitted.Value(),
		Completed:     s.c.completed.Value(),
		Failed:        s.c.failed.Value(),
		Rejected:      s.c.rejected.Value(),
		Expired:       s.c.expired.Value(),
		Coalesced:     s.inFly.Stats().Coalesced,
		Cache:         s.cache.Stats(),
		InFlightKeys:  s.inFly.Len(),
	}
}

// RetryAfter returns the configured 429 retry hint.
func (s *Server) RetryAfter() time.Duration { return s.cfg.RetryAfter }

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: entropy unavailable: %v", err))
	}
	return "job_" + hex.EncodeToString(b[:])
}
