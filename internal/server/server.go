// Package server is the long-running synthesis service: a bounded job
// queue (internal/jobqueue) feeding a fixed worker pool that executes
// pipeline jobs (internal/pipeline.RunJob), fronted by an HTTP/JSON API
// and a content-addressed result cache.
//
// Request identity is the pair (spec content hash, normalized job
// options): internal/pla.HashFunction collapses cube order, redundant
// cubes, and logic-type encodings, and pipeline.JobOptions.Normalize
// collapses equivalent option structs. Identical requests therefore
//
//   - coalesce while in flight (internal/flight: one queue slot, one
//     worker execution, any number of waiters), and
//   - hit the LRU result cache (internal/lru) afterwards.
//
// Overload is explicit: a full queue rejects with ErrQueueFull, which
// the HTTP layer maps to 429 + Retry-After. Shutdown is graceful: Drain
// stops admissions, lets the workers finish the backlog, and only then
// returns — the service half of relsynd's SIGTERM handling.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"relsyn/internal/census"
	"relsyn/internal/flight"
	"relsyn/internal/jobqueue"
	"relsyn/internal/lru"
	"relsyn/internal/network"
	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
	"relsyn/internal/pla"
	"relsyn/internal/store"
	"relsyn/internal/tt"
)

// Service-level errors surfaced by Submit.
var (
	// ErrQueueFull reports backpressure: the job queue is at capacity.
	ErrQueueFull = errors.New("server: queue full")
	// ErrDraining reports that the server no longer admits work.
	ErrDraining = errors.New("server: draining")
	// ErrBackendPanic wraps a panic recovered from the job backend: the
	// job fails, the worker survives.
	ErrBackendPanic = errors.New("server: backend panic")
)

// Backend executes one synthesis job. The default is pipeline.RunJob;
// tests (and future remote/sharded backends) substitute their own.
type Backend func(ctx context.Context, f *tt.Function, opt pipeline.JobOptions) (*pipeline.JobResult, error)

// ResynBackend executes one network-reassignment job (POST /v1/resyn).
// The default is pipeline.RunNetworkJob; relsynd substitutes a wrapper
// that fills server-wide DC-mode and budget defaults.
type ResynBackend func(ctx context.Context, nw *network.Network, opt pipeline.JobOptions) (*pipeline.NetworkJobResult, error)

// Config sizes the service.
type Config struct {
	// Workers is the worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue (default 256).
	QueueDepth int
	// CacheSize bounds the result cache in entries (default 512; 0 with
	// DisableCache set disables caching).
	CacheSize int
	// DisableCache turns the result cache off even if CacheSize is 0
	// (meaning "default") elsewhere.
	DisableCache bool
	// DefaultTimeout is applied to jobs that carry no timeout_ms
	// (default 30s). It bounds queue wait plus execution.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested per-job timeout (default 5m).
	MaxTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxJobStates bounds the finished-job registry served by
	// GET /v1/jobs/{id} (default 4096).
	MaxJobStates int
	// Backend overrides the job executor (default pipeline.RunJob).
	Backend Backend
	// ResynBackend overrides the network-job executor behind POST
	// /v1/resyn (default pipeline.RunNetworkJob).
	ResynBackend ResynBackend
	// Store, when non-nil, makes accepted jobs durable: every lifecycle
	// transition is appended to the store's WAL, and Recover re-admits
	// interrupted work after a restart. nil keeps the pre-durability
	// volatile behavior.
	Store *store.Store
	// Breaker guards Store appends; persistent failures open it and the
	// server degrades to in-memory serving (relsyn_store_degraded=1)
	// instead of failing requests. Default: store.NewBreaker(0, 0)
	// (3 consecutive failures, 5s cooldown) when Store is set.
	Breaker *store.Breaker
	// Metrics is the observability registry the server (and its queue,
	// cache, and singleflight group) exports on GET /metrics. Default:
	// obs.Default, which also carries the pipeline stage metrics. Tests
	// pass a fresh registry for isolation.
	Metrics *obs.Registry
	// Peers, when non-empty, makes this shard cluster-aware: the full
	// fleet membership (including this node, matching every other node's
	// -peers flag) used to build the placement ring for peer cache fill.
	Peers []string
	// SelfAddr is this shard's own entry in Peers (required with Peers):
	// it pins which ring positions are local so the shard never fetches
	// from itself.
	SelfAddr string
	// PeerVNodes is the ring's virtual-node count per peer (default
	// cluster.DefaultVNodes). Must match the routers' setting.
	PeerVNodes int
	// PeerFillTimeout bounds one peer cache-fill fetch (default 1s) —
	// kept short because the fallback, computing locally, is always
	// available.
	PeerFillTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 512
	}
	if c.DisableCache {
		c.CacheSize = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobStates <= 0 {
		c.MaxJobStates = 4096
	}
	if c.Backend == nil {
		c.Backend = pipeline.RunJob
	}
	if c.ResynBackend == nil {
		c.ResynBackend = pipeline.RunNetworkJob
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default
	}
	return c
}

// Job lifecycle states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
	StatusExpired = "expired"
)

// jobState is the shared handle for one logical job: the queue item's
// payload, the singleflight value, and the registry entry all point at
// the same state. Result/Err are written exactly once before done is
// closed; poll reads go through the mutex.
type jobState struct {
	id  string
	key string

	mu       sync.Mutex
	status   string
	result   *pipeline.JobResult
	err      string
	created  time.Time
	finished time.Time
	// aliases are additional durable job IDs coalesced onto this state
	// during crash recovery; terminal persistence covers them too, so a
	// recovered duplicate's record does not stay "queued" forever.
	aliases []string

	done   chan struct{}
	cancel context.CancelFunc
}

func (js *jobState) addAlias(id string) {
	js.mu.Lock()
	js.aliases = append(js.aliases, id)
	js.mu.Unlock()
}

func (js *jobState) aliasIDs() []string {
	js.mu.Lock()
	defer js.mu.Unlock()
	return append([]string(nil), js.aliases...)
}

func (js *jobState) setRunning() {
	js.mu.Lock()
	if js.status == StatusQueued {
		js.status = StatusRunning
	}
	js.mu.Unlock()
}

// finish publishes the terminal state exactly once.
func (js *jobState) finish(status string, res *pipeline.JobResult, err error) {
	js.mu.Lock()
	if js.status == StatusDone || js.status == StatusFailed || js.status == StatusExpired {
		js.mu.Unlock()
		return
	}
	js.status = status
	js.result = res
	if err != nil {
		js.err = err.Error()
	}
	js.finished = time.Now()
	js.mu.Unlock()
	if js.cancel != nil {
		js.cancel()
	}
	close(js.done)
}

func (js *jobState) snapshot() (status string, res *pipeline.JobResult, errMsg string) {
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.status, js.result, js.err
}

func (js *jobState) isFinished() bool {
	select {
	case <-js.done:
		return true
	default:
		return false
	}
}

// work is the queue payload.
type work struct {
	state *jobState
	ctx   context.Context
	fn    *tt.Function
	opts  pipeline.JobOptions
}

// counters are the service-level job metrics, exported both on /statsz
// (JSON) and /metrics (Prometheus). They are obs series registered in
// New — a single source of truth for both views. Cache hit/miss/evict
// and coalescing counters live in the cache and flight group themselves.
type counters struct {
	submitted   obs.Counter
	completed   obs.Counter
	failed      obs.Counter
	rejected    obs.Counter
	expired     obs.Counter
	busyWorkers obs.Gauge
}

// Server is the concurrent synthesis service.
type Server struct {
	cfg     Config
	baseCtx context.Context
	stop    context.CancelFunc

	queue   *jobqueue.Queue
	cache   *lru.Cache[string, *pipeline.JobResult]
	inFly   flight.Group[*jobState]
	st      *store.Store
	breaker *store.Breaker
	peers   *peerFill // nil outside sharded deployments

	mu       sync.Mutex
	jobs     map[string]*jobState
	jobOrder []string

	wg       sync.WaitGroup
	draining atomic.Bool
	started  time.Time
	c        counters
}

// New builds and starts a server: the worker pool begins consuming
// immediately. Callers must eventually Drain (or Close) it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	reg := cfg.Metrics
	s := &Server{
		cfg:     cfg,
		baseCtx: ctx,
		stop:    cancel,
		queue:   jobqueue.NewWithRegistry(cfg.QueueDepth, reg),
		cache:   lru.New[string, *pipeline.JobResult](cfg.CacheSize),
		jobs:    make(map[string]*jobState),
		started: time.Now(),
	}
	s.cache.Instrument(reg, "results")
	s.inFly.Instrument(reg, "synth")
	if cfg.Store != nil {
		s.st = cfg.Store
		s.breaker = cfg.Breaker
		if s.breaker == nil {
			s.breaker = store.NewBreaker(0, 0)
		}
		s.breaker.Instrument(reg)
	}
	if len(cfg.Peers) > 0 {
		pf, err := newPeerFill(cfg, reg)
		if err != nil {
			// Cluster misconfiguration is a boot-time programmer/operator
			// error; cmd/relsynd validates its flags before reaching here.
			panic(err)
		}
		s.peers = pf
	}
	reg.SetHelp("relsyn_jobs_submitted_total", "Jobs submitted (before cache/coalesce short-circuits).")
	reg.SetHelp("relsyn_jobs_completed_total", "Jobs that ran to a successful result.")
	reg.SetHelp("relsyn_jobs_failed_total", "Jobs whose backend returned an error.")
	reg.SetHelp("relsyn_jobs_rejected_total", "Jobs refused at admission (queue full).")
	reg.SetHelp("relsyn_jobs_expired_total", "Jobs whose deadline passed before execution.")
	reg.SetHelp("relsyn_workers", "Configured worker-pool size.")
	reg.SetHelp("relsyn_workers_busy", "Workers currently executing a job.")
	reg.RegisterCounter("relsyn_jobs_submitted_total", &s.c.submitted)
	reg.RegisterCounter("relsyn_jobs_completed_total", &s.c.completed)
	reg.RegisterCounter("relsyn_jobs_failed_total", &s.c.failed)
	reg.RegisterCounter("relsyn_jobs_rejected_total", &s.c.rejected)
	reg.RegisterCounter("relsyn_jobs_expired_total", &s.c.expired)
	reg.RegisterGauge("relsyn_workers_busy", &s.c.busyWorkers)
	reg.GaugeFunc("relsyn_workers", func() float64 { return float64(cfg.Workers) })
	reg.GaugeFunc("relsyn_draining", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// SubmitOutcome reports how a submission was satisfied.
type SubmitOutcome struct {
	Job *jobState
	// Cached: served directly from the result cache (already done).
	Cached bool
	// Coalesced: joined an identical in-flight job.
	Coalesced bool
}

// Submit admits one job: cache lookup, in-flight coalescing, then queue
// admission. The returned state's done channel closes when the result
// (or error) is available. priority orders the queue (higher first).
// With a durable store configured, the spec is re-serialized from fn for
// persistence; callers that hold the original .pla text should prefer
// SubmitSpec, which persists it verbatim.
func (s *Server) Submit(fn *tt.Function, specHash string, jo pipeline.JobOptions, priority int) (*SubmitOutcome, error) {
	return s.SubmitSpec(fn, specHash, "", jo, priority)
}

// SubmitSpec is Submit with the specification's .pla text, persisted on
// the job's durable record so crash recovery can re-parse and re-enqueue
// it. An empty specPLA is serialized from fn on demand (only when a
// store is configured).
func (s *Server) SubmitSpec(fn *tt.Function, specHash, specPLA string, jo pipeline.JobOptions, priority int) (*SubmitOutcome, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	// Server defaults are applied before normalization so that an
	// explicit timeout equal to the default and an omitted timeout key
	// identically.
	if jo.TimeoutMs == 0 {
		jo.TimeoutMs = s.cfg.DefaultTimeout.Milliseconds()
	}
	if max := s.cfg.MaxTimeout.Milliseconds(); jo.TimeoutMs > max {
		jo.TimeoutMs = max
	}
	jo = jo.Normalize()
	if err := jo.Validate(); err != nil {
		return nil, err
	}
	s.c.submitted.Inc()
	key := specHash + "|" + jo.Key()

	// The cache counts its own hits/misses (lru.Instrument).
	if res, ok := s.cache.Get(key); ok {
		js := s.completedState(key, res)
		s.register(js)
		// Durable trail for /v1/jobs/{id} across restarts. The result is
		// not repeated on the record: recovery resolves it through the
		// cache by key.
		s.persist(store.Record{
			ID: js.id, Key: key, Status: store.StatusDone,
			CreatedUnixMs:  js.created.UnixMilli(),
			FinishedUnixMs: js.finished.UnixMilli(),
		})
		return &SubmitOutcome{Job: js, Cached: true}, nil
	}

	js, started, err := s.inFly.Do(key, func() (*jobState, error) {
		return s.enqueueJob(newJobID(), key, fn, jo, priority)
	})
	if err != nil {
		return nil, err
	}
	if !started {
		// The flight group counted the join (flight.Instrument).
		return &SubmitOutcome{Job: js, Coalesced: true}, nil
	}
	s.register(js)
	s.persist(store.Record{
		ID: js.id, Key: key, Status: store.StatusQueued,
		Priority:      priority,
		SpecPLA:       s.specText(fn, specPLA),
		Options:       &jo,
		CreatedUnixMs: js.created.UnixMilli(),
	})
	return &SubmitOutcome{Job: js}, nil
}

// enqueueJob creates the jobState for one leader job and admits it to
// the queue. Runs under the flight-group lock; it must not call back
// into the group.
func (s *Server) enqueueJob(id, key string, fn *tt.Function, jo pipeline.JobOptions, priority int) (*jobState, error) {
	js := &jobState{
		id:      id,
		key:     key,
		status:  StatusQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	ctx, cancel := context.WithTimeout(s.baseCtx,
		time.Duration(jo.TimeoutMs)*time.Millisecond)
	js.cancel = cancel
	item := &jobqueue.Item{
		ID:       js.id,
		Priority: priority,
		Ctx:      ctx,
		Payload:  &work{state: js, ctx: ctx, fn: fn, opts: jo},
		OnExpire: func() { s.expireJob(js) },
	}
	if err := s.queue.Enqueue(item); err != nil {
		cancel()
		switch {
		case errors.Is(err, jobqueue.ErrFull):
			s.c.rejected.Inc()
			return nil, ErrQueueFull
		case errors.Is(err, jobqueue.ErrClosed):
			return nil, ErrDraining
		default:
			return nil, err
		}
	}
	return js, nil
}

// specText returns the .pla text to persist for fn: the caller's
// original text when available, otherwise a re-serialization. Returns ""
// (skipping the work) when no store is configured.
func (s *Server) specText(fn *tt.Function, specPLA string) string {
	if s.st == nil {
		return ""
	}
	if specPLA != "" {
		return specPLA
	}
	var sb strings.Builder
	if err := pla.FromFunction(fn, nil, nil).Write(&sb); err != nil {
		return "" // recovery will mark the record unreplayable
	}
	return sb.String()
}

// persist appends one record to the durable store through the circuit
// breaker. With no store configured, or with the breaker open (store
// degraded), it is a no-op — durability degrades, serving never does.
func (s *Server) persist(rec store.Record) {
	if s.st == nil {
		return
	}
	if !s.breaker.Allow() {
		return
	}
	s.breaker.Record(s.st.Append(rec))
}

// persistFinish appends the terminal record for js (and any recovery
// aliases coalesced onto it). The result payload is persisted only for
// successful completions; failures persist the message.
func (s *Server) persistFinish(js *jobState, status string, res *pipeline.JobResult, err error) {
	if s.st == nil {
		return
	}
	rec := store.Record{
		Key: js.key, Status: status,
		FinishedUnixMs: time.Now().UnixMilli(),
	}
	if status == StatusDone {
		rec.Result = res
	}
	if err != nil {
		rec.Error = err.Error()
	}
	for _, id := range append([]string{js.id}, js.aliasIDs()...) {
		r := rec
		r.ID = id
		s.persist(r)
	}
}

// Lookup returns the job registered under id.
func (s *Server) Lookup(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	return js, ok
}

// register adds js to the bounded job registry, evicting the oldest
// finished entries beyond MaxJobStates.
func (s *Server) register(js *jobState) { s.registerAs(js.id, js) }

// registerAs registers js under an explicit id — recovery aliases a
// coalesced record's durable ID onto the surviving in-flight state.
func (s *Server) registerAs(id string, js *jobState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[id] = js
	s.jobOrder = append(s.jobOrder, id)
	for len(s.jobOrder) > s.cfg.MaxJobStates {
		oldest := s.jobOrder[0]
		if old, ok := s.jobs[oldest]; ok && !old.isFinished() {
			break // never evict live jobs; backlog is bounded by the queue
		}
		delete(s.jobs, oldest)
		s.jobOrder = s.jobOrder[1:]
	}
}

// completedState wraps a cache hit in an immediately-done jobState so
// cached and computed responses share one shape.
func (s *Server) completedState(key string, res *pipeline.JobResult) *jobState {
	js := &jobState{
		id:      newJobID(),
		key:     key,
		status:  StatusDone,
		result:  res,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	js.finished = js.created
	close(js.done)
	return js
}

// expireJob marks a job dropped by the queue's deadline check. The
// waiters' error is typed: errors.Is(err, jobqueue.ErrExpired) holds.
func (s *Server) expireJob(js *jobState) {
	s.c.expired.Inc()
	err := fmt.Errorf("server: job %s: %w", js.id, jobqueue.ErrExpired)
	js.finish(StatusExpired, nil, err)
	s.persistFinish(js, StatusExpired, nil, err)
	s.inFly.Forget(js.key)
}

// worker consumes the queue until it is closed and drained (graceful
// drain) or the base context is cancelled (forced stop).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		item, err := s.queue.Dequeue(s.baseCtx)
		if err != nil {
			return
		}
		w := item.Payload.(*work)
		s.c.busyWorkers.Add(1)
		s.runJob(w)
		s.c.busyWorkers.Add(-1)
	}
}

// runJob executes one dequeued job and publishes its outcome: result
// into the cache (before the singleflight key is forgotten, so there is
// no window where duplicates recompute), state to all waiters.
//
// A job whose deadline passed between dequeue and execution (the queue
// only checks at dequeue time) is never handed to the backend: it is
// published as expired with the same typed jobqueue.ErrExpired cause as
// a queue-side drop, closing the race in which a just-expired job would
// burn worker time and surface as a generic "failed".
func (s *Server) runJob(w *work) {
	js := w.state
	if w.ctx.Err() != nil {
		s.expireJob(js)
		return
	}
	js.setRunning()
	s.persist(store.Record{ID: js.id, Key: js.key, Status: store.StatusRunning})
	// Sharded deployments: before computing, ask the key's ring owner
	// for the finished result — hedged/failed-over/rebalanced keys are
	// fetched, not recomputed. Best-effort; any miss computes locally.
	if s.peers != nil {
		if res, ok := s.peers.fetch(w.ctx, js.key); ok {
			s.completeJob(js, res)
			return
		}
		// Result miss: still try to pull the spec's fused census from the
		// owner so the local compute at least skips the census build. The
		// Matches gate keeps a stale or mismatched peer payload from ever
		// being primed for this spec.
		s.prefillCensus(w)
	}
	res, err := s.callBackend(w)
	if err != nil {
		s.c.failed.Inc()
		js.finish(StatusFailed, res, err)
		s.persistFinish(js, StatusFailed, res, err)
		s.inFly.Forget(js.key)
		return
	}
	s.completeJob(js, res)
}

// completeJob publishes a successful result: cache first (before the
// singleflight key is forgotten, so duplicates never recompute), then
// waiters, then the durable trail.
func (s *Server) completeJob(js *jobState, res *pipeline.JobResult) {
	s.c.completed.Inc()
	s.cache.Add(js.key, res)
	js.finish(StatusDone, res, nil)
	s.persistFinish(js, StatusDone, res, nil)
	s.inFly.Forget(js.key)
}

// prefillCensus primes the process-wide census engine from the spec's
// ring owner before a local compute. Gated on the job actually wanting
// the fused path, the engine not already holding the census, and the
// peer payload passing the Matches guard against the job's own spec.
func (s *Server) prefillCensus(w *work) {
	eng := census.Default
	if eng == nil || w.fn == nil || !w.opts.CensusEnabled() {
		return
	}
	specHash := specHashOf(w.state.key)
	if _, ok := eng.Peek(specHash); ok {
		return
	}
	if fc, ok := s.peers.fetchCensus(w.ctx, specHash); ok && fc.Matches(w.fn) {
		eng.Prime(specHash, fc)
	}
}

// callBackend shields the worker pool from a panicking backend: the
// panic becomes a job failure wrapping ErrBackendPanic instead of
// killing the process (the chaos harness injects exactly this fault).
func (s *Server) callBackend(w *work) (res *pipeline.JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrBackendPanic, r)
		}
	}()
	return s.cfg.Backend(w.ctx, w.fn, w.opts)
}

// RecoveryStats reports what Recover did with the store's records.
type RecoveryStats struct {
	// Restored terminal records re-registered for /v1/jobs/{id} (done
	// results also re-primed the cache).
	Restored int
	// Requeued interrupted (queued/running) jobs re-admitted to the
	// queue, after coalescing duplicates and cache hits.
	Requeued int
	// Deduped interrupted jobs satisfied without recomputation: joined
	// an identical requeued job or completed from a recovered result.
	Deduped int
	// Failed records that could not be replayed (unparseable spec or a
	// full queue); each is finished as failed — still a terminal state.
	Failed int
}

// Recover ingests the records returned by store.Open, called once
// after New and before the listener starts taking traffic:
//
//   - terminal records re-populate the /v1/jobs registry, and done
//     results re-prime the content-addressed cache;
//   - queued/running records — work the previous process accepted but
//     never finished — are re-enqueued idempotently: a key whose result
//     was recovered completes immediately from cache, and identical
//     interrupted jobs coalesce through the singleflight group, so a
//     recovered job never recomputes a cached result.
//
// Re-enqueued jobs keep their original IDs (pollers holding a pre-crash
// job id keep working) and their original priority and options; their
// deadline clock restarts at recovery time.
func (s *Server) Recover(records []store.Record) RecoveryStats {
	var st RecoveryStats
	// Pass 1: terminal records, so the cache is warm before any
	// interrupted job is considered.
	for _, rec := range records {
		if !store.Terminal(rec.Status) {
			continue
		}
		res := rec.Result
		if res == nil && rec.Status == store.StatusDone && rec.Key != "" {
			res, _ = s.cache.Get(rec.Key) // cache-hit trail record
		}
		if rec.Status == store.StatusDone && rec.Result != nil && rec.Key != "" {
			s.cache.Add(rec.Key, rec.Result)
		}
		js := &jobState{
			id: rec.ID, key: rec.Key, status: rec.Status, result: res,
			err:     rec.Error,
			created: time.UnixMilli(rec.CreatedUnixMs),
			done:    make(chan struct{}),
		}
		js.finished = time.UnixMilli(rec.FinishedUnixMs)
		close(js.done)
		s.register(js)
		st.Restored++
	}
	// Pass 2: interrupted work.
	for _, rec := range records {
		if store.Terminal(rec.Status) {
			continue
		}
		s.recoverPending(rec, &st)
	}
	return st
}

// recoverPending re-admits one interrupted record.
func (s *Server) recoverPending(rec store.Record, st *RecoveryStats) {
	fail := func(err error) {
		st.Failed++
		js := &jobState{
			id: rec.ID, key: rec.Key, status: StatusQueued,
			created: time.UnixMilli(rec.CreatedUnixMs),
			done:    make(chan struct{}),
		}
		js.finish(StatusFailed, nil, err)
		s.persistFinish(js, StatusFailed, nil, err)
		s.register(js)
	}
	if rec.SpecPLA == "" || rec.Options == nil || rec.Key == "" {
		fail(fmt.Errorf("server: recovered job %s: record carries no replayable spec", rec.ID))
		return
	}
	file, err := pla.Parse(strings.NewReader(rec.SpecPLA))
	if err != nil {
		fail(fmt.Errorf("server: recovered job %s: parse spec: %w", rec.ID, err))
		return
	}
	fn, err := file.ToFunction()
	if err != nil {
		fail(fmt.Errorf("server: recovered job %s: rebuild spec: %w", rec.ID, err))
		return
	}
	// Cached result (recovered in pass 1, or computed by an earlier
	// requeued duplicate that already finished): terminal, no recompute.
	if res, ok := s.cache.Get(rec.Key); ok {
		js := &jobState{
			id: rec.ID, key: rec.Key, status: StatusQueued,
			created: time.UnixMilli(rec.CreatedUnixMs),
			done:    make(chan struct{}),
		}
		js.finish(StatusDone, res, nil)
		s.persistFinish(js, StatusDone, res, nil)
		s.register(js)
		st.Deduped++
		return
	}
	jo := *rec.Options
	js, started, err := s.inFly.Do(rec.Key, func() (*jobState, error) {
		return s.enqueueJob(rec.ID, rec.Key, fn, jo, rec.Priority)
	})
	if err != nil {
		fail(fmt.Errorf("server: recovered job %s: re-enqueue: %w", rec.ID, err))
		return
	}
	if !started {
		// Identical interrupted job already requeued: alias this record's
		// ID onto the in-flight state so Lookup works and the terminal
		// append covers it.
		js.addAlias(rec.ID)
		s.registerAs(rec.ID, js)
		st.Deduped++
		return
	}
	s.register(js)
	st.Requeued++
}

// Health classifies the service for load balancers and operators.
type Health struct {
	// Status is "ok", "degraded" (still serving, but shedding
	// durability or saturated), or "draining" (shutting down).
	Status string `json:"status"`
	// Reasons lists what degraded the service.
	Reasons []string `json:"reasons,omitempty"`
}

// Health reports ok / degraded / draining. Degraded covers: job queue
// at capacity (admissions are being rejected with 429) and store
// circuit open (serving without durability).
func (s *Server) Health() Health {
	if s.draining.Load() {
		return Health{Status: "draining"}
	}
	var reasons []string
	if qs := s.queue.Stats(); qs.Len >= qs.Depth {
		reasons = append(reasons, "queue saturated")
	}
	if s.breaker != nil && s.breaker.Degraded() {
		reasons = append(reasons, "store circuit open")
	}
	if len(reasons) > 0 {
		return Health{Status: "degraded", Reasons: reasons}
	}
	return Health{Status: "ok"}
}

// Drain gracefully shuts the server down: stop admitting, let workers
// finish every queued and in-flight job, then return. If ctx expires
// first, remaining jobs are cancelled via the base context and Drain
// waits (briefly) for the workers to observe it.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stop()
		return nil
	case <-ctx.Done():
		s.stop() // cancel in-flight pipelines; they poll interrupts
		<-done
		return ctx.Err()
	}
}

// Close force-stops the server without waiting for the backlog.
func (s *Server) Close() {
	s.draining.Store(true)
	s.queue.Close()
	s.stop()
	s.wg.Wait()
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats is the /statsz payload.
type Stats struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Workers       int            `json:"workers"`
	BusyWorkers   int64          `json:"busy_workers"`
	Draining      bool           `json:"draining"`
	Queue         jobqueue.Stats `json:"queue"`
	Submitted     int64          `json:"submitted"`
	Completed     int64          `json:"completed"`
	Failed        int64          `json:"failed"`
	Rejected      int64          `json:"rejected"`
	Expired       int64          `json:"expired"`
	Coalesced     int64          `json:"coalesced"`
	Cache         lru.Stats      `json:"cache"`
	InFlightKeys  int            `json:"in_flight_keys"`
	Store         *store.Stats   `json:"store,omitempty"`
	StoreBreaker  string         `json:"store_breaker,omitempty"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	var storeStats *store.Stats
	var breakerState string
	if s.st != nil {
		st := s.st.Stats()
		storeStats = &st
		breakerState = s.breaker.State()
	}
	return Stats{
		Store:         storeStats,
		StoreBreaker:  breakerState,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.cfg.Workers,
		BusyWorkers:   int64(s.c.busyWorkers.Value()),
		Draining:      s.draining.Load(),
		Queue:         s.queue.Stats(),
		Submitted:     s.c.submitted.Value(),
		Completed:     s.c.completed.Value(),
		Failed:        s.c.failed.Value(),
		Rejected:      s.c.rejected.Value(),
		Expired:       s.c.expired.Value(),
		Coalesced:     s.inFly.Stats().Coalesced,
		Cache:         s.cache.Stats(),
		InFlightKeys:  s.inFly.Len(),
	}
}

// RetryAfter returns the configured 429 retry hint.
func (s *Server) RetryAfter() time.Duration { return s.cfg.RetryAfter }

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: entropy unavailable: %v", err))
	}
	return "job_" + hex.EncodeToString(b[:])
}
