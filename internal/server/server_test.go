package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"relsyn/internal/jobqueue"
	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
	"relsyn/internal/tt"
)

// specPLA builds a tiny but distinct 4-input spec per seed.
func specPLA(seed int) string {
	var b strings.Builder
	b.WriteString(".i 4\n.o 1\n")
	on := []int{seed % 16, (seed*3 + 1) % 16, (seed*5 + 2) % 16}
	dc := (seed*7 + 5) % 16
	seen := map[int]bool{}
	for _, m := range on {
		if m == dc || seen[m] {
			continue
		}
		seen[m] = true
		fmt.Fprintf(&b, "%04b 1\n", m)
	}
	fmt.Fprintf(&b, "%04b -\n", dc)
	b.WriteString(".e\n")
	return b.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func serverStats(t *testing.T, base string) Stats {
	t.Helper()
	var st Stats
	getJSON(t, base+"/statsz", &st)
	return st
}

// The acceptance scenario: a 64-job concurrent mix of duplicate and
// distinct specs completes race-clean, with every duplicate served by
// the cache or in-flight coalescing (exactly one pipeline execution per
// distinct spec), verified via /statsz counters.
func TestServer64ConcurrentMixedRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 128, CacheSize: 64})
	const total, distinct = 64, 8

	var wg sync.WaitGroup
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := SynthRequest{
				PLA:      specPLA(i % distinct),
				Options:  pipeline.JobOptions{Method: "lcf", Threshold: 0.55},
				Priority: i % 3,
			}
			resp, data := postJSON(t, ts.URL+"/v1/synth", req)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: HTTP %d: %s", i, resp.StatusCode, data)
				return
			}
			var sr SynthResponse
			if err := json.Unmarshal(data, &sr); err != nil {
				errs <- fmt.Errorf("request %d: %v", i, err)
				return
			}
			if sr.Status != StatusDone || sr.Result == nil {
				errs <- fmt.Errorf("request %d: status %q error %q", i, sr.Status, sr.Error)
				return
			}
			if !sr.Result.Verified {
				errs <- fmt.Errorf("request %d: result not verified", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := serverStats(t, ts.URL)
	if st.Submitted != total {
		t.Fatalf("submitted %d, want %d", st.Submitted, total)
	}
	// Singleflight + cache guarantee exactly one execution per distinct
	// spec: every other request must have been coalesced or cache-hit.
	if st.Completed != distinct {
		t.Fatalf("completed %d pipeline executions, want %d (stats %+v)", st.Completed, distinct, st)
	}
	if st.Cache.Hits+st.Coalesced != total-distinct {
		t.Fatalf("cache_hits %d + coalesced %d != %d", st.Cache.Hits, st.Coalesced, total-distinct)
	}
	if st.Failed != 0 || st.Rejected != 0 || st.Expired != 0 {
		t.Fatalf("unexpected failures: %+v", st)
	}
	if st.Cache.Len != distinct {
		t.Fatalf("cache holds %d entries, want %d", st.Cache.Len, distinct)
	}
	_ = s
}

// Identical specs written differently (permuted rows, redundant cubes)
// and equivalent option spellings land on the same cache entry.
func TestServerCanonicalCacheKey(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16, CacheSize: 16})
	variants := []SynthRequest{
		{PLA: ".i 3\n.o 1\n01- 1\n111 1\n000 -\n.e\n",
			Options: pipeline.JobOptions{Method: "lcf", Threshold: 0.55}},
		{PLA: ".i 3\n.o 1\n111 1\n000 -\n01- 1\n.e\n", // permuted rows
			Options: pipeline.JobOptions{Method: "LCF", Threshold: 0.55}},
		{PLA: ".i 3\n.o 1\n01- 1\n010 1\n111 1\n000 -\n.e\n", // redundant cube
			Options: pipeline.JobOptions{Method: "lcf", Threshold: 0.55, Fraction: 0.9}},
	}
	for i, req := range variants {
		resp, data := postJSON(t, ts.URL+"/v1/synth", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("variant %d: HTTP %d: %s", i, resp.StatusCode, data)
		}
	}
	st := serverStats(t, ts.URL)
	if st.Completed != 1 {
		t.Fatalf("equivalent requests ran %d pipelines, want 1 (%+v)", st.Completed, st)
	}
	if st.Cache.Hits != 2 {
		t.Fatalf("cache hits %d, want 2", st.Cache.Hits)
	}
}

// blockingBackend lets a test hold workers busy deterministically.
type blockingBackend struct {
	release chan struct{}
	started chan string
}

func (b *blockingBackend) run(ctx context.Context, _ *tt.Function, _ pipeline.JobOptions) (*pipeline.JobResult, error) {
	select {
	case b.started <- "":
	default:
	}
	select {
	case <-b.release:
		return &pipeline.JobResult{Verified: true}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// A full queue rejects with 429 and a Retry-After header; after the
// backlog clears, the same request is admitted.
func TestServerQueueFullRejectsWith429(t *testing.T) {
	bb := &blockingBackend{release: make(chan struct{}), started: make(chan string, 8)}
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1, CacheSize: 8,
		RetryAfter: 2 * time.Second, Backend: bb.run,
	})

	async := false
	submit := func(seed int) (*http.Response, []byte) {
		return postJSON(t, ts.URL+"/v1/synth", SynthRequest{PLA: specPLA(seed), Wait: &async})
	}
	// First job occupies the worker...
	if resp, data := submit(0); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 0: HTTP %d: %s", resp.StatusCode, data)
	}
	<-bb.started
	// ...second fills the queue...
	if resp, data := submit(1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: HTTP %d: %s", resp.StatusCode, data)
	}
	// ...third distinct spec must be shed.
	resp, data := submit(2)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: HTTP %d, want 429: %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want 2", ra)
	}
	var sr SynthResponse
	if err := json.Unmarshal(data, &sr); err != nil || sr.Status != "rejected" {
		t.Fatalf("rejection body %s (%v)", data, err)
	}
	st := serverStats(t, ts.URL)
	if st.Rejected != 1 {
		t.Fatalf("rejected counter %d, want 1", st.Rejected)
	}
	// Release the workers; the backlog drains and admission resumes.
	close(bb.release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp, _ := submit(2); resp.StatusCode == http.StatusAccepted ||
			resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("admission did not resume after drain")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Drain finishes queued and in-flight jobs before returning, while new
// submissions are refused with 503 and healthz flips to draining.
func TestServerDrainFinishesBacklog(t *testing.T) {
	bb := &blockingBackend{release: make(chan struct{}), started: make(chan string, 8)}
	s := New(Config{Workers: 1, QueueDepth: 8, CacheSize: 8, Backend: bb.run})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	async := false
	ids := make([]string, 3)
	for i := range ids {
		resp, data := postJSON(t, ts.URL+"/v1/synth", SynthRequest{PLA: specPLA(i), Wait: &async})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: HTTP %d: %s", i, resp.StatusCode, data)
		}
		var sr SynthResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		ids[i] = sr.JobID
	}
	<-bb.started // worker holds job 0; jobs 1,2 queued

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Draining must become observable, then refuse new work.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: HTTP %d", resp.StatusCode)
	}
	if resp, data := postJSON(t, ts.URL+"/v1/synth", SynthRequest{PLA: specPLA(9)}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d: %s", resp.StatusCode, data)
	}

	close(bb.release) // let the backlog finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Every job — including the two that were still queued at drain time —
	// must have completed.
	for i, id := range ids {
		var sr SynthResponse
		getJSON(t, ts.URL+"/v1/jobs/"+id, &sr)
		if sr.Status != StatusDone {
			t.Fatalf("job %d (%s) status %q after drain", i, id, sr.Status)
		}
	}
	st := s.Stats()
	if st.Completed != 3 || st.Queue.Len != 0 {
		t.Fatalf("post-drain stats %+v", st)
	}
}

// Async submission + polling via GET /v1/jobs/{id}.
func TestServerAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16, CacheSize: 16})
	async := false
	resp, data := postJSON(t, ts.URL+"/v1/synth", SynthRequest{
		PLA:  specPLA(3),
		Wait: &async,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	var sr SynthResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.JobID == "" {
		t.Fatalf("no job id in %s", data)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var poll SynthResponse
		r := getJSON(t, ts.URL+"/v1/jobs/"+sr.JobID, &poll)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll HTTP %d", r.StatusCode)
		}
		if poll.Status == StatusDone {
			if poll.Result == nil || !poll.Result.Verified {
				t.Fatalf("done without verified result: %+v", poll)
			}
			break
		}
		if poll.Status == StatusFailed || poll.Status == StatusExpired {
			t.Fatalf("job ended %q: %s", poll.Status, poll.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", poll.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The batch endpoint coalesces duplicates inside one request.
func TestServerBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 32, CacheSize: 16})
	var jobs []SynthRequest
	for i := 0; i < 8; i++ {
		jobs = append(jobs, SynthRequest{PLA: specPLA(i % 4)})
	}
	resp, data := postJSON(t, ts.URL+"/v1/synth/batch", BatchRequest{Jobs: jobs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 8 {
		t.Fatalf("%d results", len(br.Results))
	}
	for i, r := range br.Results {
		if r.Status != StatusDone || r.Result == nil {
			t.Fatalf("batch item %d: %+v", i, r)
		}
	}
	st := serverStats(t, ts.URL)
	if st.Completed != 4 {
		t.Fatalf("batch ran %d pipelines, want 4 (%+v)", st.Completed, st)
	}
}

// A job whose pipeline fails (strict + impossible budget) surfaces as
// status "failed" with the error preserved, and is not cached.
func TestServerFailedJobNotCached(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, CacheSize: 8})
	req := SynthRequest{
		PLA: specPLA(1),
		Options: pipeline.JobOptions{Method: "lcf", Threshold: 0.55,
			UseBDD: true, MaxBDDNodes: 4, Strict: true},
	}
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/synth", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
		}
		var sr SynthResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Status != StatusFailed || !strings.Contains(sr.Error, "budget") {
			t.Fatalf("attempt %d: %+v", i, sr)
		}
	}
	st := serverStats(t, ts.URL)
	if st.Failed != 2 || st.Cache.Len != 0 {
		t.Fatalf("failures must not be cached: %+v", st)
	}
}

func TestServerBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	cases := []struct {
		name string
		url  string
		body string
		want int
	}{
		{"bad json", "/v1/synth", `{"pla": `, http.StatusBadRequest},
		{"unknown field", "/v1/synth", `{"plaa": "x"}`, http.StatusBadRequest},
		{"empty pla", "/v1/synth", `{"pla": ""}`, http.StatusBadRequest},
		{"malformed pla", "/v1/synth", `{"pla": ".i 2\n.o 1\n11 2x\n.e\n"}`, http.StatusBadRequest},
		{"bad options", "/v1/synth", `{"pla": ".i 2\n.o 1\n11 1\n.e\n", "options": {"method": "bogus"}}`, http.StatusBadRequest},
		{"empty batch", "/v1/synth/batch", `{"jobs": []}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("HTTP %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/job_nonesuch", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
}

// Jobs that exhaust their deadline while queued are dropped by the
// queue, reported as expired, and never reach a worker.
func TestServerQueuedJobExpires(t *testing.T) {
	bb := &blockingBackend{release: make(chan struct{}), started: make(chan string, 8)}
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4, CacheSize: 8, Backend: bb.run,
	})
	async := false
	// Occupy the worker with a long-lived job.
	if resp, _ := postJSON(t, ts.URL+"/v1/synth", SynthRequest{PLA: specPLA(0), Wait: &async}); resp.StatusCode != http.StatusAccepted {
		t.Fatal("setup job rejected")
	}
	<-bb.started
	// Queue a job with a tiny deadline; it expires while waiting.
	resp, data := postJSON(t, ts.URL+"/v1/synth", SynthRequest{
		PLA: specPLA(1), Wait: &async,
		Options: pipeline.JobOptions{TimeoutMs: 30},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	var sr SynthResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	close(bb.release) // worker picks the queue up; expired job is dropped
	deadline := time.Now().Add(5 * time.Second)
	for {
		var poll SynthResponse
		getJSON(t, ts.URL+"/v1/jobs/"+sr.JobID, &poll)
		if poll.Status == StatusExpired {
			break
		}
		if poll.Status == StatusDone {
			t.Fatal("expired job ran anyway")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", poll.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := s.Stats(); st.Expired != 1 {
		t.Fatalf("expired counter %d, want 1", st.Expired)
	}
}

// Priorities reorder the backlog: with one busy worker, a later
// high-priority job overtakes earlier low-priority ones.
func TestServerPriorityOvertakes(t *testing.T) {
	bb := &blockingBackend{release: make(chan struct{}), started: make(chan string, 8)}
	s := New(Config{Workers: 1, QueueDepth: 8, CacheSize: 8, Backend: bb.run})
	defer s.Close()

	fn := tt.New(2, 1)
	fn.SetPhase(0, 3, tt.On)
	submit := func(seed, prio int) *jobState {
		t.Helper()
		o, err := s.Submit(fn, fmt.Sprintf("spec-%d", seed), pipeline.JobOptions{}, prio)
		if err != nil {
			t.Fatal(err)
		}
		return o.Job
	}
	submit(0, 0)
	<-bb.started // worker busy with job 0
	low := submit(1, 0)
	high := submit(2, 9)
	// Drain deterministically: release all and close admissions.
	close(bb.release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	<-low.done
	<-high.done
	if !high.finished.Before(low.finished) {
		t.Fatalf("high-priority job finished at %v, after low-priority at %v",
			high.finished, low.finished)
	}
}

// Regression: a job whose deadline passes between queue dequeue and
// execution (the queue only checks at dequeue time) must never be
// handed to the backend. It is published as expired with the same typed
// jobqueue.ErrExpired cause as a queue-side drop — not run, and not
// surfaced as a generic "failed".
func TestServerExpiredJobNeverRunsBackend(t *testing.T) {
	backendRan := make(chan struct{}, 1)
	s := New(Config{
		Workers: 1, QueueDepth: 4, CacheSize: 4,
		Metrics: obs.NewRegistry(),
		Backend: func(context.Context, *tt.Function, pipeline.JobOptions) (*pipeline.JobResult, error) {
			backendRan <- struct{}{}
			return &pipeline.JobResult{}, nil
		},
	})
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already gone when the "worker" picks it up
	js := &jobState{
		id: "job_test_expired", key: "k", status: StatusQueued,
		created: time.Now(), done: make(chan struct{}),
	}
	s.runJob(&work{state: js, ctx: ctx, fn: tt.New(2, 1), opts: pipeline.JobOptions{}})

	select {
	case <-backendRan:
		t.Fatal("backend ran for an expired job")
	default:
	}
	status, _, errMsg := js.snapshot()
	if status != StatusExpired {
		t.Fatalf("status %q, want %q", status, StatusExpired)
	}
	if !strings.Contains(errMsg, jobqueue.ErrExpired.Error()) {
		t.Fatalf("error %q does not carry the typed expiry cause", errMsg)
	}
	if st := s.Stats(); st.Expired != 1 || st.Failed != 0 || st.Completed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// The /metrics endpoint serves Prometheus text exposition with the
// queue, cache, job, worker, and HTTP series present.
func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 2, QueueDepth: 8, CacheSize: 8, Metrics: obs.NewRegistry(),
	})
	// Serve one real job (twice: second hit comes from the cache) so the
	// counters move before scraping.
	for i := 0; i < 2; i++ {
		if resp, data := postJSON(t, ts.URL+"/v1/synth", SynthRequest{PLA: specPLA(3)}); resp.StatusCode != http.StatusOK {
			t.Fatalf("synth: HTTP %d: %s", resp.StatusCode, data)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE relsyn_queue_depth gauge",
		"relsyn_queue_capacity 8",
		"relsyn_queue_enqueued_total 1",
		"relsyn_queue_wait_seconds_count 1",
		`relsyn_cache_hits_total{cache="results"} 1`,
		`relsyn_cache_misses_total{cache="results"} 1`,
		"relsyn_jobs_submitted_total 2",
		"relsyn_jobs_completed_total 1",
		"relsyn_workers 2",
		"relsyn_workers_busy 0",
		`relsyn_flight_started_total{group="synth"} 1`,
		`relsyn_http_requests_total{code="200",route="/v1/synth"} 2`,
		`relsyn_http_request_duration_seconds_count{route="/v1/synth"} 2`,
		"# TYPE relsyn_http_in_flight gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full /metrics body:\n%s", text)
	}
}

// /statsz carries both the classic counters and the full metrics
// snapshot, so the JSON view and the Prometheus view cannot diverge.
func TestServerStatszIncludesMetricsSnapshot(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, CacheSize: 8, Metrics: obs.NewRegistry(),
	})
	if resp, data := postJSON(t, ts.URL+"/v1/synth", SynthRequest{PLA: specPLA(4)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("synth: HTTP %d: %s", resp.StatusCode, data)
	}
	var payload StatszPayload
	getJSON(t, ts.URL+"/statsz", &payload)
	if payload.Submitted != 1 || payload.Completed != 1 {
		t.Fatalf("embedded stats: %+v", payload.Stats)
	}
	if payload.Metrics.Counters["relsyn_jobs_submitted_total"] != 1 {
		t.Fatalf("metrics snapshot counters: %+v", payload.Metrics.Counters)
	}
	if payload.Metrics.Gauges["relsyn_queue_capacity"] != 8 {
		t.Fatalf("metrics snapshot gauges: %+v", payload.Metrics.Gauges)
	}
}
