// Durability, crash-recovery, degradation, and chaos tests for the
// store-backed server. The SIGKILL process-level crash test lives in
// cmd/relsynd; these tests exercise the same machinery in-process where
// every intermediate state can be asserted.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"relsyn/internal/chaos"
	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
	"relsyn/internal/store"
	"relsyn/internal/tt"
)

// openStore opens a store on dir with a fresh registry.
func openStore(t *testing.T, dir string, fs store.FS) (*store.Store, []store.Record) {
	t.Helper()
	st, recs, err := store.Open(store.Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st, recs
}

func submitPLA(t *testing.T, s *Server, seed, priority int) *SubmitOutcome {
	t.Helper()
	text := specPLA(seed)
	fn, hash, err := parseSpec(text)
	if err != nil {
		t.Fatalf("parseSpec: %v", err)
	}
	out, err := s.SubmitSpec(fn, hash, text, pipeline.JobOptions{}, priority)
	if err != nil {
		t.Fatalf("SubmitSpec(seed=%d): %v", seed, err)
	}
	return out
}

func waitDone(t *testing.T, js *jobState) {
	t.Helper()
	select {
	case <-js.done:
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s never finished", js.id)
	}
}

// TestServerPersistsLifecycle checks the WAL trail a finished job leaves
// behind: queued → running → done records merged into one durable record
// carrying the replayable spec and the result.
func TestServerPersistsLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, nil)
	s := New(Config{Workers: 2, QueueDepth: 16, Store: st, Metrics: obs.NewRegistry()})
	defer s.Close()

	out := submitPLA(t, s, 1, 3)
	waitDone(t, out.Job)

	rec, ok := st.Get(out.Job.id)
	if !ok {
		t.Fatalf("no durable record for job %s", out.Job.id)
	}
	if rec.Status != store.StatusDone || rec.Result == nil {
		t.Fatalf("record = %+v, want done with result", rec)
	}
	if rec.SpecPLA == "" || rec.Options == nil || rec.Key == "" || rec.Priority != 3 {
		t.Fatalf("record lost submission fields: %+v", rec)
	}
	// A duplicate submission is a cache hit; its trail record is done
	// without repeating the result payload.
	out2 := submitPLA(t, s, 1, 0)
	if !out2.Cached {
		t.Fatal("duplicate submission missed the cache")
	}
	rec2, ok := st.Get(out2.Job.id)
	if !ok || rec2.Status != store.StatusDone {
		t.Fatalf("trail record = %+v (ok=%v), want done", rec2, ok)
	}
	if rec2.Result != nil {
		t.Fatal("cache-hit trail record repeated the result payload")
	}
}

// TestServerRecoverRestoresTerminal restarts a store-backed server and
// checks terminal jobs survive: pollers keep their IDs, done results
// re-prime the cache so identical submissions never recompute.
func TestServerRecoverRestoresTerminal(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, nil)
	s := New(Config{Workers: 2, QueueDepth: 16, Store: st, Metrics: obs.NewRegistry()})
	out := submitPLA(t, s, 1, 0)
	waitDone(t, out.Job)
	s.Close()
	st.Close()

	st2, recs := openStore(t, dir, nil)
	s2 := New(Config{Workers: 2, QueueDepth: 16, Store: st2, Metrics: obs.NewRegistry()})
	defer s2.Close()
	rs := s2.Recover(recs)
	if rs.Restored != 1 || rs.Requeued != 0 || rs.Failed != 0 {
		t.Fatalf("recovery stats = %+v, want 1 restored", rs)
	}
	js, ok := s2.Lookup(out.Job.id)
	if !ok {
		t.Fatalf("pre-crash job id %s unknown after restart", out.Job.id)
	}
	status, res, _ := js.snapshot()
	if status != StatusDone || res == nil {
		t.Fatalf("recovered job = %s/%v, want done with result", status, res)
	}
	// Same spec again: served from the recovered cache, zero executions.
	out2 := submitPLA(t, s2, 1, 0)
	if !out2.Cached {
		t.Fatal("recovered result did not prime the cache")
	}
	if got := s2.Stats().Completed; got != 0 {
		t.Fatalf("server recomputed %d jobs after recovery, want 0", got)
	}
}

// TestServerRecoverRequeuesInterrupted feeds Recover hand-built
// interrupted records — what a crash mid-batch leaves in the WAL — and
// checks every one reaches a terminal state with exactly one execution
// per distinct key.
func TestServerRecoverRequeuesInterrupted(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStore(t, dir, nil)

	mkRecord := func(id string, seed int, status string) store.Record {
		text := specPLA(seed)
		_, hash, err := parseSpec(text)
		if err != nil {
			t.Fatal(err)
		}
		jo := pipeline.JobOptions{TimeoutMs: 30_000}.Normalize()
		return store.Record{
			ID: id, Key: hash + "|" + jo.Key(), Status: status,
			SpecPLA: text, Options: &jo, CreatedUnixMs: 1,
		}
	}
	for _, rec := range []store.Record{
		mkRecord("job_a", 1, store.StatusQueued),
		mkRecord("job_b", 2, store.StatusRunning), // interrupted mid-run
		mkRecord("job_c", 1, store.StatusQueued),  // duplicate of job_a's key
	} {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2, recs := openStore(t, dir, nil)
	s := New(Config{Workers: 2, QueueDepth: 16, Store: st2, Metrics: obs.NewRegistry()})
	defer s.Close()
	rs := s.Recover(recs)
	if rs.Requeued != 2 || rs.Deduped != 1 || rs.Failed != 0 {
		t.Fatalf("recovery stats = %+v, want requeued 2, deduped 1", rs)
	}
	for _, id := range []string{"job_a", "job_b", "job_c"} {
		js, ok := s.Lookup(id)
		if !ok {
			t.Fatalf("recovered job %s not registered", id)
		}
		waitDone(t, js)
		status, res, errMsg := js.snapshot()
		if status != StatusDone || res == nil {
			t.Fatalf("job %s = %s (%s), want done", id, status, errMsg)
		}
	}
	// Two distinct keys, three records: exactly two executions.
	if got := s.Stats().Completed; got != 2 {
		t.Fatalf("executions after recovery = %d, want 2 (job_c coalesced)", got)
	}
	// The coalesced duplicate's own record must also have reached a
	// durable terminal state (alias persistence).
	waitTerminalRecord(t, st2, "job_c")
}

func waitTerminalRecord(t *testing.T, st *store.Store, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rec, ok := st.Get(id); ok && store.Terminal(rec.Status) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	rec, _ := st.Get(id)
	t.Fatalf("record %s never reached a terminal state (now %+v)", id, rec)
}

// TestServerRecoverUnreplayable: a pending record without a replayable
// spec must fail terminally, not linger queued forever or crash recovery.
func TestServerRecoverUnreplayable(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, Metrics: obs.NewRegistry()})
	defer s.Close()
	rs := s.Recover([]store.Record{
		{ID: "job_nospec", Key: "k", Status: store.StatusQueued},
		{ID: "job_badpla", Key: "k2", Status: store.StatusQueued,
			SpecPLA: "this is not a pla file", Options: &pipeline.JobOptions{}},
	})
	if rs.Failed != 2 {
		t.Fatalf("recovery stats = %+v, want 2 failed", rs)
	}
	for _, id := range []string{"job_nospec", "job_badpla"} {
		js, ok := s.Lookup(id)
		if !ok {
			t.Fatalf("unreplayable job %s not registered", id)
		}
		status, _, errMsg := js.snapshot()
		if status != StatusFailed || errMsg == "" {
			t.Fatalf("job %s = %s (%q), want failed with message", id, status, errMsg)
		}
	}
}

// TestServerDegradesWhenStoreFails wires chaos fsync faults under a live
// server: the breaker opens, serving continues from memory, /healthz
// reports degraded with the store reason, and relsyn_store_degraded=1 is
// exported. When the fault clears and the cooldown passes, the probe
// append closes the circuit and health returns to ok.
func TestServerDegradesWhenStoreFails(t *testing.T) {
	// Exactly the first two fsyncs fail: enough to trip the 2-failure
	// breaker, exhausted before the half-open probe.
	faults := &chaos.FSFaults{SyncErr: &chaos.Trigger{On: 1, Count: 2}}
	reg := obs.NewRegistry()
	st, _, err := store.Open(store.Options{
		Dir: t.TempDir(), FS: chaos.FS(store.OSFS{}, faults), Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	breaker := store.NewBreaker(2, time.Hour)
	clk := &fakeClock{now: time.Unix(0, 0)}
	breaker.SetClock(clk.Now)
	s, ts := newTestServer(t, Config{
		Workers: 2, QueueDepth: 16, Store: st, Breaker: breaker, Metrics: reg,
	})

	// Each submission is one persist attempt; two failures trip the
	// breaker. Serving never falters.
	for seed := 1; seed <= 3; seed++ {
		out := submitPLA(t, s, seed, 0)
		waitDone(t, out.Job)
		status, _, errMsg := out.Job.snapshot()
		if status != StatusDone {
			t.Fatalf("seed %d = %s (%s), want done despite store faults", seed, status, errMsg)
		}
	}
	if !breaker.Degraded() {
		t.Fatal("breaker still closed after persistent append failures")
	}

	var h Health
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200 (degraded still serves)", resp.StatusCode)
	}
	if h.Status != "degraded" || len(h.Reasons) == 0 || !strings.Contains(h.Reasons[0], "store") {
		t.Fatalf("health = %+v, want degraded with store reason", h)
	}
	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if !strings.Contains(string(body), "relsyn_store_degraded 1") {
		t.Fatal("metrics do not export relsyn_store_degraded 1 while degraded")
	}

	// Fault script exhausted + cooldown elapsed: the next persist is the
	// half-open probe; its success closes the circuit.
	clk.Advance(2 * time.Hour)
	out := submitPLA(t, s, 9, 0)
	waitDone(t, out.Job)
	waitHealthy(t, breaker)
	h = s.Health()
	if h.Status != "ok" {
		t.Fatalf("health after store recovery = %+v, want ok", h)
	}
}

// fakeClock is a race-safe manual clock for breaker tests: workers read
// it through Breaker.now while the test advances it.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func waitHealthy(t *testing.T, b *store.Breaker) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !b.Degraded() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("breaker never closed (state %s)", b.State())
}

// TestServerBackendPanicBecomesFailedJob: a panicking backend must fail
// the one job (typed ErrBackendPanic) and leave the worker pool serving.
func TestServerBackendPanicBecomesFailedJob(t *testing.T) {
	inner := func(ctx context.Context, f *tt.Function, opt pipeline.JobOptions) (*pipeline.JobResult, error) {
		return pipeline.RunJob(ctx, f, opt)
	}
	s, _ := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, Metrics: obs.NewRegistry(),
		Backend: Backend(chaos.Backend(inner, &chaos.WorkerFaults{Panic: &chaos.Trigger{On: 1}})),
	})
	out := submitPLA(t, s, 1, 0)
	waitDone(t, out.Job)
	status, _, errMsg := out.Job.snapshot()
	if status != StatusFailed || !strings.Contains(errMsg, ErrBackendPanic.Error()) {
		t.Fatalf("panicked job = %s (%q), want failed wrapping ErrBackendPanic", status, errMsg)
	}
	// The worker survived the panic: the next job runs normally. The
	// failure was not cached, so the same spec re-executes.
	out2 := submitPLA(t, s, 1, 0)
	waitDone(t, out2.Job)
	if status, _, _ := out2.Job.snapshot(); status != StatusDone {
		t.Fatalf("job after panic = %s, want done (worker must survive)", status)
	}
}

// TestServerQueueDropTerminatesJob: a chaos-dropped queue item must
// surface as an expired terminal job — never an accepted job that
// silently vanishes.
func TestServerQueueDropTerminatesJob(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Metrics: obs.NewRegistry()})
	s.queue.SetFaultHook(&chaos.QueueFaults{Drop: &chaos.Trigger{On: 1}})
	out := submitPLA(t, s, 1, 0)
	waitDone(t, out.Job)
	status, _, errMsg := out.Job.snapshot()
	if status != StatusExpired || !strings.Contains(errMsg, "expired") {
		t.Fatalf("dropped job = %s (%q), want expired", status, errMsg)
	}
	// Queue still delivers afterwards.
	out2 := submitPLA(t, s, 2, 0)
	waitDone(t, out2.Job)
	if status, _, _ := out2.Job.snapshot(); status != StatusDone {
		t.Fatalf("job after drop = %s, want done", status)
	}
}

// TestServerAbandonedWaiterKeepsJobAlive is the coalescing-abandonment
// guarantee: an HTTP waiter that disconnects does not cancel the shared
// job for the other waiters.
func TestServerAbandonedWaiterKeepsJobAlive(t *testing.T) {
	backend := &blockingBackend{release: make(chan struct{}), started: make(chan string, 1)}
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, Metrics: obs.NewRegistry(),
		Backend: backend.run,
	})
	body := fmt.Sprintf(`{"pla": %q}`, specPLA(1))

	// Waiter A: same spec, cancelled mid-wait.
	actx, acancel := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(actx, http.MethodPost, ts.URL+"/v1/synth", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		_, err := http.DefaultClient.Do(req)
		aDone <- err
	}()
	<-backend.started // A's job is executing

	// Waiter B coalesces onto the same in-flight job.
	bDone := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/synth", "application/json", strings.NewReader(body))
		if err != nil {
			bDone <- nil
			return
		}
		bDone <- resp
	}()
	time.Sleep(50 * time.Millisecond) // let B reach the coalesced wait

	// A abandons. The job must keep running for B.
	acancel()
	if err := <-aDone; err == nil {
		t.Fatal("cancelled waiter's request did not error")
	}
	time.Sleep(50 * time.Millisecond) // would-be cancellation propagates
	close(backend.release)

	select {
	case resp := <-bDone:
		if resp == nil {
			t.Fatal("surviving waiter's request failed")
		}
		var env SynthResponse
		if err := readJSON(resp, &env); err != nil {
			t.Fatal(err)
		}
		if env.Status != StatusDone || env.Result == nil {
			t.Fatalf("surviving waiter got %s, want done with result", env.Status)
		}
		if !env.Result.Verified {
			t.Fatal("surviving waiter got a zero result — job was cancelled by the abandoner")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("surviving waiter never got the result")
	}
}

func readJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("decode %q: %w", data, err)
	}
	return nil
}

// TestServerHealthzStates covers the healthz body across ok and draining.
func TestServerHealthzStates(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Metrics: obs.NewRegistry()})
	var h Health
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	if h.Status != "ok" || len(h.Reasons) != 0 {
		t.Fatalf("health = %+v, want ok", h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining = %d, want 503", resp.StatusCode)
	}
	if h.Status != "draining" {
		t.Fatalf("health = %+v, want draining", h)
	}
}

// TestServerHealthQueueSaturated: a full queue degrades health (the
// server is rejecting admissions) without taking it out of rotation.
func TestServerHealthQueueSaturated(t *testing.T) {
	backend := &blockingBackend{release: make(chan struct{}), started: make(chan string, 1)}
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1, Metrics: obs.NewRegistry(),
		Backend: backend.run,
	})
	defer close(backend.release)
	// One job occupies the worker, one fills the queue.
	submitPLA(t, s, 1, 0)
	<-backend.started
	submitPLA(t, s, 2, 0)

	var h Health
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	if h.Status != "degraded" || len(h.Reasons) == 0 || !strings.Contains(h.Reasons[0], "queue") {
		t.Fatalf("health = %+v, want degraded with queue reason", h)
	}
}
