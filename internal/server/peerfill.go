// Peer-to-peer cache fill: in a sharded deployment (Config.Peers), a
// shard that dequeues a cache miss first asks the key's ring owner for
// the finished result via GET /v1/cache/{key} before burning a worker
// on recomputation. Keys land on non-owners whenever the router hedges,
// fails over past a dead owner, or a client bypasses the router — all
// safe for correctness (results are content-addressed) but wasteful
// without this fetch-don't-recompute path.
//
// The fetch is strictly best-effort: one attempt, a short timeout, and
// a per-peer circuit breaker so a dead owner costs consecutive misses
// only until the breaker opens. Any failure falls through to local
// computation — peer fill can only ever save work, never lose a job.
//
// Loop safety: the cache endpoint is read-only and never initiates
// fetches of its own, so shard→owner fetches cannot cascade. The fetch
// still carries cluster.HeaderForwarded (set via the client's Header
// config) as forwarding hygiene, marking it as intra-cluster traffic.
package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"relsyn/client"
	"relsyn/internal/census"
	"relsyn/internal/cluster"
	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
	"relsyn/internal/store"
)

// peerClient is one remote shard reachable for cache fill.
type peerClient struct {
	addr    string
	client  *client.Client
	breaker *store.Breaker
}

// peerFill is the cluster view of one shard: the placement ring plus a
// fetch client per remote peer.
type peerFill struct {
	self    string
	ring    *cluster.Ring
	peers   map[string]*peerClient // remote peers only; self excluded
	timeout time.Duration

	hits   obs.Counter
	misses obs.Counter

	censusHits   obs.Counter
	censusMisses obs.Counter
}

// newPeerFill wires the cluster config. Returns an error when SelfAddr
// is missing from Peers — every shard must agree on the membership list
// or placement diverges.
func newPeerFill(cfg Config, reg *obs.Registry) (*peerFill, error) {
	ring, err := cluster.NewRing(cfg.Peers, cfg.PeerVNodes)
	if err != nil {
		return nil, err
	}
	self := strings.TrimSpace(cfg.SelfAddr)
	found := false
	for _, p := range ring.Peers() {
		if p == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("server: self address %q not in peer list %v", self, ring.Peers())
	}
	pf := &peerFill{
		self:    self,
		ring:    ring,
		peers:   make(map[string]*peerClient, len(ring.Peers())-1),
		timeout: cfg.PeerFillTimeout,
	}
	if pf.timeout <= 0 {
		pf.timeout = time.Second
	}
	reg.SetHelp("relsyn_cluster_peer_fill_hits_total", "Cache misses completed from the ring owner's cache instead of recomputing.")
	reg.SetHelp("relsyn_cluster_peer_fill_misses_total", "Peer cache-fill attempts that fell through to local computation.")
	reg.SetHelp("relsyn_cluster_peer_degraded", "1 while the peer's circuit breaker is open (fills skip it), by peer.")
	reg.RegisterCounter("relsyn_cluster_peer_fill_hits_total", &pf.hits)
	reg.RegisterCounter("relsyn_cluster_peer_fill_misses_total", &pf.misses)
	reg.SetHelp("relsyn_cluster_census_fill_hits_total", "Fused censuses fetched from the ring owner instead of recomputing.")
	reg.SetHelp("relsyn_cluster_census_fill_misses_total", "Peer census-fill attempts that fell through to local computation.")
	reg.RegisterCounter("relsyn_cluster_census_fill_hits_total", &pf.censusHits)
	reg.RegisterCounter("relsyn_cluster_census_fill_misses_total", &pf.censusMisses)
	for _, addr := range ring.Peers() {
		if addr == self {
			continue
		}
		cl, err := client.New(client.Config{
			BaseURL:     cluster.BaseURL(addr),
			HTTPClient:  &http.Client{Timeout: pf.timeout},
			MaxAttempts: 1, // best-effort: the fallback is computing locally
			Metrics:     reg,
			Header:      http.Header{cluster.HeaderForwarded: []string{self}},
		})
		if err != nil {
			return nil, fmt.Errorf("server: peer %s: %w", addr, err)
		}
		pc := &peerClient{
			addr:    addr,
			client:  cl,
			breaker: store.NewBreaker(0, 0),
		}
		reg.GaugeFunc("relsyn_cluster_peer_degraded", func() float64 {
			if pc.breaker.Degraded() {
				return 1
			}
			return 0
		}, obs.L("peer", addr))
		pf.peers[addr] = pc
	}
	return pf, nil
}

// specHashOf splits the spec-content half out of a full cache key
// ("<spec hash>|<options key>"). Ring placement uses the spec hash alone
// so every option-variant of one spec shares an owner (and its cache).
func specHashOf(key string) string {
	if i := strings.IndexByte(key, '|'); i >= 0 {
		return key[:i]
	}
	return key
}

// fetch tries to complete a cache miss from the key's ring owner.
// Returns (nil, false) — after counting a miss — on any failure: owner
// is self, breaker open, timeout, or the owner simply not holding the
// result. Only fetches targeting a remote owner count at all; locally
// owned keys are not peer-fill candidates.
func (pf *peerFill) fetch(ctx context.Context, key string) (*pipeline.JobResult, bool) {
	owner := pf.ring.Owner(specHashOf(key))
	pc := pf.peers[owner]
	if pc == nil {
		return nil, false // self-owned: compute locally, nothing to count
	}
	if !pc.breaker.Allow() {
		pf.misses.Inc()
		return nil, false
	}
	fctx, cancel := context.WithTimeout(ctx, pf.timeout)
	defer cancel()
	res, ok, err := pc.client.FetchCache(fctx, key)
	pc.breaker.Record(err)
	if err != nil || !ok || res == nil {
		pf.misses.Inc()
		return nil, false
	}
	pf.hits.Inc()
	return res, true
}

// fetchCensus tries to pull the spec's fused neighbor census from its
// ring owner (the same owner that holds the spec's results: placement
// uses the bare spec hash for both). Best-effort with the same breaker
// and timeout as result fill; any failure returns (nil, false) and the
// job computes its census locally.
func (pf *peerFill) fetchCensus(ctx context.Context, specHash string) (*census.FunctionCensus, bool) {
	owner := pf.ring.Owner(specHash)
	pc := pf.peers[owner]
	if pc == nil {
		return nil, false // self-owned: compute locally, nothing to count
	}
	if !pc.breaker.Allow() {
		pf.censusMisses.Inc()
		return nil, false
	}
	fctx, cancel := context.WithTimeout(ctx, pf.timeout)
	defer cancel()
	buf, ok, err := pc.client.FetchCensus(fctx, specHash)
	pc.breaker.Record(err)
	if err != nil || !ok {
		pf.censusMisses.Inc()
		return nil, false
	}
	fc, err := census.UnmarshalBinary(buf)
	if err != nil {
		pf.censusMisses.Inc()
		return nil, false
	}
	pf.censusHits.Inc()
	return fc, true
}
