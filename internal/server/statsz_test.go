package server

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"relsyn/internal/obs"
)

// TestStatszStableParseableJSON is the schema regression behind the
// fleet differ: /statsz must stay a single JSON document with the
// documented top-level keys present and no NaN/Inf leaking through
// writeJSON (encoding/json rejects non-finite floats, and writeJSON
// drops the encoder error — a NaN would silently truncate the body).
func TestStatszStableParseableJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Metrics: obs.NewRegistry()})

	// Exercise enough surface that histograms, cache counters, and queue
	// counters all have real values: one sync job (computed), the same
	// job again (cache hit), and one rejected body.
	pla := ".i 3\n.o 1\n01- 1\n111 1\n000 -\n.e\n"
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/synth", map[string]any{"pla": pla})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("synth %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/synth", map[string]any{"pla": "garbage"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hostile synth accepted: %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("statsz content-type %q", ct)
	}
	if !json.Valid(raw) {
		t.Fatalf("statsz is not valid JSON (truncated encode?):\n%s", raw)
	}
	// Non-finite floats must never reach the wire. Word-boundary match
	// so lowercase identifiers like "in_flight_keys" can't false-positive.
	if bad := regexp.MustCompile(`\b(NaN|Inf|Infinity)\b`); bad.Match(raw) {
		t.Fatalf("statsz leaks a non-finite float:\n%s", raw)
	}

	// The typed view must round-trip...
	var payload StatszPayload
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("statsz does not decode into StatszPayload: %v", err)
	}
	if payload.Workers != 2 || payload.Submitted < 2 || payload.Completed < 1 {
		t.Fatalf("statsz counters off: %+v", payload.Stats)
	}
	if payload.Cache.Hits < 1 {
		t.Fatalf("statsz cache.hits = %d, want >= 1 after a repeat", payload.Cache.Hits)
	}

	// ...and the untyped view must keep the documented key set — this is
	// what external scrapers (the fleet differ included) key on.
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"uptime_seconds", "workers", "busy_workers", "draining", "queue",
		"submitted", "completed", "failed", "rejected", "expired",
		"coalesced", "cache", "in_flight_keys", "metrics",
	} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("statsz missing required key %q:\n%s", key, raw)
		}
	}
	queue, ok := doc["queue"].(map[string]any)
	if !ok {
		t.Fatalf("statsz queue is %T, want object", doc["queue"])
	}
	for _, key := range []string{"depth", "len", "enqueued", "dequeued", "rejected"} {
		if _, ok := queue[key]; !ok {
			t.Fatalf("statsz queue missing %q: %v", key, queue)
		}
	}
	cache, ok := doc["cache"].(map[string]any)
	if !ok {
		t.Fatalf("statsz cache is %T, want object", doc["cache"])
	}
	for _, key := range []string{"hits", "misses", "len", "cap"} {
		if _, ok := cache[key]; !ok {
			t.Fatalf("statsz cache missing %q: %v", key, cache)
		}
	}
	metrics, ok := doc["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("statsz metrics is %T, want object", doc["metrics"])
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := metrics[key]; !ok {
			t.Fatalf("statsz metrics missing %q", key)
		}
	}
}
