package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"relsyn/internal/blif"
	"relsyn/internal/network"
	"relsyn/internal/obs"
	"relsyn/internal/pipeline"
)

// testBLIF is a 3-input full adder: enough internal structure for the
// extraction ladder to do real work, small enough for every engine.
const testBLIF = `.model fa
.inputs a b cin
.outputs sum cout
.names a b axb
10 1
01 1
.names axb cin sum
10 1
01 1
.names a b ab
11 1
.names axb cin ac
11 1
.names ab ac cout
1- 1
-1 1
.end
`

func postResyn(t *testing.T, base string, body any) (*http.Response, ResynResponse, []byte) {
	t.Helper()
	resp, raw := postJSON(t, base+"/v1/resyn", body)
	var rr ResynResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatalf("resyn body not JSON: %v\n%s", err, raw)
	}
	return resp, rr, raw
}

// The /v1/resyn happy path: the response carries the job result and a
// re-parseable BLIF whose primary-output functions match the input's.
func TestResynEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Metrics: obs.NewRegistry()})
	for _, mode := range []string{"exhaustive", "windowed-sat"} {
		resp, rr, raw := postResyn(t, ts.URL, map[string]any{
			"blif":    testBLIF,
			"options": map[string]any{"dc_mode": mode, "threshold": 0.6},
		})
		if resp.StatusCode != http.StatusOK || rr.Status != StatusDone {
			t.Fatalf("%s: HTTP %d status %q: %s", mode, resp.StatusCode, rr.Status, raw)
		}
		if rr.Result == nil || rr.Result.DCMode != mode || !rr.Result.Equivalent {
			t.Fatalf("%s: result %+v", mode, rr.Result)
		}
		if rr.Result.NumPI != 3 || rr.Result.NumPO != 2 {
			t.Fatalf("%s: interface %+v", mode, rr.Result)
		}
		orig, err := blif.Parse(strings.NewReader(testBLIF))
		if err != nil {
			t.Fatal(err)
		}
		back, err := blif.Parse(strings.NewReader(rr.BLIF))
		if err != nil {
			t.Fatalf("%s: response BLIF unparseable: %v\n%s", mode, err, rr.BLIF)
		}
		if !back.POFunction().Equal(orig.POFunction()) {
			t.Fatalf("%s: reassigned network changed PO functions", mode)
		}
	}
}

// Malformed inputs are 400 "invalid": bad JSON, empty/unparseable BLIF,
// and options that fail validation never reach the backend.
func TestResynEndpointRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, Metrics: obs.NewRegistry(),
		ResynBackend: func(context.Context, *network.Network, pipeline.JobOptions) (*pipeline.NetworkJobResult, error) {
			t.Error("backend reached for an invalid request")
			return nil, errors.New("unreachable")
		},
	})
	cases := []struct {
		name string
		body any
	}{
		{"empty blif", map[string]any{"blif": ""}},
		{"unparseable blif", map[string]any{"blif": ".model x\n.inputs a\n.outputs y\n.end\n"}},
		{"bad dc_mode", map[string]any{"blif": testBLIF, "options": map[string]any{"dc_mode": "bogus"}}},
		{"bad threshold", map[string]any{"blif": testBLIF, "options": map[string]any{"method": "lcf", "threshold": 2.0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, rr, raw := postResyn(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400: %s", resp.StatusCode, raw)
			}
			if rr.Status != "invalid" || rr.Error == "" {
				t.Fatalf("envelope %+v", rr)
			}
		})
	}
}

// A method that passes option validation but is refused by the network
// job itself ("rank") is a job failure — 200 with status "failed" — not
// a 400: the request was well-formed, the job outcome is data.
func TestResynEndpointNonLCFMethod(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Metrics: obs.NewRegistry()})
	resp, rr, raw := postResyn(t, ts.URL, map[string]any{
		"blif":    testBLIF,
		"options": map[string]any{"method": "rank"},
	})
	if resp.StatusCode != http.StatusOK || rr.Status != StatusFailed {
		t.Fatalf("HTTP %d status %q: %s", resp.StatusCode, rr.Status, raw)
	}
	if !strings.Contains(rr.Error, "method") {
		t.Fatalf("error %q does not explain the method refusal", rr.Error)
	}
}

// A backend failure reports inside a 200 envelope with status "failed",
// mirroring /v1/synth's "the request was served; the outcome is data".
func TestResynEndpointBackendFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, Metrics: obs.NewRegistry(),
		ResynBackend: func(context.Context, *network.Network, pipeline.JobOptions) (*pipeline.NetworkJobResult, error) {
			return &pipeline.NetworkJobResult{NumPI: 3}, errors.New("engine exploded")
		},
	})
	resp, rr, raw := postResyn(t, ts.URL, map[string]any{"blif": testBLIF})
	if resp.StatusCode != http.StatusOK || rr.Status != StatusFailed {
		t.Fatalf("HTTP %d status %q: %s", resp.StatusCode, rr.Status, raw)
	}
	if !strings.Contains(rr.Error, "engine exploded") || rr.Result == nil {
		t.Fatalf("envelope %+v", rr)
	}
}

// The handler defaults method to lcf and threshold to 0.55, and passes
// the server's timeout policy down: the backend sees fully-normalized
// options.
func TestResynEndpointDefaults(t *testing.T) {
	var got pipeline.JobOptions
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, Metrics: obs.NewRegistry(),
		ResynBackend: func(_ context.Context, nw *network.Network, jo pipeline.JobOptions) (*pipeline.NetworkJobResult, error) {
			got = jo
			return pipeline.RunNetworkJob(context.Background(), nw, jo)
		},
	})
	resp, rr, raw := postResyn(t, ts.URL, map[string]any{"blif": testBLIF})
	if resp.StatusCode != http.StatusOK || rr.Status != StatusDone {
		t.Fatalf("HTTP %d status %q: %s", resp.StatusCode, rr.Status, raw)
	}
	if got.Method != pipeline.JobMethodLCF || got.Threshold != 0.55 {
		t.Fatalf("defaults not applied: %+v", got)
	}
	if got.TimeoutMs != (30 * 1000) { // DefaultTimeout default
		t.Fatalf("timeout default not applied: %d", got.TimeoutMs)
	}
}

// Draining refuses resyn work with 503, like every other admission path.
func TestResynEndpointDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Metrics: obs.NewRegistry()})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, rr, raw := postResyn(t, ts.URL, map[string]any{"blif": testBLIF})
	if resp.StatusCode != http.StatusServiceUnavailable || rr.Status != "draining" {
		t.Fatalf("HTTP %d status %q: %s", resp.StatusCode, rr.Status, raw)
	}
}
