// Package sat is a small CNF satisfiability solver: DPLL search with
// two-watched-literal unit propagation, conflict-driven clause learning
// (first-UIP), non-chronological backjumping, and VSIDS-style activity
// ordering. It is the engine behind SAT-based equivalence checking of
// AIGs (package aig), the scalable alternative to exhaustive simulation
// — the role SAT plays in the paper's reference [16] (Mishchenko et al.,
// "Using simulation and satisfiability to compute flexibilities in
// Boolean networks").
package sat

import (
	"errors"
	"fmt"
)

// ErrBudget is the typed budget-exhaustion sentinel for SAT-backed
// computations: callers that receive Unknown from Solve wrap ErrBudget
// into the error they return, so upstream layers (the pipeline
// degradation ladder, partial-result extractors) can distinguish "ran
// out of conflicts / interrupted" from a hard failure with errors.Is
// instead of string matching. A budget error is always retryable with a
// larger conflict cap, and any partial results accumulated before it
// are sound — they just cover fewer cases.
var ErrBudget = errors.New("sat: conflict budget exhausted")

// Lit is a literal: variable index shifted left once, LSB = negated.
// Variables are 1-based so the zero Lit is invalid.
type Lit int32

// MkLit builds a literal from a 1-based variable and polarity.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's 1-based variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not complements the literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var())
	}
	return fmt.Sprintf("%d", l.Var())
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// Solver holds the clause database and search state.
type Solver struct {
	numVars int
	clauses [][]Lit // clause 0.. ; learned clauses appended
	watches map[Lit][]int

	assign   []lbool // 1-based by variable
	level    []int
	reason   []int // clause index or -1 for decisions/unassigned
	trail    []Lit
	trailLim []int

	activity []float64
	varInc   float64

	propagations int64
	conflicts    int64
	maxConflicts int64
	interrupt    func() bool
}

// DefaultMaxConflicts is the conflict budget applied when none is set.
const DefaultMaxConflicts = 1 << 22

// New returns a solver for numVars variables (1-based).
func New(numVars int) *Solver {
	s := &Solver{
		numVars:      numVars,
		watches:      map[Lit][]int{},
		assign:       make([]lbool, numVars+1),
		level:        make([]int, numVars+1),
		reason:       make([]int, numVars+1),
		activity:     make([]float64, numVars+1),
		varInc:       1,
		maxConflicts: DefaultMaxConflicts,
	}
	for i := range s.reason {
		s.reason[i] = -1
	}
	return s
}

// NumVars returns the declared variable count.
func (s *Solver) NumVars() int { return s.numVars }

// SetMaxConflicts bounds the search effort: once the solver has analyzed
// more than max conflicts, Solve returns Unknown. max <= 0 restores the
// default budget (DefaultMaxConflicts). Callers that need a hard-real-time
// answer pair this with SetInterrupt.
func (s *Solver) SetMaxConflicts(max int64) {
	if max <= 0 {
		max = DefaultMaxConflicts
	}
	s.maxConflicts = max
}

// SetInterrupt installs a cooperative cancellation hook: fn is polled at
// every conflict and, when it reports true, Solve stops and returns
// Unknown. A nil fn removes the hook.
func (s *Solver) SetInterrupt(fn func() bool) { s.interrupt = fn }

// AddClause adds a clause; it returns false if the database is already
// trivially unsatisfiable (empty clause).
func (s *Solver) AddClause(lits ...Lit) bool {
	// Deduplicate and detect tautologies.
	seen := map[Lit]bool{}
	var c []Lit
	for _, l := range lits {
		if l.Var() < 1 || l.Var() > s.numVars {
			panic(fmt.Sprintf("sat: literal %v out of range", l))
		}
		if seen[l.Not()] {
			return true // tautology: x ∨ ¬x
		}
		if !seen[l] {
			seen[l] = true
			c = append(c, l)
		}
	}
	if len(c) == 0 {
		s.clauses = append(s.clauses, c)
		return false
	}
	s.attach(c)
	return true
}

func (s *Solver) attach(c []Lit) {
	idx := len(s.clauses)
	s.clauses = append(s.clauses, c)
	s.watches[c[0]] = append(s.watches[c[0]], idx)
	if len(c) > 1 {
		s.watches[c[1]] = append(s.watches[c[1]], idx)
	}
}

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

func (s *Solver) enqueue(l Lit, reason int) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = reason
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate runs unit propagation; it returns the index of a conflicting
// clause or -1.
func (s *Solver) propagate(qhead *int) int {
	for *qhead < len(s.trail) {
		l := s.trail[*qhead]
		*qhead++
		s.propagations++
		falsified := l.Not()
		ws := s.watches[falsified]
		var kept []int
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			c := s.clauses[ci]
			if len(c) == 1 {
				// A watched unit clause whose literal got falsified.
				kept = append(kept, ci)
				kept = append(kept, ws[wi+1:]...)
				s.watches[falsified] = kept
				return ci
			}
			// Ensure the falsified literal is at position 1.
			if c[0] == falsified {
				c[0], c[1] = c[1], c[0]
			}
			if s.value(c[0]) == lTrue {
				kept = append(kept, ci)
				continue
			}
			// Find a new watch.
			moved := false
			for k := 2; k < len(c); k++ {
				if s.value(c[k]) != lFalse {
					c[1], c[k] = c[k], c[1]
					s.watches[c[1]] = append(s.watches[c[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, ci)
			// Unit or conflicting.
			if !s.enqueue(c[0], ci) {
				kept = append(kept, ws[wi+1:]...)
				s.watches[falsified] = kept
				return ci
			}
		}
		s.watches[falsified] = kept
	}
	return -1
}

// analyze computes the first-UIP learned clause and backjump level.
func (s *Solver) analyze(conflict int) ([]Lit, int) {
	learned := []Lit{0} // slot 0 for the asserting literal
	seen := make([]bool, s.numVars+1)
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	ci := conflict

	for {
		c := s.clauses[ci]
		for _, q := range c {
			if p != 0 && q == p {
				continue
			}
			v := q.Var()
			if !seen[v] && s.level[v] > 0 {
				seen[v] = true
				s.bumpVar(v)
				if s.level[v] == s.decisionLevel() {
					counter++
				} else {
					learned = append(learned, q)
				}
			}
		}
		// Pick the next trail literal at the current level to resolve on.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		ci = s.reason[p.Var()]
	}
	learned[0] = p.Not()

	// Backjump level = max level among the other literals.
	bl := 0
	for _, q := range learned[1:] {
		if s.level[q.Var()] > bl {
			bl = s.level[q.Var()]
		}
	}
	return learned, bl
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = -1
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
}

func (s *Solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.numVars; v++ {
		if s.assign[v] == lUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// Result of a Solve call.
type Result int

// Solve outcomes.
const (
	Unsat Result = iota
	Sat
	Unknown // conflict budget exhausted
)

// Solve decides satisfiability under the optional assumptions. On Sat,
// Model reports the satisfying assignment.
func (s *Solver) Solve(assumptions ...Lit) Result {
	// Empty clause already present? Enqueue root-level units.
	s.cancelUntil(0)
	qhead := 0
	for ci, c := range s.clauses {
		switch len(c) {
		case 0:
			return Unsat
		case 1:
			if !s.enqueue(c[0], ci) {
				return Unsat
			}
		}
	}
	if s.propagate(&qhead) != -1 {
		return Unsat
	}
	// Apply assumptions as level-1.. decisions.
	for _, a := range assumptions {
		switch s.value(a) {
		case lTrue:
			continue
		case lFalse:
			s.cancelUntil(0)
			return Unsat
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(a, -1)
		if s.propagate(&qhead) != -1 {
			s.cancelUntil(0)
			return Unsat
		}
	}
	assumptionLevel := s.decisionLevel()

	for {
		conflict := s.propagate(&qhead)
		if conflict != -1 {
			s.conflicts++
			if s.conflicts > s.maxConflicts || (s.interrupt != nil && s.interrupt()) {
				s.cancelUntil(0)
				return Unknown
			}
			if s.decisionLevel() <= assumptionLevel {
				s.cancelUntil(0)
				return Unsat
			}
			learned, bl := s.analyze(conflict)
			if bl < assumptionLevel {
				bl = assumptionLevel
			}
			s.cancelUntil(bl)
			qhead = len(s.trail)
			// Attach the learned clause (units too, so the knowledge
			// survives later backjumps) and assert its first literal.
			s.attach(learned)
			if !s.enqueue(learned[0], len(s.clauses)-1) {
				s.cancelUntil(0)
				return Unsat
			}
			s.varInc *= 1.05
			continue
		}
		if s.interrupt != nil && s.interrupt() {
			s.cancelUntil(0)
			return Unknown
		}
		v := s.pickBranchVar()
		if v == 0 {
			return Sat // all assigned, no conflict
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(MkLit(v, true), -1) // branch false first
	}
}

// Model returns the value of variable v after a Sat result.
func (s *Solver) Model(v int) bool { return s.assign[v] == lTrue }

// Stats reports (propagations, conflicts).
func (s *Solver) Stats() (int64, int64) { return s.propagations, s.conflicts }
