package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New(2)
	s.AddClause(MkLit(1, false))
	s.AddClause(MkLit(2, true))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Model(1) || s.Model(2) {
		t.Fatalf("model wrong: x1=%v x2=%v", s.Model(1), s.Model(2))
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New(1)
	if ok := s.AddClause(); ok {
		t.Fatal("empty clause reported satisfiable database")
	}
	if s.Solve() != Unsat {
		t.Fatal("empty clause not Unsat")
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := New(1)
	s.AddClause(MkLit(1, false))
	s.AddClause(MkLit(1, true))
	if s.Solve() != Unsat {
		t.Fatal("x ∧ ¬x should be Unsat")
	}
}

func TestTautologyClauseDropped(t *testing.T) {
	s := New(2)
	s.AddClause(MkLit(1, false), MkLit(1, true)) // x ∨ ¬x
	s.AddClause(MkLit(2, false))
	if s.Solve() != Sat {
		t.Fatal("tautology should not constrain anything")
	}
}

func TestPigeonhole3into2(t *testing.T) {
	// PHP(3,2): 3 pigeons, 2 holes — classic small Unsat instance.
	// var p(i,h) = 1 + i*2 + h, i in 0..2, h in 0..1.
	v := func(i, h int) Lit { return MkLit(1+i*2+h, false) }
	s := New(6)
	for i := 0; i < 3; i++ {
		s.AddClause(v(i, 0), v(i, 1)) // each pigeon somewhere
	}
	for h := 0; h < 2; h++ {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				s.AddClause(v(i, h).Not(), v(j, h).Not()) // no sharing
			}
		}
	}
	if s.Solve() != Unsat {
		t.Fatal("PHP(3,2) should be Unsat")
	}
}

func TestAssumptions(t *testing.T) {
	// (x1 ∨ x2) ∧ (¬x1 ∨ x3)
	s := New(3)
	s.AddClause(MkLit(1, false), MkLit(2, false))
	s.AddClause(MkLit(1, true), MkLit(3, false))
	if s.Solve(MkLit(1, false), MkLit(3, true)) != Unsat {
		t.Fatal("assuming x1 ∧ ¬x3 should be Unsat")
	}
	if s.Solve(MkLit(1, false)) != Sat {
		t.Fatal("assuming x1 alone should be Sat")
	}
	if !s.Model(3) {
		t.Fatal("x3 must be true when x1 assumed")
	}
	// Solver must be reusable after assumption calls.
	if s.Solve() != Sat {
		t.Fatal("plain Solve after assumptions should be Sat")
	}
}

// brute checks satisfiability by exhaustive enumeration.
func brute(numVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(numVars); m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				val := m>>uint(l.Var()-1)&1 == 1
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(10)
		// Around the 3-SAT phase transition for small n.
		m := 2 + rng.Intn(5*n)
		var clauses [][]Lit
		s := New(n)
		for i := 0; i < m; i++ {
			var c []Lit
			for k := 0; k < 3; k++ {
				c = append(c, MkLit(1+rng.Intn(n), rng.Intn(2) == 0))
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		want := brute(n, clauses)
		got := s.Solve()
		if got == Unknown {
			t.Fatal("budget exhausted on tiny instance")
		}
		if (got == Sat) != want {
			t.Fatalf("trial %d: Solve=%v, brute=%v (n=%d m=%d)", trial, got, want, n, m)
		}
		if got == Sat {
			// The returned model must actually satisfy every clause.
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.Model(l.Var()) != l.Neg() {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model does not satisfy clause %v", trial, c)
				}
			}
		}
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(7, true)
	if l.Var() != 7 || !l.Neg() || l.Not().Neg() || l.Not().Var() != 7 {
		t.Fatal("literal helpers broken")
	}
	if l.String() != "-7" || l.Not().String() != "7" {
		t.Fatalf("String: %s %s", l, l.Not())
	}
}

func TestOutOfRangeLiteralPanics(t *testing.T) {
	s := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.AddClause(MkLit(3, false))
}

func BenchmarkRandom3SAT50(b *testing.B) {
	rng := rand.New(rand.NewSource(212))
	for i := 0; i < b.N; i++ {
		n := 50
		s := New(n)
		for j := 0; j < 4*n; j++ {
			s.AddClause(
				MkLit(1+rng.Intn(n), rng.Intn(2) == 0),
				MkLit(1+rng.Intn(n), rng.Intn(2) == 0),
				MkLit(1+rng.Intn(n), rng.Intn(2) == 0))
		}
		s.Solve()
	}
}
