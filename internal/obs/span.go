// Lightweight span tracing.
//
// Tracing is opt-in per call tree: WithTrace(ctx, name) plants a root
// span in the context; StartSpan then records nested timed spans.
// Without WithTrace, StartSpan returns a nil *Span and the unchanged
// context — every Span method is nil-safe, so instrumented code pays one
// context lookup and nothing else when tracing is off.
//
// Span names follow `<subsystem>/<detail>` (DESIGN §8), e.g.
// "pipeline/run", "stage/assign/bdd", "http/v1/synth". Attributes carry
// bounded diagnostic detail: budget settings, degradation reasons,
// ladder rungs.
package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

type spanCtxKey struct{}

// Span is one timed node of a trace tree.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Label
	children []*Span
}

// WithTrace enables tracing on ctx and returns the derived context plus
// the root span. The caller owns the root: call End before rendering.
func WithTrace(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartSpan opens a child span under the context's current span. When
// the context carries no trace (WithTrace was never called), it returns
// ctx unchanged and a nil span whose methods are all no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, s)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// End closes the span. Idempotent; nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr records a key=value attribute. Nil-safe. Setting an existing
// key overwrites it.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
}

// SetAttrf is SetAttr with fmt.Sprintf formatting of the value.
func (s *Span) SetAttrf(key, format string, args ...any) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf(format, args...))
}

// Name returns the span's name ("" for nil spans).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns end−start for ended spans, time-since-start for live
// ones, and 0 for nil spans.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Attrs returns a copy of the span's attributes, sorted by key.
func (s *Span) Attrs() []Label {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := cloneLabels(s.attrs)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Children returns a copy of the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Render writes the span tree as an indented listing:
//
//	pipeline/run                                12.8ms method=rank
//	  stage/assign/bdd                           3.1ms reason=budget
//	  stage/assign/dense                         1.9ms
//
// Durations are formatted with time.Duration rounding to keep lines
// readable; attributes print in sorted-key order. Nil-safe.
func (s *Span) Render(w io.Writer) error {
	if s == nil {
		return nil
	}
	return s.render(w, 0)
}

func (s *Span) render(w io.Writer, depth int) error {
	indent := strings.Repeat("  ", depth)
	name := indent + s.Name()
	pad := 44 - len(name)
	if pad < 1 {
		pad = 1
	}
	line := fmt.Sprintf("%s%s%10s", name, strings.Repeat(" ", pad),
		s.Duration().Round(10*time.Microsecond))
	for _, a := range s.Attrs() {
		line += " " + a.Key + "=" + a.Value
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := c.render(w, depth+1); err != nil {
			return err
		}
	}
	return nil
}
