package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNoopWithoutTrace(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "stage/assign")
	if s != nil {
		t.Fatal("StartSpan without WithTrace must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("context must be unchanged when tracing is off")
	}
	// Every method must be nil-safe.
	s.End()
	s.SetAttr("k", "v")
	s.SetAttrf("k", "%d", 1)
	if s.Name() != "" || s.Duration() != 0 || s.Attrs() != nil || s.Children() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	if err := s.Render(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("no span expected in a bare context")
	}
}

func TestSpanTreeNesting(t *testing.T) {
	ctx, root := WithTrace(context.Background(), "pipeline/run")
	aCtx, a := StartSpan(ctx, "stage/assign/bdd")
	_, a1 := StartSpan(aCtx, "stage/assign/bdd/rank")
	a1.End()
	a.SetAttr("reason", "budget")
	a.End()
	_, b := StartSpan(ctx, "stage/assign/dense")
	b.End()
	root.SetAttr("method", "rank")
	root.End()

	kids := root.Children()
	if len(kids) != 2 {
		t.Fatalf("root children = %d, want 2", len(kids))
	}
	if kids[0].Name() != "stage/assign/bdd" || kids[1].Name() != "stage/assign/dense" {
		t.Fatalf("children order wrong: %q, %q", kids[0].Name(), kids[1].Name())
	}
	grand := kids[0].Children()
	if len(grand) != 1 || grand[0].Name() != "stage/assign/bdd/rank" {
		t.Fatalf("grandchildren wrong: %+v", grand)
	}
	if len(kids[1].Children()) != 0 {
		t.Fatal("dense rung must have no children")
	}
	attrs := kids[0].Attrs()
	if len(attrs) != 1 || attrs[0] != L("reason", "budget") {
		t.Fatalf("attrs = %+v", attrs)
	}
}

func TestSpanDurationsAndIdempotentEnd(t *testing.T) {
	_, s := WithTrace(context.Background(), "x")
	time.Sleep(2 * time.Millisecond)
	s.End()
	d := s.Duration()
	if d < time.Millisecond {
		t.Fatalf("duration %v too small", d)
	}
	time.Sleep(2 * time.Millisecond)
	s.End() // must not move the end time
	if got := s.Duration(); got != d {
		t.Fatalf("End not idempotent: %v != %v", got, d)
	}
}

func TestSpanSetAttrOverwrites(t *testing.T) {
	_, s := WithTrace(context.Background(), "x")
	s.SetAttr("k", "1")
	s.SetAttrf("k", "%d", 2)
	s.SetAttr("a", "z")
	attrs := s.Attrs()
	if len(attrs) != 2 || attrs[0] != L("a", "z") || attrs[1] != L("k", "2") {
		t.Fatalf("attrs = %+v", attrs)
	}
}

func TestSpanRender(t *testing.T) {
	ctx, root := WithTrace(context.Background(), "pipeline/run")
	c1Ctx, c1 := StartSpan(ctx, "stage/synth/resyn")
	_, g := StartSpan(c1Ctx, "stage/synth/resyn/refactor")
	g.End()
	c1.SetAttr("reason", "panic")
	c1.End()
	root.End()

	var buf bytes.Buffer
	if err := root.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "pipeline/run") {
		t.Fatalf("line 0: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  stage/synth/resyn") || !strings.Contains(lines[1], "reason=panic") {
		t.Fatalf("line 1: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    stage/synth/resyn/refactor") {
		t.Fatalf("line 2: %q", lines[2])
	}
}

// TestSpanConcurrentChildren hammers one parent from many goroutines;
// run under -race this verifies the span tree is safe for concurrent
// instrumentation (e.g. parallel batch items sharing a request span).
func TestSpanConcurrentChildren(t *testing.T) {
	ctx, root := WithTrace(context.Background(), "root")
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := StartSpan(ctx, "child")
			s.SetAttr("k", "v")
			s.End()
			_ = root.Duration() // concurrent reader
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != n {
		t.Fatalf("children = %d, want %d", got, n)
	}
}
