// Package obs is the dependency-free observability layer: a metrics
// registry (atomic counters, gauges, ring-buffer histograms with
// p50/p95/p99 summaries) plus lightweight span tracing (span.go).
//
// Design constraints, in order:
//
//  1. Zero dependencies. The package imports only the standard library,
//     so every internal package — including the hot synthesis pipeline —
//     can instrument itself without pulling a metrics stack into the
//     build.
//  2. Cheap on the hot path. Counter.Add and Gauge.Set are single
//     atomic operations; Histogram.Observe is one short mutex-protected
//     ring-buffer write. Series lookup (Registry.Counter etc.) takes a
//     lock, so call sites that fire per-event should resolve their
//     series once and hold the pointer.
//  3. Deterministic output. WritePrometheus emits series sorted by
//     (name, labels) so golden tests can compare exact bytes, and
//     Snapshot returns the same data JSON-shaped for /statsz.
//
// Naming convention (see DESIGN §8): metrics are
// `relsyn_<subsystem>_<quantity>[_<unit>][_total]`, e.g.
// `relsyn_queue_wait_seconds`, `relsyn_cache_hits_total`. Label keys are
// lower_snake; label cardinality must be bounded by code (stage names,
// ladder rungs, routes — never user input).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters are
// monotonic by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float value (stored as math.Float64bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (lock-free CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histogramRing is the default number of retained observations per
// histogram. Quantiles are computed over this sliding window; count and
// sum are exact over the full lifetime.
const histogramRing = 1024

// Histogram records float observations in a fixed ring buffer and
// reports sliding-window quantiles plus exact lifetime count/sum. The
// zero value is ready to use (the ring allocates on first Observe), so
// subsystems can embed histograms directly and register them later via
// Registry.RegisterHistogram.
type Histogram struct {
	mu    sync.Mutex
	ring  []float64
	next  int
	full  bool
	count int64
	sum   float64
}

func newHistogram() *Histogram {
	return &Histogram{ring: make([]float64, histogramRing)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if h.ring == nil {
		h.ring = make([]float64, histogramRing)
	}
	h.ring[h.next] = v
	h.next++
	if h.next == len(h.ring) {
		h.next, h.full = 0, true
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// window returns a copy of the retained observations.
func (h *Histogram) window() []float64 {
	n := h.next
	if h.full {
		n = len(h.ring)
	}
	out := make([]float64, n)
	copy(out, h.ring[:n])
	return out
}

// Quantile returns the q-quantile (q in [0,1]) of the retained window,
// or NaN when empty. Uses the nearest-rank method on a sorted copy.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	w := h.window()
	h.mu.Unlock()
	return quantileOf(w, q)
}

func quantileOf(w []float64, q float64) float64 {
	if len(w) == 0 {
		return math.NaN()
	}
	sort.Float64s(w)
	if q <= 0 {
		return w[0]
	}
	if q >= 1 {
		return w[len(w)-1]
	}
	idx := int(math.Ceil(q*float64(len(w)))) - 1
	if idx < 0 {
		idx = 0
	}
	return w[idx]
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram. Quantiles are NaN-free: an empty
// histogram reports zeros.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	w := h.window()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	h.mu.Unlock()
	if len(w) == 0 {
		return s
	}
	sort.Float64s(w)
	s.P50 = quantileSorted(w, 0.5)
	s.P95 = quantileSorted(w, 0.95)
	s.P99 = quantileSorted(w, 0.99)
	return s
}

func quantileSorted(w []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(w)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(w) {
		idx = len(w) - 1
	}
	return w[idx]
}

// series is one registered (name, labels) time series.
type series struct {
	name   string
	labels []Label // sorted by key
	key    string  // rendered "name{k="v",...}" identity
}

// Registry holds named metric series. The zero value is not usable; use
// NewRegistry. Default is the process-wide registry that all relsyn
// subsystems instrument by default.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	gaugeFuncs map[string]func() float64
	meta       map[string]series // key -> identity (for output)
	help       map[string]string // metric name -> HELP text
}

// Default is the process-wide registry.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		gaugeFuncs: make(map[string]func() float64),
		meta:       make(map[string]series),
		help:       make(map[string]string),
	}
}

// SetHelp sets the Prometheus HELP text for a metric name.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	r.help[sanitizeName(name)] = help
	r.mu.Unlock()
}

// Counter returns (creating if needed) the counter series for
// name+labels. The returned pointer is stable; hot paths should cache it.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s := makeSeries(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[s.key]; ok {
		return c
	}
	c := &Counter{}
	r.counters[s.key] = c
	r.meta[s.key] = s
	return c
}

// Gauge returns (creating if needed) the gauge series for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s := makeSeries(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[s.key]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[s.key] = g
	r.meta[s.key] = s
	return g
}

// Histogram returns (creating if needed) the histogram series for
// name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	s := makeSeries(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[s.key]; ok {
		return h
	}
	h := newHistogram()
	r.hists[s.key] = h
	r.meta[s.key] = s
	return h
}

// RegisterCounter binds an existing counter (e.g. a zero-value Counter
// embedded in another struct) into the registry under name+labels,
// replacing any prior series with that identity. This lets a subsystem
// own its counters as plain fields — one source of truth — while still
// exporting them.
func (r *Registry) RegisterCounter(name string, c *Counter, labels ...Label) {
	s := makeSeries(name, labels)
	r.mu.Lock()
	r.counters[s.key] = c
	r.meta[s.key] = s
	r.mu.Unlock()
}

// RegisterGauge binds an existing gauge into the registry (see
// RegisterCounter).
func (r *Registry) RegisterGauge(name string, g *Gauge, labels ...Label) {
	s := makeSeries(name, labels)
	r.mu.Lock()
	r.gauges[s.key] = g
	r.meta[s.key] = s
	r.mu.Unlock()
}

// RegisterHistogram binds an existing histogram into the registry (see
// RegisterCounter).
func (r *Registry) RegisterHistogram(name string, h *Histogram, labels ...Label) {
	s := makeSeries(name, labels)
	r.mu.Lock()
	r.hists[s.key] = h
	r.meta[s.key] = s
	r.mu.Unlock()
}

// GaugeFunc registers (or replaces) a callback gauge, evaluated at
// scrape/snapshot time. Use for live values owned elsewhere (queue
// occupancy, cache length) so they cannot drift from the truth.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	s := makeSeries(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[s.key] = fn
	r.meta[s.key] = s
}

// Snapshot is the JSON shape of a registry: every series keyed by its
// rendered identity.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every series. Callback gauges are evaluated outside
// the registry lock (they may take their own locks).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	snap := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, c := range r.counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		snap.Gauges[k] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for k, fn := range r.gaugeFuncs {
		funcs[k] = fn
	}
	r.mu.Unlock()
	for k, h := range hists {
		snap.Histograms[k] = h.Snapshot()
	}
	for k, fn := range funcs {
		snap.Gauges[k] = fn()
	}
	return snap
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges emit one line per series;
// histograms emit a summary (quantile series plus _sum and _count).
// Output is sorted by (metric name, label set) and therefore
// deterministic for a fixed registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type row struct {
		s    series
		kind string // "counter", "gauge", "summary"
		val  float64
		hist *Histogram
		fn   func() float64
	}
	r.mu.Lock()
	rows := make([]row, 0, len(r.meta))
	for k, c := range r.counters {
		rows = append(rows, row{s: r.meta[k], kind: "counter", val: float64(c.Value())})
	}
	for k, g := range r.gauges {
		rows = append(rows, row{s: r.meta[k], kind: "gauge", val: g.Value()})
	}
	for k, fn := range r.gaugeFuncs {
		rows = append(rows, row{s: r.meta[k], kind: "gauge", fn: fn})
	}
	for k, h := range r.hists {
		rows = append(rows, row{s: r.meta[k], kind: "summary", hist: h})
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	// Evaluate callbacks and snapshot histograms outside the lock.
	snaps := make([]HistogramSnapshot, len(rows))
	for i := range rows {
		if rows[i].fn != nil {
			rows[i].val = rows[i].fn()
		}
		if rows[i].hist != nil {
			snaps[i] = rows[i].hist.Snapshot()
		}
	}
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := rows[order[a]], rows[order[b]]
		if ra.s.name != rb.s.name {
			return ra.s.name < rb.s.name
		}
		return ra.s.key < rb.s.key
	})

	var lastName string
	for _, i := range order {
		rw := rows[i]
		if rw.s.name != lastName {
			if h, ok := help[rw.s.name]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", rw.s.name, escapeHelp(h)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", rw.s.name, rw.kind); err != nil {
				return err
			}
			lastName = rw.s.name
		}
		if rw.kind == "summary" {
			sn := snaps[i]
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", sn.P50}, {"0.95", sn.P95}, {"0.99", sn.P99}} {
				if _, err := fmt.Fprintf(w, "%s %s\n",
					renderKey(rw.s.name, append(cloneLabels(rw.s.labels), L("quantile", q.q))),
					formatFloat(q.v)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", renderKey(rw.s.name+"_sum", rw.s.labels), formatFloat(sn.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", renderKey(rw.s.name+"_count", rw.s.labels), sn.Count); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", rw.s.key, formatFloat(rw.val)); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a sample value: integers without a decimal point,
// everything else in Go's shortest-round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// makeSeries canonicalizes a metric identity: sanitized name, labels
// sorted by key.
func makeSeries(name string, labels []Label) series {
	s := series{name: sanitizeName(name), labels: cloneLabels(labels)}
	sort.Slice(s.labels, func(i, j int) bool { return s.labels[i].Key < s.labels[j].Key })
	for i := range s.labels {
		s.labels[i].Key = sanitizeName(s.labels[i].Key)
	}
	s.key = renderKey(s.name, s.labels)
	return s
}

func cloneLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	return out
}

// renderKey renders `name{k="v",...}` (or bare name without labels).
func renderKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// sanitizeName maps arbitrary strings onto the Prometheus metric/label
// name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b = append(b, c)
		} else {
			b = append(b, '_')
		}
	}
	return string(b)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
