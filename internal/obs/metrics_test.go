package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("relsyn_test_total", L("worker", "any"))
	const goroutines, perG = 64, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), int64(goroutines*perG); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	// Same series resolves to the same pointer regardless of label order.
	if r.Counter("relsyn_test_total", L("worker", "any")) != c {
		t.Fatal("series lookup not stable")
	}
	c.Add(-5)
	if c.Value() != int64(goroutines*perG) {
		t.Fatal("negative Add must be ignored (counters are monotonic)")
	}
}

func TestGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("relsyn_test_gauge")
	const goroutines, perG = 32, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(1)
				g.Add(-1)
			}
			g.Add(2)
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(2*goroutines); got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
	g.Set(-3.5)
	if g.Value() != -3.5 {
		t.Fatalf("Set: got %v", g.Value())
	}
}

func TestHistogramConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("relsyn_test_seconds")
	const goroutines, perG = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG + i))
				if i%64 == 0 {
					// Concurrent readers must not race the ring writes.
					_ = h.Quantile(0.5)
					_ = h.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != int64(goroutines*perG) {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	wantSum := float64(goroutines*perG) * float64(goroutines*perG-1) / 2
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not ordered: %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	if s := h.Snapshot(); s.P50 != 0 || s.Count != 0 {
		t.Fatalf("empty snapshot should be zero: %+v", s)
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct {
		q, want float64
	}{{0, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Fatalf("q%v = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramRingSlides(t *testing.T) {
	h := newHistogram()
	// Fill the ring twice over with ascending values; the window must
	// retain only the newest histogramRing observations.
	n := 2 * histogramRing
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0); got != float64(n-histogramRing) {
		t.Fatalf("window min = %v, want %v", got, n-histogramRing)
	}
	s := h.Snapshot()
	if s.Count != int64(n) {
		t.Fatalf("lifetime count = %d, want %d", s.Count, n)
	}
}

// TestPrometheusGolden locks the exact text exposition bytes for a
// registry with every series kind.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("relsyn_jobs_total", "Jobs admitted by outcome.")
	r.Counter("relsyn_jobs_total", L("outcome", "ok")).Add(3)
	r.Counter("relsyn_jobs_total", L("outcome", "failed")).Add(1)
	r.SetHelp("relsyn_queue_depth", "Current queue occupancy.")
	r.Gauge("relsyn_queue_depth").Set(7)
	r.GaugeFunc("relsyn_cache_entries", func() float64 { return 42 }, L("cache", "results"))
	h := r.Histogram("relsyn_stage_duration_seconds", L("stage", "assign"))
	for _, v := range []float64{0.25, 0.5, 1} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE relsyn_cache_entries gauge`,
		`relsyn_cache_entries{cache="results"} 42`,
		`# HELP relsyn_jobs_total Jobs admitted by outcome.`,
		`# TYPE relsyn_jobs_total counter`,
		`relsyn_jobs_total{outcome="failed"} 1`,
		`relsyn_jobs_total{outcome="ok"} 3`,
		`# HELP relsyn_queue_depth Current queue occupancy.`,
		`# TYPE relsyn_queue_depth gauge`,
		`relsyn_queue_depth 7`,
		`# TYPE relsyn_stage_duration_seconds summary`,
		`relsyn_stage_duration_seconds{stage="assign",quantile="0.5"} 0.5`,
		`relsyn_stage_duration_seconds{stage="assign",quantile="0.95"} 1`,
		`relsyn_stage_duration_seconds{stage="assign",quantile="0.99"} 1`,
		`relsyn_stage_duration_seconds_sum{stage="assign"} 1.75`,
		`relsyn_stage_duration_seconds_count{stage="assign"} 3`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("prometheus output mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("m_total", "line one\nline \\two")
	r.Counter("m_total", L("path", `a"b\c`+"\nd"), L("bad key!", "v")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`# HELP m_total line one\nline \\two`,
		`bad_key_="v"`,
		`path="a\"b\\c\nd"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"relsyn_ok_total": "relsyn_ok_total",
		"9leading":        "_leading",
		"with space":      "with_space",
		"":                "_",
		"a:b":             "a:b",
	} {
		if got := sanitizeName(in); got != want {
			t.Fatalf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(5)
	r.Gauge("g").Set(1.5)
	r.GaugeFunc("gf", func() float64 { return 9 })
	r.Histogram("h_seconds").Observe(2)
	s := r.Snapshot()
	if s.Counters["c_total"] != 5 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	if s.Gauges["g"] != 1.5 || s.Gauges["gf"] != 9 {
		t.Fatalf("gauges: %+v", s.Gauges)
	}
	hs := s.Histograms["h_seconds"]
	if hs.Count != 1 || hs.Sum != 2 || hs.P50 != 2 {
		t.Fatalf("histograms: %+v", s.Histograms)
	}
}

func TestRegistryConcurrentSeriesCreation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared_total", L("i", "x")).Inc()
				r.Histogram("shared_seconds").Observe(1)
				r.Gauge("shared_gauge").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", L("i", "x")).Value(); got != 32*200 {
		t.Fatalf("counter = %d", got)
	}
}

// TestHistogramQuantileAfterWraparound pins the sliding-window
// semantics the fleet harness's p99 verdicts depend on: once the ring
// wraps (>histogramRing observations), Quantile answers over exactly
// the newest histogramRing samples while Count/Sum stay exact over the
// lifetime. The two-band layout makes the window boundary observable:
// 1024 ones then 512 twos leave a window of 512 ones + 512 twos.
func TestHistogramQuantileAfterWraparound(t *testing.T) {
	var h Histogram
	for i := 0; i < histogramRing; i++ {
		h.Observe(1.0)
	}
	for i := 0; i < histogramRing/2; i++ {
		h.Observe(2.0)
	}
	// Nearest-rank: p50 lands on index ceil(.5·1024)−1 = 511, the last
	// of the surviving ones; anything above the midpoint sees a two.
	if got := h.Quantile(0.5); got != 1.0 {
		t.Fatalf("p50 after wrap = %v, want 1.0 (last of the old band)", got)
	}
	if got := h.Quantile(0.51); got != 2.0 {
		t.Fatalf("p51 after wrap = %v, want 2.0", got)
	}
	if got := h.Quantile(0.99); got != 2.0 {
		t.Fatalf("p99 after wrap = %v, want 2.0", got)
	}
	if got := h.Quantile(0); got != 1.0 {
		t.Fatalf("window min = %v, want 1.0", got)
	}
	if got := h.Quantile(1); got != 2.0 {
		t.Fatalf("window max = %v, want 2.0", got)
	}
	s := h.Snapshot()
	if s.Count != int64(histogramRing+histogramRing/2) {
		t.Fatalf("lifetime count = %d, want %d (count must NOT be windowed)", s.Count, histogramRing+histogramRing/2)
	}
	if want := float64(histogramRing) + 2.0*float64(histogramRing/2); s.Sum != want {
		t.Fatalf("lifetime sum = %v, want %v (sum must NOT be windowed)", s.Sum, want)
	}
	if s.P50 != 1.0 || s.P99 != 2.0 {
		t.Fatalf("snapshot quantiles p50=%v p99=%v, want 1.0/2.0", s.P50, s.P99)
	}
	// Another half-ring of threes ages the ones out entirely: the
	// window forgets an era histogramRing observations after it ends.
	for i := 0; i < histogramRing/2; i++ {
		h.Observe(3.0)
	}
	if got := h.Quantile(0); got != 2.0 {
		t.Fatalf("window min after second wrap = %v, want 2.0 (ones fully aged out)", got)
	}
	if got := h.Quantile(0.5); got != 2.0 {
		t.Fatalf("p50 after second wrap = %v, want 2.0", got)
	}
	if got := h.Quantile(1); got != 3.0 {
		t.Fatalf("window max after second wrap = %v, want 3.0", got)
	}
}
