package metatest

import (
	"fmt"
	"runtime"
	"testing"

	"relsyn/internal/benchmarks"
	"relsyn/internal/network"
	"relsyn/internal/tt"
)

// loadBench fetches one suite benchmark (generation is cached inside
// internal/benchmarks, so repeated loads are cheap).
func loadBench(t *testing.T, name string) *tt.Function {
	t.Helper()
	f, err := benchmarks.Load(name)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return f
}

// suite returns the benchmark names the sweep covers. -short trims the
// 12-input tail, which dominates wall-clock.
func suite(t *testing.T) []string {
	var names []string
	for _, s := range benchmarks.Specs() {
		if testing.Short() && s.Inputs >= 12 {
			continue
		}
		names = append(names, s.Name)
	}
	if len(names) == 0 {
		t.Fatal("empty benchmark suite")
	}
	return names
}

// Properties 1 and 2, swept over every benchmark × every assignment
// method: synthesis output agrees with the spec on its care set, and
// its exact error rate stays inside the spec's achievable bounds.
func TestCareSetAndBoundsAcrossSuite(t *testing.T) {
	for _, name := range suite(t) {
		for _, method := range Methods() {
			name, method := name, method
			t.Run(name+"/"+method.Name, func(t *testing.T) {
				t.Parallel()
				spec := loadBench(t, name)
				assigned, err := method.Apply(spec)
				if err != nil {
					t.Fatalf("assign: %v", err)
				}
				// The method must only bind DCs: the assigned function is
				// itself care-set-equivalent to the spec.
				if err := CheckCareSet(spec, assigned); err != nil {
					t.Fatalf("assignment violated the care set: %v", err)
				}
				impl, err := Synthesize(assigned)
				if err != nil {
					t.Fatalf("synthesize: %v", err)
				}
				if !impl.CompletelySpecified() {
					t.Fatal("synthesized implementation still has DCs")
				}
				if err := CheckCareSet(spec, impl); err != nil {
					t.Errorf("care-set equivalence: %v", err)
				}
				if err := CheckErrorRateBounds(spec, impl); err != nil {
					t.Errorf("bound bracketing: %v", err)
				}
			})
		}
	}
}

// Property 3: ranking with fraction 0 is a no-op; fraction 1 leaves no
// rankable DC unassigned — on every benchmark.
func TestRankingFractionExtremesAcrossSuite(t *testing.T) {
	for _, name := range suite(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if err := CheckRankingExtremes(loadBench(t, name)); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property 4: the LC^f threshold sweep is monotone — a higher threshold
// never assigns fewer DC minterms — on every benchmark.
func TestLCFThresholdMonotonicAcrossSuite(t *testing.T) {
	thresholds := []float64{0.05, 0.2, 0.35, 0.45, 0.5, 0.55, 0.6, 0.65, 0.8, 0.95}
	for _, name := range suite(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if err := CheckLCFMonotonic(loadBench(t, name), thresholds); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property 5: parallel ≡ sequential. Every parallelized kernel —
// reliability bounds and error-rate means, complexity factor means,
// signal/border estimates, ranking/LC^f assignment, and the full
// synthesis flow — must reproduce its sequential result bit for bit at
// worker counts 1, 2, and 8, on every benchmark. GOMAXPROCS is raised
// so the higher counts genuinely run concurrently even on small CI
// machines; this test is part of the -race CI gate.
func TestParallelEquivalenceAcrossSuite(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	for _, name := range suite(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := loadBench(t, name)
			ref, err := ParallelBaseline(spec)
			if err != nil {
				t.Fatalf("sequential baseline: %v", err)
			}
			for _, p := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
					if err := CheckParallelEquivalence(spec, ref, p); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// Property 6: kernel ≡ scalar. Every word-parallel bitset kernel —
// exact pair counts and bounds, error rates (impl-vs-spec and self),
// border counts and the Poisson estimate on top, C^f and the LC^f
// census, and the ranking/LC^f assignment passes including recorded
// weights — must reproduce its scalar oracle bit for bit on every
// benchmark, with the kernel scans fanned out at worker counts 1 and 8.
// Both paths are pinned per call (exported *Scalar/*Kernel entry points
// and core.Options.Kernels), never by toggling the process-wide
// bitset.UseKernels switch, so the sweep is race-free under t.Parallel
// and part of the -race CI gate.
func TestKernelEquivalenceAcrossSuite(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	for _, name := range suite(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := loadBench(t, name)
			ref, err := KernelBaseline(spec)
			if err != nil {
				t.Fatalf("scalar baseline: %v", err)
			}
			for _, p := range []int{1, 8} {
				t.Run(fmt.Sprintf("j=%d", p), func(t *testing.T) {
					if err := CheckKernelEquivalence(spec, ref, p); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// Property 7: fused ≡ unfused. The one-pass fused neighbor census must
// serve every analysis quantity — exact pair counts and bounds, border
// counts, C^f and the LC^f fold, the Poisson border estimate, the error
// rate, and both assignment passes — bit for bit against the same
// scalar oracle the kernel lane is pinned to in property 6, with the
// census consumers fanned out at worker counts 1 and 8, on every
// benchmark. Censuses are computed fresh per check (never through the
// process-global engine), so the sweep is race-free under t.Parallel
// and part of the -race CI gate.
func TestCensusEquivalenceAcrossSuite(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	for _, name := range suite(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := loadBench(t, name)
			ref, err := KernelBaseline(spec)
			if err != nil {
				t.Fatalf("scalar baseline: %v", err)
			}
			for _, p := range []int{1, 8} {
				t.Run(fmt.Sprintf("j=%d", p), func(t *testing.T) {
					if err := CheckCensusEquivalence(spec, ref, p); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// Property 8: windowed ⊆ exhaustive don't-cares. On every benchmark,
// lowered to a k-feasible network, the windowed SAT extraction at a
// deliberately shallow window (TFI 2, TFO 1 — small enough that real
// circuits overflow it) marks a subset of the exhaustive DCs with no
// care-phase flips, and the full-depth window reproduces the exhaustive
// spec bit for bit. The node sweep inside the checker runs the SAT
// encoder on every node, so this test is part of the -race CI gate.
func TestWindowedDCSubsetAcrossSuite(t *testing.T) {
	shallow := network.WindowOptions{TFI: 2, TFO: 1}
	// The checker is O(nodes × 2^k SAT calls) plus a full-depth pass; in
	// -short the sweep keeps the ≤8-input circuits, still several hundred
	// nodes across both engines.
	var names []string
	for _, s := range benchmarks.Specs() {
		if testing.Short() && s.Inputs >= 10 {
			continue
		}
		names = append(names, s.Name)
	}
	if len(names) == 0 {
		t.Fatal("empty benchmark suite")
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			nw, err := BuildNetwork(loadBench(t, name), 4)
			if err != nil {
				t.Fatalf("build network: %v", err)
			}
			// Both oracle passes cost O(network) per node (exhaustive
			// simulation and the full-depth CNF), so sweeping every node
			// is quadratic in circuit size — random1 lowers to ~2500
			// nodes and would take the better part of an hour alone.
			// Bound checked-nodes × network-size: small networks are
			// swept completely, big ones at a uniform stride.
			maxNodes := 0
			if n := len(nw.Nodes); n*n > 20000 {
				maxNodes = 20000 / n
				if maxNodes < 8 {
					maxNodes = 8
				}
			}
			if err := CheckWindowedDCSubset(nw, shallow, maxNodes); err != nil {
				t.Error(err)
			}
		})
	}
}

// The harness's checkers must themselves catch violations: a mutated
// care bit fails property 1 and (for a flipped majority) can break 2.
func TestCheckersDetectViolations(t *testing.T) {
	spec := loadBench(t, "bench")
	impl, err := Synthesize(spec.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// Flip one care minterm of the implementation.
	broken := impl.Clone()
	size := spec.Size()
	found := false
	for o := 0; o < spec.NumOut() && !found; o++ {
		for m := 0; m < size && !found; m++ {
			if p := spec.Phase(o, m); p != tt.DC {
				flip := tt.On
				if p == tt.On {
					flip = tt.Off
				}
				broken.SetPhase(o, m, flip)
				found = true
			}
		}
	}
	if !found {
		t.Fatal("benchmark has no care minterms")
	}
	if err := CheckCareSet(spec, broken); err == nil {
		t.Error("care-set checker accepted a broken implementation")
	}
	if err := CheckCareSet(spec, impl); err != nil {
		t.Errorf("care-set checker rejected a valid implementation: %v", err)
	}
	// Dimension mismatches are errors, not silent passes.
	if err := CheckCareSet(spec, tt.New(spec.NumIn+1, spec.NumOut())); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
